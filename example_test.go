package chapelfreeride_test

import (
	"fmt"

	cf "chapelfreeride"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// The FREERIDE engine in one spec: declare the reduction object, process
// every data instance in the reduction function, read the combined result.
func ExampleNewEngine() {
	data := cf.NewMatrix(1000, 1)
	for i := range data.Data {
		data.Data[i] = float64(i % 4)
	}
	eng := cf.NewEngine(cf.EngineConfig{Threads: 2, SplitRows: 100})
	spec := cf.Spec{
		Object: cf.ObjectSpec{Groups: 4, Elems: 1, Op: cf.OpAdd},
		Reduction: func(args *cf.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				args.Accumulate(int(args.Row(i)[0]), 0, 1)
			}
			return nil
		},
	}
	res, err := eng.Run(spec, cf.NewMemorySource(data))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Object.Get(0, 0), res.Object.Get(3, 0))
	// Output: 250 250
}

// Chapel's global-view reduction: `+ reduce A` over a boxed array.
func ExampleReduce() {
	a := cf.RealArray(1.5, 2.5, 3.0)
	sum := cf.Reduce(cf.NewSumOp(), cf.ChapelOver(a), 2)
	fmt.Println(sum.(*cf.ChapelReal).Val)
	// Output: 7
}

// Linearization round trip: Algorithm 2 and its inverse.
func ExampleLinearize() {
	v := cf.RealArray(3, 1, 4)
	buf := cf.Linearize(v)
	back, err := cf.Delinearize(buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(buf.Bytes), back.(*cf.ChapelArray).At(3).(*cf.ChapelReal).Val)
	// Output: 24 4
}

// MetaFor collects the paper's Fig. 6 information for an access path
// through a nested structure.
func ExampleMetaFor() {
	decls, err := chapel.ParseDecls(`
record A { a1: [1..5] real; a2: int; }
record B { b1: [1..4] A;   b2: int; }
var data: [1..3] B;
`)
	if err != nil {
		panic(err)
	}
	ty, _ := decls.Var("data")
	meta, err := cf.MetaFor(ty, "b1", "a1")
	if err != nil {
		panic(err)
	}
	fmt.Println(meta.Levels, meta.UnitSize, meta.ComputeIndex(2, 3, 4))
	// Output: 3 [200 48 8] 320
}

// Translate compiles a declarative reduction class into an executable
// FREERIDE spec at a chosen optimization level.
func ExampleTranslate() {
	// Dataset: 6 points of 2 coordinates, boxed Chapel-style.
	pts := cf.NewMatrix(6, 2)
	for i := 0; i < 6; i++ {
		pts.Set(i, 0, float64(i))
		pts.Set(i, 1, float64(i)*10)
	}
	boxed := cf.BoxPoints(pts)
	class := &core.ReductionClass{
		Name:   "column-sums",
		Object: freeride.ObjectSpec{Groups: 1, Elems: 2, Op: robj.OpAdd},
		Path:   []string{"coords"},
		Kernel: func(elem *core.Vec, _ []*core.StateVec, args *freeride.ReductionArgs) {
			row := elem.Row(args.Scratch(0, 2))
			args.Accumulate(0, 0, row[0])
			args.Accumulate(0, 1, row[1])
		},
	}
	tr, err := cf.Translate(class, boxed, cf.Opt2)
	if err != nil {
		panic(err)
	}
	res, err := cf.NewEngine(cf.EngineConfig{Threads: 2}).Run(tr.Spec(), tr.Source())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Object.Get(0, 0), res.Object.Get(0, 1))
	// Output: 15 150
}

// The simulated cluster runs the same spec across nodes and combines the
// reduction objects globally.
func ExampleNewCluster() {
	data := cf.NewMatrix(100, 1)
	for i := range data.Data {
		data.Data[i] = 1
	}
	c := cf.NewCluster(cf.ClusterConfig{
		Nodes:     4,
		PerNode:   cf.EngineConfig{Threads: 1},
		Transport: cf.TransportInProcess,
		Combine:   cf.CombineTree,
	})
	spec := cf.Spec{
		Object: cf.ObjectSpec{Groups: 1, Elems: 1, Op: cf.OpAdd},
		Reduction: func(args *cf.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				args.Accumulate(0, 0, args.Row(i)[0])
			}
			return nil
		},
	}
	res, err := c.Run(spec, cf.NewMemorySource(data))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Object.Get(0, 0), res.Stats.Rounds)
	// Output: 100 2
}
