// Market-basket mining: apriori frequent-itemset discovery — the
// application family FREERIDE (FRamework for Rapid Implementation of
// Datamining Engines) was originally built for. Each counting pass is a
// generalized reduction whose reduction object is the candidate support
// table; the example runs it sequentially, under FREERIDE, and under
// Map-Reduce, and checks all three agree.
package main

import (
	"fmt"
	"log"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/freeride"
)

func main() {
	const (
		transactions = 50000
		width        = 12 // max items per basket
		numItems     = 60
	)
	tx := apps.GenerateTransactions(transactions, width, numItems, 7)
	cfg := apps.AprioriConfig{
		NumItems:   numItems,
		MinSupport: transactions / 8, // items in ≥12.5% of baskets
		Engine:     freeride.Config{Threads: 4, SplitRows: 2048},
	}

	fmt.Printf("mining %d baskets (≤%d items each, %d distinct items), min support %d\n",
		transactions, width, numItems, cfg.MinSupport)

	seq, err := apps.AprioriSeq(tx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fr, err := apps.AprioriManualFR(tx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mr, err := apps.AprioriMapReduce(tx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if len(fr.Frequent) != len(seq.Frequent) || len(mr.Frequent) != len(seq.Frequent) {
		log.Fatalf("version disagreement: seq=%d fr=%d mr=%d itemsets",
			len(seq.Frequent), len(fr.Frequent), len(mr.Frequent))
	}
	for i := range seq.Frequent {
		if seq.Frequent[i].Support != fr.Frequent[i].Support ||
			seq.Frequent[i].Support != mr.Frequent[i].Support {
			log.Fatalf("support mismatch at itemset %v", seq.Frequent[i].Items)
		}
	}
	fmt.Printf("sequential %.3fs | freeride %.3fs | map-reduce %.3fs — all agree ✓\n",
		seq.Timing.Total().Seconds(), fr.Timing.Total().Seconds(), mr.Timing.Total().Seconds())

	singles, pairs := 0, 0
	for _, is := range seq.Frequent {
		if len(is.Items) == 1 {
			singles++
		} else {
			pairs++
		}
	}
	fmt.Printf("%d frequent items, %d frequent pairs; top findings:\n", singles, pairs)
	shown := 0
	for _, is := range seq.Frequent {
		if len(is.Items) == 2 && shown < 8 {
			fmt.Printf("  items %2d+%2d bought together in %5d baskets (%.1f%%)\n",
				is.Items[0], is.Items[1], is.Support,
				100*float64(is.Support)/transactions)
			shown++
		}
	}
}
