// PCA — the paper's second evaluation application: compute the mean vector
// and covariance matrix (the two reduction phases of §V-B), then use the
// covariance to pick the highest-variance dimensions — a simple
// dimensionality reduction.
package main

import (
	"fmt"
	"log"
	"sort"

	cf "chapelfreeride"
)

func main() {
	const (
		elems   = 20000
		dims    = 64
		threads = 4
	)
	// Build data where a few dimensions carry most of the variance: start
	// uniform, then stretch dimensions 3, 17 and 40.
	data := cf.UniformMatrix(elems, dims, 11, -1, 1)
	for i := 0; i < elems; i++ {
		row := data.Row(i)
		row[3] *= 9
		row[17] *= 6
		row[40] *= 3
	}

	cfg := cf.PCAConfig{Engine: cf.EngineConfig{Threads: threads}}
	opt2, err := cf.PCA(cf.VersionOpt2, data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	manual, err := cf.PCA(cf.VersionManualFR, data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA over %d elements × %d dims, %d threads\n", elems, dims, threads)
	fmt.Printf("  opt-2:     total %8.3fs (linearize %.3fs)\n",
		opt2.Timing.Total().Seconds(), opt2.Timing.Linearize.Seconds())
	fmt.Printf("  manual FR: total %8.3fs\n", manual.Timing.Total().Seconds())

	// Both versions agree.
	for i := range opt2.Cov.Data {
		diff := opt2.Cov.Data[i] - manual.Cov.Data[i]
		if diff > 1e-6 || diff < -1e-6 {
			log.Fatalf("covariance mismatch at cell %d", i)
		}
	}
	fmt.Println("  opt-2 and manual covariance matrices identical ✓")

	// Rank dimensions by variance (the covariance diagonal).
	type dv struct {
		dim int
		v   float64
	}
	ranked := make([]dv, dims)
	for j := 0; j < dims; j++ {
		ranked[j] = dv{dim: j, v: opt2.Cov.At(j, j)}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	fmt.Println("top-5 principal dimensions by variance:")
	for _, r := range ranked[:5] {
		fmt.Printf("  dim %2d: variance %7.3f\n", r.dim, r.v)
	}
	if ranked[0].dim != 3 || ranked[1].dim != 17 || ranked[2].dim != 40 {
		log.Fatal("expected the stretched dimensions to dominate")
	}
	fmt.Println("stretched dimensions recovered ✓")
}
