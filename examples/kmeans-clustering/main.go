// K-means clustering — the paper's first evaluation application, run in
// all seven versions on one dataset to show they agree and how they differ
// in cost. This is Figure 9's comparison in miniature.
package main

import (
	"fmt"
	"log"

	cf "chapelfreeride"
)

func main() {
	const (
		n       = 50000
		dim     = 10
		k       = 20
		iters   = 5
		threads = 4
	)
	points, trueCenters := cf.GaussianMixture(n, dim, k, 42)
	fmt.Printf("dataset: %d points × %d dims (%.1f MB), %d true clusters\n",
		n, dim, float64(points.SizeBytes())/(1<<20), trueCenters.Rows)

	init := cf.NewMatrix(k, dim)
	copy(init.Data, points.Data[:k*dim])
	cfg := cf.KMeansConfig{K: k, Iterations: iters, Engine: cf.EngineConfig{Threads: threads}}

	versions := []cf.AppVersion{
		cf.VersionSeq, cf.VersionChapelNative, cf.VersionGenerated,
		cf.VersionOpt1, cf.VersionOpt2, cf.VersionManualFR, cf.VersionMapReduce,
	}
	var reference *cf.KMeansResult
	fmt.Printf("%-15s %10s %12s %10s\n", "version", "total", "linearize", "reduce")
	for _, v := range versions {
		res, err := cf.KMeans(v, points, init, cfg)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		fmt.Printf("%-15s %9.3fs %11.3fs %9.3fs\n",
			v, res.Timing.Total().Seconds(), res.Timing.Linearize.Seconds(),
			res.Timing.Reduce.Seconds())
		if reference == nil {
			reference = res
			continue
		}
		// All versions make identical assignment decisions; with floating
		// point data the centroids agree to high precision.
		for i := range res.Centroids.Data {
			diff := res.Centroids.Data[i] - reference.Centroids.Data[i]
			if diff > 1e-6 || diff < -1e-6 {
				log.Fatalf("%v diverges from sequential at cell %d", v, i)
			}
		}
	}
	fmt.Println("all versions converge to the same centroids ✓")

	// Report cluster sizes from the reference run.
	fmt.Print("final cluster sizes:")
	for _, c := range reference.Counts {
		fmt.Printf(" %.0f", c)
	}
	fmt.Println()
}
