// Custom reduction: write a new reduction once in the paper's declarative
// form (a ReductionClass over a nested Chapel structure with a hot
// variable), then let the translator run it at all three optimization
// levels — the full §IV pipeline on an application that is neither k-means
// nor PCA.
//
// The computation: weighted per-sensor anomaly counting. The data is
// [1..n] Reading where Reading is record { samples: [1..w] real } — one
// window of w samples per reading. A reading is anomalous for sensor s if
// its mean sample exceeds the sensor's threshold (the hot variable). The
// reduction object counts anomalies and accumulates their magnitudes per
// sensor.
package main

import (
	"fmt"
	"log"
	"time"

	cf "chapelfreeride"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/freeride"
)

const (
	nReadings = 80000
	window    = 16
	nSensors  = 8
)

func main() {
	// Chapel-side dataset: nested records of sample windows.
	data := buildReadings()
	// Hot variable: per-sensor thresholds, boxed like any Chapel array.
	thresholds := cf.RealArray(0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6)

	class := &core.ReductionClass{
		Name: "anomaly-count",
		// Reduction object: one group per sensor, cells = {count, magnitude}.
		Object: freeride.ObjectSpec{Groups: nSensors, Elems: 2, Op: cf.OpAdd},
		Path:   []string{"samples"},
		HotVars: []core.HotVar{
			{Value: thresholds},
		},
		Kernel: func(elem *core.Vec, hot []*core.StateVec, args *freeride.ReductionArgs) {
			var mean float64
			for i := 0; i < window; i++ {
				mean += elem.At(i)
			}
			mean /= window
			// The thresholds vector is addressed as one 1×n element.
			for s := 0; s < nSensors; s++ {
				if th := hot[0].At(1, s+1); mean > th {
					args.Accumulate(s, 0, 1)
					args.Accumulate(s, 1, mean-th)
				}
			}
		},
	}

	eng := cf.NewEngine(cf.EngineConfig{Threads: 4})
	defer eng.Close()
	var baseline []float64
	for _, opt := range []core.OptLevel{cf.OptNone, cf.Opt1, cf.Opt2} {
		t0 := time.Now()
		tr, err := core.Translate(class, data, opt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(tr.Spec(), tr.Source())
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		snap := res.Object.Snapshot()
		if baseline == nil {
			baseline = append([]float64(nil), snap...)
		} else {
			for i := range snap {
				if snap[i] != baseline[i] {
					log.Fatalf("%v disagrees with generated at cell %d", opt, i)
				}
			}
		}
		fmt.Printf("%-9s: %8.3fs (linearize %.3fs)\n", opt, elapsed.Seconds(), tr.LinearizeTime.Seconds())
	}
	fmt.Println("all optimization levels agree ✓")
	fmt.Println("\nper-sensor anomalies (count, mean excess):")
	for s := 0; s < nSensors; s++ {
		count, mag := baseline[s*2], baseline[s*2+1]
		excess := 0.0
		if count > 0 {
			excess = mag / count
		}
		fmt.Printf("  sensor %d: %6.0f anomalies, mean excess %.3f\n", s, count, excess)
	}
}

// buildReadings boxes a synthetic dataset: reading r's samples ramp with r
// so different sensors trip at different rates.
func buildReadings() *chapel.Array {
	reading := chapel.RecordType("Reading",
		chapel.Field{Name: "samples", Type: chapel.ArrayType(chapel.RealType(), 1, window)})
	data := chapel.NewArray(chapel.ArrayType(reading, 1, nReadings))
	for r := 1; r <= nReadings; r++ {
		samples := data.At(r).(*chapel.Record).Field("samples").(*chapel.Array)
		base := float64(r%100) / 50.0 // 0..2
		for i := 1; i <= window; i++ {
			samples.SetAt(i, &chapel.Real{Val: base + float64(i%3)*0.01})
		}
	}
	return data
}
