// Cluster combination: run the same generalized reduction on 1, 2, 4, and
// 8 simulated FREERIDE nodes and watch the global combination phase work —
// in-process first, then over real loopback TCP with serialized reduction
// objects, the communication the paper's middleware handles "internally
// and transparently" (§III-A).
package main

import (
	"fmt"
	"log"

	cf "chapelfreeride"
	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

func main() {
	// Workload: bucket counts over 2M values, a 256×16 reduction object.
	const (
		n      = 2_000_000
		groups = 256
		elems  = 16
	)
	m := dataset.NewMatrix(n, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % groups)
	}
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: groups, Elems: elems, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(int(a.Row(i)[0]), (a.Begin+i)%elems, 1)
			}
			return nil
		},
	}

	// Reference: one node (the plain engine).
	refEng := cf.NewEngine(cf.EngineConfig{Threads: 2})
	ref, err := refEng.Run(spec, cf.NewMemorySource(m))
	if err != nil {
		log.Fatal(err)
	}
	refEng.Close()

	fmt.Printf("%6s %-11s %-10s %12s %7s\n", "nodes", "transport", "combine", "bytes moved", "rounds")
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, tr := range []cluster.Transport{cluster.InProcess, cluster.TCP} {
			algo := cluster.AllToOne
			if nodes >= 4 {
				algo = cluster.Tree
			}
			c := cluster.New(cluster.Config{
				Nodes:     nodes,
				PerNode:   freeride.Config{Threads: 2},
				Transport: tr,
				Combine:   algo,
			})
			res, err := c.Run(spec, cf.NewMemorySource(m))
			if err != nil {
				log.Fatal(err)
			}
			c.Close()
			// Every configuration must reproduce the single-engine result.
			for g := 0; g < groups; g++ {
				for e := 0; e < elems; e++ {
					if res.Object.Get(g, e) != ref.Object.Get(g, e) {
						log.Fatalf("nodes=%d %v: cell (%d,%d) diverges", nodes, tr, g, e)
					}
				}
			}
			fmt.Printf("%6d %-11s %-10s %12d %7d\n",
				nodes, tr, algo, res.Stats.BytesMoved, res.Stats.Rounds)
		}
	}
	fmt.Println("all cluster configurations reproduce the single-node reduction ✓")
}
