// Quickstart: the shortest path through the public API — run a generalized
// reduction (a histogram) on the FREERIDE engine, then the same computation
// as a Chapel-style reduction, and check they agree.
package main

import (
	"fmt"
	"log"

	cf "chapelfreeride"
)

func main() {
	// 1. A dataset: 100k values in [0, 10).
	data := cf.UniformMatrix(100000, 1, 7, 0, 10)

	// 2. FREERIDE: declare a 10-bucket reduction object and a reduction
	// function that processes each data instance and updates it in place —
	// map and reduce fused, no intermediate pairs.
	// The engine is a session: its worker pool persists across Runs until
	// Close.
	eng := cf.NewEngine(cf.EngineConfig{Threads: 4})
	defer eng.Close()
	spec := cf.Spec{
		Object: cf.ObjectSpec{Groups: 10, Elems: 1, Op: cf.OpAdd},
		Reduction: func(args *cf.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				bucket := int(args.Row(i)[0])
				args.Accumulate(bucket, 0, 1)
			}
			return nil
		},
	}
	res, err := eng.Run(spec, cf.NewMemorySource(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FREERIDE histogram:")
	for b := 0; b < 10; b++ {
		fmt.Printf("  [%d,%d): %6.0f\n", b, b+1, res.Object.Get(b, 0))
	}
	fmt.Printf("engine: %d splits across %d threads, reduce took %v\n",
		res.Stats.Splits, res.Stats.Threads, res.Stats.ReduceTime.Round(1000))

	// 3. The same computation as a Chapel reduction: a user-defined
	// ReduceScanOp with the paper's accumulate/combine/generate stages.
	col := make([]float64, data.Rows)
	for i := range col {
		col[i] = data.At(i, 0)
	}
	boxed := cf.RealArray(col...)
	out := cf.Reduce(&histOp{counts: make([]float64, 10)}, cf.ChapelOver(boxed), 4).(*cf.ChapelArray)

	fmt.Println("Chapel-style reduction agrees:")
	for b := 0; b < 10; b++ {
		chapelCount := out.At(b + 1).(*cf.ChapelReal).Val
		if chapelCount != res.Object.Get(b, 0) {
			log.Fatalf("bucket %d mismatch: %v vs %v", b, chapelCount, res.Object.Get(b, 0))
		}
	}
	fmt.Println("  all 10 buckets identical ✓")
}

// histOp is a user-defined Chapel reduction (compare the paper's Fig. 2).
type histOp struct{ counts []float64 }

func (o *histOp) Clone() cf.ReduceScanOp { return &histOp{counts: make([]float64, len(o.counts))} }

func (o *histOp) Accumulate(x cf.ChapelValue) {
	b := int(x.(*cf.ChapelReal).Val)
	if b < 0 {
		b = 0
	}
	if b >= len(o.counts) {
		b = len(o.counts) - 1
	}
	o.counts[b]++
}

func (o *histOp) Combine(other cf.ReduceScanOp) {
	for i, v := range other.(*histOp).counts {
		o.counts[i] += v
	}
}

func (o *histOp) Generate() cf.ChapelValue { return cf.RealArray(o.counts...) }
