package chapelfreeride

import (
	"math"
	"path/filepath"
	"testing"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// TestPipelineChapelSourceToCluster drives the longest path through the
// system: Chapel source text → parsed types → boxed values → translation
// (opt-2) → FREERIDE spec → simulated cluster with TCP global combination →
// de-linearized comparison against a sequential reference.
func TestPipelineChapelSourceToCluster(t *testing.T) {
	decls, err := chapel.ParseDecls(`
record Point { coords: [1..4] real; }
var points: [1..300] Point;
`)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := decls.Var("points")
	if err != nil {
		t.Fatal(err)
	}

	// Fill boxed data deterministically and compute the reference column
	// sums sequentially.
	const n, dim = 300, 4
	boxed := chapel.NewArray(ty)
	want := make([]float64, dim)
	for i := 1; i <= n; i++ {
		coords := boxed.At(i).(*chapel.Record).Field("coords").(*chapel.Array)
		for j := 1; j <= dim; j++ {
			v := float64((i*31 + j*7) % 100)
			coords.SetAt(j, &chapel.Real{Val: v})
			want[j-1] += v
		}
	}

	// Translate at opt-2 and run across 3 simulated TCP nodes.
	cls := &core.ReductionClass{
		Name:   "column-sums",
		Object: freeride.ObjectSpec{Groups: 1, Elems: dim, Op: robj.OpAdd},
		Path:   []string{"coords"},
		Kernel: func(elem *core.Vec, _ []*core.StateVec, args *freeride.ReductionArgs) {
			row := elem.Row(args.Scratch(0, dim))
			for j := 0; j < dim; j++ {
				args.Accumulate(0, j, row[j])
			}
		},
	}
	tr, err := core.Translate(cls, boxed, core.Opt2)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cluster.Config{
		Nodes:     3,
		PerNode:   freeride.Config{Threads: 2, SplitRows: 16},
		Transport: cluster.TCP,
		Combine:   cluster.Tree,
	})
	res, err := cl.Run(tr.Spec(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < dim; j++ {
		if got := res.Object.Get(0, j); got != want[j] {
			t.Fatalf("column %d: got %v, want %v", j, got, want[j])
		}
	}
	if res.Stats.BytesMoved == 0 {
		t.Fatal("TCP combination should have moved bytes")
	}

	// Round-trip the linearized dataset back to boxed values.
	back := chapel.NewArray(ty)
	if err := core.WordsBack(tr.Words(), back); err != nil {
		t.Fatal(err)
	}
	if !chapel.DeepEqual(boxed, back) {
		t.Fatal("write-back of linearized dataset diverged")
	}
}

// TestPipelineDiskToKMeans runs k-means from an on-disk dataset through a
// prefetching source, comparing the FREERIDE result with the sequential
// reference — the deployment shape FREERIDE was built for (data on disk,
// runtime-managed reads).
func TestPipelineDiskToKMeans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.frds")
	points, _ := dataset.GaussianMixture(3000, 6, 5, 77)
	// Integer-valued points keep the comparison exact.
	for i := range points.Data {
		points.Data[i] = math.Round(points.Data[i] * 8)
	}
	if err := dataset.WriteFile(path, points); err != nil {
		t.Fatal(err)
	}
	fs, err := dataset.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	src := dataset.NewPrefetchSource(fs, 256, 4)

	init := dataset.NewMatrix(5, 6)
	copy(init.Data, points.Data[:30])
	cfg := apps.KMeansConfig{K: 5, Iterations: 3, Engine: freeride.Config{Threads: 3, SplitRows: 128}}
	ref, err := apps.KMeansSeq(points, init, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Manual FREERIDE k-means over the disk-backed prefetching source.
	k, dim := 5, 6
	cents := init.Clone()
	eng := freeride.New(cfg.Engine)
	for it := 0; it < cfg.Iterations; it++ {
		flat := cents.Data
		spec := freeride.Spec{
			Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
			Reduction: func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					row := args.Row(i)
					best, bestDist := 0, math.Inf(1)
					for c := 0; c < k; c++ {
						var d float64
						for j := 0; j < dim; j++ {
							diff := row[j] - flat[c*dim+j]
							d += diff * diff
						}
						if d < bestDist {
							best, bestDist = c, d
						}
					}
					for j := 0; j < dim; j++ {
						args.Accumulate(best, j, row[j])
					}
					args.Accumulate(best, dim, 1)
				}
				return nil
			},
		}
		res, err := eng.Run(spec, src)
		if err != nil {
			t.Fatal(err)
		}
		snap := res.Object.Snapshot()
		next := dataset.NewMatrix(k, dim)
		for c := 0; c < k; c++ {
			cnt := snap[c*(dim+1)+dim]
			if cnt == 0 {
				copy(next.Row(c), cents.Row(c))
				continue
			}
			for j := 0; j < dim; j++ {
				next.Set(c, j, snap[c*(dim+1)+j]/cnt)
			}
		}
		cents = next
	}
	if !cents.Equal(ref.Centroids) {
		t.Fatal("disk-backed k-means diverged from the in-memory reference")
	}
	hits, misses, _ := src.Stats()
	if hits+misses == 0 {
		t.Fatal("prefetch source saw no traffic")
	}
}
