// Command freeride-bench regenerates the paper's evaluation figures
// (Figures 9-13) and this repository's ablation studies as printed tables.
//
// Usage:
//
//	freeride-bench -list
//	freeride-bench -exp fig9                 # one experiment, default scale
//	freeride-bench -exp fig9 -scale 1        # paper-sized dataset
//	freeride-bench -exp all -threads 1,2,4,8
//	freeride-bench -exp fig9 -metrics-addr :9090 -metrics-hold 30s
//	freeride-bench -exp fig9 -trace-out trace.json -max-combine-share 0.25
//	freeride-bench -exp abl-faults -fault-rate 0.1 -fault-seed 7 -retries 5 -timeout 100ms
//	freeride-bench -exp abl-session -session-passes 50 -session-jobs 2,4,8
//	freeride-bench -exp abl-fuse -json .     # fused vs per-element + BENCH_abl_fuse.json
//	freeride-bench -exp abl-ingest -scale 1 -ingest-dir /data/frds -json .
//
// Observability: -metrics-addr serves live Prometheus-text metrics (plus
// /report, /trace, expvar, and pprof with per-worker labels), -trace-out
// dumps the per-phase JSON event log, the obs report printed after the run
// summarizes every engine counter, and -max-combine-share guards against
// combination-phase regressions (see README "Observability").
//
// Robustness: -fault-rate/-fault-seed inject deterministic transient read
// faults, -retries bounds the retry/backoff layer absorbing them, and
// -timeout cancels passes via context; the abl-faults experiment drives all
// of them through the engine's failure paths (see README "Robustness").
//
// Sessions: the abl-session experiment compares the one-shot engine
// lifecycle (new engine, one pass, close) with a persistent session (one
// engine, pooled workers/schedulers/objects across passes). -session-passes
// sets the passes per lifecycle mode and -session-jobs the sweep of
// concurrent jobs submitted to one session's pool.
//
// Scale 1 reproduces the paper's dataset sizes (12 MB / 1.2 GB k-means
// inputs, 1000×10,000 / 1000×100,000 PCA matrices); the per-experiment
// defaults keep a full sweep around a minute while preserving the workload
// shape. Absolute times differ from the paper's 2007-era Xeon; the shape —
// version ordering, optimization factors, scaling trends — is what the
// tables' notes check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"chapelfreeride/internal/bench"
	"chapelfreeride/internal/obs"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "experiment id (see -list), or 'all' / 'figures' / 'ablations'")
		scaleFlag   = flag.Float64("scale", 0, "dataset scale relative to the paper's size (0 = per-experiment default)")
		threadsFlag = flag.String("threads", "", "comma-separated thread sweep (default 1,2,4,8 capped at GOMAXPROCS)")
		seedFlag    = flag.Int64("seed", 42, "dataset generation seed")
		repsFlag    = flag.Int("reps", 1, "repetitions per measurement (fastest kept)")
		formatFlag  = flag.String("format", "table", "output format: table | csv")
		jsonDir     = flag.String("json", "", "also write a machine-readable BENCH_<exp>.json report per experiment into this directory")
		listFlag    = flag.Bool("list", false, "list experiments and exit")

		faultRate = flag.Float64("fault-rate", 0, "inject seeded transient read faults on this fraction of split reads in fault-aware experiments (abl-faults)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the deterministic fault pattern")
		retries   = flag.Int("retries", 3, "bounded retry budget (with exponential backoff) for fault-wrapped reads")
		timeout   = flag.Duration("timeout", 0, "cancel fault-aware experiment passes via context after this long (0 = no timeout)")

		sessionPasses = flag.Int("session-passes", 0, "abl-session: reduction passes per lifecycle mode (0 = default 30)")
		sessionJobs   = flag.String("session-jobs", "", "abl-session: comma-separated concurrent-job sweep on one session (default 2,4)")

		ingestDir   = flag.String("ingest-dir", "", "abl-ingest: directory for the on-disk CSV/binary dataset files, reused across runs (default: a temporary directory deleted afterwards)")
		ingestCheck = flag.Bool("ingest-check", false, "after abl-ingest, verify the zero-copy engine path beats the boxed CSV baseline at every thread count; exit non-zero otherwise")
		adviseCheck = flag.Bool("advise-check", false, "after abl-advise, verify the advised configuration is never worse than 2x the worst hand-picked pick per workload; exit non-zero otherwise")

		metricsAddr = flag.String("metrics-addr", "", "serve the observability endpoint (/metrics Prometheus text, /report, /trace JSON event log, /debug/vars, /debug/pprof) on this address")
		metricsHold = flag.Duration("metrics-hold", 0, "keep the metrics endpoint up this long after the experiments finish")
		traceOut    = flag.String("trace-out", "", "write the JSON event log of all engine passes to this file")
		obsReport   = flag.Bool("obs-report", true, "print the obs counter report after each experiment run")
		maxCombine  = flag.Float64("max-combine-share", 0, "regression guard: warn when combine phases exceed this fraction of engine wall time per experiment (0 disables)")
		guardFail   = flag.Bool("guard-fail", false, "exit non-zero when the combine-share guard trips")
		scrapeCheck = flag.Bool("scrape-check", false, "after the experiments, scrape the -metrics-addr endpoint and verify node-labeled cluster metrics, pass-latency histogram buckets, and a non-empty node-attributed trace; exit non-zero on failure")
	)
	flag.Parse()

	metricsBase := ""
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeride-bench: metrics endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		metricsBase = "http://" + srv.Addr
		fmt.Fprintf(os.Stderr, "freeride-bench: metrics at %s/metrics (also /report, /trace, /debug/vars, /debug/pprof)\n", metricsBase)
	}

	if *listFlag {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			src := e.Paper
			if src == "" {
				src = "ablation"
			}
			fmt.Printf("  %-13s %-10s %s (default scale %g)\n", e.ID, src, e.Title, e.DefaultScale)
		}
		return
	}

	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeride-bench:", err)
		os.Exit(2)
	}
	jobSweep, err := parseThreads(*sessionJobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeride-bench:", err)
		os.Exit(2)
	}

	var selected []bench.Experiment
	switch *expFlag {
	case "all":
		selected = bench.Experiments()
	case "figures":
		for _, e := range bench.Experiments() {
			if e.Paper != "" {
				selected = append(selected, e)
			}
		}
	case "ablations":
		for _, e := range bench.Experiments() {
			if e.Paper == "" {
				selected = append(selected, e)
			}
		}
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "freeride-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	guardTripped := false
	for _, e := range selected {
		p := bench.Params{
			Threads: threads, Scale: *scaleFlag, Seed: *seedFlag, Reps: *repsFlag,
			FaultRate: *faultRate, FaultSeed: *faultSeed, Retries: *retries, Timeout: *timeout,
			SessionPasses: *sessionPasses, SessionJobs: jobSweep,
			IngestDir: *ingestDir,
		}.WithDefaults(e.DefaultScale)
		phasesBefore := bench.SnapshotPhases()
		passHistBefore := bench.SnapshotPassHist()
		tbl, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "freeride-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *formatFlag == "csv" {
			if err := tbl.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "freeride-bench:", err)
				os.Exit(1)
			}
		} else {
			tbl.Fprint(os.Stdout)
		}
		if *ingestCheck && e.ID == "abl-ingest" {
			if err := checkIngest(tbl.Metrics); err != nil {
				fmt.Fprintln(os.Stderr, "freeride-bench: ingest-check:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "freeride-bench: ingest-check ok (zero-copy ≥ csv-boxed on the engine path at every thread count)")
		}
		if *adviseCheck && e.ID == "abl-advise" {
			if err := checkAdvise(tbl.Metrics); err != nil {
				fmt.Fprintln(os.Stderr, "freeride-bench: advise-check:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "freeride-bench: advise-check ok (advised pick well clear of the worst hand-picked configuration on every workload)")
		}
		if diag, ok := bench.CheckCombineShare(phasesBefore, *maxCombine); !ok {
			guardTripped = true
			fmt.Fprintf(os.Stderr, "freeride-bench: %s: %s\n", e.ID, diag)
		}
		passLatency := bench.PassLatencySince(passHistBefore)
		if passLatency != nil {
			fmt.Fprintf(os.Stderr, "freeride-bench: %s: %d engine passes, latency p50\u2264%v p90\u2264%v p99\u2264%v\n",
				e.ID, passLatency.Count,
				time.Duration(passLatency.P50ns).Round(time.Microsecond),
				time.Duration(passLatency.P90ns).Round(time.Microsecond),
				time.Duration(passLatency.P99ns).Round(time.Microsecond))
		}
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "BENCH_"+strings.ReplaceAll(e.ID, "-", "_")+".json")
			rep := bench.NewReport(tbl, p, time.Now())
			rep.PassLatency = passLatency
			if err := writeReport(path, rep); err != nil {
				fmt.Fprintln(os.Stderr, "freeride-bench: json:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "freeride-bench: wrote %s\n", path)
		}
	}

	if *scrapeCheck {
		if *metricsAddr == "" {
			fmt.Fprintln(os.Stderr, "freeride-bench: -scrape-check requires -metrics-addr")
			os.Exit(2)
		}
		if err := checkScrape(metricsBase); err != nil {
			fmt.Fprintln(os.Stderr, "freeride-bench: scrape-check:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "freeride-bench: scrape-check ok (node-labeled metrics, pass-latency buckets, node-attributed trace)")
	}

	if *obsReport {
		obs.WriteReport(os.Stdout, obs.Default)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.Log.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeride-bench: trace-out:", err)
			os.Exit(1)
		}
	}
	if *metricsAddr != "" && *metricsHold > 0 {
		fmt.Fprintf(os.Stderr, "freeride-bench: holding metrics endpoint for %v\n", *metricsHold)
		time.Sleep(*metricsHold)
	}
	if guardTripped && *guardFail {
		os.Exit(1)
	}
}

// checkIngest enforces the abl-ingest acceptance shape: at every measured
// thread count, the zero-copy engine path must be at least as fast as the
// boxed CSV baseline. A violation means the mmap fast path regressed to a
// copying (or worse, parsing) read somewhere.
func checkIngest(metrics []bench.Metric) error {
	rate := map[string]map[int]float64{} // version → threads → rows/sec
	for _, m := range metrics {
		if m.Workload != "engine" {
			continue
		}
		if rate[m.Version] == nil {
			rate[m.Version] = map[int]float64{}
		}
		rate[m.Version][m.Threads] = m.RowsPerSec
	}
	if len(rate["bin-zerocopy"]) == 0 || len(rate["csv-boxed"]) == 0 {
		return fmt.Errorf("no engine-path metrics to compare")
	}
	for threads, csv := range rate["csv-boxed"] {
		zc, ok := rate["bin-zerocopy"][threads]
		if !ok {
			return fmt.Errorf("no zero-copy measurement at %d threads", threads)
		}
		if zc < csv {
			return fmt.Errorf("zero-copy %.0f rows/s < csv-boxed %.0f rows/s at %d threads", zc, csv, threads)
		}
	}
	return nil
}

// checkAdvise enforces the abl-advise acceptance shape: per workload, the
// advised configuration must land well inside the hand-picked spread —
// hard requirement: never worse than 2x the WORST hand-picked pick (a
// violation means the advisor steered into pathological territory the
// sweep itself avoids); it also reports how far the advised time sits from
// the best pick, the "within a few percent" claim the bench notes carry.
func checkAdvise(metrics []bench.Metric) error {
	type span struct {
		best, worst, advised int64
	}
	spans := map[string]*span{}
	for _, m := range metrics {
		s := spans[m.Workload]
		if s == nil {
			s = &span{}
			spans[m.Workload] = s
		}
		switch m.Version {
		case "hand-picked":
			if s.best == 0 || m.NsPerOp < s.best {
				s.best = m.NsPerOp
			}
			if m.NsPerOp > s.worst {
				s.worst = m.NsPerOp
			}
		case "advised":
			s.advised = m.NsPerOp
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("no abl-advise metrics to check")
	}
	for name, s := range spans {
		if s.advised == 0 || s.best == 0 {
			return fmt.Errorf("%s: missing advised or hand-picked measurements", name)
		}
		if s.advised > 2*s.worst {
			return fmt.Errorf("%s: advised %d ns/op is over 2x the worst hand-picked pick (%d ns/op)", name, s.advised, s.worst)
		}
		fmt.Fprintf(os.Stderr, "freeride-bench: advise-check: %s advised %.2fx best, %.2fx worst\n",
			name, float64(s.advised)/float64(s.best), float64(s.advised)/float64(s.worst))
	}
	return nil
}

// checkScrape drives the observability acceptance check end to end over
// HTTP, the way a real scraper would: the Prometheus exposition must carry
// node-labeled cluster_node_ counters and pass-latency histogram buckets,
// and the /trace event log must hold at least one run with node-attributed
// spans (the cluster's merged timeline).
func checkScrape(base string) error {
	body, err := httpGet(base + "/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"cluster_node_",
		`node="`,
		"freeride_pass_duration_seconds_bucket",
		"cluster_pass_duration_seconds_bucket",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("/metrics exposition is missing %q", want)
		}
	}
	body, err = httpGet(base + "/trace")
	if err != nil {
		return err
	}
	var log struct {
		Runs []struct {
			Job   uint64 `json:"job"`
			Spans []struct {
				Node int `json:"node"`
			} `json:"spans"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(body), &log); err != nil {
		return fmt.Errorf("/trace JSON: %w", err)
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("/trace event log is empty")
	}
	for _, r := range log.Runs {
		if r.Job == 0 || len(r.Spans) == 0 {
			continue
		}
		for _, sp := range r.Spans {
			if sp.Node >= 0 {
				return nil
			}
		}
	}
	return fmt.Errorf("/trace has no job-attributed run with node-attributed spans (no merged cluster timeline)")
}

// httpGet fetches url and returns the body as a string.
func httpGet(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(b), nil
}

// writeReport writes one experiment's JSON report to path.
func writeReport(path string, r *bench.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
