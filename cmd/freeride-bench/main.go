// Command freeride-bench regenerates the paper's evaluation figures
// (Figures 9-13) and this repository's ablation studies as printed tables.
//
// Usage:
//
//	freeride-bench -list
//	freeride-bench -exp fig9                 # one experiment, default scale
//	freeride-bench -exp fig9 -scale 1        # paper-sized dataset
//	freeride-bench -exp all -threads 1,2,4,8
//
// Scale 1 reproduces the paper's dataset sizes (12 MB / 1.2 GB k-means
// inputs, 1000×10,000 / 1000×100,000 PCA matrices); the per-experiment
// defaults keep a full sweep around a minute while preserving the workload
// shape. Absolute times differ from the paper's 2007-era Xeon; the shape —
// version ordering, optimization factors, scaling trends — is what the
// tables' notes check.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chapelfreeride/internal/bench"
)

func main() {
	var (
		expFlag     = flag.String("exp", "all", "experiment id (see -list), or 'all' / 'figures' / 'ablations'")
		scaleFlag   = flag.Float64("scale", 0, "dataset scale relative to the paper's size (0 = per-experiment default)")
		threadsFlag = flag.String("threads", "", "comma-separated thread sweep (default 1,2,4,8 capped at GOMAXPROCS)")
		seedFlag    = flag.Int64("seed", 42, "dataset generation seed")
		repsFlag    = flag.Int("reps", 1, "repetitions per measurement (fastest kept)")
		formatFlag  = flag.String("format", "table", "output format: table | csv")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			src := e.Paper
			if src == "" {
				src = "ablation"
			}
			fmt.Printf("  %-13s %-10s %s (default scale %g)\n", e.ID, src, e.Title, e.DefaultScale)
		}
		return
	}

	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeride-bench:", err)
		os.Exit(2)
	}

	var selected []bench.Experiment
	switch *expFlag {
	case "all":
		selected = bench.Experiments()
	case "figures":
		for _, e := range bench.Experiments() {
			if e.Paper != "" {
				selected = append(selected, e)
			}
		}
	case "ablations":
		for _, e := range bench.Experiments() {
			if e.Paper == "" {
				selected = append(selected, e)
			}
		}
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Get(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "freeride-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		p := bench.Params{Threads: threads, Scale: *scaleFlag, Seed: *seedFlag, Reps: *repsFlag}.WithDefaults(e.DefaultScale)
		tbl, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "freeride-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *formatFlag == "csv" {
			if err := tbl.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "freeride-bench:", err)
				os.Exit(1)
			}
		} else {
			tbl.Fprint(os.Stdout)
		}
	}
}

func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
