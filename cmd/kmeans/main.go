// Command kmeans clusters a point dataset with any implementation version
// from the paper's evaluation.
//
// Usage:
//
//	kmeans -n 100000 -dim 10 -k 100 -iters 10 -threads 8 -version opt-2
//	kmeans -input data.frds -k 10 -version "manual FR"
//
// Without -input, a Gaussian-mixture dataset is generated (-n/-dim/-seed).
// Versions: sequential, chapel-native, generated, opt-1, opt-2,
// "manual FR", map-reduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

func main() {
	var (
		input   = flag.String("input", "", "dataset file (FRDS binary, or .csv with header); generated when empty")
		n       = flag.Int("n", 100000, "generated points")
		dim     = flag.Int("dim", 10, "generated dimensionality")
		seed    = flag.Int64("seed", 42, "generation seed")
		k       = flag.Int("k", 10, "clusters")
		iters   = flag.Int("iters", 10, "iterations")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		version = flag.String("version", "opt-2", "implementation version")
		nodes   = flag.Int("nodes", 0, "simulated cluster nodes (>1 runs 'manual FR' distributed over TCP)")
		verbose = flag.Bool("v", false, "print final centroids")

		metricsAddr = flag.String("metrics-addr", "", "serve the observability endpoint (/metrics, /report, /trace, /debug/vars, /debug/pprof) on this address")
		obsReport   = flag.Bool("obs-report", false, "print the obs counter report after the run")
	)
	flag.Parse()

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kmeans: metrics endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "kmeans: metrics at http://%s/metrics\n", srv.Addr)
	}
	if *obsReport || *metricsAddr != "" {
		defer obs.WriteReport(os.Stdout, obs.Default)
	}

	points, err := loadOrGenerate(*input, *n, *dim, *k, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		os.Exit(1)
	}
	v, err := parseVersion(*version)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		os.Exit(2)
	}
	if points.Rows < *k {
		fmt.Fprintf(os.Stderr, "kmeans: %d points cannot seed %d centroids\n", points.Rows, *k)
		os.Exit(2)
	}
	init := dataset.NewMatrix(*k, points.Cols)
	copy(init.Data, points.Data[:*k*points.Cols])

	cfg := apps.KMeansConfig{
		K: *k, Iterations: *iters,
		Engine: freeride.Config{Threads: *threads},
	}
	if *nodes > 1 {
		cres, err := apps.KMeansCluster(points, init, apps.KMeansClusterConfig{
			K: *k, Iterations: *iters, Nodes: *nodes,
			PerNode:   freeride.Config{Threads: *threads},
			Transport: cluster.TCP,
			Combine:   cluster.Tree,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kmeans:", err)
			os.Exit(1)
		}
		fmt.Printf("cluster run: nodes=%d points=%d k=%d iters=%d\n", *nodes, points.Rows, *k, *iters)
		fmt.Printf("total=%.3fs, global combination moved %d bytes over TCP\n",
			cres.Timing.Total().Seconds(), cres.BytesMoved)
		return
	}
	res, err := apps.KMeans(v, points, init, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		os.Exit(1)
	}
	fmt.Printf("version=%s points=%d dim=%d k=%d iters=%d threads=%d\n",
		v, points.Rows, points.Cols, *k, *iters, cfg.Engine.Threads)
	fmt.Printf("total=%.3fs (linearize=%.3fs hotvar=%.3fs reduce=%.3fs update=%.3fs)\n",
		res.Timing.Total().Seconds(), res.Timing.Linearize.Seconds(),
		res.Timing.HotVar.Seconds(), res.Timing.Reduce.Seconds(), res.Timing.Update.Seconds())
	var assigned float64
	for _, c := range res.Counts {
		assigned += c
	}
	fmt.Printf("points assigned in final iteration: %.0f\n", assigned)
	if *verbose {
		for c := 0; c < *k; c++ {
			fmt.Printf("centroid %3d (%6.0f pts):", c, res.Counts[c])
			for j := 0; j < points.Cols; j++ {
				fmt.Printf(" %8.3f", res.Centroids.At(c, j))
			}
			fmt.Println()
		}
	}
}

func loadOrGenerate(path string, n, dim, k int, seed int64) (*dataset.Matrix, error) {
	if path != "" {
		return loadDataset(path)
	}
	points, _ := dataset.GaussianMixture(n, dim, k, seed)
	return points, nil
}

// loadDataset reads FRDS binary or, for .csv paths, header-first CSV.
func loadDataset(path string) (*dataset.Matrix, error) {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f, true)
	}
	return dataset.ReadFile(path)
}

func parseVersion(s string) (apps.Version, error) {
	for _, v := range []apps.Version{apps.Seq, apps.ChapelNative, apps.Generated,
		apps.Opt1, apps.Opt2, apps.Opt3, apps.ManualFR, apps.MapReduce} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown version %q", s)
}
