// Command frds-gen generates synthetic datasets in the repository's binary
// FRDS format, for use with cmd/kmeans -input and cmd/pca -input.
//
// Usage:
//
//	frds-gen -kind gaussian -n 157286 -dim 10 -clusters 100 -o kmeans-12mb.frds
//	frds-gen -kind uniform -n 100000 -dim 1000 -o pca-large.frds
//
// The first line reproduces the paper's 12 MB k-means dataset; -n 15728640
// gives the 1.2 GB one.
package main

import (
	"flag"
	"fmt"
	"os"

	"chapelfreeride/internal/dataset"
)

func main() {
	var (
		kind     = flag.String("kind", "gaussian", "dataset kind: gaussian | uniform")
		n        = flag.Int("n", 100000, "rows (data elements)")
		dim      = flag.Int("dim", 10, "columns (features)")
		clusters = flag.Int("clusters", 20, "gaussian mixture components")
		lo       = flag.Float64("lo", -5, "uniform lower bound")
		hi       = flag.Float64("hi", 5, "uniform upper bound")
		seed     = flag.Int64("seed", 42, "generation seed")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "frds-gen: -o is required")
		os.Exit(2)
	}

	var m *dataset.Matrix
	switch *kind {
	case "gaussian":
		m, _ = dataset.GaussianMixture(*n, *dim, *clusters, *seed)
	case "uniform":
		m = dataset.UniformMatrix(*n, *dim, *seed, *lo, *hi)
	default:
		fmt.Fprintf(os.Stderr, "frds-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := dataset.WriteFile(*out, m); err != nil {
		fmt.Fprintln(os.Stderr, "frds-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d×%d (%.1f MB)\n", *out, m.Rows, m.Cols, float64(m.SizeBytes())/(1<<20))
}
