// Command frds-gen generates synthetic datasets in the repository's binary
// FRDS format (or CSV), for use with cmd/kmeans -input, cmd/pca -input, and
// the abl-ingest benchmark.
//
// Usage:
//
//	frds-gen -kind gaussian -n 157286 -dim 10 -clusters 100 -o kmeans-12mb.frds
//	frds-gen -kind uniform -n 100000 -dim 1000 -o pca-large.frds
//	frds-gen -kind uniform -n 15728640 -dim 10 -layout col -o cols.frds
//	frds-gen -kind uniform -n 100000 -dim 10 -format csv -o points.csv
//
// The first line reproduces the paper's 12 MB k-means dataset; -n 15728640
// gives the 1.2 GB one. -layout row (the default) writes the v2 row-major
// payload that mmap-backed ingestion serves zero-copy; -layout col writes
// column-major for columnar scans. -format csv emits numeric CSV instead of
// FRDS, for exercising the parse-every-pass baseline.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"chapelfreeride/internal/dataset"
)

func main() {
	var (
		kind     = flag.String("kind", "gaussian", "dataset kind: gaussian | uniform")
		n        = flag.Int("n", 100000, "rows (data elements)")
		dim      = flag.Int("dim", 10, "columns (features)")
		clusters = flag.Int("clusters", 20, "gaussian mixture components")
		lo       = flag.Float64("lo", -5, "uniform lower bound")
		hi       = flag.Float64("hi", 5, "uniform upper bound")
		seed     = flag.Int64("seed", 42, "generation seed")
		layout   = flag.String("layout", "row", "binary payload layout: row | col")
		format   = flag.String("format", "frds", "output format: frds | csv")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "frds-gen: -o is required")
		os.Exit(2)
	}
	var lay dataset.Layout
	switch *layout {
	case "row":
		lay = dataset.RowMajor
	case "col":
		lay = dataset.ColMajor
	default:
		fmt.Fprintf(os.Stderr, "frds-gen: unknown layout %q (want row or col)\n", *layout)
		os.Exit(2)
	}

	var m *dataset.Matrix
	switch *kind {
	case "gaussian":
		m, _ = dataset.GaussianMixture(*n, *dim, *clusters, *seed)
	case "uniform":
		m = dataset.UniformMatrix(*n, *dim, *seed, *lo, *hi)
	default:
		fmt.Fprintf(os.Stderr, "frds-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	var err error
	switch *format {
	case "frds":
		err = dataset.WriteFileLayout(*out, m, lay)
	case "csv":
		err = writeCSVFile(*out, m)
	default:
		fmt.Fprintf(os.Stderr, "frds-gen: unknown format %q (want frds or csv)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "frds-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d×%d (%.1f MB)\n", *out, m.Rows, m.Cols, float64(m.SizeBytes())/(1<<20))
}

// writeCSVFile serializes m as headerless numeric CSV.
func writeCSVFile(path string, m *dataset.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	werr := dataset.WriteCSV(bw, m, nil)
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
