package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitClean: a tree with no findings exits 0.
func TestExitClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "clean.go", "package clean\n\nfunc ok() int { return 1 }\n")
	var out, errw bytes.Buffer
	if got := run([]string{dir}, &out, &errw); got != exitClean {
		t.Fatalf("exit = %d, want %d; stderr: %s", got, exitClean, errw.String())
	}
}

// TestExitFindings: a dirty tree exits 1 and prints vet-style findings. The
// rowalias fixture package is valid Go with known violations.
func TestExitFindings(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "vet", "testdata", "rowalias")
	var out, errw bytes.Buffer
	if got := run([]string{"-analyzers", "rowalias", fixture}, &out, &errw); got != exitFindings {
		t.Fatalf("exit = %d, want %d; stderr: %s", got, exitFindings, errw.String())
	}
	if !strings.Contains(out.String(), "rowalias:") {
		t.Fatalf("no vet-style findings printed:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Fatalf("no finding count on stderr: %s", errw.String())
	}
}

// TestExitBrokenLoad: unparsable source is a load error, not a finding —
// exit 2 so CI can tell "broken analyzer run" from "dirty repo".
func TestExitBrokenLoad(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "broken.go", "package broken\n\nfunc {{{\n")
	var out, errw bytes.Buffer
	if got := run([]string{dir}, &out, &errw); got != exitBroken {
		t.Fatalf("exit = %d, want %d", got, exitBroken)
	}
	if errw.Len() == 0 {
		t.Fatal("load error not reported on stderr")
	}
}

// TestExitBrokenFlags: unknown analyzers and bad flags are invocation
// errors, also exit 2.
func TestExitBrokenFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if got := run([]string{"-analyzers", "nope"}, &out, &errw); got != exitBroken {
		t.Fatalf("unknown analyzer: exit = %d, want %d", got, exitBroken)
	}
	if got := run([]string{"-no-such-flag"}, &out, &errw); got != exitBroken {
		t.Fatalf("bad flag: exit = %d, want %d", got, exitBroken)
	}
}

func writeFile(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}
