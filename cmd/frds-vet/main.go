// Command frds-vet runs the FREERIDE-specific static analyzers over a
// source tree and prints findings vet-style (file:line:col: analyzer: msg),
// exiting non-zero when any finding survives.
//
//	frds-vet [-analyzers kernelpure,ctxflow,obscount,lockorder,inspectorhoist,rowalias] [dir...]
//
// With no directories it analyzes the current directory tree. The analyzers
// (see internal/vet) check:
//
//	kernelpure     — reduction kernels must not write captured state, read
//	                 time.Now/rand, or spawn goroutines
//	ctxflow        — internal/ library code must call RunContext/RunIntoContext
//	obscount       — obs counters registered once at package scope, not in loops
//	lockorder      — no user callback invoked while a mutex is held
//	inspectorhoist — inspector plans / index tables built at translate time,
//	                 never inside per-split reduction bodies
//	rowalias       — kernels must not retain or mutate borrowed row views
//	                 (args.Data / args.Row alias zero-copy sources)
//
// Suppress a finding in place with `//frds:vet-ignore <analyzer> -- reason`
// on the flagged line or the line above.
//
// frds-vet is a standalone driver rather than a `go vet -vettool` plugin:
// the vettool protocol requires golang.org/x/tools/go/analysis, a
// dependency this module does not take (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"chapelfreeride/internal/vet"
)

func main() {
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzer list (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := vet.ByName(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var findings []vet.Finding
	for _, root := range roots {
		pkgs, err := vet.Load(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frds-vet:", err)
			os.Exit(2)
		}
		findings = append(findings, vet.Check(pkgs, analyzers)...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "frds-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
