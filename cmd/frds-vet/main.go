// Command frds-vet runs the FREERIDE-specific static analyzers over a
// source tree and prints findings vet-style (file:line:col: analyzer: msg),
// exiting non-zero when any finding survives.
//
//	frds-vet [-analyzers kernelpure,ctxflow,obscount,lockorder,inspectorhoist,rowalias] [dir...]
//
// With no directories it analyzes the current directory tree. The analyzers
// (see internal/vet) check:
//
//	kernelpure     — reduction kernels must not write captured state, read
//	                 time.Now/rand, or spawn goroutines
//	ctxflow        — internal/ library code must call RunContext/RunIntoContext
//	obscount       — obs counters registered once at package scope, not in loops
//	lockorder      — no user callback invoked while a mutex is held
//	inspectorhoist — inspector plans / index tables built at translate time,
//	                 never inside per-split reduction bodies
//	rowalias       — kernels must not retain or mutate borrowed row views
//	                 (args.Data / args.Row alias zero-copy sources)
//
// Suppress a finding in place with `//frds:vet-ignore <analyzer> -- reason`
// on the flagged line or the line above.
//
// frds-vet is a standalone driver rather than a `go vet -vettool` plugin:
// the vettool protocol requires golang.org/x/tools/go/analysis, a
// dependency this module does not take (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chapelfreeride/internal/vet"
)

// Exit statuses. CI distinguishes "the repo is dirty" (findings, fix the
// code) from "the analyzer run itself broke" (bad flags, unknown analyzer,
// unparsable source — fix the invocation or the tree).
const (
	exitClean    = 0
	exitFindings = 1
	exitBroken   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the vet driver and returns its exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("frds-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzersFlag := fs.String("analyzers", "", "comma-separated analyzer list (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return exitBroken
	}

	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers, err := vet.ByName(*analyzersFlag)
	if err != nil {
		fmt.Fprintln(stderr, "frds-vet:", err)
		return exitBroken
	}

	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var findings []vet.Finding
	for _, root := range roots {
		pkgs, err := vet.Load(root)
		if err != nil {
			fmt.Fprintln(stderr, "frds-vet:", err)
			return exitBroken
		}
		findings = append(findings, vet.Check(pkgs, analyzers)...)
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "frds-vet: %d finding(s)\n", len(findings))
		return exitFindings
	}
	return exitClean
}
