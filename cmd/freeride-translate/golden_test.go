package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chapelfreeride/internal/verify"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update-golden (the emitc golden idiom: the checked-in file is
// the reviewed reference; inspect the diff before committing).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// render runs the analysis and concatenates both streams with markers, so
// one golden file pins the full compiler-style transcript: stdout reports
// AND stderr diagnostics, in emission order within each stream.
func render(t *testing.T, targets []analysisTarget, threads int, asJSON bool) (string, int) {
	t.Helper()
	var out, errw bytes.Buffer
	code := runAnalysis(targets, threads, asJSON, &out, &errw)
	return "--- stdout ---\n" + out.String() + "--- stderr ---\n" + errw.String(), code
}

// TestAnalyzeGoldenAll pins the -analyze report for every built-in app at
// fixed parameters. The sparse targets run the seeded synthetic inspector,
// so the conflict histograms (and hence the advice) are deterministic.
func TestAnalyzeGoldenAll(t *testing.T) {
	targets, err := analysisTargets("all", 4, 3, 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	got, code := render(t, targets, 8, false)
	if code != 0 {
		t.Fatalf("clean built-in plans exited %d:\n%s", code, got)
	}
	checkGolden(t, "analyze_all", got)
}

// TestAnalyzeGoldenJSON pins the -analyze-json machine shape for one dense
// and one sparse class.
func TestAnalyzeGoldenJSON(t *testing.T) {
	kmeans, err := analysisTargets("kmeans", 4, 3, 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	degree, err := analysisTargets("degree", 4, 3, 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	got, code := render(t, append(kmeans, degree...), 4, true)
	if code != 0 {
		t.Fatalf("JSON analysis exited %d:\n%s", code, got)
	}
	checkGolden(t, "analyze_json", got)
}

// TestAnalyzeGoldenDiagnostics pins the multi-diagnostic transcript:
// verifier errors and warnings interleaved with the FRV050+ analysis
// advisories, per target in encounter order (verifier findings first, then
// the profile's), across multiple targets in input order.
func TestAnalyzeGoldenDiagnostics(t *testing.T) {
	// Target 1: a plan that is simultaneously out of bounds (FRV013, error),
	// word-count inconsistent (FRV014, error), and whose 512x512 object
	// blows the cache budget (FRV051, warning).
	broken := &verify.Plan{
		Class: "broken-loop", Opt: 2, OptName: "opt-2", HasKernel: true,
		Object: verify.Shape{Groups: 512, Elems: 512},
		Data: &verify.Access{
			Name: "data", Elems: 100, InnerLen: 4,
			U0: 4, U1: 1, WordLen: 350, Levels: 2, AllReal: true,
		},
	}
	// Target 2: structurally fine, but opt-3 without a block kernel
	// (FRV030, warning) reducing into a single cell (FRV050, warning).
	hotspot := &verify.Plan{
		Class: "hotspot", Opt: 3, OptName: "opt-3", HasKernel: true,
		Object: verify.Shape{Groups: 1, Elems: 1},
		Data: &verify.Access{
			Name: "data", Elems: 100, InnerLen: 4,
			U0: 4, U1: 1, WordLen: 400, Levels: 2, AllReal: true,
		},
	}
	// Target 3: an inspector table with an out-of-range entry (FRV020
	// family, error) over a degenerately skewed scatter.
	badTable := &verify.Plan{
		Class: "bad-table", Opt: 3, OptName: "opt-3", HasKernel: true, HasBlockKernel: true,
		Object: verify.Shape{Groups: 8, Elems: 1},
		Tables: []verify.TableAccess{
			{Name: "out", Domain: 4, Entries: []int32{0, 1, 99, 2}, Bound: 8},
		},
	}
	targets := []analysisTarget{
		{name: "broken-loop", plan: broken},
		{name: "hotspot", plan: hotspot},
		{name: "bad-table", plan: badTable},
	}
	got, code := render(t, targets, 8, false)
	if code != 1 {
		t.Fatalf("plans with error diagnostics exited %d, want 1:\n%s", code, got)
	}
	checkGolden(t, "analyze_diagnostics", got)
}
