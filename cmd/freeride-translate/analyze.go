package main

import (
	"encoding/json"
	"fmt"
	"io"

	"chapelfreeride/internal/analyze"
	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/verify"
)

// analysisTarget is one plan the -analyze pass inspects: the lowered
// verifier IR plus the name it reports under.
type analysisTarget struct {
	name string
	plan *verify.Plan
}

// analysisJSON is the -analyze-json element shape, one per analyzed plan.
type analysisJSON struct {
	Class       string               `json:"class"`
	Opt         string               `json:"opt"`
	Threads     int                  `json:"threads"`
	Profile     *analyze.PlanProfile `json:"profile"`
	Advice      analyze.Advice       `json:"advice"`
	Diagnostics []string             `json:"diagnostics,omitempty"`
}

// analysisTargets lowers the requested class (or every built-in app for
// "all") into verifier plans. Dense classes analyze at opt-2 — the level
// whose affine constants the footprint math consumes; sparse classes run
// the inspector over a small deterministic synthetic input (the table
// proofs, and hence the conflict histogram, are data-dependent by nature).
func analysisTargets(className string, k, dim, rows, nnz int) ([]analysisTarget, error) {
	var out []analysisTarget
	add := func(name string, plan *verify.Plan, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, analysisTarget{name: name, plan: plan})
		return nil
	}
	want := func(name string) bool { return className == "all" || className == name }

	if want("kmeans") {
		cents := apps.BoxPoints(zeroMatrix(k, dim))
		cls := apps.KMeansClass(k, dim, cents)
		ty := pointArrayType(dim, rows)
		if err := add("kmeans", core.PlanFor(cls, ty, core.Opt2), nil); err != nil {
			return nil, err
		}
	}
	if want("pca-mean") {
		ty := realMatrixType(dim, rows)
		if err := add("pca-mean", core.PlanFor(apps.PCAMeanClass(dim), ty, core.Opt2), nil); err != nil {
			return nil, err
		}
	}
	if want("pca-cov") {
		ty := realMatrixType(dim, rows)
		cls := apps.PCACovClass(dim, chapel.RealArray(make([]float64, dim)...))
		if err := add("pca-cov", core.PlanFor(cls, ty, core.Opt2), nil); err != nil {
			return nil, err
		}
	}
	if want("em") {
		means := apps.BoxPoints(zeroMatrix(k, dim))
		vars := apps.BoxVector(make([]float64, k))
		cls := apps.EMClass(k, dim, means, vars)
		ty := pointArrayType(dim, rows)
		if err := add("em", core.PlanFor(cls, ty, core.Opt2), nil); err != nil {
			return nil, err
		}
	}
	if want("spmv") {
		coo := syntheticCOO(rows, rows, nnz, false)
		plan, err := core.NewInspectorPlan(coo)
		if err != nil {
			return nil, fmt.Errorf("spmv: %w", err)
		}
		cls := apps.SpMVClass(apps.SpMVConfig{Rows: rows, Cols: rows, X: make([]float64, rows)})
		if err := add("spmv", core.SparsePlanFor(cls, plan, core.Opt3), nil); err != nil {
			return nil, err
		}
	}
	if want("degree") {
		// A hub-skewed edge list: real graphs are power-law, and the skew
		// exercises the conflict-degree analysis the uniform spmv misses.
		coo := syntheticCOO(rows, rows, nnz, true)
		plan, err := core.NewInspectorPlan(coo)
		if err != nil {
			return nil, fmt.Errorf("degree: %w", err)
		}
		cls := apps.DegreeClass(apps.DegreeConfig{Nodes: rows})
		if err := add("degree", core.SparsePlanFor(cls, plan, core.Opt3), nil); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("unknown class %q: want kmeans, pca-mean, pca-cov, em, spmv, degree, or all", className)
	}
	return out, nil
}

func pointArrayType(dim, rows int) *chapel.Type {
	return chapel.ArrayType(chapel.RecordType("Point",
		chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, dim)}), 1, rows)
}

func realMatrixType(dim, rows int) *chapel.Type {
	return chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, dim), 1, rows)
}

// syntheticCOO builds a deterministic nnz-entry COO matrix. hub skews ~a
// third of the rows onto row 0 (a power-law-ish hot node); otherwise rows
// are uniform. Values are 1.
func syntheticCOO(rows, cols, nnz int, hub bool) *core.SparseCOO {
	coo := &core.SparseCOO{
		Rows: rows, Cols: cols,
		R: make([]int32, nnz), C: make([]int32, nnz), V: make([]float64, nnz),
	}
	state := uint64(42)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for i := 0; i < nnz; i++ {
		if hub && i%3 == 0 {
			coo.R[i] = 0
		} else {
			coo.R[i] = int32(next(rows))
		}
		coo.C[i] = int32(next(cols))
		coo.V[i] = 1
	}
	return coo
}

// runAnalysis verifies, profiles, and advises each target: diagnostics
// (verifier FRV0xx + analysis FRV05x, in encounter order) go to errw
// compiler-style; the report (or the JSON array) goes to w. Returns the
// process exit code: 1 when any diagnostic is an error or a profile comes
// back empty, 0 otherwise.
func runAnalysis(targets []analysisTarget, threads int, asJSON bool, w, errw io.Writer) int {
	opts := analyze.Options{}
	failed := false
	var payload []analysisJSON
	for _, t := range targets {
		ds := verify.CheckPlan(t.plan)
		pr := analyze.Profile(t.plan, opts)
		ds = append(ds, pr.Diags...)
		adv := analyze.Advise(pr, threads)
		for _, d := range ds {
			fmt.Fprintln(errw, d)
		}
		if ds.HasErrors() {
			failed = true
		}
		if pr.Domain <= 0 || pr.Writes.Cells <= 0 {
			fmt.Fprintf(errw, "freeride-translate: %s: empty plan profile (domain %d, object cells %d)\n",
				t.name, pr.Domain, pr.Writes.Cells)
			failed = true
		}
		if asJSON {
			payload = append(payload, analysisJSON{
				Class:       t.name,
				Opt:         pr.OptName,
				Threads:     threads,
				Profile:     pr,
				Advice:      adv,
				Diagnostics: diagStrings(ds),
			})
			continue
		}
		fmt.Fprint(w, pr.Report(adv, threads))
		fmt.Fprintln(w)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(errw, "freeride-translate:", err)
			return 1
		}
	}
	if failed {
		return 1
	}
	return 0
}

func diagStrings(ds verify.Diagnostics) []string {
	if len(ds) == 0 {
		return nil
	}
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}
