// Command freeride-translate shows the translator's work for the built-in
// reduction classes: the dataset's linearization metadata (the paper's
// Fig. 6 information) and the C-like reduction function the modified Chapel
// compiler would generate at each optimization level (compare Fig. 5 and
// Fig. 8 of the paper).
//
// Usage:
//
//	freeride-translate -class kmeans -k 100 -dim 10
//	freeride-translate -class pca-cov -dim 64
//	freeride-translate -class kmeans -opt opt-2
//
// It can also start from Chapel source text (the subset chapel.ParseDecls
// accepts), showing the mapping metadata for an access path through the
// declared structure — the paper's Fig. 6 worked end to end:
//
//	freeride-translate -decl fig6.chpl -var data -path b1,a1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/verify"
)

func main() {
	var (
		className = flag.String("class", "kmeans", "reduction class: kmeans | pca-mean | pca-cov (with -analyze also em | spmv | degree | all)")
		k         = flag.Int("k", 8, "k-means cluster count")
		dim       = flag.Int("dim", 4, "feature dimensionality")
		optName   = flag.String("opt", "", "single level (generated | opt-1 | opt-2); all when empty")
		declFile  = flag.String("decl", "", "Chapel declaration file; with -var/-path, show its mapping metadata")
		varName   = flag.String("var", "", "declared variable to analyze (with -decl)")
		pathFlag  = flag.String("path", "", "comma-separated field path through the variable (with -decl)")
		doAnalyze = flag.Bool("analyze", false, "run the translate-time cost/contention analysis and print the plan profile + advice")
		doJSON    = flag.Bool("analyze-json", false, "like -analyze, but emit a JSON array for tooling")
		threads   = flag.Int("threads", 8, "worker count the advisor plans for (with -analyze)")
		rows      = flag.Int("rows", 1000, "dataset rows (dense) / matrix rows (sparse) the analysis assumes (with -analyze)")
		nnz       = flag.Int("nnz", 4096, "synthetic nonzero count for sparse classes (with -analyze)")
	)
	flag.Parse()

	if *declFile != "" {
		if err := analyzeDecl(*declFile, *varName, *pathFlag); err != nil {
			fmt.Fprintln(os.Stderr, "freeride-translate:", err)
			os.Exit(1)
		}
		return
	}

	if *doAnalyze || *doJSON {
		targets, err := analysisTargets(*className, *k, *dim, *rows, *nnz)
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeride-translate:", err)
			os.Exit(2)
		}
		os.Exit(runAnalysis(targets, *threads, *doJSON, os.Stdout, os.Stderr))
	}

	var (
		cls    *core.ReductionClass
		dataTy *chapel.Type
	)
	switch *className {
	case "kmeans":
		cents := apps.BoxPoints(zeroMatrix(*k, *dim))
		cls = apps.KMeansClass(*k, *dim, cents)
		dataTy = chapel.ArrayType(chapel.RecordType("Point",
			chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, *dim)}), 1, 1000)
	case "pca-mean":
		cls = apps.PCAMeanClass(*dim)
		dataTy = chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, *dim), 1, 1000)
	case "pca-cov":
		cls = apps.PCACovClass(*dim, chapel.RealArray(make([]float64, *dim)...))
		dataTy = chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, *dim), 1, 1000)
	default:
		fmt.Fprintf(os.Stderr, "freeride-translate: unknown class %q\n", *className)
		os.Exit(2)
	}

	meta, err := core.MetaFor(dataTy, cls.Path...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeride-translate:", err)
		os.Exit(1)
	}
	fmt.Println("=== information collected during linearization (Fig. 6) ===")
	fmt.Println(meta)
	fmt.Println()

	levels := core.OptLevels()
	if *optName != "" {
		levels = nil
		for _, l := range core.OptLevels() {
			if l.String() == *optName {
				levels = []core.OptLevel{l}
			}
		}
		if levels == nil {
			fmt.Fprintf(os.Stderr, "freeride-translate: unknown opt level %q\n", *optName)
			os.Exit(2)
		}
	}
	// Run the translate-time verifier first and print its findings
	// compiler-style (pos: severity[CODE]: msg). EmitC is gated on the same
	// checks, so rejecting here mirrors the paper's compiler refusing to
	// translate the reduction at all.
	failed := false
	for _, opt := range levels {
		for _, d := range core.VerifyType(cls, dataTy, opt) {
			fmt.Fprintln(os.Stderr, d)
			if d.Severity == verify.SeverityError {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	for _, opt := range levels {
		src, err := core.EmitC(cls, dataTy, opt)
		if err != nil {
			if verr := verify.AsError(err); verr != nil {
				fmt.Fprintln(os.Stderr, verr.Diags.Render())
			} else {
				fmt.Fprintln(os.Stderr, "freeride-translate:", err)
			}
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", opt, src)
	}
}

func zeroMatrix(rows, cols int) *dataset.Matrix {
	return dataset.NewMatrix(rows, cols)
}

// analyzeDecl parses a Chapel declaration file and prints the Fig. 6
// linearization metadata for the named variable and access path.
func analyzeDecl(path, varName, fieldPath string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	decls, err := chapel.ParseDecls(string(src))
	if err != nil {
		return err
	}
	if varName == "" {
		if len(decls.VarOrder) == 0 {
			return fmt.Errorf("no variables declared in %s", path)
		}
		varName = decls.VarOrder[0]
	}
	ty, err := decls.Var(varName)
	if err != nil {
		return err
	}
	var fields []string
	if fieldPath != "" {
		fields = strings.Split(fieldPath, ",")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
	}
	fmt.Printf("var %s: %s\n", varName, ty)
	fmt.Printf("linearized size: %d bytes\n\n", core.SizeOf(ty))
	meta, err := core.MetaFor(ty, fields...)
	if err != nil {
		return err
	}
	fmt.Println("=== information collected during linearization (Fig. 6) ===")
	fmt.Println(meta)
	return nil
}
