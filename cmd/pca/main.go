// Command pca computes the mean vector and covariance matrix of a dataset —
// the paper's second evaluation application — with any available version.
//
// Usage:
//
//	pca -elems 10000 -dims 100 -threads 8 -version opt-2
//	pca -input data.frds -version "manual FR"
//
// The paper's datasets are 1000 dims × 10,000 or 100,000 elements
// (-dims 1000 -elems 100000 reproduces the large one).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

func main() {
	var (
		input   = flag.String("input", "", "dataset file (FRDS binary, or .csv with header); generated when empty")
		elems   = flag.Int("elems", 10000, "generated data elements (matrix rows)")
		dims    = flag.Int("dims", 100, "generated dimensionality (matrix columns)")
		seed    = flag.Int64("seed", 42, "generation seed")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		version = flag.String("version", "opt-2", "implementation version (sequential, generated, opt-1, opt-2, \"manual FR\")")
		verbose = flag.Bool("v", false, "print the mean vector and covariance diagonal")

		metricsAddr = flag.String("metrics-addr", "", "serve the observability endpoint (/metrics, /report, /trace, /debug/vars, /debug/pprof) on this address")
		obsReport   = flag.Bool("obs-report", false, "print the obs counter report after the run")
	)
	flag.Parse()

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pca: metrics endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pca: metrics at http://%s/metrics\n", srv.Addr)
	}
	if *obsReport || *metricsAddr != "" {
		defer obs.WriteReport(os.Stdout, obs.Default)
	}

	var data *dataset.Matrix
	var err error
	switch {
	case *input != "" && strings.HasSuffix(*input, ".csv"):
		var f *os.File
		if f, err = os.Open(*input); err == nil {
			data, err = dataset.ReadCSV(f, true)
			f.Close()
		}
	case *input != "":
		data, err = dataset.ReadFile(*input)
	default:
		data = dataset.UniformMatrix(*elems, *dims, *seed, -5, 5)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pca:", err)
		os.Exit(1)
	}
	v, err := parseVersion(*version)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pca:", err)
		os.Exit(2)
	}
	res, err := apps.PCA(v, data, apps.PCAConfig{Engine: freeride.Config{Threads: *threads}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pca:", err)
		os.Exit(1)
	}
	fmt.Printf("version=%s elements=%d dims=%d\n", v, data.Rows, data.Cols)
	fmt.Printf("total=%.3fs (linearize=%.3fs reduce=%.3fs)\n",
		res.Timing.Total().Seconds(), res.Timing.Linearize.Seconds(), res.Timing.Reduce.Seconds())
	if *verbose {
		fmt.Print("mean:")
		for j := 0; j < min(data.Cols, 12); j++ {
			fmt.Printf(" %7.3f", res.Mean[j])
		}
		fmt.Println()
		fmt.Print("var: ")
		for j := 0; j < min(data.Cols, 12); j++ {
			fmt.Printf(" %7.3f", res.Cov.At(j, j))
		}
		fmt.Println()
	}
}

func parseVersion(s string) (apps.Version, error) {
	for _, v := range []apps.Version{apps.Seq, apps.Generated, apps.Opt1, apps.Opt2, apps.Opt3, apps.ManualFR} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown version %q", s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
