// Command freeride-serve runs the reduction-as-a-service frontend: an
// HTTP/JSON job server that accepts reduction jobs (a registered kernel —
// kmeans, pca, em, or custom — applied to a registered dataset recipe) and
// executes them on a pool of persistent freeride.Engine sessions.
//
// Usage:
//
//	freeride-serve -addr :8080
//	freeride-serve -addr 127.0.0.1:0 -engines 2 -threads 4 -concurrency 8
//	freeride-serve -queue 1024 -tenant-quota 4 -cache-bytes 268435456
//
// API (also mounted: /metrics, /report, /trace, /debug/pprof):
//
//	POST /v1/datasets      register a dataset recipe (name, kind, rows, ...)
//	GET  /v1/datasets      list recipes
//	POST /v1/jobs          submit {kernel, dataset, tenant, params, wait}
//	GET  /v1/jobs/{id}     poll a job
//	GET  /v1/kernels       list kernels
//	GET  /healthz          liveness (503 once draining)
//
// Admission control: the queue depth is bounded (-queue); overflow answers
// 429 with a Retry-After hint. Each tenant runs at most -tenant-quota jobs
// concurrently and runner slots rotate across tenants fairly, so one greedy
// tenant cannot starve the rest.
//
// Shutdown: SIGTERM/SIGINT stops intake (new submissions get 503), lets the
// admitted backlog and running jobs finish, then exits. -drain-timeout
// bounds the wait; past it, in-flight passes are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		engines      = flag.Int("engines", 2, "engine sessions in the pool")
		threads      = flag.Int("threads", 0, "worker threads per engine session (0 = GOMAXPROCS)")
		splitRows    = flag.Int("split", 0, "rows per split (0 = engine default)")
		concurrency  = flag.Int("concurrency", 0, "jobs executing at once (0 = 2×engines)")
		queueDepth   = flag.Int("queue", 1024, "admission queue depth; overflow is rejected with 429")
		tenantQuota  = flag.Int("tenant-quota", 0, "per-tenant concurrent-job cap (0 = concurrency/2, -1 = unlimited)")
		cacheBytes   = flag.Int64("cache-bytes", 256<<20, "resident dataset cache bound in bytes")
		retainJobs   = flag.Int("retain-jobs", 4096, "finished jobs kept pollable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Engines:        *engines,
		Engine:         freeride.Config{Threads: *threads, SplitRows: *splitRows},
		MaxConcurrency: *concurrency,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		CacheBytes:     *cacheBytes,
		RetainJobs:     *retainJobs,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "freeride-serve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	fmt.Printf("freeride-serve listening on %s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-sigCtx.Done()
	fmt.Println("freeride-serve: draining (intake stopped, finishing admitted jobs)")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "freeride-serve: drain cut short: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutCtx)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "freeride-serve: close: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("freeride-serve: drained cleanly")
}
