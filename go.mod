module chapelfreeride

go 1.22
