// Benchmarks regenerating the paper's evaluation (one benchmark per figure,
// at reduced dataset sizes suitable for `go test -bench`) plus
// microbenchmarks for the mechanisms behind them: linearization, the
// mapping algorithm, reduction-object strategies, schedulers, and the boxed
// versus linearized access gap. For the full-size parameter sweeps and the
// printed series matching each figure, use cmd/freeride-bench.
package chapelfreeride

import (
	"fmt"
	"testing"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// benchThreads is the worker count for the application benchmarks.
const benchThreads = 4

// kmeansBenchData builds a deterministic point set and initial centroids.
func kmeansBenchData(n, dim, k int) (*dataset.Matrix, *dataset.Matrix) {
	points, _ := dataset.GaussianMixture(n, dim, k, 42)
	init := dataset.NewMatrix(k, dim)
	copy(init.Data, points.Data[:k*dim])
	return points, init
}

// benchKMeans runs one k-means version for b.N iterations of the workload.
// Boxing the dataset into Chapel values is test setup (the data is "born"
// in Chapel), so it happens outside the timer; everything the paper
// measures — linearization included — is inside.
func benchKMeans(b *testing.B, v apps.Version, n, k, iters int) {
	b.Helper()
	points, init := kmeansBenchData(n, 10, k)
	cfg := apps.KMeansConfig{
		K: k, Iterations: iters,
		Engine: freeride.Config{Threads: benchThreads, SplitRows: n / 32},
	}
	run := func() error { _, err := apps.KMeans(v, points, init, cfg); return err }
	switch v {
	case apps.Generated, apps.Opt1, apps.Opt2:
		boxed := apps.BoxPoints(points)
		opt := core.OptNone
		if v == apps.Opt1 {
			opt = core.Opt1
		} else if v == apps.Opt2 {
			opt = core.Opt2
		}
		run = func() error { _, err := apps.KMeansTranslated(boxed, init, opt, cfg); return err }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 9: k-means on the small dataset, k=100, i=10 (reduced to 8k points
// and i=2 for bench time); the four versions the figure compares.
func BenchmarkFig9KMeansSmallGenerated(b *testing.B) { benchKMeans(b, apps.Generated, 8000, 100, 2) }
func BenchmarkFig9KMeansSmallOpt1(b *testing.B)      { benchKMeans(b, apps.Opt1, 8000, 100, 2) }
func BenchmarkFig9KMeansSmallOpt2(b *testing.B)      { benchKMeans(b, apps.Opt2, 8000, 100, 2) }
func BenchmarkFig9KMeansSmallManualFR(b *testing.B)  { benchKMeans(b, apps.ManualFR, 8000, 100, 2) }

// Figure 10: k-means on the large dataset, k=10, i=10 (reduced).
func BenchmarkFig10KMeansLargeK10Generated(b *testing.B) {
	benchKMeans(b, apps.Generated, 60000, 10, 2)
}
func BenchmarkFig10KMeansLargeK10Opt1(b *testing.B)     { benchKMeans(b, apps.Opt1, 60000, 10, 2) }
func BenchmarkFig10KMeansLargeK10Opt2(b *testing.B)     { benchKMeans(b, apps.Opt2, 60000, 10, 2) }
func BenchmarkFig10KMeansLargeK10ManualFR(b *testing.B) { benchKMeans(b, apps.ManualFR, 60000, 10, 2) }

// Figure 11: k-means, k=100 with a single iteration — the configuration
// where the one-time linearization cost is proportionally largest.
func BenchmarkFig11KMeansLargeK100I1Generated(b *testing.B) {
	benchKMeans(b, apps.Generated, 30000, 100, 1)
}
func BenchmarkFig11KMeansLargeK100I1Opt1(b *testing.B) { benchKMeans(b, apps.Opt1, 30000, 100, 1) }
func BenchmarkFig11KMeansLargeK100I1Opt2(b *testing.B) { benchKMeans(b, apps.Opt2, 30000, 100, 1) }
func BenchmarkFig11KMeansLargeK100I1ManualFR(b *testing.B) {
	benchKMeans(b, apps.ManualFR, 30000, 100, 1)
}

// benchPCA runs one PCA version. As with benchKMeans, boxing is setup.
func benchPCA(b *testing.B, v apps.Version, elems, dims int) {
	b.Helper()
	data := dataset.UniformMatrix(elems, dims, 7, -5, 5)
	cfg := apps.PCAConfig{Engine: freeride.Config{Threads: benchThreads, SplitRows: elems / 32}}
	run := func() error { _, err := apps.PCA(v, data, cfg); return err }
	if v == apps.Opt2 {
		boxed := apps.BoxMatrix(data)
		run = func() error { _, err := apps.PCATranslated(boxed, core.Opt2, cfg); return err }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 12: PCA small (1000 dims × 10,000 elements; reduced to 48×2000).
func BenchmarkFig12PCASmallOpt2(b *testing.B)     { benchPCA(b, apps.Opt2, 2000, 48) }
func BenchmarkFig12PCASmallManualFR(b *testing.B) { benchPCA(b, apps.ManualFR, 2000, 48) }

// Figure 13: PCA large (1000 dims × 100,000 elements; reduced to 48×8000).
func BenchmarkFig13PCALargeOpt2(b *testing.B)     { benchPCA(b, apps.Opt2, 8000, 48) }
func BenchmarkFig13PCALargeManualFR(b *testing.B) { benchPCA(b, apps.ManualFR, 8000, 48) }

// ABL-ROBJ: reduction-object sharing strategies under a write-heavy
// histogram (every element accumulates once).
func BenchmarkAblationRObjStrategies(b *testing.B) {
	m := dataset.NewMatrix(100000, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % 64)
	}
	src := dataset.NewMemorySource(m)
	for _, st := range robj.Strategies() {
		b.Run(st.String(), func(b *testing.B) {
			eng := freeride.New(freeride.Config{Threads: benchThreads, Strategy: st, SplitRows: 4096})
			spec := freeride.Spec{
				Object: freeride.ObjectSpec{Groups: 64, Elems: 1, Op: robj.OpAdd},
				Reduction: func(a *freeride.ReductionArgs) error {
					for i := 0; i < a.NumRows; i++ {
						a.Accumulate(int(a.Row(i)[0]), 0, 1)
					}
					return nil
				},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(spec, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ABL-SCHED: split scheduling policies on a sum reduction.
func BenchmarkAblationSchedulers(b *testing.B) {
	m := dataset.UniformMatrix(200000, 4, 3, 0, 1)
	src := dataset.NewMemorySource(m)
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			var s float64
			for _, v := range a.Data {
				s += v
			}
			a.Accumulate(0, 0, s)
			return nil
		},
	}
	for _, pol := range sched.Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			eng := freeride.New(freeride.Config{Threads: benchThreads, Scheduler: pol, SplitRows: 2048})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(spec, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ABL-PIPE: sequential vs parallel linearization (the paper's future work).
func BenchmarkAblationPipelinedLinearization(b *testing.B) {
	points, _ := dataset.GaussianMixture(50000, 10, 8, 5)
	boxed := apps.BoxPoints(points)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.SetBytes(points.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LinearizeToWordsParallel(boxed, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ABL-MR: FREERIDE versus Map-Reduce on the same k-means iteration.
func BenchmarkAblationFreerideVsMapReduce(b *testing.B) {
	points, init := kmeansBenchData(30000, 10, 16)
	cases := []struct {
		name string
		v    apps.Version
		comb bool
	}{
		{"freeride", apps.ManualFR, false},
		{"mapreduce", apps.MapReduce, false},
		{"mapreduce-combiner", apps.MapReduce, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := apps.KMeansConfig{
				K: 16, Iterations: 1,
				Engine:      freeride.Config{Threads: benchThreads, SplitRows: 1024},
				UseCombiner: c.comb,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := apps.KMeans(c.v, points, init, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ABL-CHUNK: split-size sensitivity.
func BenchmarkAblationChunkSize(b *testing.B) {
	points, init := kmeansBenchData(50000, 10, 16)
	for _, splitRows := range []int{64, 512, 4096, 16384} {
		b.Run(fmt.Sprintf("split-%d", splitRows), func(b *testing.B) {
			cfg := apps.KMeansConfig{
				K: 16, Iterations: 1,
				Engine: freeride.Config{Threads: benchThreads, SplitRows: splitRows},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := apps.KMeansManualFR(points, init, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Microbenchmark: ComputeIndex (Algorithm 3) per access versus the
// strength-reduced base+stride walk — the essence of opt-1.
func BenchmarkMicroComputeIndexVsStride(b *testing.B) {
	pt := chapel.RecordType("Point",
		chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, 16)})
	ty := chapel.ArrayType(pt, 1, 1024)
	data := chapel.NewArray(ty)
	words, err := core.LinearizeToWords(data)
	if err != nil {
		b.Fatal(err)
	}
	meta, err := core.MetaFor(ty, "coords")
	if err != nil {
		b.Fatal(err)
	}
	wmeta, err := meta.Words()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("computeIndex-per-access", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			for row := 1; row <= 1024; row++ {
				for k := 1; k <= 16; k++ {
					sum += words[wmeta.ComputeIndex(row, k)]
				}
			}
		}
		_ = sum
	})
	b.Run("strength-reduced", func(b *testing.B) {
		var sum float64
		stride := wmeta.Stride()
		for i := 0; i < b.N; i++ {
			for row := 1; row <= 1024; row++ {
				base := wmeta.BaseIndex(row)
				for k := 0; k < 16; k++ {
					sum += words[base+k*stride]
				}
			}
		}
		_ = sum
	})
}

// Microbenchmark: boxed Chapel structure access versus linearized access —
// the essence of opt-2 (§V's overhead source 3).
func BenchmarkMicroBoxedVsLinearizedAccess(b *testing.B) {
	const k, dim = 64, 16
	cents := chapel.NewArray(chapel.ArrayType(chapel.RecordType("Point",
		chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, dim)}), 1, k))
	boxed, err := core.NewBoxedStateVec(cents, []string{"coords"})
	if err != nil {
		b.Fatal(err)
	}
	lin, err := core.NewWordStateVec(cents, []string{"coords"})
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]float64, dim)
	b.Run("boxed", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			for c := 1; c <= k; c++ {
				row := boxed.Row(c, scratch)
				for j := 0; j < dim; j++ {
					sum += row[j]
				}
			}
		}
		_ = sum
	})
	b.Run("linearized", func(b *testing.B) {
		var sum float64
		for i := 0; i < b.N; i++ {
			for c := 1; c <= k; c++ {
				row := lin.Row(c, scratch)
				for j := 0; j < dim; j++ {
					sum += row[j]
				}
			}
		}
		_ = sum
	})
}

// Microbenchmark: the Chapel global-view Reduce versus the FREERIDE engine
// on the same sum — the cost of boxed values end to end.
func BenchmarkMicroChapelReduceVsFreeride(b *testing.B) {
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 97)
	}
	boxed := chapel.RealArray(vals...)
	m := dataset.NewMatrix(n, 1)
	copy(m.Data, vals)
	b.Run("chapel-native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			chapel.Reduce(chapel.NewSumOp(), chapel.Over(boxed), benchThreads)
		}
	})
	b.Run("freeride", func(b *testing.B) {
		eng := freeride.New(freeride.Config{Threads: benchThreads, SplitRows: 4096})
		spec := freeride.Spec{
			Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
			Reduction: func(a *freeride.ReductionArgs) error {
				var s float64
				for _, v := range a.Data {
					s += v
				}
				a.Accumulate(0, 0, s)
				return nil
			},
		}
		src := dataset.NewMemorySource(m)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(spec, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}
