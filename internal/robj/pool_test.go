package robj

import (
	"strings"
	"testing"
)

// finish runs a tiny accumulate+merge cycle so the object is in the state a
// real pass leaves it in before Release hands it to the pool.
func finish(t *testing.T, o *Object) {
	t.Helper()
	o.Accumulate(0, 0, 0, 7)
	o.Merge()
	if !o.Merged() {
		t.Fatal("Merge did not mark object merged")
	}
}

func TestPoolGetMissThenHit(t *testing.T) {
	p := NewPool()
	o1, err := p.Get(FullLocking, OpAdd, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	finish(t, o1)
	if o1.Get(0, 0) != 7 {
		t.Fatalf("merged value = %v, want 7", o1.Get(0, 0))
	}
	if err := p.Put(o1); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("pool holds %d objects, want 1", p.Len())
	}
	o2, err := p.Get(FullLocking, OpAdd, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o1 {
		t.Fatal("matching Get did not reuse the retired object")
	}
	if p.Len() != 0 {
		t.Fatalf("pool holds %d objects after hit, want 0", p.Len())
	}
	// The hit must come back reset and ready for a fresh cycle: the old 7
	// at (0,0) is gone, only the new accumulation survives.
	o2.Accumulate(1, 2, 1, 3)
	o2.Merge()
	if o2.Get(0, 0) != 0 {
		t.Fatalf("reused cell (0,0) = %v, want identity 0 (stale value survived Reset)", o2.Get(0, 0))
	}
	if o2.Get(2, 1) != 3 {
		t.Fatalf("reused object second pass = %v, want 3", o2.Get(2, 1))
	}
}

func TestPoolRejectsNilAndUnmerged(t *testing.T) {
	p := NewPool()
	if err := p.Put(nil); err == nil {
		t.Fatal("Put(nil) succeeded")
	}
	o, err := Alloc(FullReplication, OpAdd, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.Accumulate(0, 0, 0, 1) // mid-flight: accumulated but never merged
	err = p.Put(o)
	if err == nil {
		t.Fatal("Put of un-merged object succeeded")
	}
	if !strings.Contains(err.Error(), "un-merged") {
		t.Fatalf("error %q does not name the un-merged state", err)
	}
	if p.Len() != 0 {
		t.Fatal("rejected object entered the pool")
	}
}

// TestPoolKeysDoNotCrossServe: a retired object only serves Gets with the
// identical (strategy, op, shape, workers) layout — every differing field
// forces a fresh allocation.
func TestPoolKeysDoNotCrossServe(t *testing.T) {
	base := [5]int{int(FullLocking), int(OpAdd), 3, 2, 4}
	variants := [][5]int{
		{int(AtomicCAS), int(OpAdd), 3, 2, 4}, // strategy differs
		{int(FullLocking), int(OpMax), 3, 2, 4},
		{int(FullLocking), int(OpAdd), 4, 2, 4},
		{int(FullLocking), int(OpAdd), 3, 3, 4},
		{int(FullLocking), int(OpAdd), 3, 2, 2},
	}
	for _, v := range variants {
		p := NewPool()
		o, err := p.Get(Strategy(base[0]), Op(base[1]), base[2], base[3], base[4])
		if err != nil {
			t.Fatal(err)
		}
		finish(t, o)
		if err := p.Put(o); err != nil {
			t.Fatal(err)
		}
		got, err := p.Get(Strategy(v[0]), Op(v[1]), v[2], v[3], v[4])
		if err != nil {
			t.Fatal(err)
		}
		if got == o {
			t.Fatalf("layout %v cross-served an object retired under %v", v, base)
		}
		if p.Len() != 1 {
			t.Fatalf("mismatched Get drained the pool (len %d)", p.Len())
		}
	}
}

// TestPoolCapBoundsRetention: Put beyond poolKeyCap per key silently drops
// the object instead of growing without bound.
func TestPoolCapBoundsRetention(t *testing.T) {
	p := NewPool()
	for i := 0; i < poolKeyCap+5; i++ {
		o, err := Alloc(FullLocking, OpAdd, 2, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		finish(t, o)
		if err := p.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != poolKeyCap {
		t.Fatalf("pool holds %d objects, want cap %d", p.Len(), poolKeyCap)
	}
}
