package robj

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestOpIdentityAndApply(t *testing.T) {
	if OpAdd.Identity() != 0 {
		t.Fatal("add identity")
	}
	if !math.IsInf(OpMin.Identity(), 1) {
		t.Fatal("min identity")
	}
	if !math.IsInf(OpMax.Identity(), -1) {
		t.Fatal("max identity")
	}
	if OpAdd.Apply(2, 3) != 5 {
		t.Fatal("add apply")
	}
	if OpMin.Apply(2, 3) != 2 || OpMin.Apply(3, 2) != 2 {
		t.Fatal("min apply")
	}
	if OpMax.Apply(2, 3) != 3 || OpMax.Apply(3, 2) != 3 {
		t.Fatal("max apply")
	}
}

func TestOpAndStrategyStrings(t *testing.T) {
	for o, s := range map[Op]string{OpAdd: "add", OpMin: "min", OpMax: "max"} {
		if o.String() != s {
			t.Errorf("op %d string %q want %q", int(o), o.String(), s)
		}
	}
	if Op(9).String() != "op(9)" {
		t.Error("unknown op string")
	}
	for st, s := range map[Strategy]string{
		FullReplication: "replication", FullLocking: "full-locking",
		OptimizedFullLocking: "opt-locking", FixedLocking: "fixed-locking", AtomicCAS: "atomic",
	} {
		if st.String() != s {
			t.Errorf("strategy %d string %q want %q", int(st), st.String(), s)
		}
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Error("unknown strategy string")
	}
}

func TestAllocRejectsBadShape(t *testing.T) {
	if _, err := Alloc(FullReplication, OpAdd, 0, 4, 1); err == nil {
		t.Fatal("want error for zero groups")
	}
	if _, err := Alloc(FullReplication, OpAdd, 4, -1, 1); err == nil {
		t.Fatal("want error for negative elems")
	}
	if _, err := Alloc(Strategy(99), OpAdd, 1, 1, 1); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

func TestAllocDefaultsWorkers(t *testing.T) {
	o, err := Alloc(FullReplication, OpAdd, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", o.Workers())
	}
}

func TestAccessors(t *testing.T) {
	o, err := Alloc(FullLocking, OpMin, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Groups() != 3 || o.ElemsPerGroup() != 5 || o.Op() != OpMin || o.Strategy() != FullLocking {
		t.Fatal("accessor mismatch")
	}
	if o.Merged() {
		t.Fatal("fresh object should not be merged")
	}
}

// sequentialExpected computes the expected merged cells for a batch of
// updates applied under op, starting from the identity.
func sequentialExpected(op Op, groups, elems int, updates [][3]float64) []float64 {
	out := make([]float64, groups*elems)
	for i := range out {
		out[i] = op.Identity()
	}
	for _, u := range updates {
		g, e, v := int(u[0]), int(u[1]), u[2]
		out[g*elems+e] = op.Apply(out[g*elems+e], v)
	}
	return out
}

func TestConcurrentAccumulateAllStrategiesAllOps(t *testing.T) {
	const groups, elems, workers = 7, 11, 4
	rng := rand.New(rand.NewSource(42))
	var updates [][3]float64
	for i := 0; i < 20000; i++ {
		updates = append(updates, [3]float64{
			float64(rng.Intn(groups)), float64(rng.Intn(elems)), rng.NormFloat64(),
		})
	}
	for _, op := range []Op{OpAdd, OpMin, OpMax} {
		want := sequentialExpected(op, groups, elems, updates)
		for _, st := range Strategies() {
			o, err := Alloc(st, op, groups, elems, workers)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			per := len(updates) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*per, (w+1)*per
				if w == workers-1 {
					hi = len(updates)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for _, u := range updates[lo:hi] {
						o.Accumulate(w, int(u[0]), int(u[1]), u[2])
					}
				}(w, lo, hi)
			}
			wg.Wait()
			o.Merge()
			got := o.Snapshot()
			tol := 0.0
			if op == OpAdd {
				tol = 1e-9 * float64(len(updates)) // summation order varies
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > tol {
					t.Fatalf("%v/%v cell %d: got %v want %v", st, op, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGetAndSnapshotAfterMerge(t *testing.T) {
	o, _ := Alloc(FullReplication, OpAdd, 2, 3, 2)
	o.Accumulate(0, 1, 2, 5)
	o.Accumulate(1, 1, 2, 7)
	o.Accumulate(0, 0, 0, 1)
	o.Merge()
	if got := o.Get(1, 2); got != 12 {
		t.Fatalf("Get(1,2) = %v, want 12", got)
	}
	if got := o.Get(0, 0); got != 1 {
		t.Fatalf("Get(0,0) = %v, want 1", got)
	}
	snap := o.Snapshot()
	if len(snap) != 6 || snap[1*3+2] != 12 {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	o, _ := Alloc(FullLocking, OpAdd, 2, 2, 1)
	mustPanic("get-before-merge", func() { o.Get(0, 0) })
	mustPanic("snapshot-before-merge", func() { o.Snapshot() })
	mustPanic("out-of-range-group", func() { o.Accumulate(0, 2, 0, 1) })
	mustPanic("out-of-range-elem", func() { o.Accumulate(0, 0, -1, 1) })
	o.Merge()
	mustPanic("double-merge", func() { o.Merge() })
}

func TestParallelMergeLargeObject(t *testing.T) {
	// Exceed the parallel-merge threshold and check correctness.
	groups, elems := 256, 128 // 32768 cells > 1<<14
	const workers = 4
	o, _ := Alloc(FullReplication, OpAdd, groups, elems, workers)
	for w := 0; w < workers; w++ {
		for g := 0; g < groups; g++ {
			o.Accumulate(w, g, g%elems, 1)
		}
	}
	o.Merge()
	for g := 0; g < groups; g++ {
		if got := o.Get(g, g%elems); got != workers {
			t.Fatalf("cell (%d,%d) = %v, want %d", g, g%elems, got, workers)
		}
	}
}

func TestCombineFrom(t *testing.T) {
	a, _ := Alloc(FullReplication, OpAdd, 2, 2, 1)
	b, _ := Alloc(FullLocking, OpAdd, 2, 2, 1)
	a.Accumulate(0, 0, 0, 3)
	b.Accumulate(0, 0, 0, 4)
	b.Accumulate(0, 1, 1, 9)
	a.Merge()
	b.Merge()
	if err := a.CombineFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Get(0, 0) != 7 || a.Get(1, 1) != 9 {
		t.Fatalf("combined = %v", a.Snapshot())
	}
}

func TestCombineFromShapeAndOpMismatch(t *testing.T) {
	a, _ := Alloc(FullReplication, OpAdd, 2, 2, 1)
	b, _ := Alloc(FullReplication, OpAdd, 2, 3, 1)
	c, _ := Alloc(FullReplication, OpMin, 2, 2, 1)
	a.Merge()
	b.Merge()
	c.Merge()
	if err := a.CombineFrom(b); err == nil {
		t.Fatal("want shape mismatch error")
	}
	if err := a.CombineFrom(c); err == nil {
		t.Fatal("want op mismatch error")
	}
}

// Property: for integer-valued adds, every strategy agrees exactly with the
// sequential result (integer sums are exact in float64 at this scale).
func TestPropertyStrategiesAgreeOnIntegerSums(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%1000) + 1
		const groups, elems, workers = 4, 4, 3
		var updates [][3]float64
		for i := 0; i < n; i++ {
			updates = append(updates, [3]float64{
				float64(rng.Intn(groups)), float64(rng.Intn(elems)), float64(rng.Intn(100)),
			})
		}
		want := sequentialExpected(OpAdd, groups, elems, updates)
		for _, st := range Strategies() {
			o, err := Alloc(st, OpAdd, groups, elems, workers)
			if err != nil {
				return false
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(updates); i += workers {
						u := updates[i]
						o.Accumulate(w, int(u[0]), int(u[1]), u[2])
					}
				}(w)
			}
			wg.Wait()
			o.Merge()
			got := o.Snapshot()
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestResetReuse(t *testing.T) {
	for _, st := range Strategies() {
		o, err := Alloc(st, OpAdd, 2, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		o.Accumulate(0, 0, 0, 5)
		o.Accumulate(2, 1, 1, 7)
		o.Merge()
		if o.Get(0, 0) != 5 || o.Get(1, 1) != 7 {
			t.Fatalf("%v: first pass wrong", st)
		}
		o.Reset()
		if o.Merged() {
			t.Fatalf("%v: Reset should clear merged state", st)
		}
		o.Accumulate(1, 0, 0, 2)
		o.Merge()
		if o.Get(0, 0) != 2 || o.Get(1, 1) != 0 {
			t.Fatalf("%v: reuse saw stale cells: %v", st, o.Snapshot())
		}
	}
	// Reset before Merge panics.
	o, _ := Alloc(FullReplication, OpMin, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset before Merge should panic")
		}
	}()
	o.Reset()
}

func TestResetRestoresIdentity(t *testing.T) {
	o, _ := Alloc(AtomicCAS, OpMin, 1, 1, 1)
	o.Accumulate(0, 0, 0, -3)
	o.Merge()
	o.Reset()
	o.Merge()
	if !math.IsInf(o.Get(0, 0), 1) {
		t.Fatalf("min identity not restored: %v", o.Get(0, 0))
	}
}
