package robj

import (
	"fmt"
	"sync"

	"chapelfreeride/internal/obs"
)

// Pool visibility counters: how often a Get was served by resetting a
// retired object versus allocating a fresh one.
var (
	mPoolHits = obs.Default.Counter("robj_pool_hits_total",
		"reduction objects served from a pool by reset instead of allocation")
	mPoolMisses = obs.Default.Counter("robj_pool_misses_total",
		"pool Gets that had to allocate a fresh reduction object")
)

// poolKey is the full identity of an Object's layout: two objects are
// interchangeable only when every field matches (replicas depend on workers,
// the cell arrays on strategy and shape, the identity fill on op).
type poolKey struct {
	strategy Strategy
	op       Op
	groups   int
	elems    int
	workers  int
}

// poolKeyCap bounds how many retired objects one key retains; beyond it
// Put drops the object for the GC, so a burst of releases cannot pin an
// unbounded amount of memory in the pool.
const poolKeyCap = 16

// Pool recycles reduction objects across engine passes, keyed by the full
// (strategy, op, shape, workers) layout. It replaces the manual RunInto
// reuse plumbing: Get returns a reset, ready-to-accumulate object (reusing a
// retired one when the key matches) and Put retires a merged object for the
// next Get. Safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*Object
}

// NewPool creates an empty object pool.
func NewPool() *Pool { return &Pool{free: map[poolKey][]*Object{}} }

// Get returns an object of the requested layout with every cell at the
// operator's identity: a retired object when one is pooled under the key,
// a fresh allocation otherwise.
func (p *Pool) Get(strategy Strategy, op Op, groups, elems, workers int) (*Object, error) {
	if workers < 1 {
		workers = 1
	}
	key := poolKey{strategy: strategy, op: op, groups: groups, elems: elems, workers: workers}
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		o := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[key] = list[:len(list)-1]
		p.mu.Unlock()
		mPoolHits.Inc()
		o.Reset()
		return o, nil
	}
	p.mu.Unlock()
	mPoolMisses.Inc()
	return Alloc(strategy, op, groups, elems, workers)
}

// Put retires a merged object for reuse by a later Get with the same
// layout. The caller must not touch the object (or slices obtained from its
// Snapshot) afterwards. Objects that are mid-flight — allocated but not yet
// merged — are rejected: resetting them would race with accumulators still
// writing, so the pool refuses rather than corrupt a pass.
func (p *Pool) Put(o *Object) error {
	if o == nil {
		return fmt.Errorf("robj: pool Put of nil object")
	}
	if !o.Merged() {
		return fmt.Errorf("robj: pool Put of un-merged %dx%d/%v object: only finished (merged) objects may be pooled — a mid-flight object's cells are still being written",
			o.Groups(), o.ElemsPerGroup(), o.Op())
	}
	key := poolKey{strategy: o.Strategy(), op: o.Op(), groups: o.Groups(), elems: o.ElemsPerGroup(), workers: o.Workers()}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free[key]) >= poolKeyCap {
		return nil // drop for the GC; the pool is a cache, not a ledger
	}
	p.free[key] = append(p.free[key], o)
	return nil
}

// Len reports how many retired objects the pool currently holds, across all
// keys (for tests and introspection).
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}
