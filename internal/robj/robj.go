// Package robj implements the FREERIDE reduction object and the
// shared-memory parallelization techniques used to update it.
//
// In FREERIDE the reduction object is declared explicitly by the programmer,
// maintained in main memory throughout execution, and updated element-wise
// by the per-split reduction function. The middleware offers several
// shared-memory techniques for those concurrent updates (Jin & Agrawal,
// SDM'02): full replication of the object per thread, full locking with one
// lock per element, optimized full locking where the lock is co-located with
// the element on the same cache line, and cache-sensitive (fixed) locking
// with a small pool of locks. This package implements all four plus a
// Go-native atomic-CAS strategy as an extension.
//
// Addressing follows the paper's two-level scheme: an object is a set of
// groups, each with a fixed number of elements, and accumulate(group, elem,
// value) updates one cell. Cells are float64 and are merged with a single
// associative Op chosen at allocation (sum, min, or max).
package robj

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"chapelfreeride/internal/obs"
)

// Contention counters, always-on (ISSUE: the paper's §V names
// reduction-object access as one of the three overhead sources; these make
// it observable per strategy). Updates are counted in per-worker padded
// slots on the Object and flushed here at Merge, so the hot path never
// touches a shared cache line; lock waits and CAS retries increment global
// counters only on the already-contended path.
var (
	mUpdates  = map[Strategy]*obs.Counter{}
	mLockWait = map[Strategy]*obs.Counter{}
	mCASRetry = obs.Default.Counter("robj_cas_retries_total",
		"failed compare-and-swap attempts retried by the atomic strategy")
	mAllocs = obs.Default.Counter("robj_allocs_total", "reduction objects allocated")
	mMerges = obs.Default.Counter("robj_merges_total", "local combination (Merge) passes")
	// Lock-wait and merge latency distributions: the counters above say how
	// often contention happened, the histograms say how long it cost — the
	// signal the auto-tuner needs to decide replication vs locking.
	hLockWait = map[Strategy]*obs.Histogram{}
	hMerge    = obs.Default.Histogram("robj_merge_duration_seconds",
		"local combination (Merge) wall time per pass")
)

func init() {
	for _, s := range Strategies() {
		label := obs.Label{Key: "strategy", Value: s.String()}
		mUpdates[s] = obs.Default.Counter("robj_updates_total",
			"reduction-object cell updates (Accumulate calls)", label)
		mLockWait[s] = obs.Default.Counter("robj_lock_waits_total",
			"Accumulate calls that found their cell lock held", label)
		hLockWait[s] = obs.Default.Histogram("robj_lock_wait_seconds",
			"time spent blocked acquiring a contended cell lock", label)
	}
}

// Op is the associative, commutative operator applied by Accumulate and by
// the local/global combination phases.
type Op int

const (
	// OpAdd accumulates by addition; identity 0.
	OpAdd Op = iota
	// OpMin keeps the minimum; identity +Inf.
	OpMin
	// OpMax keeps the maximum; identity -Inf.
	OpMax
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Identity returns the operator's identity element.
func (o Op) Identity() float64 {
	switch o {
	case OpMin:
		return math.Inf(1)
	case OpMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

// Apply combines two values under the operator.
func (o Op) Apply(a, b float64) float64 {
	switch o {
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		return a + b
	}
}

// Strategy selects the shared-memory technique for concurrent updates.
type Strategy int

const (
	// FullReplication gives every thread a private copy of the object;
	// copies are merged in the local-combination phase.
	FullReplication Strategy = iota
	// FullLocking shares one copy guarded by one lock per element, with
	// locks stored in a separate array.
	FullLocking
	// OptimizedFullLocking shares one copy with each lock co-located with
	// its element (padded to a cache line) to halve the cache misses per
	// update.
	OptimizedFullLocking
	// FixedLocking (cache-sensitive locking) shares one copy guarded by a
	// fixed pool of locks; element i maps to lock i mod poolSize.
	FixedLocking
	// AtomicCAS shares one copy updated with compare-and-swap on the raw
	// float bits. Not in the original FREERIDE; a Go-native extension.
	AtomicCAS
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FullReplication:
		return "replication"
	case FullLocking:
		return "full-locking"
	case OptimizedFullLocking:
		return "opt-locking"
	case FixedLocking:
		return "fixed-locking"
	case AtomicCAS:
		return "atomic"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Strategies lists every strategy, for sweeps and tests.
func Strategies() []Strategy {
	return []Strategy{FullReplication, FullLocking, OptimizedFullLocking, FixedLocking, AtomicCAS}
}

// ParseStrategy resolves a display name ("replication", "atomic", ...) back
// to its Strategy — the inverse of String, for config files and job params.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies() {
		if s.String() == name {
			return s, nil
		}
	}
	return FullReplication, fmt.Errorf("robj: unknown strategy %q (want replication, full-locking, opt-locking, fixed-locking, or atomic)", name)
}

// fixedLockPool is the lock-pool size for FixedLocking.
const fixedLockPool = 64

// Object is a reduction object: Groups × ElemsPerGroup float64 cells updated
// concurrently under the chosen Strategy and merged with the chosen Op.
//
// Allocate with Alloc, update with Accumulate from worker goroutines, then
// call Merge once (single-threaded or internally parallel) before reading
// results with Get or Snapshot.
type Object struct {
	groups   int
	elems    int
	op       Op
	strategy Strategy
	workers  int

	// FullReplication: one flat copy per worker.
	replicas [][]float64

	// Shared-copy strategies.
	shared []float64       // FullLocking, FixedLocking
	locks  []sync.Mutex    // FullLocking: len == cells; FixedLocking: len == pool
	padded []paddedCell    // OptimizedFullLocking
	bits   []atomic.Uint64 // AtomicCAS

	merged []float64 // final values after Merge
	spare  []float64 // retired merged buffer, reused by the next Merge
	done   bool

	// updates holds one padded per-worker update count, flushed to the
	// global per-strategy counter at Merge. Plain (non-atomic) increments
	// are safe because each worker id is owned by one goroutine — the same
	// contract FullReplication's replicas already rely on.
	updates []padCount

	// Counters resolved once at Alloc so Accumulate never does map lookups.
	updatesC  *obs.Counter
	lockWaitC *obs.Counter
	lockWaitH *obs.Histogram
}

// padCount pads a per-worker counter to its own cache line to avoid false
// sharing between workers on the Accumulate hot path.
type padCount struct {
	n int64
	_ [56]byte
}

// paddedCell co-locates a cell's lock with its value and pads the pair to a
// 64-byte cache line, mirroring the "optimized full locking" layout.
type paddedCell struct {
	mu  sync.Mutex
	val float64
	_   [48]byte
}

// Alloc creates a reduction object with the given shape for the given number
// of worker threads. It mirrors FREERIDE's reduction_object_alloc: every
// element gets a unique (group, elem) ID. Cells start at op's identity.
func Alloc(strategy Strategy, op Op, groups, elems, workers int) (*Object, error) {
	if groups <= 0 || elems <= 0 {
		return nil, fmt.Errorf("robj: invalid shape %dx%d", groups, elems)
	}
	if workers < 1 {
		workers = 1
	}
	o := &Object{groups: groups, elems: elems, op: op, strategy: strategy, workers: workers}
	o.updates = make([]padCount, workers)
	o.updatesC = mUpdates[strategy]
	o.lockWaitC = mLockWait[strategy]
	o.lockWaitH = hLockWait[strategy]
	cells := groups * elems
	id := op.Identity()
	fill := func(s []float64) {
		for i := range s {
			s[i] = id
		}
	}
	switch strategy {
	case FullReplication:
		o.replicas = make([][]float64, workers)
		for w := range o.replicas {
			o.replicas[w] = make([]float64, cells)
			fill(o.replicas[w])
		}
	case FullLocking:
		o.shared = make([]float64, cells)
		fill(o.shared)
		o.locks = make([]sync.Mutex, cells)
	case OptimizedFullLocking:
		o.padded = make([]paddedCell, cells)
		for i := range o.padded {
			o.padded[i].val = id
		}
	case FixedLocking:
		o.shared = make([]float64, cells)
		fill(o.shared)
		o.locks = make([]sync.Mutex, fixedLockPool)
	case AtomicCAS:
		o.bits = make([]atomic.Uint64, cells)
		b := math.Float64bits(id)
		for i := range o.bits {
			o.bits[i].Store(b)
		}
	default:
		return nil, fmt.Errorf("robj: unknown strategy %v", strategy)
	}
	mAllocs.Inc()
	return o, nil
}

// Groups reports the number of groups.
func (o *Object) Groups() int { return o.groups }

// ElemsPerGroup reports the number of elements per group.
func (o *Object) ElemsPerGroup() int { return o.elems }

// Op reports the combine operator.
func (o *Object) Op() Op { return o.op }

// Strategy reports the sharing strategy.
func (o *Object) Strategy() Strategy { return o.strategy }

// Workers reports the worker count the object was allocated for.
func (o *Object) Workers() int { return o.workers }

// cell computes the flat cell index, panicking on out-of-range coordinates —
// an out-of-range update is a programming error in the reduction function.
// Translated kernels never reach this panic: core.Verify proves the object
// shape (FRV007) and every accumulate target against it at translate time,
// so the check only guards hand-written reduction functions.
func (o *Object) cell(group, elem int) int {
	if group < 0 || group >= o.groups || elem < 0 || elem >= o.elems {
		panic(fmt.Sprintf("robj: accumulate out of range: group=%d elem=%d shape=%dx%d",
			group, elem, o.groups, o.elems))
	}
	return group*o.elems + elem
}

// waitLock acquires l on the already-contended path: the failed TryLock has
// established contention, so the two clock reads here time only waits that
// actually blocked — the uncontended fast path never reaches this function.
func (o *Object) waitLock(l *sync.Mutex) {
	o.lockWaitC.Inc()
	t := time.Now()
	l.Lock()
	o.lockWaitH.ObserveDuration(time.Since(t))
}

// Accumulate applies the object's operator to cell (group, elem) with v, on
// behalf of worker w. Safe for concurrent use by distinct workers. It mirrors
// FREERIDE's accumulate(int, int, void* value).
func (o *Object) Accumulate(w, group, elem int, v float64) {
	i := o.cell(group, elem)
	o.updates[w].n++
	switch o.strategy {
	case FullReplication:
		r := o.replicas[w]
		r[i] = o.op.Apply(r[i], v)
	case FullLocking:
		l := &o.locks[i]
		if !l.TryLock() {
			o.waitLock(l)
		}
		o.shared[i] = o.op.Apply(o.shared[i], v)
		l.Unlock()
	case OptimizedFullLocking:
		c := &o.padded[i]
		if !c.mu.TryLock() {
			o.waitLock(&c.mu)
		}
		c.val = o.op.Apply(c.val, v)
		c.mu.Unlock()
	case FixedLocking:
		l := &o.locks[i%len(o.locks)]
		if !l.TryLock() {
			o.waitLock(l)
		}
		o.shared[i] = o.op.Apply(o.shared[i], v)
		l.Unlock()
	case AtomicCAS:
		b := &o.bits[i]
		for {
			old := b.Load()
			next := math.Float64bits(o.op.Apply(math.Float64frombits(old), v))
			if b.CompareAndSwap(old, next) {
				return
			}
			mCASRetry.Inc()
		}
	}
}

// MergeDense folds src into dst cell-by-cell under op. Cells of src holding
// op's identity are skipped: the identity is, by definition, a no-op under
// Apply, and skipping it keeps sparse worker-local blocks (a kmeans split
// that touched few clusters) from dirtying untouched cache lines in dst.
// Both slices must have the same length.
func MergeDense(op Op, dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("robj: MergeDense length mismatch %d vs %d", len(dst), len(src)))
	}
	id := op.Identity()
	for i, v := range src {
		if v != id {
			dst[i] = op.Apply(dst[i], v)
		}
	}
}

// AccumulateBlock folds a worker-local dense block (group-major, exactly
// groups×elems cells, identity-valued where untouched) into the object on
// behalf of worker w. It is the bulk counterpart of Accumulate: where the
// per-element path pays one lock acquisition or CAS loop per update, the
// block path pays one synchronization event per cell-range per flush —
// FullReplication merges lock-free into worker w's replica, the full/padded
// locking strategies take each touched cell's lock exactly once, FixedLocking
// acquires each pool lock once and sweeps all of its cells under it, and
// AtomicCAS runs one CAS loop per touched cell. Identity-valued cells are
// skipped everywhere (see MergeDense). Safe for concurrent use by distinct
// workers.
func (o *Object) AccumulateBlock(w int, block []float64) {
	cells := o.groups * o.elems
	if len(block) != cells {
		panic(fmt.Sprintf("robj: AccumulateBlock got %d cells, object has %d", len(block), cells))
	}
	id := o.op.Identity()
	switch o.strategy {
	case FullReplication:
		MergeDense(o.op, o.replicas[w], block)
	case FullLocking:
		for i, v := range block {
			if v == id {
				continue
			}
			l := &o.locks[i]
			if !l.TryLock() {
				o.waitLock(l)
			}
			o.shared[i] = o.op.Apply(o.shared[i], v)
			l.Unlock()
		}
	case OptimizedFullLocking:
		for i, v := range block {
			if v == id {
				continue
			}
			c := &o.padded[i]
			if !c.mu.TryLock() {
				o.waitLock(&c.mu)
			}
			c.val = o.op.Apply(c.val, v)
			c.mu.Unlock()
		}
	case FixedLocking:
		// One acquisition per pool lock per flush: lock l guards every cell
		// i with i mod pool == l, so sweep that stride while holding it.
		pool := len(o.locks)
		for start := 0; start < pool && start < cells; start++ {
			l := &o.locks[start]
			if !l.TryLock() {
				o.waitLock(l)
			}
			for i := start; i < cells; i += pool {
				if v := block[i]; v != id {
					o.shared[i] = o.op.Apply(o.shared[i], v)
				}
			}
			l.Unlock()
		}
	case AtomicCAS:
		for i, v := range block {
			if v == id {
				continue
			}
			b := &o.bits[i]
			for {
				old := b.Load()
				next := math.Float64bits(o.op.Apply(math.Float64frombits(old), v))
				if b.CompareAndSwap(old, next) {
					break
				}
				mCASRetry.Inc()
			}
		}
	}
	// Count cells folded, so per-strategy update totals stay comparable
	// between the per-element and fused paths.
	o.updates[w].n += int64(cells)
}

// AccumulateScattered folds a sparse set of touched cells — flat cell
// indices with their accumulated values — into the object on behalf of
// worker w. It is the scattered counterpart of AccumulateBlock, used when a
// split's touched-cell set is far smaller than the object (the hashed
// worker-local accumulator of sparse push reductions): where the block path
// sweeps all groups×elems cells to find the touched ones, the scattered
// path visits exactly len(cells) non-contiguous cells. Cell indices come
// from the fused executor's accumulator, whose targets the verifier proved
// in bounds at translate time (FRV013), so they are not re-checked here;
// duplicate indices are legal and fold associatively. Safe for concurrent
// use by distinct workers.
func (o *Object) AccumulateScattered(w int, cells []int32, vals []float64) {
	if len(cells) != len(vals) {
		panic(fmt.Sprintf("robj: AccumulateScattered got %d cells, %d values", len(cells), len(vals)))
	}
	switch o.strategy {
	case FullReplication:
		r := o.replicas[w]
		for k, i := range cells {
			r[i] = o.op.Apply(r[i], vals[k])
		}
	case FullLocking:
		for k, i := range cells {
			l := &o.locks[i]
			if !l.TryLock() {
				o.waitLock(l)
			}
			o.shared[i] = o.op.Apply(o.shared[i], vals[k])
			l.Unlock()
		}
	case OptimizedFullLocking:
		for k, i := range cells {
			c := &o.padded[i]
			if !c.mu.TryLock() {
				o.waitLock(&c.mu)
			}
			c.val = o.op.Apply(c.val, vals[k])
			c.mu.Unlock()
		}
	case FixedLocking:
		for k, i := range cells {
			l := &o.locks[int(i)%len(o.locks)]
			if !l.TryLock() {
				o.waitLock(l)
			}
			o.shared[i] = o.op.Apply(o.shared[i], vals[k])
			l.Unlock()
		}
	case AtomicCAS:
		for k, i := range cells {
			b := &o.bits[i]
			for {
				old := b.Load()
				next := math.Float64bits(o.op.Apply(math.Float64frombits(old), vals[k]))
				if b.CompareAndSwap(old, next) {
					break
				}
				mCASRetry.Inc()
			}
		}
	}
	o.updates[w].n += int64(len(cells))
}

// parallelMergeThreshold is the cell count above which Merge combines
// replicas with parallel range-partitioned workers, mirroring the paper's
// "if the size of the reduction object is large, both local and global
// combination phases perform a parallel merge".
const parallelMergeThreshold = 1 << 14

// Merge performs the local combination phase: for FullReplication it merges
// the per-thread copies (in worker order, so floating-point results are
// deterministic for a fixed worker count); for shared strategies it simply
// publishes the shared copy. Merge must be called exactly once, after all
// Accumulate calls have completed.
func (o *Object) Merge() {
	if o.done {
		panic("robj: Merge called twice")
	}
	o.done = true
	mMerges.Inc()
	mergeStart := time.Now()
	defer func() { hMerge.ObserveDuration(time.Since(mergeStart)) }()
	// Flush the per-worker update counts gathered since Alloc or Reset into
	// the global per-strategy counter.
	var updated int64
	for w := range o.updates {
		updated += o.updates[w].n
		o.updates[w].n = 0
	}
	o.updatesC.Add(updated)
	cells := o.groups * o.elems
	// Reuse the buffer retired by the last Reset when present; every branch
	// below overwrites all cells, so no clearing is needed.
	out := o.spare
	o.spare = nil
	if cap(out) < cells {
		out = make([]float64, cells)
	}
	out = out[:cells]
	switch o.strategy {
	case FullReplication:
		copy(out, o.replicas[0])
		mergeRange := func(lo, hi int) {
			for w := 1; w < len(o.replicas); w++ {
				r := o.replicas[w]
				for i := lo; i < hi; i++ {
					out[i] = o.op.Apply(out[i], r[i])
				}
			}
		}
		if cells >= parallelMergeThreshold && o.workers > 1 {
			var wg sync.WaitGroup
			per := (cells + o.workers - 1) / o.workers
			for lo := 0; lo < cells; lo += per {
				hi := lo + per
				if hi > cells {
					hi = cells
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					mergeRange(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		} else {
			mergeRange(0, cells)
		}
	case OptimizedFullLocking:
		for i := range o.padded {
			out[i] = o.padded[i].val
		}
	case AtomicCAS:
		for i := range o.bits {
			out[i] = math.Float64frombits(o.bits[i].Load())
		}
	default: // FullLocking, FixedLocking
		copy(out, o.shared)
	}
	o.merged = out
}

// Merged reports whether Merge has run.
func (o *Object) Merged() bool { return o.done }

// Get returns the final value of cell (group, elem). It mirrors FREERIDE's
// get_intermediate_result. Get panics if Merge has not been called.
func (o *Object) Get(group, elem int) float64 {
	if !o.done {
		panic("robj: Get before Merge")
	}
	return o.merged[o.cell(group, elem)]
}

// Snapshot returns the merged object as a flat slice laid out group-major.
// The slice is owned by the object; callers must not modify it.
func (o *Object) Snapshot() []float64 {
	if !o.done {
		panic("robj: Snapshot before Merge")
	}
	return o.merged
}

// Reset returns a merged object to its pre-Merge state with every cell at
// the operator's identity, so iterative algorithms (k-means' outer loop,
// EM rounds) can reuse the allocation instead of allocating a fresh object
// per pass. Reset panics if Merge has not run (resetting an un-merged
// object mid-flight would race with accumulators).
//
// Reset retires the merged buffer for reuse by the next Merge, so slices
// previously returned by Snapshot are invalidated: copy out any values that
// must survive the reset.
func (o *Object) Reset() {
	if !o.done {
		panic("robj: Reset before Merge")
	}
	o.done = false
	o.spare = o.merged
	o.merged = nil
	id := o.op.Identity()
	switch o.strategy {
	case FullReplication:
		for _, r := range o.replicas {
			for i := range r {
				r[i] = id
			}
		}
	case OptimizedFullLocking:
		for i := range o.padded {
			o.padded[i].val = id
		}
	case AtomicCAS:
		b := math.Float64bits(id)
		for i := range o.bits {
			o.bits[i].Store(b)
		}
	default: // FullLocking, FixedLocking
		for i := range o.shared {
			o.shared[i] = id
		}
	}
}

// CombineCells folds a flat cell array (group-major, same shape as
// Snapshot) into the merged object under its operator — the receive side
// of a serialized global combination across nodes. CombineCells panics if
// Merge has not run.
func (o *Object) CombineCells(cells []float64) error {
	if !o.done {
		panic("robj: CombineCells before Merge")
	}
	if len(cells) != len(o.merged) {
		return fmt.Errorf("robj: CombineCells got %d cells, object has %d", len(cells), len(o.merged))
	}
	for i := range o.merged {
		o.merged[i] = o.op.Apply(o.merged[i], cells[i])
	}
	return nil
}

// CombineFrom merges another object's final values into this one's, cell by
// cell under the operator. Both objects must be merged and have identical
// shapes. This is the all-to-one global combination used when several nodes
// (or engine passes) each hold a reduction object.
func (o *Object) CombineFrom(other *Object) error {
	if !o.done || !other.done {
		panic("robj: CombineFrom before Merge")
	}
	if o.groups != other.groups || o.elems != other.elems {
		return fmt.Errorf("robj: shape mismatch %dx%d vs %dx%d", o.groups, o.elems, other.groups, other.elems)
	}
	if o.op != other.op {
		return fmt.Errorf("robj: operator mismatch %v vs %v", o.op, other.op)
	}
	for i := range o.merged {
		o.merged[i] = o.op.Apply(o.merged[i], other.merged[i])
	}
	return nil
}
