package robj

import (
	"sync"
	"testing"

	"chapelfreeride/internal/obs"
)

// TestUpdateCountersPerStrategy checks that every strategy reports exactly
// one robj_updates_total increment per Accumulate call, counted concurrently
// and flushed at Merge.
func TestUpdateCountersPerStrategy(t *testing.T) {
	const workers, perWorker = 4, 1000
	for _, st := range Strategies() {
		label := obs.Label{Key: "strategy", Value: st.String()}
		before := obs.Default.Value("robj_updates_total", label)
		o, err := Alloc(st, OpAdd, 2, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					// All workers hammer the same cell to exercise the
					// contention paths (lock waits, CAS retries) under -race.
					o.Accumulate(w, 0, 0, 1)
				}
			}(w)
		}
		wg.Wait()
		// Counts flush at Merge, not before.
		if got := obs.Default.Value("robj_updates_total", label); got != before {
			t.Fatalf("%v: counter flushed before Merge (%d -> %d)", st, before, got)
		}
		o.Merge()
		if got := o.Get(0, 0); got != workers*perWorker {
			t.Fatalf("%v: cell = %v, want %d", st, got, workers*perWorker)
		}
		delta := obs.Default.Value("robj_updates_total", label) - before
		if delta != workers*perWorker {
			t.Fatalf("%v: updates counter delta = %d, want %d", st, delta, workers*perWorker)
		}
	}
	// Contention counters are workload-dependent; just confirm they are
	// readable and non-negative after the hammering above.
	if v := obs.Default.Value("robj_cas_retries_total"); v < 0 {
		t.Fatalf("cas retries negative: %d", v)
	}
	for _, st := range Strategies() {
		if v := obs.Default.Value("robj_lock_waits_total", obs.Label{Key: "strategy", Value: st.String()}); v < 0 {
			t.Fatalf("%v: lock waits negative: %d", st, v)
		}
	}
}

// TestUpdateCountersAcrossReset checks that RunInto-style reuse (Reset then
// another pass) keeps counting.
func TestUpdateCountersAcrossReset(t *testing.T) {
	label := obs.Label{Key: "strategy", Value: FullReplication.String()}
	before := obs.Default.Value("robj_updates_total", label)
	o, err := Alloc(FullReplication, OpAdd, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.Accumulate(0, 0, 0, 1)
	o.Accumulate(1, 0, 0, 1)
	o.Merge()
	o.Reset()
	o.Accumulate(0, 0, 0, 1)
	o.Merge()
	if delta := obs.Default.Value("robj_updates_total", label) - before; delta != 3 {
		t.Fatalf("updates across Reset = %d, want 3", delta)
	}
}
