package robj

import (
	"sync"
	"testing"

	"chapelfreeride/internal/obs"
)

// TestAccumulateScatteredMatchesPerElement pins the scattered bulk path's
// semantics: for every strategy and operator, flushing a touched-cell list
// through AccumulateScattered — including duplicate cells, which must fold
// associatively — yields the same merged object as per-element Accumulate.
func TestAccumulateScatteredMatchesPerElement(t *testing.T) {
	const groups, elems, workers = 40, 3, 4
	// Worker w's touched cells: a sparse, non-contiguous pattern with
	// deliberate duplicates, different per worker.
	touchedFor := func(w int) ([]int32, []float64) {
		var cells []int32
		var vals []float64
		for i := w; i < groups*elems; i += 7 + w {
			cells = append(cells, int32(i))
			vals = append(vals, float64((i%13)*(w+1)-20))
		}
		// Re-touch the first cell so aliased targets are exercised.
		if len(cells) > 0 {
			cells = append(cells, cells[0])
			vals = append(vals, float64(w+3))
		}
		return cells, vals
	}
	for _, s := range Strategies() {
		for _, op := range []Op{OpAdd, OpMin, OpMax} {
			bulk, err := Alloc(s, op, groups, elems, workers)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Alloc(s, op, groups, elems, workers)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cells, vals := touchedFor(w)
					bulk.AccumulateScattered(w, cells, vals)
					for k, c := range cells {
						ref.Accumulate(w, int(c)/elems, int(c)%elems, vals[k])
					}
				}(w)
			}
			wg.Wait()
			bulk.Merge()
			ref.Merge()
			for g := 0; g < groups; g++ {
				for e := 0; e < elems; e++ {
					if bulk.Get(g, e) != ref.Get(g, e) {
						t.Fatalf("%v/%v cell (%d,%d): scattered %v != per-element %v",
							s, op, g, e, bulk.Get(g, e), ref.Get(g, e))
					}
				}
			}
		}
	}
}

// TestAccumulateScatteredCountsUpdates checks the update accounting: a
// scattered flush counts one update per touched cell, like the per-element
// path it replaces.
func TestAccumulateScatteredCountsUpdates(t *testing.T) {
	label := obs.Label{Key: "strategy", Value: FullReplication.String()}
	before := obs.Default.Value("robj_updates_total", label)
	o, err := Alloc(FullReplication, OpAdd, 10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.AccumulateScattered(0, []int32{1, 5, 5, 9}, []float64{1, 2, 3, 4})
	o.AccumulateScattered(1, []int32{0}, []float64{7})
	o.Merge()
	if delta := obs.Default.Value("robj_updates_total", label) - before; delta != 5 {
		t.Fatalf("updates counter delta = %d, want 5", delta)
	}
	if got := o.Get(5, 0); got != 5 {
		t.Fatalf("aliased cell = %v, want 5", got)
	}
}

func TestAccumulateScatteredPanicsOnLengthMismatch(t *testing.T) {
	o, err := Alloc(FullLocking, OpAdd, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccumulateScattered with mismatched lengths did not panic")
		}
	}()
	o.AccumulateScattered(0, []int32{1, 2}, []float64{1})
}

// TestAccumulateScatteredFixedLockingPastPool exercises cells beyond the
// fixed lock pool, so lock indices wrap (cell % pool).
func TestAccumulateScatteredFixedLockingPastPool(t *testing.T) {
	const groups = 200 // > fixedLockPool (64)
	o, err := Alloc(FixedLocking, OpAdd, groups, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.AccumulateScattered(0, []int32{0, 64, 128, 199}, []float64{1, 2, 3, 4})
	o.AccumulateScattered(1, []int32{64, 199}, []float64{10, 20})
	o.Merge()
	want := map[int]float64{0: 1, 64: 12, 128: 3, 199: 24}
	for c, v := range want {
		if got := o.Get(c, 0); got != v {
			t.Fatalf("cell %d = %v, want %v", c, got, v)
		}
	}
}
