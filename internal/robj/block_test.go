package robj

import (
	"math"
	"sync"
	"testing"
)

func TestMergeDense(t *testing.T) {
	dst := []float64{1, 2, 3}
	MergeDense(OpAdd, dst, []float64{10, 0, 30}) // 0 is OpAdd's identity: skipped
	want := []float64{11, 2, 33}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("cell %d: got %v want %v", i, dst[i], want[i])
		}
	}
	mn := []float64{5, 5}
	MergeDense(OpMin, mn, []float64{7, math.Inf(1)})
	if mn[0] != 5 || mn[1] != 5 {
		t.Fatalf("OpMin merge: got %v", mn)
	}
	mx := []float64{5, 5}
	MergeDense(OpMax, mx, []float64{7, math.Inf(-1)})
	if mx[0] != 7 || mx[1] != 5 {
		t.Fatalf("OpMax merge: got %v", mx)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MergeDense length mismatch did not panic")
		}
	}()
	MergeDense(OpAdd, dst, []float64{1})
}

// TestAccumulateBlockMatchesPerElement pins the bulk path's semantics: for
// every strategy and operator, flushing worker-local dense blocks through
// AccumulateBlock yields the same merged object as applying each non-identity
// cell through per-element Accumulate.
func TestAccumulateBlockMatchesPerElement(t *testing.T) {
	const groups, elems, workers = 7, 5, 4
	// Worker w's local block: a deterministic sparse pattern with identity
	// holes, different per worker.
	blockFor := func(op Op, w int) []float64 {
		b := make([]float64, groups*elems)
		id := op.Identity()
		for i := range b {
			if (i+w)%3 == 0 {
				b[i] = id
			} else {
				b[i] = float64((i%11)*(w+1) - 20)
			}
		}
		return b
	}
	for _, s := range Strategies() {
		for _, op := range []Op{OpAdd, OpMin, OpMax} {
			bulk, err := Alloc(s, op, groups, elems, workers)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Alloc(s, op, groups, elems, workers)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					blk := blockFor(op, w)
					bulk.AccumulateBlock(w, blk)
					id := op.Identity()
					for i, v := range blk {
						if v != id {
							ref.Accumulate(w, i/elems, i%elems, v)
						}
					}
				}(w)
			}
			wg.Wait()
			bulk.Merge()
			ref.Merge()
			for g := 0; g < groups; g++ {
				for e := 0; e < elems; e++ {
					if bulk.Get(g, e) != ref.Get(g, e) {
						t.Fatalf("%v/%v cell (%d,%d): block %v != per-element %v",
							s, op, g, e, bulk.Get(g, e), ref.Get(g, e))
					}
				}
			}
		}
	}
}

func TestAccumulateBlockPanicsOnWrongSize(t *testing.T) {
	o, err := Alloc(FullLocking, OpAdd, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AccumulateBlock with wrong cell count did not panic")
		}
	}()
	o.AccumulateBlock(0, make([]float64, 5))
}

// TestAccumulateBlockFixedLockingCoversAllCells exercises the pool-sweep
// path with more cells than pool locks, so each lock guards several cells.
func TestAccumulateBlockFixedLockingCoversAllCells(t *testing.T) {
	const groups, elems = 50, 3 // 150 cells > fixedLockPool (64)
	o, err := Alloc(FixedLocking, OpAdd, groups, elems, 2)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]float64, groups*elems)
	for i := range block {
		block[i] = float64(i + 1)
	}
	o.AccumulateBlock(0, block)
	o.AccumulateBlock(1, block)
	o.Merge()
	for i, got := range o.Snapshot() {
		if want := 2 * float64(i+1); got != want {
			t.Fatalf("cell %d: got %v want %v", i, got, want)
		}
	}
}
