package analyze

import (
	"reflect"
	"testing"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// TestAdviseDeterministic is the property test the acceptance criteria pin:
// Advise is a pure function of (profile, threads) — repeated calls and
// calls over an independently reconstructed profile agree exactly, trace
// included.
func TestAdviseDeterministic(t *testing.T) {
	shapes := []struct {
		rows, cols, groups, elems int
	}{
		{1000, 4, 8, 5},
		{100000, 64, 64, 64},
		{10, 2, 1, 1},
		{1 << 20, 8, 4096, 64},
	}
	for _, s := range shapes {
		for _, threads := range []int{1, 2, 4, 8, 16} {
			first := Advise(Profile(densePlan(s.rows, s.cols, s.groups, s.elems), Options{}), threads)
			for i := 0; i < 50; i++ {
				again := Advise(Profile(densePlan(s.rows, s.cols, s.groups, s.elems), Options{}), threads)
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("shape %+v threads %d: advice differs across calls:\n%+v\n%+v", s, threads, first, again)
				}
			}
		}
	}
	// Inspector plans too: the histogram fold must not perturb the pick.
	out := make([]int32, 5000)
	for i := range out {
		out[i] = int32((i * 7) % 1000)
	}
	first := Advise(Profile(scatterPlan(out, 1000), Options{}), 8)
	for i := 0; i < 50; i++ {
		if again := Advise(Profile(scatterPlan(out, 1000), Options{}), 8); !reflect.DeepEqual(first, again) {
			t.Fatalf("inspector advice differs:\n%+v\n%+v", first, again)
		}
	}
}

func TestAdviseRules(t *testing.T) {
	// Small dense object: replication, dynamic.
	a := Advise(Profile(densePlan(100000, 4, 8, 5), Options{}), 8)
	if a.Strategy != robj.FullReplication || a.Scheduler != sched.Dynamic {
		t.Fatalf("dense pick = %s/%s", a.Strategy, a.Scheduler)
	}
	// One-cell hotspot: replication even at high thread counts.
	a = Advise(Profile(densePlan(100000, 4, 1, 1), Options{}), 16)
	if a.Strategy != robj.FullReplication {
		t.Fatalf("hotspot pick = %s", a.Strategy)
	}
	// Sparse touch: a large object with far fewer updates than merge adds
	// (the abl-sparse low-density regime) goes atomic.
	sp := SparseShapeProfile("spmv", 1000, 100000, Options{})
	a = Advise(sp, 8)
	if a.Strategy != robj.AtomicCAS {
		t.Fatalf("sparse-touch pick = %s, trace %v", a.Strategy, a.Trace)
	}
	// Dense traffic on the same object (high density): back to replication.
	sp = SparseShapeProfile("spmv", 10000000, 100000, Options{})
	a = Advise(sp, 8)
	if a.Strategy != robj.FullReplication {
		t.Fatalf("dense-traffic pick = %s, trace %v", a.Strategy, a.Trace)
	}
	// Skewed inspector scatter: work stealing.
	out := make([]int32, 10000)
	for i := range out {
		out[i] = int32(i % 500)
	}
	for i := 0; i < 5000; i++ {
		out[i] = 3
	}
	a = Advise(Profile(scatterPlan(out, 500), Options{}), 8)
	if a.Scheduler != sched.WorkStealing {
		t.Fatalf("skewed pick = %s, trace %v", a.Scheduler, a.Trace)
	}
	// Single worker: always replication (nothing to mediate).
	for _, pr := range []*PlanProfile{
		Profile(densePlan(100000, 4, 1024, 64), Options{}),
		SparseShapeProfile("spmv", 1000, 100000, Options{}),
	} {
		if a = Advise(pr, 1); a.Strategy != robj.FullReplication {
			t.Fatalf("threads=1 pick = %s", a.Strategy)
		}
	}
	// Every pick carries an explanation.
	if len(a.Trace) == 0 {
		t.Fatal("advice with no trace")
	}
}

func TestAdviseSplitRows(t *testing.T) {
	cases := []struct {
		domain, threads, want int
	}{
		{0, 8, DefaultSplitRows}, // unknown domain: engine default
		{100, 8, minSplitRows},   // tiny domain: floor
		{1 << 30, 1, maxSplitRows},
		{65536, 8, 256 * 2 * 2}, // 65536/(8*8)=1024, pow2 floor
	}
	for _, c := range cases {
		if got := adviseSplitRows(c.domain, c.threads); got != c.want {
			t.Fatalf("adviseSplitRows(%d,%d) = %d, want %d", c.domain, c.threads, got, c.want)
		}
	}
}

func TestAdviceApply(t *testing.T) {
	base := freeride.Config{Threads: 4, SplitRows: 4096}
	a := Advice{Strategy: robj.AtomicCAS, Scheduler: sched.WorkStealing, SplitRows: 512, SparseAccCells: -1}
	got := a.Apply(base)
	if got.Threads != 4 {
		t.Fatalf("Apply must not touch Threads, got %d", got.Threads)
	}
	if got.Strategy != robj.AtomicCAS || got.Scheduler != sched.WorkStealing || got.SplitRows != 512 || got.SparseAccCells != -1 {
		t.Fatalf("Apply = %+v", got)
	}
	// Zero SparseAccCells / SplitRows leave the base values alone.
	got = Advice{Strategy: robj.FullLocking, Scheduler: sched.Guided}.Apply(base)
	if got.SplitRows != 4096 || got.SparseAccCells != 0 {
		t.Fatalf("Apply with zero knobs = %+v", got)
	}
}
