package analyze

import (
	"encoding/json"
	"fmt"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// Advice is the advisor's pick: the execution configuration a plan should
// run with, plus the rule trace that explains it. Advise is a pure function
// of (profile, threads) — same inputs, same advice, always — so the pick is
// reproducible and testable, unlike runtime auto-tuning.
type Advice struct {
	// Strategy is the advised reduction-object sharing strategy.
	Strategy robj.Strategy `json:"strategy"`
	// Scheduler is the advised split scheduling policy.
	Scheduler sched.Policy `json:"scheduler"`
	// SplitRows is the advised split chunk size (domain rows per split).
	SplitRows int `json:"split_rows"`
	// SparseAccCells overrides the hashed-accumulator threshold: 0 keeps
	// the engine default, negative disables the hashed path.
	SparseAccCells int `json:"sparse_acc_cells"`
	// Trace lists the rules that fired, in order — the explainable "why"
	// behind each knob.
	Trace []string `json:"trace"`
}

// MarshalJSON renders the enum knobs by display name ("replication",
// "worksteal", ...) so the -analyze-json output is self-describing.
func (a Advice) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Strategy       string   `json:"strategy"`
		Scheduler      string   `json:"scheduler"`
		SplitRows      int      `json:"split_rows"`
		SparseAccCells int      `json:"sparse_acc_cells,omitempty"`
		Trace          []string `json:"trace"`
	}{a.Strategy.String(), a.Scheduler.String(), a.SplitRows, a.SparseAccCells, a.Trace})
}

// Apply overlays the advice onto a base engine configuration, leaving every
// knob the advisor does not own (Threads, read-ahead, ...) untouched.
func (a Advice) Apply(base freeride.Config) freeride.Config {
	base.Strategy = a.Strategy
	base.Scheduler = a.Scheduler
	if a.SplitRows > 0 {
		base.SplitRows = a.SplitRows
	}
	if a.SparseAccCells != 0 {
		base.SparseAccCells = a.SparseAccCells
	}
	return base
}

// Advisor thresholds. Exported nowhere: the advisor's contract is its
// behavior (pinned by tests and the abl-advise bench), not these numbers.
const (
	// hotspotShare: above this hot-cell share, per-cell synchronization
	// serializes and replication wins regardless of object size.
	hotspotShare = 0.5
	// mergeToUpdateRatio: replication's end-of-pass merge costs
	// cells×threads cell-adds; when that exceeds this multiple of the
	// update count (domain), the merge dominates the pass and per-cell
	// CAS wins. Calibrated on BENCH_abl_sparse.json: the strategy ranking
	// crosses over between density 1e-4 (atomic wins) and 1e-2
	// (replication wins).
	mergeToUpdateRatio = 4
	// skewForStealing: above this max/mean alias skew, split costs are
	// uneven enough that work stealing beats dynamic self-scheduling.
	skewForStealing = 4.0
	// splitsPerThread targets enough splits for load balance without
	// drowning in per-split flushes.
	splitsPerThread = 8
	// minSplitRows / maxSplitRows clamp the advised chunk.
	minSplitRows = 256
	maxSplitRows = 65536
)

// Advise picks (strategy, scheduler, chunk) for a profiled plan running on
// the given worker count. Deterministic: the rules are ordered and purely
// arithmetic over the profile.
func Advise(p *PlanProfile, threads int) Advice {
	if threads < 1 {
		threads = 1
	}
	a := Advice{
		Strategy:  robj.FullReplication,
		Scheduler: sched.Dynamic,
	}
	trace := func(format string, args ...any) {
		a.Trace = append(a.Trace, fmt.Sprintf(format, args...))
	}

	// --- Strategy ---
	cells := p.Writes.Cells
	switch {
	case threads == 1:
		a.Strategy = robj.FullReplication
		trace("single worker: no cross-thread writes to mediate; replication degenerates to the private object with zero synchronization")
	case cells == 1 || p.Writes.HotCellShare >= hotspotShare:
		a.Strategy = robj.FullReplication
		trace("write hotspot (cells=%d, hot-cell share %.0f%%): per-cell locks/CAS would serialize every worker on one cell; replicate and merge once", cells, 100*p.Writes.HotCellShare)
	default:
		mergeOps := cells * threads
		updates := p.Domain
		if p.Kind == "affine" {
			// Dense per-row kernels write a full group run per row, so the
			// update count is domain×elems-per-group — far above the merge
			// cost for any realistic shape.
			updates = p.Domain * maxIntA(1, p.Writes.Elems)
		}
		if mergeOps > mergeToUpdateRatio*updates {
			a.Strategy = robj.AtomicCAS
			trace("sparse touch (object %d cells × %d threads = %d merge adds vs %d updates): replication's full-object merge dwarfs the update stream; per-touched-cell CAS wins", cells, threads, mergeOps, updates)
		} else if p.Writes.Bytes > DefaultCacheBudgetBytes {
			a.Strategy = robj.OptimizedFullLocking
			trace("write set %d bytes exceeds the cache budget: %d replicated mirrors would thrash; co-located per-cell locks keep one shared copy", p.Writes.Bytes, threads)
		} else {
			a.Strategy = robj.FullReplication
			trace("object fits the cache budget (%d bytes) and updates (%d) amortize the %d-add merge: sync-free replication", p.Writes.Bytes, updates, mergeOps)
		}
	}

	// --- Scheduler ---
	if p.Kind == "inspector" && p.Writes.Skew >= skewForStealing {
		a.Scheduler = sched.WorkStealing
		trace("scatter skew %.1f (max %d vs mean %.1f writes/cell): split costs are uneven; work stealing rebalances", p.Writes.Skew, p.Writes.MaxAliases, p.Writes.MeanAliases)
	} else {
		a.Scheduler = sched.Dynamic
		trace("uniform per-row cost: dynamic self-scheduling balances without steal traffic")
	}

	// --- Chunk ---
	a.SplitRows = adviseSplitRows(p.Domain, threads)
	trace("chunk %d rows: ~%d splits per thread over a %d-row domain, clamped to [%d,%d]", a.SplitRows, splitsPerThread, p.Domain, minSplitRows, maxSplitRows)

	// --- Hashed accumulator ---
	if p.Flush.SparseAccEligible && p.Flush.SparseAccEngaged {
		if p.Flush.HashedCellsPerFlush > 0 && p.Flush.HashedCellsPerFlush*2 > p.Flush.DenseCellsPerFlush {
			a.SparseAccCells = -1
			trace("hashed flush would retire ~%d of %d cells per split: the dense sweep is cheaper; disable the hashed accumulator", p.Flush.HashedCellsPerFlush, p.Flush.DenseCellsPerFlush)
		} else {
			trace("hashed accumulator engaged: ~%d touched cells per split flush vs a %d-cell dense sweep", p.Flush.HashedCellsPerFlush, p.Flush.DenseCellsPerFlush)
		}
	}
	return a
}

// adviseSplitRows targets splitsPerThread splits per worker, clamped and
// rounded down to a power of two for stable, cache-friendly split sizes.
func adviseSplitRows(domain, threads int) int {
	if domain <= 0 {
		return DefaultSplitRows
	}
	chunk := domain / (threads * splitsPerThread)
	if chunk < minSplitRows {
		return minSplitRows
	}
	if chunk > maxSplitRows {
		return maxSplitRows
	}
	pow := minSplitRows
	for pow*2 <= chunk {
		pow *= 2
	}
	return pow
}

func maxIntA(a, b int) int {
	if a > b {
		return a
	}
	return b
}
