// Package analyze is the translate-time cost and contention analysis for
// the Chapel→FREERIDE pipeline. It runs alongside the FRV verifier over the
// same plan IR (verify.Plan): where the verifier proves the lowered loop
// nest *safe*, this pass predicts how it will *perform* — per-split
// write-set footprints from the affine closed form off(i,k)=U0·i+Off0+U1·k,
// exact touched-cell histograms and conflict-degree distributions folded
// from inspector-materialized index tables, and a fused-flush cost model —
// and condenses them into a PlanProfile a deterministic advisor (advise.go)
// turns into a (strategy, scheduler, chunk) pick before the first row is
// read. Statically-provable pathologies surface as FRV050+ diagnostics.
//
// The package depends only on verify (the neutral IR), robj/sched (the
// advised enum types), and freeride (to apply advice onto a Config); core
// and serve depend on analyze, never the reverse.
package analyze

import (
	"fmt"

	"chapelfreeride/internal/verify"
)

// Defaults for Options fields left zero.
const (
	// DefaultCacheBudgetBytes is the per-worker write-set budget before
	// FRV051 fires: 1 MiB, roughly half a per-core L2, leaving headroom
	// for the data stream the worker is scanning at the same time.
	DefaultCacheBudgetBytes = 1 << 20
	// DefaultSparseAccCells mirrors freeride.Config.SparseAccCells's
	// default engagement threshold.
	DefaultSparseAccCells = 4096
	// DefaultSplitRows mirrors freeride.Config.SplitRows and sizes the
	// per-split interval examples and flush estimates.
	DefaultSplitRows = 4096
	// wordBytes is the linearized word size (float64).
	wordBytes = 8
)

// Options tunes the analysis. The zero value picks the defaults above.
type Options struct {
	// CacheBudgetBytes is the per-worker write-set budget; a reduction
	// object larger than this draws FRV051 and steers the advisor away
	// from replication-style dense mirrors.
	CacheBudgetBytes int64
	// SparseAccCells is the hashed-accumulator engagement threshold the
	// target engine will run with (freeride.Config.SparseAccCells);
	// negative disables the hashed path in the flush model.
	SparseAccCells int
	// SplitRows is the split size assumed by per-split estimates.
	SplitRows int
}

func (o Options) withDefaults() Options {
	if o.CacheBudgetBytes == 0 {
		o.CacheBudgetBytes = DefaultCacheBudgetBytes
	}
	if o.SparseAccCells == 0 {
		o.SparseAccCells = DefaultSparseAccCells
	}
	if o.SplitRows <= 0 {
		o.SplitRows = DefaultSplitRows
	}
	return o
}

// Overlap classifies how the footprints of two different splits relate.
type Overlap string

const (
	// OverlapDisjoint: distinct splits touch provably disjoint words.
	OverlapDisjoint Overlap = "disjoint"
	// OverlapReadShared: every split reads the same words; no writes.
	OverlapReadShared Overlap = "read-shared"
	// OverlapWriteConflicting: distinct splits can write the same cells.
	OverlapWriteConflicting Overlap = "write-conflicting"
)

// ReadFootprint is the per-access read-side summary: how many words one
// domain row touches and whether two splits' read sets can overlap.
type ReadFootprint struct {
	// Name is the access name from the plan: "data", "hot[0]", "gather(in)".
	Name string `json:"name"`
	// Overlap classifies the cross-split relation of this access's
	// footprints. For affine accesses it is proven from the closed form:
	// U0 ≥ InnerLen·U1 makes row footprints (and hence split footprints)
	// disjoint; hot-variable accesses are read by every split in full.
	Overlap Overlap `json:"overlap"`
	// CellsPerRow is the element count one domain row touches (InnerLen
	// for affine accesses, 1 per table entry for gathers).
	CellsPerRow int `json:"cells_per_row"`
	// SpanWordsPerRow is the word span of one row's footprint
	// (InnerLen·U1); equals CellsPerRow when the inner stride is 1.
	SpanWordsPerRow int `json:"span_words_per_row"`
	// FootprintBytes is the full-domain touched-byte count (distinct
	// words × 8). Zero for boxed accesses with no word view.
	FootprintBytes int64 `json:"footprint_bytes"`
	// Boxed marks accesses with no linear word view (generated/opt-1 hot
	// variables); their footprint is not statically sized.
	Boxed bool `json:"boxed,omitempty"`
}

// WriteSet is the reduction-object write-side summary. For affine plans the
// kernel's target cells are data-dependent, so only the shape-level facts
// are exact (cells, bytes) and the alias statistics are lower bounds from
// the domain size; for inspector plans the scatter table is materialized
// and every statistic is exact.
type WriteSet struct {
	// Overlap classifies cross-split object writes. Write-conflicting for
	// every plan with more than one cell-targeting row — FREERIDE's
	// sharing strategies exist exactly because this set is not disjoint.
	Overlap Overlap `json:"overlap"`
	// Groups, Elems, Cells, and Bytes size the object (Groups×Elems cells
	// × 8 bytes).
	Groups int   `json:"groups"`
	Elems  int   `json:"elems"`
	Cells  int   `json:"cells"`
	Bytes  int64 `json:"bytes"`
	// TouchedCells is the number of cells receiving at least one write:
	// exact from the scatter table for inspector plans; Cells for affine
	// plans (any cell is statically reachable).
	TouchedCells int `json:"touched_cells"`
	// MaxAliases is the write count of the hottest cell (inspector plans
	// only; 0 means not statically known).
	MaxAliases int `json:"max_aliases,omitempty"`
	// MeanAliases is writes per touched cell (domain / touched).
	MeanAliases float64 `json:"mean_aliases"`
	// HotCellShare is the fraction of all writes landing on the hottest
	// cell (inspector plans only).
	HotCellShare float64 `json:"hot_cell_share,omitempty"`
	// Skew is MaxAliases/MeanAliases — 1.0 for a perfectly uniform
	// scatter, large when a few cells absorb most writes.
	Skew float64 `json:"skew,omitempty"`
	// Sorted reports that the scatter table's targets are nondecreasing
	// over the domain (CSR row order), so one cell's writes are contiguous
	// in the iteration domain and cross-split conflicts cluster at split
	// boundaries.
	Sorted bool `json:"sorted,omitempty"`
}

// FlushEstimate models the per-split cost of retiring a fused pass's
// worker-local accumulator into the shared object.
type FlushEstimate struct {
	// DenseCellsPerFlush is what the dense mirror costs: AccumulateBlock
	// sweeps every object cell once per split flush.
	DenseCellsPerFlush int `json:"dense_cells_per_flush"`
	// HashedCellsPerFlush is the expected distinct-cell count one split's
	// writes touch — what AccumulateScattered retires per flush on the
	// hashed path. Zero when the hashed path is not eligible.
	HashedCellsPerFlush int `json:"hashed_cells_per_flush,omitempty"`
	// SparseAccEligible reports the plan runs a ScatterBlock fused kernel
	// (the only shape the hashed accumulator serves).
	SparseAccEligible bool `json:"sparse_acc_eligible"`
	// SparseAccEngaged reports the engine would engage the hashed
	// accumulator at Options.SparseAccCells for this object size.
	SparseAccEngaged bool `json:"sparse_acc_engaged"`
}

// PlanProfile is the structured result of the analysis: everything the
// advisor (and -analyze-json tooling) needs, derived statically from the
// plan IR at translate time.
type PlanProfile struct {
	// Class, Opt, OptName identify the analyzed plan.
	Class   string `json:"class"`
	Opt     int    `json:"opt"`
	OptName string `json:"opt_name"`
	// Kind is "affine" (closed-form index map) or "inspector"
	// (materialized index tables).
	Kind string `json:"kind"`
	// Domain is the executor iteration-domain length: rows for affine
	// plans, nonzeros for inspector plans.
	Domain int `json:"domain"`
	// Reads lists the read-side access footprints.
	Reads []ReadFootprint `json:"reads"`
	// Writes summarizes the reduction-object write set.
	Writes WriteSet `json:"writes"`
	// Flush is the fused-flush cost estimate.
	Flush FlushEstimate `json:"flush"`
	// Diags carries the FRV050+ advisory diagnostics the analysis
	// produced (never errors — pathologies inform the advisor, they do
	// not reject the plan).
	Diags verify.Diagnostics `json:"-"`
}

// SplitInterval returns the half-open word interval [lo, hi) an affine
// access touches over rows [begin, end) — the per-split write-set interval
// from the closed form off(i,k) = U0·i + Off0 + U1·k. With the FRV012
// injectivity fact U0 ≥ InnerLen·U1, intervals of consecutive splits are
// disjoint: hi(b,e) = U0·(e−1)+Off0+InnerLen·U1 ≤ U0·e+Off0 = lo(e,·).
func SplitInterval(a verify.Access, begin, end int) (lo, hi int) {
	if begin >= end || a.Boxed {
		return 0, 0
	}
	return a.U0*begin + a.Off0, a.U0*(end-1) + a.Off0 + a.InnerLen*a.U1
}

// Profile analyzes one verified plan and returns its profile. The plan is
// assumed to have passed verify.CheckPlan with no errors; on a plan that
// has not (nil Data, empty tables) the profile degrades to the facts that
// still hold rather than panicking.
func Profile(p *verify.Plan, opts Options) *PlanProfile {
	opts = opts.withDefaults()
	pr := &PlanProfile{
		Class:   p.Class,
		Opt:     p.Opt,
		OptName: p.OptName,
		Kind:    "affine",
	}
	if len(p.Tables) > 0 {
		pr.Kind = "inspector"
	}

	// Read side: the dataset stream and every hot access.
	if p.Data != nil {
		pr.Domain = p.Data.Elems
		pr.Reads = append(pr.Reads, readFootprint(*p.Data, true))
	}
	for _, h := range p.Hot {
		pr.Reads = append(pr.Reads, readFootprint(h, false))
	}

	// Write side: the reduction object.
	cells := p.Object.Cells()
	pr.Writes = WriteSet{
		Overlap:      OverlapWriteConflicting,
		Groups:       p.Object.Groups,
		Elems:        p.Object.Elems,
		Cells:        cells,
		Bytes:        int64(cells) * wordBytes,
		TouchedCells: cells,
	}

	if pr.Kind == "inspector" {
		pr.analyzeTables(p)
	} else if cells > 0 && pr.Domain > 0 {
		// Affine plans select target cells per row at run time; the exact
		// histogram is data-dependent. The domain still bounds the mean:
		// a per-row kernel issues ≥1 write per row, so the mean aliases
		// per touched cell are at least Domain/Cells.
		pr.Writes.MeanAliases = float64(pr.Domain) / float64(cells)
	}

	pr.estimateFlush(p, opts)
	pr.diagnose(opts)
	return pr
}

// readFootprint summarizes one access. isData marks the split-partitioned
// dataset stream; hot accesses are read in full by every split.
func readFootprint(a verify.Access, isData bool) ReadFootprint {
	f := ReadFootprint{Name: a.Name, Boxed: a.Boxed}
	if a.Boxed {
		f.Overlap = OverlapReadShared
		return f
	}
	f.CellsPerRow = a.InnerLen
	f.SpanWordsPerRow = a.InnerLen * a.U1
	f.FootprintBytes = int64(a.Elems) * int64(a.InnerLen) * wordBytes
	if isData && a.U0 >= a.InnerLen*a.U1 {
		// The FRV012 injectivity condition: row footprints are disjoint,
		// so splits over disjoint row ranges touch disjoint words.
		f.Overlap = OverlapDisjoint
	} else {
		f.Overlap = OverlapReadShared
	}
	return f
}

// analyzeTables folds the inspector-materialized tables into exact write
// and gather statistics: a touched-cell histogram over the scatter ("out")
// table and a distinct-offset count over the gather ("in") table.
func (pr *PlanProfile) analyzeTables(p *verify.Plan) {
	for _, t := range p.Tables {
		switch t.Name {
		case "out":
			pr.Domain = t.Domain
			pr.foldScatter(t)
		case "in":
			pr.foldGather(t)
		}
	}
}

// foldScatter builds the exact touched-cell histogram and conflict-degree
// distribution from the scatter table.
func (pr *PlanProfile) foldScatter(t verify.TableAccess) {
	if t.Bound <= 0 || t.Domain == 0 {
		return
	}
	counts := make([]int32, t.Bound)
	sorted := true
	var prev int32 = -1
	for _, e := range t.Entries {
		if e < 0 || int(e) >= t.Bound {
			continue // verifier rejects these; keep the fold total anyway
		}
		counts[e]++
		if e < prev {
			sorted = false
		}
		prev = e
	}
	touched, max := 0, int32(0)
	for _, c := range counts {
		if c > 0 {
			touched++
		}
		if c > max {
			max = c
		}
	}
	pr.Writes.TouchedCells = touched
	pr.Writes.MaxAliases = int(max)
	pr.Writes.Sorted = sorted
	if touched > 0 {
		pr.Writes.MeanAliases = float64(t.Domain) / float64(touched)
		pr.Writes.HotCellShare = float64(max) / float64(t.Domain)
		pr.Writes.Skew = float64(max) / pr.Writes.MeanAliases
	}
}

// foldGather summarizes the gather table as a read footprint: distinct hot
// offsets × 8 bytes, read-shared across splits (any split may gather any
// offset).
func (pr *PlanProfile) foldGather(t verify.TableAccess) {
	if t.Bound <= 0 {
		return
	}
	seen := make([]bool, t.Bound)
	distinct := 0
	for _, e := range t.Entries {
		if e >= 0 && int(e) < t.Bound && !seen[e] {
			seen[e] = true
			distinct++
		}
	}
	pr.Reads = append(pr.Reads, ReadFootprint{
		Name:            "gather(in)",
		Overlap:         OverlapReadShared,
		CellsPerRow:     1,
		SpanWordsPerRow: 1,
		FootprintBytes:  int64(distinct) * wordBytes,
	})
}

// estimateFlush models the per-split fused-flush cost: the dense mirror
// sweeps every object cell, the hashed accumulator retires only the cells
// one split actually touched.
func (pr *PlanProfile) estimateFlush(p *verify.Plan, opts Options) {
	pr.Flush.DenseCellsPerFlush = pr.Writes.Cells
	// Only inspector plans lower to ScatterBlock fused kernels in this
	// pipeline (dense opt-3 block kernels write their group run directly).
	pr.Flush.SparseAccEligible = pr.Kind == "inspector" && p.HasBlockKernel
	if !pr.Flush.SparseAccEligible {
		return
	}
	pr.Flush.SparseAccEngaged = opts.SparseAccCells > 0 && pr.Writes.Cells >= opts.SparseAccCells
	// Expected distinct cells per split: a window of SplitRows entries in
	// a sorted table covers about SplitRows/MeanAliases distinct cells;
	// an unsorted scatter is bounded by the same estimate in expectation.
	if pr.Writes.MeanAliases > 0 {
		est := int(float64(opts.SplitRows)/pr.Writes.MeanAliases) + 1
		if est > pr.Writes.TouchedCells && pr.Writes.TouchedCells > 0 {
			est = pr.Writes.TouchedCells
		}
		if est > pr.Writes.Cells {
			est = pr.Writes.Cells
		}
		pr.Flush.HashedCellsPerFlush = est
	}
}

// diagnose raises the FRV050+ advisory diagnostics on statically-provable
// pathologies.
func (pr *PlanProfile) diagnose(opts Options) {
	pos := pr.Class
	if pos == "" {
		pos = "class"
	}
	if pr.Writes.Cells == 1 && pr.Domain > 1 {
		pr.Diags = append(pr.Diags, verify.Diagnostic{
			Pos: pos, Severity: verify.SeverityWarning, Code: verify.CodeWriteHotspot,
			Msg: fmt.Sprintf("all %d domain rows write the single object cell; per-cell locks and CAS serialize on it — full replication is the only contention-free strategy", pr.Domain),
		})
	} else if pr.Writes.HotCellShare >= 0.5 && pr.Domain > 16 {
		pr.Diags = append(pr.Diags, verify.Diagnostic{
			Pos: pos, Severity: verify.SeverityWarning, Code: verify.CodeWriteHotspot,
			Msg: fmt.Sprintf("the hottest object cell absorbs %.0f%% of all %d scatter writes (%d aliases); per-cell synchronization serializes on it — prefer full replication", 100*pr.Writes.HotCellShare, pr.Domain, pr.Writes.MaxAliases),
		})
	}
	if pr.Writes.Bytes > opts.CacheBudgetBytes {
		pr.Diags = append(pr.Diags, verify.Diagnostic{
			Pos: pos, Severity: verify.SeverityWarning, Code: verify.CodeFootprintBudget,
			Msg: fmt.Sprintf("per-worker write set is %d bytes (%d cells), over the %d-byte cache budget; replicated mirrors will thrash and every dense flush sweeps the full object", pr.Writes.Bytes, pr.Writes.Cells, opts.CacheBudgetBytes),
		})
	}
	if pr.Kind == "inspector" && pr.Writes.Skew >= 8 && pr.Writes.Cells >= opts.SparseAccCells && opts.SparseAccCells > 0 {
		pr.Diags = append(pr.Diags, verify.Diagnostic{
			Pos: pos, Severity: verify.SeverityInfo, Code: verify.CodeDegenerateSkew,
			Msg: fmt.Sprintf("scatter table shows degenerate skew (max %d vs mean %.1f writes/cell over %d touched of %d cells); the hashed scatter accumulator keeps flushes proportional to the touched set", pr.Writes.MaxAliases, pr.Writes.MeanAliases, pr.Writes.TouchedCells, pr.Writes.Cells),
		})
	}
}

// DenseProfile builds the affine profile for a dense rows×cols dataset
// reduced into a groups×elems object — the admission-time path (serve)
// where only the shapes are known and the full core lowering has not run.
// The synthetic access is the standard contiguous row-major layout the
// dense translations produce (U0=cols, Off0=0, U1=1).
func DenseProfile(class string, rows, cols, groups, elems int, opts Options) *PlanProfile {
	if rows < 0 {
		rows = 0
	}
	if cols < 1 {
		cols = 1
	}
	p := &verify.Plan{
		Class:     class,
		Opt:       2,
		OptName:   "opt-2",
		HasKernel: true,
		Object:    verify.Shape{Groups: groups, Elems: elems},
		Data: &verify.Access{
			Name: "data", Elems: rows, InnerLen: cols,
			U0: cols, Off0: 0, U1: 1,
			WordLen: rows * cols, Levels: 2, AllReal: true,
		},
	}
	return Profile(p, opts)
}

// SparseShapeProfile builds a coarse inspector-model profile from shape
// alone — nnz scatter writes into a cells-cell object — for admission-time
// advice when materializing the index tables would mean reading the whole
// dataset. Alias statistics assume a uniform scatter (skew 1); exact
// statistics come from Profile over a plan with materialized tables.
func SparseShapeProfile(class string, nnz, cells int, opts Options) *PlanProfile {
	opts = opts.withDefaults()
	pr := &PlanProfile{
		Class:   class,
		Opt:     3,
		OptName: "opt-3",
		Kind:    "inspector",
		Domain:  nnz,
	}
	if cells < 0 {
		cells = 0
	}
	touched := cells
	if nnz < touched {
		touched = nnz
	}
	pr.Writes = WriteSet{
		Overlap:      OverlapWriteConflicting,
		Groups:       cells,
		Elems:        1,
		Cells:        cells,
		Bytes:        int64(cells) * wordBytes,
		TouchedCells: touched,
	}
	if touched > 0 {
		pr.Writes.MeanAliases = float64(nnz) / float64(touched)
		pr.Writes.Skew = 1
	}
	pr.Flush.DenseCellsPerFlush = cells
	pr.Flush.SparseAccEligible = true
	pr.Flush.SparseAccEngaged = opts.SparseAccCells > 0 && cells >= opts.SparseAccCells
	if pr.Writes.MeanAliases > 0 {
		est := int(float64(opts.SplitRows)/pr.Writes.MeanAliases) + 1
		if est > touched {
			est = touched
		}
		pr.Flush.HashedCellsPerFlush = est
	}
	pr.diagnose(opts)
	return pr
}
