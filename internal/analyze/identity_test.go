package analyze_test

import (
	"testing"

	"chapelfreeride/internal/analyze"
	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// TestAdvisedRunBitIdentical pins the second half of the acceptance
// property: the advisor only moves execution knobs (strategy, scheduler,
// chunk), never numerics — so a run under the advised configuration is
// bit-identical to the same workload under any hand-picked configuration.
// Pinned at one worker, where the accumulation order is the sequential
// split order for every strategy and scheduler; at higher thread counts
// floating-point merge order is scheduler-dependent by design.
func TestAdvisedRunBitIdentical(t *testing.T) {
	const k, iters = 4, 3
	points, _ := dataset.GaussianMixture(2048, 6, k, 42)
	init := dataset.NewMatrix(k, 6)
	copy(init.Data, points.Data[:k*6])

	run := func(cfg freeride.Config) *dataset.Matrix {
		res, err := apps.KMeansManualFR(points, init, apps.KMeansConfig{
			K: k, Iterations: iters, Engine: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Centroids
	}

	pr := analyze.DenseProfile("kmeans", points.Rows, points.Cols, k, points.Cols+1, analyze.Options{})
	adv := analyze.Advise(pr, 1)
	advised := run(adv.Apply(freeride.Config{Threads: 1}))

	for _, st := range robj.Strategies() {
		for _, pol := range []sched.Policy{sched.Static, sched.Dynamic, sched.WorkStealing} {
			got := run(freeride.Config{Threads: 1, Strategy: st, Scheduler: pol})
			if !got.Equal(advised) {
				t.Fatalf("advised centroids differ from hand-picked %s/%s", st, pol)
			}
		}
	}
}
