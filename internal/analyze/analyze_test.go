package analyze

import (
	"strings"
	"testing"

	"chapelfreeride/internal/verify"
)

// densePlan builds the canonical affine plan: rows×cols contiguous data
// reduced into a groups×elems object.
func densePlan(rows, cols, groups, elems int) *verify.Plan {
	return &verify.Plan{
		Class: "t", Opt: 2, OptName: "opt-2", HasKernel: true,
		Object: verify.Shape{Groups: groups, Elems: elems},
		Data: &verify.Access{
			Name: "data", Elems: rows, InnerLen: cols,
			U0: cols, U1: 1, WordLen: rows * cols, Levels: 2, AllReal: true,
		},
	}
}

// scatterPlan builds an inspector plan whose out table is given explicitly.
func scatterPlan(out []int32, bound int) *verify.Plan {
	return &verify.Plan{
		Class: "t", Opt: 3, OptName: "opt-3", HasKernel: true, HasBlockKernel: true,
		Object: verify.Shape{Groups: bound, Elems: 1},
		Tables: []verify.TableAccess{{Name: "out", Domain: len(out), Entries: out, Bound: bound}},
	}
}

func TestSplitIntervalDisjoint(t *testing.T) {
	a := verify.Access{Elems: 100, InnerLen: 4, U0: 6, Off0: 2, U1: 1}
	// Consecutive splits must not overlap: hi of [0,50) <= lo of [50,100).
	_, hi := SplitInterval(a, 0, 50)
	lo, _ := SplitInterval(a, 50, 100)
	if hi > lo {
		t.Fatalf("split intervals overlap: hi=%d lo=%d", hi, lo)
	}
	if gotLo, gotHi := SplitInterval(a, 0, 1); gotLo != 2 || gotHi != 2+4 {
		t.Fatalf("first-row interval = [%d,%d), want [2,6)", gotLo, gotHi)
	}
}

func TestProfileAffine(t *testing.T) {
	pr := Profile(densePlan(1000, 4, 8, 5), Options{})
	if pr.Kind != "affine" || pr.Domain != 1000 {
		t.Fatalf("kind/domain = %s/%d", pr.Kind, pr.Domain)
	}
	if len(pr.Reads) != 1 || pr.Reads[0].Overlap != OverlapDisjoint {
		t.Fatalf("data read = %+v, want disjoint", pr.Reads)
	}
	if pr.Reads[0].FootprintBytes != 1000*4*8 {
		t.Fatalf("footprint = %d", pr.Reads[0].FootprintBytes)
	}
	w := pr.Writes
	if w.Overlap != OverlapWriteConflicting || w.Cells != 40 || w.Bytes != 320 {
		t.Fatalf("writes = %+v", w)
	}
	if w.MeanAliases != 25 { // 1000 rows / 40 cells
		t.Fatalf("mean aliases = %v", w.MeanAliases)
	}
	if pr.Flush.DenseCellsPerFlush != 40 || pr.Flush.SparseAccEligible {
		t.Fatalf("flush = %+v", pr.Flush)
	}
	if len(pr.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %s", pr.Diags.Render())
	}
}

func TestProfileOverlappingRowsReadShared(t *testing.T) {
	// U0 < InnerLen*U1: consecutive rows alias, so the read is not
	// split-disjoint (a sliding-window access shape).
	p := densePlan(100, 4, 2, 2)
	p.Data.U0 = 2
	p.Data.WordLen = 100 * 2
	pr := Profile(p, Options{})
	if pr.Reads[0].Overlap != OverlapReadShared {
		t.Fatalf("overlap = %s, want read-shared", pr.Reads[0].Overlap)
	}
}

func TestProfileInspectorHistogram(t *testing.T) {
	// 8 writes: cell 3 gets 4, cell 1 gets 2, cells 0 and 6 get 1 each.
	out := []int32{0, 1, 1, 3, 3, 3, 3, 6}
	pr := Profile(scatterPlan(out, 8), Options{})
	if pr.Kind != "inspector" || pr.Domain != 8 {
		t.Fatalf("kind/domain = %s/%d", pr.Kind, pr.Domain)
	}
	w := pr.Writes
	if w.TouchedCells != 4 || w.MaxAliases != 4 {
		t.Fatalf("touched/max = %d/%d", w.TouchedCells, w.MaxAliases)
	}
	if w.MeanAliases != 2 || w.HotCellShare != 0.5 || w.Skew != 2 {
		t.Fatalf("mean/hot/skew = %v/%v/%v", w.MeanAliases, w.HotCellShare, w.Skew)
	}
	if !w.Sorted {
		t.Fatal("sorted table not detected")
	}
	pr = Profile(scatterPlan([]int32{3, 1, 3}, 8), Options{})
	if pr.Writes.Sorted {
		t.Fatal("unsorted table reported as sorted")
	}
}

func TestDiagnosticsFire(t *testing.T) {
	// FRV050: one-cell object.
	pr := Profile(densePlan(100, 4, 1, 1), Options{})
	if !hasCode(pr.Diags, verify.CodeWriteHotspot) {
		t.Fatalf("FRV050 missing: %s", pr.Diags.Render())
	}
	// FRV050: inspector hot-cell share >= 0.5.
	out := make([]int32, 100)
	for i := 60; i < 100; i++ {
		out[i] = int32(i)
	}
	pr = Profile(scatterPlan(out, 100), Options{})
	if !hasCode(pr.Diags, verify.CodeWriteHotspot) {
		t.Fatalf("FRV050 (skew form) missing: %s", pr.Diags.Render())
	}
	// FRV051: object over the cache budget.
	pr = Profile(densePlan(100, 4, 1024, 1024), Options{CacheBudgetBytes: 1 << 20})
	if !hasCode(pr.Diags, verify.CodeFootprintBudget) {
		t.Fatalf("FRV051 missing: %s", pr.Diags.Render())
	}
	// FRV052: degenerate skew over a large object.
	big := make([]int32, 10000)
	for i := range big {
		big[i] = int32(i % 100) // 100 touched of 8192 cells, uniform...
	}
	for i := 0; i < 3000; i++ {
		big[i] = 7 // ...plus a heavy alias pile-up on one cell
	}
	pr = Profile(scatterPlan(big, 8192), Options{SparseAccCells: 4096})
	if !hasCode(pr.Diags, verify.CodeDegenerateSkew) {
		t.Fatalf("FRV052 missing: %s", pr.Diags.Render())
	}
	// None of the analysis diagnostics may reject a plan.
	if pr.Diags.HasErrors() {
		t.Fatalf("analysis produced error-severity diagnostics: %s", pr.Diags.Render())
	}
}

func hasCode(ds verify.Diagnostics, code verify.Code) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestShapeProfiles(t *testing.T) {
	pr := DenseProfile("kmeans", 5000, 8, 32, 9, Options{})
	if pr.Kind != "affine" || pr.Domain != 5000 || pr.Writes.Cells != 288 {
		t.Fatalf("dense profile = %+v", pr)
	}
	sp := SparseShapeProfile("spmv", 100000, 8192, Options{})
	if sp.Kind != "inspector" || sp.Domain != 100000 || sp.Writes.Cells != 8192 {
		t.Fatalf("sparse profile = %+v", sp)
	}
	if sp.Writes.Skew != 1 {
		t.Fatalf("shape-only profile must assume uniform skew, got %v", sp.Writes.Skew)
	}
	if !sp.Flush.SparseAccEngaged {
		t.Fatal("8192-cell object should engage the hashed accumulator at the default threshold")
	}
}

func TestReportRenders(t *testing.T) {
	pr := Profile(densePlan(1000, 4, 8, 5), Options{})
	adv := Advise(pr, 8)
	rep := pr.Report(adv, 8)
	for _, want := range []string{"plan analysis", "disjoint", "write-conflicting", "advice (threads=8)", "strategy=replication"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}
