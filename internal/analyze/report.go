package analyze

import (
	"fmt"
	"strings"
)

// Report renders the profile and advice as the compiler-style text
// freeride-translate -analyze prints: one block per analyzed plan, facts
// first, then the advice with its rule trace indented beneath it.
// Diagnostics are NOT included — callers interleave them through the same
// verify.Diagnostics renderer as the FRV verifier so errors and warnings
// keep one format.
func (pr *PlanProfile) Report(adv Advice, threads int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== plan analysis: %s (%s, %s) ===\n", pr.Class, pr.OptName, pr.Kind)
	fmt.Fprintf(&b, "domain: %d %s\n", pr.Domain, domainNoun(pr.Kind))
	for _, r := range pr.Reads {
		if r.Boxed {
			fmt.Fprintf(&b, "read %-12s %s, boxed traversal (no static word footprint)\n", r.Name+":", r.Overlap)
			continue
		}
		fmt.Fprintf(&b, "read %-12s %s, %d cells/row (%d-word span), %d bytes total\n",
			r.Name+":", r.Overlap, r.CellsPerRow, r.SpanWordsPerRow, r.FootprintBytes)
	}
	w := pr.Writes
	fmt.Fprintf(&b, "write object:     %s, %dx%d cells (%d bytes)", w.Overlap, w.Groups, w.Elems, w.Bytes)
	if pr.Kind == "inspector" {
		fmt.Fprintf(&b, ", %d touched, aliases max/mean %d/%.1f, skew %.1f, hot-cell share %.0f%%",
			w.TouchedCells, w.MaxAliases, w.MeanAliases, w.Skew, 100*w.HotCellShare)
		if w.Sorted {
			b.WriteString(", row-sorted")
		}
	} else if w.MeanAliases > 0 {
		fmt.Fprintf(&b, ", >=%.1f writes/cell", w.MeanAliases)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "fused flush:      dense sweep %d cells/split", pr.Flush.DenseCellsPerFlush)
	if pr.Flush.SparseAccEligible {
		fmt.Fprintf(&b, "; hashed ~%d cells/split (engaged: %v)",
			pr.Flush.HashedCellsPerFlush, pr.Flush.SparseAccEngaged)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "advice (threads=%d): strategy=%s scheduler=%s splitRows=%d",
		threads, adv.Strategy, adv.Scheduler, adv.SplitRows)
	if adv.SparseAccCells != 0 {
		fmt.Fprintf(&b, " sparseAccCells=%d", adv.SparseAccCells)
	}
	b.WriteByte('\n')
	for _, t := range adv.Trace {
		fmt.Fprintf(&b, "  - %s\n", t)
	}
	return b.String()
}

func domainNoun(kind string) string {
	if kind == "inspector" {
		return "nonzeros"
	}
	return "rows"
}
