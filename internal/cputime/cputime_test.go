package cputime

import (
	"runtime"
	"testing"
	"time"
)

func TestThreadCPUAdvances(t *testing.T) {
	if !Supported() {
		if ThreadCPU() != 0 {
			t.Fatal("unsupported platform should report 0")
		}
		t.Skip("per-thread CPU accounting unsupported")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	start := ThreadCPU()
	// Burn some CPU; the accounted time must advance.
	x := 0.0
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += float64(i)
		}
	}
	if x < 0 {
		t.Fatal("unreachable")
	}
	delta := ThreadCPU() - start
	if delta <= 0 {
		t.Fatalf("thread CPU did not advance: %v", delta)
	}
	if delta > time.Second {
		t.Fatalf("implausible thread CPU delta: %v", delta)
	}
}
