package cputime

import (
	"runtime"
	"testing"
)

// TestThreadCPUMonotoneNonNegative runs on every platform: successive
// ThreadCPU readings from one locked OS thread must be non-negative and
// never decrease, whether the platform implementation is the Linux rusage
// path or the constant-zero fallback.
func TestThreadCPUMonotoneNonNegative(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	prev := ThreadCPU()
	if prev < 0 {
		t.Fatalf("initial reading negative: %v", prev)
	}
	x := 0.0
	for i := 0; i < 50; i++ {
		for j := 0; j < 20000; j++ {
			x += float64(j)
		}
		cur := ThreadCPU()
		if cur < 0 {
			t.Fatalf("sample %d negative: %v", i, cur)
		}
		if cur < prev {
			t.Fatalf("sample %d decreased: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
	if x < 0 {
		t.Fatal("unreachable")
	}
}
