//go:build linux

// Package cputime exposes per-thread CPU time accounting where the platform
// provides it. The FREERIDE engine uses it to report per-worker CPU work,
// from which the benchmark harness estimates multicore scaling when the
// machine running the reproduction has fewer cores than the paper's 8-core
// testbed (per-worker CPU is unaffected by time-slicing, unlike wall time).
package cputime

import (
	"syscall"
	"time"
)

// Supported reports whether per-thread CPU accounting is available.
func Supported() bool { return true }

// ThreadCPU returns the calling OS thread's consumed CPU time (user +
// system). The caller must be locked to its OS thread for the value to be
// meaningful across calls.
func ThreadCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_THREAD, &ru); err != nil {
		return 0
	}
	return tvDuration(ru.Utime) + tvDuration(ru.Stime)
}

func tvDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
