//go:build !linux

package cputime

import "testing"

// TestFallbackMonotoneNonNegative pins the cputime_other.go contract: on
// platforms without per-thread accounting, Supported reports false and
// ThreadCPU returns a constant 0 — trivially monotone and non-negative — so
// callers can subtract readings without branching per platform.
func TestFallbackMonotoneNonNegative(t *testing.T) {
	if Supported() {
		t.Fatal("fallback build must report Supported() == false")
	}
	prev := ThreadCPU()
	if prev != 0 {
		t.Fatalf("fallback ThreadCPU = %v, want 0", prev)
	}
	for i := 0; i < 100; i++ {
		cur := ThreadCPU()
		if cur < 0 {
			t.Fatalf("sample %d negative: %v", i, cur)
		}
		if cur < prev {
			t.Fatalf("sample %d decreased: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}
