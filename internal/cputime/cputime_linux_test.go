//go:build linux

package cputime

import (
	"runtime"
	"testing"
	"time"
)

// TestLinuxBusyLoopAccrues covers the Linux rusage path: a locked thread
// busy-looping for 100ms of wall time must accrue a meaningful amount of
// per-thread CPU, and Supported must report true.
func TestLinuxBusyLoopAccrues(t *testing.T) {
	if !Supported() {
		t.Fatal("linux build must report Supported() == true")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	start := ThreadCPU()
	x := 0.0
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x += float64(i)
		}
	}
	if x < 0 {
		t.Fatal("unreachable")
	}
	delta := ThreadCPU() - start
	// The loop burned ~100ms of wall time on a locked thread; even on a
	// heavily shared machine a sizable slice of it must be accounted.
	if delta < 10*time.Millisecond {
		t.Fatalf("busy loop accrued only %v of thread CPU", delta)
	}
	if delta > time.Second {
		t.Fatalf("implausible thread CPU delta: %v", delta)
	}
}
