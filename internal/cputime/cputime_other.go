//go:build !linux

package cputime

import "time"

// Supported reports whether per-thread CPU accounting is available.
func Supported() bool { return false }

// ThreadCPU returns 0 on platforms without per-thread accounting.
func ThreadCPU() time.Duration { return 0 }
