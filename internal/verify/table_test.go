package verify

import (
	"strings"
	"testing"
)

// goodTables returns a clean scatter/gather table pair: 6 entries mapping
// into a 4-cell object and a 5-element hot vector.
func goodTables() []TableAccess {
	return []TableAccess{
		{Name: "out", Domain: 6, Entries: []int32{0, 0, 1, 3, 2, 3}, Bound: 4},
		{Name: "in", Domain: 6, Entries: []int32{4, 1, 0, 2, 4, 3}, Bound: 5},
	}
}

func goodTablePlan() *Plan {
	p := goodPlan()
	p.Tables = goodTables()
	return p
}

func TestCheckPlanTablesClean(t *testing.T) {
	ds := CheckPlan(goodTablePlan())
	if len(ds) != 0 {
		t.Fatalf("clean table plan produced diagnostics:\n%s", ds.Render())
	}
}

// TestCheckPlanTablesAliasedTargetsLegal pins the design decision that
// scatter tables need not be injective: a push reduction aliasing many
// entries onto one cell is merged by the associative accumulate.
func TestCheckPlanTablesAliasedTargetsLegal(t *testing.T) {
	p := goodTablePlan()
	p.Tables[0].Entries = []int32{2, 2, 2, 2, 2, 2}
	if ds := CheckPlan(p); len(ds) != 0 {
		t.Fatalf("fully aliased scatter table must be legal, got:\n%s", ds.Render())
	}
}

// TestCheckPlanEmptyTableClean pins the empty-matrix edge case: a zero-nnz
// source lowers to zero-domain tables, which are total and trivially in
// bounds (Bound may even be zero when nothing is ever looked up).
func TestCheckPlanEmptyTableClean(t *testing.T) {
	p := goodTablePlan()
	p.Tables = []TableAccess{
		{Name: "out", Domain: 0, Entries: nil, Bound: 4},
		{Name: "in", Domain: 0, Entries: nil, Bound: 0},
	}
	if ds := CheckPlan(p); len(ds) != 0 {
		t.Fatalf("empty tables must be legal, got:\n%s", ds.Render())
	}
}

// TestCheckPlanTableRejections is the table-driven pin for every rejected
// index-table shape: exact code, exact severity, and a message naming the
// offending entry or count.
func TestCheckPlanTableRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(p *Plan)
		code    Code
		msgPart string
	}{
		{
			name:    "short table",
			mutate:  func(p *Plan) { p.Tables[0].Entries = p.Tables[0].Entries[:4] },
			code:    CodeTableNotTotal,
			msgPart: "4 entries for a domain of 6",
		},
		{
			name:    "overlong table",
			mutate:  func(p *Plan) { p.Tables[1].Entries = append(p.Tables[1].Entries, 0) },
			code:    CodeTableNotTotal,
			msgPart: "7 entries for a domain of 6",
		},
		{
			name:    "negative domain",
			mutate:  func(p *Plan) { p.Tables[0].Domain = -1 },
			code:    CodeTableNotTotal,
			msgPart: "domain of -1",
		},
		{
			name:    "entry past bound",
			mutate:  func(p *Plan) { p.Tables[0].Entries[3] = 4 },
			code:    CodeTableOOB,
			msgPart: "entry 3 maps to 4, outside the target space [0,4)",
		},
		{
			name:    "negative entry",
			mutate:  func(p *Plan) { p.Tables[1].Entries[0] = -2 },
			code:    CodeTableOOB,
			msgPart: "entry 0 maps to -2",
		},
		{
			name:    "zero bound with entries",
			mutate:  func(p *Plan) { p.Tables[1].Bound = 0 },
			code:    CodeTableOOB,
			msgPart: "needs Bound >= 1",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := goodTablePlan()
			tc.mutate(p)
			ds := CheckPlan(p)
			if !hasCode(ds, tc.code, SeverityError) {
				t.Fatalf("want error %s, got:\n%s", tc.code, ds.Render())
			}
			if !strings.Contains(ds.Render(), tc.msgPart) {
				t.Errorf("diagnostics missing %q:\n%s", tc.msgPart, ds.Render())
			}
		})
	}
}
