package verify

import (
	"strings"
	"testing"
)

// goodAccess is a clean 2-level data access: 10 rows × 4-word runs, dense.
func goodAccess() Access {
	return Access{Name: "data", Elems: 10, InnerLen: 4, U0: 4, Off0: 0, U1: 1, WordLen: 40, Levels: 2, AllReal: true}
}

func goodPlan() *Plan {
	d := goodAccess()
	return &Plan{
		Class: "kmeans", Opt: 2, OptName: "opt-2",
		HasKernel: true,
		Object:    Shape{Groups: 3, Elems: 5},
		Data:      &d,
	}
}

// codes extracts the diagnostic codes in order.
func codes(ds Diagnostics) []Code {
	out := make([]Code, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func hasCode(ds Diagnostics, c Code, sev Severity) bool {
	for _, d := range ds {
		if d.Code == c && d.Severity == sev {
			return true
		}
	}
	return false
}

func TestCheckPlanClean(t *testing.T) {
	ds := CheckPlan(goodPlan())
	if len(ds) != 0 {
		t.Fatalf("clean plan produced diagnostics:\n%s", ds.Render())
	}
}

// TestCheckPlanRejections is the table-driven pin for every rejected plan
// shape: each mutation must produce the exact code at the exact severity,
// with the message naming the facts a user needs to fix the class.
func TestCheckPlanRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(p *Plan)
		code    Code
		sev     Severity
		msgPart string
	}{
		{
			name:    "no kernel",
			mutate:  func(p *Plan) { p.HasKernel = false },
			code:    CodeNoKernel,
			sev:     SeverityError,
			msgPart: "needs a class with a kernel",
		},
		{
			name:    "bad opt level",
			mutate:  func(p *Plan) { p.Opt, p.OptName = 7, "opt(7)" },
			code:    CodeBadOptLevel,
			sev:     SeverityError,
			msgPart: "unknown optimization level opt(7)",
		},
		{
			name:    "empty object shape",
			mutate:  func(p *Plan) { p.Object = Shape{} },
			code:    CodeBadObjectShape,
			sev:     SeverityError,
			msgPart: "shape 0x0 has no cells",
		},
		{
			name:    "negative object shape",
			mutate:  func(p *Plan) { p.Object = Shape{Groups: -1, Elems: 5} },
			code:    CodeBadObjectShape,
			sev:     SeverityError,
			msgPart: "-1x5",
		},
		{
			name:    "non-real data",
			mutate:  func(p *Plan) { p.Data.AllReal = false },
			code:    CodeNotAllReal,
			sev:     SeverityError,
			msgPart: "all-real dataset",
		},
		{
			name:    "wrong levels",
			mutate:  func(p *Plan) { p.Data.Levels = 3 },
			code:    CodeBadLevels,
			sev:     SeverityError,
			msgPart: "2-level addressing",
		},
		{
			name:    "out-of-bounds offset",
			mutate:  func(p *Plan) { p.Data.Off0 = 8 }, // last row now runs past the buffer
			code:    CodeOOBOffset,
			sev:     SeverityError,
			msgPart: "touches words [8,48) of a 40-word buffer",
		},
		{
			name:    "index map not total",
			mutate:  func(p *Plan) { p.Data.U1 = 0 },
			code:    CodeMapNotTotal,
			sev:     SeverityError,
			msgPart: "not total",
		},
		{
			name: "index map not injective",
			mutate: func(p *Plan) {
				// Row stride 2 < row span 4: rows alias. Widen the buffer so
				// only injectivity fails, not bounds.
				p.Data.U0 = 2
				p.Data.WordLen = 2*9 + 4
				p.Data.Elems = (2*9 + 4) / 2 // keep the word count consistent
			},
			code:    CodeMapNotInjective,
			sev:     SeverityError,
			msgPart: "not injective",
		},
		{
			name: "word count mismatch",
			mutate: func(p *Plan) {
				p.Data.WordLen = 44 // 4 spare words the row count cannot explain
			},
			code:    CodeWordCount,
			sev:     SeverityError,
			msgPart: "holds 44 words but 10 rows x 4 words/row = 40",
		},
		{
			name: "hot var not all-real at opt-2",
			mutate: func(p *Plan) {
				h := goodAccess()
				h.Name, h.AllReal = "hot[0]", false
				p.Hot = []Access{h}
			},
			code:    CodeHotNotAllReal,
			sev:     SeverityError,
			msgPart: "all-real hot state",
		},
		{
			name:    "opt-3 without block kernel",
			mutate:  func(p *Plan) { p.Opt, p.OptName = 3, "opt-3" },
			code:    CodeOpt3NoBlockKernel,
			sev:     SeverityWarning,
			msgPart: "falls back to the opt-2 per-element shape",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := goodPlan()
			tc.mutate(p)
			ds := CheckPlan(p)
			if !hasCode(ds, tc.code, tc.sev) {
				t.Fatalf("want %s at %s, got %v:\n%s", tc.code, tc.sev, codes(ds), ds.Render())
			}
			found := false
			for _, d := range ds {
				if d.Code == tc.code && strings.Contains(d.Msg, tc.msgPart) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s diagnostic mentions %q:\n%s", tc.code, tc.msgPart, ds.Render())
			}
			wantErr := tc.sev == SeverityError
			if gotErr := ds.Err() != nil; gotErr != wantErr {
				t.Fatalf("Err() = %v, want error=%v", ds.Err(), wantErr)
			}
		})
	}
}

func TestCheckPlanBoxedHotSkipsLinearChecks(t *testing.T) {
	p := goodPlan()
	p.Opt, p.OptName = 1, "opt-1"
	p.Hot = []Access{{Name: "hot[0]", Boxed: true}}
	if ds := CheckPlan(p); len(ds) != 0 {
		t.Fatalf("boxed hot var at opt-1 should be clean, got:\n%s", ds.Render())
	}
}

func TestCheckSpec(t *testing.T) {
	good := SpecPlan{HasReduction: true, Object: Shape{Groups: 2, Elems: 3}}
	if ds := CheckSpec(good); len(ds) != 0 {
		t.Fatalf("clean spec produced diagnostics:\n%s", ds.Render())
	}
	tests := []struct {
		name    string
		plan    SpecPlan
		code    Code
		msgPart string
	}{
		{
			name:    "no reduction",
			plan:    SpecPlan{Object: Shape{Groups: 1, Elems: 1}},
			code:    CodeNoReduction,
			msgPart: "Spec.Reduction (or BlockReduction) is required",
		},
		{
			name:    "local init without combine",
			plan:    SpecPlan{HasReduction: true, Object: Shape{Groups: 1, Elems: 1}, HasLocalInit: true},
			code:    CodeLocalInitNoCombine,
			msgPart: "LocalInit requires LocalCombine",
		},
		{
			name:    "block reduction without object",
			plan:    SpecPlan{HasBlockReduction: true, HasReduction: true},
			code:    CodeBlockNeedsObject,
			msgPart: "BlockReduction requires a cell-based reduction object",
		},
		{
			name: "block reduction with local init",
			plan: SpecPlan{HasBlockReduction: true, Object: Shape{Groups: 1, Elems: 1},
				HasLocalInit: true, HasLocalCombine: true},
			code:    CodeBlockLocalInit,
			msgPart: "cannot be combined with LocalInit",
		},
		{
			name:    "combine without object",
			plan:    SpecPlan{HasReduction: true, HasLocalInit: true, HasLocalCombine: true, HasCombine: true},
			code:    CodeCombineNeedsObject,
			msgPart: "Combine requires a cell-based reduction object",
		},
		{
			name:    "no state at all",
			plan:    SpecPlan{HasReduction: true},
			code:    CodeNoState,
			msgPart: "neither a reduction object shape nor LocalInit",
		},
		{
			name:    "negative object shape",
			plan:    SpecPlan{HasReduction: true, Object: Shape{Groups: -2, Elems: 1}},
			code:    CodeBadObjectShape,
			msgPart: "-2x1",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ds := CheckSpec(tc.plan)
			if !hasCode(ds, tc.code, SeverityError) {
				t.Fatalf("want %s, got %v:\n%s", tc.code, codes(ds), ds.Render())
			}
			if !strings.Contains(ds.Render(), tc.msgPart) {
				t.Fatalf("diagnostics do not mention %q:\n%s", tc.msgPart, ds.Render())
			}
		})
	}
}

// TestDiagnosticRendering pins the compiler-style output format end to end:
// position, severity, bracketed code, message — and the Error wrapper's
// first-finding summary.
func TestDiagnosticRendering(t *testing.T) {
	d := Diagnostic{Pos: "kmeans: data", Severity: SeverityError, Code: CodeOOBOffset, Msg: "loop nest touches words [0,96) of a 64-word buffer"}
	want := "kmeans: data: error[FRV010]: loop nest touches words [0,96) of a 64-word buffer"
	if d.String() != want {
		t.Fatalf("String() = %q, want %q", d.String(), want)
	}
	if got := (Diagnostic{Severity: SeverityWarning, Code: CodeOpt3NoBlockKernel, Msg: "m"}).String(); got != "warning[FRV030]: m" {
		t.Fatalf("posless String() = %q", got)
	}

	ds := Diagnostics{
		d,
		{Pos: "kmeans", Severity: SeverityWarning, Code: CodeOpt3NoBlockKernel, Msg: "fallback"},
	}
	if got := ds.Render(); !strings.Contains(got, "error[FRV010]") || !strings.Contains(got, "warning[FRV030]") {
		t.Fatalf("Render() = %q", got)
	}
	err := ds.Err()
	if err == nil {
		t.Fatal("Err() = nil with an error diagnostic present")
	}
	if !strings.Contains(err.Error(), "FRV010") || !strings.Contains(err.Error(), "1 more diagnostic") {
		t.Fatalf("Error() = %q", err.Error())
	}
	ve := AsError(err)
	if ve == nil || len(ve.Diags) != 2 {
		t.Fatalf("AsError lost diagnostics: %+v", ve)
	}
	if AsError(nil) != nil {
		t.Fatal("AsError(nil) != nil")
	}
	if (Diagnostics{{Severity: SeverityWarning}}).Err() != nil {
		t.Fatal("warnings alone must not produce an error")
	}
	if len(ds.Errors()) != 1 || len(ds.Warnings()) != 1 {
		t.Fatalf("Errors/Warnings filters wrong: %d/%d", len(ds.Errors()), len(ds.Warnings()))
	}
}
