// Package verify is the translate-time static checker for the
// Chapel→FREERIDE pipeline. The paper's translation is a compiler pass:
// reductions that cannot be mapped onto FREERIDE are rejected before any C
// is emitted. This package is the runtime analog of that front-end
// discipline — it checks a reduction plan (the declarative parts of a
// ReductionClass bound to a dataset type and an optimization level) and a
// FREERIDE spec before any worker starts, and reports problems as
// structured, compiler-style diagnostics instead of worker-pool panics.
//
// The package is deliberately free of project dependencies: internal/core
// and internal/freeride both lower their inputs into the neutral Plan /
// SpecPlan IR defined in plan.go and call CheckPlan / CheckSpec. That keeps
// the dependency graph acyclic (core depends on verify, never the reverse)
// and makes every check testable from raw numbers.
package verify

import (
	"fmt"
	"strings"
)

// Severity grades a diagnostic. Errors reject the plan (Translate, EmitC,
// and engine runs refuse to proceed); warnings document legal-but-degraded
// shapes (e.g. opt-3 without a block kernel falls back to the opt-2
// execution shape); infos are advisory.
type Severity int

const (
	// SeverityError rejects the plan.
	SeverityError Severity = iota
	// SeverityWarning flags a legal plan that will not behave as the
	// requested optimization level suggests.
	SeverityWarning
	// SeverityInfo is advisory.
	SeverityInfo
)

// String returns the compiler-style severity name.
func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	case SeverityInfo:
		return "info"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Code identifies one diagnostic class. Codes are stable across releases so
// tools (and tests) can match on them rather than on message text.
type Code string

// Plan-level codes (classes bound to a dataset type and opt level).
const (
	// CodeNoKernel: the class declares no per-element kernel.
	CodeNoKernel Code = "FRV001"
	// CodeNotAllReal: the dataset is not an all-real layout, so it has no
	// word-aligned linearized form for FREERIDE to scan.
	CodeNotAllReal Code = "FRV002"
	// CodeBadPath: the access path does not resolve through the type.
	CodeBadPath Code = "FRV003"
	// CodeBadLevels: the access path does not give two-level addressing
	// (FREERIDE's simple 2-D array view).
	CodeBadLevels Code = "FRV004"
	// CodeUnaligned: the linearized layout is not 8-byte word aligned.
	CodeUnaligned Code = "FRV005"
	// CodeBadOptLevel: the requested optimization level does not exist.
	CodeBadOptLevel Code = "FRV006"
	// CodeBadObjectShape: the reduction-object shape has no cells.
	CodeBadObjectShape Code = "FRV007"
	// CodeWordCount: the linearized word count disagrees with the
	// rows×row-stride product the emitted loop nest assumes.
	CodeWordCount Code = "FRV008"
	// CodeOOBOffset: the hoisted-index loop nest can touch a linearized
	// offset outside the buffer.
	CodeOOBOffset Code = "FRV010"
	// CodeMapNotTotal: the index map is degenerate (non-positive stride or
	// negative base), so it is not total over the split domain.
	CodeMapNotTotal Code = "FRV011"
	// CodeMapNotInjective: two distinct (row, k) indices map to the same
	// linearized offset, so accumulation order would become visible.
	CodeMapNotInjective Code = "FRV012"
	// CodeTableOOB: an inspector-materialized index table holds an entry
	// outside its declared bound, so the executor's table walk would touch
	// a cell or gather offset outside the object/vector it targets.
	CodeTableOOB Code = "FRV013"
	// CodeTableNotTotal: an index table does not cover its declared domain
	// (one entry per split-domain element), so some executor iterations
	// would have no mapping.
	CodeTableNotTotal Code = "FRV014"
	// CodeHotShape: a hot variable has a shape the boxed accessors cannot
	// walk without a dynamic-type panic.
	CodeHotShape Code = "FRV020"
	// CodeHotNotAllReal: opt-2 linearization needs all-real hot state.
	CodeHotNotAllReal Code = "FRV021"
	// CodeOpt3NoBlockKernel (warning): opt-3 requested but the class
	// declares no BlockKernel; execution falls back to the opt-2 shape.
	CodeOpt3NoBlockKernel Code = "FRV030"
)

// Analysis codes (internal/analyze): statically-provable cost/contention
// pathologies found by the translate-time plan analysis. None reject the
// plan — they document execution shapes the advisor steers around.
const (
	// CodeWriteHotspot (warning): every split's writes land on one object
	// cell (a 1-cell object, or an inspector scatter table whose hottest
	// cell absorbs most entries). Per-cell locks and CAS serialize on that
	// cell; full replication is the only strategy with no per-update
	// synchronization to contend on.
	CodeWriteHotspot Code = "FRV050"
	// CodeFootprintBudget (warning): the per-worker write-set footprint
	// (replication mirror / dense fused-flush buffer) exceeds the
	// configured cache budget, so replicated copies thrash and every
	// dense flush sweeps more state than the cache holds.
	CodeFootprintBudget Code = "FRV051"
	// CodeDegenerateSkew (info): an inspector scatter table shows
	// degenerate alias skew — a few cells absorb most writes while the
	// touched set stays far smaller than the object. The hashed scatter
	// accumulator (Config.SparseAccCells) keeps per-split flushes
	// proportional to the touched set instead of the object size.
	CodeDegenerateSkew Code = "FRV052"
)

// Spec-level codes (FREERIDE specs submitted to the engine).
const (
	// CodeNoReduction: the spec has neither Reduction nor BlockReduction.
	CodeNoReduction Code = "FRV040"
	// CodeLocalInitNoCombine: LocalInit without LocalCombine.
	CodeLocalInitNoCombine Code = "FRV041"
	// CodeBlockNeedsObject: BlockReduction without a cell-based object.
	CodeBlockNeedsObject Code = "FRV042"
	// CodeBlockLocalInit: BlockReduction combined with LocalInit.
	CodeBlockLocalInit Code = "FRV043"
	// CodeCombineNeedsObject: Combine without a cell-based object.
	CodeCombineNeedsObject Code = "FRV044"
	// CodeNoState: the spec declares neither an object shape nor LocalInit.
	CodeNoState Code = "FRV045"
)

// Diagnostic is one verifier finding, printable compiler-style.
type Diagnostic struct {
	// Pos locates the finding in the plan: the class name, "data",
	// "hot[i]", "spec", or a combination ("kmeans: hot[0]").
	Pos string
	// Severity grades the finding.
	Severity Severity
	// Code is the stable diagnostic class.
	Code Code
	// Msg is the human-readable explanation.
	Msg string
}

// String renders the diagnostic compiler-style:
//
//	kmeans: error[FRV010]: data: loop nest touches words [0,96) of a 64-word buffer
func (d Diagnostic) String() string {
	if d.Pos == "" {
		return fmt.Sprintf("%s[%s]: %s", d.Severity, d.Code, d.Msg)
	}
	return fmt.Sprintf("%s: %s[%s]: %s", d.Pos, d.Severity, d.Code, d.Msg)
}

// Diagnostics is an ordered finding list.
type Diagnostics []Diagnostic

// HasErrors reports whether any diagnostic has error severity.
func (ds Diagnostics) HasErrors() bool {
	for _, d := range ds {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func (ds Diagnostics) Errors() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings returns only the warning-severity diagnostics.
func (ds Diagnostics) Warnings() Diagnostics {
	var out Diagnostics
	for _, d := range ds {
		if d.Severity == SeverityWarning {
			out = append(out, d)
		}
	}
	return out
}

// Render formats all diagnostics, one per line, compiler-style.
func (ds Diagnostics) Render() string {
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// Err returns an *Error carrying the diagnostics when any has error
// severity, and nil otherwise. Warnings alone never produce an error.
func (ds Diagnostics) Err() error {
	if !ds.HasErrors() {
		return nil
	}
	return &Error{Diags: ds}
}

// Error is the error form of a rejected plan: it satisfies the error
// interface for plumbing through existing return paths while keeping the
// full structured diagnostic list attached for tools that want it.
type Error struct {
	Diags Diagnostics
}

// Error returns the first error diagnostic, noting how many more findings
// the verifier produced.
func (e *Error) Error() string {
	errs := e.Diags.Errors()
	if len(errs) == 0 {
		return "verify: no error diagnostics"
	}
	if len(e.Diags) == 1 {
		return errs[0].String()
	}
	return fmt.Sprintf("%s (and %d more diagnostics)", errs[0], len(e.Diags)-1)
}

// AsError extracts the structured diagnostics from an error returned by a
// verifier-gated entry point, or nil when err carries none.
func AsError(err error) *Error {
	if e, ok := err.(*Error); ok { //nolint:errorlint — Error is never wrapped by this package
		return e
	}
	return nil
}

// errorf appends an error diagnostic.
func errorf(ds Diagnostics, pos string, code Code, format string, args ...any) Diagnostics {
	return append(ds, Diagnostic{Pos: pos, Severity: SeverityError, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// warnf appends a warning diagnostic.
func warnf(ds Diagnostics, pos string, code Code, format string, args ...any) Diagnostics {
	return append(ds, Diagnostic{Pos: pos, Severity: SeverityWarning, Code: code, Msg: fmt.Sprintf(format, args...)})
}
