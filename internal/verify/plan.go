package verify

// Plan is the verifier's intermediate representation of one reduction class
// bound to a dataset type and an optimization level — the declarative facts
// internal/core can establish statically, with all Chapel types already
// lowered to word counts and index-map constants. CheckPlan proves the
// emitted loop nest safe (or rejects it) from these numbers alone.
type Plan struct {
	// Class names the reduction in diagnostics.
	Class string
	// Opt is the numeric optimization level (0..3); OptName its display
	// name ("generated", "opt-1", ...).
	Opt     int
	OptName string
	// HasKernel / HasBlockKernel report which accumulate bodies the class
	// declares.
	HasKernel      bool
	HasBlockKernel bool
	// Object is the reduction-object shape the class allocates.
	Object Shape
	// Data is the dataset access, nil when plan construction already failed
	// (the failure is then recorded in Pre).
	Data *Access
	// Hot lists the hot-variable accesses, one per declared HotVar.
	Hot []Access
	// Tables lists the inspector-materialized index tables (nil for
	// closed-form affine plans). Each is proven total over its domain and
	// element-wise in bounds — the table-lookup analog of the affine
	// off(i,k) proofs in checkAccess.
	Tables []TableAccess
	// Pre carries diagnostics produced while lowering the class into the
	// plan (unresolvable paths, nil inputs); CheckPlan prepends them.
	Pre Diagnostics
}

// Shape is a reduction-object shape: Groups × Elems cells.
type Shape struct {
	Groups, Elems int
}

// Cells returns the total cell count.
func (s Shape) Cells() int { return s.Groups * s.Elems }

// Access describes one linearized two-level access pattern: the loop nest
// touches word offsets
//
//	off(i, k) = U0*i + Off0 + U1*k    for i ∈ [0,Elems), k ∈ [0,InnerLen)
//
// in a buffer of WordLen words — exactly the hoisted-index constants the
// translator bakes into the emitted reduction (strength-reduced base
// U0*i+Off0, inner stride U1). Boxed accesses (generated/opt-1 hot
// variables) carry no linear map; for those only the structural facts are
// checked.
type Access struct {
	// Name locates the access in diagnostics: "data" or "hot[i]".
	Name string
	// Boxed marks a boxed-traversal access with no linear index map.
	Boxed bool
	// Elems is the outer domain length (rows), InnerLen the inner run
	// length in elements.
	Elems, InnerLen int
	// U0 is the outer (row) stride in words, Off0 the hoisted base offset,
	// U1 the inner stride in words.
	U0, Off0, U1 int
	// WordLen is the linearized buffer length in words.
	WordLen int
	// Levels is the addressing depth after promotion; must be 2.
	Levels int
	// AllReal reports whether the access's full type is an all-real layout.
	AllReal bool
}

// TableAccess describes one inspector-materialized index table: a map from
// the executor's iteration domain [0, Domain) to targets in [0, Bound) —
// object cells for scatter tables, hot-vector offsets for gather tables.
// Unlike the affine Access, the map has no closed form; the proof obligation
// is discharged by checking the materialized entries themselves (totality:
// exactly one entry per domain element; bounds: every entry in [0, Bound)).
// Scatter tables are deliberately NOT required to be injective: the
// reduction object's accumulate is associative, so aliased targets merge
// correctly — that aliasing is the whole point of a sparse push reduction.
type TableAccess struct {
	// Name locates the table in diagnostics: "out" (scatter targets) or
	// "in" (gather offsets).
	Name string
	// Domain is the executor's iteration-domain length the table must
	// cover (the nonzero count for COO/CSR sources).
	Domain int
	// Entries are the materialized table values.
	Entries []int32
	// Bound is the exclusive upper bound every entry must satisfy.
	Bound int
}

// maxTouched returns the one-past-the-end word offset the strength-reduced
// loop nest can touch: the last row's base plus the full inner run
// (InnerLen elements of U1 words each, matching the run slice
// words[base : base+InnerLen*U1] the translator hands the kernel).
func (a Access) maxTouched() int {
	if a.Elems == 0 {
		return 0
	}
	return a.U0*(a.Elems-1) + a.Off0 + a.InnerLen*a.U1
}

// CheckPlan verifies a plan and returns every finding, errors first in
// encounter order. A plan with no error-severity findings is safe to
// translate: every word offset the emitted loop nest can touch is proven in
// bounds, the index map is total and injective over the split domain, the
// reduction-object shape is allocatable, and the requested optimization
// level is legal for the class — which is what lets the hot-path accessors
// (Meta.ComputeIndex, robj cell addressing, BlockView.Run) stay
// panic-free-by-proof instead of re-checking bounds per element.
func CheckPlan(p *Plan) Diagnostics {
	ds := append(Diagnostics(nil), p.Pre...)
	pos := p.Class
	if pos == "" {
		pos = "class"
	}

	if !p.HasKernel {
		ds = errorf(ds, pos, CodeNoKernel, "core: translation needs a class with a kernel")
	}
	if p.Opt < 0 || p.Opt > 3 {
		ds = errorf(ds, pos, CodeBadOptLevel, "unknown optimization level %s: levels are generated, opt-1, opt-2, opt-3", p.OptName)
	}
	if p.Object.Groups <= 0 || p.Object.Elems <= 0 {
		ds = errorf(ds, pos, CodeBadObjectShape,
			"reduction object shape %dx%d has no cells; FREERIDE's accumulate(group, elem, value) needs Groups >= 1 and Elems >= 1",
			p.Object.Groups, p.Object.Elems)
	}
	if p.Data != nil {
		ds = checkAccess(ds, pos, *p.Data, CodeNotAllReal)
	}
	for _, h := range p.Hot {
		if h.Boxed {
			continue // shape already validated during lowering (CodeHotShape)
		}
		ds = checkAccess(ds, pos, h, CodeHotNotAllReal)
	}
	for _, t := range p.Tables {
		ds = checkTable(ds, pos, t)
	}
	if p.Opt == 3 && p.HasKernel && !p.HasBlockKernel {
		ds = warnf(ds, pos, CodeOpt3NoBlockKernel,
			"opt-3 requested but the class declares no BlockKernel; execution falls back to the opt-2 per-element shape")
	}
	return ds
}

// checkAccess proves one linear access safe: word-aligned all-real layout,
// two-level addressing, a total and injective index map, and every
// touchable offset inside the buffer. notRealCode distinguishes the dataset
// (CodeNotAllReal) from hot variables (CodeHotNotAllReal).
func checkAccess(ds Diagnostics, pos string, a Access, notRealCode Code) Diagnostics {
	at := pos + ": " + a.Name
	if !a.AllReal {
		if notRealCode == CodeNotAllReal {
			ds = errorf(ds, at, notRealCode, "FREERIDE translation needs an all-real dataset")
		} else {
			ds = errorf(ds, at, notRealCode, "opt-2 linearization needs all-real hot state")
		}
		return ds // the remaining facts are meaningless without a word view
	}
	if a.Levels != 2 {
		ds = errorf(ds, at, CodeBadLevels, "access needs 2-level addressing (FREERIDE's simple 2-D array view), got %d levels", a.Levels)
		return ds
	}
	// Totality: the map must be defined (non-degenerate) over the whole
	// split domain [0,Elems) × [0,InnerLen).
	if a.Elems < 0 || a.InnerLen <= 0 || a.U0 <= 0 || a.U1 <= 0 || a.Off0 < 0 {
		ds = errorf(ds, at, CodeMapNotTotal,
			"index map off(i,k) = %d*i + %d + %d*k is not total over rows=%d, inner=%d: strides must be positive and the base non-negative",
			a.U0, a.Off0, a.U1, a.Elems, a.InnerLen)
		return ds
	}
	// Bounds: the hoisted-index loop nest touches [Off0, maxTouched); prove
	// it inside the buffer so per-element bounds checks can be elided.
	if max := a.maxTouched(); max > a.WordLen {
		ds = errorf(ds, at, CodeOOBOffset,
			"loop nest touches words [%d,%d) of a %d-word buffer (rows=%d, row stride=%d, inner run=%d words)",
			a.Off0, max, a.WordLen, a.Elems, a.U0, a.InnerLen*a.U1)
	}
	// Word-count consistency: the buffer must hold exactly the rows the
	// loop nest assumes (rows × row stride), or splits computed from the
	// row count would disagree with the storage.
	if a.Name == "data" && a.Elems*a.U0 != a.WordLen {
		ds = errorf(ds, at, CodeWordCount,
			"linearized buffer holds %d words but %d rows x %d words/row = %d",
			a.WordLen, a.Elems, a.U0, a.Elems*a.U0)
	}
	// Injectivity: distinct (i,k) must hit distinct words. Within a row,
	// positive U1 separates the k's; across rows, the row stride must be at
	// least the row span.
	if a.U0 < a.InnerLen*a.U1 {
		ds = errorf(ds, at, CodeMapNotInjective,
			"index map is not injective: row stride %d words is smaller than the row span %d words, so consecutive rows alias",
			a.U0, a.InnerLen*a.U1)
	}
	return ds
}

// checkTable proves one index table safe: total over its domain (exactly
// one entry per iteration) and every entry inside [0, Bound). With both
// facts established at translate time, the executor's table walk —
// out[Begin+i] into the worker-local accumulator, in[Begin+i] into the hot
// vector — needs no per-element bounds checks, mirroring how checkAccess
// lets the affine hot path elide them.
func checkTable(ds Diagnostics, pos string, t TableAccess) Diagnostics {
	at := pos + ": table " + t.Name
	if t.Domain < 0 || len(t.Entries) != t.Domain {
		ds = errorf(ds, at, CodeTableNotTotal,
			"index table holds %d entries for a domain of %d; the inspector must materialize exactly one target per split-domain element",
			len(t.Entries), t.Domain)
		return ds // bounds findings would just repeat the mismatch
	}
	if t.Bound <= 0 && t.Domain > 0 {
		ds = errorf(ds, at, CodeTableOOB,
			"index table targets a space of %d cells; a non-empty table needs Bound >= 1", t.Bound)
		return ds
	}
	for i, e := range t.Entries {
		if e < 0 || int(e) >= t.Bound {
			ds = errorf(ds, at, CodeTableOOB,
				"entry %d maps to %d, outside the target space [0,%d)", i, e, t.Bound)
			return ds // one finding per table; the first OOB entry names the bug
		}
	}
	return ds
}

// SpecPlan is the verifier's view of a FREERIDE spec: which callbacks are
// set and the declared object shape. internal/freeride lowers its Spec into
// this before every run.
type SpecPlan struct {
	HasReduction      bool
	HasBlockReduction bool
	Object            Shape
	HasLocalInit      bool
	HasLocalCombine   bool
	HasCombine        bool
}

// hasObject reports whether the spec declares a non-empty cell-based
// object. A zero-shaped object is legal only for LocalInit-only specs.
func (p SpecPlan) hasObject() bool { return p.Object.Groups != 0 || p.Object.Elems != 0 }

// CheckSpec verifies a FREERIDE spec's legality — the structural checks the
// engine used to scatter through run() as fmt.Errorf, now one diagnostic
// pass that runs before any worker starts.
func CheckSpec(p SpecPlan) Diagnostics {
	var ds Diagnostics
	const pos = "spec"
	if !p.HasReduction && !p.HasBlockReduction {
		ds = errorf(ds, pos, CodeNoReduction, "freeride: Spec.Reduction (or BlockReduction) is required")
	}
	if p.HasLocalInit && !p.HasLocalCombine {
		ds = errorf(ds, pos, CodeLocalInitNoCombine, "freeride: LocalInit requires LocalCombine")
	}
	if p.hasObject() && (p.Object.Groups <= 0 || p.Object.Elems <= 0) {
		ds = errorf(ds, pos, CodeBadObjectShape,
			"freeride: reduction object shape %dx%d has no cells; declare Groups >= 1 and Elems >= 1, or leave both zero for LocalInit-only state",
			p.Object.Groups, p.Object.Elems)
	}
	if p.HasBlockReduction {
		if !p.hasObject() {
			ds = errorf(ds, pos, CodeBlockNeedsObject,
				"freeride: Spec.BlockReduction requires a cell-based reduction object (set Object.Groups/Elems) — its worker-local block buffer is the object's dense mirror")
		}
		if p.HasLocalInit {
			ds = errorf(ds, pos, CodeBlockLocalInit,
				"freeride: Spec.BlockReduction cannot be combined with LocalInit — the fused path accumulates only into the cell-based object; use the per-element Reduction for user-managed local state")
		}
	}
	if !p.hasObject() {
		if p.HasCombine {
			ds = errorf(ds, pos, CodeCombineNeedsObject,
				"freeride: Spec.Combine requires a cell-based reduction object (set Object.Groups/Elems); LocalInit-only state is merged by LocalCombine and post-processed in Finalize")
		}
		if !p.HasLocalInit {
			ds = errorf(ds, pos, CodeNoState, "freeride: spec declares neither a reduction object shape nor LocalInit")
		}
	}
	return ds
}
