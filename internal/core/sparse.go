package core

import (
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/verify"
)

// SparseKernel is the per-entry accumulate body of a sparse reduction: v is
// the entry's stored value, g the hot-vector element gathered at the
// entry's in-table offset (0 when the class declares no gather vector), and
// the result is accumulated into the entry's out-table cell. The executor
// owns the table walk, the gather, and the accumulate — the kernel is pure
// arithmetic, which is what lets one kernel serve every optimization level
// (SpMV: v*g; PageRank push: v*g over contributions; degree count: 1).
type SparseKernel func(v, g float64) float64

// SparseClass is the sparse analog of ReductionClass: a push reduction over
// a COO/CSR source described declaratively. The reduction object is a
// vector (Elems must be 1) with one cell per matrix row — SpMV's y, a
// histogram's bins, PageRank's rank vector. The optional gather vector Hot
// is a boxed [lo..hi] real array with one element per matrix column.
type SparseClass struct {
	// Name identifies the reduction in diagnostics.
	Name string
	// Object is the FREERIDE reduction-object shape; Groups must equal the
	// matrix row count and Elems must be 1 (scatter targets are cells of a
	// vector).
	Object freeride.ObjectSpec
	// Hot is the optional gather vector ([lo..hi] real, one element per
	// matrix column). nil for gather-free reductions (degree counting).
	Hot *chapel.Array
	// Kernel is the per-entry accumulate body.
	Kernel SparseKernel
	// Combine optionally post-processes the merged object.
	Combine func(o *robj.Object) error
	// Finalize optionally runs on the run result.
	Finalize func(r *freeride.Result) error
}

// SparseTranslation is the compiled output of TranslateSparse: the
// inspector's plan (tables + CSR-ordered values) plus the executor specs
// for the requested optimization level.
type SparseTranslation struct {
	class *SparseClass
	opt   OptLevel
	plan  *InspectorPlan

	// hotWords is the linearized gather vector (opt-2+ executors), nil
	// when the class declares none.
	hotWords []float64

	// InspectTime is the inspector's table-construction cost — the sparse
	// analog of LinearizeTime, surfaced next to pass latency in bench
	// reports so inspector overhead is never invisible.
	InspectTime time.Duration
	// HotLinearizeTime is the gather-vector linearization cost.
	HotLinearizeTime time.Duration
}

// VerifySparse statically checks a sparse class bound to an inspector plan
// at an optimization level — the sparse analog of Verify. Structural facts
// (kernel present, vector-shaped object matching the matrix rows, gather
// vector matching the matrix columns) become Pre diagnostics; the plan
// contributes its table proofs (FRV013/FRV014). Unlike the dense verifier,
// the table proofs are data-dependent by nature: they check the
// materialized entries, not a closed form, so verification necessarily runs
// after the inspector.
func VerifySparse(class *SparseClass, plan *InspectorPlan, opt OptLevel) verify.Diagnostics {
	return verify.CheckPlan(SparsePlanFor(class, plan, opt))
}

// SparsePlanFor lowers a sparse class bound to an inspector plan into the
// verifier IR — the sparse analog of PlanFor. VerifySparse checks the
// result; internal/analyze profiles it (the materialized tables carry the
// exact scatter histogram the cost analysis folds).
func SparsePlanFor(class *SparseClass, plan *InspectorPlan, opt OptLevel) *verify.Plan {
	p := &verify.Plan{Opt: int(opt), OptName: opt.String()}
	if class == nil {
		p.Class = "class"
		p.HasKernel = true
		p.Object = verify.Shape{Groups: 1, Elems: 1}
		p.Pre = verify.Diagnostics{{
			Pos: "class", Severity: verify.SeverityError, Code: verify.CodeNoKernel,
			Msg: "core: sparse translation needs a class with a kernel",
		}}
		return p
	}
	p.Class = class.Name
	if p.Class == "" {
		p.Class = "class"
	}
	p.HasKernel = class.Kernel != nil
	// The fused executor is derived from the same SparseKernel, so opt-3 is
	// always available — no FRV030 fallback warning applies.
	p.HasBlockKernel = class.Kernel != nil
	p.Object = verify.Shape{Groups: class.Object.Groups, Elems: class.Object.Elems}

	if class.Object.Elems > 1 {
		p.Pre = append(p.Pre, verify.Diagnostic{
			Pos: p.Class, Severity: verify.SeverityError, Code: verify.CodeBadObjectShape,
			Msg: fmt.Sprintf("core: sparse scatter targets are vector cells; object shape %dx%d needs Elems == 1",
				class.Object.Groups, class.Object.Elems),
		})
	}
	if plan != nil {
		if class.Object.Groups != plan.Rows() {
			p.Pre = append(p.Pre, verify.Diagnostic{
				Pos: p.Class, Severity: verify.SeverityError, Code: verify.CodeBadObjectShape,
				Msg: fmt.Sprintf("core: reduction object has %d groups but the sparse matrix has %d rows; the out table scatters one cell per row",
					class.Object.Groups, plan.Rows()),
			})
		}
		if class.Hot != nil {
			hotTy := class.Hot.Ty
			if hotTy.Kind != chapel.KindArray || hotTy.Elem.Kind != chapel.KindReal {
				p.Pre = append(p.Pre, verify.Diagnostic{
					Pos: p.Class + ": hot[0]", Severity: verify.SeverityError, Code: verify.CodeHotShape,
					Msg: fmt.Sprintf("core: sparse gather vector must be a real vector, got %s", hotTy),
				})
			} else if class.Hot.Len() != plan.Cols() {
				p.Pre = append(p.Pre, verify.Diagnostic{
					Pos: p.Class + ": hot[0]", Severity: verify.SeverityError, Code: verify.CodeHotShape,
					Msg: fmt.Sprintf("core: gather vector holds %d elements but the sparse matrix has %d columns; the in table gathers one element per column",
						class.Hot.Len(), plan.Cols()),
				})
			}
		}
		// The plan's proof obligations: every table entry in bounds, one
		// entry per nonzero.
		plan.Verify(p)
	}
	return p
}

// TranslateSparse compiles a SparseClass over a COO source into a FREERIDE
// execution: the inspector sorts the source into CSR order and materializes
// the index tables once at translate time; the verifier proves the tables
// safe (rejecting with FRV013/FRV014 on out-of-range or non-total maps);
// the executor specs then walk the tables with no per-element checks.
func TranslateSparse(class *SparseClass, coo *SparseCOO, opt OptLevel) (*SparseTranslation, error) {
	if class == nil {
		return nil, VerifySparse(nil, nil, opt).Err()
	}
	plan, err := NewInspectorPlan(coo)
	if err != nil {
		return nil, err
	}
	if err := VerifySparse(class, plan, opt).Err(); err != nil {
		return nil, err
	}
	tr := &SparseTranslation{class: class, opt: opt, plan: plan, InspectTime: plan.BuildTime()}
	if class.Hot != nil && opt >= Opt2 {
		t0 := time.Now()
		tr.hotWords, err = LinearizeToWords(class.Hot)
		if err != nil {
			return nil, fmt.Errorf("core: gather vector: %w", err)
		}
		tr.HotLinearizeTime = time.Since(t0)
	}
	return tr, nil
}

// Opt reports the translation's optimization level.
func (t *SparseTranslation) Opt() OptLevel { return t.opt }

// Plan exposes the inspector plan (tables, build cost, logical shape).
func (t *SparseTranslation) Plan() *InspectorPlan { return t.plan }

// AccessPlan returns the translation's addressing model — always the
// inspector plan for sparse translations.
func (t *SparseTranslation) AccessPlan() AccessPlan { return t.plan }

// RefreshHot re-linearizes the gather vector after its boxed source changed
// (no-op below opt-2, whose gather is live through the boxed array). Call
// between iterations, e.g. after a PageRank step updates the rank vector.
func (t *SparseTranslation) RefreshHot() {
	if t.hotWords == nil || t.class.Hot == nil {
		return
	}
	t0 := time.Now()
	wordsInto(t.hotWords, 0, t.class.Hot)
	t.HotLinearizeTime += time.Since(t0)
}

// Source returns the CSR-ordered nonzero values as the FREERIDE data
// source: one engine row per nonzero entry, one word per row. Splits over
// this source are subranges of the entry domain, which is exactly the
// domain the verifier proved the index tables total over.
func (t *SparseTranslation) Source() dataset.Source {
	return NewWordSource(t.plan.vals, t.plan.nnz, 1)
}

// Spec assembles the FREERIDE spec whose executor walks the inspector's
// index tables at the translation's optimization level:
//
//	generated — per-entry, gather through the boxed Chapel vector
//	opt-1/2   — per-entry, gather on linearized words (opt-1 keeps the
//	            boxed gather, matching the dense levels' hot treatment)
//	opt-3     — fused: one call per split walks the tables and accumulates
//	            into the worker-local buffer (dense, or hashed when the
//	            engine decides the touched-cell set is sparse), flushed to
//	            the shared object once per split
func (t *SparseTranslation) Spec() freeride.Spec {
	spec := freeride.Spec{Object: t.class.Object, Combine: t.class.Combine, Finalize: t.class.Finalize}
	kernel := t.class.Kernel
	out, in := t.plan.out, t.plan.in

	switch {
	case t.opt < Opt2:
		// Generated/opt-1: gather walks the boxed Chapel vector per entry —
		// the same boxed-hot-state overhead the dense levels carry below
		// opt-2.
		hot := t.class.Hot
		if hot == nil {
			spec.Reduction = func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					e := args.Begin + i
					args.Accumulate(int(out[e]), 0, kernel(args.Data[i], 0))
				}
				return nil
			}
			break
		}
		lo := hot.Ty.Lo
		spec.Reduction = func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				e := args.Begin + i
				g := hot.At(lo + int(in[e])).(*chapel.Real).Val
				args.Accumulate(int(out[e]), 0, kernel(args.Data[i], g))
			}
			return nil
		}
	default:
		// Opt-2: the gather vector is linearized once; the executor reads
		// dense words.
		x := t.hotWords
		if x == nil {
			spec.Reduction = func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					e := args.Begin + i
					args.Accumulate(int(out[e]), 0, kernel(args.Data[i], 0))
				}
				return nil
			}
		} else {
			spec.Reduction = func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					e := args.Begin + i
					args.Accumulate(int(out[e]), 0, kernel(args.Data[i], x[in[e]]))
				}
				return nil
			}
		}
		if t.opt >= Opt3 {
			// Opt-3 fusion: one call per split; Accumulate lands in the
			// worker-local buffer (dense mirror or hashed, the engine's
			// choice) and the engine flushes once per split. ScatterBlock
			// records that the kernels below never touch Acc() directly,
			// which is what licenses the hashed substitution.
			spec.ScatterBlock = true
			if x == nil {
				spec.BlockReduction = func(args *freeride.BlockArgs) error {
					for i := 0; i < args.NumRows; i++ {
						e := args.Begin + i
						args.Accumulate(int(out[e]), 0, kernel(args.Data[i], 0))
					}
					return nil
				}
			} else {
				spec.BlockReduction = func(args *freeride.BlockArgs) error {
					for i := 0; i < args.NumRows; i++ {
						e := args.Begin + i
						args.Accumulate(int(out[e]), 0, kernel(args.Data[i], x[in[e]]))
					}
					return nil
				}
			}
		}
	}
	return spec
}
