package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/chapel"
)

func TestLinearizePrimitives(t *testing.T) {
	b := Linearize(&chapel.Int{Val: -42})
	if len(b.Bytes) != 8 || b.ReadInt(0) != -42 {
		t.Fatal("int linearize")
	}
	b = Linearize(&chapel.Real{Val: 2.5})
	if b.ReadReal(0) != 2.5 {
		t.Fatal("real linearize")
	}
	b = Linearize(&chapel.Bool{Val: true})
	if len(b.Bytes) != 1 || !b.ReadBool(0) {
		t.Fatal("bool linearize")
	}
	b = Linearize(chapel.NewString(chapel.StringType(8), "hey"))
	if len(b.Bytes) != 8 || b.ReadString(0, 8) != "hey" {
		t.Fatalf("string linearize: %q", b.ReadString(0, 8))
	}
	b = Linearize(chapel.NewEnum(chapel.EnumType("e", "x", "y", "z"), 2))
	if b.ReadInt(0) != 2 {
		t.Fatal("enum linearize")
	}
}

func TestLinearizeWriteAccessors(t *testing.T) {
	b := Linearize(chapel.RealArray(1, 2, 3))
	b.WriteReal(8, 99.5)
	if b.ReadReal(8) != 99.5 {
		t.Fatal("WriteReal")
	}
	b2 := Linearize(chapel.IntArray(1, 2))
	b2.WriteInt(8, -7)
	if b2.ReadInt(8) != -7 {
		t.Fatal("WriteInt")
	}
}

func TestLinearizeFig6Layout(t *testing.T) {
	tt, n, m := 2, 3, 4
	data := fig6Data(tt, n, m)
	b := Linearize(data)
	if len(b.Bytes) != SizeOf(data.Ty) {
		t.Fatalf("buffer size %d, want %d", len(b.Bytes), SizeOf(data.Ty))
	}
	// Spot-check the layout directly: first real is data[1].b1[1].a1[1].
	if b.ReadReal(0) != 10101 {
		t.Fatalf("first real = %v", b.ReadReal(0))
	}
	// a2 of data[1].b1[1] sits right after the m reals.
	if b.ReadInt(m*8) != 1 {
		t.Fatalf("first a2 = %d", b.ReadInt(m*8))
	}
	// b2 of data[1] sits after n A-units.
	szA := m*8 + 8
	if b.ReadInt(n*szA) != 1 {
		t.Fatalf("first b2 = %d", b.ReadInt(n*szA))
	}
}

func TestDelinearizeRoundTrip(t *testing.T) {
	vals := []chapel.Value{
		&chapel.Int{Val: 7},
		&chapel.Real{Val: -1.25},
		&chapel.Bool{Val: true},
		chapel.NewString(chapel.StringType(10), "roundtrip"),
		chapel.NewEnum(chapel.EnumType("e", "a", "b"), 1),
		fig6Data(3, 2, 4),
		chapel.RealArray(1, 2, 3),
		chapel.IntArray(-1, 0, 1),
	}
	for _, v := range vals {
		got, err := Delinearize(Linearize(v))
		if err != nil {
			t.Fatalf("%s: %v", v.Type(), err)
		}
		if !chapel.DeepEqual(v, got) {
			t.Fatalf("%s: round trip mismatch", v.Type())
		}
	}
}

func TestDelinearizeSizeMismatch(t *testing.T) {
	b := Linearize(chapel.RealArray(1, 2, 3))
	b.Ty = chapel.ArrayType(chapel.RealType(), 1, 4) // lie about the type
	if _, err := Delinearize(b); err == nil {
		t.Fatal("size mismatch: want error")
	}
}

func TestDelinearizeClampsBadEnumOrdinal(t *testing.T) {
	ty := chapel.EnumType("e", "a", "b")
	b := Linearize(chapel.NewEnum(ty, 1))
	b.WriteInt(0, 99) // corrupt ordinal
	v, err := Delinearize(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*chapel.Enum).Ordinal != 0 {
		t.Fatal("corrupt ordinal should clamp to 0")
	}
}

func TestLinearizeExpr(t *testing.T) {
	// The paper's `min reduce A+B` data path: linearize the iterative
	// expression elementwise.
	a := chapel.RealArray(5, 2, 8)
	bb := chapel.RealArray(1, 9, -4)
	buf := LinearizeExpr(chapel.Zip(chapel.OpPlus, chapel.Over(a), chapel.Over(bb)))
	want := []float64{6, 11, 4}
	for i, w := range want {
		if got := buf.ReadReal(i * 8); got != w {
			t.Fatalf("elem %d = %v, want %v", i, got, w)
		}
	}
	if buf.Ty.Kind != chapel.KindArray || buf.Ty.Len() != 3 {
		t.Fatalf("expr buffer type = %s", buf.Ty)
	}
	// Int expression.
	ib := LinearizeExpr(chapel.RangeExpr{Lo: 4, Hi: 6})
	if ib.ReadInt(0) != 4 || ib.ReadInt(16) != 6 {
		t.Fatal("int expr linearize")
	}
}

func TestLinearizeParallelMatchesSequential(t *testing.T) {
	data := fig6Data(17, 3, 5)
	seq := Linearize(data)
	for _, workers := range []int{1, 2, 4, 8, 32} {
		par := LinearizeParallel(data, workers)
		if len(par.Bytes) != len(seq.Bytes) {
			t.Fatalf("workers=%d: size mismatch", workers)
		}
		for i := range seq.Bytes {
			if par.Bytes[i] != seq.Bytes[i] {
				t.Fatalf("workers=%d: byte %d differs", workers, i)
			}
		}
	}
	// Degenerate worker count.
	par := LinearizeParallel(data, 0)
	if len(par.Bytes) != len(seq.Bytes) {
		t.Fatal("workers=0 should default to 1")
	}
}

func TestFloat64sView(t *testing.T) {
	pt := chapel.RecordType("pt", chapel.Field{Name: "c", Type: chapel.ArrayType(chapel.RealType(), 1, 2)})
	data := chapel.NewArray(chapel.ArrayType(pt, 1, 3))
	for i := 1; i <= 3; i++ {
		r := data.At(i).(*chapel.Record)
		r.Field("c").(*chapel.Array).SetAt(1, &chapel.Real{Val: float64(i)})
		r.Field("c").(*chapel.Array).SetAt(2, &chapel.Real{Val: float64(i) + 0.5})
	}
	buf := Linearize(data)
	words, err := buf.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2, 2.5, 3, 3.5}
	for i, w := range want {
		if words[i] != w {
			t.Fatalf("words = %v", words)
		}
	}
	// Non-all-real layout refuses the view.
	mixed := Linearize(fig6Data(1, 1, 1))
	if _, err := mixed.Float64s(); err == nil {
		t.Fatal("mixed layout: want error")
	}
}

func TestLinearizeToWords(t *testing.T) {
	data := chapel.RealArray(3, 1, 4, 1, 5)
	words, err := LinearizeToWords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 5 || words[2] != 4 {
		t.Fatalf("words = %v", words)
	}
	if _, err := LinearizeToWords(chapel.IntArray(1)); err == nil {
		t.Fatal("int data: want error")
	}
	// Direct word path agrees with the byte path.
	pt := chapel.RecordType("pt", chapel.Field{Name: "c", Type: chapel.ArrayType(chapel.RealType(), 1, 3)})
	nested := chapel.NewArray(chapel.ArrayType(pt, 1, 4))
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 4; i++ {
		arr := nested.At(i).(*chapel.Record).Field("c").(*chapel.Array)
		for j := 1; j <= 3; j++ {
			arr.SetAt(j, &chapel.Real{Val: rng.NormFloat64()})
		}
	}
	viaBytes, err := Linearize(nested).Float64s()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := LinearizeToWords(nested)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaBytes {
		if viaBytes[i] != direct[i] {
			t.Fatalf("word %d: %v vs %v", i, viaBytes[i], direct[i])
		}
	}
}

func TestLinearizeToWordsParallel(t *testing.T) {
	data := chapel.RealArray(make([]float64, 1000)...)
	for i := 1; i <= 1000; i++ {
		data.SetAt(i, &chapel.Real{Val: float64(i)})
	}
	seq, err := LinearizeToWords(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := LinearizeToWordsParallel(data, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: word %d differs", workers, i)
			}
		}
	}
	if _, err := LinearizeToWordsParallel(chapel.IntArray(1), 2); err == nil {
		t.Fatal("int data: want error")
	}
}

func TestWordsBack(t *testing.T) {
	pt := chapel.RecordType("pt", chapel.Field{Name: "c", Type: chapel.ArrayType(chapel.RealType(), 1, 2)})
	v := chapel.NewArray(chapel.ArrayType(pt, 1, 2))
	words := []float64{1, 2, 3, 4}
	if err := WordsBack(words, v); err != nil {
		t.Fatal(err)
	}
	got := v.At(2).(*chapel.Record).Field("c").(*chapel.Array).At(2).(*chapel.Real).Val
	if got != 4 {
		t.Fatalf("write-back = %v", got)
	}
	if err := WordsBack([]float64{1}, v); err == nil {
		t.Fatal("short words: want error")
	}
	if err := WordsBack(words, chapel.IntArray(1, 2, 3, 4)); err == nil {
		t.Fatal("int value: want error")
	}
}

func TestStringPaddingAndSpecialFloats(t *testing.T) {
	st := chapel.StringType(6)
	b := Linearize(chapel.NewString(st, "ab"))
	if b.ReadString(0, 6) != "ab" {
		t.Fatal("padded string read")
	}
	nan := Linearize(&chapel.Real{Val: math.NaN()})
	if !math.IsNaN(nan.ReadReal(0)) {
		t.Fatal("NaN round trip")
	}
	inf := Linearize(&chapel.Real{Val: math.Inf(-1)})
	if !math.IsInf(inf.ReadReal(0), -1) {
		t.Fatal("-Inf round trip")
	}
}

// Property: Linearize → Delinearize is the identity on random fig6 data.
func TestPropertyLinearizeRoundTrip(t *testing.T) {
	f := func(seed int64, tRaw, nRaw, mRaw uint8) bool {
		tt := int(tRaw%3) + 1
		n := int(nRaw%3) + 1
		m := int(mRaw%3) + 1
		rng := rand.New(rand.NewSource(seed))
		data := chapel.NewArray(fig6Type(tt, n, m))
		for i := 1; i <= tt; i++ {
			b := data.At(i).(*chapel.Record)
			b.SetField("b2", &chapel.Int{Val: rng.Int63()})
			for j := 1; j <= n; j++ {
				a := b.Field("b1").(*chapel.Array).At(j).(*chapel.Record)
				a.SetField("a2", &chapel.Int{Val: rng.Int63()})
				for k := 1; k <= m; k++ {
					a.Field("a1").(*chapel.Array).SetAt(k, &chapel.Real{Val: rng.NormFloat64()})
				}
			}
		}
		got, err := Delinearize(Linearize(data))
		return err == nil && chapel.DeepEqual(data, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}
