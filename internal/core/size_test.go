package core

import (
	"testing"

	"chapelfreeride/internal/chapel"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// fig6Type builds the paper's Fig. 6 structure:
//
//	record A { a1: [1..m] real; a2: int; }
//	record B { b1: [1..n] A;   b2: int; }
//	data: [1..t] B;
func fig6Type(t, n, m int) *chapel.Type {
	a := chapel.RecordType("A",
		chapel.Field{Name: "a1", Type: chapel.ArrayType(chapel.RealType(), 1, m)},
		chapel.Field{Name: "a2", Type: chapel.IntType()})
	b := chapel.RecordType("B",
		chapel.Field{Name: "b1", Type: chapel.ArrayType(a, 1, n)},
		chapel.Field{Name: "b2", Type: chapel.IntType()})
	return chapel.ArrayType(b, 1, t)
}

// fig6Data fills a fig6 value with data[i].b1[j].a1[k] = i*10000 + j*100 + k.
func fig6Data(tt, n, m int) *chapel.Array {
	data := chapel.NewArray(fig6Type(tt, n, m))
	for i := 1; i <= tt; i++ {
		b := data.At(i).(*chapel.Record)
		for j := 1; j <= n; j++ {
			a := b.Field("b1").(*chapel.Array).At(j).(*chapel.Record)
			for k := 1; k <= m; k++ {
				a.Field("a1").(*chapel.Array).SetAt(k, &chapel.Real{Val: float64(i*10000 + j*100 + k)})
			}
			a.SetField("a2", &chapel.Int{Val: int64(j)})
		}
		b.SetField("b2", &chapel.Int{Val: int64(i)})
	}
	return data
}

func TestSizeOfPrimitives(t *testing.T) {
	cases := map[*chapel.Type]int{
		chapel.IntType():                          8,
		chapel.RealType():                         8,
		chapel.BoolType():                         1,
		chapel.StringType(12):                     12,
		chapel.EnumType("e", "a", "b"):            8,
		chapel.ArrayType(chapel.RealType(), 1, 5): 40,
		chapel.ArrayType(chapel.BoolType(), 0, 9): 10,
	}
	for ty, want := range cases {
		if got := SizeOf(ty); got != want {
			t.Errorf("SizeOf(%s) = %d, want %d", ty, got, want)
		}
	}
}

func TestSizeOfNested(t *testing.T) {
	// A = m reals + int; B = n*A + int; data = t*B.
	tt, n, m := 3, 4, 5
	szA := m*8 + 8
	szB := n*szA + 8
	if got := SizeOf(fig6Type(tt, n, m)); got != tt*szB {
		t.Fatalf("SizeOf(fig6) = %d, want %d", got, tt*szB)
	}
}

func TestComputeLinearizeSizeMatchesSizeOf(t *testing.T) {
	vals := []chapel.Value{
		&chapel.Int{Val: 3},
		&chapel.Real{Val: 1.5},
		&chapel.Bool{Val: true},
		chapel.NewString(chapel.StringType(6), "hey"),
		chapel.NewEnum(chapel.EnumType("e", "x", "y"), 1),
		fig6Data(2, 3, 4),
		chapel.RealArray(1, 2, 3),
	}
	for _, v := range vals {
		if got, want := ComputeLinearizeSize(v), SizeOf(v.Type()); got != want {
			t.Errorf("ComputeLinearizeSize(%s) = %d, want %d", v.Type(), got, want)
		}
	}
}

func TestExprLinearizeSize(t *testing.T) {
	e := chapel.Zip(chapel.OpPlus, chapel.Over(chapel.RealArray(1, 2)), chapel.Over(chapel.RealArray(3, 4)))
	if got := ExprLinearizeSize(e); got != 16 {
		t.Fatalf("ExprLinearizeSize = %d", got)
	}
	r := chapel.RangeExpr{Lo: 1, Hi: 10}
	if got := ExprLinearizeSize(r); got != 80 {
		t.Fatalf("range size = %d", got)
	}
}

func TestFieldOffsets(t *testing.T) {
	rec := chapel.RecordType("r",
		chapel.Field{Name: "a", Type: chapel.ArrayType(chapel.RealType(), 1, 3)}, // 24 bytes
		chapel.Field{Name: "b", Type: chapel.BoolType()},                         // 1 byte
		chapel.Field{Name: "c", Type: chapel.IntType()},                          // 8 bytes
	)
	offs := FieldOffsets(rec)
	if offs[0] != 0 || offs[1] != 24 || offs[2] != 25 {
		t.Fatalf("offsets = %v", offs)
	}
	if FieldOffset(rec, 2) != 25 {
		t.Fatal("FieldOffset mismatch")
	}
	mustPanic(t, "non-record offsets", func() { FieldOffsets(chapel.IntType()) })
	mustPanic(t, "non-record offset", func() { FieldOffset(chapel.IntType(), 0) })
	mustPanic(t, "field out of range", func() { FieldOffset(rec, 3) })
	mustPanic(t, "SizeOf unknown kind", func() { SizeOf(&chapel.Type{Kind: chapel.Kind(99)}) })
}

func TestAllReal(t *testing.T) {
	pt := chapel.RecordType("pt", chapel.Field{Name: "c", Type: chapel.ArrayType(chapel.RealType(), 1, 4)})
	if !AllReal(chapel.ArrayType(pt, 1, 10)) {
		t.Fatal("array of real-record should be all-real")
	}
	if !AllReal(chapel.RealType()) {
		t.Fatal("real is all-real")
	}
	if AllReal(chapel.IntType()) || AllReal(fig6Type(1, 1, 1)) {
		t.Fatal("types with int leaves are not all-real")
	}
	withBool := chapel.RecordType("wb",
		chapel.Field{Name: "x", Type: chapel.RealType()},
		chapel.Field{Name: "ok", Type: chapel.BoolType()})
	if AllReal(withBool) {
		t.Fatal("bool leaf is not all-real")
	}
}
