package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/verify"
)

// boxCOO builds the boxed Chapel COO array: [1..nnz] record nz { r, c, v }
// with 1-based whole-number coordinates stored as reals.
func boxCOO(entries [][3]float64) *chapel.Array {
	nz := chapel.RecordType("nz",
		chapel.Field{Name: "r", Type: chapel.RealType()},
		chapel.Field{Name: "c", Type: chapel.RealType()},
		chapel.Field{Name: "v", Type: chapel.RealType()})
	arr := chapel.NewArray(chapel.ArrayType(nz, 1, len(entries)))
	for i, e := range entries {
		rec := arr.At(i + 1).(*chapel.Record)
		rec.Fields[0] = &chapel.Real{Val: e[0]}
		rec.Fields[1] = &chapel.Real{Val: e[1]}
		rec.Fields[2] = &chapel.Real{Val: e[2]}
	}
	return arr
}

// testCOO is a 3×4 matrix with 5 nonzeros, deliberately out of CSR order.
func testCOO(t *testing.T) *SparseCOO {
	t.Helper()
	boxed := boxCOO([][3]float64{
		{3, 1, 5}, {1, 2, 2}, {2, 4, 7}, {1, 1, 1}, {3, 3, 4},
	})
	coo, err := LinearizeCOO(boxed, 3, 4)
	if err != nil {
		t.Fatalf("LinearizeCOO: %v", err)
	}
	return coo
}

func spmvTestClass(rows int, x *chapel.Array) *SparseClass {
	return &SparseClass{
		Name:   "spmv",
		Object: freeride.ObjectSpec{Groups: rows, Elems: 1, Op: robj.OpAdd},
		Hot:    x,
		Kernel: func(v, g float64) float64 { return v * g },
	}
}

func TestLinearizeCOO(t *testing.T) {
	coo := testCOO(t)
	if coo.Rows != 3 || coo.Cols != 4 {
		t.Fatalf("shape %dx%d, want 3x4", coo.Rows, coo.Cols)
	}
	// Coordinates converted to 0-based in entry order.
	wantR := []int32{2, 0, 1, 0, 2}
	wantC := []int32{0, 1, 3, 0, 2}
	for i := range wantR {
		if coo.R[i] != wantR[i] || coo.C[i] != wantC[i] {
			t.Fatalf("entry %d = (%d,%d), want (%d,%d)", i, coo.R[i], coo.C[i], wantR[i], wantC[i])
		}
	}
}

func TestLinearizeCOORejections(t *testing.T) {
	frac := boxCOO([][3]float64{{1.5, 1, 2}})
	if _, err := LinearizeCOO(frac, 2, 2); err == nil || !strings.Contains(err.Error(), "whole-number") {
		t.Fatalf("fractional coordinate not rejected: %v", err)
	}
	notRec := chapel.RealArray(1, 2, 3)
	if _, err := LinearizeCOO(notRec, 2, 2); err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("non-record array not rejected: %v", err)
	}
	badField := chapel.NewArray(chapel.ArrayType(chapel.RecordType("bad",
		chapel.Field{Name: "x", Type: chapel.RealType()}), 1, 1))
	if _, err := LinearizeCOO(badField, 2, 2); err == nil || !strings.Contains(err.Error(), "fields r, c, v") {
		t.Fatalf("wrong record fields not rejected: %v", err)
	}
}

func TestInspectorPlanCSROrder(t *testing.T) {
	plan, err := NewInspectorPlan(testCOO(t))
	if err != nil {
		t.Fatalf("NewInspectorPlan: %v", err)
	}
	if plan.Kind() != "inspector" || plan.Domain() != 5 {
		t.Fatalf("kind=%s domain=%d", plan.Kind(), plan.Domain())
	}
	// CSR order: (0,0,1) (0,1,2) (1,3,7) (2,0,5) (2,2,4).
	wantOut := []int32{0, 0, 1, 2, 2}
	wantIn := []int32{0, 1, 3, 0, 2}
	wantVals := []float64{1, 2, 7, 5, 4}
	for i := range wantOut {
		if plan.out[i] != wantOut[i] || plan.in[i] != wantIn[i] || plan.vals[i] != wantVals[i] {
			t.Fatalf("entry %d = (%d,%d,%v), want (%d,%d,%v)",
				i, plan.out[i], plan.in[i], plan.vals[i], wantOut[i], wantIn[i], wantVals[i])
		}
	}
	if plan.TableBytes() != 4*(5+5) {
		t.Fatalf("TableBytes = %d, want 40", plan.TableBytes())
	}
}

// TestTranslateSparseRejections pins the sparse verifier's diagnostic codes:
// out-of-range table entries trip the new table proofs (FRV013), shape
// mismatches the structural checks.
func TestTranslateSparseRejections(t *testing.T) {
	x := chapel.RealArray(1, 2, 3, 4)
	tests := []struct {
		name  string
		class func() *SparseClass
		coo   func(t *testing.T) *SparseCOO
		code  verify.Code
	}{
		{
			name:  "no kernel",
			class: func() *SparseClass { c := spmvTestClass(3, x); c.Kernel = nil; return c },
			coo:   testCOO,
			code:  verify.CodeNoKernel,
		},
		{
			name:  "matrix-shaped object",
			class: func() *SparseClass { c := spmvTestClass(3, x); c.Object.Elems = 2; return c },
			coo:   testCOO,
			code:  verify.CodeBadObjectShape,
		},
		{
			name:  "object groups disagree with matrix rows",
			class: func() *SparseClass { return spmvTestClass(5, x) },
			coo:   testCOO,
			code:  verify.CodeBadObjectShape,
		},
		{
			name:  "gather vector shorter than matrix columns",
			class: func() *SparseClass { return spmvTestClass(3, chapel.RealArray(1, 2)) },
			coo:   testCOO,
			code:  verify.CodeHotShape,
		},
		{
			name:  "row entry past matrix rows",
			class: func() *SparseClass { return spmvTestClass(3, x) },
			coo: func(t *testing.T) *SparseCOO {
				coo := testCOO(t)
				coo.R[2] = 9
				return coo
			},
			code: verify.CodeTableOOB,
		},
		{
			name:  "negative column entry",
			class: func() *SparseClass { return spmvTestClass(3, x) },
			coo: func(t *testing.T) *SparseCOO {
				coo := testCOO(t)
				coo.C[0] = -1
				return coo
			},
			code: verify.CodeTableOOB,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := TranslateSparse(tc.class(), tc.coo(t), Opt1)
			verr := verify.AsError(err)
			if verr == nil {
				t.Fatalf("want *verify.Error, got %v", err)
			}
			found := false
			for _, d := range verr.Diags {
				if d.Code == tc.code && d.Severity == verify.SeverityError {
					found = true
				}
			}
			if !found {
				t.Fatalf("want code %s, got:\n%s", tc.code, verr.Diags.Render())
			}
		})
	}
}

// TestSparseExecutorMatchesDense runs the SpMV executor at every opt level
// and checks it against the densified mat-vec reference — the core-level
// half of the sparse ≡ densified property (apps sweeps strategies and
// schedulers on top).
func TestSparseExecutorMatchesDense(t *testing.T) {
	coo := testCOO(t)
	xv := []float64{3, 1, 4, 2}
	x := chapel.RealArray(xv...)

	// Densified reference.
	want := make([]float64, coo.Rows)
	for e := range coo.V {
		want[coo.R[e]] += coo.V[e] * xv[coo.C[e]]
	}

	for _, opt := range OptLevels() {
		tr, err := TranslateSparse(spmvTestClass(coo.Rows, x), coo, opt)
		if err != nil {
			t.Fatalf("%s: TranslateSparse: %v", opt, err)
		}
		eng := freeride.New(freeride.Config{Threads: 2, SplitRows: 2})
		res, err := eng.RunContext(context.Background(), tr.Spec(), tr.Source())
		if err != nil {
			eng.Close()
			t.Fatalf("%s: run: %v", opt, err)
		}
		got := res.Object.Snapshot()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: y[%d] = %v, want %v", opt, i, got[i], want[i])
			}
		}
		eng.Close()
	}
}

// TestEmitSparseCGolden pins the rendered sparse executor for SpMV at the
// two levels the translation pipeline distinguishes most: the per-element
// table walk (opt-1) and the fused scattered-accumulator shape (opt-3).
// Regenerate with -update-golden and inspect the diff before committing.
func TestEmitSparseCGolden(t *testing.T) {
	x := chapel.RealArray(1, 2, 3, 4)
	class := spmvTestClass(3, x)
	for _, opt := range []OptLevel{Opt1, Opt3} {
		name := fmt.Sprintf("spmv_%s", map[OptLevel]string{Opt1: "opt1", Opt3: "opt3"}[opt])
		t.Run(name, func(t *testing.T) {
			got, err := EmitSparseC(class, opt)
			if err != nil {
				t.Fatalf("EmitSparseC(%s): %v", opt, err)
			}
			path := filepath.Join("testdata", "emitc", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("EmitSparseC output for %s drifted from %s.\ngot:\n%s\nwant:\n%s",
					name, path, got, want)
			}
		})
	}
}
