package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/chapel"
)

func TestMetaForFig6(t *testing.T) {
	// The paper's Fig. 6 collected information for data[i].b1[j].a1[k].
	tt, n, m := 3, 4, 5
	szA := m*8 + 8
	szB := n*szA + 8
	meta, err := MetaFor(fig6Type(tt, n, m), "b1", "a1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels != 3 {
		t.Fatalf("levels = %d, want 3", meta.Levels)
	}
	// unitSize = {unitSize_B, unitSize_A, sizeof(real)}.
	if meta.UnitSize[0] != szB || meta.UnitSize[1] != szA || meta.UnitSize[2] != 8 {
		t.Fatalf("unitSize = %v", meta.UnitSize)
	}
	// unitOffset rows hold each junction record's field offsets; b1 and a1
	// are both first fields, so position[0][0] = position[1][0] = 0 and the
	// selected offsets are 0, exactly as the paper notes.
	if meta.UnitOffset[0][0] != 0 || meta.UnitOffset[0][1] != n*szA {
		t.Fatalf("unitOffset[0] = %v", meta.UnitOffset[0])
	}
	if meta.UnitOffset[1][0] != 0 || meta.UnitOffset[1][1] != m*8 {
		t.Fatalf("unitOffset[1] = %v", meta.UnitOffset[1])
	}
	if meta.Position[0][0] != 0 || meta.Position[1][0] != 0 {
		t.Fatalf("position = %v", meta.Position)
	}
	if meta.LeafOffset != 0 || meta.LeafType.Kind != chapel.KindReal || meta.InnerLen != m {
		t.Fatalf("leaf meta: off=%d ty=%s inner=%d", meta.LeafOffset, meta.LeafType, meta.InnerLen)
	}
	if !strings.Contains(meta.String(), "levels = 3") {
		t.Fatalf("String() = %q", meta.String())
	}
}

// TestFig8MappingEquivalence is the paper's Fig. 8: the triple loop over the
// original structure and the ComputeIndex-mapped loop over linearized data
// must compute the same sum.
func TestFig8MappingEquivalence(t *testing.T) {
	tt, n, m := 3, 4, 5
	data := fig6Data(tt, n, m)

	// Before linearization: sum += data[i].b1[j].a1[k].
	var before float64
	for i := 1; i <= tt; i++ {
		b := data.At(i).(*chapel.Record)
		for j := 1; j <= n; j++ {
			a := b.Field("b1").(*chapel.Array).At(j).(*chapel.Record)
			for k := 1; k <= m; k++ {
				before += a.Field("a1").(*chapel.Array).At(k).(*chapel.Real).Val
			}
		}
	}

	// After linearization: index = computeIndex(...); sum += linear_data[index].
	buf := Linearize(data)
	meta, err := MetaFor(data.Ty, "b1", "a1")
	if err != nil {
		t.Fatal(err)
	}
	var after float64
	for i := 1; i <= tt; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= m; k++ {
				after += buf.ReadReal(meta.ComputeIndex(i, j, k))
			}
		}
	}
	if before != after {
		t.Fatalf("before = %v, after = %v", before, after)
	}

	// The strength-reduced form (§IV-C's optimization opportunity): hoist
	// ComputeIndex out of the k loop.
	var hoisted float64
	for i := 1; i <= tt; i++ {
		for j := 1; j <= n; j++ {
			base := meta.BaseIndex(i, j)
			for k := 0; k < meta.InnerLen; k++ {
				hoisted += buf.ReadReal(base + k*meta.Stride())
			}
		}
	}
	if hoisted != before {
		t.Fatalf("hoisted = %v, want %v", hoisted, before)
	}
}

func TestMetaForLeafFieldAfterLastArray(t *testing.T) {
	// data[i].b2 — the path ends inside the record after the only array
	// level, so the b2 offset lands in LeafOffset.
	tt, n, m := 3, 4, 5
	szA := m*8 + 8
	meta, err := MetaFor(fig6Type(tt, n, m), "b2")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels != 1 || meta.LeafOffset != n*szA || meta.LeafType.Kind != chapel.KindInt {
		t.Fatalf("meta = %+v", meta)
	}
	data := fig6Data(tt, n, m)
	buf := Linearize(data)
	for i := 1; i <= tt; i++ {
		if got := buf.ReadInt(meta.ComputeIndex(i)); got != int64(i) {
			t.Fatalf("data[%d].b2 = %d", i, got)
		}
	}
	// data[i].b1[j].a2 — trailing selection after the second array level.
	meta2, err := MetaFor(fig6Type(tt, n, m), "b1", "a2")
	if err != nil {
		t.Fatal(err)
	}
	if meta2.Levels != 2 || meta2.LeafOffset != m*8 {
		t.Fatalf("meta2 = %+v", meta2)
	}
	for i := 1; i <= tt; i++ {
		for j := 1; j <= n; j++ {
			if got := buf.ReadInt(meta2.ComputeIndex(i, j)); got != int64(j) {
				t.Fatalf("data[%d].b1[%d].a2 = %d", i, j, got)
			}
		}
	}
}

func TestMetaForDirectlyNestedArrays(t *testing.T) {
	// matrix: [1..r][1..c] real — PCA's shape; junction has no record.
	ty := chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, 4), 1, 3)
	meta, err := MetaFor(ty)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels != 2 || meta.UnitSize[0] != 32 || meta.UnitSize[1] != 8 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.UnitOffset[0][0] != 0 {
		t.Fatalf("junction offset = %v", meta.UnitOffset)
	}
	if got := meta.ComputeIndex(2, 3); got != 32+16 {
		t.Fatalf("index(2,3) = %d", got)
	}
}

func TestMetaForRecordChainBetweenArrays(t *testing.T) {
	// outer: [1..2] Wrap, Wrap { pre: int; inner: Inner },
	// Inner { pad: real; xs: [1..3] real } — a two-record chain folds into
	// one junction offset.
	inner := chapel.RecordType("Inner",
		chapel.Field{Name: "pad", Type: chapel.RealType()},
		chapel.Field{Name: "xs", Type: chapel.ArrayType(chapel.RealType(), 1, 3)})
	wrap := chapel.RecordType("Wrap",
		chapel.Field{Name: "pre", Type: chapel.IntType()},
		chapel.Field{Name: "inner", Type: inner})
	ty := chapel.ArrayType(wrap, 1, 2)
	meta, err := MetaFor(ty, "inner", "xs")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Levels != 2 {
		t.Fatalf("levels = %d", meta.Levels)
	}
	// The chosen junction entry is offset(inner)+offset(xs) = 8 + 8.
	if got := meta.UnitOffset[0][meta.Position[0][0]]; got != 16 {
		t.Fatalf("chain offset = %d, want 16", got)
	}
	// Verify against real data.
	data := chapel.NewArray(ty)
	for i := 1; i <= 2; i++ {
		w := data.At(i).(*chapel.Record)
		in := w.Field("inner").(*chapel.Record)
		for k := 1; k <= 3; k++ {
			in.Field("xs").(*chapel.Array).SetAt(k, &chapel.Real{Val: float64(10*i + k)})
		}
	}
	buf := Linearize(data)
	for i := 1; i <= 2; i++ {
		for k := 1; k <= 3; k++ {
			if got := buf.ReadReal(meta.ComputeIndex(i, k)); got != float64(10*i+k) {
				t.Fatalf("outer[%d].inner.xs[%d] = %v", i, k, got)
			}
		}
	}
}

func TestMetaForNonOneBasedDomains(t *testing.T) {
	// data: [5..9] record { v: [0..2] real } — Lo conversion matters.
	pt := chapel.RecordType("pt", chapel.Field{Name: "v", Type: chapel.ArrayType(chapel.RealType(), 0, 2)})
	ty := chapel.ArrayType(pt, 5, 9)
	meta, err := MetaFor(ty, "v")
	if err != nil {
		t.Fatal(err)
	}
	data := chapel.NewArray(ty)
	for i := 5; i <= 9; i++ {
		r := data.At(i).(*chapel.Record)
		for j := 0; j <= 2; j++ {
			r.Field("v").(*chapel.Array).SetAt(j, &chapel.Real{Val: float64(100*i + j)})
		}
	}
	buf := Linearize(data)
	for i := 5; i <= 9; i++ {
		for j := 0; j <= 2; j++ {
			if got := buf.ReadReal(meta.ComputeIndex(i, j)); got != float64(100*i+j) {
				t.Fatalf("data[%d].v[%d] = %v", i, j, got)
			}
		}
	}
	mustPanic(t, "below-domain index", func() { meta.ComputeIndex(4, 0) })
}

func TestMetaForErrors(t *testing.T) {
	ty := fig6Type(2, 2, 2)
	if _, err := MetaFor(ty, "nope"); err == nil {
		t.Fatal("bad field: want error")
	}
	if _, err := MetaFor(ty); err == nil {
		t.Fatal("short path: want error")
	}
	if _, err := MetaFor(ty, "b1", "a1", "extra"); err == nil {
		t.Fatal("long path: want error")
	}
	if _, err := MetaFor(chapel.IntType()); err == nil {
		t.Fatal("non-array root: want error")
	}
	if _, err := MetaFor(chapel.RecordType("r", chapel.Field{Name: "x", Type: chapel.IntType()}), "x"); err == nil {
		t.Fatal("record root: want error")
	}
}

func TestComputeIndexArityPanics(t *testing.T) {
	meta, err := MetaFor(fig6Type(2, 2, 2), "b1", "a1")
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "too few indices", func() { meta.ComputeIndex(1, 1) })
	mustPanic(t, "BaseIndex arity", func() { meta.BaseIndex(1, 1, 1) })
}

func TestWords(t *testing.T) {
	// All-real 2-level structure converts cleanly to word units.
	pt := chapel.RecordType("pt", chapel.Field{Name: "c", Type: chapel.ArrayType(chapel.RealType(), 1, 4)})
	meta, err := MetaFor(chapel.ArrayType(pt, 1, 10), "c")
	if err != nil {
		t.Fatal(err)
	}
	w, err := meta.Words()
	if err != nil {
		t.Fatal(err)
	}
	if !w.WordUnits() || meta.WordUnits() {
		t.Fatal("word-unit flags")
	}
	if w.UnitSize[0] != 4 || w.UnitSize[1] != 1 {
		t.Fatalf("word unitSize = %v", w.UnitSize)
	}
	if got := w.ComputeIndex(3, 2); got != 2*4+1 {
		t.Fatalf("word index = %d", got)
	}
	// Words of words is identity.
	w2, err := w.Words()
	if err != nil || w2 != w {
		t.Fatal("Words on word meta should be identity")
	}
	// Int leaf refuses word view.
	intMeta, err := MetaFor(fig6Type(2, 2, 2), "b2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := intMeta.Words(); err == nil {
		t.Fatal("int leaf: want error")
	}
	// Bool in the layout breaks alignment.
	mixed := chapel.ArrayType(chapel.RecordType("m",
		chapel.Field{Name: "flag", Type: chapel.BoolType()},
		chapel.Field{Name: "v", Type: chapel.ArrayType(chapel.RealType(), 1, 2)}), 1, 3)
	mm, err := MetaFor(mixed, "v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.Words(); err == nil {
		t.Fatal("unaligned layout: want error")
	}
}

// Property: ComputeIndex agrees with the byte offset computed by walking
// the linearized buffer structure directly, for random fig6 shapes and
// random in-domain indices.
func TestPropertyComputeIndexMatchesLayout(t *testing.T) {
	f := func(seed int64, tRaw, nRaw, mRaw uint8) bool {
		tt := int(tRaw%4) + 1
		n := int(nRaw%4) + 1
		m := int(mRaw%4) + 1
		meta, err := MetaFor(fig6Type(tt, n, m), "b1", "a1")
		if err != nil {
			return false
		}
		szA := m*8 + 8
		szB := n*szA + 8
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			i := rng.Intn(tt) + 1
			j := rng.Intn(n) + 1
			k := rng.Intn(m) + 1
			want := (i-1)*szB + (j-1)*szA + (k-1)*8
			if meta.ComputeIndex(i, j, k) != want {
				return false
			}
			if meta.BaseIndex(i, j) != (i-1)*szB+(j-1)*szA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}
