package core

import (
	"fmt"
	"sync"
	"time"

	"chapelfreeride/internal/chapel"
)

// TranslateStreaming is the paper's proposed remedy for the sequential
// linearization overhead (§V: "a pipelining strategy can be used to reduce
// this overhead ... overlapping linearization with processing of data"):
// instead of linearizing the whole dataset before the first reduction pass,
// the translation starts a background linearizer that fills the word buffer
// chunk by chunk while the engine's workers consume rows that are already
// resident. The returned Translation behaves like TranslateWith's, except
// its Source blocks readers until the rows they request have been
// linearized.
//
// The overlap only helps the first pass over the data (later passes find
// the buffer complete), which is exactly the paper's Fig. 11 configuration:
// k-means with a single iteration, where linearization is proportionally
// largest.
func TranslateStreaming(class *ReductionClass, data *chapel.Array, opt OptLevel, chunkRows int) (*Translation, *StreamStats, error) {
	if err := Verify(class, data, opt).Err(); err != nil {
		return nil, nil, err
	}
	if chunkRows < 1 {
		chunkRows = 4096
	}
	meta, err := MetaFor(data.Ty, class.Path...)
	if err != nil {
		return nil, nil, err
	}
	promoteFlatDataMeta(meta)
	wmeta, err := meta.Words()
	if err != nil {
		return nil, nil, err
	}
	tr := &Translation{class: class, opt: opt, meta: wmeta, rows: data.Len()}
	tr.cols = SizeOf(data.Ty.Elem) / 8
	tr.words = make([]float64, tr.rows*tr.cols)

	// Hot variables are prepared eagerly (they are small).
	t0 := time.Now()
	for _, hv := range class.HotVars {
		var sv *StateVec
		if opt >= Opt2 {
			sv, err = NewWordStateVec(hv.Value, hv.Path)
		} else {
			sv, err = NewBoxedStateVec(hv.Value, hv.Path)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("core: hot variable: %w", err)
		}
		tr.hot = append(tr.hot, sv)
	}
	tr.HotLinearizeTime = time.Since(t0)

	// Background linearizer: fill tr.words chunk by chunk, publishing
	// progress through the stream gate.
	st := &StreamStats{chunkRows: chunkRows}
	st.cond = sync.NewCond(&st.mu)
	tr.stream = st
	go func() {
		start := time.Now()
		elemWords := tr.cols
		off := 0
		for lo := 0; lo < tr.rows; lo += chunkRows {
			hi := lo + chunkRows
			if hi > tr.rows {
				hi = tr.rows
			}
			for i := lo; i < hi; i++ {
				off = wordsInto(tr.words, off, data.Elems[i])
			}
			_ = elemWords
			st.mu.Lock()
			st.readyRows = hi
			st.chunks++
			st.cond.Broadcast()
			st.mu.Unlock()
		}
		st.mu.Lock()
		st.duration = time.Since(start)
		st.done = true
		st.cond.Broadcast()
		st.mu.Unlock()
	}()
	tr.LinearizeTime = 0 // overlapped; see StreamStats.Duration
	return tr, st, nil
}

// StreamStats tracks the background linearizer's progress.
type StreamStats struct {
	mu        sync.Mutex
	cond      *sync.Cond
	readyRows int
	chunks    int
	done      bool
	duration  time.Duration
	waits     int
	chunkRows int
}

// waitFor blocks until at least rows rows are linearized.
func (s *StreamStats) waitFor(rows int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readyRows < rows {
		s.waits++
	}
	for s.readyRows < rows && !s.done {
		s.cond.Wait()
	}
}

// Wait blocks until the background linearization has completed and returns
// its duration.
func (s *StreamStats) Wait() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.done {
		s.cond.Wait()
	}
	return s.duration
}

// Waits reports how many reader requests had to block on the linearizer —
// 0 means the pipeline fully hid the linearization.
func (s *StreamStats) Waits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waits
}

// Chunks reports the number of linearization chunks produced.
func (s *StreamStats) Chunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunks
}

// streamSource gates row access on the background linearizer.
type streamSource struct {
	*WordSource
	stats *StreamStats
}

// ReadRows implements dataset.Source, blocking until the rows are ready.
func (s *streamSource) ReadRows(begin, end int, dst []float64) error {
	s.stats.waitFor(end)
	return s.WordSource.ReadRows(begin, end, dst)
}

// Rows implements dataset.RowSlicer, blocking until the rows are ready.
func (s *streamSource) Rows(begin, end int) []float64 {
	s.stats.waitFor(end)
	return s.WordSource.Rows(begin, end)
}
