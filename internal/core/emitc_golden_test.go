package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/emitc golden files")

// pcaCovClass mirrors apps.PCACovClass for a flat [1..n][1..dim] real
// dataset with the mean vector as a hot variable. Defined here (rather than
// imported) because internal/apps imports core.
func pcaCovClass(dim int, mean *chapel.Array) *ReductionClass {
	return &ReductionClass{
		Name:   "pca-cov",
		Object: freeride.ObjectSpec{Groups: dim, Elems: dim, Op: robj.OpAdd},
		HotVars: []HotVar{
			{Value: mean},
		},
		Kernel: func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs) {
			row := elem.Row(args.Scratch(0, dim))
			mv := hot[0].Row(1, args.Scratch(1, dim))
			for a := 0; a < dim; a++ {
				ca := row[a] - mv[a]
				for b := 0; b < dim; b++ {
					args.Accumulate(a, b, ca*(row[b]-mv[b]))
				}
			}
		},
		BlockKernel: func(args *freeride.BlockArgs, view BlockView, hot []*StateVec) error {
			return nil // shape only; golden tests never run it
		},
	}
}

// TestEmitCGolden pins the exact C rendered for the two paper case studies
// at every optimization level. The files under testdata/emitc are the
// reviewed reference output; regenerate with
//
//	go test ./internal/core -run TestEmitCGolden -update-golden
//
// and inspect the diff before committing.
func TestEmitCGolden(t *testing.T) {
	mean := chapel.RealArray(make([]float64, 3)...)
	cases := []struct {
		name   string
		class  *ReductionClass
		dataTy *chapel.Type
	}{
		{"kmeans", kmeansClass(4, 3, makeCentroids(4, 3, 1)), pointsType(100, 3)},
		{"pca_cov", pcaCovClass(3, mean), chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, 3), 1, 100)},
	}
	optSlug := map[OptLevel]string{OptNone: "generated", Opt1: "opt1", Opt2: "opt2", Opt3: "opt3"}
	for _, tc := range cases {
		for _, opt := range OptLevels() {
			name := fmt.Sprintf("%s_%s", tc.name, optSlug[opt])
			t.Run(name, func(t *testing.T) {
				got, err := EmitC(tc.class, tc.dataTy, opt)
				if err != nil {
					t.Fatalf("EmitC(%s, %s): %v", tc.name, opt, err)
				}
				path := filepath.Join("testdata", "emitc", name+".golden")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update-golden): %v", err)
				}
				if got != string(want) {
					t.Errorf("EmitC output for %s drifted from %s.\ngot:\n%s\nwant:\n%s",
						name, path, got, want)
				}
			})
		}
	}
}
