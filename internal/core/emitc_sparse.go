package core

import (
	"fmt"
	"strings"
)

// EmitSparseC renders the C-like executor the translator generates for a
// sparse class at the given optimization level — the inspector–executor
// counterpart of EmitC. Like EmitC, the output is documentation: it makes
// the table-driven addressing inspectable next to the dense affine shapes.
// The inspector itself has no emitted form (it runs once at translate time,
// in the runtime); what the executor relies on from it is stated in the
// header comment.
func EmitSparseC(class *SparseClass, opt OptLevel) (string, error) {
	if class == nil {
		return "", fmt.Errorf("core: EmitSparseC needs a class")
	}
	// Gate emission on the structural half of the sparse verifier (the
	// table proofs are data-dependent and need a materialized plan).
	if err := VerifySparse(class, nil, opt).Err(); err != nil {
		return "", err
	}
	name := sanitizeIdent(class.Name)
	if name == "" {
		name = "sparse_reduction"
	}
	groups := class.Object.Groups
	hasHot := class.Hot != nil

	var b strings.Builder
	fmt.Fprintf(&b, "/* %s: sparse reduction translated to FREERIDE (inspector-executor, %s) */\n", name, opt)
	fmt.Fprintf(&b, "/* reduction object: %d group(s) x 1 element(s) */\n", groups)
	fmt.Fprintf(&b, "/* inspector (translate time): COO entries sorted to CSR order; index\n")
	fmt.Fprintf(&b, "   tables out[e] (scatter cell) and in[e] (gather offset) materialized\n")
	fmt.Fprintf(&b, "   and proven total + in-bounds (FRV013/FRV014) before any worker starts,\n")
	fmt.Fprintf(&b, "   so the executor below elides every per-entry bounds check */\n")

	if opt >= Opt3 {
		fmt.Fprintf(&b, "void %s_block_reduction(block_args_t* args) {\n", name)
		fmt.Fprintf(&b, "    /* opt-3 fusion: worker-local mirror of the reduction object —\n")
		fmt.Fprintf(&b, "       dense when the split touches most cells, hashed when the\n")
		fmt.Fprintf(&b, "       touched-cell set is sparse (the runtime picks per job) */\n")
		fmt.Fprintf(&b, "    double acc[%d];\n", groups)
		fmt.Fprintf(&b, "    fill_identity(acc, %d);\n", groups)
		if hasHot {
			fmt.Fprintf(&b, "    /* gather vector linearized by the compiler (opt-2) */\n")
			fmt.Fprintf(&b, "    double* x = linearized_hot_0; /* was: %s */\n", class.Hot.Ty)
		}
		fmt.Fprintf(&b, "    for (int i = 0; i < args->num_rows; i++) {\n")
		fmt.Fprintf(&b, "        int e = args->begin + i;      /* global nonzero index */\n")
		fmt.Fprintf(&b, "        double v = args->data[i];     /* CSR-ordered value stream */\n")
		if hasHot {
			fmt.Fprintf(&b, "        double g = x[in_table[e]];    /* table-driven gather */\n")
		} else {
			fmt.Fprintf(&b, "        double g = 0.0;               /* gather-free reduction */\n")
		}
		fmt.Fprintf(&b, "        /* scattered write: aliased out-cells merge via the associative op */\n")
		fmt.Fprintf(&b, "        acc[out_table[e]] op= kernel(v, g); /* no lock, no CAS */\n")
		fmt.Fprintf(&b, "    }\n")
		fmt.Fprintf(&b, "    /* one scattered flush of the touched cells per split */\n")
		fmt.Fprintf(&b, "    accumulate_block(args->worker, acc);\n")
		fmt.Fprintf(&b, "}\n")
		return b.String(), nil
	}

	fmt.Fprintf(&b, "void %s_reduction(reduction_args_t* args) {\n", name)
	if hasHot {
		switch {
		case opt >= Opt2:
			fmt.Fprintf(&b, "    /* gather vector linearized by the compiler (opt-2) */\n")
			fmt.Fprintf(&b, "    double* x = linearized_hot_0; /* was: %s */\n", class.Hot.Ty)
		default:
			fmt.Fprintf(&b, "    /* gather vector accessed through Chapel structures */\n")
			fmt.Fprintf(&b, "    chpl_%s* x = &chpl_hot_0;\n", sanitizeIdent(elemName(class.Hot.Ty)))
		}
	}
	fmt.Fprintf(&b, "    for (int i = 0; i < args->num_rows; i++) {\n")
	fmt.Fprintf(&b, "        int e = args->begin + i;      /* global nonzero index */\n")
	fmt.Fprintf(&b, "        double v = args->data[i];     /* CSR-ordered value stream */\n")
	if hasHot {
		if opt >= Opt2 {
			fmt.Fprintf(&b, "        double g = x[in_table[e]];    /* table-driven gather */\n")
		} else {
			fmt.Fprintf(&b, "        double g = x->vals[in_table[e]]; /* boxed table-driven gather */\n")
		}
	} else {
		fmt.Fprintf(&b, "        double g = 0.0;               /* gather-free reduction */\n")
	}
	fmt.Fprintf(&b, "        /* scattered write: accumulate(group, elem, value) into out's cell */\n")
	fmt.Fprintf(&b, "        accumulate(out_table[e], 0, kernel(v, g));\n")
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}
