package core

import (
	"fmt"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/verify"
)

// Verify statically checks a reduction class bound to a dataset at an
// optimization level, before anything is linearized or any worker starts —
// the runtime analog of the paper's compile-time rejection of reductions
// that cannot be translated to FREERIDE. It returns every finding as a
// structured diagnostic; Translate, TranslateStreaming, and EmitC are gated
// on the same checks, so a class that verifies cleanly (no error-severity
// findings) cannot fail shape, bounds, or index-map validation later.
func Verify(class *ReductionClass, data *chapel.Array, opt OptLevel) verify.Diagnostics {
	if data == nil {
		return verify.Diagnostics{{
			Pos: className(class), Severity: verify.SeverityError, Code: verify.CodeNotAllReal,
			Msg: "core: translation needs a dataset",
		}}
	}
	return VerifyType(class, data.Ty, opt)
}

// VerifyType is Verify from the declared dataset type alone — usable before
// any data exists, which is how cmd/freeride-translate checks a class the
// way a compiler front end would.
func VerifyType(class *ReductionClass, dataTy *chapel.Type, opt OptLevel) verify.Diagnostics {
	return verify.CheckPlan(PlanFor(class, dataTy, opt))
}

// className names a class in diagnostics, tolerating nil and unnamed ones.
func className(class *ReductionClass) string {
	if class == nil || class.Name == "" {
		return "class"
	}
	return class.Name
}

// PlanFor lowers a reduction class bound to a dataset type into the
// verifier's IR: every Chapel type resolved to word counts and the
// hoisted-index constants (row stride, base offset, inner stride) the
// translator will bake into the emitted loop nest. Problems found during
// lowering (unresolvable paths, non-real layouts) land in Plan.Pre.
func PlanFor(class *ReductionClass, dataTy *chapel.Type, opt OptLevel) *verify.Plan {
	p := &verify.Plan{Opt: int(opt), OptName: opt.String()}
	if class == nil {
		p.Class = "class"
		// Report only the root cause; suppress the cascade the zero-valued
		// class would otherwise produce.
		p.HasKernel = true
		p.Object = verify.Shape{Groups: 1, Elems: 1}
		p.Pre = verify.Diagnostics{{
			Pos: "class", Severity: verify.SeverityError, Code: verify.CodeNoKernel,
			Msg: "core: translation needs a class with a kernel",
		}}
		return p
	}
	p.Class = className(class)
	p.HasKernel = class.Kernel != nil
	p.HasBlockKernel = class.BlockKernel != nil
	p.Object = verify.Shape{Groups: class.Object.Groups, Elems: class.Object.Elems}

	if dataTy != nil {
		acc, pre := dataAccess(p.Class, dataTy, class.Path)
		p.Pre = append(p.Pre, pre...)
		p.Data = acc
	}
	for i, hv := range class.HotVars {
		name := fmt.Sprintf("hot[%d]", i)
		if hv.Value == nil {
			p.Pre = append(p.Pre, verify.Diagnostic{
				Pos: p.Class + ": " + name, Severity: verify.SeverityError, Code: verify.CodeHotShape,
				Msg: "core: hot variable has no value",
			})
			continue
		}
		var (
			acc *verify.Access
			pre verify.Diagnostics
		)
		if opt >= Opt2 {
			acc, pre = wordHotAccess(p.Class, name, hv.Value.Ty, hv.Path)
		} else {
			acc, pre = boxedHotAccess(p.Class, name, hv.Value.Ty, hv.Path)
		}
		p.Pre = append(p.Pre, pre...)
		if acc != nil {
			p.Hot = append(p.Hot, *acc)
		}
	}
	return p
}

// preError builds one lowering diagnostic.
func preError(class, name string, code verify.Code, format string, args ...any) verify.Diagnostics {
	return verify.Diagnostics{{
		Pos: class + ": " + name, Severity: verify.SeverityError, Code: code,
		Msg: fmt.Sprintf(format, args...),
	}}
}

// dataAccess lowers the dataset access path into the loop-nest constants
// TranslateWith/SpecFromWords will use, mirroring their meta pipeline
// (MetaFor → promoteFlatDataMeta → Words).
func dataAccess(class string, ty *chapel.Type, path []string) (*verify.Access, verify.Diagnostics) {
	if !AllReal(ty) {
		return nil, preError(class, "data", verify.CodeNotAllReal,
			"core: FREERIDE translation needs an all-real dataset, type is %s", ty)
	}
	meta, err := MetaFor(ty, path...)
	if err != nil {
		return nil, preError(class, "data", verify.CodeBadPath, "%v", err)
	}
	promoteFlatDataMeta(meta)
	if meta.Levels != 2 {
		return nil, preError(class, "data", verify.CodeBadLevels,
			"core: dataset access path %v needs 2-level addressing, got %d levels", path, meta.Levels)
	}
	wmeta, err := meta.Words()
	if err != nil {
		return nil, preError(class, "data", verify.CodeUnaligned, "%v", err)
	}
	ap := AffinePlanFromMeta(wmeta, ty.Len(), SizeOf(ty)/8)
	p := &verify.Plan{}
	ap.Verify(p)
	return p.Data, nil
}

// wordHotAccess lowers an opt-2 hot variable the way NewWordStateVec will
// bind it: linearized words addressed through the two-level mapping.
func wordHotAccess(class, name string, ty *chapel.Type, path []string) (*verify.Access, verify.Diagnostics) {
	if !AllReal(ty) {
		return nil, preError(class, name, verify.CodeHotNotAllReal,
			"core: opt-2 linearization needs all-real hot state, type is %s", ty)
	}
	meta, err := MetaFor(ty, path...)
	if err != nil {
		return nil, preError(class, name, verify.CodeBadPath, "core: hot variable: %v", err)
	}
	n := 0
	if ty.Kind == chapel.KindArray {
		n = ty.Len()
	}
	promoteFlatVectorMeta(meta, n)
	if meta.Levels != 2 {
		return nil, preError(class, name, verify.CodeBadLevels,
			"core: hot variable needs 2-level addressing, path %v gives %d", path, meta.Levels)
	}
	wmeta, err := meta.Words()
	if err != nil {
		return nil, preError(class, name, verify.CodeUnaligned, "core: hot variable: %v", err)
	}
	elems := n
	if ty.Kind == chapel.KindArray && ty.Elem.Kind == chapel.KindReal && len(path) == 0 {
		elems = 1 // vector promoted to 1×n
	}
	ap := AffinePlanFromMeta(wmeta, elems, SizeOf(ty)/8)
	acc := ap.access(name)
	return &acc, nil
}

// boxedHotAccess validates a generated/opt-1 hot variable against the
// shapes the boxed accessor can walk. It is stricter than the runtime
// accessor: a two-level array whose inner elements are not reals used to
// pass NewBoxedStateVec and then panic on the first read inside a worker
// (boxedState.at's *chapel.Real assertion); here it is rejected up front.
func boxedHotAccess(class, name string, ty *chapel.Type, path []string) (*verify.Access, verify.Diagnostics) {
	if ty.Kind != chapel.KindArray {
		return nil, preError(class, name, verify.CodeHotShape,
			"core: unsupported hot variable shape %s with path %v", ty, path)
	}
	elem := ty.Elem
	switch {
	case elem.Kind == chapel.KindArray && len(path) == 0:
		if elem.Elem.Kind != chapel.KindReal {
			return nil, preError(class, name, verify.CodeHotShape,
				"core: boxed hot variable %s is not an array of real runs — the boxed accessor would fail on the first read", ty)
		}
	case elem.Kind == chapel.KindRecord && len(path) == 1:
		f := elem.FieldIndex(path[0])
		if f < 0 {
			return nil, preError(class, name, verify.CodeBadPath,
				"core: record %s has no field %q", elem.Name, path[0])
		}
		inner := elem.Fields[f].Type
		if inner.Kind != chapel.KindArray || inner.Elem.Kind != chapel.KindReal {
			return nil, preError(class, name, verify.CodeHotShape,
				"core: hot path %v must select a real array, got %s", path, inner)
		}
	case elem.Kind == chapel.KindReal && len(path) == 0:
		// A flat vector is addressed as one 1×n element.
	default:
		return nil, preError(class, name, verify.CodeHotShape,
			"core: unsupported hot variable shape %s with path %v", ty, path)
	}
	return &verify.Access{Name: name, Boxed: true}, nil
}
