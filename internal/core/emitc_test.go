package core

import (
	"strings"
	"testing"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

func TestEmitCShapes(t *testing.T) {
	cls := kmeansClass(4, 3, makeCentroids(4, 3, 1))
	dataTy := pointsType(100, 3)

	gen, err := EmitC(cls, dataTy, OptNone)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gen, "computeIndex(unitSize, unitOffset") {
		t.Fatalf("generated code must call computeIndex per element:\n%s", gen)
	}
	if !strings.Contains(gen, "chpl_Point* hot0") {
		t.Fatalf("generated code must access the hot variable through Chapel structures:\n%s", gen)
	}

	o1, err := EmitC(cls, dataTy, Opt1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(o1, "computeIndex(") {
		t.Fatal("opt-1 must hoist computeIndex out of the element loop")
	}
	if !strings.Contains(o1, "int base = ") || !strings.Contains(o1, "chpl_Point* hot0") {
		t.Fatalf("opt-1 shape wrong:\n%s", o1)
	}

	o2, err := EmitC(cls, dataTy, Opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(o2, "double* hot0 = linearized_hot_0") {
		t.Fatalf("opt-2 must linearize the hot variable:\n%s", o2)
	}
	if strings.Contains(o2, "chpl_Point") {
		t.Fatal("opt-2 must not traverse Chapel structures for hot variables")
	}

	// Function name derives from the class name.
	for _, src := range []string{gen, o1, o2} {
		if !strings.Contains(src, "void kmeans_reduction(reduction_args_t* args)") {
			t.Fatalf("missing FREERIDE entry point:\n%s", src)
		}
	}
}

func TestEmitCErrorsAndSanitize(t *testing.T) {
	if _, err := EmitC(nil, pointsType(1, 1), OptNone); err == nil {
		t.Fatal("nil class: want error")
	}
	cls := kmeansClass(2, 2, makeCentroids(2, 2, 1))
	if _, err := EmitC(cls, chapel.IntType(), OptNone); err == nil {
		t.Fatal("non-array dataset: want error")
	}
	deep := chapel.ArrayType(chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, 2), 1, 2), 1, 2)
	cls2 := &ReductionClass{Kernel: cls.Kernel}
	if _, err := EmitC(cls2, deep, OptNone); err == nil {
		t.Fatal("3-level dataset: want error")
	}
	// Unnamed class falls back to "reduction"; odd characters sanitize.
	cls.Name = "k-means v2!"
	src, err := EmitC(cls, pointsType(4, 2), Opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "void k_means_v2_reduction(") {
		t.Fatalf("sanitized name missing:\n%s", src)
	}
	cls.Name = ""
	src, err = EmitC(cls, pointsType(4, 2), Opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "void reduction_reduction(") {
		t.Fatalf("default name missing:\n%s", src)
	}
	if sanitizeIdent("a b-c!") != "a_b_c" {
		t.Fatal("sanitizeIdent")
	}
}

func TestEmitCFlatDataset(t *testing.T) {
	// A flat [1..n] real dataset promotes to n×1 and still emits.
	cls := &ReductionClass{
		Name:   "sum",
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Kernel: func(*Vec, []*StateVec, *freeride.ReductionArgs) {},
	}
	src, err := EmitC(cls, chapel.ArrayType(chapel.RealType(), 1, 100), Opt1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "void sum_reduction(") {
		t.Fatalf("flat dataset emit:\n%s", src)
	}
}
