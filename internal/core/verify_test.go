package core

import (
	"strings"
	"testing"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/verify"
)

// flatRealType is [1..n][1..dim] real.
func flatRealType(n, dim int) *chapel.Type {
	return chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, dim), 1, n)
}

// TestVerifyRejections pins, for every way a class can be untranslatable,
// the diagnostic code, severity, and message users see — the contract
// cmd/freeride-translate renders and Translate/EmitC are gated on.
func TestVerifyRejections(t *testing.T) {
	base := func() *ReductionClass { return kmeansClass(4, 3, makeCentroids(4, 3, 1)) }
	intRuns := chapel.ArrayType(chapel.ArrayType(chapel.IntType(), 1, 3), 1, 4)

	cases := []struct {
		name     string
		class    *ReductionClass
		dataTy   *chapel.Type
		opt      OptLevel
		code     verify.Code
		severity verify.Severity
		msg      string // required fragment of the rendered message
	}{
		{
			name: "nil class", class: nil, dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeNoKernel, severity: verify.SeverityError,
			msg: "needs a class with a kernel",
		},
		{
			name: "no kernel",
			class: func() *ReductionClass {
				c := base()
				c.Kernel = nil
				return c
			}(),
			dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeNoKernel, severity: verify.SeverityError,
			msg: "needs a class with a kernel",
		},
		{
			name: "non-real dataset", class: base(),
			dataTy: chapel.ArrayType(chapel.ArrayType(chapel.IntType(), 1, 3), 1, 10), opt: OptNone,
			code: verify.CodeNotAllReal, severity: verify.SeverityError,
			msg: "all-real dataset",
		},
		{
			name: "unresolvable access path",
			class: func() *ReductionClass {
				c := base()
				c.Path = []string{"nope"}
				return c
			}(),
			dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeBadPath, severity: verify.SeverityError,
			msg: "nope",
		},
		{
			name: "three-level addressing",
			class: func() *ReductionClass {
				c := base()
				c.Path = nil
				c.HotVars = nil
				return c
			}(),
			dataTy: chapel.ArrayType(flatRealType(4, 3), 1, 10), opt: OptNone,
			code: verify.CodeBadLevels, severity: verify.SeverityError,
			msg: "2-level addressing",
		},
		{
			name: "empty reduction object",
			class: func() *ReductionClass {
				c := base()
				c.Object = freeride.ObjectSpec{}
				return c
			}(),
			dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeBadObjectShape, severity: verify.SeverityError,
			msg: "no cells",
		},
		{
			name: "unknown optimization level", class: base(),
			dataTy: pointsType(10, 3), opt: OptLevel(7),
			code: verify.CodeBadOptLevel, severity: verify.SeverityError,
			msg: "unknown optimization level",
		},
		{
			name: "hot variable without a value",
			class: func() *ReductionClass {
				c := base()
				c.HotVars = []HotVar{{Value: nil}}
				return c
			}(),
			dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeHotShape, severity: verify.SeverityError,
			msg: "no value",
		},
		{
			name: "boxed hot variable with non-real runs",
			class: func() *ReductionClass {
				c := base()
				c.HotVars = []HotVar{{Value: chapel.NewArray(intRuns)}}
				return c
			}(),
			dataTy: pointsType(10, 3), opt: OptNone,
			code: verify.CodeHotShape, severity: verify.SeverityError,
			msg: "boxed accessor would fail",
		},
		{
			name: "opt-2 hot variable not all-real",
			class: func() *ReductionClass {
				c := base()
				c.HotVars = []HotVar{{Value: chapel.NewArray(intRuns)}}
				return c
			}(),
			dataTy: pointsType(10, 3), opt: Opt2,
			code: verify.CodeHotNotAllReal, severity: verify.SeverityError,
			msg: "all-real hot state",
		},
		{
			name: "opt-3 without a BlockKernel", class: base(),
			dataTy: pointsType(10, 3), opt: Opt3,
			code: verify.CodeOpt3NoBlockKernel, severity: verify.SeverityWarning,
			msg: "falls back",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := VerifyType(tc.class, tc.dataTy, tc.opt)
			var hit *verify.Diagnostic
			for i := range ds {
				if ds[i].Code == tc.code {
					hit = &ds[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s diagnostic; got %v", tc.code, ds)
			}
			if hit.Severity != tc.severity {
				t.Errorf("severity = %s, want %s", hit.Severity, tc.severity)
			}
			if !strings.Contains(hit.Msg, tc.msg) {
				t.Errorf("message %q does not mention %q", hit.Msg, tc.msg)
			}
			// Errors must gate Translate with the identical diagnostics.
			if tc.severity == verify.SeverityError {
				_, err := Translate(tc.class, nil, tc.opt)
				if err == nil {
					t.Fatal("Translate accepted a class Verify rejects")
				}
			}
		})
	}
}

func TestVerifyNilData(t *testing.T) {
	ds := Verify(kmeansClass(4, 3, makeCentroids(4, 3, 1)), nil, OptNone)
	if !ds.HasErrors() || ds[0].Msg != "core: translation needs a dataset" {
		t.Fatalf("nil data: got %v", ds)
	}
}

// TestVerifyClean: a translatable class yields zero diagnostics at every
// level that is fully implementable, and only the documented FRV030 warning
// at opt-3 when no BlockKernel is declared.
func TestVerifyClean(t *testing.T) {
	data := makePoints(50, 3, 1)
	cls := kmeansClass(4, 3, makeCentroids(4, 3, 2))
	for _, opt := range []OptLevel{OptNone, Opt1, Opt2} {
		if ds := Verify(cls, data, opt); len(ds) != 0 {
			t.Fatalf("%s: unexpected diagnostics %v", opt, ds)
		}
	}
	ds := Verify(cls, data, Opt3)
	if ds.HasErrors() {
		t.Fatalf("opt-3: unexpected errors %v", ds)
	}
	if len(ds.Warnings()) != 1 || ds.Warnings()[0].Code != verify.CodeOpt3NoBlockKernel {
		t.Fatalf("opt-3: want exactly the FRV030 warning, got %v", ds)
	}
	// A warning never blocks translation.
	if _, err := Translate(cls, data, Opt3); err != nil {
		t.Fatalf("warning blocked Translate: %v", err)
	}
}

// TestVerifyErrorRendering checks the compiler-style rendering surfaced by
// cmd/freeride-translate: position, severity, code, message.
func TestVerifyErrorRendering(t *testing.T) {
	cls := kmeansClass(4, 3, makeCentroids(4, 3, 1))
	cls.Object = freeride.ObjectSpec{Groups: -1, Elems: 2, Op: robj.OpAdd}
	err := Verify(cls, makePoints(10, 3, 1), OptNone).Err()
	if err == nil {
		t.Fatal("want error")
	}
	for _, frag := range []string{"kmeans", "error[FRV007]", "no cells"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
	if verify.AsError(err) == nil {
		t.Fatal("verifier errors must unwrap to *verify.Error for structured consumers")
	}
}
