package core

import (
	"fmt"
	"sort"
	"time"

	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/verify"
)

// AccessPlan is the translator's pluggable addressing model: the thing that
// knows how an executor finds the reduction target and gather source for
// each element of its iteration domain. Two implementations exist:
//
//   - AffinePlan — the paper's closed-form dense addressing
//     off(i,k) = U0·i + Off0 + U1·k, proven safe by the verifier's
//     closed-form bounds checks (FRV010/FRV011/FRV012). Every dense app
//     uses it; SpecFromWords and EmitC bake its constants into the loop
//     nest.
//   - InspectorPlan — the inspector–executor model for sparse/irregular
//     sources: a translate-time inspector materializes per-entry index
//     tables (scatter target and gather offset per nonzero), and the
//     verifier proves the tables total and element-wise in bounds
//     (FRV013/FRV014) because no closed form exists.
//
// The split mirrors the inspector–executor compilation of irregular PGAS
// accesses: pay an analysis pass once at translate time so the per-pass
// executor runs without bounds checks or mapping arithmetic.
type AccessPlan interface {
	// Kind names the addressing model: "affine" or "inspector".
	Kind() string
	// Domain is the executor's iteration-domain length: top-level data
	// elements for affine plans, materialized nonzeros for inspector plans.
	Domain() int
	// Verify appends the plan's proof obligations to a verifier plan:
	// affine plans contribute the closed-form data Access, inspector plans
	// contribute their materialized TableAccess entries.
	Verify(p *verify.Plan)
}

// AffinePlan is the closed-form dense addressing model: element i's real
// run starts at U0*i + Off0 and holds Inner elements with stride U1. The
// constants come straight from the Fig. 6 mapping metadata; units follow
// the Meta they were derived from (words for executor plans, bytes for the
// EmitC rendering).
type AffinePlan struct {
	// U0 is the outer (row) stride; Off0 the hoisted base offset; U1 the
	// inner stride.
	U0, Off0, U1 int
	// Inner is the run length in elements.
	Inner int
	// NumRows is the outer domain length; WordLen the linearized buffer
	// length. Both are zero when the plan only feeds codegen (EmitC),
	// which never indexes storage.
	NumRows, WordLen int
}

// AffinePlanFromMeta extracts the affine constants the strength-reduced
// loop nest uses from mapping metadata — the single definition SpecFromWords,
// the verifier lowering, and EmitC all share. rows and wordLen size the
// plan's domain and buffer for verification; pass zero when unknown.
func AffinePlanFromMeta(meta *Meta, rows, wordLen int) AffinePlan {
	return AffinePlan{
		U0:      meta.UnitSize[0],
		Off0:    meta.UnitOffset[0][meta.Position[0][0]] + meta.LeafOffset,
		U1:      meta.Stride(),
		Inner:   meta.InnerLen,
		NumRows: rows,
		WordLen: wordLen,
	}
}

// Kind implements AccessPlan.
func (a AffinePlan) Kind() string { return "affine" }

// Domain implements AccessPlan.
func (a AffinePlan) Domain() int { return a.NumRows }

// access lowers the plan into the verifier's closed-form Access form.
func (a AffinePlan) access(name string) verify.Access {
	return verify.Access{
		Name:     name,
		Elems:    a.NumRows,
		InnerLen: a.Inner,
		U0:       a.U0,
		Off0:     a.Off0,
		U1:       a.U1,
		WordLen:  a.WordLen,
		Levels:   2,
		AllReal:  true,
	}
}

// Verify implements AccessPlan: the plan's proof obligation is the
// closed-form data access map.
func (a AffinePlan) Verify(p *verify.Plan) {
	acc := a.access("data")
	p.Data = &acc
}

// View binds the plan to a linearized word buffer as the opt-3 block view.
func (a AffinePlan) View(words []float64) BlockView {
	return BlockView{Words: words, RowStride: a.U0, RunOff: a.Off0, RunLen: a.Inner * a.U1}
}

// Inspector-cost counters (the translate-time analog of the engine's
// per-phase counters): how long inspectors spend building index tables and
// how much table memory they materialize. Surfaced in the bench JSON report
// next to pass latency so inspector overhead is never invisible.
var (
	mInspectorBuildNS = obs.Default.Counter("freeride_inspector_build_ns",
		"translate-time inspector index-table construction, nanoseconds")
	mIndexTableBytes = obs.Default.Counter("freeride_index_table_bytes",
		"bytes of inspector-materialized index tables")
)

// InspectorPlan is the table-driven addressing model for sparse sources:
// the inspector sorts a COO source into CSR order once at translate time
// and materializes, per nonzero entry e,
//
//	out[e] — the reduction-object cell the entry accumulates into
//	in[e]  — the gather offset into the hot vector (column index)
//
// plus the CSR-ordered values the engine streams as an nnz×1 source. The
// executor walks the tables with no mapping arithmetic; safety comes from
// the verifier's table proofs (every entry in [0,Bound), one entry per
// domain element), not from per-element checks.
type InspectorPlan struct {
	rows, cols int // logical sparse-matrix shape
	nnz        int

	vals []float64
	out  []int32
	in   []int32

	buildTime  time.Duration
	tableBytes int
}

// NewInspectorPlan runs the inspector over a COO source: sorts the entries
// into CSR order (row-major, column within row — deterministic, so results
// are reproducible across runs) and materializes the executor's index
// tables. Entry coordinates are NOT bounds-checked here; the verifier's
// table proofs (FRV013/FRV014) reject out-of-range entries when the plan is
// bound to a class, which keeps the proof in one place.
func NewInspectorPlan(coo *SparseCOO) (*InspectorPlan, error) {
	if coo == nil {
		return nil, fmt.Errorf("core: inspector needs a COO source")
	}
	nnz := len(coo.V)
	if len(coo.R) != nnz || len(coo.C) != nnz {
		return nil, fmt.Errorf("core: COO arrays disagree: %d rows, %d cols, %d values",
			len(coo.R), len(coo.C), nnz)
	}
	t0 := time.Now()
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		if coo.R[pa] != coo.R[pb] {
			return coo.R[pa] < coo.R[pb]
		}
		return coo.C[pa] < coo.C[pb]
	})
	p := &InspectorPlan{
		rows: coo.Rows, cols: coo.Cols, nnz: nnz,
		vals: make([]float64, nnz),
		out:  make([]int32, nnz),
		in:   make([]int32, nnz),
	}
	for i, src := range perm {
		p.vals[i] = coo.V[src]
		p.out[i] = coo.R[src]
		p.in[i] = coo.C[src]
	}
	p.buildTime = time.Since(t0)
	p.tableBytes = 4 * (len(p.out) + len(p.in))
	mInspectorBuildNS.Add(p.buildTime.Nanoseconds())
	mIndexTableBytes.Add(int64(p.tableBytes))
	return p, nil
}

// Kind implements AccessPlan.
func (p *InspectorPlan) Kind() string { return "inspector" }

// Domain implements AccessPlan: the executor iterates the nonzeros.
func (p *InspectorPlan) Domain() int { return p.nnz }

// Verify implements AccessPlan: the proof obligations are the materialized
// tables themselves, bounded by the logical matrix shape. Callers that bind
// the plan to a class additionally check the object and hot-vector shapes
// match that logical shape (VerifySparse), so in-bounds here means in
// bounds for the executor.
func (p *InspectorPlan) Verify(vp *verify.Plan) {
	vp.Tables = append(vp.Tables,
		verify.TableAccess{Name: "out", Domain: p.nnz, Entries: p.out, Bound: p.rows},
		verify.TableAccess{Name: "in", Domain: p.nnz, Entries: p.in, Bound: p.cols},
	)
}

// Rows and Cols report the logical sparse-matrix shape.
func (p *InspectorPlan) Rows() int { return p.rows }

// Cols reports the logical column count (gather-vector length).
func (p *InspectorPlan) Cols() int { return p.cols }

// NNZ reports the nonzero count.
func (p *InspectorPlan) NNZ() int { return p.nnz }

// BuildTime reports how long the inspector spent sorting and materializing
// tables — the translate-time cost the bench report surfaces.
func (p *InspectorPlan) BuildTime() time.Duration { return p.buildTime }

// TableBytes reports the index tables' memory footprint.
func (p *InspectorPlan) TableBytes() int { return p.tableBytes }
