package core

import (
	"fmt"
	"strings"

	"chapelfreeride/internal/chapel"
)

// EmitC renders the C-like reduction function the paper's modified Chapel
// compiler would generate for a reduction class at the given optimization
// level. The output is documentation, not compiled: it makes the three code
// shapes of §V inspectable side by side (compare Fig. 5 and Fig. 8), and
// cmd/freeride-translate prints it for any class.
//
// The emitted function follows the paper's structure: FREERIDE hands the
// reduction a split (reduction_args_t); the loop over the split's elements
// accesses the linearized dataset either through computeIndex per element
// (generated), or through a strength-reduced base pointer (opt-1/opt-2);
// hot variables are read through Chapel's nested structures (generated/
// opt-1) or through their own linearized buffers (opt-2).
func EmitC(class *ReductionClass, dataType *chapel.Type, opt OptLevel) (string, error) {
	if class == nil {
		return "", fmt.Errorf("core: EmitC needs a class")
	}
	// Gate emission on the same verifier that gates Translate: we never
	// render C the verifier would reject.
	if err := VerifyType(class, dataType, opt).Err(); err != nil {
		return "", err
	}
	meta, err := MetaFor(dataType, class.Path...)
	if err != nil {
		return "", err
	}
	promoteFlatDataMeta(meta)
	name := sanitizeIdent(class.Name)
	if name == "" {
		name = "reduction"
	}
	inner := meta.InnerLen
	if opt >= Opt3 {
		return emitCFused(class, dataType, meta, name, opt)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "/* %s: Chapel reduction translated to FREERIDE (%s) */\n", name, opt)
	fmt.Fprintf(&b, "/* dataset: %s */\n", dataType)
	fmt.Fprintf(&b, "/* reduction object: %d group(s) x %d element(s) */\n",
		class.Object.Groups, class.Object.Elems)
	fmt.Fprintf(&b, "void %s_reduction(reduction_args_t* args) {\n", name)

	// Hot variable declarations.
	for i, hv := range class.HotVars {
		ty := hv.Value.Type()
		switch opt {
		case Opt2:
			fmt.Fprintf(&b, "    /* hot variable %d linearized by the compiler (opt-2) */\n", i)
			fmt.Fprintf(&b, "    double* hot%d = linearized_hot_%d; /* was: %s */\n", i, i, ty)
		default:
			fmt.Fprintf(&b, "    /* hot variable %d accessed through Chapel structures */\n", i)
			fmt.Fprintf(&b, "    chpl_%s* hot%d = &chpl_hot_%d;\n", sanitizeIdent(elemName(ty)), i, i)
		}
	}

	fmt.Fprintf(&b, "    for (int i = 0; i < args->num_rows; i++) {\n")
	switch opt {
	case OptNone:
		fmt.Fprintf(&b, "        /* generated: computeIndex evaluated per element (Fig. 8, before optimization) */\n")
		fmt.Fprintf(&b, "        for (int k = 0; k < %d; k++) {\n", inner)
		fmt.Fprintf(&b, "            int index = computeIndex(unitSize, unitOffset, myIndex(args->begin + i, k), position, 0, %d);\n", meta.Levels)
		fmt.Fprintf(&b, "            elem[k] = linear_data[index];\n")
		fmt.Fprintf(&b, "        }\n")
	default:
		ap := AffinePlanFromMeta(meta, 0, 0)
		fmt.Fprintf(&b, "        /* opt-1 strength reduction: start point computed before the first\n")
		fmt.Fprintf(&b, "           iteration, pre-computed offset added per iteration (§V) */\n")
		fmt.Fprintf(&b, "        int base = %d * (args->begin + i) + %d;\n", ap.U0, ap.Off0)
		fmt.Fprintf(&b, "        double* elem = &linear_data[base]; /* %d contiguous elements */\n", inner)
	}

	fmt.Fprintf(&b, "        /* accumulate body (user logic, cf. Fig. 3/Fig. 5): */\n")
	for i := range class.HotVars {
		switch opt {
		case Opt2:
			fmt.Fprintf(&b, "        /*   hot%d[j]         — mapping algorithm on dense storage */\n", i)
		default:
			fmt.Fprintf(&b, "        /*   hot%d->...->vals[j] — nested-structure traversal per access */\n", i)
		}
	}
	fmt.Fprintf(&b, "        /*   accumulate(group, elem, value) updates the reduction object */\n")
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

// emitCFused renders the opt-3 shape: the split loop and the accumulate body
// are fused into one block-granular function that accumulates into a
// thread-local dense buffer and synchronizes with the shared reduction
// object once per split (accumulate_block) instead of once per element. In
// the paper's pipeline an optimizing C compiler produces this shape on its
// own by inlining accumulate into the strength-reduced loop; rendering it
// explicitly documents what our runtime's BlockKernel path reproduces.
func emitCFused(class *ReductionClass, dataType *chapel.Type, meta *Meta, name string, opt OptLevel) (string, error) {
	inner := meta.InnerLen
	var b strings.Builder
	fmt.Fprintf(&b, "/* %s: Chapel reduction translated to FREERIDE (%s) */\n", name, opt)
	fmt.Fprintf(&b, "/* dataset: %s */\n", dataType)
	fmt.Fprintf(&b, "/* reduction object: %d group(s) x %d element(s) */\n",
		class.Object.Groups, class.Object.Elems)
	fmt.Fprintf(&b, "void %s_block_reduction(block_args_t* args) {\n", name)
	fmt.Fprintf(&b, "    /* opt-3 fusion: thread-local dense mirror of the reduction object;\n")
	fmt.Fprintf(&b, "       accumulate becomes an unsynchronized local update */\n")
	fmt.Fprintf(&b, "    double acc[%d * %d];\n", class.Object.Groups, class.Object.Elems)
	fmt.Fprintf(&b, "    fill_identity(acc, %d * %d);\n", class.Object.Groups, class.Object.Elems)
	for i, hv := range class.HotVars {
		fmt.Fprintf(&b, "    /* hot variable %d linearized by the compiler (opt-2) */\n", i)
		fmt.Fprintf(&b, "    double* hot%d = linearized_hot_%d; /* was: %s */\n", i, i, hv.Value.Type())
	}
	ap := AffinePlanFromMeta(meta, 0, 0)
	fmt.Fprintf(&b, "    /* opt-1 strength reduction: start point computed once per split */\n")
	fmt.Fprintf(&b, "    int base = %d * args->begin + %d;\n", ap.U0, ap.Off0)
	fmt.Fprintf(&b, "    for (int i = 0; i < args->num_rows; i++) {\n")
	fmt.Fprintf(&b, "        double* elem = &linear_data[base]; /* %d contiguous elements */\n", inner)
	fmt.Fprintf(&b, "        /* accumulate body fused inline (user logic, cf. Fig. 3/Fig. 5): */\n")
	for i := range class.HotVars {
		fmt.Fprintf(&b, "        /*   hot%d[j]            — dense storage, no per-access branch */\n", i)
	}
	fmt.Fprintf(&b, "        /*   acc[group * %d + elem] op= value — no lock, no CAS */\n", class.Object.Elems)
	fmt.Fprintf(&b, "        base += %d;\n", ap.U0)
	fmt.Fprintf(&b, "    }\n")
	fmt.Fprintf(&b, "    /* one synchronization event per cell-range per split */\n")
	fmt.Fprintf(&b, "    accumulate_block(args->worker, acc);\n")
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

// elemName derives a readable identifier for a boxed structure's element
// type.
func elemName(ty *chapel.Type) string {
	if ty.Kind == chapel.KindArray {
		ty = ty.Elem
	}
	if ty.Name != "" {
		return ty.Name
	}
	return ty.Kind.String()
}

// sanitizeIdent keeps letters, digits, and underscores.
func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '-' || r == ' ':
			b.WriteByte('_')
		}
	}
	return b.String()
}
