package core

import (
	"testing"

	"chapelfreeride/internal/freeride"
)

func TestStreamingTranslationMatchesEager(t *testing.T) {
	const n, k, dim = 800, 4, 3
	data := makePoints(n, dim, 9)
	centroids := makeCentroids(k, dim, 10)
	want := kmeansManual(data, centroids, k, dim)
	for _, opt := range OptLevels() {
		for _, chunkRows := range []int{1, 37, 256, 4096} {
			tr, st, err := TranslateStreaming(kmeansClass(k, dim, centroids), data, opt, chunkRows)
			if err != nil {
				t.Fatalf("%v: %v", opt, err)
			}
			eng := freeride.New(freeride.Config{Threads: 3, SplitRows: 64})
			res, err := eng.Run(tr.Spec(), tr.Source())
			if err != nil {
				t.Fatalf("%v/chunk=%d: %v", opt, chunkRows, err)
			}
			got := res.Object.Snapshot()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v/chunk=%d: cell %d = %v, want %v", opt, chunkRows, i, got[i], want[i])
				}
			}
			if d := st.Wait(); d <= 0 {
				t.Fatalf("linearizer duration = %v", d)
			}
			wantChunks := (n + chunkRows - 1) / chunkRows
			if st.Chunks() != wantChunks {
				t.Fatalf("chunks = %d, want %d", st.Chunks(), wantChunks)
			}
		}
	}
}

func TestStreamingTranslationSecondPassUnblocked(t *testing.T) {
	// After the first pass completes, the buffer is full: a second pass
	// must see zero additional waits.
	data := makePoints(300, 2, 11)
	centroids := makeCentroids(2, 2, 12)
	tr, st, err := TranslateStreaming(kmeansClass(2, 2, centroids), data, Opt2, 32)
	if err != nil {
		t.Fatal(err)
	}
	eng := freeride.New(freeride.Config{Threads: 2, SplitRows: 32})
	if _, err := eng.Run(tr.Spec(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	st.Wait()
	before := st.Waits()
	if _, err := eng.Run(tr.Spec(), tr.Source()); err != nil {
		t.Fatal(err)
	}
	if st.Waits() != before {
		t.Fatalf("second pass blocked: %d → %d waits", before, st.Waits())
	}
}

func TestStreamingTranslationErrors(t *testing.T) {
	data := makePoints(10, 2, 13)
	if _, _, err := TranslateStreaming(nil, data, OptNone, 8); err == nil {
		t.Fatal("nil class: want error")
	}
	cls := kmeansClass(2, 2, makeCentroids(2, 2, 14))
	bad := *cls
	bad.Path = []string{"nope"}
	if _, _, err := TranslateStreaming(&bad, data, OptNone, 8); err == nil {
		t.Fatal("bad path: want error")
	}
	// chunkRows <= 0 defaults instead of failing.
	tr, st, err := TranslateStreaming(cls, data, Opt1, 0)
	if err != nil {
		t.Fatal(err)
	}
	st.Wait()
	if len(tr.Words()) != 20 {
		t.Fatalf("words = %d", len(tr.Words()))
	}
}
