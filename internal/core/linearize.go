package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"chapelfreeride/internal/chapel"
)

// Buffer is linearized storage: the dense low-level data Ds that FREERIDE's
// "simple 2-D array view" requires, produced from a high-level Chapel value
// by Algorithm 2. It retains the source type so the storage can be mapped
// (Meta/ComputeIndex) and de-linearized (written back).
type Buffer struct {
	// Ty is the Chapel type of the linearized value.
	Ty *chapel.Type
	// Bytes is the dense storage, in the layout SizeOf describes.
	Bytes []byte
}

// Linearize is Algorithm 2 (linearizeIt): it allocates storage of
// ComputeLinearizeSize bytes and recursively copies the value into it —
// primitives directly, arrays element by element, records member by member.
func Linearize(v chapel.Value) *Buffer {
	b := &Buffer{Ty: v.Type(), Bytes: make([]byte, ComputeLinearizeSize(v))}
	off := linearizeInto(b.Bytes, 0, v)
	if off != len(b.Bytes) {
		panic(fmt.Sprintf("core: linearize wrote %d of %d bytes", off, len(b.Bytes)))
	}
	return b
}

// linearizeInto copies v at offset off, returning the next free offset.
func linearizeInto(dst []byte, off int, v chapel.Value) int {
	switch x := v.(type) {
	case *chapel.Int:
		binary.LittleEndian.PutUint64(dst[off:], uint64(x.Val))
		return off + intSize
	case *chapel.Real:
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(x.Val))
		return off + realSize
	case *chapel.Bool:
		if x.Val {
			dst[off] = 1
		} else {
			dst[off] = 0
		}
		return off + boolSize
	case *chapel.String:
		n := copy(dst[off:off+x.Ty.MaxLen], x.Val)
		for i := off + n; i < off+x.Ty.MaxLen; i++ {
			dst[i] = 0
		}
		return off + x.Ty.MaxLen
	case *chapel.Enum:
		binary.LittleEndian.PutUint64(dst[off:], uint64(x.Ordinal))
		return off + enumSize
	case *chapel.Array:
		for _, e := range x.Elems {
			off = linearizeInto(dst, off, e)
		}
		return off
	case *chapel.Record:
		for _, f := range x.Fields {
			off = linearizeInto(dst, off, f)
		}
		return off
	default:
		panic(fmt.Sprintf("core: linearize of unknown value %T", v))
	}
}

// LinearizeExpr is Algorithm 2's isIterative branch: the linearization
// function is invoked iteratively on each element the expression yields
// (e.g. on each sum of corresponding elements for A+B). The result is typed
// as a [1..n] array of the element type.
func LinearizeExpr(e chapel.Expr) *Buffer {
	n := e.Len()
	ty := chapel.ArrayType(e.ElemType(), 1, n)
	b := &Buffer{Ty: ty, Bytes: make([]byte, ExprLinearizeSize(e))}
	off := 0
	for i := 0; i < n; i++ {
		off = linearizeInto(b.Bytes, off, e.Index(i))
	}
	return b
}

// LinearizeParallel linearizes a top-level array with the given number of
// workers, each copying a contiguous range of elements (element offsets are
// fixed by the type, so ranges are independent). The paper performs
// linearization sequentially and names parallel/pipelined linearization as
// future work (§V); this is that extension, exercised by the ABL-PIPE
// ablation.
func LinearizeParallel(a *chapel.Array, workers int) *Buffer {
	if workers < 1 {
		workers = 1
	}
	n := a.Len()
	if workers > n {
		workers = n
	}
	elemSize := SizeOf(a.Ty.Elem)
	b := &Buffer{Ty: a.Ty, Bytes: make([]byte, n*elemSize)}
	if workers <= 1 {
		linearizeInto(b.Bytes, 0, a)
		return b
	}
	var wg sync.WaitGroup
	base, extra := n/workers, n%workers
	begin := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		lo, hi := begin, begin+size
		begin = hi
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			off := lo * elemSize
			for i := lo; i < hi; i++ {
				off = linearizeInto(b.Bytes, off, a.Elems[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return b
}

// ReadReal reads the real at byte offset off.
func (b *Buffer) ReadReal(off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes[off:]))
}

// WriteReal stores a real at byte offset off.
func (b *Buffer) WriteReal(off int, v float64) {
	binary.LittleEndian.PutUint64(b.Bytes[off:], math.Float64bits(v))
}

// ReadInt reads the int at byte offset off.
func (b *Buffer) ReadInt(off int) int64 {
	return int64(binary.LittleEndian.Uint64(b.Bytes[off:]))
}

// WriteInt stores an int at byte offset off.
func (b *Buffer) WriteInt(off int, v int64) {
	binary.LittleEndian.PutUint64(b.Bytes[off:], uint64(v))
}

// ReadBool reads the bool at byte offset off.
func (b *Buffer) ReadBool(off int) bool { return b.Bytes[off] != 0 }

// ReadString reads the fixed-width string slot of width maxLen at off,
// trimming the zero padding.
func (b *Buffer) ReadString(off, maxLen int) string {
	s := b.Bytes[off : off+maxLen]
	end := len(s)
	for end > 0 && s[end-1] == 0 {
		end--
	}
	return string(s[:end])
}

// Delinearize reconstructs the boxed Chapel value from linearized storage —
// the inverse of Linearize, used to write reduction results back into
// Chapel's world and to verify round-trips.
func Delinearize(b *Buffer) (chapel.Value, error) {
	if want := SizeOf(b.Ty); want != len(b.Bytes) {
		return nil, fmt.Errorf("core: delinearize size mismatch: type wants %d bytes, buffer has %d",
			want, len(b.Bytes))
	}
	v, _ := delinearizeAt(b, 0, b.Ty)
	return v, nil
}

func delinearizeAt(b *Buffer, off int, ty *chapel.Type) (chapel.Value, int) {
	switch ty.Kind {
	case chapel.KindInt:
		return &chapel.Int{Val: b.ReadInt(off)}, off + intSize
	case chapel.KindReal:
		return &chapel.Real{Val: b.ReadReal(off)}, off + realSize
	case chapel.KindBool:
		return &chapel.Bool{Val: b.ReadBool(off)}, off + boolSize
	case chapel.KindString:
		return &chapel.String{Ty: ty, Val: b.ReadString(off, ty.MaxLen)}, off + ty.MaxLen
	case chapel.KindEnum:
		ord := int(b.ReadInt(off))
		if ord < 0 || ord >= len(ty.Consts) {
			ord = 0
		}
		return &chapel.Enum{Ty: ty, Ordinal: ord}, off + enumSize
	case chapel.KindArray:
		a := &chapel.Array{Ty: ty, Elems: make([]chapel.Value, ty.Len())}
		for i := range a.Elems {
			a.Elems[i], off = delinearizeAt(b, off, ty.Elem)
		}
		return a, off
	case chapel.KindRecord:
		r := &chapel.Record{Ty: ty, Fields: make([]chapel.Value, len(ty.Fields))}
		for i, f := range ty.Fields {
			r.Fields[i], off = delinearizeAt(b, off, f.Type)
		}
		return r, off
	default:
		panic("core: delinearize of unknown kind " + ty.Kind.String())
	}
}

// Float64s decodes the buffer as a dense []float64, valid only for all-real
// layouts. This is the element-typed view of Fig. 8's linear_data.
func (b *Buffer) Float64s() ([]float64, error) {
	if !AllReal(b.Ty) {
		return nil, fmt.Errorf("core: Float64s view needs an all-real layout, type is %s", b.Ty)
	}
	out := make([]float64, len(b.Bytes)/8)
	for i := range out {
		out[i] = b.ReadReal(i * 8)
	}
	return out, nil
}

// LinearizeToWords linearizes an all-real value directly into a []float64,
// skipping the byte stage. This is the fast path used for the input
// datasets handed to FREERIDE and for opt-2's hot-variable linearization.
func LinearizeToWords(v chapel.Value) ([]float64, error) {
	if !AllReal(v.Type()) {
		return nil, fmt.Errorf("core: LinearizeToWords needs an all-real value, type is %s", v.Type())
	}
	out := make([]float64, ComputeLinearizeSize(v)/8)
	n := wordsInto(out, 0, v)
	if n != len(out) {
		panic(fmt.Sprintf("core: word linearize wrote %d of %d words", n, len(out)))
	}
	return out, nil
}

// LinearizeToWordsParallel is LinearizeToWords with parallel element copy
// for a top-level array (see LinearizeParallel).
func LinearizeToWordsParallel(a *chapel.Array, workers int) ([]float64, error) {
	if !AllReal(a.Ty) {
		return nil, fmt.Errorf("core: LinearizeToWords needs an all-real value, type is %s", a.Ty)
	}
	if workers < 1 {
		workers = 1
	}
	n := a.Len()
	if workers > n {
		workers = n
	}
	elemWords := SizeOf(a.Ty.Elem) / 8
	out := make([]float64, n*elemWords)
	if workers <= 1 {
		wordsInto(out, 0, a)
		return out, nil
	}
	var wg sync.WaitGroup
	base, extra := n/workers, n%workers
	begin := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		lo, hi := begin, begin+size
		begin = hi
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			off := lo * elemWords
			for i := lo; i < hi; i++ {
				off = wordsInto(out, off, a.Elems[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

func wordsInto(dst []float64, off int, v chapel.Value) int {
	switch x := v.(type) {
	case *chapel.Real:
		dst[off] = x.Val
		return off + 1
	case *chapel.Array:
		for _, e := range x.Elems {
			off = wordsInto(dst, off, e)
		}
		return off
	case *chapel.Record:
		for _, f := range x.Fields {
			off = wordsInto(dst, off, f)
		}
		return off
	default:
		panic(fmt.Sprintf("core: word linearize of non-real value %T", v))
	}
}

// SparseCOO is the raw coordinate-form sparse matrix the inspector consumes:
// nnz entries (R[e], C[e], V[e]) with 0-based coordinates in a logical
// Rows×Cols shape. Coordinates are deliberately NOT bounds-checked at
// construction — the verifier's table proofs (FRV013) reject out-of-range
// entries when an InspectorPlan built from the COO is bound to a class.
type SparseCOO struct {
	// Rows and Cols are the logical matrix shape.
	Rows, Cols int
	// R, C, V hold one entry per nonzero: row, column, value.
	R, C []int32
	V    []float64
}

// LinearizeCOO is the sparse branch of the linearizer: it unboxes a Chapel
// [lo..hi] array of record { r: real; c: real; v: real } entries — the
// natural Chapel-side form of a COO sparse matrix with coordinates stored
// as whole-number reals so the record stays an all-real layout — into the
// raw SparseCOO the inspector consumes. r and c are 1-based (Chapel domain
// style) and converted to 0-based; rows and cols declare the logical shape.
// Structural problems (wrong record shape, fractional coordinates) are
// linearization errors; out-of-range coordinates pass through for the
// verifier to reject with its table proofs.
func LinearizeCOO(arr *chapel.Array, rows, cols int) (*SparseCOO, error) {
	if arr == nil {
		return nil, fmt.Errorf("core: LinearizeCOO needs a COO array")
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("core: LinearizeCOO shape %dx%d is negative", rows, cols)
	}
	rec := arr.Ty.Elem
	if rec.Kind != chapel.KindRecord {
		return nil, fmt.Errorf("core: COO array must hold records, got %s", arr.Ty)
	}
	ri, ci, vi := rec.FieldIndex("r"), rec.FieldIndex("c"), rec.FieldIndex("v")
	if ri < 0 || ci < 0 || vi < 0 {
		return nil, fmt.Errorf("core: COO record %s needs fields r, c, v", rec.Name)
	}
	for _, f := range []int{ri, ci, vi} {
		if rec.Fields[f].Type.Kind != chapel.KindReal {
			return nil, fmt.Errorf("core: COO field %q must be real, got %s",
				rec.Fields[f].Name, rec.Fields[f].Type)
		}
	}
	nnz := arr.Len()
	coo := &SparseCOO{
		Rows: rows, Cols: cols,
		R: make([]int32, nnz), C: make([]int32, nnz), V: make([]float64, nnz),
	}
	for i, e := range arr.Elems {
		fields := e.(*chapel.Record).Fields
		r, err := wholeCoord(fields[ri].(*chapel.Real).Val, "r", i)
		if err != nil {
			return nil, err
		}
		c, err := wholeCoord(fields[ci].(*chapel.Real).Val, "c", i)
		if err != nil {
			return nil, err
		}
		coo.R[i] = r - 1 // Chapel 1-based → 0-based
		coo.C[i] = c - 1
		coo.V[i] = fields[vi].(*chapel.Real).Val
	}
	return coo, nil
}

// wholeCoord converts a real-stored coordinate to int32, rejecting
// fractional values (a fractional coordinate is a construction bug, not an
// out-of-range entry the verifier should handle).
func wholeCoord(v float64, field string, entry int) (int32, error) {
	c := int32(v)
	if float64(c) != v {
		return 0, fmt.Errorf("core: COO entry %d field %q holds %v, not a whole-number coordinate",
			entry, field, v)
	}
	return c, nil
}

// WordsBack writes a []float64 word view back into a boxed all-real value,
// the word-level inverse used to return FREERIDE results (e.g. updated
// centroids) to Chapel structures.
func WordsBack(words []float64, v chapel.Value) error {
	if !AllReal(v.Type()) {
		return fmt.Errorf("core: WordsBack needs an all-real value, type is %s", v.Type())
	}
	want := ComputeLinearizeSize(v) / 8
	if len(words) != want {
		return fmt.Errorf("core: WordsBack got %d words, value wants %d", len(words), want)
	}
	wordsBack(words, 0, v)
	return nil
}

func wordsBack(src []float64, off int, v chapel.Value) int {
	switch x := v.(type) {
	case *chapel.Real:
		x.Val = src[off]
		return off + 1
	case *chapel.Array:
		for _, e := range x.Elems {
			off = wordsBack(src, off, e)
		}
		return off
	case *chapel.Record:
		for _, f := range x.Fields {
			off = wordsBack(src, off, f)
		}
		return off
	default:
		panic(fmt.Sprintf("core: wordsBack into non-real value %T", v))
	}
}
