package core

import (
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// OptLevel selects which of the paper's compiler-generated code shapes the
// translator emits (§V), plus one level beyond the paper:
//
//	OptNone — "generated": ComputeIndex evaluated for every innermost
//	          element, hot variables read through boxed Chapel structures.
//	Opt1    — strength reduction: the index is hoisted out of the innermost
//	          loop and the contiguous run is walked directly; hot variables
//	          still go through boxed structures.
//	Opt2    — Opt1 plus linearization of the frequently-accessed variables,
//	          which are then read "through the mapping algorithm" on flat
//	          storage.
//	Opt3    — Opt2 plus kernel fusion: the per-element callback is replaced
//	          by a split-granular block kernel that walks the linearized
//	          words directly and accumulates into a worker-local dense
//	          buffer, flushed to the shared object once per split. The
//	          paper's compiled C output gets this batching for free from
//	          inlining; our runtime must perform it explicitly.
type OptLevel int

const (
	// OptNone is the unoptimized generated code.
	OptNone OptLevel = iota
	// Opt1 adds strength reduction of the innermost ComputeIndex.
	Opt1
	// Opt2 adds hot-variable linearization on top of Opt1.
	Opt2
	// Opt3 adds split-granular kernel fusion on top of Opt2. It requires the
	// class to declare a BlockKernel; classes without one fall back to the
	// Opt2 execution shape.
	Opt3
)

// String returns the paper's name for the level.
func (o OptLevel) String() string {
	switch o {
	case OptNone:
		return "generated"
	case Opt1:
		return "opt-1"
	case Opt2:
		return "opt-2"
	case Opt3:
		return "opt-3"
	default:
		return fmt.Sprintf("opt(%d)", int(o))
	}
}

// OptLevels lists the levels in increasing optimization order.
func OptLevels() []OptLevel { return []OptLevel{OptNone, Opt1, Opt2, Opt3} }

// Vec is the translator's view of one data element's innermost contiguous
// run of reals (e.g. one point's coordinates). The kernel is written once
// against Vec; the translator binds the access mode the optimization level
// dictates. Vec is a concrete struct (not an interface) so that the
// strength-reduced path compiles to a direct slice load — matching the
// paper, where opt-1/opt-2 output is ordinary C array code while the
// generated version calls computeIndex per element.
type Vec struct {
	// run is the strength-reduced view (Opt1/Opt2): the element's words,
	// base offset already applied. nil in generated mode.
	run []float64
	// Generated-mode state: the whole linearized buffer plus the mapping
	// metadata, with ComputeIndex evaluated on every access.
	words []float64
	meta  *Meta
	row   int // domain index at level 0
}

// Len is the number of reals in the run.
func (v *Vec) Len() int {
	if v.run != nil {
		return len(v.run)
	}
	return v.meta.InnerLen
}

// At reads the k-th real (0-based within the run).
func (v *Vec) At(k int) float64 {
	if v.run != nil {
		return v.run[k]
	}
	return v.atMapped(k)
}

// atMapped is the generated-mode access: Algorithm 3 from the top for every
// element, Fig. 8's pre-optimization loop body.
func (v *Vec) atMapped(k int) float64 {
	idx := [2]int{v.row, v.meta.Lo[1] + k}
	return v.words[v.meta.ComputeIndex(idx[:]...)]
}

// Row materializes the element's run as a contiguous slice of length Len().
// The strength-reduced modes return the run zero-copy; generated mode
// evaluates ComputeIndex once per element of the run into scratch — exactly
// the Fig. 8 "after linearization" loop before strength reduction. The
// per-element evaluations land on the same contiguous run the opt-1 view
// walks directly (the linearized layout guarantees it), so the two modes
// return identical values and differ only in cost — generated mode pays the
// recomputation deliberately, to model the paper's unoptimized output. The
// equality is pinned by TestGeneratedRowMatchesOpt1Row. scratch must have
// length at least Len() (use freeride.ReductionArgs.Scratch).
func (v *Vec) Row(scratch []float64) []float64 {
	if v.run != nil {
		return v.run
	}
	n := v.meta.InnerLen
	scratch = scratch[:n]
	for k := 0; k < n; k++ {
		scratch[k] = v.atMapped(k)
	}
	return scratch
}

// StateVec is the translator's view of a frequently-accessed ("hot")
// variable such as k-means' centroids: At(i, j) reads the j-th real of the
// i-th element, in the variable's declared domains. In generated/opt-1 mode
// every access walks the boxed Chapel structure (§V's overhead source 3);
// in opt-2 mode the variable has been linearized and the access is the
// mapping algorithm on dense words.
type StateVec struct {
	// Opt2 path: flat words plus the two-level mapping constants
	// (Algorithm 3 specialized to levels=2).
	flat                   []float64
	u0, off0, u1, lo0, lo1 int
	// Boxed path (generated/opt-1).
	boxed *boxedState
	// shape
	elems, width int
	src          *chapel.Array
}

// At reads element (i, j) in the variable's domain indices.
func (s *StateVec) At(i, j int) float64 {
	if s.flat != nil {
		return s.flat[s.u0*(i-s.lo0)+s.off0+s.u1*(j-s.lo1)]
	}
	return s.boxed.at(i, j)
}

// Row returns element i's reals as a contiguous slice of length Width(). In
// opt-2 mode this is a zero-copy view of the linearized words (the mapping
// arithmetic runs once per row, which is what the paper's generated-then-
// compiled C achieves through loop-invariant hoisting). In boxed mode the
// row is materialized into scratch through the boxed structure, paying the
// per-element traversal cost opt-2 exists to remove; scratch must have
// length at least Width() (use freeride.ReductionArgs.Scratch).
func (s *StateVec) Row(i int, scratch []float64) []float64 {
	if s.flat != nil {
		base := s.u0*(i-s.lo0) + s.off0
		return s.flat[base : base+s.width]
	}
	scratch = scratch[:s.width]
	for j := 0; j < s.width; j++ {
		scratch[j] = s.boxed.at(i, s.boxed.innerLo+j)
	}
	return scratch
}

// Dense returns the whole linearized hot variable as one contiguous
// elems×width row-major block. It is the fully-devirtualized view opt-3
// block kernels walk: no mapping arithmetic, no branch per access. ok is
// false in boxed mode (generated/opt-1) or when the linearized layout is
// not dense (inner unit stride != 1 or padding between rows) — callers fall
// back to Row/At.
func (s *StateVec) Dense() ([]float64, bool) {
	if s.flat == nil || s.u1 != 1 || s.u0 != s.width {
		return nil, false
	}
	return s.flat[s.off0 : s.off0+s.elems*s.width], true
}

// Elems reports the level-0 domain length.
func (s *StateVec) Elems() int { return s.elems }

// Width reports the inner run length.
func (s *StateVec) Width() int { return s.width }

// refresh re-linearizes the boxed source into the flat words after the
// source changed (no-op for boxed mode, whose access is live).
func (s *StateVec) refresh() {
	if s.flat != nil {
		wordsInto(s.flat, 0, s.src)
	}
}

// boxedState holds the pre-resolved field index for boxed traversal.
type boxedState struct {
	root    *chapel.Array
	field   int  // record field between the two array levels, or -1
	vector  bool // [1..n] real addressed as a single 1×n element
	innerLo int  // inner array's domain low bound
}

// at walks the boxed structure: array element, optional record field,
// inner array element — pointer chasing and dynamic type switches on every
// access, the cost opt-2 exists to remove.
func (s *boxedState) at(i, j int) float64 {
	if s.vector {
		return s.root.At(j).(*chapel.Real).Val
	}
	e := s.root.At(i)
	if s.field >= 0 {
		e = e.(*chapel.Record).Fields[s.field]
	}
	return e.(*chapel.Array).At(j).(*chapel.Real).Val
}

// NewBoxedStateVec builds the boxed (generated/opt-1) hot-variable view.
// The variable must be a two-level structure: [1..n] record with a real
// array field (path names the field), [1..n][1..m] real, or [1..n] real
// (addressed as n×1).
func NewBoxedStateVec(root *chapel.Array, path []string) (*StateVec, error) {
	b := &boxedState{root: root, field: -1}
	s := &StateVec{boxed: b, elems: root.Len(), src: root}
	elem := root.Ty.Elem
	switch {
	case elem.Kind == chapel.KindArray && len(path) == 0:
		s.width = elem.Len()
		b.innerLo = elem.Lo
	case elem.Kind == chapel.KindRecord && len(path) == 1:
		f := elem.FieldIndex(path[0])
		if f < 0 {
			return nil, fmt.Errorf("core: record %s has no field %q", elem.Name, path[0])
		}
		inner := elem.Fields[f].Type
		if inner.Kind != chapel.KindArray || inner.Elem.Kind != chapel.KindReal {
			return nil, fmt.Errorf("core: hot path %v must select a real array, got %s", path, inner)
		}
		b.field = f
		s.width = inner.Len()
		b.innerLo = inner.Lo
	case elem.Kind == chapel.KindReal && len(path) == 0:
		// A flat vector is addressed as one 1×n element.
		b.vector = true
		b.innerLo = root.Ty.Lo
		s.elems = 1
		s.width = root.Len()
	default:
		return nil, fmt.Errorf("core: unsupported hot variable shape %s with path %v", root.Ty, path)
	}
	return s, nil
}

// NewWordStateVec builds the linearized (opt-2) hot-variable view: the
// variable is linearized once and subsequently addressed with the mapping
// algorithm on dense words. Call StateVec.refresh (via
// Translation.RefreshHotVars) after mutating the boxed source.
func NewWordStateVec(root *chapel.Array, path []string) (*StateVec, error) {
	meta, err := MetaFor(root.Ty, path...)
	if err != nil {
		return nil, err
	}
	promoteFlatVectorMeta(meta, root.Len())
	if meta.Levels != 2 {
		return nil, fmt.Errorf("core: hot variable needs 2-level addressing, path %v gives %d", path, meta.Levels)
	}
	wmeta, err := meta.Words()
	if err != nil {
		return nil, err
	}
	words, err := LinearizeToWords(root)
	if err != nil {
		return nil, err
	}
	elems := root.Len()
	if root.Ty.Elem.Kind == chapel.KindReal && len(path) == 0 {
		elems = 1 // vector promoted to 1×n
	}
	ap := AffinePlanFromMeta(wmeta, elems, len(words))
	return &StateVec{
		flat:  words,
		u0:    ap.U0,
		off0:  ap.Off0,
		u1:    ap.U1,
		lo0:   wmeta.Lo[0],
		lo1:   wmeta.Lo[1],
		elems: elems,
		width: wmeta.InnerLen,
		src:   root,
	}, nil
}

// promoteFlatDataMeta rewrites a 1-level meta ([1..n] of a primitive) as an
// n×1 two-level access: each primitive is one data element (row), matching
// FREERIDE's view of a flat dataset.
func promoteFlatDataMeta(meta *Meta) {
	if meta.Levels != 1 {
		return
	}
	meta.Levels = 2
	meta.UnitSize = append(meta.UnitSize, meta.UnitSize[0])
	meta.UnitOffset = append(meta.UnitOffset, []int{meta.LeafOffset})
	meta.Position = append(meta.Position, []int{0})
	meta.LeafOffset = 0
	meta.Lo = append(meta.Lo, 1)
	meta.InnerLen = 1
}

// promoteFlatVectorMeta rewrites a 1-level meta ([1..n] of a primitive) as
// a 1×n two-level access: the whole vector is a single element whose row is
// the n values — the natural addressing for hot-variable vectors like PCA's
// mean (At(1, j), Row(1)).
func promoteFlatVectorMeta(meta *Meta, n int) {
	if meta.Levels != 1 {
		return
	}
	inner := meta.UnitSize[0]
	meta.Levels = 2
	meta.UnitSize = []int{n * inner, inner}
	meta.UnitOffset = [][]int{{meta.LeafOffset}}
	meta.Position = [][]int{{0}}
	meta.LeafOffset = 0
	meta.Lo = []int{1, meta.Lo[0]}
	meta.InnerLen = n
}

// Kernel is the translated accumulate body: it processes one data element,
// reading the element through elem, hot variables through hot, and updating
// the reduction object through args.Accumulate.
type Kernel func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs)

// BlockView carries the strength-reduced access constants an opt-3 block
// kernel needs to walk a split's elements directly on the linearized words:
// element i's run is Words[RowStride*i+RunOff : +RunLen] (i global, so the
// split starts at args.Begin). All bounds are established once per
// translation, letting the kernel's inner loops run on plain slices with no
// Vec branch or ComputeIndex per access.
type BlockView struct {
	// Words is the linearized dataset, word units.
	Words []float64
	// RowStride is the number of words per top-level data element.
	RowStride int
	// RunOff is the pre-computed offset of the real run within an element.
	RunOff int
	// RunLen is the run length in words.
	RunLen int
}

// Run returns global element i's contiguous real run.
func (v BlockView) Run(i int) []float64 {
	base := v.RowStride*i + v.RunOff
	return v.Words[base : base+v.RunLen]
}

// BlockKernel is the fused split-granular accumulate body used at Opt3: one
// call processes args' whole split, reading elements through view (or
// args.Data) and hot variables preferably through StateVec.Dense, and
// accumulating into the worker-local buffer args.Acc() — the engine flushes
// it into the shared object once per split. Results must be independent of
// split order and bit-identical to running Kernel per element.
type BlockKernel func(args *freeride.BlockArgs, view BlockView, hot []*StateVec) error

// HotVar declares a frequently-accessed variable for the kernel: a boxed
// two-level structure (array of records with a real array field, array of
// real arrays, or array of reals) plus the field path to its real run.
type HotVar struct {
	Value *chapel.Array
	Path  []string
}

// ReductionClass is the translator's input: the Chapel-side reduction
// (paper Fig. 3) described declaratively — the reduction-object shape, the
// access path from a data element to its real run, the hot variables, and
// the accumulate kernel.
type ReductionClass struct {
	// Name identifies the reduction in diagnostics.
	Name string
	// Object is the FREERIDE reduction-object shape to allocate.
	Object freeride.ObjectSpec
	// Path selects the real run inside one data element (empty when the
	// element itself is a real array or a single real).
	Path []string
	// HotVars lists the structures the kernel reads for every element.
	HotVars []HotVar
	// Kernel is the per-element accumulate body.
	Kernel Kernel
	// BlockKernel, when set, is the fused split-granular accumulate body the
	// translator wires at Opt3. Classes without one still translate at Opt3
	// but execute with the Opt2 per-element shape.
	BlockKernel BlockKernel
	// Combine optionally post-processes the merged object (combination_t).
	Combine func(o *robj.Object) error
	// Finalize optionally runs on the run result (finalize_t).
	Finalize func(r *freeride.Result) error
}

// Translation is compiled, executable output of Translate: a FREERIDE spec
// plus the linearized input it runs over.
type Translation struct {
	class *ReductionClass
	opt   OptLevel

	words []float64
	meta  *Meta // word units, for the data
	rows  int
	cols  int // words per element

	hot []*StateVec

	// stream is non-nil for TranslateStreaming translations: the source is
	// gated on the background linearizer.
	stream *StreamStats

	// LinearizeTime is the cost of the sequential input linearization (the
	// first overhead source in §V; not optimized by opt-1/opt-2). Zero for
	// streaming translations, whose cost is overlapped (StreamStats).
	LinearizeTime time.Duration
	// HotLinearizeTime is the opt-2 hot-variable linearization cost.
	HotLinearizeTime time.Duration
}

// TranslateOptions tunes the translation.
type TranslateOptions struct {
	// LinearizeWorkers > 1 enables the parallel linearization extension
	// (the paper's future-work pipelining). Default 1: sequential, as the
	// paper's implementation does.
	LinearizeWorkers int
}

// Translate compiles a ReductionClass over a Chapel data array into a
// FREERIDE execution. The data must be an all-real array whose elements
// reach their real run through Path with two-level addressing (the
// FREERIDE "simple 2-D array view").
func Translate(class *ReductionClass, data *chapel.Array, opt OptLevel) (*Translation, error) {
	return TranslateWith(class, data, opt, TranslateOptions{})
}

// TranslateWith is Translate with options. The class and dataset are
// verified statically before anything is linearized: any error-severity
// diagnostic from Verify rejects the translation (the returned error is a
// *verify.Error carrying the full structured list).
func TranslateWith(class *ReductionClass, data *chapel.Array, opt OptLevel, o TranslateOptions) (*Translation, error) {
	if err := Verify(class, data, opt).Err(); err != nil {
		return nil, err
	}
	meta, err := MetaFor(data.Ty, class.Path...)
	if err != nil {
		return nil, err
	}
	promoteFlatDataMeta(meta)
	wmeta, err := meta.Words()
	if err != nil {
		return nil, err
	}
	tr := &Translation{class: class, opt: opt, meta: wmeta, rows: data.Len()}
	tr.cols = SizeOf(data.Ty.Elem) / 8

	// Linearize the input dataset (Ft: Dv → Ds). Sequential unless the
	// pipelining extension is requested.
	t0 := time.Now()
	workers := o.LinearizeWorkers
	if workers <= 1 {
		tr.words, err = LinearizeToWords(data)
	} else {
		tr.words, err = LinearizeToWordsParallel(data, workers)
	}
	if err != nil {
		return nil, err
	}
	tr.LinearizeTime = time.Since(t0)

	// Prepare hot-variable access per optimization level.
	t0 = time.Now()
	for _, hv := range class.HotVars {
		var sv *StateVec
		if opt >= Opt2 {
			sv, err = NewWordStateVec(hv.Value, hv.Path)
		} else {
			sv, err = NewBoxedStateVec(hv.Value, hv.Path)
		}
		if err != nil {
			return nil, fmt.Errorf("core: hot variable: %w", err)
		}
		tr.hot = append(tr.hot, sv)
	}
	tr.HotLinearizeTime = time.Since(t0)
	return tr, nil
}

// Opt reports the translation's optimization level.
func (t *Translation) Opt() OptLevel { return t.opt }

// Words exposes the linearized dataset (word view).
func (t *Translation) Words() []float64 { return t.words }

// Meta exposes the dataset's mapping metadata (word units).
func (t *Translation) Meta() *Meta { return t.meta }

// AccessPlan returns the translation's addressing model — always the
// closed-form affine plan for dense translations (sparse translations carry
// an InspectorPlan; see TranslateSparse).
func (t *Translation) AccessPlan() AccessPlan {
	return AffinePlanFromMeta(t.meta, t.rows, len(t.words))
}

// Source returns the linearized dataset as a FREERIDE data source: one row
// per top-level element. For streaming translations the source blocks
// readers until the background linearizer has produced the requested rows.
func (t *Translation) Source() dataset.Source {
	ws := NewWordSource(t.words, t.rows, t.cols)
	if t.stream != nil {
		return &streamSource{WordSource: ws, stats: t.stream}
	}
	return ws
}

// RefreshHotVars re-linearizes opt-2 hot variables after their boxed
// sources changed (no-op at other levels, whose access is live). Call
// between outer iterations, e.g. after k-means updates its centroids.
func (t *Translation) RefreshHotVars() {
	t0 := time.Now()
	for _, sv := range t.hot {
		sv.refresh()
	}
	t.HotLinearizeTime += time.Since(t0)
}

// Spec assembles the FREERIDE reduction spec whose Reduction callback is
// the generated code for the translation's optimization level.
func (t *Translation) Spec() freeride.Spec {
	return SpecFromWords(t.class, t.words, t.meta, t.hot, t.opt)
}

// SpecFromWords assembles the optimization-level-specific FREERIDE spec for
// a reduction class over an already-linearized dataset — the path used when
// several reduction phases share one linearization (e.g. PCA's mean and
// covariance phases). meta must be in word units and hot must have been
// built to match opt (NewBoxedStateVec or NewWordStateVec).
func SpecFromWords(class *ReductionClass, words []float64, meta *Meta, hot []*StateVec, opt OptLevel) freeride.Spec {
	spec := freeride.Spec{Object: class.Object, Combine: class.Combine, Finalize: class.Finalize}
	kernel := class.Kernel
	switch opt {
	case OptNone:
		// Generated code: ComputeIndex in the innermost loop, boxed
		// hot-variable access.
		spec.Reduction = func(args *freeride.ReductionArgs) error {
			vec := Vec{words: words, meta: meta}
			for i := 0; i < args.NumRows; i++ {
				vec.row = meta.Lo[0] + args.Begin + i
				kernel(&vec, hot, args)
			}
			return nil
		}
	default:
		// Opt-1/Opt-2: strength reduction — "the start point for the
		// continuous data split is computed before the first iteration,
		// and an appropriate pre-computed offset is added for each
		// iteration" (§V). off0 is that pre-computed offset; the constants
		// come from the shared affine access plan.
		ap := AffinePlanFromMeta(meta, 0, len(words))
		stride := ap.U1
		inner := ap.Inner
		u0 := ap.U0
		off0 := ap.Off0
		spec.Reduction = func(args *freeride.ReductionArgs) error {
			vec := Vec{}
			for i := 0; i < args.NumRows; i++ {
				base := u0*(args.Begin+i) + off0
				vec.run = words[base : base+inner*stride]
				kernel(&vec, hot, args)
			}
			return nil
		}
		if opt >= Opt3 && class.BlockKernel != nil {
			// Opt-3 fusion: hand the engine a devirtualized split-granular
			// kernel. The per-element Reduction above stays wired as the
			// fallback for execution tiers without a fused path.
			view := ap.View(words)
			bk := class.BlockKernel
			spec.BlockReduction = func(args *freeride.BlockArgs) error {
				return bk(args, view, hot)
			}
		}
	}
	return spec
}

// WordSource adapts a linearized word buffer to dataset.Source with the
// zero-copy RowSlicer fast path. Rows views borrow the caller's backing
// array: the engine's no-retention contract applies (kernels treat the view
// as read-only and drop it before the call returns — see
// freeride.BlockArgs.Data), and the caller must not mutate words while a
// pass is running over the source.
type WordSource struct {
	words []float64
	rows  int
	cols  int
}

// NewWordSource wraps a flat row-major word buffer as a data source. The
// shape check stays a panic: buffers produced by Translate have their word
// count proven against the dataset shape at verify time (FRV008), so this
// only trips on direct constructor misuse.
func NewWordSource(words []float64, rows, cols int) *WordSource {
	if rows*cols != len(words) {
		panic(fmt.Sprintf("core: WordSource shape %dx%d over %d words", rows, cols, len(words)))
	}
	return &WordSource{words: words, rows: rows, cols: cols}
}

// NumRows implements dataset.Source.
func (s *WordSource) NumRows() int { return s.rows }

// Cols implements dataset.Source.
func (s *WordSource) Cols() int { return s.cols }

// ReadRows implements dataset.Source.
func (s *WordSource) ReadRows(begin, end int, dst []float64) error {
	if begin < 0 || end > s.rows || begin > end {
		return fmt.Errorf("core: ReadRows range [%d,%d) out of [0,%d)", begin, end, s.rows)
	}
	if copy(dst, s.words[begin*s.cols:end*s.cols]) != (end-begin)*s.cols {
		return fmt.Errorf("core: ReadRows dst too small")
	}
	return nil
}

// Rows implements dataset.RowSlicer, aliasing the word buffer.
func (s *WordSource) Rows(begin, end int) []float64 {
	return s.words[begin*s.cols : end*s.cols]
}
