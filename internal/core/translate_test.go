package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// pointsType is the k-means data shape: [1..n] Point{coords: [1..dim] real}.
func pointsType(n, dim int) *chapel.Type {
	pt := chapel.RecordType("Point",
		chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, dim)})
	return chapel.ArrayType(pt, 1, n)
}

func makePoints(n, dim int, seed int64) *chapel.Array {
	rng := rand.New(rand.NewSource(seed))
	data := chapel.NewArray(pointsType(n, dim))
	for i := 1; i <= n; i++ {
		c := data.At(i).(*chapel.Record).Field("coords").(*chapel.Array)
		for j := 1; j <= dim; j++ {
			c.SetAt(j, &chapel.Real{Val: float64(rng.Intn(1000))})
		}
	}
	return data
}

func makeCentroids(k, dim int, seed int64) *chapel.Array {
	return makePoints(k, dim, seed)
}

// kmeansClass builds the translator input mirroring the paper's Fig. 3
// k-means reduction class: per point, find the nearest centroid and update
// the reduction object (per-cluster coordinate sums plus a count).
func kmeansClass(k, dim int, centroids *chapel.Array) *ReductionClass {
	return &ReductionClass{
		Name:   "kmeans",
		Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
		Path:   []string{"coords"},
		HotVars: []HotVar{
			{Value: centroids, Path: []string{"coords"}},
		},
		Kernel: func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs) {
			cents := hot[0]
			pt := elem.Row(args.Scratch(0, dim))
			best, bestDist := 1, math.Inf(1)
			for c := 1; c <= k; c++ {
				cc := cents.Row(c, args.Scratch(1, dim))
				var d float64
				for j := 0; j < dim; j++ {
					diff := pt[j] - cc[j]
					d += diff * diff
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			for j := 0; j < dim; j++ {
				args.Accumulate(best-1, j, elem.At(j))
			}
			args.Accumulate(best-1, dim, 1)
		},
	}
}

// kmeansManual computes the same reduction sequentially on boxed data, as
// the reference.
func kmeansManual(data, centroids *chapel.Array, k, dim int) []float64 {
	out := make([]float64, k*(dim+1))
	for i := 1; i <= data.Len(); i++ {
		coords := data.At(i).(*chapel.Record).Field("coords").(*chapel.Array)
		best, bestDist := 1, math.Inf(1)
		for c := 1; c <= k; c++ {
			cc := centroids.At(c).(*chapel.Record).Field("coords").(*chapel.Array)
			var d float64
			for j := 1; j <= dim; j++ {
				diff := coords.At(j).(*chapel.Real).Val - cc.At(j).(*chapel.Real).Val
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		for j := 1; j <= dim; j++ {
			out[(best-1)*(dim+1)+j-1] += coords.At(j).(*chapel.Real).Val
		}
		out[(best-1)*(dim+1)+dim]++
	}
	return out
}

func TestTranslateAllLevelsMatchReference(t *testing.T) {
	const n, k, dim = 500, 5, 3
	data := makePoints(n, dim, 1)
	centroids := makeCentroids(k, dim, 2)
	want := kmeansManual(data, centroids, k, dim)
	for _, opt := range OptLevels() {
		tr, err := Translate(kmeansClass(k, dim, centroids), data, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		for _, threads := range []int{1, 4} {
			eng := freeride.New(freeride.Config{Threads: threads, SplitRows: 64})
			res, err := eng.Run(tr.Spec(), tr.Source())
			if err != nil {
				t.Fatalf("%v/threads=%d: %v", opt, threads, err)
			}
			got := res.Object.Snapshot()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v/threads=%d: cell %d = %v, want %v", opt, threads, i, got[i], want[i])
				}
			}
		}
	}
}

func TestOptLevelStrings(t *testing.T) {
	if OptNone.String() != "generated" || Opt1.String() != "opt-1" || Opt2.String() != "opt-2" || Opt3.String() != "opt-3" {
		t.Fatal("opt level strings")
	}
	if OptLevel(9).String() != "opt(9)" {
		t.Fatal("unknown opt level")
	}
	if len(OptLevels()) != 4 {
		t.Fatal("OptLevels")
	}
}

func TestTranslateErrors(t *testing.T) {
	data := makePoints(10, 2, 1)
	cls := kmeansClass(2, 2, makeCentroids(2, 2, 2))
	if _, err := Translate(nil, data, OptNone); err == nil {
		t.Fatal("nil class: want error")
	}
	if _, err := Translate(&ReductionClass{}, data, OptNone); err == nil {
		t.Fatal("nil kernel: want error")
	}
	// Non-all-real dataset.
	intData := chapel.NewArray(chapel.ArrayType(chapel.IntType(), 1, 4))
	if _, err := Translate(cls, intData, OptNone); err == nil {
		t.Fatal("int dataset: want error")
	}
	// Wrong path.
	bad := kmeansClass(2, 2, makeCentroids(2, 2, 2))
	bad.Path = []string{"nope"}
	if _, err := Translate(bad, data, OptNone); err == nil {
		t.Fatal("bad path: want error")
	}
	// Path resolving to 3 levels.
	deep := chapel.ArrayType(chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, 2), 1, 2), 1, 2)
	deepData := chapel.NewArray(deep)
	cls2 := &ReductionClass{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Kernel: func(*Vec, []*StateVec, *freeride.ReductionArgs) {},
	}
	if _, err := Translate(cls2, deepData, OptNone); err == nil {
		t.Fatal("3-level path: want error")
	}
	// Bad hot variable path.
	badHot := kmeansClass(2, 2, makeCentroids(2, 2, 2))
	badHot.HotVars[0].Path = []string{"nope"}
	for _, opt := range OptLevels() {
		if _, err := Translate(badHot, data, opt); err == nil {
			t.Fatalf("%v: bad hot path: want error", opt)
		}
	}
}

func TestHotVarShapes(t *testing.T) {
	// [1..n] real hot variable (e.g. a weight vector) works at every level
	// and is addressed as n×1.
	weights := chapel.RealArray(2, 4, 8)
	data := chapel.RealArray(1, 1, 1, 1)
	cls := &ReductionClass{
		Name:   "weighted-count",
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		HotVars: []HotVar{
			{Value: weights},
		},
		Kernel: func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs) {
			args.Accumulate(0, 0, elem.At(0)*hot[0].At(1, 2))
		},
	}
	for _, opt := range OptLevels() {
		tr, err := Translate(cls, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		// A flat vector is addressed as one 1×n element.
		if tr.hot[0].Elems() != 1 || tr.hot[0].Width() != 3 {
			t.Fatalf("%v: hot shape %dx%d", opt, tr.hot[0].Elems(), tr.hot[0].Width())
		}
		eng := freeride.New(freeride.Config{Threads: 2, SplitRows: 2})
		res, err := eng.Run(tr.Spec(), tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Object.Get(0, 0); got != 16 { // 4 elems × weight 4
			t.Fatalf("%v: got %v", opt, got)
		}
	}
	// [1..n][1..m] real hot variable (array of arrays).
	matTy := chapel.ArrayType(chapel.ArrayType(chapel.RealType(), 1, 2), 1, 2)
	mat := chapel.NewArray(matTy)
	mat.At(2).(*chapel.Array).SetAt(2, &chapel.Real{Val: 7})
	cls.HotVars = []HotVar{{Value: mat}}
	cls.Kernel = func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs) {
		args.Accumulate(0, 0, hot[0].At(2, 2))
	}
	for _, opt := range OptLevels() {
		tr, err := Translate(cls, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		eng := freeride.New(freeride.Config{Threads: 1})
		res, err := eng.Run(tr.Spec(), tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Object.Get(0, 0); got != 28 { // 4 elems × 7
			t.Fatalf("%v: got %v", opt, got)
		}
	}
}

func TestRefreshHotVars(t *testing.T) {
	// Opt-2 linearizes hot vars; after mutating the boxed source, results
	// must be stale until RefreshHotVars, then correct.
	weights := chapel.RealArray(1)
	data := chapel.RealArray(1, 1)
	cls := &ReductionClass{
		Object:  freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		HotVars: []HotVar{{Value: weights}},
		Kernel: func(elem *Vec, hot []*StateVec, args *freeride.ReductionArgs) {
			args.Accumulate(0, 0, hot[0].At(1, 1))
		},
	}
	tr, err := Translate(cls, data, Opt2)
	if err != nil {
		t.Fatal(err)
	}
	eng := freeride.New(freeride.Config{Threads: 1})
	run := func() float64 {
		res, err := eng.Run(tr.Spec(), tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		return res.Object.Get(0, 0)
	}
	if got := run(); got != 2 {
		t.Fatalf("initial = %v", got)
	}
	weights.SetAt(1, &chapel.Real{Val: 10})
	if got := run(); got != 2 {
		t.Fatalf("stale read should still see old words, got %v", got)
	}
	tr.RefreshHotVars()
	if got := run(); got != 20 {
		t.Fatalf("after refresh = %v", got)
	}
	// At boxed levels the access is live; refresh is a no-op but reads see
	// the new value immediately.
	tr1, err := Translate(cls, data, Opt1)
	if err != nil {
		t.Fatal(err)
	}
	weights.SetAt(1, &chapel.Real{Val: 3})
	res, err := eng.Run(tr1.Spec(), tr1.Source())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Object.Get(0, 0); got != 6 {
		t.Fatalf("boxed live read = %v", got)
	}
	tr1.RefreshHotVars() // no-op, must not panic
}

func TestTranslateParallelLinearizationOption(t *testing.T) {
	data := makePoints(200, 4, 3)
	centroids := makeCentroids(3, 4, 4)
	cls := kmeansClass(3, 4, centroids)
	seq, err := Translate(cls, data, Opt2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TranslateWith(cls, data, Opt2, TranslateOptions{LinearizeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Words() {
		if seq.Words()[i] != par.Words()[i] {
			t.Fatalf("word %d differs", i)
		}
	}
}

func TestWordSource(t *testing.T) {
	words := []float64{1, 2, 3, 4, 5, 6}
	s := NewWordSource(words, 3, 2)
	if s.NumRows() != 3 || s.Cols() != 2 {
		t.Fatal("shape")
	}
	dst := make([]float64, 4)
	if err := s.ReadRows(1, 3, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 3 || dst[3] != 6 {
		t.Fatalf("dst = %v", dst)
	}
	if err := s.ReadRows(-1, 1, dst); err == nil {
		t.Fatal("bad range: want error")
	}
	if err := s.ReadRows(0, 3, make([]float64, 2)); err == nil {
		t.Fatal("short dst: want error")
	}
	if rows := s.Rows(1, 2); &rows[0] != &words[2] {
		t.Fatal("Rows should alias")
	}
	mustPanic(t, "bad shape", func() { NewWordSource(words, 2, 2) })
}

func TestTranslationAccessors(t *testing.T) {
	data := makePoints(10, 2, 5)
	tr, err := Translate(kmeansClass(2, 2, makeCentroids(2, 2, 6)), data, Opt1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Opt() != Opt1 {
		t.Fatal("Opt accessor")
	}
	if len(tr.Words()) != 20 {
		t.Fatalf("words len %d", len(tr.Words()))
	}
	if tr.Meta().Levels != 2 || !tr.Meta().WordUnits() {
		t.Fatal("meta accessor")
	}
	if tr.LinearizeTime < 0 {
		t.Fatal("linearize time")
	}
}

// Property: all three optimization levels produce identical reduction
// objects for random k-means inputs (integer coordinates keep float
// arithmetic exact; the kernel's accumulation order per cell is fixed).
func TestPropertyOptLevelsEquivalent(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw, dimRaw uint8) bool {
		n := int(nRaw%100) + 10
		k := int(kRaw%5) + 1
		dim := int(dimRaw%4) + 1
		data := makePoints(n, dim, seed)
		centroids := makeCentroids(k, dim, seed+1)
		want := kmeansManual(data, centroids, k, dim)
		for _, opt := range OptLevels() {
			tr, err := Translate(kmeansClass(k, dim, centroids), data, opt)
			if err != nil {
				return false
			}
			eng := freeride.New(freeride.Config{Threads: 3, SplitRows: 16})
			res, err := eng.Run(tr.Spec(), tr.Source())
			if err != nil {
				return false
			}
			got := res.Object.Snapshot()
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}
