package core

import (
	"math"
	"strings"
	"testing"

	"chapelfreeride/internal/freeride"
)

// withBlockKernel attaches the fused (opt-3) k-means body to a test class:
// the same distance logic and tie-breaking as kmeansClass's per-element
// kernel, walking the linearized words and the dense centroid block
// directly and accumulating into the worker-local buffer.
func withBlockKernel(cls *ReductionClass, k, dim int) *ReductionClass {
	cls.BlockKernel = func(args *freeride.BlockArgs, view BlockView, hot []*StateVec) error {
		cents, ok := hot[0].Dense()
		if !ok {
			buf := args.Scratch(2, k*dim)
			for c := 1; c <= k; c++ {
				copy(buf[(c-1)*dim:(c-1)*dim+dim], hot[0].Row(c, args.Scratch(1, dim)))
			}
			cents = buf
		}
		acc := args.Acc()
		for i := 0; i < args.NumRows; i++ {
			pt := view.Run(args.Begin + i)
			best, bestDist := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				cc := cents[c*dim : c*dim+dim]
				var d float64
				for j := 0; j < dim; j++ {
					diff := pt[j] - cc[j]
					d += diff * diff
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			for j := 0; j < dim; j++ {
				acc[best*(dim+1)+j] += pt[j]
			}
			acc[best*(dim+1)+dim]++
		}
		return nil
	}
	return cls
}

// TestOpt3FusedMatchesReference: an Opt3 translation of a class with a
// BlockKernel wires Spec.BlockReduction, and the fused execution produces
// the reference result bit for bit across thread counts (integer data).
func TestOpt3FusedMatchesReference(t *testing.T) {
	const n, k, dim = 240, 4, 3
	data := makePoints(n, dim, 1)
	centroids := makeCentroids(k, dim, 2)
	want := kmeansManual(data, centroids, k, dim)
	tr, err := Translate(withBlockKernel(kmeansClass(k, dim, centroids), k, dim), data, Opt3)
	if err != nil {
		t.Fatal(err)
	}
	spec := tr.Spec()
	if spec.BlockReduction == nil {
		t.Fatal("Opt3 translation of a class with a BlockKernel must wire Spec.BlockReduction")
	}
	if spec.Reduction == nil {
		t.Fatal("Opt3 must keep the per-element Reduction as fallback")
	}
	for _, threads := range []int{1, 4} {
		eng := freeride.New(freeride.Config{Threads: threads, SplitRows: 32})
		res, err := eng.Run(spec, tr.Source())
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		got := res.Object.Snapshot()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d: cell %d = %v, want %v", threads, i, got[i], want[i])
			}
		}
		eng.Close()
	}
}

// TestOpt3WithoutBlockKernelFallsBack: classes without a BlockKernel still
// translate at Opt3 but execute with the Opt2 per-element shape, and levels
// below Opt3 never wire the fused callback even when the class declares one.
func TestOpt3WithoutBlockKernelFallsBack(t *testing.T) {
	const k, dim = 3, 2
	data := makePoints(40, dim, 3)
	centroids := makeCentroids(k, dim, 4)
	tr, err := Translate(kmeansClass(k, dim, centroids), data, Opt3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spec().BlockReduction != nil {
		t.Fatal("Opt3 without a BlockKernel must not wire BlockReduction")
	}
	tr2, err := Translate(withBlockKernel(kmeansClass(k, dim, centroids), k, dim), data, Opt2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Spec().BlockReduction != nil {
		t.Fatal("Opt2 must not wire BlockReduction")
	}
}

// TestStateVecDense: the linearized view's dense block agrees with At/Row,
// and boxed views report not-dense.
func TestStateVecDense(t *testing.T) {
	const k, dim = 3, 4
	cents := makeCentroids(k, dim, 5)
	word, err := NewWordStateVec(cents, []string{"coords"})
	if err != nil {
		t.Fatal(err)
	}
	dense, ok := word.Dense()
	if !ok {
		t.Fatal("contiguous word state vec must be dense")
	}
	if len(dense) != k*dim {
		t.Fatalf("dense block has %d cells, want %d", len(dense), k*dim)
	}
	for c := 0; c < k; c++ {
		for j := 0; j < dim; j++ {
			if dense[c*dim+j] != word.At(c+1, j+1) {
				t.Fatalf("dense[%d,%d] = %v, At = %v", c, j, dense[c*dim+j], word.At(c+1, j+1))
			}
		}
	}
	boxed, err := NewBoxedStateVec(cents, []string{"coords"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := boxed.Dense(); ok {
		t.Fatal("boxed state vec must not claim a dense view")
	}
}

// TestGeneratedRowMatchesOpt1Row is the regression test for Vec.Row in
// generated mode: the per-element ComputeIndex evaluations land on exactly
// the contiguous run that opt-1's strength-reduced view walks directly, so
// the materialized values are identical — the two modes differ in cost, not
// result. A divergence here would mean the generated-mode addressing (or
// the strength-reduced base/offset derivation) broke.
func TestGeneratedRowMatchesOpt1Row(t *testing.T) {
	const n, k, dim = 50, 2, 3
	data := makePoints(n, dim, 7)
	tr, err := Translate(kmeansClass(k, dim, makeCentroids(k, dim, 8)), data, OptNone)
	if err != nil {
		t.Fatal(err)
	}
	meta, words := tr.meta, tr.words
	// The opt-1 access constants, exactly as SpecFromWords derives them.
	stride := meta.Stride()
	inner := meta.InnerLen
	u0 := meta.UnitSize[0]
	off0 := meta.UnitOffset[0][meta.Position[0][0]] + meta.LeafOffset
	scratch := make([]float64, inner)
	for i := 0; i < n; i++ {
		gen := Vec{words: words, meta: meta, row: meta.Lo[0] + i}
		got := gen.Row(scratch)
		base := u0*i + off0
		opt1 := Vec{run: words[base : base+inner*stride]}
		want := opt1.Row(nil)
		if len(got) != len(want) {
			t.Fatalf("row %d: generated Row has %d values, opt-1 has %d", i, len(got), len(want))
		}
		for kk := range want {
			if got[kk] != want[kk] {
				t.Fatalf("row %d elem %d: generated %v != opt-1 %v", i, kk, got[kk], want[kk])
			}
			if gen.At(kk) != opt1.At(kk) {
				t.Fatalf("row %d elem %d: generated At %v != opt-1 At %v", i, kk, gen.At(kk), opt1.At(kk))
			}
		}
	}
}

// TestEmitCOpt3 renders the fused shape: a block-granular function with a
// thread-local dense buffer and one accumulate_block flush per split.
func TestEmitCOpt3(t *testing.T) {
	const k, dim = 2, 3
	cls := kmeansClass(k, dim, makeCentroids(k, dim, 9))
	out, err := EmitC(cls, pointsType(10, dim), Opt3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kmeans_block_reduction(block_args_t* args)",
		"double acc[",
		"accumulate_block(args->worker, acc)",
		"linearized_hot_0",
		"no lock, no CAS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EmitC opt-3 output missing %q:\n%s", want, out)
		}
	}
	// Lower levels keep their per-element shapes.
	out2, err := EmitC(cls, pointsType(10, dim), Opt2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "accumulate_block") {
		t.Fatal("opt-2 EmitC must not render the fused flush")
	}
}
