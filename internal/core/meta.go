package core

import (
	"fmt"
	"strings"

	"chapelfreeride/internal/chapel"
)

// Meta is the information collected during linearization that the mapping
// algorithm needs — the right-hand side of the paper's Fig. 6:
//
//	levels                   — number of nested array levels on the access path
//	unitSize[levels]         — element size at each level (innermost last)
//	unitOffset[levels-1][..] — field offsets of the record junction between
//	                           consecutive array levels
//	position[levels-1][..]   — which field the access path selects at each
//	                           junction (second dimension collected as 1,
//	                           as the paper notes for single-path accesses)
//
// plus two implementation fields the paper keeps implicit: Lo[] (the domain
// low bound per level, to convert Chapel's 1-based indices to 0-based) and
// LeafOffset (a trailing field offset when the path ends inside a record
// after the last array level; 0 for the paper's examples).
//
// Sizes and offsets are in bytes; Words converts to 8-byte word units for
// all-real layouts.
type Meta struct {
	Levels     int
	UnitSize   []int
	UnitOffset [][]int
	Position   [][]int
	Lo         []int
	LeafOffset int
	// LeafType is the primitive type the path resolves to.
	LeafType *chapel.Type
	// InnerLen is the domain length of the innermost array level — the
	// length of the contiguous run that opt-1's strength reduction walks.
	InnerLen int
	// wordUnits records whether sizes are in 8-byte words instead of bytes.
	wordUnits bool
}

// MetaFor walks type ty along the given access path and collects the Fig. 6
// metadata. The path lists the record field chosen at each record junction;
// array levels are implicit (each array on the way contributes one level and
// consumes one run-time index). For example, for the paper's
//
//	data: [1..t] B;  B { b1: [1..n] A; b2: int };  A { a1: [1..m] real; a2: int }
//
// MetaFor(dataType, "b1", "a1") describes the access data[i].b1[j].a1[k]
// with levels=3, unitSize={sizeof B, sizeof A, 8}, unitOffset={{0, ...},
// {0, ...}}, position={{0},{0}}, exactly as the figure lists.
//
// Record chains between two array levels fold into a single junction row:
// the first record's offset table is kept and the deeper chain's offset is
// added to the selected entry. A path that ends inside records after the
// last array contributes LeafOffset instead of a junction.
func MetaFor(ty *chapel.Type, path ...string) (*Meta, error) {
	m := &Meta{}
	cur := ty
	pi := 0

	// Pending record junction between the previous array level and the next.
	var pendOffs []int
	pendSel := 0
	pendExtra := 0
	havePend := false
	flushJunction := func() {
		if !havePend {
			// Directly nested arrays: a junction with a single zero offset.
			m.UnitOffset = append(m.UnitOffset, []int{0})
			m.Position = append(m.Position, []int{0})
			return
		}
		row := append([]int(nil), pendOffs...)
		row[pendSel] += pendExtra
		m.UnitOffset = append(m.UnitOffset, row)
		m.Position = append(m.Position, []int{pendSel})
		havePend = false
		pendExtra = 0
	}

	for {
		switch cur.Kind {
		case chapel.KindArray:
			if m.Levels > 0 {
				flushJunction()
			}
			m.UnitSize = append(m.UnitSize, SizeOf(cur.Elem))
			m.Lo = append(m.Lo, cur.Lo)
			m.InnerLen = cur.Len()
			m.Levels++
			cur = cur.Elem
		case chapel.KindRecord:
			if m.Levels == 0 {
				return nil, fmt.Errorf("core: access path must start inside an array type, got %s", ty)
			}
			if pi >= len(path) {
				return nil, fmt.Errorf("core: path %v too short: reached record %s with no field selection",
					path, cur.Name)
			}
			f := cur.FieldIndex(path[pi])
			if f < 0 {
				return nil, fmt.Errorf("core: record %s has no field %q", cur.Name, path[pi])
			}
			offs := FieldOffsets(cur)
			if !havePend {
				pendOffs, pendSel, havePend = offs, f, true
			} else {
				pendExtra += offs[f]
			}
			cur = cur.Fields[f].Type
			pi++
		default: // primitive leaf
			if pi != len(path) {
				return nil, fmt.Errorf("core: path %v has %d unused component(s)", path, len(path)-pi)
			}
			if m.Levels == 0 {
				return nil, fmt.Errorf("core: access path over non-array type %s", ty)
			}
			if havePend {
				m.LeafOffset = pendOffs[pendSel] + pendExtra
			}
			m.LeafType = cur
			return m, nil
		}
	}
}

// ComputeIndex is Algorithm 3: it maps the per-level indices myIndex (given
// in each level's declared domain, e.g. Chapel's 1-based indices) to the
// flat offset of the accessed element in linearized storage.
//
// The recursion follows the paper exactly: at every level but the last the
// contribution is unitSize[i]*myIndex[i] + unitOffset[i][position[i][0]];
// the last level contributes unitSize[i]*myIndex[i].
//
// Panic-free by proof for translated plans: core.Verify bounds every offset
// the loop nest can touch (FRV010) and proves the index map total on the
// split domain (FRV011) before any worker starts, so on the per-element hot
// path these checks only guard direct misuse of the API, never a verified
// translation.
func (m *Meta) ComputeIndex(myIndex ...int) int {
	if len(myIndex) != m.Levels {
		panic(fmt.Sprintf("core: ComputeIndex got %d indices for %d levels", len(myIndex), m.Levels))
	}
	return m.computeIndex(myIndex, 0) + m.LeafOffset
}

func (m *Meta) computeIndex(myIndex []int, i int) int {
	zero := myIndex[i] - m.Lo[i]
	if zero < 0 {
		panic(fmt.Sprintf("core: index %d below domain low %d at level %d", myIndex[i], m.Lo[i], i))
	}
	if i < m.Levels-1 {
		return m.UnitSize[i]*zero + m.UnitOffset[i][m.Position[i][0]] + m.computeIndex(myIndex, i+1)
	}
	return m.UnitSize[i] * zero
}

// BaseIndex computes the offset of the first element of the innermost run
// for the given outer indices (all levels except the innermost). This is
// the opt-1 strength reduction of §IV-C/§V: "the computeIndex function is
// removed from the inner-most loop; the start point for the continuous data
// split is computed before the first iteration". Successive elements of the
// run then live at BaseIndex + k*Stride().
func (m *Meta) BaseIndex(outer ...int) int {
	if len(outer) != m.Levels-1 {
		panic(fmt.Sprintf("core: BaseIndex got %d indices for %d outer levels", len(outer), m.Levels-1))
	}
	idx := make([]int, m.Levels)
	copy(idx, outer)
	idx[m.Levels-1] = m.Lo[m.Levels-1] // first element of the inner run
	return m.ComputeIndex(idx...)
}

// Stride returns the innermost element size — the step between consecutive
// innermost elements after strength reduction.
func (m *Meta) Stride() int { return m.UnitSize[m.Levels-1] }

// WordUnits reports whether the metadata is expressed in 8-byte words.
func (m *Meta) WordUnits() bool { return m.wordUnits }

// Words returns a copy of the metadata with all sizes and offsets divided
// by 8, for use against a []float64 view of the linearized storage. It
// fails unless every size and offset is word-aligned and the leaf is a
// real (AllReal layouts always qualify).
func (m *Meta) Words() (*Meta, error) {
	if m.wordUnits {
		return m, nil
	}
	if m.LeafType == nil || m.LeafType.Kind != chapel.KindReal {
		return nil, fmt.Errorf("core: word view needs a real leaf, have %s", m.LeafType)
	}
	w := &Meta{
		Levels:     m.Levels,
		UnitSize:   make([]int, len(m.UnitSize)),
		UnitOffset: make([][]int, len(m.UnitOffset)),
		Position:   make([][]int, len(m.Position)),
		Lo:         append([]int(nil), m.Lo...),
		LeafType:   m.LeafType,
		InnerLen:   m.InnerLen,
		wordUnits:  true,
	}
	div := func(v int) (int, error) {
		if v%8 != 0 {
			return 0, fmt.Errorf("core: offset/size %d not word-aligned", v)
		}
		return v / 8, nil
	}
	var err error
	for i, v := range m.UnitSize {
		if w.UnitSize[i], err = div(v); err != nil {
			return nil, err
		}
	}
	for i, row := range m.UnitOffset {
		w.UnitOffset[i] = make([]int, len(row))
		for j, v := range row {
			if w.UnitOffset[i][j], err = div(v); err != nil {
				return nil, err
			}
		}
		w.Position[i] = append([]int(nil), m.Position[i]...)
	}
	if w.LeafOffset, err = div(m.LeafOffset); err != nil {
		return nil, err
	}
	return w, nil
}

// String renders the metadata in the style of the paper's Fig. 6.
func (m *Meta) String() string {
	var b strings.Builder
	unit := "bytes"
	if m.wordUnits {
		unit = "words"
	}
	fmt.Fprintf(&b, "levels = %d (%s)\n", m.Levels, unit)
	fmt.Fprintf(&b, "unitSize = %v\n", m.UnitSize)
	fmt.Fprintf(&b, "unitOffset = %v\n", m.UnitOffset)
	fmt.Fprintf(&b, "position = %v\n", m.Position)
	fmt.Fprintf(&b, "lo = %v leafOffset = %d leaf = %s", m.Lo, m.LeafOffset, m.LeafType)
	return b.String()
}
