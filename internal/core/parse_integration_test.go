package core

import (
	"testing"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// TestParsedChapelSourceThroughTranslator drives the full §IV pipeline from
// Chapel source text: parse the declarations, build a boxed value, apply
// Algorithm 1/2 (linearize), Algorithm 3 (map), and verify Fig. 8's
// equivalence on the parsed type.
func TestParsedChapelSourceThroughTranslator(t *testing.T) {
	d, err := chapel.ParseDecls(`
record A { a1: [1..5] real; a2: int; }
record B { b1: [1..4] A;   b2: int; }
var data: [1..3] B;
`)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := d.Var("data")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SizeOf(ty), 3*(4*(5*8+8)+8); got != want {
		t.Fatalf("SizeOf(parsed) = %d, want %d", got, want)
	}

	// Fill and sum through the boxed structure.
	data := chapel.NewArray(ty)
	var want float64
	for i := 1; i <= 3; i++ {
		b := data.At(i).(*chapel.Record)
		for j := 1; j <= 4; j++ {
			a := b.Field("b1").(*chapel.Array).At(j).(*chapel.Record)
			for k := 1; k <= 5; k++ {
				v := float64(i*100 + j*10 + k)
				a.Field("a1").(*chapel.Array).SetAt(k, &chapel.Real{Val: v})
				want += v
			}
		}
	}

	// Sum through the linearized buffer with the mapping algorithm.
	buf := Linearize(data)
	meta, err := MetaFor(ty, "b1", "a1")
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 4; j++ {
			base := meta.BaseIndex(i, j)
			for k := 0; k < meta.InnerLen; k++ {
				got += buf.ReadReal(base + k*meta.Stride())
			}
		}
	}
	if got != want {
		t.Fatalf("mapped sum %v != boxed sum %v", got, want)
	}

	// Round trip back to boxed values.
	back, err := Delinearize(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !chapel.DeepEqual(data, back) {
		t.Fatal("delinearize of parsed-type value diverged")
	}
}

// TestParsedPointTypeRunsOnEngine goes one step further: a dataset typed by
// parsed Chapel source runs through Translate and the FREERIDE engine.
func TestParsedPointTypeRunsOnEngine(t *testing.T) {
	d, err := chapel.ParseDecls(`
record Point { coords: [1..3] real; }
var points: [1..40] Point;
`)
	if err != nil {
		t.Fatal(err)
	}
	ty, err := d.Var("points")
	if err != nil {
		t.Fatal(err)
	}
	data := chapel.NewArray(ty)
	var want float64
	for i := 1; i <= 40; i++ {
		c := data.At(i).(*chapel.Record).Field("coords").(*chapel.Array)
		for j := 1; j <= 3; j++ {
			v := float64(i * j)
			c.SetAt(j, &chapel.Real{Val: v})
			want += v
		}
	}
	cls := &ReductionClass{
		Name:   "sum-all",
		Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
		Path:   []string{"coords"},
		Kernel: func(elem *Vec, _ []*StateVec, args *freeride.ReductionArgs) {
			row := elem.Row(args.Scratch(0, 3))
			args.Accumulate(0, 0, row[0]+row[1]+row[2])
		},
	}
	for _, opt := range OptLevels() {
		tr, err := Translate(cls, data, opt)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		eng := freeride.New(freeride.Config{Threads: 2, SplitRows: 8})
		res, err := eng.Run(tr.Spec(), tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Object.Get(0, 0); got != want {
			t.Fatalf("%v: sum = %v, want %v", opt, got, want)
		}
	}
}
