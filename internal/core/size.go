// Package core implements the paper's primary contribution: the compiler
// transformations that let Chapel reductions invoke the FREERIDE middleware.
//
// It contains the linearization algorithms (Algorithms 1 and 2:
// ComputeLinearizeSize and Linearize), the metadata collected during
// linearization (Fig. 6: levels, unitSize[], unitOffset[][], position[][]),
// the index-mapping algorithm (Algorithm 3: Meta.ComputeIndex, Fig. 8), and
// the translator that assembles FREERIDE reduction specs from Chapel
// reduction classes at three optimization levels — generated (OptNone),
// opt-1 (strength reduction: ComputeIndex hoisted out of the innermost
// loop), and opt-2 (opt-1 plus linearization of frequently-accessed hot
// variables).
//
// Formally (paper §IV-A): with Dv the high-level data view and Ds the dense
// low-level storage, Linearize computes the transformation Ft: Dv → Ds and
// Meta.ComputeIndex the mapping M: Dv → Ds used to apply the original
// operation logic to the linearized storage.
package core

import (
	"fmt"

	"chapelfreeride/internal/chapel"
)

// Primitive slot widths in bytes. Chapel's default int and real are 64-bit;
// enums linearize as their ordinal in a full word; bools as one byte;
// strings as their declared fixed width.
const (
	intSize  = 8
	realSize = 8
	boolSize = 1
	enumSize = 8
)

// SizeOf is the type-level form of Algorithm 1 (computeLinearizeSize): the
// number of bytes the type occupies in linearized storage.
//
// Primitive types map directly (line 2-3 of the algorithm); arrays reduce to
// the element size times the domain length (lines 4-7, with the refinement
// that fixed-shape types need no per-element walk); records sum their
// members (lines 8-11).
func SizeOf(ty *chapel.Type) int {
	switch ty.Kind {
	case chapel.KindInt:
		return intSize
	case chapel.KindReal:
		return realSize
	case chapel.KindBool:
		return boolSize
	case chapel.KindString:
		return ty.MaxLen
	case chapel.KindEnum:
		return enumSize
	case chapel.KindArray:
		return ty.Len() * SizeOf(ty.Elem)
	case chapel.KindRecord:
		size := 0
		for _, f := range ty.Fields {
			size += SizeOf(f.Type)
		}
		return size
	default:
		panic("core: SizeOf of unknown kind " + ty.Kind.String())
	}
}

// ComputeLinearizeSize is Algorithm 1 over a runtime value: the number of
// bytes needed to linearize it. For the fixed-shape types this package
// supports it coincides with SizeOf of the value's type; it exists (and
// recurses over the value) to mirror the paper's presentation.
func ComputeLinearizeSize(v chapel.Value) int {
	switch x := v.(type) {
	case *chapel.Array:
		size := 0
		for _, e := range x.Elems {
			size += ComputeLinearizeSize(e)
		}
		return size
	case *chapel.Record:
		size := 0
		for _, f := range x.Fields {
			size += ComputeLinearizeSize(f)
		}
		return size
	default:
		return SizeOf(v.Type())
	}
}

// ExprLinearizeSize is Algorithm 1 for an iterative expression (the
// `isIterative` branch): the expression's length times its element size.
func ExprLinearizeSize(e chapel.Expr) int {
	return e.Len() * SizeOf(e.ElemType())
}

// FieldOffset returns the byte offset of field index f within the
// linearized layout of record type ty.
func FieldOffset(ty *chapel.Type, f int) int {
	if ty.Kind != chapel.KindRecord {
		panic("core: FieldOffset on non-record " + ty.String())
	}
	if f < 0 || f >= len(ty.Fields) {
		panic(fmt.Sprintf("core: field index %d out of range for %s", f, ty))
	}
	off := 0
	for i := 0; i < f; i++ {
		off += SizeOf(ty.Fields[i].Type)
	}
	return off
}

// FieldOffsets returns the byte offsets of every field of record type ty —
// one row of the paper's unitOffset[][] table.
func FieldOffsets(ty *chapel.Type) []int {
	if ty.Kind != chapel.KindRecord {
		panic("core: FieldOffsets on non-record " + ty.String())
	}
	offs := make([]int, len(ty.Fields))
	off := 0
	for i, f := range ty.Fields {
		offs[i] = off
		off += SizeOf(f.Type)
	}
	return offs
}

// AllReal reports whether every primitive leaf of the type is a real — the
// precondition for viewing linearized storage as 8-byte words and handing it
// to FREERIDE's float-row engine.
func AllReal(ty *chapel.Type) bool {
	switch ty.Kind {
	case chapel.KindReal:
		return true
	case chapel.KindArray:
		return AllReal(ty.Elem)
	case chapel.KindRecord:
		for _, f := range ty.Fields {
			if !AllReal(f.Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
