package mapreduce

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
)

// histogramSpec counts rows per integer bucket (column 0).
func histogramSpec(combine bool) Spec[int, float64] {
	s := Spec[int, float64]{
		Map: func(a *MapArgs, emit func(int, float64)) error {
			for i := 0; i < a.NumRows; i++ {
				emit(int(a.Row(i)[0]), 1)
			}
			return nil
		},
		Reduce: func(_ int, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	if combine {
		s.Combine = s.Reduce
	}
	return s
}

func bucketMatrix(n, buckets int) *dataset.Matrix {
	m := dataset.NewMatrix(n, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % buckets)
	}
	return m
}

func TestHistogram(t *testing.T) {
	m := bucketMatrix(1000, 10)
	for _, workers := range []int{1, 2, 4, 8} {
		e := New[int, float64](Config{Workers: workers, SplitRows: 64})
		out, stats, err := e.Run(histogramSpec(false), dataset.NewMemorySource(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 10 {
			t.Fatalf("workers=%d: %d keys", workers, len(out))
		}
		for k, v := range out {
			if v != 100 {
				t.Fatalf("workers=%d: bucket %d = %v", workers, k, v)
			}
		}
		if stats.EmittedPairs != 1000 || stats.IntermediatePairs != 1000 || stats.Keys != 10 {
			t.Fatalf("stats = %+v", stats)
		}
	}
}

func TestCombinerShrinksIntermediatePairs(t *testing.T) {
	m := bucketMatrix(10000, 5)
	e := New[int, float64](Config{Workers: 4, SplitRows: 128})
	out, stats, err := e.Run(histogramSpec(true), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range out {
		if v != 2000 {
			t.Fatalf("bucket %d = %v", k, v)
		}
	}
	if stats.EmittedPairs != 10000 {
		t.Fatalf("emitted = %d", stats.EmittedPairs)
	}
	// With a combiner each worker contributes at most 5 pairs.
	if stats.IntermediatePairs > 4*5 {
		t.Fatalf("intermediate pairs = %d, want ≤ 20", stats.IntermediatePairs)
	}
}

func TestSumByStringlikeKeyOrdering(t *testing.T) {
	// Keys with holes; check grouping handles non-dense keys.
	m := dataset.NewMatrix(300, 2)
	for i := 0; i < 300; i++ {
		m.Set(i, 0, float64((i%3)*100)) // keys 0, 100, 200
		m.Set(i, 1, float64(i))
	}
	spec := Spec[int, float64]{
		Map: func(a *MapArgs, emit func(int, float64)) error {
			for i := 0; i < a.NumRows; i++ {
				emit(int(a.Row(i)[0]), a.Row(i)[1])
			}
			return nil
		},
		Reduce: func(_ int, vals []float64) float64 {
			var s float64
			for _, v := range vals {
				s += v
			}
			return s
		},
	}
	e := New[int, float64](Config{Workers: 3, SplitRows: 17})
	out, _, err := e.Run(spec, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 0, 100: 0, 200: 0}
	for i := 0; i < 300; i++ {
		want[(i%3)*100] += float64(i)
	}
	for k, v := range want {
		if out[k] != v {
			t.Fatalf("key %d: got %v want %v", k, out[k], v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	src := dataset.NewMemorySource(bucketMatrix(10, 2))
	e := New[int, float64](Config{})
	if _, _, err := e.Run(Spec[int, float64]{}, src); err == nil {
		t.Fatal("missing map/reduce: want error")
	}
	if _, _, err := e.Run(histogramSpec(false), nil); err == nil {
		t.Fatal("nil source: want error")
	}
	boom := errors.New("boom")
	spec := histogramSpec(false)
	spec.Map = func(a *MapArgs, emit func(int, float64)) error { return boom }
	if _, _, err := e.Run(spec, src); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	e := New[int, float64](Config{Workers: 4})
	out, stats, err := e.Run(histogramSpec(false), dataset.NewMemorySource(dataset.NewMatrix(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.Keys != 0 {
		t.Fatalf("out=%v stats=%+v", out, stats)
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{MapTime: 1, SortTime: 2, ReduceTime: 4}
	if s.Total() != 7 {
		t.Fatalf("Total = %v", s.Total())
	}
}

func TestFloat64Keys(t *testing.T) {
	// Generic over any ordered key type, including float64.
	m := dataset.NewMatrix(10, 1)
	for i := range m.Data {
		m.Data[i] = 0.5 * float64(i%2)
	}
	e := New[float64, int](Config{Workers: 2, SplitRows: 3})
	spec := Spec[float64, int]{
		Map: func(a *MapArgs, emit func(float64, int)) error {
			for i := 0; i < a.NumRows; i++ {
				emit(a.Row(i)[0], 1)
			}
			return nil
		},
		Reduce: func(_ float64, vals []int) int { return len(vals) },
	}
	out, _, err := e.Run(spec, dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[0.5] != 5 {
		t.Fatalf("out = %v", out)
	}
}

// Property: result is independent of worker count and split size, and the
// combiner never changes the answer (sum is associative/commutative and the
// data is integral, so float addition is exact).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64, rowsRaw uint16, workersRaw, splitRaw uint8, useCombiner bool) bool {
		rows := int(rowsRaw%1500) + 1
		workers := int(workersRaw%8) + 1
		splitRows := int(splitRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		m := dataset.NewMatrix(rows, 1)
		for i := range m.Data {
			m.Data[i] = float64(rng.Intn(7))
		}
		want := map[int]float64{}
		for _, v := range m.Data {
			want[int(v)]++
		}
		e := New[int, float64](Config{Workers: workers, SplitRows: splitRows})
		out, _, err := e.Run(histogramSpec(useCombiner), dataset.NewMemorySource(m))
		if err != nil {
			return false
		}
		if len(out) != len(want) {
			return false
		}
		for k, v := range want {
			if math.Abs(out[k]-v) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSortPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 100, parallelSortThreshold + 777} {
		for _, workers := range []int{1, 2, 3, 8} {
			pairs := make([]Pair[int, int], n)
			for i := range pairs {
				pairs[i] = Pair[int, int]{Key: rng.Intn(50), Value: i}
			}
			parallelSortPairs(pairs, workers)
			for i := 1; i < len(pairs); i++ {
				if pairs[i].Key < pairs[i-1].Key {
					t.Fatalf("n=%d workers=%d: not sorted at %d", n, workers, i)
				}
			}
			// Every original value survives (it is a permutation).
			seen := make([]bool, n)
			for _, p := range pairs {
				if seen[p.Value] {
					t.Fatalf("n=%d workers=%d: duplicate value %d", n, workers, p.Value)
				}
				seen[p.Value] = true
			}
		}
	}
}

func TestLargeJobUsesParallelSort(t *testing.T) {
	// Enough pairs to cross the parallel-sort threshold; results must be
	// identical to the known histogram.
	n := parallelSortThreshold * 2
	m := bucketMatrix(n, 13)
	e := New[int, float64](Config{Workers: 4, SplitRows: 512})
	out, stats, err := e.Run(histogramSpec(false), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if stats.IntermediatePairs != n {
		t.Fatalf("intermediate pairs = %d", stats.IntermediatePairs)
	}
	for k := 0; k < 13; k++ {
		want := float64(n / 13)
		if float64(n%13) > float64(k) {
			want++
		}
		if out[k] != want {
			t.Fatalf("bucket %d = %v, want %v", k, out[k], want)
		}
	}
}

func TestSpillToDiskMatchesInMemory(t *testing.T) {
	m := bucketMatrix(20000, 97)
	ref, _, err := New[int, float64](Config{Workers: 3, SplitRows: 256}).
		Run(histogramSpec(false), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	e := New[int, float64](Config{
		Workers: 3, SplitRows: 256,
		SpillPairs: 512, SpillDir: t.TempDir(),
	})
	out, stats, err := e.Run(histogramSpec(false), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRuns == 0 || stats.SpilledPairs == 0 {
		t.Fatalf("expected spills, stats = %+v", stats)
	}
	if len(out) != len(ref) {
		t.Fatalf("key count %d != %d", len(out), len(ref))
	}
	for k, v := range ref {
		if out[k] != v {
			t.Fatalf("bucket %d: %v != %v", k, out[k], v)
		}
	}
}

func TestCombineOnSpillAvoidsDisk(t *testing.T) {
	// Few distinct keys: the combiner collapses the buffer below the
	// budget on every check, so nothing reaches disk.
	m := bucketMatrix(20000, 5)
	dir := t.TempDir()
	e := New[int, float64](Config{
		Workers: 2, SplitRows: 256,
		SpillPairs: 64, SpillDir: dir,
	})
	out, stats, err := e.Run(histogramSpec(true), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRuns != 0 {
		t.Fatalf("combiner should have prevented spills: %+v", stats)
	}
	for k := 0; k < 5; k++ {
		if out[k] != 4000 {
			t.Fatalf("bucket %d = %v", k, out[k])
		}
	}
	// No stray run files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestSpillWithCombinerStillSpillsManyKeys(t *testing.T) {
	// Many distinct keys defeat the combiner; spills happen, cleanup runs.
	m := bucketMatrix(30000, 5000)
	dir := t.TempDir()
	e := New[int, float64](Config{
		Workers: 2, SplitRows: 512,
		SpillPairs: 1000, SpillDir: dir,
	})
	out, stats, err := e.Run(histogramSpec(true), dataset.NewMemorySource(m))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRuns == 0 {
		t.Fatalf("expected spills with 5000 keys: %+v", stats)
	}
	if out[0] != 6 { // 30000/5000
		t.Fatalf("bucket 0 = %v", out[0])
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("run files not cleaned up: %v", entries)
	}
}
