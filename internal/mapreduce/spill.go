package mapreduce

import (
	"bufio"
	"cmp"
	"container/heap"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// Spill support: when a map worker's intermediate pair buffer exceeds the
// configured budget, the worker sorts it and writes it to a temporary run
// file, Hadoop-style; the sort phase then merge-streams the runs. This
// makes the Map-Reduce baseline faithful to the behaviour the paper
// contrasts FREERIDE against: "the need for storage of intermediate (key,
// value) pairs, which can require a large amount of memory" (§III-A) — and
// beyond memory, disk.
//
// Runs are gob streams of sorted Pair values. Spilling is per map worker;
// pairs still resident at the end of the map phase form one final
// in-memory run each.

// spillWriter accumulates pairs for one worker and spills sorted runs.
type spillWriter[K cmp.Ordered, V any] struct {
	budget  int // max buffered pairs before a spill; <=0 disables spilling
	dir     string
	combine func(K, []V) V // optional combine-on-spill, Hadoop-style
	buf     []Pair[K, V]
	runs    []string
	spilled int
	err     error
}

func newSpillWriter[K cmp.Ordered, V any](budgetPairs int, dir string, combine func(K, []V) V) *spillWriter[K, V] {
	return &spillWriter[K, V]{budget: budgetPairs, dir: dir, combine: combine}
}

// add buffers one pair, spilling when the budget is exceeded.
func (w *spillWriter[K, V]) add(p Pair[K, V]) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, p)
	if w.budget > 0 && len(w.buf) >= w.budget {
		// Combine-on-spill first: if the combiner frees enough space, the
		// spill is avoided entirely.
		if w.combine != nil {
			w.buf = combineLocal(w.buf, w.combine)
			if len(w.buf) < w.budget {
				return
			}
		}
		w.err = w.spill()
	}
}

// spill sorts the buffer and writes it as a run file.
func (w *spillWriter[K, V]) spill() error {
	if len(w.buf) == 0 {
		return nil
	}
	sort.SliceStable(w.buf, func(i, j int) bool { return w.buf[i].Key < w.buf[j].Key })
	w.spilled += len(w.buf)
	f, err := os.CreateTemp(w.dir, "mr-spill-*.run")
	if err != nil {
		return fmt.Errorf("mapreduce: spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	enc := gob.NewEncoder(bw)
	for _, p := range w.buf {
		if err := enc.Encode(p); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("mapreduce: spill encode: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("mapreduce: spill flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("mapreduce: spill close: %w", err)
	}
	w.runs = append(w.runs, f.Name())
	w.buf = w.buf[:0]
	return nil
}

// finish returns the remaining in-memory pairs (sorted, combined when a
// combiner is set) and the run files.
func (w *spillWriter[K, V]) finish() ([]Pair[K, V], []string, error) {
	if w.err != nil {
		w.cleanup()
		return nil, nil, w.err
	}
	if w.combine != nil {
		w.buf = combineLocal(w.buf, w.combine)
	}
	sort.SliceStable(w.buf, func(i, j int) bool { return w.buf[i].Key < w.buf[j].Key })
	return w.buf, w.runs, nil
}

// cleanup removes any run files.
func (w *spillWriter[K, V]) cleanup() {
	for _, r := range w.runs {
		os.Remove(r)
	}
	w.runs = nil
}

// runCursor streams one sorted run (file-backed or in-memory).
type runCursor[K cmp.Ordered, V any] struct {
	// in-memory
	mem []Pair[K, V]
	idx int
	// file-backed
	f   *os.File
	dec *gob.Decoder

	cur  Pair[K, V]
	done bool
}

func newMemCursor[K cmp.Ordered, V any](mem []Pair[K, V]) *runCursor[K, V] {
	c := &runCursor[K, V]{mem: mem}
	c.advance()
	return c
}

func newFileCursor[K cmp.Ordered, V any](path string) (*runCursor[K, V], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c := &runCursor[K, V]{f: f, dec: gob.NewDecoder(bufio.NewReaderSize(f, 1<<16))}
	c.advance()
	return c, nil
}

// advance loads the next pair, setting done at end of run.
func (c *runCursor[K, V]) advance() {
	if c.dec != nil {
		var p Pair[K, V]
		if err := c.dec.Decode(&p); err != nil {
			c.done = true
			if c.f != nil {
				c.f.Close()
				c.f = nil
			}
			if err != io.EOF {
				// Corrupt run: surface by truncation; the job-level test
				// coverage keeps this path honest.
				return
			}
			return
		}
		c.cur = p
		return
	}
	if c.idx >= len(c.mem) {
		c.done = true
		return
	}
	c.cur = c.mem[c.idx]
	c.idx++
}

// cursorHeap is a min-heap of run cursors by current key.
type cursorHeap[K cmp.Ordered, V any] []*runCursor[K, V]

func (h cursorHeap[K, V]) Len() int           { return len(h) }
func (h cursorHeap[K, V]) Less(i, j int) bool { return h[i].cur.Key < h[j].cur.Key }
func (h cursorHeap[K, V]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap[K, V]) Push(x any)        { *h = append(*h, x.(*runCursor[K, V])) }
func (h *cursorHeap[K, V]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// mergeRunsStreaming k-way merges sorted runs into a single sorted slice.
func mergeRunsStreaming[K cmp.Ordered, V any](memRuns [][]Pair[K, V], fileRuns []string, total int) ([]Pair[K, V], error) {
	h := &cursorHeap[K, V]{}
	for _, m := range memRuns {
		if c := newMemCursor(m); !c.done {
			*h = append(*h, c)
		}
	}
	for _, path := range fileRuns {
		c, err := newFileCursor[K, V](path)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: open run: %w", err)
		}
		if !c.done {
			*h = append(*h, c)
		}
	}
	heap.Init(h)
	out := make([]Pair[K, V], 0, total)
	for h.Len() > 0 {
		c := (*h)[0]
		out = append(out, c.cur)
		c.advance()
		if c.done {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out, nil
}
