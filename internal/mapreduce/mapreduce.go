// Package mapreduce implements a Phoenix-style in-memory Map-Reduce runtime
// for multicore machines — the baseline processing structure on the
// right-hand side of Fig. 4 in the paper.
//
// Where FREERIDE fuses map and reduce into one step over an explicit
// reduction object, Map-Reduce processes all data elements in the map step,
// materializes intermediate (key, value) pairs, sorts and groups them by
// key, and only then reduces. The sort/group/shuffle and the intermediate
// pair storage are exactly the overheads the paper credits FREERIDE with
// avoiding; Stats exposes them so benchmarks can show the difference.
//
// The engine is generic over ordered keys and arbitrary values and supports
// an optional combiner that pre-reduces pairs inside each map worker.
package mapreduce

import (
	"cmp"
	"errors"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/sched"
)

// Config controls the runtime's parallel execution. The zero value runs with
// GOMAXPROCS map/reduce workers and 4096-row map splits.
type Config struct {
	// Workers is the number of map (and reduce) workers. Defaults to
	// GOMAXPROCS(0).
	Workers int
	// SplitRows is the number of rows per map split. Defaults to 4096.
	SplitRows int
	// SpillPairs bounds each map worker's in-memory intermediate pairs:
	// when a worker's buffer reaches this count it is sorted (combined
	// first, when a combiner is set) and spilled to a temporary run file,
	// Hadoop-style; the sort phase merge-streams the runs. 0 disables
	// spilling (fully in-memory).
	SpillPairs int
	// SpillDir is where run files go; defaults to the OS temp directory.
	SpillDir string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SplitRows < 1 {
		c.SplitRows = 4096
	}
	return c
}

// MapArgs hands one split of the input to a map function. It reuses the
// FREERIDE ReductionArgs row layout so the same workload code can drive
// either runtime.
type MapArgs struct {
	// Data holds the split's rows, row-major.
	Data []float64
	// NumRows is the number of rows in the split.
	NumRows int
	// Cols is the number of features per row.
	Cols int
	// Begin is the global index of the first row.
	Begin int
}

// Row returns row i of the split.
func (a *MapArgs) Row(i int) []float64 { return a.Data[i*a.Cols : (i+1)*a.Cols] }

// Pair is an intermediate (key, value) pair emitted by the map phase.
type Pair[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Spec describes one Map-Reduce job.
type Spec[K cmp.Ordered, V any] struct {
	// Map processes one split, emitting intermediate pairs. Required.
	Map func(args *MapArgs, emit func(K, V)) error
	// Reduce folds all values of one key into a single value. Required.
	Reduce func(key K, values []V) V
	// Combine optionally pre-reduces pairs inside each map worker before
	// the sort phase, shrinking intermediate state (a standard Map-Reduce
	// optimization; Hadoop's combiner).
	Combine func(key K, values []V) V
}

// Stats is the timing and volume breakdown of a job.
type Stats struct {
	// MapTime is the wall time of the parallel map phase.
	MapTime time.Duration
	// SortTime covers sorting and grouping intermediate pairs — the cost
	// FREERIDE's design avoids.
	SortTime time.Duration
	// ReduceTime is the wall time of the parallel reduce phase.
	ReduceTime time.Duration
	// IntermediatePairs counts pairs entering the sort phase (after the
	// combiner, if any) — the intermediate storage the paper calls out.
	IntermediatePairs int
	// EmittedPairs counts pairs emitted by map before combining.
	EmittedPairs int
	// Keys is the number of distinct keys reduced.
	Keys int
	// SpilledRuns counts run files written to disk (Config.SpillPairs).
	SpilledRuns int
	// SpilledPairs counts pairs that went through disk.
	SpilledPairs int
}

// Total returns the sum of all phase times.
func (s Stats) Total() time.Duration { return s.MapTime + s.SortTime + s.ReduceTime }

// Engine executes Map-Reduce jobs over data sources.
type Engine[K cmp.Ordered, V any] struct {
	cfg Config
}

// New creates an engine with the given configuration.
func New[K cmp.Ordered, V any](cfg Config) *Engine[K, V] {
	return &Engine[K, V]{cfg: cfg.withDefaults()}
}

// Run executes the job and returns the reduced value per key.
func (e *Engine[K, V]) Run(spec Spec[K, V], src dataset.Source) (map[K]V, Stats, error) {
	var stats Stats
	if spec.Map == nil || spec.Reduce == nil {
		return nil, stats, errors.New("mapreduce: Spec.Map and Spec.Reduce are required")
	}
	if src == nil {
		return nil, stats, errors.New("mapreduce: nil data source")
	}
	cfg := e.cfg

	// Map phase: workers pull splits and buffer pairs locally.
	t0 := time.Now()
	units := (src.NumRows() + cfg.SplitRows - 1) / cfg.SplitRows
	splits := freeride.DefaultSplitter(src.NumRows(), units)
	s := sched.New(sched.Dynamic, len(splits), cfg.Workers, 1)
	perWorker := make([][]Pair[K, V], cfg.Workers)
	perWorkerRuns := make([][]string, cfg.Workers)
	spillErrs := make([]error, cfg.Workers)
	emitted := make([]int, cfg.Workers)
	spilledPairs := make([]int, cfg.Workers)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	slicer, hasSlicer := src.(dataset.RowSlicer)
	cols := src.Cols()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []float64
			var local []Pair[K, V]
			var spiller *spillWriter[K, V]
			var emit func(K, V)
			if cfg.SpillPairs > 0 {
				spiller = newSpillWriter[K, V](cfg.SpillPairs, cfg.SpillDir, spec.Combine)
				emit = func(k K, v V) {
					spiller.add(Pair[K, V]{Key: k, Value: v})
					emitted[w]++
				}
				defer func() {
					mem, runs, err := spiller.finish()
					if err != nil {
						spillErrs[w] = err
						return
					}
					perWorker[w] = mem
					perWorkerRuns[w] = runs
					spilledPairs[w] = spiller.spilled
				}()
			} else {
				emit = func(k K, v V) {
					local = append(local, Pair[K, V]{Key: k, Value: v})
					emitted[w]++
				}
			}
			args := MapArgs{Cols: cols}
			for {
				ci, ok := s.Next(w)
				if !ok {
					break
				}
				for si := ci.Begin; si < ci.End; si++ {
					sp := splits[si]
					if hasSlicer {
						args.Data = slicer.Rows(sp.Begin, sp.End)
					} else {
						need := sp.Len() * cols
						if cap(buf) < need {
							buf = make([]float64, need)
						}
						buf = buf[:need]
						if err := src.ReadRows(sp.Begin, sp.End, buf); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
						args.Data = buf
					}
					args.NumRows = sp.Len()
					args.Begin = sp.Begin
					if err := spec.Map(&args, emit); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}
			if spiller == nil {
				if spec.Combine != nil {
					local = combineLocal(local, spec.Combine)
				}
				perWorker[w] = local
			}
		}(w)
	}
	wg.Wait()
	stats.MapTime = time.Since(t0)
	cleanupRuns := func() {
		for _, runs := range perWorkerRuns {
			for _, r := range runs {
				os.Remove(r)
			}
		}
	}
	if firstErr != nil {
		cleanupRuns()
		return nil, stats, firstErr
	}
	for _, err := range spillErrs {
		if err != nil {
			cleanupRuns()
			return nil, stats, err
		}
	}
	for _, n := range emitted {
		stats.EmittedPairs += n
	}
	for w := range perWorkerRuns {
		stats.SpilledRuns += len(perWorkerRuns[w])
		stats.SpilledPairs += spilledPairs[w]
	}

	// Sort/group phase: concatenate worker buffers and sort by key — the
	// step Fig. 4 labels "Sort (i,val) pairs using i". Large pair sets are
	// sorted with a parallel merge sort, as Phoenix does.
	t0 = time.Now()
	var all []Pair[K, V]
	total := 0
	for _, p := range perWorker {
		total += len(p)
	}
	if stats.SpilledRuns > 0 {
		// Disk runs exist: k-way merge the per-worker memory runs (already
		// sorted by finish) with the spilled files.
		var fileRuns []string
		for _, runs := range perWorkerRuns {
			fileRuns = append(fileRuns, runs...)
		}
		merged, err := mergeRunsStreaming(perWorker, fileRuns, total+stats.SpilledPairs)
		cleanupRuns()
		if err != nil {
			return nil, stats, err
		}
		all = merged
		stats.IntermediatePairs = len(all)
	} else {
		all = make([]Pair[K, V], 0, total)
		for _, p := range perWorker {
			all = append(all, p...)
		}
		stats.IntermediatePairs = len(all)
		parallelSortPairs(all, cfg.Workers)
	}
	// Group into runs of equal key.
	type group struct {
		key    K
		values []V
	}
	var groups []group
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].Key == all[i].Key {
			j++
		}
		vals := make([]V, 0, j-i)
		for k := i; k < j; k++ {
			vals = append(vals, all[k].Value)
		}
		groups = append(groups, group{key: all[i].Key, values: vals})
		i = j
	}
	stats.SortTime = time.Since(t0)
	stats.Keys = len(groups)

	// Reduce phase: workers pull key groups.
	t0 = time.Now()
	out := make(map[K]V, len(groups))
	var outMu sync.Mutex
	rs := sched.New(sched.Dynamic, len(groups), cfg.Workers, 4)
	wg = sync.WaitGroup{}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ci, ok := rs.Next(w)
				if !ok {
					return
				}
				for gi := ci.Begin; gi < ci.End; gi++ {
					g := groups[gi]
					v := spec.Reduce(g.key, g.values)
					outMu.Lock()
					out[g.key] = v
					outMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	stats.ReduceTime = time.Since(t0)
	return out, stats, nil
}

// parallelSortThreshold is the pair count below which a sequential sort is
// cheaper than forking workers.
const parallelSortThreshold = 1 << 13

// parallelSortPairs sorts pairs by key using per-chunk sorts followed by
// pairwise merge rounds. Within a key, value order is unspecified (it
// already depends on map-worker scheduling), matching the Map-Reduce
// contract that reducers see an unordered value bag.
func parallelSortPairs[K cmp.Ordered, V any](pairs []Pair[K, V], workers int) {
	n := len(pairs)
	if workers < 2 || n < parallelSortThreshold {
		sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
		return
	}
	// Chunk bounds.
	chunks := workers
	bounds := make([]int, chunks+1)
	for i := 0; i <= chunks; i++ {
		bounds[i] = i * n / chunks
	}
	var wg sync.WaitGroup
	for i := 0; i < chunks; i++ {
		lo, hi := bounds[i], bounds[i+1]
		wg.Add(1)
		go func(s []Pair[K, V]) {
			defer wg.Done()
			sort.Slice(s, func(a, b int) bool { return s[a].Key < s[b].Key })
		}(pairs[lo:hi])
	}
	wg.Wait()
	// Pairwise merge rounds into a scratch buffer, ping-ponging.
	src, dst := pairs, make([]Pair[K, V], n)
	runs := bounds
	for len(runs) > 2 {
		nextRuns := []int{0}
		var mwg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			lo, mid, hi := runs[i], runs[i+1], runs[i+2]
			nextRuns = append(nextRuns, hi)
			mwg.Add(1)
			go func(lo, mid, hi int) {
				defer mwg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
		}
		if len(runs)%2 == 0 { // odd number of runs: copy the tail through
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			copy(dst[lo:hi], src[lo:hi])
			nextRuns = append(nextRuns, hi)
		}
		mwg.Wait()
		src, dst = dst, src
		runs = nextRuns
	}
	if &src[0] != &pairs[0] {
		copy(pairs, src)
	}
}

// mergeRuns merges two sorted runs into out (len(out) == len(a)+len(b)).
func mergeRuns[K cmp.Ordered, V any](out, a, b []Pair[K, V]) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Key < a[i].Key {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// combineLocal applies the combiner to one worker's pair buffer: sort,
// group, reduce each group to a single pair.
func combineLocal[K cmp.Ordered, V any](pairs []Pair[K, V], combine func(K, []V) V) []Pair[K, V] {
	if len(pairs) == 0 {
		return pairs
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	out := pairs[:0]
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].Key == pairs[i].Key {
			j++
		}
		vals := make([]V, j-i)
		for k := i; k < j; k++ {
			vals[k-i] = pairs[k].Value
		}
		out = append(out, Pair[K, V]{Key: pairs[i].Key, Value: combine(pairs[i].Key, vals)})
		i = j
	}
	return out
}
