package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram. The engine's latency distributions span
// five orders of magnitude (a microsecond split read to a multi-second
// cluster pass), so buckets are powers of two over seconds: the first finite
// upper bound is 2^histMinExp s (≈ 1 µs) and the last 2^histMaxExp s (256 s),
// with one overflow (+Inf) bucket. Observations are two atomic adds — cheap
// enough to record per split on the engine hot path — and quantiles are
// extracted from the bucket counts with at most a factor-of-two error, which
// is what p50/p99 dashboards and the auto-tuner need (orders of magnitude,
// not nanosecond precision).
const (
	histMinExp = -20 // first finite bucket bound: 2^-20 s ≈ 0.95 µs
	histMaxExp = 8   // last finite bucket bound: 2^8 s = 256 s
	// histBuckets counts the finite buckets plus the +Inf overflow bucket.
	histBuckets = histMaxExp - histMinExp + 2
)

// histBounds holds the finite bucket upper bounds in seconds, index-aligned
// with Histogram.counts; the final bucket is +Inf and has no entry here.
var histBounds = func() [histBuckets - 1]float64 {
	var b [histBuckets - 1]float64
	for i := range b {
		b[i] = math.Ldexp(1, histMinExp+i)
	}
	return b
}()

// Histogram is a fixed-shape, log-bucketed distribution of non-negative
// values (seconds). All methods are safe for concurrent use, and a nil
// *Histogram is a valid no-op receiver so call sites never need nil checks.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// bucketIndex returns the index of the smallest bucket whose upper bound
// is >= v.
func bucketIndex(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	// v = frac * 2^exp with frac in [0.5, 1): the smallest power-of-two
	// bound >= v is 2^(exp-1) exactly when frac == 0.5, 2^exp otherwise.
	frac, exp := math.Frexp(v)
	if frac == 0.5 {
		exp--
	}
	idx := exp - histMinExp
	if idx >= histBuckets {
		return histBuckets - 1 // +Inf bucket
	}
	return idx
}

// Observe records one value. Negative and NaN values are clamped into the
// first bucket so a clock hiccup never corrupts the distribution.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// State reads the histogram's current bucket counts, total count, and sum.
func (h *Histogram) State() HistState {
	var s HistState
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of everything observed so
// far; see HistState.Quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.State().Quantile(q) }

// HistState is one reading of a Histogram: per-bucket counts (index-aligned
// with Buckets()), total observation count, and value sum. States taken from
// the same histogram can be subtracted to scope a distribution to an
// interval (a benchmark experiment, one service window).
type HistState struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    float64
}

// Sub returns the distribution observed between prev and s (s - prev,
// element-wise). Both states must come from the same histogram, s after prev.
func (s HistState) Sub(prev HistState) HistState {
	out := HistState{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return out
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (0 <= q <= 1) — a conservative estimate within one power of
// two of the true value. Edge cases are pinned by tests and part of the
// contract:
//
//   - empty state (Count == 0): returns 0, whatever q is
//   - q <= 0: clamps to the first observation's bucket bound (rank 1),
//     never 0 — so p0 of a non-empty distribution is a real bound
//   - q >= 1 (and any q > 1, which clamps to 1): the largest observation's
//     bucket bound
//   - a single observation: every q returns that observation's bucket bound
//   - observations in the +Inf overflow bucket report the largest finite
//     bound (256 s) rather than +Inf, keeping dashboards finite
func (s HistState) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i >= len(histBounds) {
				return histBounds[len(histBounds)-1]
			}
			return histBounds[i]
		}
	}
	return histBounds[len(histBounds)-1]
}

// Buckets returns the finite bucket upper bounds in seconds (the final,
// +Inf bucket is implicit).
func Buckets() []float64 {
	out := make([]float64, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// Histogram returns the histogram registered under name+labels, creating
// and registering it on first use, mirroring Registry.Counter. Histograms
// are rendered in the Prometheus exposition as a classic histogram family
// (<name>_bucket{le="..."} cumulative counts, <name>_sum, <name>_count).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok && m.h != nil {
		return m.h
	}
	m := &metric{family: name, labels: ls, help: help, h: &Histogram{}}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m.h
}

// FindHistogram returns the histogram registered under name+labels, or nil
// when no such histogram exists. Like Registry.Value it never creates
// metrics, so it is safe to probe from reports and guards.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		return m.h
	}
	return nil
}

// HistSample is one histogram reading taken by HistSnapshot.
type HistSample struct {
	// Name is the metric family name.
	Name string
	// Labels is the rendered label set ({k="v",...}) or "".
	Labels string
	// Help is the family's help text.
	Help string
	// State is the histogram reading.
	State HistState
}

// HistSnapshot reads every registered histogram, sorted by family name then
// label set (the histogram counterpart of Snapshot).
func (r *Registry) HistSnapshot() []HistSample {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		if m.h != nil {
			ms = append(ms, m)
		}
	}
	r.mu.Unlock()
	out := make([]HistSample, 0, len(ms))
	for _, m := range ms {
		out = append(out, HistSample{Name: m.family, Labels: m.labels, Help: m.help, State: m.h.State()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}
