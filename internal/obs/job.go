package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Job-scoped observability. Process-wide counters answer "what has this
// process done since it started"; a service multiplexing concurrent jobs
// onto shared engine sessions also needs "what did job N cost, exactly". A
// JobID is minted per engine submission (NextJobID), carried through the run
// (RunContext → trace → event log), and every per-job increment is recorded
// twice: once into the global registry and once into the job's JobMetrics —
// so concurrent jobs on one session never blur into each other's deltas.
// CounterSnapshot/Diff give the same interval semantics over the whole
// registry for callers that own the process (benchmarks, tests).

// JobID identifies one engine or cluster submission. IDs are process-unique
// and monotonically increasing; 0 means "no job attributed".
type JobID uint64

var jobIDs atomic.Uint64

// NextJobID mints a process-unique job id.
func NextJobID() JobID { return JobID(jobIDs.Add(1)) }

// MetricDelta is one named counter delta attributed to a job (or shipped
// from a cluster node). Fields are exported so deltas cross the cluster's
// gob mesh as-is.
type MetricDelta struct {
	// Name is the metric family name.
	Name string
	// Labels is the structured label set (may be empty).
	Labels []Label
	// Value is the counted delta.
	Value int64
}

// Key returns the delta's registry-style key: family name plus rendered
// label set.
func (d MetricDelta) Key() string { return d.Name + renderLabels(d.Labels) }

// JobMetrics collects one job's exact counter deltas. The engine routes
// each per-job increment here in addition to the global counter; Deltas and
// Snapshot read them back. All methods are safe for concurrent use and a
// nil *JobMetrics is a valid no-op receiver, so recording sites never
// branch.
type JobMetrics struct {
	id JobID

	mu sync.Mutex
	ds []MetricDelta
	// keys caches ds[i].Key() so the Add scan and the Deltas sort compare
	// without re-concatenating name+labels per probe (the engine's alloc
	// guards count every pass allocation).
	keys []string
}

// NewJobMetrics creates an empty per-job counter set.
func NewJobMetrics(id JobID) *JobMetrics { return &JobMetrics{id: id} }

// ID reports the job this set is scoped to (0 for a nil receiver).
func (j *JobMetrics) ID() JobID {
	if j == nil {
		return 0
	}
	return j.id
}

// Add accumulates n into the job's delta for name+labels. The entry count is
// small and bounded (one per engine counter family), so lookup is a linear
// scan — no map allocation on the per-pass path.
func (j *JobMetrics) Add(name string, n int64, labels ...Label) {
	if j == nil || n == 0 {
		return
	}
	key := name
	if len(labels) > 0 {
		key = name + renderLabels(labels)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, k := range j.keys {
		if k == key {
			j.ds[i].Value += n
			return
		}
	}
	j.ds = append(j.ds, MetricDelta{Name: name, Labels: labels, Value: n})
	j.keys = append(j.keys, key)
}

// Deltas returns the job's counter deltas sorted by key, ready to attach to
// a Result, ship over the cluster mesh, or feed the auto-tuner.
func (j *JobMetrics) Deltas() []MetricDelta {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]MetricDelta, len(j.ds))
	keys := make([]string, len(j.keys))
	copy(out, j.ds)
	copy(keys, j.keys)
	j.mu.Unlock()
	sort.Sort(&deltasByKey{ds: out, keys: keys})
	return out
}

// deltasByKey sorts deltas by their cached keys without re-rendering them.
type deltasByKey struct {
	ds   []MetricDelta
	keys []string
}

func (s *deltasByKey) Len() int           { return len(s.ds) }
func (s *deltasByKey) Less(a, b int) bool { return s.keys[a] < s.keys[b] }
func (s *deltasByKey) Swap(a, b int) {
	s.ds[a], s.ds[b] = s.ds[b], s.ds[a]
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
}

// Snapshot returns the job's deltas as a CounterSnapshot, so job-scoped and
// registry-scoped readings diff with the same API.
func (j *JobMetrics) Snapshot() CounterSnapshot {
	ds := j.Deltas()
	out := make(CounterSnapshot, len(ds))
	for _, d := range ds {
		out[d.Key()] = d.Value
	}
	return out
}

// CounterSnapshot is a point-in-time reading of counters, keyed by family
// name plus rendered label set.
type CounterSnapshot map[string]int64

// CounterSnapshot reads every registered counter (gauges and histograms are
// excluded: deltas of instantaneous or bucketed readings have no counter
// semantics).
func (r *Registry) CounterSnapshot() CounterSnapshot {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	out := make(CounterSnapshot, len(ms))
	for _, m := range ms {
		if m.c != nil {
			out[m.family+m.labels] = m.c.Value()
		}
	}
	return out
}

// Diff returns the counters that changed since prev as key → delta. Counters
// absent from prev (registered since) diff against zero.
func (s CounterSnapshot) Diff(prev CounterSnapshot) CounterSnapshot {
	out := CounterSnapshot{}
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// AddDeltas folds shipped counter deltas into the registry under
// prefix+Name with extra labels appended — the coordinator-side publication
// of per-node counters (prefix "cluster_node_", extra label node="N"). The
// prefix keeps the node-attributed view a separate family from the
// process-wide counters the in-process simulation also increments, so sums
// over either family never double-count.
func (r *Registry) AddDeltas(prefix, help string, deltas []MetricDelta, extra ...Label) {
	for _, d := range deltas {
		labels := make([]Label, 0, len(d.Labels)+len(extra))
		labels = append(labels, d.Labels...)
		labels = append(labels, extra...)
		//frds:vet-ignore obscount -- one registration per shipped delta per cluster pass (not a hot loop); repeats dedupe to a registry map hit
		r.Counter(prefix+d.Name, help, labels...).Add(d.Value)
	}
}

// NodeSpans is one node's contribution to a merged cluster timeline: the
// spans its engine pass recorded, the node id to attribute them to, the
// offset of that pass's start on the coordinator's clock, and the
// coordinator span to parent the node's root spans under.
type NodeSpans struct {
	// Node is the node id the spans ran on.
	Node int
	// Offset is the node pass's start relative to the coordinator trace's
	// start; node-local span offsets are re-based by it.
	Offset time.Duration
	// Parent is the coordinator span id the node's root spans nest under
	// (0 to keep them roots).
	Parent int64
	// Spans are the node pass's records, with node-local ids and offsets.
	Spans []SpanRecord
}

// MergeNodeSpans builds one node-attributed timeline from the coordinator's
// own spans plus each node's shipped spans: node span ids are re-based past
// the largest id in use so they stay unique, offsets move onto the
// coordinator clock, parents are preserved within a node (roots re-parent to
// the node's coordinator span), and every node span gets its node id. The
// result is sorted like Trace.Records.
func MergeNodeSpans(coordinator []SpanRecord, nodes []NodeSpans) []SpanRecord {
	out := make([]SpanRecord, 0, len(coordinator))
	var maxID int64
	for _, r := range coordinator {
		if r.ID > maxID {
			maxID = r.ID
		}
		out = append(out, r)
	}
	for _, n := range nodes {
		base := maxID
		for _, r := range n.Spans {
			if base+r.ID > maxID {
				maxID = base + r.ID
			}
			r.ID += base
			if r.Parent != 0 {
				r.Parent += base
			} else {
				r.Parent = n.Parent
			}
			r.Start += n.Offset
			r.Node = n.Node
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}
