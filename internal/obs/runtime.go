package obs

import (
	"runtime"
	"sync"
	"time"
)

// Go runtime health gauges, registered alongside the engine counters so one
// scrape answers both "what is the engine doing" and "what is it costing the
// process": live goroutines (a leak in the session pool or mesh shows up
// here first), heap in use, cumulative GC pause time, and GC cycles.
// runtime.ReadMemStats stops the world briefly, so one cached reading (TTL
// below) serves all gauges of a scrape instead of one read per gauge.

// memStatsTTL bounds how stale the cached MemStats reading may be; all
// gauges of one exposition pass share a single ReadMemStats.
const memStatsTTL = 100 * time.Millisecond

var memCache struct {
	mu   sync.Mutex
	at   time.Time
	m    runtime.MemStats
	init bool
}

// cachedMemStats returns a MemStats reading at most memStatsTTL old.
func cachedMemStats() runtime.MemStats {
	memCache.mu.Lock()
	defer memCache.mu.Unlock()
	if !memCache.init || time.Since(memCache.at) > memStatsTTL {
		runtime.ReadMemStats(&memCache.m)
		memCache.at = time.Now()
		memCache.init = true
	}
	return memCache.m
}

func init() {
	Default.GaugeFunc("go_goroutines",
		"goroutines currently live in the process",
		func() float64 { return float64(runtime.NumGoroutine()) })
	Default.GaugeFunc("go_heap_inuse_bytes",
		"heap bytes in in-use spans",
		func() float64 { return float64(cachedMemStats().HeapInuse) })
	Default.GaugeFunc("go_heap_alloc_bytes",
		"heap bytes allocated and not yet freed",
		func() float64 { return float64(cachedMemStats().HeapAlloc) })
	Default.GaugeFunc("go_gc_pause_seconds_total",
		"cumulative stop-the-world GC pause time, seconds",
		func() float64 { return float64(cachedMemStats().PauseTotalNs) / 1e9 })
	Default.GaugeFunc("go_gc_cycles_total",
		"completed GC cycles",
		func() float64 { return float64(cachedMemStats().NumGC) })
}
