package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTrace()
	run := tr.Start("run")
	split := run.Child("split")
	time.Sleep(time.Millisecond)
	split.End()
	reduce := run.Child("reduce")
	w0 := reduce.Child("worker")
	w0.SetWorker(0)
	time.Sleep(time.Millisecond)
	w0.End()
	reduce.End()
	run.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["split"].Parent != byName["run"].ID {
		t.Fatal("split must nest under run")
	}
	if byName["worker"].Parent != byName["reduce"].ID {
		t.Fatal("worker must nest under reduce")
	}
	if byName["worker"].Worker != 0 {
		t.Fatalf("worker id = %d, want 0", byName["worker"].Worker)
	}
	if byName["split"].Worker != -1 {
		t.Fatalf("unbound span worker = %d, want -1", byName["split"].Worker)
	}
	// Records are sorted by start offset; run began first.
	if recs[0].Name != "run" {
		t.Fatalf("first record = %q, want run", recs[0].Name)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatal("records not sorted by start offset")
		}
	}
	// Children lie within their parents' intervals.
	for _, child := range []string{"split", "reduce"} {
		c, p := byName[child], byName["run"]
		if c.Start < p.Start || c.Start+c.Dur > p.Start+p.Dur {
			t.Fatalf("%s [%v,%v) escapes run [%v,%v)", child, c.Start, c.Start+c.Dur, p.Start, p.Start+p.Dur)
		}
	}
	if got := tr.PhaseTotal("split"); got < time.Millisecond {
		t.Fatalf("PhaseTotal(split) = %v, want >= 1ms", got)
	}
}

func TestSpanConcurrentEnd(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := root.Child("worker")
			s.SetWorker(w)
			s.End()
			s.End() // double End must be a no-op
		}(w)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Records()); got != 9 {
		t.Fatalf("got %d records, want 9", got)
	}
}

func TestNilTraceAndSpan(t *testing.T) {
	var tr *Trace
	s := tr.Start("x")
	s.SetWorker(1)
	c := s.Child("y")
	c.End()
	s.End()
	if tr.Records() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace must be inert")
	}
}

func TestTraceSpanLimit(t *testing.T) {
	tr := NewTrace()
	tr.limit = 2
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Records()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestEventLogJSONAndRing(t *testing.T) {
	l := NewEventLog(2)
	mk := func(name string) []SpanRecord {
		return []SpanRecord{{ID: 1, Name: name, Worker: -1, Start: 0, Dur: 2 * time.Microsecond}}
	}
	l.Add(mk("a"))
	l.Add(mk("b"))
	l.Add(mk("c")) // evicts "a"
	if l.Len() != 2 {
		t.Fatalf("log retains %d runs, want 2", l.Len())
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DroppedRuns int64 `json:"dropped_runs"`
		Runs        []struct {
			Run   int64 `json:"run"`
			Spans []struct {
				Name  string  `json:"name"`
				DurUS float64 `json:"dur_us"`
			} `json:"spans"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("event log is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DroppedRuns != 1 || len(doc.Runs) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Runs[0].Spans[0].Name != "b" || doc.Runs[1].Spans[0].Name != "c" {
		t.Fatalf("wrong runs retained: %+v", doc.Runs)
	}
	if doc.Runs[0].Spans[0].DurUS != 2 {
		t.Fatalf("dur_us = %v, want 2", doc.Runs[0].Spans[0].DurUS)
	}
}
