package obs

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusLabelEscaping checks that label values containing quotes,
// backslashes, and newlines render escaped (renderLabels quotes with
// strconv.Quote, whose escapes are the Prometheus text-format escapes).
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hostile := `quo"te\back` + "\nline"
	r.Counter("esc_total", "escape test", Label{Key: "path", Value: hostile}).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `esc_total{path="quo\"te\\back\nline"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped sample %q:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "quo") && strings.Count(line, "\n") > 0 {
			t.Errorf("raw newline leaked into sample line %q", line)
		}
	}
}

// TestPrometheusHistogramMonotonic checks the rendered histogram invariants:
// bucket le bounds strictly increase, cumulative counts never decrease, the
// series ends at le="+Inf", and the +Inf cumulative equals _count.
func TestPrometheusHistogramMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", Label{Key: "op", Value: "pass"})
	for _, v := range []float64{1e-7, 0.001, 0.001, 0.25, 3, 1e6} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var (
		lastLE  = -1.0
		lastCum = int64(-1)
		buckets int
		sawInf  bool
		count   int64
	)
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "lat_seconds_bucket"):
			if sawInf {
				t.Fatalf("bucket line after le=+Inf: %q", line)
			}
			buckets++
			le, cum := parseBucketLine(t, line)
			if le == "+Inf" {
				sawInf = true
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q: %v", le, err)
				}
				if f <= lastLE {
					t.Errorf("le bounds not increasing: %g after %g", f, lastLE)
				}
				lastLE = f
			}
			if cum < lastCum {
				t.Errorf("cumulative count decreased: %d after %d", cum, lastCum)
			}
			lastCum = cum
		case strings.HasPrefix(line, "lat_seconds_count"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q", line)
			}
			count = n
		}
	}
	if buckets == 0 || !sawInf {
		t.Fatalf("exposition rendered %d buckets (inf=%v)", buckets, sawInf)
	}
	if count != 6 || lastCum != count {
		t.Errorf("+Inf cumulative %d vs _count %d, want both 6", lastCum, count)
	}
}

func parseBucketLine(t *testing.T, line string) (le string, cum int64) {
	t.Helper()
	i := strings.Index(line, `le="`)
	if i < 0 {
		t.Fatalf("bucket line without le label: %q", line)
	}
	rest := line[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	le = rest[:j]
	fields := strings.Fields(line)
	cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("bad cumulative in %q: %v", line, err)
	}
	return le, cum
}

// TestPrometheusScrapeRoundTrip renders a registry with counters, gauges,
// and histograms, re-parses the text the way a scraper would, and checks the
// parsed samples match the registry's own readings — the format must survive
// its own round trip, not just eyeballing.
func TestPrometheusScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_rows_total", "rows", Label{Key: "node", Value: "0"}).Add(11)
	r.Counter("rt_rows_total", "rows", Label{Key: "node", Value: "1"}).Add(22)
	r.GaugeFunc("rt_goroutines", "gauge", func() float64 { return 7 })
	h := r.Histogram("rt_lat_seconds", "latency")
	h.Observe(0.01)
	h.Observe(0.02)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, types := scrapeParse(t, b.String())

	want := map[string]float64{
		`rt_rows_total{node="0"}`: 11,
		`rt_rows_total{node="1"}`: 22,
		`rt_goroutines`:           7,
		`rt_lat_seconds_count`:    2,
	}
	for k, v := range want {
		got, ok := parsed[k]
		if !ok {
			t.Errorf("scrape lost sample %q; have %v", k, sortedKeys(parsed))
			continue
		}
		if got != v {
			t.Errorf("parsed %q = %g, want %g", k, got, v)
		}
	}
	if got := parsed["rt_lat_seconds_sum"]; got < 0.03-1e-9 || got > 0.03+1e-9 {
		t.Errorf("parsed histogram sum = %g, want 0.03", got)
	}
	for fam, typ := range map[string]string{
		"rt_rows_total":  "counter",
		"rt_goroutines":  "gauge",
		"rt_lat_seconds": "histogram",
	} {
		if types[fam] != typ {
			t.Errorf("TYPE %s = %q, want %q", fam, types[fam], typ)
		}
	}
}

// scrapeParse is a minimal Prometheus text-format parser: it returns every
// sample as name+labels → value plus the declared family types, and fails
// the test on any malformed line.
func scrapeParse(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value separator %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		if strings.Contains(key, "{") && !strings.HasSuffix(key, "}") {
			t.Fatalf("line %d: unterminated label set %q", ln+1, key)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = val
	}
	return samples, types
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

