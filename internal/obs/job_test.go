package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNextJobIDUnique(t *testing.T) {
	const n = 100
	ids := make(chan JobID, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); ids <- NextJobID() }()
	}
	wg.Wait()
	close(ids)
	seen := map[JobID]bool{}
	for id := range ids {
		if id == 0 {
			t.Fatal("minted the reserved zero job id")
		}
		if seen[id] {
			t.Fatalf("job id %d minted twice", id)
		}
		seen[id] = true
	}
}

func TestJobMetricsDeltas(t *testing.T) {
	jm := NewJobMetrics(NextJobID())
	jm.Add("rows_total", 5)
	jm.Add("rows_total", 3)
	jm.Add("phase_ns_total", 100, Label{Key: "phase", Value: "reduce"})
	jm.Add("phase_ns_total", 50, Label{Key: "phase", Value: "split"})
	jm.Add("noop_total", 0) // zero increments record nothing

	ds := jm.Deltas()
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(ds), ds)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Key() >= ds[i].Key() {
			t.Errorf("deltas not sorted: %q before %q", ds[i-1].Key(), ds[i].Key())
		}
	}
	snap := jm.Snapshot()
	if snap["rows_total"] != 8 {
		t.Errorf("rows_total = %d, want 8", snap["rows_total"])
	}
	if snap[`phase_ns_total{phase="reduce"}`] != 100 {
		t.Errorf("labeled delta = %d, want 100", snap[`phase_ns_total{phase="reduce"}`])
	}

	var nilJM *JobMetrics
	nilJM.Add("x_total", 1) // must not panic
	if nilJM.Deltas() != nil || nilJM.ID() != 0 {
		t.Error("nil JobMetrics not a no-op")
	}
}

func TestJobMetricsConcurrent(t *testing.T) {
	jm := NewJobMetrics(NextJobID())
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				jm.Add("shared_total", 1)
				jm.Add("per_worker_total", 1, Label{Key: "w", Value: fmt.Sprint(w % 2)})
			}
		}(w)
	}
	wg.Wait()
	snap := jm.Snapshot()
	if snap["shared_total"] != workers*per {
		t.Errorf("shared_total = %d, want %d", snap["shared_total"], workers*per)
	}
	if got := snap[`per_worker_total{w="0"}`] + snap[`per_worker_total{w="1"}`]; got != workers*per {
		t.Errorf("labeled sum = %d, want %d", got, workers*per)
	}
}

func TestCounterSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a_total", "")
	b := r.Counter("b_total", "", Label{Key: "k", Value: "v"})
	a.Add(10)
	before := r.CounterSnapshot()
	a.Add(5)
	b.Add(7)
	r.Counter("c_total", "").Add(3) // registered after the snapshot
	diff := r.CounterSnapshot().Diff(before)
	want := CounterSnapshot{"a_total": 5, `b_total{k="v"}`: 7, "c_total": 3}
	if len(diff) != len(want) {
		t.Fatalf("diff = %v, want %v", diff, want)
	}
	for k, v := range want {
		if diff[k] != v {
			t.Errorf("diff[%q] = %d, want %d", k, diff[k], v)
		}
	}
}

func TestAddDeltas(t *testing.T) {
	r := NewRegistry()
	deltas := []MetricDelta{
		{Name: "rows_total", Value: 42},
		{Name: "phase_ns_total", Labels: []Label{{Key: "phase", Value: "reduce"}}, Value: 7},
	}
	r.AddDeltas("cluster_node_", "shipped", deltas, Label{Key: "node", Value: "3"})
	r.AddDeltas("cluster_node_", "shipped", deltas, Label{Key: "node", Value: "3"})
	if got := r.Value("cluster_node_rows_total", Label{Key: "node", Value: "3"}); got != 84 {
		t.Errorf("cluster_node_rows_total{node=3} = %d, want 84", got)
	}
	got := r.Value("cluster_node_phase_ns_total",
		Label{Key: "phase", Value: "reduce"}, Label{Key: "node", Value: "3"})
	if got != 14 {
		t.Errorf("labeled node delta = %d, want 14", got)
	}
}

func TestMergeNodeSpans(t *testing.T) {
	coord := []SpanRecord{
		{ID: 1, Parent: 0, Name: "cluster-run", Worker: -1, Node: -1, Start: 0, Dur: 100 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "node-0", Worker: -1, Node: -1, Start: time.Millisecond, Dur: 40 * time.Millisecond},
		{ID: 3, Parent: 1, Name: "node-1", Worker: -1, Node: -1, Start: time.Millisecond, Dur: 60 * time.Millisecond},
	}
	nodes := []NodeSpans{
		{Node: 0, Offset: time.Millisecond, Parent: 2, Spans: []SpanRecord{
			{ID: 1, Parent: 0, Name: "run", Worker: -1, Node: -1, Start: 0, Dur: 39 * time.Millisecond},
			{ID: 2, Parent: 1, Name: "reduce", Worker: 0, Node: -1, Start: time.Millisecond, Dur: 30 * time.Millisecond},
		}},
		{Node: 1, Offset: 2 * time.Millisecond, Parent: 3, Spans: []SpanRecord{
			{ID: 1, Parent: 0, Name: "run", Worker: -1, Node: -1, Start: 0, Dur: 55 * time.Millisecond},
		}},
	}
	merged := MergeNodeSpans(coord, nodes)
	if len(merged) != 6 {
		t.Fatalf("merged %d spans, want 6", len(merged))
	}
	// IDs must stay unique after re-basing.
	ids := map[int64]bool{}
	byName := map[string]SpanRecord{}
	for _, r := range merged {
		if ids[r.ID] {
			t.Fatalf("duplicate span id %d after merge", r.ID)
		}
		ids[r.ID] = true
		key := fmt.Sprintf("%s/node%d", r.Name, r.Node)
		byName[key] = r
	}
	// Node 0's root re-parents under coordinator span 2, offset re-based.
	n0run := byName["run/node0"]
	if n0run.Parent != 2 {
		t.Errorf("node 0 root parent = %d, want 2", n0run.Parent)
	}
	if n0run.Start != time.Millisecond {
		t.Errorf("node 0 root start = %v, want 1ms", n0run.Start)
	}
	// Node 0's child keeps its internal parent link (now re-based onto the
	// same id as its re-based root).
	n0reduce := byName["reduce/node0"]
	if n0reduce.Parent != n0run.ID {
		t.Errorf("node 0 child parent = %d, want its root %d", n0reduce.Parent, n0run.ID)
	}
	if n0reduce.Worker != 0 {
		t.Errorf("node 0 child worker = %d, want 0 (preserved)", n0reduce.Worker)
	}
	// Node 1's root re-parents under coordinator span 3 with its own offset.
	n1run := byName["run/node1"]
	if n1run.Parent != 3 || n1run.Start != 2*time.Millisecond {
		t.Errorf("node 1 root = parent %d start %v, want parent 3 start 2ms", n1run.Parent, n1run.Start)
	}
	// Coordinator spans stay local (-1); node spans carry their node id.
	if byName["cluster-run/node-1"].Node != -1 {
		t.Error("coordinator span lost its local node marker")
	}
	// Sorted by start offset.
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Start > merged[i].Start {
			t.Errorf("merged spans not sorted at %d", i)
		}
	}
}
