package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hits_total", "hits")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Value("test_hits_total"); got != workers*perWorker {
		t.Fatalf("registry value = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterNilReceiver(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Label{"k", "v"})
	b := r.Counter("x_total", "other help ignored", Label{"k", "v"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "x", Label{"k", "w"})
	if other == a {
		t.Fatal("different labels must return a distinct counter")
	}
}

func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("shared_total", "shared")
			counters[i].Inc()
		}(i)
	}
	wg.Wait()
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatal("concurrent registration must converge on one counter")
		}
	}
	if got := r.Value("shared_total"); got != int64(len(counters)) {
		t.Fatalf("shared counter = %d, want %d", got, len(counters))
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("test_level", "level", func() float64 { return v })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 1.5 || snap[0].Kind != KindGauge {
		t.Fatalf("snapshot = %+v", snap)
	}
	v = 2.5
	if got := r.Snapshot()[0].Value; got != 2.5 {
		t.Fatalf("gauge not re-read: %v", got)
	}
}

func TestReportSkipsZeroAndGroups(t *testing.T) {
	r := NewRegistry()
	r.Counter("alpha_ops_total", "ops").Add(3)
	r.Counter("alpha_idle_ns_total", "idle").Add(1500)
	r.Counter("beta_zero_total", "never incremented")
	out := Report(r)
	if !strings.Contains(out, "alpha_ops_total") || !strings.Contains(out, "alpha:") {
		t.Fatalf("report missing alpha group:\n%s", out)
	}
	if strings.Contains(out, "beta_zero_total") {
		t.Fatalf("report must skip zero counters:\n%s", out)
	}
	if !strings.Contains(out, "(2µs)") {
		t.Fatalf("report must humanize ns counters:\n%s", out)
	}
}
