package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span of a Trace: a named interval with an
// optional parent (nesting) and an optional worker id.
type SpanRecord struct {
	// ID is the span's id within its trace, starting at 1.
	ID int64
	// Parent is the enclosing span's ID, or 0 for root spans.
	Parent int64
	// Name is the phase name (e.g. "reduce", "local-combine").
	Name string
	// Worker is the worker id the span ran on, or -1 when not worker-bound.
	Worker int
	// Node is the cluster node the span ran on, or -1 when the span is
	// local (single-engine passes, coordinator-side spans). Only cluster
	// timeline merging (MergeNodeSpans) assigns node ids.
	Node int
	// Start is the span's begin time as an offset from the trace's start.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
}

// Trace collects the spans of one engine pass. Spans may begin and end from
// any goroutine. A nil *Trace is a valid no-op receiver, as is a nil *Span,
// so tracing call sites never branch.
type Trace struct {
	begin   time.Time
	limit   int
	job     JobID
	next    atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	recs []SpanRecord
}

// traceSpanLimit bounds the spans one trace retains; beyond it spans are
// counted as dropped rather than accumulated without bound.
const traceSpanLimit = 1 << 16

// NewTrace starts an empty trace whose clock begins now.
func NewTrace() *Trace {
	return &Trace{begin: time.Now(), limit: traceSpanLimit}
}

// SetJob attributes the trace (and every run-log entry flushed from it) to a
// job. Call before End/Records.
func (t *Trace) SetJob(id JobID) {
	if t != nil {
		t.job = id
	}
}

// Job reports the job the trace is attributed to (0 when unattributed).
func (t *Trace) Job() JobID {
	if t == nil {
		return 0
	}
	return t.job
}

// Elapsed reports the time since the trace's clock began — the offset a
// span started now would get. Cluster coordination uses it to re-base
// node-local span offsets onto the coordinator clock.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.begin)
}

// mTraceDropped counts span events lost to retention bounds anywhere in the
// trace pipeline: spans beyond one trace's limit and spans of runs evicted
// from the event-log ring. Both bounds previously dropped silently; the
// counter makes the loss visible on the metrics endpoint and in the human
// report.
var mTraceDropped = Default.Counter("obs_trace_events_dropped_total",
	"trace span events dropped by retention bounds (per-trace span limit + event-log ring eviction)")

// Span is an in-flight interval of a Trace. End it exactly once; extra Ends
// are ignored.
type Span struct {
	tr     *Trace
	id     int64
	parent int64
	name   string
	worker int
	start  time.Time
	ended  atomic.Bool
}

func (t *Trace) span(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, id: t.next.Add(1), parent: parent, name: name, worker: -1, start: time.Now()}
}

// Start begins a root span.
func (t *Trace) Start(name string) *Span { return t.span(name, 0) }

// Child begins a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.span(name, s.id)
}

// ID reports the span's id within its trace (0 for a nil span) — the handle
// timeline merging uses to parent shipped node spans under their
// coordinator span.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetWorker tags the span with a worker id. Call before End.
func (s *Span) SetWorker(w int) {
	if s != nil {
		s.worker = w
	}
}

// End finishes the span and records it in the trace.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Worker: s.worker,
		Node:   -1,
		Start:  s.start.Sub(s.tr.begin),
		Dur:    time.Since(s.start),
	}
	t := s.tr
	t.mu.Lock()
	if len(t.recs) < t.limit {
		t.recs = append(t.recs, rec)
	} else {
		t.dropped.Add(1)
		mTraceDropped.Inc()
	}
	t.mu.Unlock()
}

// Records returns the finished spans sorted by start offset (ties by id).
func (t *Trace) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped reports how many spans exceeded the trace's retention limit.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// PhaseTotal sums the duration of every recorded span with the given name.
func (t *Trace) PhaseTotal(name string) time.Duration {
	var sum time.Duration
	for _, r := range t.Records() {
		if r.Name == name {
			sum += r.Dur
		}
	}
	return sum
}

// EventLog is a process-wide ring of recent traces (one entry per engine
// pass), exported as JSON from the metrics endpoint and by -trace-out.
type EventLog struct {
	mu      sync.Mutex
	limit   int
	nextRun int64
	runs    []logEntry
	dropped int64
}

type logEntry struct {
	run   int64
	job   JobID
	spans []SpanRecord
}

// NewEventLog creates a log retaining the most recent limit runs.
func NewEventLog(limit int) *EventLog {
	if limit < 1 {
		limit = 1
	}
	return &EventLog{limit: limit}
}

// Log is the process-wide event log the engine appends every pass to.
var Log = NewEventLog(512)

// Add appends one run's span records and returns its run id. When the ring
// is full the oldest run is dropped (and its span events counted as lost).
func (l *EventLog) Add(spans []SpanRecord) int64 { return l.AddRun(0, spans) }

// AddRun is Add with a job attribution, so the exported event log maps runs
// back to the jobs that produced them.
func (l *EventLog) AddRun(job JobID, spans []SpanRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextRun++
	l.runs = append(l.runs, logEntry{run: l.nextRun, job: job, spans: spans})
	for len(l.runs) > l.limit {
		mTraceDropped.Add(int64(len(l.runs[0].spans)))
		l.runs = l.runs[1:]
		l.dropped++
	}
	return l.nextRun
}

// Len reports the number of retained runs.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runs)
}

// jsonSpan is the event-log export shape: offsets and durations in
// microseconds, worker -1 meaning "not worker-bound".
type jsonSpan struct {
	ID      int64   `json:"id"`
	Parent  int64   `json:"parent"`
	Name    string  `json:"name"`
	Worker  int     `json:"worker"`
	Node    int     `json:"node"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

type jsonRun struct {
	Run   int64      `json:"run"`
	Job   uint64     `json:"job,omitempty"`
	Spans []jsonSpan `json:"spans"`
}

type jsonLog struct {
	DroppedRuns int64     `json:"dropped_runs"`
	Runs        []jsonRun `json:"runs"`
}

// WriteJSON writes the retained runs as one JSON document.
func (l *EventLog) WriteJSON(w io.Writer) error {
	l.mu.Lock()
	doc := jsonLog{DroppedRuns: l.dropped, Runs: make([]jsonRun, 0, len(l.runs))}
	for _, e := range l.runs {
		jr := jsonRun{Run: e.run, Job: uint64(e.job), Spans: make([]jsonSpan, 0, len(e.spans))}
		for _, s := range e.spans {
			jr.Spans = append(jr.Spans, jsonSpan{
				ID:      s.ID,
				Parent:  s.Parent,
				Name:    s.Name,
				Worker:  s.Worker,
				Node:    s.Node,
				StartUS: float64(s.Start) / float64(time.Microsecond),
				DurUS:   float64(s.Dur) / float64(time.Microsecond),
			})
		}
		doc.Runs = append(doc.Runs, jr)
	}
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
