package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span of a Trace: a named interval with an
// optional parent (nesting) and an optional worker id.
type SpanRecord struct {
	// ID is the span's id within its trace, starting at 1.
	ID int64
	// Parent is the enclosing span's ID, or 0 for root spans.
	Parent int64
	// Name is the phase name (e.g. "reduce", "local-combine").
	Name string
	// Worker is the worker id the span ran on, or -1 when not worker-bound.
	Worker int
	// Start is the span's begin time as an offset from the trace's start.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
}

// Trace collects the spans of one engine pass. Spans may begin and end from
// any goroutine. A nil *Trace is a valid no-op receiver, as is a nil *Span,
// so tracing call sites never branch.
type Trace struct {
	begin   time.Time
	limit   int
	next    atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	recs []SpanRecord
}

// traceSpanLimit bounds the spans one trace retains; beyond it spans are
// counted as dropped rather than accumulated without bound.
const traceSpanLimit = 1 << 16

// NewTrace starts an empty trace whose clock begins now.
func NewTrace() *Trace {
	return &Trace{begin: time.Now(), limit: traceSpanLimit}
}

// Span is an in-flight interval of a Trace. End it exactly once; extra Ends
// are ignored.
type Span struct {
	tr     *Trace
	id     int64
	parent int64
	name   string
	worker int
	start  time.Time
	ended  atomic.Bool
}

func (t *Trace) span(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, id: t.next.Add(1), parent: parent, name: name, worker: -1, start: time.Now()}
}

// Start begins a root span.
func (t *Trace) Start(name string) *Span { return t.span(name, 0) }

// Child begins a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.span(name, s.id)
}

// SetWorker tags the span with a worker id. Call before End.
func (s *Span) SetWorker(w int) {
	if s != nil {
		s.worker = w
	}
}

// End finishes the span and records it in the trace.
func (s *Span) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Worker: s.worker,
		Start:  s.start.Sub(s.tr.begin),
		Dur:    time.Since(s.start),
	}
	t := s.tr
	t.mu.Lock()
	if len(t.recs) < t.limit {
		t.recs = append(t.recs, rec)
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Records returns the finished spans sorted by start offset (ties by id).
func (t *Trace) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped reports how many spans exceeded the trace's retention limit.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// PhaseTotal sums the duration of every recorded span with the given name.
func (t *Trace) PhaseTotal(name string) time.Duration {
	var sum time.Duration
	for _, r := range t.Records() {
		if r.Name == name {
			sum += r.Dur
		}
	}
	return sum
}

// EventLog is a process-wide ring of recent traces (one entry per engine
// pass), exported as JSON from the metrics endpoint and by -trace-out.
type EventLog struct {
	mu      sync.Mutex
	limit   int
	nextRun int64
	runs    []logEntry
	dropped int64
}

type logEntry struct {
	run   int64
	spans []SpanRecord
}

// NewEventLog creates a log retaining the most recent limit runs.
func NewEventLog(limit int) *EventLog {
	if limit < 1 {
		limit = 1
	}
	return &EventLog{limit: limit}
}

// Log is the process-wide event log the engine appends every pass to.
var Log = NewEventLog(512)

// Add appends one run's span records and returns its run id. When the ring
// is full the oldest run is dropped.
func (l *EventLog) Add(spans []SpanRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextRun++
	l.runs = append(l.runs, logEntry{run: l.nextRun, spans: spans})
	for len(l.runs) > l.limit {
		l.runs = l.runs[1:]
		l.dropped++
	}
	return l.nextRun
}

// Len reports the number of retained runs.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.runs)
}

// jsonSpan is the event-log export shape: offsets and durations in
// microseconds, worker -1 meaning "not worker-bound".
type jsonSpan struct {
	ID      int64   `json:"id"`
	Parent  int64   `json:"parent"`
	Name    string  `json:"name"`
	Worker  int     `json:"worker"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

type jsonRun struct {
	Run   int64      `json:"run"`
	Spans []jsonSpan `json:"spans"`
}

type jsonLog struct {
	DroppedRuns int64     `json:"dropped_runs"`
	Runs        []jsonRun `json:"runs"`
}

// WriteJSON writes the retained runs as one JSON document.
func (l *EventLog) WriteJSON(w io.Writer) error {
	l.mu.Lock()
	doc := jsonLog{DroppedRuns: l.dropped, Runs: make([]jsonRun, 0, len(l.runs))}
	for _, e := range l.runs {
		jr := jsonRun{Run: e.run, Spans: make([]jsonSpan, 0, len(e.spans))}
		for _, s := range e.spans {
			jr.Spans = append(jr.Spans, jsonSpan{
				ID:      s.ID,
				Parent:  s.Parent,
				Name:    s.Name,
				Worker:  s.Worker,
				StartUS: float64(s.Start) / float64(time.Microsecond),
				DurUS:   float64(s.Dur) / float64(time.Microsecond),
			})
		}
		doc.Runs = append(doc.Runs, jr)
	}
	l.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
