package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("robj_updates_total", "reduction-object cell updates",
		Label{"strategy", "replication"}).Add(42)
	r.Counter("robj_updates_total", "reduction-object cell updates",
		Label{"strategy", "atomic"}).Add(7)
	r.Counter("freeride_runs_total", "engine passes").Inc()
	r.GaugeFunc("proc_load", "load level", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP freeride_runs_total engine passes
# TYPE freeride_runs_total counter
freeride_runs_total 1
# HELP proc_load load level
# TYPE proc_load gauge
proc_load 1.5
# HELP robj_updates_total reduction-object cell updates
# TYPE robj_updates_total counter
robj_updates_total{strategy="atomic"} 7
robj_updates_total{strategy="replication"} 42
`
	if b.String() != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestLabelQuoting(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", Label{"k", `a"b\c`}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x_total{k="a\"b\\c"} 1`) {
		t.Fatalf("label value not escaped:\n%s", b.String())
	}
}

func TestServeEndpoints(t *testing.T) {
	Default.Counter("obs_test_endpoint_total", "endpoint test counter").Add(3)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "obs_test_endpoint_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "freeride_metrics") {
		t.Fatalf("/debug/vars missing freeride_metrics:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, "runs") {
		t.Fatalf("/trace missing runs:\n%s", body)
	}
	if body := get("/report"); !strings.Contains(body, "obs report") {
		t.Fatalf("/report malformed:\n%s", body)
	}
}
