// Package obs is the engine-wide observability layer: always-on atomic
// counters collected in a process-wide Registry, span-style phase tracing
// with a JSON event log, and exposition as Prometheus text, expvar, and a
// human-readable report.
//
// The paper's evaluation (§V) attributes the Chapel-to-FREERIDE gap to three
// measurable overhead sources — split handling, reduction-object access, and
// nested-structure access. This package gives the runtime the instruments to
// quantify all three on every run: the scheduler and engine count splits and
// per-worker work (split handling), the reduction-object strategies count
// updates, lock waits, and CAS retries (reduction-object access), and the
// dataset layer counts bytes moved (data access). Counters are single atomic
// adds, cheap enough to leave enabled permanently.
//
// The package has no dependencies outside the standard library and must not
// import any other package of this repository (everything else imports it).
package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric, distinguishing
// samples of the same family (e.g. robj_updates_total{strategy="atomic"}).
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use, and a nil *Counter is a valid no-op receiver so
// call sites never need nil checks.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Kind distinguishes sample types in a Snapshot.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value sampled at read time.
	KindGauge
)

// metric is one registered sample: a counter, a gauge function, or a
// histogram (read through HistSnapshot rather than Snapshot).
type metric struct {
	family string // metric family name, e.g. "robj_updates_total"
	labels string // rendered label set, e.g. `{strategy="atomic"}`, or ""
	help   string
	c      *Counter
	gauge  func() float64
	h      *Histogram
}

// Sample is one metric reading taken by Snapshot.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels is the rendered label set ({k="v",...}) or "".
	Labels string
	// Help is the family's help text.
	Help string
	// Value is the reading.
	Value float64
	// Kind reports whether the sample is a counter or a gauge.
	Kind Kind
}

// Registry holds named metrics for exposition. The zero value is not usable;
// create registries with NewRegistry or use Default.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric // family + labels → metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{index: map[string]*metric{}} }

// Default is the process-wide registry that the engine's subsystems
// (freeride, robj, sched, dataset) register their always-on counters into.
var Default = NewRegistry()

// renderLabels renders a label set in Prometheus text syntax. Labels keep
// their given order, so call sites should pass them consistently.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under name+labels, creating and
// registering it on first use. Help text is taken from the first
// registration. The call is idempotent, so packages can resolve their
// counters in init functions or lazily from hot paths' setup code.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok && m.c != nil {
		return m.c
	}
	m := &metric{family: name, labels: ls, help: help, c: &Counter{}}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
	return m.c
}

// GaugeFunc registers a gauge read through fn at exposition time. Re-registering
// the same name+labels replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		m.gauge = fn
		m.c = nil
		return
	}
	m := &metric{family: name, labels: ls, help: help, gauge: fn}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
}

// Value returns the current value of the counter registered under
// name+labels, or 0 when no such counter exists. It never creates metrics,
// so it is safe to probe from tests and guards.
func (r *Registry) Value(name string, labels ...Label) int64 {
	key := name + renderLabels(labels)
	r.mu.Lock()
	m, ok := r.index[key]
	r.mu.Unlock()
	if !ok || m.c == nil {
		return 0
	}
	return m.c.Value()
}

// Snapshot reads every registered counter and gauge, sorted by family name
// then label set, so output (and golden tests) are deterministic. Histograms
// are read separately through HistSnapshot.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		if m.h != nil {
			continue
		}
		s := Sample{Name: m.family, Labels: m.labels, Help: m.help}
		if m.c != nil {
			s.Value = float64(m.c.Value())
			s.Kind = KindCounter
		} else if m.gauge != nil {
			s.Value = m.gauge()
			s.Kind = KindGauge
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// formatValue renders a sample value: counters as integers, gauges in
// shortest float form.
func formatValue(s Sample) string {
	if s.Kind == KindCounter {
		return strconv.FormatInt(int64(s.Value), 10)
	}
	return strconv.FormatFloat(s.Value, 'g', -1, 64)
}

// typeName returns the Prometheus TYPE keyword for a sample kind.
func typeName(k Kind) string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}
