package obs

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// WriteReport writes a human-readable summary of every non-zero metric in
// the registry, grouped by subsystem prefix (the token before the first
// underscore). Nanosecond counters (families ending in "_ns_total") are
// shown both raw and as durations, so the report maps directly onto the
// Prometheus exposition while staying readable after a benchmark run.
func WriteReport(w io.Writer, r *Registry) {
	samples := r.Snapshot()
	groups := map[string][]Sample{}
	var order []string
	for _, s := range samples {
		if s.Value == 0 {
			continue
		}
		g := s.Name
		if i := strings.IndexByte(g, '_'); i > 0 {
			g = g[:i]
		}
		if _, seen := groups[g]; !seen {
			order = append(order, g)
		}
		groups[g] = append(groups[g], s)
	}
	hists := r.HistSnapshot()
	fmt.Fprintln(w, "== obs report ==")
	if len(order) == 0 && !anyHistActivity(hists) {
		fmt.Fprintln(w, "  (no activity recorded)")
		return
	}
	for _, g := range order {
		fmt.Fprintf(w, "%s:\n", g)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, s := range groups[g] {
			val := formatValue(s)
			if strings.HasSuffix(s.Name, "_ns_total") {
				val = fmt.Sprintf("%s\t(%v)", val, time.Duration(int64(s.Value)).Round(time.Microsecond))
			}
			fmt.Fprintf(tw, "  %s%s\t%s\n", s.Name, s.Labels, val)
		}
		tw.Flush()
	}
	writeHistReport(w, hists)
	if dropped := r.Value("obs_trace_events_dropped_total"); dropped > 0 {
		fmt.Fprintf(w, "warning: %d trace span events dropped by retention bounds — raise the trace/event-log limits or scrape /trace more often\n", dropped)
	}
}

// anyHistActivity reports whether any histogram has observations.
func anyHistActivity(hists []HistSample) bool {
	for _, h := range hists {
		if h.State.Count > 0 {
			return true
		}
	}
	return false
}

// writeHistReport summarizes every histogram with observations: count and
// log-bucket quantiles, rendered as durations (histograms record seconds).
func writeHistReport(w io.Writer, hists []HistSample) {
	printed := false
	var tw *tabwriter.Writer
	for _, h := range hists {
		if h.State.Count == 0 {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "latency (log-bucket quantiles):")
			tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			printed = true
		}
		q := func(p float64) string {
			return secondsDuration(h.State.Quantile(p)).String()
		}
		fmt.Fprintf(tw, "  %s%s\tn=%d\tp50≤%s\tp90≤%s\tp99≤%s\n",
			h.Name, h.Labels, h.State.Count, q(0.50), q(0.90), q(0.99))
	}
	if printed {
		tw.Flush()
	}
}

// secondsDuration converts a seconds reading to a rounded time.Duration.
func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// Report returns WriteReport's output as a string.
func Report(r *Registry) string {
	var b strings.Builder
	WriteReport(&b, r)
	return b.String()
}
