package obs

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// WriteReport writes a human-readable summary of every non-zero metric in
// the registry, grouped by subsystem prefix (the token before the first
// underscore). Nanosecond counters (families ending in "_ns_total") are
// shown both raw and as durations, so the report maps directly onto the
// Prometheus exposition while staying readable after a benchmark run.
func WriteReport(w io.Writer, r *Registry) {
	samples := r.Snapshot()
	groups := map[string][]Sample{}
	var order []string
	for _, s := range samples {
		if s.Value == 0 {
			continue
		}
		g := s.Name
		if i := strings.IndexByte(g, '_'); i > 0 {
			g = g[:i]
		}
		if _, seen := groups[g]; !seen {
			order = append(order, g)
		}
		groups[g] = append(groups[g], s)
	}
	fmt.Fprintln(w, "== obs report ==")
	if len(order) == 0 {
		fmt.Fprintln(w, "  (no activity recorded)")
		return
	}
	for _, g := range order {
		fmt.Fprintf(w, "%s:\n", g)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, s := range groups[g] {
			val := formatValue(s)
			if strings.HasSuffix(s.Name, "_ns_total") {
				val = fmt.Sprintf("%s\t(%v)", val, time.Duration(int64(s.Value)).Round(time.Microsecond))
			}
			fmt.Fprintf(tw, "  %s%s\t%s\n", s.Name, s.Labels, val)
		}
		tw.Flush()
	}
}

// Report returns WriteReport's output as a string.
func Report(r *Registry) string {
	var b strings.Builder
	WriteReport(&b, r)
	return b.String()
}
