package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	bounds := Buckets()
	// Each finite bound must land in the bucket it bounds (le is inclusive).
	for i, b := range bounds {
		idx := bucketIndex(b)
		if idx != i {
			t.Errorf("bound %g landed in bucket %d, want %d", b, idx, i)
		}
	}
	// A value just above a bound belongs to the next bucket.
	if idx := bucketIndex(bounds[3] * 1.001); idx != 4 {
		t.Errorf("value above bounds[3] landed in bucket %d, want 4", idx)
	}
	h.Observe(1e-9) // below the smallest bound → bucket 0
	h.Observe(1e9)  // above the largest bound → +Inf bucket
	h.Observe(0)    // zero clamps into bucket 0
	h.Observe(-5)   // negative clamps to 0
	h.Observe(math.NaN())
	st := h.State()
	if st.Count != 5 {
		t.Fatalf("Count = %d, want 5", st.Count)
	}
	if st.Counts[0] != 4 {
		t.Errorf("bucket 0 holds %d, want 4 (tiny, zero, negative, NaN)", st.Counts[0])
	}
	if st.Counts[len(st.Counts)-1] != 1 {
		t.Errorf("+Inf bucket holds %d, want 1", st.Counts[len(st.Counts)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	// 90 fast observations (~1ms) and 10 slow (~1s): p50 must bound the fast
	// cluster, p99 the slow one. Bounds are powers of two, so the quantile is
	// the bucket's upper bound.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	st := h.State()
	p50 := st.Quantile(0.50)
	p99 := st.Quantile(0.99)
	if p50 < 0.001 || p50 > 0.002 {
		t.Errorf("p50 = %g, want within [0.001, 0.002]", p50)
	}
	if p99 < 1.0 || p99 > 2.0 {
		t.Errorf("p99 = %g, want within [1, 2]", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 (%g) > p99 (%g)", p50, p99)
	}
	if q := (HistState{}).Quantile(0.5); q != 0 {
		t.Errorf("empty-state quantile = %g, want 0", q)
	}
}

func TestHistStateSub(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	h.Observe(0.01)
	before := h.State()
	h.Observe(0.5)
	h.Observe(0.5)
	d := h.State().Sub(before)
	if d.Count != 2 {
		t.Fatalf("interval Count = %d, want 2", d.Count)
	}
	if math.Abs(d.Sum-1.0) > 1e-9 {
		t.Errorf("interval Sum = %g, want 1.0", d.Sum)
	}
	if q := d.Quantile(0.5); q < 0.5 || q > 1.0 {
		t.Errorf("interval p50 = %g, want within [0.5, 1]", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := h.State()
	if st.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", st.Count, goroutines*per)
	}
	want := float64(goroutines*per) * 0.001
	if math.Abs(st.Sum-want) > 1e-6 {
		t.Errorf("Sum = %g, want %g", st.Sum, want)
	}
}

func TestHistogramRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h_seconds", "test", Label{Key: "k", Value: "v"})
	b := r.Histogram("h_seconds", "other help", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct histograms")
	}
	if r.FindHistogram("h_seconds", Label{Key: "k", Value: "v"}) != a {
		t.Error("FindHistogram did not return the registered histogram")
	}
	if r.FindHistogram("absent_seconds") != nil {
		t.Error("FindHistogram of an absent family returned non-nil")
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.State().Count != 0 {
		t.Error("nil histogram state not empty")
	}
}
