package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	bounds := Buckets()
	// Each finite bound must land in the bucket it bounds (le is inclusive).
	for i, b := range bounds {
		idx := bucketIndex(b)
		if idx != i {
			t.Errorf("bound %g landed in bucket %d, want %d", b, idx, i)
		}
	}
	// A value just above a bound belongs to the next bucket.
	if idx := bucketIndex(bounds[3] * 1.001); idx != 4 {
		t.Errorf("value above bounds[3] landed in bucket %d, want 4", idx)
	}
	h.Observe(1e-9) // below the smallest bound → bucket 0
	h.Observe(1e9)  // above the largest bound → +Inf bucket
	h.Observe(0)    // zero clamps into bucket 0
	h.Observe(-5)   // negative clamps to 0
	h.Observe(math.NaN())
	st := h.State()
	if st.Count != 5 {
		t.Fatalf("Count = %d, want 5", st.Count)
	}
	if st.Counts[0] != 4 {
		t.Errorf("bucket 0 holds %d, want 4 (tiny, zero, negative, NaN)", st.Counts[0])
	}
	if st.Counts[len(st.Counts)-1] != 1 {
		t.Errorf("+Inf bucket holds %d, want 1", st.Counts[len(st.Counts)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	// 90 fast observations (~1ms) and 10 slow (~1s): p50 must bound the fast
	// cluster, p99 the slow one. Bounds are powers of two, so the quantile is
	// the bucket's upper bound.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	st := h.State()
	p50 := st.Quantile(0.50)
	p99 := st.Quantile(0.99)
	if p50 < 0.001 || p50 > 0.002 {
		t.Errorf("p50 = %g, want within [0.001, 0.002]", p50)
	}
	if p99 < 1.0 || p99 > 2.0 {
		t.Errorf("p99 = %g, want within [1, 2]", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 (%g) > p99 (%g)", p50, p99)
	}
	if q := (HistState{}).Quantile(0.5); q != 0 {
		t.Errorf("empty-state quantile = %g, want 0", q)
	}
}

func TestHistStateSub(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	h.Observe(0.01)
	before := h.State()
	h.Observe(0.5)
	h.Observe(0.5)
	d := h.State().Sub(before)
	if d.Count != 2 {
		t.Fatalf("interval Count = %d, want 2", d.Count)
	}
	if math.Abs(d.Sum-1.0) > 1e-9 {
		t.Errorf("interval Sum = %g, want 1.0", d.Sum)
	}
	if q := d.Quantile(0.5); q < 0.5 || q > 1.0 {
		t.Errorf("interval p50 = %g, want within [0.5, 1]", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", "test")
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	st := h.State()
	if st.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", st.Count, goroutines*per)
	}
	want := float64(goroutines*per) * 0.001
	if math.Abs(st.Sum-want) > 1e-6 {
		t.Errorf("Sum = %g, want %g", st.Sum, want)
	}
}

func TestHistogramRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h_seconds", "test", Label{Key: "k", Value: "v"})
	b := r.Histogram("h_seconds", "other help", Label{Key: "k", Value: "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct histograms")
	}
	if r.FindHistogram("h_seconds", Label{Key: "k", Value: "v"}) != a {
		t.Error("FindHistogram did not return the registered histogram")
	}
	if r.FindHistogram("absent_seconds") != nil {
		t.Error("FindHistogram of an absent family returned non-nil")
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.State().Count != 0 {
		t.Error("nil histogram state not empty")
	}
}

// TestQuantileEdgeCases pins the documented contract of HistState.Quantile:
// empty histograms return 0 for every q, q=0 clamps to rank 1 (the smallest
// observation's bucket), q=1 reports the largest observation's bucket, a
// single observation answers every q identically, out-of-range q clamps
// into [0, 1], and +Inf-bucket observations report the largest finite bound.
func TestQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
			}
		}
	})

	t.Run("single-observation", func(t *testing.T) {
		var h Histogram
		h.Observe(0.010) // 10 ms → bucket bound 2^-6 s = 0.015625
		want := math.Ldexp(1, -6)
		for _, q := range []float64{0, 0.25, 0.5, 1} {
			if got := h.Quantile(q); got != want {
				t.Errorf("single-obs Quantile(%g) = %g, want %g", q, got, want)
			}
		}
	})

	t.Run("q0-and-q1-bracket-the-range", func(t *testing.T) {
		var h Histogram
		h.Observe(0.001) // above 2^-10, so the 2^-9 bucket
		h.Observe(0.001)
		h.Observe(1.5) // 2^1 bucket
		lo, hi := math.Ldexp(1, -9), math.Ldexp(1, 1)
		if got := h.Quantile(0); got != lo {
			t.Errorf("Quantile(0) = %g, want smallest observation's bound %g", got, lo)
		}
		if got := h.Quantile(1); got != hi {
			t.Errorf("Quantile(1) = %g, want largest observation's bound %g", got, hi)
		}
		// Out-of-range q clamps, so the bracket holds beyond [0, 1] too.
		if got := h.Quantile(-3); got != lo {
			t.Errorf("Quantile(-3) = %g, want clamp to %g", got, lo)
		}
		if got := h.Quantile(7); got != hi {
			t.Errorf("Quantile(7) = %g, want clamp to %g", got, hi)
		}
	})

	t.Run("overflow-bucket-reports-largest-finite-bound", func(t *testing.T) {
		var h Histogram
		h.Observe(1e9) // far beyond the 256 s last finite bound
		want := math.Ldexp(1, histMaxExp)
		if got := h.Quantile(1); got != want {
			t.Errorf("overflow Quantile(1) = %g, want largest finite bound %g", got, want)
		}
	})
}
