package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, HELP/TYPE emitted once
// per family, samples sorted by label set. Histograms render as classic
// Prometheus histograms: cumulative <name>_bucket{le="..."} series per label
// set (ending at le="+Inf"), plus <name>_sum and <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	hists := r.HistSnapshot()
	// Both streams arrive sorted by family name; merge them so the combined
	// exposition stays sorted.
	i, j := 0, 0
	lastFamily := ""
	for i < len(samples) || j < len(hists) {
		if i < len(samples) && (j >= len(hists) || samples[i].Name <= hists[j].Name) {
			s := samples[i]
			i++
			if s.Name != lastFamily {
				if err := writeFamilyHeader(w, s.Name, s.Help, typeName(s.Kind)); err != nil {
					return err
				}
				lastFamily = s.Name
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, formatValue(s)); err != nil {
				return err
			}
			continue
		}
		h := hists[j]
		j++
		if h.Name != lastFamily {
			if err := writeFamilyHeader(w, h.Name, h.Help, "histogram"); err != nil {
				return err
			}
			lastFamily = h.Name
		}
		if err := writeHistSample(w, h); err != nil {
			return err
		}
	}
	return nil
}

// writeFamilyHeader emits the HELP (when present) and TYPE lines for a
// metric family.
func writeFamilyHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// labelsWith appends one key="value" pair to an already-rendered label set.
func labelsWith(ls, key, val string) string {
	pair := key + "=" + strconv.Quote(val)
	if ls == "" {
		return "{" + pair + "}"
	}
	return ls[:len(ls)-1] + "," + pair + "}"
}

// writeHistSample renders one label set of a histogram family: cumulative
// buckets, sum, and count.
func writeHistSample(w io.Writer, h HistSample) error {
	bounds := Buckets()
	var cum int64
	for b, c := range h.State.Counts {
		cum += c
		le := "+Inf"
		if b < len(bounds) {
			le = strconv.FormatFloat(bounds[b], 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, labelsWith(h.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, h.Labels, strconv.FormatFloat(h.State.Sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, h.Labels, h.State.Count)
	return err
}

// Handler serves the registry as Prometheus text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// publishExpvar exposes the default registry's samples as one expvar map
// under the key "freeride_metrics". Guarded by a Once because expvar panics
// on duplicate names.
var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("freeride_metrics", expvar.Func(func() any {
		samples := Default.Snapshot()
		m := make(map[string]float64, len(samples))
		for _, s := range samples {
			m[s.Name+s.Labels] = s.Value
		}
		return m
	}))
})

// NewMux builds the observability HTTP mux:
//
//	/metrics       Prometheus text exposition of the Default registry
//	/report        human-readable Report of the Default registry
//	/trace         JSON event log of recent engine passes (obs.Log)
//	/debug/vars    expvar (includes the freeride_metrics map)
//	/debug/pprof/  profiles; worker goroutines carry pprof labels
func NewMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteReport(w, Default)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Log.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// MetricsServer is a running observability endpoint.
type MetricsServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and serves it in a background goroutine until Close.
func Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MetricsServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: NewMux()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the endpoint.
func (s *MetricsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
