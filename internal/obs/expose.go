package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, HELP/TYPE emitted once
// per family, samples sorted by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	lastFamily := ""
	for _, s := range samples {
		if s.Name != lastFamily {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typeName(s.Kind)); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, formatValue(s)); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as Prometheus text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// publishExpvar exposes the default registry's samples as one expvar map
// under the key "freeride_metrics". Guarded by a Once because expvar panics
// on duplicate names.
var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("freeride_metrics", expvar.Func(func() any {
		samples := Default.Snapshot()
		m := make(map[string]float64, len(samples))
		for _, s := range samples {
			m[s.Name+s.Labels] = s.Value
		}
		return m
	}))
})

// NewMux builds the observability HTTP mux:
//
//	/metrics       Prometheus text exposition of the Default registry
//	/report        human-readable Report of the Default registry
//	/trace         JSON event log of recent engine passes (obs.Log)
//	/debug/vars    expvar (includes the freeride_metrics map)
//	/debug/pprof/  profiles; worker goroutines carry pprof labels
func NewMux() *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteReport(w, Default)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Log.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// MetricsServer is a running observability endpoint.
type MetricsServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and serves it in a background goroutine until Close.
func Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MetricsServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: NewMux()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the endpoint.
func (s *MetricsServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
