// Package sched provides chunk scheduling policies for parallel loops over a
// fixed index space.
//
// The FREERIDE engine (internal/freeride) splits the input dataset into
// units ("splits") and hands them to worker threads. The order and grouping
// in which splits reach workers is a scheduling policy decision; the paper's
// middleware says "the order in which data instances are read from the disks
// is determined by the runtime system", which this package makes pluggable.
//
// All schedulers partition the half-open range [0, n) into contiguous chunks
// and guarantee that every index is handed out exactly once.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chapelfreeride/internal/obs"
)

// Always-on scheduler counters: chunks handed out per policy (split-handling
// visibility, the first of the paper's §V overhead sources), steal traffic
// for the work-stealing policy, and lock contention for the mutex-guarded
// policies. Counters are resolved once in New, never on the Next hot path.
var (
	mChunks    = map[Policy]*obs.Counter{}
	mLockWaits = map[Policy]*obs.Counter{}
	hLockWaits = map[Policy]*obs.Histogram{}
	mResets    = map[Policy]*obs.Counter{}
	mSteals    = obs.Default.Counter("sched_steals_total",
		"chunks stolen from another worker's deque (worksteal policy)")
	mStealFail = obs.Default.Counter("sched_steal_failures_total",
		"full victim scans that found nothing to steal (worksteal policy)")
)

func init() {
	for _, p := range Policies() {
		label := obs.Label{Key: "policy", Value: p.String()}
		mChunks[p] = obs.Default.Counter("sched_chunks_total",
			"chunks handed to workers", label)
		mLockWaits[p] = obs.Default.Counter("sched_lock_waits_total",
			"Next calls that found the scheduler lock held", label)
		hLockWaits[p] = obs.Default.Histogram("sched_lock_wait_seconds",
			"time spent blocked acquiring a contended scheduler lock", label)
		mResets[p] = obs.Default.Counter("sched_resets_total",
			"schedulers re-armed over a new index space instead of reallocated", label)
	}
}

// Chunk is a contiguous, half-open index range [Begin, End).
type Chunk struct {
	Begin int
	End   int
}

// Len reports the number of indices covered by the chunk.
func (c Chunk) Len() int { return c.End - c.Begin }

// Scheduler hands out chunks of a fixed index space to concurrent workers.
//
// Next is safe for concurrent use. It returns ok=false once the index space
// is exhausted; after that every subsequent call also returns ok=false.
//
// Reset re-arms the scheduler over a new index space [0, n) with the same
// policy, worker count, and chunk size, reusing internal allocations so
// iterative callers (an engine session running many passes) pay no per-pass
// scheduler allocation. Reset must not be called while Next calls are in
// flight.
type Scheduler interface {
	// Next returns the next chunk for the calling worker.
	Next(worker int) (c Chunk, ok bool)
	// Reset re-arms the scheduler over [0, n). A non-positive n yields a
	// scheduler that is immediately exhausted.
	Reset(n int)
}

// Policy selects a scheduling algorithm.
type Policy int

const (
	// Static divides the index space into one contiguous block per worker.
	// Zero coordination overhead, but no load balancing.
	Static Policy = iota
	// Dynamic (self-scheduling) hands out fixed-size chunks from a shared
	// counter. Good load balancing, one atomic op per chunk.
	Dynamic
	// Guided hands out chunks whose size decays geometrically with the
	// remaining work (remaining/(2*workers), floored at the chunk size).
	Guided
	// WorkStealing gives each worker a private deque of chunks; idle
	// workers steal from victims round-robin.
	WorkStealing
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case WorkStealing:
		return "worksteal"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Policies lists every available policy, for sweeps and tests.
func Policies() []Policy { return []Policy{Static, Dynamic, Guided, WorkStealing} }

// ParsePolicy resolves a display name ("static", "worksteal", ...) back to
// its Policy — the inverse of String, for config files and job params.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, nil
		}
	}
	return Dynamic, fmt.Errorf("sched: unknown policy %q (want static, dynamic, guided, or worksteal)", name)
}

// New builds a scheduler over the index space [0, n) for the given number of
// workers. chunkSize is the grain for Dynamic and WorkStealing and the floor
// for Guided; it is ignored by Static. A non-positive n yields a scheduler
// that is immediately exhausted. A non-positive chunkSize defaults to 1, and
// a non-positive workers count defaults to 1.
func New(p Policy, n, workers, chunkSize int) Scheduler {
	if workers < 1 {
		workers = 1
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	if n < 0 {
		n = 0
	}
	switch p {
	case Static:
		return newStatic(n, workers)
	case Dynamic:
		return &dynamic{n: int64(n), chunk: int64(chunkSize), chunkC: mChunks[Dynamic]}
	case Guided:
		return &guided{n: int64(n), workers: int64(workers), minChunk: int64(chunkSize),
			chunkC: mChunks[Guided], lockWaitC: mLockWaits[Guided], lockWaitH: hLockWaits[Guided]}
	case WorkStealing:
		return newWorkStealing(n, workers, chunkSize)
	default:
		return &dynamic{n: int64(n), chunk: int64(chunkSize), chunkC: mChunks[Dynamic]}
	}
}

// static pre-computes one contiguous block per worker.
type static struct {
	blocks []Chunk
	taken  []atomic.Bool
	chunkC *obs.Counter
}

func newStatic(n, workers int) *static {
	s := &static{
		blocks: make([]Chunk, workers),
		taken:  make([]atomic.Bool, workers),
		chunkC: mChunks[Static],
	}
	s.fill(n)
	return s
}

// fill distributes n over the workers as evenly as possible: the first
// n%workers blocks get one extra element.
func (s *static) fill(n int) {
	workers := len(s.blocks)
	base := n / workers
	extra := n % workers
	begin := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		s.blocks[w] = Chunk{Begin: begin, End: begin + size}
		begin += size
	}
}

// Reset implements Scheduler, recomputing the per-worker blocks in place.
func (s *static) Reset(n int) {
	if n < 0 {
		n = 0
	}
	s.fill(n)
	for w := range s.taken {
		s.taken[w].Store(false)
	}
	mResets[Static].Inc()
}

func (s *static) Next(worker int) (Chunk, bool) {
	if worker < 0 || worker >= len(s.blocks) {
		return Chunk{}, false
	}
	if s.taken[worker].Swap(true) {
		return Chunk{}, false
	}
	b := s.blocks[worker]
	if b.Len() == 0 {
		return Chunk{}, false
	}
	s.chunkC.Inc()
	return b, true
}

// dynamic is classic self-scheduling off a shared atomic cursor.
type dynamic struct {
	cursor atomic.Int64
	n      int64
	chunk  int64
	chunkC *obs.Counter
}

func (d *dynamic) Next(worker int) (Chunk, bool) {
	begin := d.cursor.Add(d.chunk) - d.chunk
	if begin >= d.n {
		return Chunk{}, false
	}
	end := begin + d.chunk
	if end > d.n {
		end = d.n
	}
	d.chunkC.Inc()
	return Chunk{Begin: int(begin), End: int(end)}, true
}

// Reset implements Scheduler: rewind the shared cursor over a new range.
func (d *dynamic) Reset(n int) {
	if n < 0 {
		n = 0
	}
	d.n = int64(n)
	d.cursor.Store(0)
	mResets[Dynamic].Inc()
}

// guided hands out geometrically shrinking chunks under a mutex (the chunk
// size depends on the remaining work, so a single atomic does not suffice).
type guided struct {
	mu        sync.Mutex
	cursor    int64
	n         int64
	workers   int64
	minChunk  int64
	chunkC    *obs.Counter
	lockWaitC *obs.Counter
	lockWaitH *obs.Histogram
}

func (g *guided) Next(worker int) (Chunk, bool) {
	if !g.mu.TryLock() {
		waitSchedLock(&g.mu, g.lockWaitC, g.lockWaitH)
	}
	defer g.mu.Unlock()
	remaining := g.n - g.cursor
	if remaining <= 0 {
		return Chunk{}, false
	}
	size := remaining / (2 * g.workers)
	if size < g.minChunk {
		size = g.minChunk
	}
	if size > remaining {
		size = remaining
	}
	c := Chunk{Begin: int(g.cursor), End: int(g.cursor + size)}
	g.cursor += size
	g.chunkC.Inc()
	return c, true
}

// Reset implements Scheduler: rewind the cursor over a new range.
func (g *guided) Reset(n int) {
	if n < 0 {
		n = 0
	}
	g.mu.Lock()
	g.n = int64(n)
	g.cursor = 0
	g.mu.Unlock()
	mResets[Guided].Inc()
}

// workStealing gives each worker a private LIFO stack of chunks; when a
// worker's stack is empty it scans other workers' stacks (FIFO end) for work.
type workStealing struct {
	deques    []wsDeque
	chunkSize int
	chunkC    *obs.Counter
}

type wsDeque struct {
	mu        sync.Mutex
	chunks    []Chunk // owner pops from the back; thieves steal from the front
	head      int     // chunks[:head] have been stolen; keeps the backing array reusable by Reset
	lockWaitC *obs.Counter
	lockWaitH *obs.Histogram
}

// waitSchedLock acquires mu on the already-contended path, timing only
// waits the failed TryLock proved would block (the uncontended fast path
// never reaches it).
func waitSchedLock(mu *sync.Mutex, c *obs.Counter, h *obs.Histogram) {
	c.Inc()
	t := time.Now()
	mu.Lock()
	h.ObserveDuration(time.Since(t))
}

func newWorkStealing(n, workers, chunkSize int) *workStealing {
	ws := &workStealing{deques: make([]wsDeque, workers), chunkSize: chunkSize, chunkC: mChunks[WorkStealing]}
	for w := range ws.deques {
		ws.deques[w].lockWaitC = mLockWaits[WorkStealing]
		ws.deques[w].lockWaitH = hLockWaits[WorkStealing]
	}
	ws.fill(n)
	return ws
}

// fill pre-splits each worker's static block into chunkSize pieces so there
// is something to steal, reusing each deque's backing array.
func (ws *workStealing) fill(n int) {
	workers := len(ws.deques)
	base := n / workers
	extra := n % workers
	begin := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < extra {
			size++
		}
		end := begin + size
		d := &ws.deques[w]
		d.chunks = d.chunks[:0]
		d.head = 0
		for b := begin; b < end; b += ws.chunkSize {
			e := b + ws.chunkSize
			if e > end {
				e = end
			}
			d.chunks = append(d.chunks, Chunk{Begin: b, End: e})
		}
		begin = end
	}
}

// Reset implements Scheduler, refilling the deques in place.
func (ws *workStealing) Reset(n int) {
	if n < 0 {
		n = 0
	}
	ws.fill(n)
	mResets[WorkStealing].Inc()
}

func (ws *workStealing) Next(worker int) (Chunk, bool) {
	if worker < 0 || worker >= len(ws.deques) {
		worker = 0
	}
	// Pop from our own deque first (back = most recently pushed).
	if c, ok := ws.deques[worker].popBack(); ok {
		ws.chunkC.Inc()
		return c, true
	}
	// Steal round-robin starting from the next worker.
	n := len(ws.deques)
	for i := 1; i < n; i++ {
		victim := (worker + i) % n
		if c, ok := ws.deques[victim].popFront(); ok {
			ws.chunkC.Inc()
			mSteals.Inc()
			return c, true
		}
	}
	mStealFail.Inc()
	return Chunk{}, false
}

func (d *wsDeque) popBack() (Chunk, bool) {
	if !d.mu.TryLock() {
		waitSchedLock(&d.mu, d.lockWaitC, d.lockWaitH)
	}
	defer d.mu.Unlock()
	if len(d.chunks) <= d.head {
		return Chunk{}, false
	}
	c := d.chunks[len(d.chunks)-1]
	d.chunks = d.chunks[:len(d.chunks)-1]
	return c, true
}

func (d *wsDeque) popFront() (Chunk, bool) {
	if !d.mu.TryLock() {
		waitSchedLock(&d.mu, d.lockWaitC, d.lockWaitH)
	}
	defer d.mu.Unlock()
	if len(d.chunks) <= d.head {
		return Chunk{}, false
	}
	c := d.chunks[d.head]
	d.head++
	return c, true
}
