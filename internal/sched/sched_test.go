package sched

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// drainSequential pulls every chunk from the scheduler using a single worker
// id loop (round-robining the worker argument so static schedulers drain).
func drainSequential(s Scheduler, workers int) []Chunk {
	var out []Chunk
	for w := 0; w < workers; w++ {
		for {
			c, ok := s.Next(w)
			if !ok {
				break
			}
			out = append(out, c)
		}
	}
	return out
}

// coverage verifies the chunks exactly tile [0, n): no gap, no overlap.
func coverage(t *testing.T, chunks []Chunk, n int) {
	t.Helper()
	seen := make([]int, n)
	for _, c := range chunks {
		if c.Begin < 0 || c.End > n || c.Begin >= c.End {
			t.Fatalf("bad chunk %+v for n=%d", c, n)
		}
		for i := c.Begin; i < c.End; i++ {
			seen[i]++
		}
	}
	for i, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("index %d handed out %d times (want exactly 1)", i, cnt)
		}
	}
}

func TestChunkLen(t *testing.T) {
	if (Chunk{Begin: 3, End: 10}).Len() != 7 {
		t.Fatal("Len mismatch")
	}
	if (Chunk{}).Len() != 0 {
		t.Fatal("zero chunk should have zero length")
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		Static: "static", Dynamic: "dynamic", Guided: "guided", WorkStealing: "worksteal",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(99).String() != "policy(99)" {
		t.Errorf("unknown policy string = %q", Policy(99).String())
	}
}

func TestPoliciesListsAll(t *testing.T) {
	ps := Policies()
	if len(ps) != 4 {
		t.Fatalf("Policies() returned %d entries, want 4", len(ps))
	}
}

func TestSequentialCoverageAllPolicies(t *testing.T) {
	cases := []struct {
		n, workers, chunk int
	}{
		{0, 1, 1},
		{1, 1, 1},
		{1, 8, 16},
		{7, 3, 2},
		{100, 4, 7},
		{1000, 8, 64},
		{13, 16, 1}, // more workers than items
	}
	for _, p := range Policies() {
		for _, c := range cases {
			s := New(p, c.n, c.workers, c.chunk)
			chunks := drainSequential(s, c.workers)
			coverage(t, chunks, c.n)
		}
	}
}

func TestConcurrentCoverageAllPolicies(t *testing.T) {
	const n = 10000
	for _, p := range Policies() {
		for _, workers := range []int{1, 2, 4, 8} {
			s := New(p, n, workers, 33)
			var mu sync.Mutex
			var all []Chunk
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var local []Chunk
					for {
						c, ok := s.Next(w)
						if !ok {
							break
						}
						local = append(local, c)
					}
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
				}(w)
			}
			wg.Wait()
			coverage(t, all, n)
		}
	}
}

func TestStaticBlockShape(t *testing.T) {
	// 10 items over 4 workers: blocks of 3,3,2,2 in order.
	s := New(Static, 10, 4, 0)
	wantLens := []int{3, 3, 2, 2}
	begin := 0
	for w := 0; w < 4; w++ {
		c, ok := s.Next(w)
		if !ok {
			t.Fatalf("worker %d got no block", w)
		}
		if c.Begin != begin || c.Len() != wantLens[w] {
			t.Fatalf("worker %d block %+v, want begin=%d len=%d", w, c, begin, wantLens[w])
		}
		begin = c.End
		// Second call must be exhausted.
		if _, ok := s.Next(w); ok {
			t.Fatalf("worker %d got a second block", w)
		}
	}
}

func TestStaticOutOfRangeWorker(t *testing.T) {
	s := New(Static, 10, 2, 0)
	if _, ok := s.Next(-1); ok {
		t.Fatal("negative worker id should get no work")
	}
	if _, ok := s.Next(5); ok {
		t.Fatal("out-of-range worker id should get no work")
	}
}

func TestDynamicChunkSizes(t *testing.T) {
	s := New(Dynamic, 10, 2, 4)
	sizes := []int{}
	for {
		c, ok := s.Next(0)
		if !ok {
			break
		}
		sizes = append(sizes, c.Len())
	}
	want := []int{4, 4, 2}
	if len(sizes) != len(want) {
		t.Fatalf("got %v chunks, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunk sizes %v, want %v", sizes, want)
		}
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	s := New(Guided, 1000, 2, 10)
	var sizes []int
	for {
		c, ok := s.Next(0)
		if !ok {
			break
		}
		sizes = append(sizes, c.Len())
	}
	if len(sizes) < 3 {
		t.Fatalf("expected multiple guided chunks, got %v", sizes)
	}
	// First chunk should be remaining/(2*workers) = 1000/4 = 250.
	if sizes[0] != 250 {
		t.Fatalf("first guided chunk = %d, want 250", sizes[0])
	}
	// Sizes must be non-increasing until the floor.
	for i := 1; i < len(sizes)-1; i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("guided sizes increased: %v", sizes)
		}
	}
	if !sort.SliceIsSorted(sizes, func(i, j int) bool { return sizes[i] >= sizes[j] }) {
		// Last chunk may be a remainder smaller than the floor; allow it.
		last := sizes[len(sizes)-1]
		if last > sizes[len(sizes)-2] {
			t.Fatalf("guided sizes not decreasing: %v", sizes)
		}
	}
}

func TestWorkStealingStealsFromVictim(t *testing.T) {
	// All work pre-assigned to worker 0's deque when workers=2 and n small:
	// give worker 1 an empty block by using n=4, workers=2 → both have work;
	// instead drain worker 1 entirely via stealing by never calling Next(0).
	s := New(WorkStealing, 100, 2, 10)
	var got []Chunk
	for {
		c, ok := s.Next(1)
		if !ok {
			break
		}
		got = append(got, c)
	}
	coverage(t, got, 100)
}

func TestNewDefaultsAndDegenerateInputs(t *testing.T) {
	// Negative n behaves as empty.
	for _, p := range Policies() {
		s := New(p, -5, 2, 4)
		if _, ok := s.Next(0); ok {
			t.Fatalf("%v: negative n should be empty", p)
		}
	}
	// Zero workers and zero chunk size are defaulted, not panics.
	s := New(Dynamic, 10, 0, 0)
	chunks := drainSequential(s, 1)
	coverage(t, chunks, 10)
	// Unknown policy falls back to dynamic.
	s = New(Policy(42), 10, 2, 3)
	coverage(t, drainSequential(s, 2), 10)
}

// Property: for arbitrary (n, workers, chunkSize) every policy tiles [0, n).
func TestPropertyCoverage(t *testing.T) {
	f := func(nRaw uint16, workersRaw, chunkRaw uint8) bool {
		n := int(nRaw % 2048)
		workers := int(workersRaw%8) + 1
		chunk := int(chunkRaw%64) + 1
		for _, p := range Policies() {
			s := New(p, n, workers, chunk)
			chunks := drainSequential(s, workers)
			seen := make([]int, n)
			for _, c := range chunks {
				if c.Begin < 0 || c.End > n || c.Begin >= c.End {
					return false
				}
				for i := c.Begin; i < c.End; i++ {
					seen[i]++
				}
			}
			for _, cnt := range seen {
				if cnt != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
