package sched

import (
	"sync"
	"testing"

	"chapelfreeride/internal/obs"
)

// drain consumes a scheduler with the given worker count and returns the
// number of chunks handed out.
func drain(s Scheduler, workers int) int64 {
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			for {
				if _, ok := s.Next(w); !ok {
					break
				}
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}

// TestChunkCountersPerPolicy checks that sched_chunks_total advances by
// exactly the number of chunks each policy hands out.
func TestChunkCountersPerPolicy(t *testing.T) {
	const n, workers, chunk = 1000, 4, 7
	for _, p := range Policies() {
		label := obs.Label{Key: "policy", Value: p.String()}
		before := obs.Default.Value("sched_chunks_total", label)
		handed := drain(New(p, n, workers, chunk), workers)
		delta := obs.Default.Value("sched_chunks_total", label) - before
		if delta != handed {
			t.Fatalf("%v: counter delta %d != chunks handed %d", p, delta, handed)
		}
		if handed == 0 {
			t.Fatalf("%v: no chunks handed out", p)
		}
	}
}

// TestStealCounters forces steals: one worker never drains its own deque, so
// the other must steal from it.
func TestStealCounters(t *testing.T) {
	before := obs.Default.Value("sched_steals_total")
	s := New(WorkStealing, 100, 2, 10)
	// Worker 1 drains everything (its own deque, then steals from worker 0).
	seen := 0
	for {
		if _, ok := s.Next(1); !ok {
			break
		}
		seen++
	}
	if seen != 10 {
		t.Fatalf("worker 1 drained %d chunks, want 10", seen)
	}
	delta := obs.Default.Value("sched_steals_total") - before
	if delta < 5 {
		t.Fatalf("steals delta = %d, want >= 5 (worker 0's half)", delta)
	}
}
