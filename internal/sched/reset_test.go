package sched

import (
	"sync"
	"testing"
)

// TestResetCoverageAllPolicies: after draining a scheduler, Reset re-arms it
// over a new (larger, smaller, and equal) index space and a sequential drain
// covers exactly [0, m) once — for every policy.
func TestResetCoverageAllPolicies(t *testing.T) {
	const workers = 3
	for _, p := range Policies() {
		s := New(p, 40, workers, 4)
		coverage(t, drainSequential(s, workers), 40)
		for _, m := range []int{100, 7, 40, 0, 13} {
			s.Reset(m)
			coverage(t, drainSequential(s, workers), m)
			// Exhaustion is sticky until the next Reset.
			for w := 0; w < workers; w++ {
				if _, ok := s.Next(w); ok {
					t.Fatalf("%v: Next after drain (reset to %d) returned a chunk", p, m)
				}
			}
		}
	}
}

// TestResetConcurrentCoverage: a reset scheduler drained by concurrent
// workers still covers the new space exactly once (the session engine drains
// every pass this way).
func TestResetConcurrentCoverage(t *testing.T) {
	const workers = 4
	for _, p := range Policies() {
		s := New(p, 64, workers, 4)
		coverage(t, drainSequential(s, workers), 64)
		for pass := 0; pass < 3; pass++ {
			s.Reset(97)
			var mu sync.Mutex
			var all []Chunk
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						c, ok := s.Next(w)
						if !ok {
							return
						}
						mu.Lock()
						all = append(all, c)
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			coverage(t, all, 97)
		}
	}
}
