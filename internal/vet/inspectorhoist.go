package vet

import (
	"go/ast"
)

// inspectorBuilders are the translate-time entry points of the sparse
// inspector–executor pipeline: each one sorts/linearizes the whole nonzero
// set or materializes index tables, an O(nnz log nnz) cost meant to be paid
// once per translation, never once per split.
var inspectorBuilders = map[string]bool{
	"NewInspectorPlan": true,
	"LinearizeCOO":     true,
	"TranslateSparse":  true,
}

// InspectorHoist flags inspector/index-table construction inside reduction
// bodies. The inspector–executor contract is that the inspector runs at
// translate time — its table proofs (FRV013/FRV014) are what let the
// executor skip per-element bounds checks — so building a plan inside a
// Reduction/BlockReduction/Kernel literal re-pays the full sort and
// allocation on every split of every pass, silently turning the O(nnz)
// executor into O(splits·nnz log nnz). Hoist the plan to translate time and
// capture the resulting tables instead.
var InspectorHoist = &Analyzer{
	Name: "inspectorhoist",
	Doc:  "inspector plans and index tables must be built at translate time, not inside per-split reduction bodies",
	Run:  runInspectorHoist,
}

func runInspectorHoist(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !kernelFields[key.Name] {
						continue
					}
					if fl, ok := kv.Value.(*ast.FuncLit); ok {
						checkInspectorHoist(pass, key.Name, fl)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !kernelFields[sel.Sel.Name] || i >= len(v.Rhs) {
						continue
					}
					if fl, ok := v.Rhs[i].(*ast.FuncLit); ok {
						checkInspectorHoist(pass, sel.Sel.Name, fl)
					}
				}
			}
			return true
		})
	}
}

// checkInspectorHoist walks one kernel function literal for inspector
// construction calls. Matching is syntactic on the callee name (qualified
// or bare, so dot imports and intra-package calls both hit), consistent
// with the framework's no-go/types design.
func checkInspectorHoist(pass *Pass, field string, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		default:
			return true
		}
		if inspectorBuilders[name] {
			pass.Report(call, "%s kernel calls %s; inspectors run once at translate time — hoist the plan out of the per-split hot loop and capture its tables", field, name)
		}
		return true
	})
}
