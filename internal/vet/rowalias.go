package vet

import (
	"go/ast"
	"go/token"
)

// RowAlias flags kernels that retain or mutate a borrowed row view. With
// zero-copy sources (memory matrices, mmap-backed dataset files) args.Data
// and args.Row(i) alias the source's storage directly — the engine's
// no-retention contract says kernels treat those slices as read-only and
// drop them before the call returns. A kernel that writes through the view
// corrupts the shared dataset for every other worker; one that stores the
// view into captured state (or appends the slice itself somewhere) holds a
// pointer that dangles once a mapped source unmaps.
//
// The analysis is syntactic: it tracks the kernel's args parameter,
// expressions rooted at args.Data / args.Row(...), sub-slices of those, and
// local variables assigned from them (to a fixpoint, so aliases of aliases
// count). Flagged shapes: element writes through a borrowed view, append
// with a borrowed view as the destination, append that retains the view
// itself as an element (append(x, row) — append(x, row...) copies scalars
// and is fine), and stores of a borrowed view to captured variables,
// package variables, or struct fields. Calls are assumed non-retaining
// (copy(dst, row) and math on row elements are the idiomatic reads);
// justified exceptions use //frds:vet-ignore rowalias.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "kernels must not retain or mutate borrowed row views (args.Data, args.Row)",
	Run:  runRowAlias,
}

func runRowAlias(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !kernelFields[key.Name] {
						continue
					}
					if fl, ok := kv.Value.(*ast.FuncLit); ok {
						checkRowAlias(pass, key.Name, fl)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !kernelFields[sel.Sel.Name] || i >= len(v.Rhs) {
						continue
					}
					if fl, ok := v.Rhs[i].(*ast.FuncLit); ok {
						checkRowAlias(pass, sel.Sel.Name, fl)
					}
				}
			}
			return true
		})
	}
}

// checkRowAlias analyzes one kernel function literal.
func checkRowAlias(pass *Pass, field string, fl *ast.FuncLit) {
	argName := kernelArgName(fl)
	if argName == "" || argName == "_" {
		return
	}
	borrowed := collectBorrowed(fl, argName)
	declared := declaredIdents(fl)
	isB := func(e ast.Expr) bool { return isBorrowedExpr(e, argName, borrowed) }

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				// Writes through a borrowed view: row[j] = x, args.Data[k] = x.
				if ix, ok := lhs.(*ast.IndexExpr); ok && isB(ix.X) {
					pass.Report(lhs, "%s kernel writes through borrowed row view %q; row views alias the data source (read-only, see freeride.BlockArgs.Data)", field, exprText(ix.X))
					continue
				}
				if v.Tok == token.DEFINE || i >= len(v.Rhs) {
					continue
				}
				if !isB(v.Rhs[i]) {
					continue
				}
				// Retention: borrowed view stored outside the kernel's frame.
				root := rootIdent(lhs)
				switch {
				case root == nil || !declared[root.Name]:
					pass.Report(lhs, "%s kernel stores borrowed row view into captured state %q; views must not outlive the kernel call (copy the row instead)", field, exprText(lhs))
				case isFieldStore(lhs):
					pass.Report(lhs, "%s kernel stores borrowed row view into struct field %q; the struct can escape the call — copy the row instead", field, exprText(lhs))
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := v.X.(*ast.IndexExpr); ok && isB(ix.X) {
				pass.Report(v, "%s kernel writes through borrowed row view %q; row views alias the data source (read-only)", field, exprText(ix.X))
			}
		case *ast.CallExpr:
			id, ok := v.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(v.Args) == 0 {
				return true
			}
			if isB(v.Args[0]) {
				pass.Report(v, "%s kernel appends to borrowed row view %q; growth writes into (or re-uses) the source's backing array", field, exprText(v.Args[0]))
			}
			if v.Ellipsis == token.NoPos {
				for _, arg := range v.Args[1:] {
					if isB(arg) {
						pass.Report(v, "%s kernel retains borrowed row view %q by appending it; append the row's copy (or its elements with ...) instead", field, exprText(arg))
					}
				}
			}
		}
		return true
	})
}

// kernelArgName returns the kernel literal's first parameter name — the
// *ReductionArgs/*BlockArgs handle the borrowed views hang off.
func kernelArgName(fl *ast.FuncLit) string {
	if fl.Type.Params == nil || len(fl.Type.Params.List) == 0 {
		return ""
	}
	names := fl.Type.Params.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// collectBorrowed finds local variables aliasing a borrowed view, iterating
// to a fixpoint so chains (row := args.Row(i); r2 := row[1:]) all count.
func collectBorrowed(fl *ast.FuncLit, argName string) map[string]bool {
	borrowed := map[string]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || i >= len(v.Rhs) {
						continue
					}
					if !borrowed[id.Name] && isBorrowedExpr(v.Rhs[i], argName, borrowed) {
						borrowed[id.Name] = true
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range v.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && !borrowed[name.Name] && isBorrowedExpr(vs.Values[i], argName, borrowed) {
							borrowed[name.Name] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return borrowed
}

// isBorrowedExpr reports whether e evaluates to (a sub-slice of) a borrowed
// row view: args.Data, args.Row(...), a tracked alias, or a slice/paren
// wrapper of one. Indexing is NOT borrowed — row[j] is a scalar copy.
func isBorrowedExpr(e ast.Expr, argName string, borrowed map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return borrowed[v.Name]
	case *ast.ParenExpr:
		return isBorrowedExpr(v.X, argName, borrowed)
	case *ast.SliceExpr:
		return isBorrowedExpr(v.X, argName, borrowed)
	case *ast.SelectorExpr:
		id, ok := v.X.(*ast.Ident)
		return ok && id.Name == argName && v.Sel.Name == "Data"
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Row" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == argName
	}
	return false
}

// isFieldStore reports whether lhs writes a struct field (x.f, x.y.f, ...).
func isFieldStore(lhs ast.Expr) bool {
	for {
		switch v := lhs.(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.ParenExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

// exprText renders a short source-ish form of simple expressions for
// messages (identifier chains and calls; falls back to the root name).
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.SliceExpr:
		return exprText(v.X) + "[...]"
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	}
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "expression"
}
