package vet

import (
	"go/ast"
	"go/token"
)

// RowAlias flags kernels that retain or mutate a borrowed row view. With
// zero-copy sources (memory matrices, mmap-backed dataset files) args.Data
// and args.Row(i) alias the source's storage directly — the engine's
// no-retention contract says kernels treat those slices as read-only and
// drop them before the call returns. A kernel that writes through the view
// corrupts the shared dataset for every other worker; one that stores the
// view into captured state (or appends the slice itself somewhere) holds a
// pointer that dangles once a mapped source unmaps.
//
// The analysis is syntactic: it tracks the kernel's args parameter,
// expressions rooted at args.Data / args.Row(...), sub-slices of those, and
// local variables assigned from them (to a fixpoint, so aliases of aliases
// count). Flagged shapes: element writes through a borrowed view, append
// with a borrowed view as the destination, append that retains the view
// itself as an element (append(x, row) — append(x, row...) copies scalars
// and is fine), and stores of a borrowed view to captured variables,
// package variables, or struct fields. Calls are assumed non-retaining
// (copy(dst, row) and math on row elements are the idiomatic reads);
// justified exceptions use //frds:vet-ignore rowalias.
//
// Block kernels get a second, looser contract for args.Acc(): the
// worker-local accumulation buffer is pooled across splits (and swapped
// for a hashed map on ScatterBlock jobs whose object crosses
// Config.SparseAccCells), so element writes are the buffer's whole
// purpose, but the slice itself must not outlive the call or be resized.
// Flagged shapes for Acc() views: append with the view as destination
// (resizing detaches the kernel from the pooled buffer), append retaining
// the view as an element, and stores to captured variables, package
// variables, or struct fields.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "kernels must not retain or mutate borrowed row views (args.Data, args.Row), nor retain or resize the pooled accumulator view (args.Acc)",
	Run:  runRowAlias,
}

func runRowAlias(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !kernelFields[key.Name] {
						continue
					}
					if fl, ok := kv.Value.(*ast.FuncLit); ok {
						checkRowAlias(pass, key.Name, fl)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !kernelFields[sel.Sel.Name] || i >= len(v.Rhs) {
						continue
					}
					if fl, ok := v.Rhs[i].(*ast.FuncLit); ok {
						checkRowAlias(pass, sel.Sel.Name, fl)
					}
				}
			}
			return true
		})
	}
}

// checkRowAlias analyzes one kernel function literal.
func checkRowAlias(pass *Pass, field string, fl *ast.FuncLit) {
	argName := kernelArgName(fl)
	if argName == "" || argName == "_" {
		return
	}
	borrowed := collectViews(fl, func(e ast.Expr, aliases map[string]bool) bool {
		return isBorrowedExpr(e, argName, aliases)
	})
	pooled := collectViews(fl, func(e ast.Expr, aliases map[string]bool) bool {
		return isPooledExpr(e, argName, aliases)
	})
	declared := declaredIdents(fl)
	isB := func(e ast.Expr) bool { return isBorrowedExpr(e, argName, borrowed) }
	isP := func(e ast.Expr) bool { return isPooledExpr(e, argName, pooled) }

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				// Writes through a borrowed view: row[j] = x, args.Data[k] = x.
				// (Element writes through the pooled Acc() view are sanctioned —
				// that buffer exists to be written.)
				if ix, ok := lhs.(*ast.IndexExpr); ok && isB(ix.X) {
					pass.Report(lhs, "%s kernel writes through borrowed row view %q; row views alias the data source (read-only, see freeride.BlockArgs.Data)", field, exprText(ix.X))
					continue
				}
				if v.Tok == token.DEFINE || i >= len(v.Rhs) {
					continue
				}
				// Retention: borrowed or pooled view stored outside the
				// kernel's frame.
				kind := ""
				switch {
				case isB(v.Rhs[i]):
					kind = "borrowed row"
				case isP(v.Rhs[i]):
					kind = "pooled accumulator"
				default:
					continue
				}
				root := rootIdent(lhs)
				switch {
				case root == nil || !declared[root.Name]:
					pass.Report(lhs, "%s kernel stores %s view into captured state %q; views must not outlive the kernel call (copy instead)", field, kind, exprText(lhs))
				case isFieldStore(lhs):
					pass.Report(lhs, "%s kernel stores %s view into struct field %q; the struct can escape the call — copy instead", field, kind, exprText(lhs))
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := v.X.(*ast.IndexExpr); ok && isB(ix.X) {
				pass.Report(v, "%s kernel writes through borrowed row view %q; row views alias the data source (read-only)", field, exprText(ix.X))
			}
		case *ast.CallExpr:
			id, ok := v.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(v.Args) == 0 {
				return true
			}
			if isB(v.Args[0]) {
				pass.Report(v, "%s kernel appends to borrowed row view %q; growth writes into (or re-uses) the source's backing array", field, exprText(v.Args[0]))
			} else if isP(v.Args[0]) {
				pass.Report(v, "%s kernel appends to pooled accumulator view %q; the engine recycles Acc() buffers across splits — resizing detaches the kernel from the pooled cells", field, exprText(v.Args[0]))
			}
			if v.Ellipsis == token.NoPos {
				for _, arg := range v.Args[1:] {
					if isB(arg) {
						pass.Report(v, "%s kernel retains borrowed row view %q by appending it; append the row's copy (or its elements with ...) instead", field, exprText(arg))
					} else if isP(arg) {
						pass.Report(v, "%s kernel retains pooled accumulator view %q by appending it; the buffer is reused after the call — append a copy instead", field, exprText(arg))
					}
				}
			}
		}
		return true
	})
}

// kernelArgName returns the kernel literal's first parameter name — the
// *ReductionArgs/*BlockArgs handle the borrowed views hang off.
func kernelArgName(fl *ast.FuncLit) string {
	if fl.Type.Params == nil || len(fl.Type.Params.List) == 0 {
		return ""
	}
	names := fl.Type.Params.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// collectViews finds local variables aliasing a tracked view, iterating to
// a fixpoint so chains (row := args.Row(i); r2 := row[1:]) all count. The
// predicate decides whether an expression is a view, given the aliases
// found so far.
func collectViews(fl *ast.FuncLit, isView func(e ast.Expr, aliases map[string]bool) bool) map[string]bool {
	aliases := map[string]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || i >= len(v.Rhs) {
						continue
					}
					if !aliases[id.Name] && isView(v.Rhs[i], aliases) {
						aliases[id.Name] = true
						changed = true
					}
				}
			case *ast.GenDecl:
				for _, spec := range v.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && !aliases[name.Name] && isView(vs.Values[i], aliases) {
							aliases[name.Name] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return aliases
}

// isBorrowedExpr reports whether e evaluates to (a sub-slice of) a borrowed
// row view: args.Data, args.Row(...), a tracked alias, or a slice/paren
// wrapper of one. Indexing is NOT borrowed — row[j] is a scalar copy.
func isBorrowedExpr(e ast.Expr, argName string, borrowed map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return borrowed[v.Name]
	case *ast.ParenExpr:
		return isBorrowedExpr(v.X, argName, borrowed)
	case *ast.SliceExpr:
		return isBorrowedExpr(v.X, argName, borrowed)
	case *ast.SelectorExpr:
		id, ok := v.X.(*ast.Ident)
		return ok && id.Name == argName && v.Sel.Name == "Data"
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Row" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == argName
	}
	return false
}

// isPooledExpr reports whether e evaluates to (a sub-slice of) the pooled
// accumulator view: args.Acc(), a tracked alias, or a slice/paren wrapper of
// one. Indexing is NOT pooled — acc[k] is a scalar cell.
func isPooledExpr(e ast.Expr, argName string, pooled map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return pooled[v.Name]
	case *ast.ParenExpr:
		return isPooledExpr(v.X, argName, pooled)
	case *ast.SliceExpr:
		return isPooledExpr(v.X, argName, pooled)
	case *ast.CallExpr:
		sel, ok := v.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Acc" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == argName
	}
	return false
}

// isFieldStore reports whether lhs writes a struct field (x.f, x.y.f, ...).
func isFieldStore(lhs ast.Expr) bool {
	for {
		switch v := lhs.(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.ParenExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		case *ast.IndexExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

// exprText renders a short source-ish form of simple expressions for
// messages (identifier chains and calls; falls back to the root name).
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprText(v.X) + "[...]"
	case *ast.SliceExpr:
		return exprText(v.X) + "[...]"
	case *ast.ParenExpr:
		return exprText(v.X)
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	}
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "expression"
}
