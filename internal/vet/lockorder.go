package vet

import (
	"go/ast"
	"sort"
	"strings"
)

// LockOrder flags user-callback invocations made while a mutex is held.
// FREERIDE's contract is that strategy locks (robj's per-group/per-cell
// locks, the engine's bookkeeping mutexes) guard only the engine's own
// state: user callbacks (Combine, LocalCombine, Reduction, Finalize, the
// kernels) run lock-free, so a callback can take arbitrarily long — or call
// back into the engine — without deadlocking the worker pool or serializing
// other workers behind it.
//
// The analyzer tracks Lock/RLock...Unlock/RUnlock windows per function
// (including TryLock guards in if conditions) and reports any call to a
// known callback name inside a window. defer'd Unlocks keep the window open
// to the end of the function, matching runtime behavior.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must not be held across user-callback invocations",
	Run:  runLockOrder,
}

// callbackNames are the spec/class callback selectors whose invocation under
// a lock is a contract violation.
var callbackNames = map[string]bool{
	"Combine":        true,
	"LocalCombine":   true,
	"Reduction":      true,
	"BlockReduction": true,
	"Finalize":       true,
	"LocalInit":      true,
	"Kernel":         true,
	"BlockKernel":    true,
}

// copyHeld clones a held-lock set for a nested control-flow branch.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func runLockOrder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBlock(pass, fd.Body.List, map[string]bool{})
		}
	}
}

// checkLockBlock scans a statement list with the set of currently-held lock
// chains, recursing into nested control flow with a copy (a lock released
// on one branch is conservatively still considered released only within
// that branch).
func checkLockBlock(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch v := stmt.(type) {
		case *ast.BlockStmt:
			checkLockBlock(pass, v.List, copyHeld(held))
		case *ast.IfStmt:
			if v.Init != nil {
				scanLockStmt(pass, v.Init, held)
			}
			scanLockExpr(pass, v.Cond, held)
			bodyHeld := copyHeld(held)
			if chain := tryLockChain(v.Cond); chain != "" {
				bodyHeld[chain] = true
			}
			checkLockBlock(pass, v.Body.List, bodyHeld)
			if v.Else != nil {
				checkLockBlock(pass, []ast.Stmt{v.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if v.Init != nil {
				scanLockStmt(pass, v.Init, held)
			}
			scanLockExpr(pass, v.Cond, held)
			checkLockBlock(pass, v.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanLockExpr(pass, v.X, held)
			checkLockBlock(pass, v.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkLockBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkLockBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.DeferStmt:
			// defer x.Unlock() does not release the lock at this point; the
			// window stays open to function end. Nothing to update.
		default:
			scanLockStmt(pass, stmt, held)
		}
	}
}

// scanLockStmt processes a straight-line statement: updates the held set for
// Lock/Unlock calls and reports callback calls made while any lock is held.
func scanLockStmt(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // not invoked here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if chain := exprChain(sel.X); chain != "" {
				held[chain] = true
			}
		case "Unlock", "RUnlock":
			if chain := exprChain(sel.X); chain != "" {
				delete(held, chain)
			}
		default:
			if callbackNames[sel.Sel.Name] && len(held) > 0 {
				pass.Report(call, "user callback %s invoked while %s held; release strategy locks before calling into user code",
					sel.Sel.Name, heldNames(held))
			}
		}
		return true
	})
}

// scanLockExpr is scanLockStmt for a bare expression (conditions, range
// operands).
func scanLockExpr(pass *Pass, e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	scanLockStmt(pass, &ast.ExprStmt{X: e}, held)
}

// tryLockChain returns the lock chain when cond is (or contains at top
// level) x.TryLock() / x.TryRLock().
func tryLockChain(cond ast.Expr) string {
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "TryLock" && sel.Sel.Name != "TryRLock") {
		return ""
	}
	return exprChain(sel.X)
}

// exprChain renders a selector chain of plain identifiers ("o.mu",
// "s.locks[g]" → "s.locks"); "" when the base is not an identifier.
func exprChain(e ast.Expr) string {
	var parts []string
	for {
		switch v := e.(type) {
		case *ast.Ident:
			parts = append(parts, v.Name)
			// reverse
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append(parts, v.Sel.Name)
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return ""
		}
	}
}

// heldNames renders the held set for a report message.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return names[0] + " is"
	}
	return strings.Join(names, ", ") + " are"
}
