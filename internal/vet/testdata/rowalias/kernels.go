// Fixture for the rowalias analyzer. Parsed, never compiled.
package kernels

type Spec struct {
	Reduction      func(args *Args) error
	BlockReduction func(args *Args) error
}

type Args struct {
	Data    []float64
	NumRows int
	Cols    int
}

func (a *Args) Row(i int) []float64            { return a.Data[i*a.Cols : (i+1)*a.Cols] }
func (a *Args) Acc() []float64                 { return nil }
func (a *Args) Accumulate(g, e int, v float64) {}

type holder struct{ view []float64 }

var stash []float64
var held holder
var bag [][]float64

func badWrites() Spec {
	return Spec{
		Reduction: func(args *Args) error {
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				row[0] = 1       //want:rowalias
				args.Data[i] = 2 //want:rowalias
				row[1]++         //want:rowalias
				sub := row[1:]
				sub[0] = 3 //want:rowalias
			}
			return nil
		},
	}
}

func badRetention() Spec {
	return Spec{
		Reduction: func(args *Args) error {
			stash = args.Data //want:rowalias
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				held.view = row        //want:rowalias
				bag = append(bag, row) //want:rowalias
			}
			return nil
		},
	}
}

func badAppend() {
	var s Spec
	s.BlockReduction = func(args *Args) error {
		grown := append(args.Data, 1) //want:rowalias
		_ = grown
		return nil
	}
	_ = s
}

func badFieldStore() Spec {
	return Spec{
		Reduction: func(args *Args) error {
			var h holder
			h.view = args.Row(0) //want:rowalias
			_ = h
			return nil
		},
	}
}

func good() Spec {
	return Spec{
		Reduction: func(args *Args) error {
			// Reads, scalar copies, element-wise append, and explicit row
			// copies are all sanctioned.
			total := 0.0
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				for _, v := range row {
					total += v
				}
				first := row[0]
				_ = first
				scratch := make([]float64, len(row))
				copy(scratch, row)
				scratch[0] = 9 // writing the copy is fine
				var flat []float64
				flat = append(flat, row...) // element copy, not retention
				_ = flat
				args.Accumulate(0, 0, row[0])
			}
			_ = total
			return nil
		},
	}
}

func badAccRetention() {
	var s Spec
	s.BlockReduction = func(args *Args) error {
		stash = args.Acc() //want:rowalias
		acc := args.Acc()
		held.view = acc         //want:rowalias
		bag = append(bag, acc)  //want:rowalias
		grown := append(acc, 1) //want:rowalias
		_ = grown
		tail := acc[2:]
		held.view = tail //want:rowalias
		return nil
	}
	_ = s
}

func goodAcc() {
	var s Spec
	s.BlockReduction = func(args *Args) error {
		// Element writes into the pooled buffer are its whole purpose; so
		// are reads, scalar copies, and explicit buffer copies.
		acc := args.Acc()
		for i := 0; i < args.NumRows; i++ {
			row := args.Row(i)
			acc[0] += row[0]
		}
		sub := acc[1:]
		sub[0]++
		snapshot := make([]float64, len(acc))
		copy(snapshot, acc)
		stash = snapshot // the copy may escape, the view may not
		var flat []float64
		flat = append(flat, acc...) // element copy, not retention
		_ = flat
		return nil
	}
	_ = s
}

func suppressed() Spec {
	return Spec{
		Reduction: func(args *Args) error {
			//frds:vet-ignore rowalias -- fixture exercises suppression
			stash = args.Data
			return nil
		},
	}
}
