// Fixture for the kernelpure analyzer. Parsed, never compiled.
package kernels

import (
	"math/rand"
	"time"
)

type Spec struct {
	Reduction      func(args *Args) error
	BlockReduction func(args *Args) error
	LocalCombine   func(dst, src any) any
}

type Args struct{ Local any }

var shared float64
var table = map[int]int{}

func bad() Spec {
	total := 0.0
	return Spec{
		Reduction: func(args *Args) error {
			total += 1                //want:kernelpure
			shared = 2                //want:kernelpure
			table[3] = 4              //want:kernelpure
			_ = time.Now()            //want:kernelpure
			_ = rand.Intn(10)         //want:kernelpure
			go func() { _ = total }() //want:kernelpure
			return nil
		},
	}
}

func alsoBad() {
	var s Spec
	hits := 0
	s.BlockReduction = func(args *Args) error {
		hits++ //want:kernelpure
		return nil
	}
	_ = s
	_ = hits
}

func good() Spec {
	scale := 2.0 // captured reads are fine
	return Spec{
		Reduction: func(args *Args) error {
			local := 0.0
			local += scale
			args.Local = local
			for i := 0; i < 3; i++ {
				local += float64(i)
			}
			return nil
		},
		LocalCombine: func(dst, src any) any {
			d := dst.(float64)
			d += src.(float64)
			return d
		},
	}
}
