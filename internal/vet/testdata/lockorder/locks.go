// Fixture for the lockorder analyzer. Parsed, never compiled.
package locks

import "sync"

type Spec struct {
	Combine      func(o any) error
	LocalCombine func(dst, src any) any
}

type store struct {
	mu   sync.Mutex
	spec Spec
	vals []float64
}

// Inline window: callback between Lock and Unlock is flagged.
func (s *store) mergeBad(o any) error {
	s.mu.Lock()
	err := s.spec.Combine(o) //want:lockorder
	s.mu.Unlock()
	return err
}

// Deferred unlock holds the lock to function end: still flagged.
func (s *store) mergeDeferBad(o any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec.Combine(o) //want:lockorder
}

// TryLock guard: held inside the if body.
func (s *store) tryBad(o any) {
	if s.mu.TryLock() {
		_ = s.spec.Combine(o) //want:lockorder
		s.mu.Unlock()
	}
}

// Release before the callback: clean.
func (s *store) mergeGood(o any) error {
	s.mu.Lock()
	snapshot := append([]float64(nil), s.vals...)
	s.mu.Unlock()
	_ = snapshot
	return s.spec.Combine(o)
}

// Lock guards only engine state; callback on the unlocked path: clean.
func (s *store) window(dst, src any) any {
	s.mu.Lock()
	s.vals = append(s.vals, 1)
	s.mu.Unlock()
	return s.spec.LocalCombine(dst, src)
}
