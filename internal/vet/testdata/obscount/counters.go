// Fixture for the obscount analyzer. Parsed, never compiled.
package counters

import "example.com/obs"

var phases = []string{"split", "reduce"}

// Package-level var initializer: in-loop registration is the sanctioned
// one-time table fill.
var phaseCounters = func() map[string]*obs.Counter {
	m := map[string]*obs.Counter{}
	for _, p := range phases {
		m[p] = obs.Default.Counter("phase_ns_total", "time per phase", obs.Label{Key: "phase", Value: p})
	}
	return m
}()

var workerCounters []*obs.Counter

// init: same exemption.
func init() {
	for i := 0; i < 4; i++ {
		workerCounters = append(workerCounters, obs.Default.Counter("w_total", "per worker"))
	}
}

// Growing a package-level table lazily: allowed.
func counterFor(w int) *obs.Counter {
	for w >= len(workerCounters) {
		workerCounters = append(workerCounters, obs.Default.Counter("w_total", "per worker"))
	}
	return workerCounters[w]
}

// Hot-loop registration into a local: flagged.
func process(rows [][]float64) {
	for range rows {
		c := obs.Default.Counter("rows_total", "rows processed") //want:obscount
		c.Inc()
	}
}

// Registration outside any loop: clean.
func setup(r *obs.Registry) *obs.Counter {
	return r.Counter("setup_total", "one-time")
}

// Hot-loop histogram registration: flagged — the same dedup-probe cost as a
// counter, paid per iteration.
func timeSplits(splits [][]float64) {
	for range splits {
		h := obs.Default.Histogram("split_seconds", "per split") //want:obscount
		h.Observe(0)
	}
}

var splitHists []*obs.Histogram

// Growing a package-level histogram table lazily: allowed, like counters.
func histFor(w int) *obs.Histogram {
	for w >= len(splitHists) {
		splitHists = append(splitHists, obs.Default.Histogram("w_seconds", "per worker"))
	}
	return splitHists[w]
}

// Histogram registration outside any loop: clean.
func setupHist(r *obs.Registry) *obs.Histogram {
	return r.Histogram("setup_seconds", "one-time")
}
