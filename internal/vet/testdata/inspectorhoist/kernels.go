// Fixture for the inspectorhoist analyzer. Parsed, never compiled.
package kernels

type Spec struct {
	Reduction      func(args *Args) error
	BlockReduction func(args *Args) error
}

type Args struct{ NumRows int }

type core struct{}

func (core) NewInspectorPlan(coo any) any          { return nil }
func (core) LinearizeCOO(arr any, r, c int) any    { return nil }
func (core) TranslateSparse(cls, coo, opt any) any { return nil }

var c core

func bad(coo any) Spec {
	return Spec{
		Reduction: func(args *Args) error {
			plan := c.NewInspectorPlan(coo) //want:inspectorhoist
			_ = plan
			_ = c.LinearizeCOO(nil, 2, 2) //want:inspectorhoist
			return nil
		},
	}
}

func alsoBad(coo any) {
	var s Spec
	s.BlockReduction = func(args *Args) error {
		_ = c.TranslateSparse(nil, coo, 3) //want:inspectorhoist
		return nil
	}
	_ = s
}

func good(coo any) Spec {
	// Hoisted: the plan is built once at translate time, the kernel only
	// walks the captured tables.
	plan := c.NewInspectorPlan(coo)
	return Spec{
		Reduction: func(args *Args) error {
			_ = plan
			for i := 0; i < args.NumRows; i++ {
			}
			return nil
		},
	}
}

func suppressed(coo any) Spec {
	return Spec{
		Reduction: func(args *Args) error {
			//frds:vet-ignore inspectorhoist -- fixture exercises suppression
			_ = c.NewInspectorPlan(coo)
			return nil
		},
	}
}
