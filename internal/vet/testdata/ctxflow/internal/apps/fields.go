// Fixture for ctxflow's struct-field extension. Parsed, never compiled.
package apps

import (
	"context"

	"example.com/freeride"
)

// server holds its engines the way long-lived services do: one direct field
// and one pooled slice.
type server struct {
	eng     *freeride.Engine
	engines []*freeride.Engine
	name    string
}

func (s *server) fieldReceiver(spec freeride.Spec, src any) error {
	_, err := s.eng.Run(spec, src) //want:ctxflow
	return err
}

func (s *server) pooledReceiver(spec freeride.Spec, src any, obj any) error {
	if _, err := s.engines[0].RunInto(spec, src, obj); err != nil { //want:ctxflow
		return err
	}
	_, err := s.eng.RunContext(context.Background(), spec, src) // ctx variant: clean
	return err
}

func (s *server) nonEngineFieldClean() string {
	// A method named Run on a non-engine field must not be flagged.
	return s.name
}

func (s *server) suppressedField(spec freeride.Spec, src any) error {
	//frds:vet-ignore ctxflow -- shutdown path runs detached from any caller
	_, err := s.eng.Run(spec, src)
	return err
}
