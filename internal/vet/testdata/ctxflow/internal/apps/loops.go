// Fixture for the ctxflow analyzer. Parsed, never compiled.
package apps

import (
	"context"

	"example.com/cluster"
	"example.com/freeride"
	"example.com/mapreduce"
)

func fromConstructor(cfg freeride.Config, spec freeride.Spec, src any) error {
	eng := freeride.New(cfg)
	_, err := eng.Run(spec, src) //want:ctxflow
	return err
}

func fromParam(eng *freeride.Engine, spec freeride.Spec, src any, obj any) error {
	if _, err := eng.RunInto(spec, src, obj); err != nil { //want:ctxflow
		return err
	}
	_, err := eng.RunContext(context.Background(), spec, src) // ctx variant: clean
	return err
}

func insideClosure(cfg freeride.Config, spec freeride.Spec, src any) func() error {
	eng := freeride.New(cfg)
	return func() error {
		_, err := eng.Run(spec, src) //want:ctxflow
		return err
	}
}

func clusterSession(cfg cluster.Config, spec any, src any) error {
	cl := cluster.New(cfg)
	_, err := cl.Run(spec, src) //want:ctxflow
	return err
}

func mapreduceIsExempt(eng *mapreduce.Engine, spec any, src any) error {
	// mapreduce engines have no context variant; not engine-typed here.
	_, _, err := eng.Run(spec, src)
	return err
}

func suppressed(cfg freeride.Config, spec freeride.Spec, src any) error {
	eng := freeride.New(cfg)
	//frds:vet-ignore ctxflow -- one-shot tool path, nothing to cancel
	_, err := eng.Run(spec, src)
	return err
}
