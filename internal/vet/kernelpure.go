package vet

import (
	"go/ast"
	"go/token"
)

// kernelFields are the struct fields / assignment targets whose function
// literals are reduction bodies: FREERIDE runs them concurrently across
// worker slots, so they must be pure up to their explicit accumulation
// channels (the ReductionArgs/BlockArgs object, LocalCombine's operands).
var kernelFields = map[string]bool{
	"Reduction":      true,
	"BlockReduction": true,
	"LocalCombine":   true,
	"Kernel":         true,
	"BlockKernel":    true,
}

// KernelPure flags reduction-kernel bodies that capture and write shared
// state, read nondeterministic sources (time.Now, math/rand), or spawn
// goroutines. FREERIDE's contract is that local reductions are
// order-independent and isolated per worker slot; a kernel that mutates a
// captured variable races across slots, and one that reads the clock or a
// shared RNG produces run-to-run-unstable results that break the
// bit-identical opt-level equivalence the translator guarantees.
var KernelPure = &Analyzer{
	Name: "kernelpure",
	Doc:  "reduction kernels must not write captured state, read time/rand, or spawn goroutines",
	Run:  runKernelPure,
}

func runKernelPure(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range v.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !kernelFields[key.Name] {
						continue
					}
					if fl, ok := kv.Value.(*ast.FuncLit); ok {
						checkKernelBody(pass, key.Name, fl)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || !kernelFields[sel.Sel.Name] || i >= len(v.Rhs) {
						continue
					}
					if fl, ok := v.Rhs[i].(*ast.FuncLit); ok {
						checkKernelBody(pass, sel.Sel.Name, fl)
					}
				}
			}
			return true
		})
	}
}

// checkKernelBody walks one kernel function literal.
func checkKernelBody(pass *Pass, field string, fl *ast.FuncLit) {
	declared := declaredIdents(fl)
	pkgVars := pass.Pkg.packageLevelVars()
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			pass.Report(v, "%s kernel spawns a goroutine; reduction bodies run on the engine's worker pool and must not fork", field)
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if id.Name == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
						pass.Report(v, "%s kernel calls time.%s; kernels must be deterministic (pass timings in via the spec instead)", field, sel.Sel.Name)
					}
					if id.Name == "rand" {
						pass.Report(v, "%s kernel calls rand.%s; kernels must be deterministic (seed per-split data outside the kernel)", field, sel.Sel.Name)
					}
				}
			}
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				reportCapturedWrite(pass, field, lhs, declared, pkgVars)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, field, v.X, declared, pkgVars)
		}
		return true
	})
}

// reportCapturedWrite flags a write whose base identifier is neither
// declared inside the kernel nor one of its parameters. Writes through
// parameters (args.Local, dst/src in LocalCombine, the acc buffer) are the
// kernel's sanctioned channels; writes to anything captured from an
// enclosing scope are cross-worker races.
func reportCapturedWrite(pass *Pass, field string, lhs ast.Expr, declared, pkgVars map[string]bool) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" || declared[root.Name] {
		return
	}
	what := "captured variable"
	if pkgVars[root.Name] {
		what = "package-level variable"
	}
	pass.Report(lhs, "%s kernel writes %s %q; worker slots run concurrently — accumulate through the reduction object or LocalInit state instead", field, what, root.Name)
}

// declaredIdents collects every identifier the function literal declares:
// parameters, named results, := definitions, var/const declarations, range
// variables, and type-switch bindings — flow-insensitively over the whole
// body (nested function literals included, which is conservative in the
// right direction: their locals never count as captured).
func declaredIdents(fl *ast.FuncLit) map[string]bool {
	declared := map[string]bool{}
	addFields := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				declared[name.Name] = true
			}
		}
	}
	addFields(fl.Type.Params)
	addFields(fl.Type.Results)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			addFields(v.Type.Params)
			addFields(v.Type.Results)
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range v.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						declared[name.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		case *ast.TypeSwitchStmt:
			if assign, ok := v.Assign.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		}
		return true
	})
	return declared
}
