package vet

import (
	"go/ast"
	"strings"
)

// CtxFlow flags engine Run/RunInto calls inside internal/ library code where
// a context-taking variant (RunContext/RunIntoContext) exists. Library paths
// must thread context.Context so callers can cancel long reductions; a bare
// Run call pins context.Background() deep inside a loop and makes the whole
// session uncancellable.
//
// Without go/types the analyzer recognizes engine values structurally: a
// parameter, variable, or field declared as (*)freeride.Engine or
// (*)cluster.Cluster, or assigned from freeride.New(...) / cluster.New(...).
// Calls on mapreduce engines are not flagged (no context variant exists).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "internal/ library code must call RunContext/RunIntoContext, not Run/RunInto",
	Run:  runCtxFlow,
}

// ctxflowExempt lists package paths where bare Run is the implementation
// (the defining packages themselves).
func ctxflowExempt(path string) bool {
	if !strings.Contains(path, "internal/") && !strings.HasPrefix(path, "internal") {
		return true // rule covers library code under internal/ only
	}
	for _, p := range []string{"internal/freeride", "internal/cluster", "internal/mapreduce"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

var ctxVariants = map[string]string{
	"Run":     "RunContext",
	"RunInto": "RunIntoContext",
}

func runCtxFlow(pass *Pass) {
	if ctxflowExempt(pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			engines := engineIdents(fd)
			if len(engines) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				variant, ok := ctxVariants[sel.Sel.Name]
				if !ok {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok || !engines[recv.Name] {
					return true
				}
				pass.Report(call, "%s.%s discards the caller's context; library code under internal/ must use %s.%s and thread a context.Context",
					recv.Name, sel.Sel.Name, recv.Name, variant)
				return true
			})
		}
	}
}

// engineIdents collects identifiers in fd that denote freeride engines or
// cluster sessions: typed parameters/receivers/var declarations, and
// assignments from the constructors. The scan covers the whole function body
// including nested function literals, so a closure over an outer engine
// variable is still recognized.
func engineIdents(fd *ast.FuncDecl) map[string]bool {
	engines := map[string]bool{}
	addTyped := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if !isEngineType(f.Type) {
				continue
			}
			for _, name := range f.Names {
				engines[name.Name] = true
			}
		}
	}
	addTyped(fd.Recv)
	addTyped(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Rhs) != 1 {
				return true
			}
			if isPkgCall(v.Rhs[0], "freeride", "New") || isPkgCall(v.Rhs[0], "cluster", "New") {
				if id, ok := v.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					engines[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil && isEngineType(v.Type) {
				for _, name := range v.Names {
					engines[name.Name] = true
				}
			}
		case *ast.FuncLit:
			addTyped(v.Type.Params)
		}
		return true
	})
	return engines
}

// isEngineType matches (*)freeride.Engine and (*)cluster.Cluster.
func isEngineType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (pkg.Name == "freeride" && sel.Sel.Name == "Engine") ||
		(pkg.Name == "cluster" && sel.Sel.Name == "Cluster")
}
