package vet

import (
	"go/ast"
	"strings"
)

// CtxFlow flags engine Run/RunInto calls inside internal/ library code where
// a context-taking variant (RunContext/RunIntoContext) exists. Library paths
// must thread context.Context so callers can cancel long reductions; a bare
// Run call pins context.Background() deep inside a loop and makes the whole
// session uncancellable.
//
// Without go/types the analyzer recognizes engine values structurally: a
// parameter, variable, or field declared as (*)freeride.Engine or
// (*)cluster.Cluster, or assigned from freeride.New(...) / cluster.New(...).
// Struct fields count too: a package declaring `type Server struct { eng
// *freeride.Engine }` (or a slice of engines) gets `s.eng.Run(...)` and
// `s.engines[i].Run(...)` flagged in every function of that package — the
// shape long-lived services use to hold their engine pool. Calls on
// mapreduce engines are not flagged (no context variant exists).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "internal/ library code must call RunContext/RunIntoContext, not Run/RunInto",
	Run:  runCtxFlow,
}

// ctxflowExempt lists package paths where bare Run is the implementation
// (the defining packages themselves).
func ctxflowExempt(path string) bool {
	if !strings.Contains(path, "internal/") && !strings.HasPrefix(path, "internal") {
		return true // rule covers library code under internal/ only
	}
	for _, p := range []string{"internal/freeride", "internal/cluster", "internal/mapreduce"} {
		if path == p || strings.HasSuffix(path, "/"+p) {
			return true
		}
	}
	return false
}

var ctxVariants = map[string]string{
	"Run":     "RunContext",
	"RunInto": "RunIntoContext",
}

func runCtxFlow(pass *Pass) {
	if ctxflowExempt(pass.Pkg.Path) {
		return
	}
	fields := engineFieldNames(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			engines := engineIdents(fd)
			if len(engines) == 0 && len(fields) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				variant, ok := ctxVariants[sel.Sel.Name]
				if !ok {
					return true
				}
				name, ok := engineRecvName(sel.X, engines, fields)
				if !ok {
					return true
				}
				pass.Report(call, "%s.%s discards the caller's context; library code under internal/ must use %s.%s and thread a context.Context",
					name, sel.Sel.Name, name, variant)
				return true
			})
		}
	}
}

// engineRecvName reports whether recv denotes an engine: a recognized local
// identifier, a selector naming an engine-typed struct field of this
// package (s.eng), or an index into an engine-slice field (s.engines[i]).
// It returns the printable receiver name for the diagnostic.
func engineRecvName(recv ast.Expr, engines, fields map[string]bool) (string, bool) {
	switch v := recv.(type) {
	case *ast.Ident:
		if engines[v.Name] {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		if fields[v.Sel.Name] {
			if base, ok := v.X.(*ast.Ident); ok {
				return base.Name + "." + v.Sel.Name, true
			}
			return v.Sel.Name, true
		}
	case *ast.IndexExpr:
		if sel, ok := v.X.(*ast.SelectorExpr); ok && fields[sel.Sel.Name] {
			if base, ok := sel.X.(*ast.Ident); ok {
				return base.Name + "." + sel.Sel.Name + "[...]", true
			}
			return sel.Sel.Name + "[...]", true
		}
	}
	return "", false
}

// engineFieldNames collects the names of engine-typed struct fields declared
// anywhere in the package — direct engine fields and slices/arrays of
// engines. Matching on the field name alone (no receiver type resolution) is
// the same structural over-approximation the rest of the analyzer makes; a
// false positive from an unrelated same-named field is suppressible with
// frds:vet-ignore like every other finding.
func engineFieldNames(pass *Pass) map[string]bool {
	fields := map[string]bool{}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				t := f.Type
				if arr, ok := t.(*ast.ArrayType); ok {
					t = arr.Elt
				}
				if !isEngineType(t) {
					continue
				}
				for _, name := range f.Names {
					fields[name.Name] = true
				}
			}
			return true
		})
	}
	return fields
}

// engineIdents collects identifiers in fd that denote freeride engines or
// cluster sessions: typed parameters/receivers/var declarations, and
// assignments from the constructors. The scan covers the whole function body
// including nested function literals, so a closure over an outer engine
// variable is still recognized.
func engineIdents(fd *ast.FuncDecl) map[string]bool {
	engines := map[string]bool{}
	addTyped := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			if !isEngineType(f.Type) {
				continue
			}
			for _, name := range f.Names {
				engines[name.Name] = true
			}
		}
	}
	addTyped(fd.Recv)
	addTyped(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Rhs) != 1 {
				return true
			}
			if isPkgCall(v.Rhs[0], "freeride", "New") || isPkgCall(v.Rhs[0], "cluster", "New") {
				if id, ok := v.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					engines[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if v.Type != nil && isEngineType(v.Type) {
				for _, name := range v.Names {
					engines[name.Name] = true
				}
			}
		case *ast.FuncLit:
			addTyped(v.Type.Params)
		}
		return true
	})
	return engines
}

// isEngineType matches (*)freeride.Engine and (*)cluster.Cluster.
func isEngineType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (pkg.Name == "freeride" && sel.Sel.Name == "Engine") ||
		(pkg.Name == "cluster" && sel.Sel.Name == "Cluster")
}
