package vet

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantMarkers scans fixture files for "//want:<analyzer>" markers and
// returns file → line → analyzer expectations.
func wantMarkers(t *testing.T, pkgs []*Package) map[string]map[int]string {
	t.Helper()
	want := map[string]map[int]string{}
	for _, pkg := range pkgs {
		for _, fname := range pkg.Filenames {
			f, err := os.Open(fname)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			line := 0
			for sc.Scan() {
				line++
				text := sc.Text()
				i := strings.Index(text, "//want:")
				if i < 0 {
					continue
				}
				name := strings.TrimSpace(text[i+len("//want:"):])
				if want[fname] == nil {
					want[fname] = map[int]string{}
				}
				want[fname][line] = name
			}
			f.Close()
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return want
}

// runFixture loads testdata/<name>, runs the analyzer, and matches findings
// against the //want markers exactly: every marker must fire, nothing else
// may.
func runFixture(t *testing.T, dir string, a *Analyzer) []Finding {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under testdata/%s", dir)
	}
	findings := Check(pkgs, []*Analyzer{a})

	want := wantMarkers(t, pkgs)
	got := map[string]map[int]int{} // file → line → count
	for _, f := range findings {
		if got[f.Pos.Filename] == nil {
			got[f.Pos.Filename] = map[int]int{}
		}
		got[f.Pos.Filename][f.Pos.Line]++
	}
	for fname, lines := range want {
		for line, name := range lines {
			if name != a.Name {
				continue
			}
			if got[fname][line] == 0 {
				t.Errorf("%s:%d: expected %s finding, got none", fname, line, name)
			}
		}
	}
	for _, f := range findings {
		if want[f.Pos.Filename] == nil || want[f.Pos.Filename][f.Pos.Line] != a.Name {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	return findings
}

func TestKernelPureFixture(t *testing.T) { runFixture(t, "kernelpure", KernelPure) }

func TestCtxFlowFixture(t *testing.T) {
	findings := runFixture(t, "ctxflow", CtxFlow)
	// The suppressed Run call must not appear even though it matches.
	for _, f := range findings {
		if strings.Contains(f.Pos.Filename, "suppressed") {
			t.Errorf("suppression ignored: %s", f)
		}
	}
}

func TestObsCountFixture(t *testing.T) { runFixture(t, "obscount", ObsCount) }

func TestLockOrderFixture(t *testing.T) { runFixture(t, "lockorder", LockOrder) }

// TestInspectorHoistFixture also exercises suppression: the fixture's
// suppressed() call has no //want marker, so runFixture fails if the
// frds:vet-ignore is not honored.
func TestInspectorHoistFixture(t *testing.T) { runFixture(t, "inspectorhoist", InspectorHoist) }

// TestRowAliasFixture also exercises suppression: the fixture's
// suppressed() kernel stores a borrowed view with a frds:vet-ignore, so
// runFixture fails if the suppression is not honored.
func TestRowAliasFixture(t *testing.T) { runFixture(t, "rowalias", RowAlias) }

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 6 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("ctxflow, lockorder")
	if err != nil || len(two) != 2 || two[0].Name != "ctxflow" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown analyzer must error")
	}
}

func TestFindingString(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Check(pkgs, []*Analyzer{LockOrder})
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	s := findings[0].String()
	if !strings.Contains(s, "locks.go:") || !strings.Contains(s, ": lockorder: ") {
		t.Fatalf("vet-style rendering wrong: %q", s)
	}
}

// TestRepoIsVetClean pins the acceptance criterion: all four analyzers run
// clean over the whole repository. A regression here means either new code
// broke a rule or an analyzer grew a false positive — fix the code or, for
// a justified exception, add a frds:vet-ignore with a reason.
func TestRepoIsVetClean(t *testing.T) {
	root := filepath.Join("..", "..")
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("repo load found only %d packages — wrong root?", len(pkgs))
	}
	findings := Check(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("frds-vet is not clean: %d finding(s)", len(findings))
	}
}
