package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed Go package directory under analysis.
type Package struct {
	// Path is the package directory relative to the load root, using
	// forward slashes ("internal/apps").
	Path string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the package's non-test source files, sorted by name.
	Files []*ast.File
	// Filenames are the absolute paths matching Files.
	Filenames []string
}

// Load parses every Go package directory under root, skipping test files,
// testdata trees, vendored code, and hidden/underscore directories. Test
// files are excluded deliberately: the analyzers encode hot-path and
// library-API rules (tests legitimately call Run without a context and
// register throwaway counters in loops).
func Load(root string) ([]*Package, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		files := byDir[dir]
		sort.Strings(files)
		fset := token.NewFileSet()
		pkg := &Package{Fset: fset}
		rel, relErr := filepath.Rel(root, dir)
		if relErr != nil || rel == "." {
			rel = filepath.Base(dir)
		}
		pkg.Path = filepath.ToSlash(rel)
		for _, fname := range files {
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
			pkg.Filenames = append(pkg.Filenames, fname)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// packageLevelVars collects the names of package-level variables across the
// package's files.
func (p *Package) packageLevelVars() map[string]bool {
	vars := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					vars[name.Name] = true
				}
			}
		}
	}
	return vars
}
