// Package vet is a small static-analysis framework for FREERIDE-specific
// correctness rules, plus the six analyzers cmd/frds-vet runs over this
// repository (and over user kernel code): kernelpure, ctxflow, obscount,
// lockorder, inspectorhoist, and rowalias.
//
// The framework is deliberately self-contained on the standard library's
// go/ast and go/parser: the usual route — golang.org/x/tools/go/analysis
// driven through `go vet -vettool` — needs a module dependency this project
// does not take (see DESIGN.md). The shape mirrors x/tools (an Analyzer with
// a Run func over a Pass; findings reported with positions) so the analyzers
// could be ported to the real framework mechanically. Without go/types the
// analyzers are syntactic: they track declared identifiers and constructor
// idioms (eng := freeride.New(...)) instead of resolved types, which is
// precise enough for this codebase and errs on the side of silence for
// shapes it cannot prove.
//
// False positives are suppressed in place with a line comment, on the
// flagged line or the line above:
//
//	//frds:vet-ignore ctxflow  -- reason
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report at a source position.
type Finding struct {
	// Pos is the resolved file position.
	Pos token.Position
	// Analyzer names the rule that fired.
	Analyzer string
	// Msg explains the violation.
	Msg string
}

// String renders the finding vet-style: file:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Msg)
}

// Analyzer is one static-analysis rule.
type Analyzer struct {
	// Name is the rule's identifier, used in reports and in
	// frds:vet-ignore suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package, reporting findings through pass.Report.
	Run func(pass *Pass)
}

// Pass is one analyzer's view of one package under analysis.
type Pass struct {
	// Fset resolves token positions for the package's files.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// analyzer currently running (for Report attribution).
	analyzer *Analyzer
	findings *[]Finding
}

// Report records a finding at node's position.
func (p *Pass) Report(node ast.Node, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(node.Pos()),
		Analyzer: p.analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the six FREERIDE analyzers in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{KernelPure, CtxFlow, ObsCount, LockOrder, InspectorHoist, RowAlias}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	index := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Check runs the analyzers over the packages and returns the surviving
// findings sorted by position, with frds:vet-ignore suppressions applied.
func Check(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: a, findings: &findings}
			a.Run(pass)
		}
	}
	findings = applySuppressions(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressPrefix introduces an in-source suppression comment.
const suppressPrefix = "//frds:vet-ignore"

// applySuppressions drops findings covered by a frds:vet-ignore comment on
// the finding's line or the line directly above it.
func applySuppressions(pkgs []*Package, findings []Finding) []Finding {
	// map file → line → set of suppressed analyzer names ("" = all).
	sup := map[string]map[int][]string{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, suppressPrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, suppressPrefix)
					// Allow a trailing justification after "--".
					if i := strings.Index(rest, "--"); i >= 0 {
						rest = rest[:i]
					}
					pos := pkg.Fset.Position(c.Pos())
					m := sup[pos.Filename]
					if m == nil {
						m = map[int][]string{}
						sup[pos.Filename] = m
					}
					names := strings.Fields(rest)
					if len(names) == 0 {
						names = []string{""} // bare ignore suppresses everything
					}
					m[pos.Line] = append(m[pos.Line], names...)
				}
			}
		}
	}
	suppressed := func(f Finding) bool {
		m := sup[f.Pos.Filename]
		if m == nil {
			return false
		}
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			for _, name := range m[line] {
				if name == "" || name == f.Analyzer {
					return true
				}
			}
		}
		return false
	}
	out := findings[:0]
	for _, f := range findings {
		if !suppressed(f) {
			out = append(out, f)
		}
	}
	return out
}

// walkStack walks node, calling fn with each node and the stack of its
// ancestors (outermost first, not including node itself).
func walkStack(node ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// rootIdent unwraps selector/index/star/paren chains to the base identifier,
// or nil when the base is not a plain identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isPkgCall reports whether e is a call of the form pkg.Fn(...).
func isPkgCall(e ast.Expr, pkg, fn string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}
