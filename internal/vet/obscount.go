package vet

import (
	"go/ast"
	"go/token"
)

// ObsCount flags obs metric registration (Registry.Counter,
// Registry.GaugeFunc, Registry.Histogram) inside loops in regular
// functions. Registration takes the registry lock and string-formats the
// label key; it is meant to run once per metric at package scope (var
// initializer or init()). A registration inside a hot loop turns every
// iteration into a mutex+map operation — the registry deduplicates, so the
// metric is *correct* but the cost is pure waste and contends with the
// metrics endpoint. Histograms are the worst offenders: each registration
// probe renders the label set before the dedup hit, and hot loops observe
// into histograms far more often than they register them.
//
// Allowed loop registrations:
//   - inside a package-level var initializer or init() (one-time fills of
//     lookup tables, e.g. per-phase or per-policy counter maps);
//   - when the loop grows a package-level registry-backed table (the
//     assignment's target is a package-level variable), e.g. the lazily
//     extended per-worker counter cache.
var ObsCount = &Analyzer{
	Name: "obscount",
	Doc:  "obs counters must be registered once at package scope, not per loop iteration",
	Run:  runObsCount,
}

// obsRegistration matches <registry>.Counter(...) / <registry>.GaugeFunc(...)
// / <registry>.Histogram(...) with the obs signature shape (name and help
// strings first).
func obsRegistration(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Counter" && sel.Sel.Name != "GaugeFunc" && sel.Sel.Name != "Histogram" {
		return false
	}
	return len(call.Args) >= 2
}

func runObsCount(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		pkgVars := pass.Pkg.packageLevelVars()
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !obsRegistration(call) {
				return true
			}
			if !insideLoop(stack) || registrationAllowed(stack, pkgVars) {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			pass.Report(call, "obs registration %s(...) inside a loop; register counters once at package scope (var initializer or init) and reuse the handle",
				sel.Sel.Name)
			return true
		})
	}
}

// insideLoop reports whether any ancestor is a for/range statement.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// registrationAllowed reports the two sanctioned in-loop shapes: the call
// sits inside init()/a package-level var initializer, or the nearest
// enclosing assignment writes a package-level variable.
func registrationAllowed(stack []ast.Node, pkgVars map[string]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch v := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if root := rootIdent(lhs); root != nil && pkgVars[root.Name] {
					return true
				}
			}
		case *ast.FuncDecl:
			return v.Name.Name == "init" && v.Recv == nil
		case *ast.GenDecl:
			// A function literal under a package-level var declaration is a
			// var initializer (stack reaches GenDecl without a FuncDecl).
			return v.Tok == token.VAR
		}
	}
	return false
}
