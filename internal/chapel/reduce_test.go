package chapel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumReduceIntAndReal(t *testing.T) {
	ints := Over(IntArray(1, 2, 3, 4, 5))
	if got := SumReduce(ints, 4).(*Int).Val; got != 15 {
		t.Fatalf("int sum = %d", got)
	}
	reals := Over(RealArray(0.5, 1.5, 2.0))
	if got := SumReduce(reals, 2).(*Real).Val; got != 4.0 {
		t.Fatalf("real sum = %v", got)
	}
	// Mixed: int op combined with reals widens to real.
	op := NewSumOp()
	op.Accumulate(&Int{Val: 2})
	op.Accumulate(&Real{Val: 0.5})
	if got := op.Generate().(*Real).Val; got != 2.5 {
		t.Fatalf("mixed sum = %v", got)
	}
	mustPanic(t, "sum over bool", func() { SumReduce(Over(NewArray(ArrayType(BoolType(), 1, 2))), 1) })
	mustPanic(t, "sum accumulate string", func() { NewSumOp().Accumulate(NewString(StringType(2), "a")) })
}

func TestProdOp(t *testing.T) {
	got := Reduce(NewProdOp(), Over(IntArray(2, 3, 4)), 2)
	if got.(*Int).Val != 24 {
		t.Fatalf("prod = %v", got)
	}
	got = Reduce(NewProdOp(), Over(RealArray(2, 0.5)), 2)
	if got.(*Real).Val != 1.0 {
		t.Fatalf("real prod = %v", got)
	}
	// Identity: empty input gives 1.
	if got := Reduce(NewProdOp(), Over(IntArray()), 4).(*Int).Val; got != 1 {
		t.Fatalf("empty prod = %v", got)
	}
	mustPanic(t, "prod over bool", func() { NewProdOp().Accumulate(&Bool{}) })
}

func TestMinMaxReduce(t *testing.T) {
	e := Over(IntArray(5, -3, 9, 0))
	if got := MinReduce(e, 3).(*Int).Val; got != -3 {
		t.Fatalf("min = %d", got)
	}
	if got := MaxReduce(e, 3).(*Int).Val; got != 9 {
		t.Fatalf("max = %d", got)
	}
	r := Over(RealArray(2.5, -1.25, 7))
	if got := MinReduce(r, 2).(*Real).Val; got != -1.25 {
		t.Fatalf("real min = %v", got)
	}
	if got := MaxReduce(r, 2).(*Real).Val; got != 7 {
		t.Fatalf("real max = %v", got)
	}
	// Empty input: identity (±Inf as real).
	if got := MinReduce(Over(RealArray()), 2).(*Real).Val; !math.IsInf(got, 1) {
		t.Fatalf("empty min = %v", got)
	}
	mustPanic(t, "min over bool", func() { NewMinOp().Accumulate(&Bool{}) })
	mustPanic(t, "extremum foreign combine", func() { NewMinOp().Combine(NewSumOp()) })
}

func TestMinLocOp(t *testing.T) {
	e := Over(RealArray(4, 1, 3, 1, 5))
	got := Reduce(NewMinLocOp(), e, 3).(*Record)
	if got.Field("value").(*Real).Val != 1 {
		t.Fatalf("minloc value = %v", got.Field("value"))
	}
	// Ties resolve to the smallest index (0-based position 1).
	if got.Field("idx").(*Int).Val != 1 {
		t.Fatalf("minloc idx = %v", got.Field("idx"))
	}
	mustPanic(t, "plain accumulate", func() { NewMinLocOp().Accumulate(&Real{}) })
}

func TestLogicalOps(t *testing.T) {
	mk := func(vals ...bool) Expr {
		a := NewArray(ArrayType(BoolType(), 1, len(vals)))
		for i, v := range vals {
			a.SetAt(i+1, &Bool{Val: v})
		}
		return Over(a)
	}
	if !Reduce(NewLogicalAndOp(), mk(true, true, true), 2).(*Bool).Val {
		t.Fatal("and of all-true")
	}
	if Reduce(NewLogicalAndOp(), mk(true, false, true), 2).(*Bool).Val {
		t.Fatal("and with false")
	}
	if Reduce(NewLogicalOrOp(), mk(false, false), 2).(*Bool).Val {
		t.Fatal("or of all-false")
	}
	if !Reduce(NewLogicalOrOp(), mk(false, true), 2).(*Bool).Val {
		t.Fatal("or with true")
	}
}

func TestBitOps(t *testing.T) {
	e := Over(IntArray(0b1100, 0b1010))
	if got := Reduce(NewBitAndOp(), e, 2).(*Int).Val; got != 0b1000 {
		t.Fatalf("and = %b", got)
	}
	if got := Reduce(NewBitOrOp(), e, 2).(*Int).Val; got != 0b1110 {
		t.Fatalf("or = %b", got)
	}
	if got := Reduce(NewBitXorOp(), e, 2).(*Int).Val; got != 0b0110 {
		t.Fatalf("xor = %b", got)
	}
	// Identities on empty input.
	if got := Reduce(NewBitAndOp(), Over(IntArray()), 1).(*Int).Val; got != -1 {
		t.Fatalf("empty and = %d", got)
	}
	if got := Reduce(NewBitOrOp(), Over(IntArray()), 1).(*Int).Val; got != 0 {
		t.Fatalf("empty or = %d", got)
	}
}

func TestReduceOverZipExpr(t *testing.T) {
	// The paper's §IV-B example: min reduce A+B.
	a := RealArray(5, 2, 8)
	b := RealArray(1, 9, -4)
	got := MinReduce(Zip(OpPlus, Over(a), Over(b)), 2).(*Real).Val
	if got != 4 { // min(6, 11, 4)
		t.Fatalf("min reduce A+B = %v", got)
	}
	// Int zips stay int.
	ia, ib := IntArray(1, 2), IntArray(10, 20)
	if got := SumReduce(Zip(OpTimes, Over(ia), Over(ib)), 1).(*Int).Val; got != 50 {
		t.Fatalf("sum reduce A*B = %v", got)
	}
	if got := SumReduce(Zip(OpMinus, Over(ib), Over(ia)), 1).(*Int).Val; got != 27 {
		t.Fatalf("sum reduce B-A = %v", got)
	}
	mustPanic(t, "length mismatch", func() { Zip(OpPlus, Over(RealArray(1)), Over(RealArray(1, 2))) })
	mustPanic(t, "non-numeric zip", func() {
		ba := NewArray(ArrayType(BoolType(), 1, 1))
		Zip(OpPlus, Over(ba), Over(ba))
	})
}

func TestBinOpString(t *testing.T) {
	if OpPlus.String() != "+" || OpMinus.String() != "-" || OpTimes.String() != "*" {
		t.Fatal("binop strings")
	}
	if BinOp(9).String() != "binop(9)" {
		t.Fatal("unknown binop")
	}
}

func TestRangeExpr(t *testing.T) {
	e := RangeExpr{Lo: 3, Hi: 7}
	if e.Len() != 5 || e.Index(0).(*Int).Val != 3 || e.Index(4).(*Int).Val != 7 {
		t.Fatal("range expr")
	}
	if (RangeExpr{Lo: 5, Hi: 4}).Len() != 0 {
		t.Fatal("empty range")
	}
	if got := SumReduce(RangeExpr{Lo: 1, Hi: 100}, 4).(*Int).Val; got != 5050 {
		t.Fatalf("sum 1..100 = %d", got)
	}
}

func TestMapExpr(t *testing.T) {
	squares := MapOver(RangeExpr{Lo: 1, Hi: 5}, IntType(), func(v Value) Value {
		x := v.(*Int).Val
		return &Int{Val: x * x}
	})
	if got := SumReduce(squares, 2).(*Int).Val; got != 55 {
		t.Fatalf("sum of squares = %d", got)
	}
	mustPanic(t, "MapOver nil", func() { MapOver(RangeExpr{}, nil, nil) })
}

func TestReduceTaskCountEdgeCases(t *testing.T) {
	e := Over(IntArray(1, 2, 3))
	// tasks > len collapses to len; tasks < 1 uses GOMAXPROCS.
	if SumReduce(e, 100).(*Int).Val != 6 || SumReduce(e, 0).(*Int).Val != 6 {
		t.Fatal("task clamping")
	}
	if SumReduce(Over(IntArray()), 4).(*Int).Val != 0 {
		t.Fatal("empty reduce")
	}
}

func TestScanSum(t *testing.T) {
	e := Over(IntArray(1, 2, 3, 4, 5))
	for _, tasks := range []int{1, 2, 3, 8} {
		got := Scan(NewSumOp(), e, tasks)
		want := []int64{1, 3, 6, 10, 15}
		if len(got) != 5 {
			t.Fatalf("tasks=%d: len %d", tasks, len(got))
		}
		for i := range want {
			if got[i].(*Int).Val != want[i] {
				t.Fatalf("tasks=%d: scan[%d] = %v want %d", tasks, i, got[i], want[i])
			}
		}
	}
	if len(Scan(NewSumOp(), Over(IntArray()), 4)) != 0 {
		t.Fatal("empty scan")
	}
}

func TestScanMax(t *testing.T) {
	e := Over(IntArray(3, 1, 4, 1, 5, 9, 2, 6))
	want := []int64{3, 3, 4, 4, 5, 9, 9, 9}
	got := Scan(NewMaxOp(), e, 3)
	for i := range want {
		if got[i].(*Int).Val != want[i] {
			t.Fatalf("scan max[%d] = %v want %d", i, got[i], want[i])
		}
	}
}

// kmeansLikeOp is a user-defined reduction with array state, mirroring the
// shape of the paper's Fig. 3 k-means reduction class: it histograms values
// into k buckets and sums each bucket.
type kmeansLikeOp struct {
	k      int
	counts []int64
	sums   []float64
}

func newKmeansLikeOp(k int) *kmeansLikeOp {
	return &kmeansLikeOp{k: k, counts: make([]int64, k), sums: make([]float64, k)}
}

func (o *kmeansLikeOp) Clone() ReduceScanOp { return newKmeansLikeOp(o.k) }

func (o *kmeansLikeOp) Accumulate(x Value) {
	v := AsReal(x)
	b := int(v) % o.k
	if b < 0 {
		b += o.k
	}
	o.counts[b]++
	o.sums[b] += v
}

func (o *kmeansLikeOp) Combine(other ReduceScanOp) {
	x := other.(*kmeansLikeOp)
	for i := 0; i < o.k; i++ {
		o.counts[i] += x.counts[i]
		o.sums[i] += x.sums[i]
	}
}

func (o *kmeansLikeOp) Generate() Value {
	out := NewArray(ArrayType(RealType(), 1, o.k))
	for i := 0; i < o.k; i++ {
		out.SetAt(i+1, &Real{Val: o.sums[i]})
	}
	return out
}

func TestUserDefinedReduction(t *testing.T) {
	vals := make([]float64, 999)
	for i := range vals {
		vals[i] = float64(i)
	}
	e := Over(RealArray(vals...))
	seq := ReduceSeq(newKmeansLikeOp(7), e).(*Array)
	for _, tasks := range []int{1, 2, 4, 8} {
		par := Reduce(newKmeansLikeOp(7), e, tasks).(*Array)
		if !DeepEqual(seq, par) {
			t.Fatalf("tasks=%d: parallel user reduction diverges", tasks)
		}
	}
}

// Property: parallel Reduce equals sequential ReduceSeq for integer sums,
// min, and max over arbitrary data and task counts.
func TestPropertyReduceMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw uint16, tasksRaw uint8) bool {
		n := int(nRaw % 3000)
		tasks := int(tasksRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20001) - 10000)
		}
		e := Over(IntArray(vals...))
		for _, mk := range []func() ReduceScanOp{
			func() ReduceScanOp { return NewSumOp() },
			func() ReduceScanOp { return NewMinOp() },
			func() ReduceScanOp { return NewMaxOp() },
		} {
			if !DeepEqual(ReduceSeq(mk(), e), Reduce(mk(), e, tasks)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: scan's last element equals the reduction, for sums of ints.
func TestPropertyScanConsistentWithReduce(t *testing.T) {
	f := func(seed int64, nRaw uint16, tasksRaw uint8) bool {
		n := int(nRaw%500) + 1
		tasks := int(tasksRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(100))
		}
		e := Over(IntArray(vals...))
		scan := Scan(NewSumOp(), e, tasks)
		red := Reduce(NewSumOp(), e, tasks)
		return DeepEqual(scan[n-1], red)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLocOp(t *testing.T) {
	e := Over(RealArray(4, 9, 3, 9, 5))
	got := Reduce(NewMaxLocOp(), e, 3).(*Record)
	if got.Field("value").(*Real).Val != 9 {
		t.Fatalf("maxloc value = %v", got.Field("value"))
	}
	// Ties resolve to the smallest index (0-based position 1).
	if got.Field("idx").(*Int).Val != 1 {
		t.Fatalf("maxloc idx = %v", got.Field("idx"))
	}
	mustPanic(t, "plain accumulate", func() { NewMaxLocOp().Accumulate(&Real{}) })
	// Combining an uninitialized clone is a no-op.
	op := NewMaxLocOp()
	op.AccumulateAt(&Real{Val: 2}, 7)
	op.Combine(NewMaxLocOp())
	out := op.Generate().(*Record)
	if out.Field("idx").(*Int).Val != 7 {
		t.Fatal("combine with identity changed state")
	}
}
