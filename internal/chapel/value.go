package chapel

import (
	"fmt"
)

// Value is a boxed Chapel runtime value. Values are heap-allocated and
// pointer-linked on purpose: they stand in for the nested structures Chapel's
// compiler emits, whose traversal cost is the "accesses to complex Chapel
// structures" overhead the paper's opt-2 removes.
type Value interface {
	// Type returns the value's type descriptor.
	Type() *Type
}

// Int is a Chapel int value.
type Int struct{ Val int64 }

// Type implements Value.
func (*Int) Type() *Type { return intType }

// Real is a Chapel real value.
type Real struct{ Val float64 }

// Type implements Value.
func (*Real) Type() *Type { return realType }

// Bool is a Chapel bool value.
type Bool struct{ Val bool }

// Type implements Value.
func (*Bool) Type() *Type { return boolType }

// String is a bounded Chapel string value.
type String struct {
	Ty  *Type
	Val string
}

// Type implements Value.
func (s *String) Type() *Type { return s.Ty }

// NewString boxes a string value, truncating to the type's MaxLen.
func NewString(ty *Type, v string) *String {
	if ty.Kind != KindString {
		panic("chapel: NewString with non-string type")
	}
	if len(v) > ty.MaxLen {
		v = v[:ty.MaxLen]
	}
	return &String{Ty: ty, Val: v}
}

// Enum is an enumerated value identified by ordinal.
type Enum struct {
	Ty      *Type
	Ordinal int
}

// Type implements Value.
func (e *Enum) Type() *Type { return e.Ty }

// Name returns the enum constant's declared name.
func (e *Enum) Name() string { return e.Ty.Consts[e.Ordinal] }

// NewEnum boxes an enum value by ordinal.
func NewEnum(ty *Type, ordinal int) *Enum {
	if ty.Kind != KindEnum {
		panic("chapel: NewEnum with non-enum type")
	}
	if ordinal < 0 || ordinal >= len(ty.Consts) {
		panic(fmt.Sprintf("chapel: enum ordinal %d out of range for %s", ordinal, ty))
	}
	return &Enum{Ty: ty, Ordinal: ordinal}
}

// Array is a boxed Chapel array. Elements are themselves boxed Values;
// indexing uses the type's declared domain [Lo..Hi], Chapel-style.
type Array struct {
	Ty    *Type
	Elems []Value
}

// Type implements Value.
func (a *Array) Type() *Type { return a.Ty }

// NewArray allocates an array with every element set to its zero value.
func NewArray(ty *Type) *Array {
	if ty.Kind != KindArray {
		panic("chapel: NewArray with non-array type")
	}
	n := ty.Len()
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = Zero(ty.Elem)
	}
	return &Array{Ty: ty, Elems: elems}
}

// At returns the element at domain index i (Lo ≤ i ≤ Hi).
func (a *Array) At(i int) Value {
	return a.Elems[a.offset(i)]
}

// SetAt replaces the element at domain index i.
func (a *Array) SetAt(i int, v Value) {
	if !v.Type().Equal(a.Ty.Elem) {
		panic(fmt.Sprintf("chapel: SetAt type mismatch: %s into %s", v.Type(), a.Ty))
	}
	a.Elems[a.offset(i)] = v
}

// offset maps a domain index to a slice index. The domain check stays a
// panic: accesses issued by a verified translation are proven in-domain at
// translate time (core.Verify, FRV010), so on the hot path this only guards
// hand-written code indexing an array directly.
func (a *Array) offset(i int) int {
	if i < a.Ty.Lo || i > a.Ty.Hi {
		panic(fmt.Sprintf("chapel: index %d out of domain [%d..%d]", i, a.Ty.Lo, a.Ty.Hi))
	}
	return i - a.Ty.Lo
}

// Len reports the number of elements.
func (a *Array) Len() int { return len(a.Elems) }

// Record is a boxed Chapel record; fields are in declaration order.
type Record struct {
	Ty     *Type
	Fields []Value
}

// Type implements Value.
func (r *Record) Type() *Type { return r.Ty }

// NewRecord allocates a record with every field set to its zero value.
func NewRecord(ty *Type) *Record {
	if ty.Kind != KindRecord {
		panic("chapel: NewRecord with non-record type")
	}
	fields := make([]Value, len(ty.Fields))
	for i, f := range ty.Fields {
		fields[i] = Zero(f.Type)
	}
	return &Record{Ty: ty, Fields: fields}
}

// Field returns the named field's value.
func (r *Record) Field(name string) Value {
	i := r.Ty.FieldIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("chapel: record %s has no field %q", r.Ty.Name, name))
	}
	return r.Fields[i]
}

// SetField replaces the named field's value.
func (r *Record) SetField(name string, v Value) {
	i := r.Ty.FieldIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("chapel: record %s has no field %q", r.Ty.Name, name))
	}
	if !v.Type().Equal(r.Ty.Fields[i].Type) {
		panic(fmt.Sprintf("chapel: SetField type mismatch: %s into field %q: %s",
			v.Type(), name, r.Ty.Fields[i].Type))
	}
	r.Fields[i] = v
}

// Zero returns the zero value of a type: 0, 0.0, false, "", the first enum
// constant, and recursively-zeroed arrays and records.
func Zero(ty *Type) Value {
	switch ty.Kind {
	case KindInt:
		return &Int{}
	case KindReal:
		return &Real{}
	case KindBool:
		return &Bool{}
	case KindString:
		return &String{Ty: ty}
	case KindEnum:
		return &Enum{Ty: ty}
	case KindArray:
		return NewArray(ty)
	case KindRecord:
		return NewRecord(ty)
	default:
		panic("chapel: Zero of unknown kind " + ty.Kind.String())
	}
}

// Clone deep-copies a value.
func Clone(v Value) Value {
	switch x := v.(type) {
	case *Int:
		c := *x
		return &c
	case *Real:
		c := *x
		return &c
	case *Bool:
		c := *x
		return &c
	case *String:
		c := *x
		return &c
	case *Enum:
		c := *x
		return &c
	case *Array:
		elems := make([]Value, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = Clone(e)
		}
		return &Array{Ty: x.Ty, Elems: elems}
	case *Record:
		fields := make([]Value, len(x.Fields))
		for i, f := range x.Fields {
			fields[i] = Clone(f)
		}
		return &Record{Ty: x.Ty, Fields: fields}
	default:
		panic(fmt.Sprintf("chapel: Clone of unknown value %T", v))
	}
}

// DeepEqual reports whether two values have equal types and contents.
func DeepEqual(a, b Value) bool {
	if !a.Type().Equal(b.Type()) {
		return false
	}
	switch x := a.(type) {
	case *Int:
		return x.Val == b.(*Int).Val
	case *Real:
		return x.Val == b.(*Real).Val
	case *Bool:
		return x.Val == b.(*Bool).Val
	case *String:
		return x.Val == b.(*String).Val
	case *Enum:
		return x.Ordinal == b.(*Enum).Ordinal
	case *Array:
		y := b.(*Array)
		for i := range x.Elems {
			if !DeepEqual(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Record:
		y := b.(*Record)
		for i := range x.Fields {
			if !DeepEqual(x.Fields[i], y.Fields[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// AsReal extracts a numeric value as float64 (ints widen), panicking on
// non-numeric values; it is the dynamic coercion Chapel's numeric contexts
// perform.
func AsReal(v Value) float64 {
	switch x := v.(type) {
	case *Real:
		return x.Val
	case *Int:
		return float64(x.Val)
	case *Bool:
		if x.Val {
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("chapel: AsReal of %s", v.Type()))
	}
}

// AsInt extracts an integer value as int64 (bools widen), panicking on
// non-integral values.
func AsInt(v Value) int64 {
	switch x := v.(type) {
	case *Int:
		return x.Val
	case *Enum:
		return int64(x.Ordinal)
	case *Bool:
		if x.Val {
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("chapel: AsInt of %s", v.Type()))
	}
}

// RealArray builds a boxed [1..len(vals)] real array from a Go slice —
// a convenience for constructing Chapel-side datasets in tests and apps.
func RealArray(vals ...float64) *Array {
	ty := ArrayType(RealType(), 1, len(vals))
	a := NewArray(ty)
	for i, v := range vals {
		a.SetAt(i+1, &Real{Val: v})
	}
	return a
}

// IntArray builds a boxed [1..len(vals)] int array from a Go slice.
func IntArray(vals ...int64) *Array {
	ty := ArrayType(IntType(), 1, len(vals))
	a := NewArray(ty)
	for i, v := range vals {
		a.SetAt(i+1, &Int{Val: v})
	}
	return a
}
