// Package chapel is a runtime analog of the Chapel language features the
// paper relies on: the data model (primitive types, 1-based arrays over
// ranges, records, enums), boxed runtime values that mirror the nested
// heap structures Chapel's compiler emits, iterable expressions (so a
// reduction can range over expressions like A+B), and the reduction
// mechanism — the ReduceScanOp class with its accumulate / combine /
// generate stages (Fig. 2 of the paper) plus a global-view parallel Reduce.
//
// The reproduction bands rule out real compiler tooling, so this package is
// the substitution for the Chapel front end: programs written against it
// have the same shape as the paper's Chapel code (compare Fig. 3 with
// apps.KMeansChapelOp), and its boxed values have the same
// pointer-chasing access cost that the paper's opt-2 transformation exists
// to eliminate.
package chapel

import (
	"fmt"
	"strings"
)

// Kind discriminates Chapel type descriptors.
type Kind int

const (
	// KindInt is Chapel's default int (64-bit).
	KindInt Kind = iota
	// KindReal is Chapel's default real (64-bit float).
	KindReal
	// KindBool is Chapel's bool.
	KindBool
	// KindString is a bounded string (a max width must be declared for
	// linearization, which needs fixed-size slots).
	KindString
	// KindEnum is an enumerated type; values are ordinals.
	KindEnum
	// KindArray is a 1-dimensional array over an inclusive range [Lo..Hi].
	KindArray
	// KindRecord is a record (compiled to a C struct by Chapel).
	KindRecord
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindEnum:
		return "enum"
	case KindArray:
		return "array"
	case KindRecord:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Field is one member of a record type.
type Field struct {
	Name string
	Type *Type
}

// Type is a Chapel type descriptor. Construct with the typed constructors
// (IntType, ArrayType, RecordType, ...); Types are immutable once built and
// safe to share.
type Type struct {
	Kind Kind
	// Name is the declared name for records and enums.
	Name string
	// Elem is the element type for arrays.
	Elem *Type
	// Lo, Hi bound the array domain [Lo..Hi], inclusive, Chapel-style.
	Lo, Hi int
	// Fields are the record members, in declaration order.
	Fields []Field
	// Consts are the enum constant names, in ordinal order.
	Consts []string
	// MaxLen is the declared byte width for strings.
	MaxLen int
}

var (
	intType  = &Type{Kind: KindInt}
	realType = &Type{Kind: KindReal}
	boolType = &Type{Kind: KindBool}
)

// IntType returns the int type descriptor.
func IntType() *Type { return intType }

// RealType returns the real type descriptor.
func RealType() *Type { return realType }

// BoolType returns the bool type descriptor.
func BoolType() *Type { return boolType }

// StringType returns a bounded string type with the given maximum byte
// length, which linearization uses as the fixed slot width.
func StringType(maxLen int) *Type {
	if maxLen < 1 {
		panic("chapel: StringType needs maxLen >= 1")
	}
	return &Type{Kind: KindString, MaxLen: maxLen}
}

// EnumType declares an enumerated type with the given constants.
func EnumType(name string, consts ...string) *Type {
	if len(consts) == 0 {
		panic("chapel: EnumType needs at least one constant")
	}
	return &Type{Kind: KindEnum, Name: name, Consts: consts}
}

// ArrayType declares a 1-D array type over the inclusive domain [lo..hi].
func ArrayType(elem *Type, lo, hi int) *Type {
	if elem == nil {
		panic("chapel: ArrayType needs an element type")
	}
	if hi < lo-1 { // hi == lo-1 is the empty domain
		panic(fmt.Sprintf("chapel: invalid array domain [%d..%d]", lo, hi))
	}
	return &Type{Kind: KindArray, Elem: elem, Lo: lo, Hi: hi}
}

// RecordType declares a record with the given fields.
func RecordType(name string, fields ...Field) *Type {
	if len(fields) == 0 {
		panic("chapel: RecordType needs at least one field")
	}
	seen := map[string]bool{}
	for _, f := range fields {
		if f.Name == "" || f.Type == nil {
			panic("chapel: record field needs a name and a type")
		}
		if seen[f.Name] {
			panic(fmt.Sprintf("chapel: duplicate field %q in record %q", f.Name, name))
		}
		seen[f.Name] = true
	}
	return &Type{Kind: KindRecord, Name: name, Fields: append([]Field(nil), fields...)}
}

// Len reports the number of elements of an array type's domain.
func (t *Type) Len() int {
	if t.Kind != KindArray {
		panic("chapel: Len on non-array type " + t.String())
	}
	return t.Hi - t.Lo + 1
}

// IsPrimitive reports whether the type is one of Chapel's primitive types
// (numeric, bool, string, enumerated), per §IV-B of the paper.
func (t *Type) IsPrimitive() bool {
	switch t.Kind {
	case KindInt, KindReal, KindBool, KindString, KindEnum:
		return true
	default:
		return false
	}
}

// FieldIndex returns the position of the named field in a record type, or
// -1 if absent.
func (t *Type) FieldIndex(name string) int {
	if t.Kind != KindRecord {
		panic("chapel: FieldIndex on non-record type " + t.String())
	}
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports structural type equality (names included for records and
// enums).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KindString:
		return t.MaxLen == o.MaxLen
	case KindEnum:
		if t.Name != o.Name || len(t.Consts) != len(o.Consts) {
			return false
		}
		for i := range t.Consts {
			if t.Consts[i] != o.Consts[i] {
				return false
			}
		}
		return true
	case KindArray:
		return t.Lo == o.Lo && t.Hi == o.Hi && t.Elem.Equal(o.Elem)
	case KindRecord:
		if t.Name != o.Name || len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type in Chapel-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindInt, KindReal, KindBool:
		return t.Kind.String()
	case KindString:
		return fmt.Sprintf("string(%d)", t.MaxLen)
	case KindEnum:
		return fmt.Sprintf("enum %s {%s}", t.Name, strings.Join(t.Consts, ", "))
	case KindArray:
		return fmt.Sprintf("[%d..%d] %s", t.Lo, t.Hi, t.Elem)
	case KindRecord:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + ": " + f.Type.String()
		}
		return fmt.Sprintf("record %s {%s}", t.Name, strings.Join(parts, "; "))
	default:
		return t.Kind.String()
	}
}
