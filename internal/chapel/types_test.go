package chapel

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestPrimitiveSingletons(t *testing.T) {
	if IntType() != IntType() || RealType() != RealType() || BoolType() != BoolType() {
		t.Fatal("primitive types should be singletons")
	}
	for _, ty := range []*Type{IntType(), RealType(), BoolType(), StringType(8), EnumType("e", "a")} {
		if !ty.IsPrimitive() {
			t.Fatalf("%s should be primitive", ty)
		}
	}
	arr := ArrayType(RealType(), 1, 3)
	rec := RecordType("r", Field{Name: "x", Type: IntType()})
	if arr.IsPrimitive() || rec.IsPrimitive() {
		t.Fatal("array/record are not primitive")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindInt: "int", KindReal: "real", KindBool: "bool", KindString: "string",
		KindEnum: "enum", KindArray: "array", KindRecord: "record",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("kind %d = %q want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestArrayTypeDomain(t *testing.T) {
	a := ArrayType(RealType(), 1, 10)
	if a.Len() != 10 {
		t.Fatalf("Len = %d", a.Len())
	}
	b := ArrayType(IntType(), -3, 3)
	if b.Len() != 7 {
		t.Fatalf("Len = %d", b.Len())
	}
	empty := ArrayType(IntType(), 1, 0)
	if empty.Len() != 0 {
		t.Fatalf("empty Len = %d", empty.Len())
	}
	mustPanic(t, "inverted domain", func() { ArrayType(IntType(), 5, 3) })
	mustPanic(t, "nil elem", func() { ArrayType(nil, 1, 3) })
	mustPanic(t, "Len on scalar", func() { IntType().Len() })
}

func TestConstructorValidation(t *testing.T) {
	mustPanic(t, "string maxlen", func() { StringType(0) })
	mustPanic(t, "empty enum", func() { EnumType("e") })
	mustPanic(t, "empty record", func() { RecordType("r") })
	mustPanic(t, "unnamed field", func() { RecordType("r", Field{Type: IntType()}) })
	mustPanic(t, "nil field type", func() { RecordType("r", Field{Name: "x"}) })
	mustPanic(t, "dup field", func() {
		RecordType("r", Field{Name: "x", Type: IntType()}, Field{Name: "x", Type: IntType()})
	})
}

func TestFieldIndex(t *testing.T) {
	r := RecordType("r", Field{Name: "a", Type: IntType()}, Field{Name: "b", Type: RealType()})
	if r.FieldIndex("a") != 0 || r.FieldIndex("b") != 1 || r.FieldIndex("c") != -1 {
		t.Fatal("FieldIndex wrong")
	}
	mustPanic(t, "FieldIndex on scalar", func() { IntType().FieldIndex("a") })
}

func TestTypeEqual(t *testing.T) {
	pointA := RecordType("point", Field{Name: "xs", Type: ArrayType(RealType(), 1, 3)})
	pointB := RecordType("point", Field{Name: "xs", Type: ArrayType(RealType(), 1, 3)})
	if !pointA.Equal(pointB) {
		t.Fatal("structurally equal records should be Equal")
	}
	cases := []struct{ a, b *Type }{
		{IntType(), RealType()},
		{StringType(4), StringType(8)},
		{EnumType("e", "a"), EnumType("e", "b")},
		{EnumType("e", "a"), EnumType("f", "a")},
		{ArrayType(IntType(), 1, 3), ArrayType(IntType(), 0, 2)},
		{ArrayType(IntType(), 1, 3), ArrayType(RealType(), 1, 3)},
		{pointA, RecordType("point", Field{Name: "ys", Type: ArrayType(RealType(), 1, 3)})},
		{pointA, RecordType("q", Field{Name: "xs", Type: ArrayType(RealType(), 1, 3)})},
		{pointA, nil},
	}
	for i, c := range cases {
		if c.a.Equal(c.b) {
			t.Errorf("case %d: %s should != %s", i, c.a, c.b)
		}
	}
	if !IntType().Equal(IntType()) || !StringType(4).Equal(StringType(4)) {
		t.Fatal("identical types unequal")
	}
}

func TestTypeString(t *testing.T) {
	// The paper's Fig. 6 nested structure renders readably.
	a := RecordType("A",
		Field{Name: "a1", Type: ArrayType(RealType(), 1, 4)},
		Field{Name: "a2", Type: IntType()})
	b := RecordType("B",
		Field{Name: "b1", Type: ArrayType(a, 1, 3)},
		Field{Name: "b2", Type: IntType()})
	s := b.String()
	for _, want := range []string{"record B", "b1: [1..3] record A", "a1: [1..4] real", "a2: int", "b2: int"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if (*Type)(nil).String() != "<nil>" {
		t.Error("nil type string")
	}
	if got := EnumType("color", "red", "green").String(); got != "enum color {red, green}" {
		t.Errorf("enum string = %q", got)
	}
	if got := StringType(16).String(); got != "string(16)" {
		t.Errorf("string type string = %q", got)
	}
}
