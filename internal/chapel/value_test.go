package chapel

import (
	"testing"
)

// fig6Type builds the paper's Figure 6 nested structure:
//
//	record A { a1: [1..m] real; a2: int; }
//	record B { b1: [1..n] A;   b2: int; }
//	data: [1..t] B;
func fig6Type(t, n, m int) *Type {
	a := RecordType("A",
		Field{Name: "a1", Type: ArrayType(RealType(), 1, m)},
		Field{Name: "a2", Type: IntType()})
	b := RecordType("B",
		Field{Name: "b1", Type: ArrayType(a, 1, n)},
		Field{Name: "b2", Type: IntType()})
	return ArrayType(b, 1, t)
}

// fig6Data fills a fig6Type value with data[i].b1[j].a1[k] = i*100 + j*10 + k.
func fig6Data(tt, n, m int) *Array {
	data := NewArray(fig6Type(tt, n, m))
	for i := 1; i <= tt; i++ {
		b := data.At(i).(*Record)
		for j := 1; j <= n; j++ {
			a := b.Field("b1").(*Array).At(j).(*Record)
			for k := 1; k <= m; k++ {
				a.Field("a1").(*Array).SetAt(k, &Real{Val: float64(i*100 + j*10 + k)})
			}
			a.SetField("a2", &Int{Val: int64(j)})
		}
		b.SetField("b2", &Int{Val: int64(i)})
	}
	return data
}

func TestZeroValues(t *testing.T) {
	if Zero(IntType()).(*Int).Val != 0 {
		t.Fatal("zero int")
	}
	if Zero(RealType()).(*Real).Val != 0 {
		t.Fatal("zero real")
	}
	if Zero(BoolType()).(*Bool).Val {
		t.Fatal("zero bool")
	}
	if Zero(StringType(4)).(*String).Val != "" {
		t.Fatal("zero string")
	}
	e := Zero(EnumType("e", "x", "y")).(*Enum)
	if e.Ordinal != 0 || e.Name() != "x" {
		t.Fatal("zero enum")
	}
	arr := Zero(ArrayType(IntType(), 1, 3)).(*Array)
	if arr.Len() != 3 || arr.At(2).(*Int).Val != 0 {
		t.Fatal("zero array")
	}
	rec := Zero(RecordType("r", Field{Name: "x", Type: RealType()})).(*Record)
	if rec.Field("x").(*Real).Val != 0 {
		t.Fatal("zero record")
	}
}

func TestArrayDomainIndexing(t *testing.T) {
	a := NewArray(ArrayType(IntType(), 5, 9))
	a.SetAt(5, &Int{Val: 50})
	a.SetAt(9, &Int{Val: 90})
	if a.At(5).(*Int).Val != 50 || a.At(9).(*Int).Val != 90 {
		t.Fatal("domain indexing broken")
	}
	mustPanic(t, "below lo", func() { a.At(4) })
	mustPanic(t, "above hi", func() { a.At(10) })
	mustPanic(t, "set type mismatch", func() { a.SetAt(5, &Real{Val: 1}) })
	mustPanic(t, "NewArray non-array", func() { NewArray(IntType()) })
}

func TestRecordFields(t *testing.T) {
	ty := RecordType("pt", Field{Name: "x", Type: RealType()}, Field{Name: "y", Type: RealType()})
	r := NewRecord(ty)
	r.SetField("x", &Real{Val: 1.5})
	if r.Field("x").(*Real).Val != 1.5 || r.Field("y").(*Real).Val != 0 {
		t.Fatal("field access broken")
	}
	mustPanic(t, "unknown get", func() { r.Field("z") })
	mustPanic(t, "unknown set", func() { r.SetField("z", &Real{}) })
	mustPanic(t, "set type mismatch", func() { r.SetField("x", &Int{}) })
	mustPanic(t, "NewRecord non-record", func() { NewRecord(IntType()) })
}

func TestStringAndEnumConstruction(t *testing.T) {
	st := StringType(4)
	s := NewString(st, "hello") // truncates
	if s.Val != "hell" {
		t.Fatalf("truncated to %q", s.Val)
	}
	mustPanic(t, "NewString non-string", func() { NewString(IntType(), "x") })
	et := EnumType("color", "red", "green", "blue")
	if NewEnum(et, 2).Name() != "blue" {
		t.Fatal("enum name")
	}
	mustPanic(t, "enum ordinal range", func() { NewEnum(et, 3) })
	mustPanic(t, "NewEnum non-enum", func() { NewEnum(IntType(), 0) })
}

func TestCloneIsDeep(t *testing.T) {
	data := fig6Data(2, 2, 2)
	cp := Clone(data).(*Array)
	if !DeepEqual(data, cp) {
		t.Fatal("clone should equal original")
	}
	// Mutate a deeply nested element of the clone.
	cp.At(1).(*Record).Field("b1").(*Array).At(1).(*Record).
		Field("a1").(*Array).SetAt(1, &Real{Val: -1})
	if DeepEqual(data, cp) {
		t.Fatal("clone aliases original")
	}
	if data.At(1).(*Record).Field("b1").(*Array).At(1).(*Record).
		Field("a1").(*Array).At(1).(*Real).Val != 111 {
		t.Fatal("original mutated through clone")
	}
}

func TestDeepEqual(t *testing.T) {
	if !DeepEqual(&Int{Val: 3}, &Int{Val: 3}) || DeepEqual(&Int{Val: 3}, &Int{Val: 4}) {
		t.Fatal("int equality")
	}
	if DeepEqual(&Int{Val: 3}, &Real{Val: 3}) {
		t.Fatal("cross-type equality")
	}
	st := StringType(8)
	if !DeepEqual(NewString(st, "a"), NewString(st, "a")) || DeepEqual(NewString(st, "a"), NewString(st, "b")) {
		t.Fatal("string equality")
	}
	et := EnumType("e", "x", "y")
	if !DeepEqual(NewEnum(et, 1), NewEnum(et, 1)) || DeepEqual(NewEnum(et, 0), NewEnum(et, 1)) {
		t.Fatal("enum equality")
	}
	if !DeepEqual(&Bool{Val: true}, &Bool{Val: true}) || DeepEqual(&Bool{}, &Bool{Val: true}) {
		t.Fatal("bool equality")
	}
	a, b := fig6Data(2, 2, 2), fig6Data(2, 2, 2)
	if !DeepEqual(a, b) {
		t.Fatal("nested equality")
	}
	b.At(2).(*Record).SetField("b2", &Int{Val: 99})
	if DeepEqual(a, b) {
		t.Fatal("nested inequality missed")
	}
}

func TestAsRealAsInt(t *testing.T) {
	if AsReal(&Int{Val: 3}) != 3 || AsReal(&Real{Val: 2.5}) != 2.5 {
		t.Fatal("AsReal numeric")
	}
	if AsReal(&Bool{Val: true}) != 1 || AsReal(&Bool{}) != 0 {
		t.Fatal("AsReal bool")
	}
	if AsInt(&Int{Val: -7}) != -7 || AsInt(&Bool{Val: true}) != 1 || AsInt(&Bool{}) != 0 {
		t.Fatal("AsInt")
	}
	if AsInt(NewEnum(EnumType("e", "a", "b"), 1)) != 1 {
		t.Fatal("AsInt enum")
	}
	mustPanic(t, "AsReal string", func() { AsReal(NewString(StringType(2), "x")) })
	mustPanic(t, "AsInt real", func() { AsInt(&Real{Val: 1}) })
}

func TestConvenienceArrays(t *testing.T) {
	ra := RealArray(1, 2, 3)
	if ra.Len() != 3 || ra.At(1).(*Real).Val != 1 || ra.At(3).(*Real).Val != 3 {
		t.Fatal("RealArray")
	}
	ia := IntArray(4, 5)
	if ia.Len() != 2 || ia.At(2).(*Int).Val != 5 {
		t.Fatal("IntArray")
	}
	if RealArray().Len() != 0 {
		t.Fatal("empty RealArray")
	}
}
