package chapel

import "fmt"

// Expr is an iterable expression a reduction can range over. Chapel permits
// reductions over "standard arrays of some primitive types, expressions over
// arrays, loop expressions, records of some mixed types and so on" (§IV-B);
// Expr models that family: arrays, element-wise operator expressions such as
// A+B (so `min reduce A+B` works), and integer ranges.
//
// Iteration order is the 0-based position; ElemType is the static type of
// every produced element.
type Expr interface {
	// ElemType returns the static element type.
	ElemType() *Type
	// Len returns the number of elements the expression yields.
	Len() int
	// Index returns element i (0-based iteration position).
	Index(i int) Value
}

// ArrayExpr adapts a boxed array to Expr.
type ArrayExpr struct{ A *Array }

// Over wraps an array as an iterable expression.
func Over(a *Array) ArrayExpr { return ArrayExpr{A: a} }

// ElemType implements Expr.
func (e ArrayExpr) ElemType() *Type { return e.A.Ty.Elem }

// Len implements Expr.
func (e ArrayExpr) Len() int { return e.A.Len() }

// Index implements Expr.
func (e ArrayExpr) Index(i int) Value { return e.A.Elems[i] }

// BinOp is an element-wise arithmetic operator for expression zips.
type BinOp int

const (
	// OpPlus is element-wise addition (A+B).
	OpPlus BinOp = iota
	// OpMinus is element-wise subtraction (A-B).
	OpMinus
	// OpTimes is element-wise multiplication (A*B).
	OpTimes
)

// String returns the operator's symbol.
func (o BinOp) String() string {
	switch o {
	case OpPlus:
		return "+"
	case OpMinus:
		return "-"
	case OpTimes:
		return "*"
	default:
		return fmt.Sprintf("binop(%d)", int(o))
	}
}

// ZipExpr is the element-wise combination of two equal-length numeric
// expressions, such as the A+B in `min reduce A+B`.
type ZipExpr struct {
	Op   BinOp
	L, R Expr
}

// Zip builds the element-wise expression L op R. Both operands must have
// the same length and numeric element types; the result element type is
// real if either side is real, else int.
func Zip(op BinOp, l, r Expr) ZipExpr {
	if l.Len() != r.Len() {
		panic(fmt.Sprintf("chapel: zip length mismatch %d vs %d", l.Len(), r.Len()))
	}
	for _, e := range []Expr{l, r} {
		k := e.ElemType().Kind
		if k != KindInt && k != KindReal {
			panic("chapel: zip over non-numeric expression " + e.ElemType().String())
		}
	}
	return ZipExpr{Op: op, L: l, R: r}
}

// ElemType implements Expr.
func (e ZipExpr) ElemType() *Type {
	if e.L.ElemType().Kind == KindReal || e.R.ElemType().Kind == KindReal {
		return RealType()
	}
	return IntType()
}

// Len implements Expr.
func (e ZipExpr) Len() int { return e.L.Len() }

// Index implements Expr.
func (e ZipExpr) Index(i int) Value {
	l, r := e.L.Index(i), e.R.Index(i)
	if e.ElemType().Kind == KindReal {
		a, b := AsReal(l), AsReal(r)
		switch e.Op {
		case OpMinus:
			return &Real{Val: a - b}
		case OpTimes:
			return &Real{Val: a * b}
		default:
			return &Real{Val: a + b}
		}
	}
	a, b := AsInt(l), AsInt(r)
	switch e.Op {
	case OpMinus:
		return &Int{Val: a - b}
	case OpTimes:
		return &Int{Val: a * b}
	default:
		return &Int{Val: a + b}
	}
}

// RangeExpr iterates the integers of the inclusive range [Lo..Hi], Chapel's
// `lo..hi` range value.
type RangeExpr struct{ Lo, Hi int }

// ElemType implements Expr.
func (RangeExpr) ElemType() *Type { return IntType() }

// Len implements Expr.
func (e RangeExpr) Len() int {
	if e.Hi < e.Lo {
		return 0
	}
	return e.Hi - e.Lo + 1
}

// Index implements Expr.
func (e RangeExpr) Index(i int) Value { return &Int{Val: int64(e.Lo + i)} }

// MapExpr applies a per-element function to an underlying expression — the
// analog of a Chapel loop expression `[i in D] f(i)`.
type MapExpr struct {
	Src Expr
	Ty  *Type
	F   func(Value) Value
}

// MapOver builds a loop expression producing ty-typed elements.
func MapOver(src Expr, ty *Type, f func(Value) Value) MapExpr {
	if ty == nil || f == nil {
		panic("chapel: MapOver needs a type and a function")
	}
	return MapExpr{Src: src, Ty: ty, F: f}
}

// ElemType implements Expr.
func (e MapExpr) ElemType() *Type { return e.Ty }

// Len implements Expr.
func (e MapExpr) Len() int { return e.Src.Len() }

// Index implements Expr.
func (e MapExpr) Index(i int) Value { return e.F(e.Src.Index(i)) }
