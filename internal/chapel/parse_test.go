package chapel

import (
	"strings"
	"testing"
)

// fig6Source is the paper's Fig. 6 data structure, written as Chapel.
const fig6Source = `
/* the paper's Fig. 6 nested structure */
record A {
    a1: [1..5] real;  // inner vector
    a2: int;
}
record B {
    b1: [1..4] A;
    b2: int;
}
var data: [1..3] B;
`

func TestParseFig6(t *testing.T) {
	d, err := ParseDecls(fig6Source)
	if err != nil {
		t.Fatal(err)
	}
	want := fig6Type(3, 4, 5)
	got, err := d.Var("data")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("parsed type %s\nwant %s", got, want)
	}
	if len(d.VarOrder) != 1 || d.VarOrder[0] != "data" {
		t.Fatalf("var order = %v", d.VarOrder)
	}
	if _, err := d.Var("missing"); err == nil {
		t.Fatal("missing var should error")
	}
}

func TestParsePrimitivesAndEnums(t *testing.T) {
	d, err := ParseDecls(`
enum color { red, green, blue };
record tagged {
    label: string(16);
    hue: color;
    ok: bool;
    weight: real;
    count: int;
}
var items: [0..9] tagged;
const threshold: real;
`)
	if err != nil {
		t.Fatal(err)
	}
	items, err := d.Var("items")
	if err != nil {
		t.Fatal(err)
	}
	if items.Kind != KindArray || items.Lo != 0 || items.Hi != 9 {
		t.Fatalf("items = %s", items)
	}
	rec := items.Elem
	if rec.FieldIndex("label") != 0 || rec.Fields[0].Type.MaxLen != 16 {
		t.Fatalf("label field: %s", rec)
	}
	if rec.Fields[1].Type.Kind != KindEnum || len(rec.Fields[1].Type.Consts) != 3 {
		t.Fatalf("hue field: %s", rec)
	}
	th, err := d.Var("threshold")
	if err != nil || th.Kind != KindReal {
		t.Fatalf("threshold: %v %v", th, err)
	}
}

func TestParseNegativeDomainsAndNesting(t *testing.T) {
	d, err := ParseDecls(`var grid: [-2..2] [1..3] real;`)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := d.Var("grid")
	if g.Lo != -2 || g.Hi != 2 || g.Elem.Kind != KindArray || g.Elem.Len() != 3 {
		t.Fatalf("grid = %s", g)
	}
	// Empty domain is legal (hi = lo-1).
	d, err = ParseDecls(`var empty: [1..0] int;`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := d.Var("empty")
	if e.Len() != 0 {
		t.Fatalf("empty = %s", e)
	}
}

func TestParsedTypeWorksWithValues(t *testing.T) {
	d, err := ParseDecls(fig6Source)
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := d.Var("data")
	v := NewArray(ty)
	v.At(2).(*Record).Field("b1").(*Array).At(3).(*Record).
		Field("a1").(*Array).SetAt(4, &Real{Val: 7.5})
	got := v.At(2).(*Record).Field("b1").(*Array).At(3).(*Record).
		Field("a1").(*Array).At(4).(*Real).Val
	if got != 7.5 {
		t.Fatal("parsed type round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":             `banana split;`,
		"unknown type":        `var x: quux;`,
		"forward reference":   `var x: [1..2] B; record B { f: int; }`,
		"duplicate record":    `record A { f: int; } record A { g: int; }`,
		"duplicate enum":      `enum e { a } enum e { b }`,
		"duplicate var":       `var x: int; var x: real;`,
		"empty record":        `record A { }`,
		"missing semicolon":   `var x: int`,
		"missing colon":       `var x int;`,
		"bad domain":          `var x: [5..2] int;`,
		"bad bound":           `var x: [a..2] int;`,
		"unsized string":      `var s: string;`,
		"zero string":         `var s: string(0);`,
		"unclosed record":     `record A { f: int;`,
		"enum without consts": `enum e { };`,
		"field type missing":  `record A { f: ; }`,
	}
	for name, src := range cases {
		if _, err := ParseDecls(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestParseCommentsStripped(t *testing.T) {
	d, err := ParseDecls(`
// leading comment
var x: int; /* trailing
   multi-line */ var y: real; // end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Vars) != 2 {
		t.Fatalf("vars = %v", d.Vars)
	}
	// Unterminated block comment swallows the rest harmlessly.
	d, err = ParseDecls(`var x: int; /* dangling`)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Vars) != 1 {
		t.Fatal("dangling comment")
	}
}

func TestParseRecordComposition(t *testing.T) {
	// Record-in-record without arrays between them (the chain case
	// MetaFor folds into one junction).
	d, err := ParseDecls(`
record Inner { pad: real; xs: [1..3] real; }
record Wrap  { pre: int; inner: Inner; }
var outer: [1..2] Wrap;
`)
	if err != nil {
		t.Fatal(err)
	}
	ty, _ := d.Var("outer")
	s := ty.String()
	for _, want := range []string{"record Wrap", "inner: record Inner", "xs: [1..3] real"} {
		if !strings.Contains(s, want) {
			t.Fatalf("type %q missing %q", s, want)
		}
	}
}
