package chapel

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ReduceScanOp is the paper's Fig. 2 reduction class: user-defined and
// built-in reductions subclass ReduceScanOp and provide the three stages —
// Accumulate (local reduction, one element at a time), Combine (merge
// another task's local result into this one), and Generate (produce the
// final result).
//
// Clone returns a fresh op in its identity state; the runtime creates one
// clone per parallel task, exactly as Chapel's compiler instantiates one
// ReduceScanOp per task.
type ReduceScanOp interface {
	// Clone returns a new op of the same kind in its identity state.
	Clone() ReduceScanOp
	// Accumulate folds one input element into the local state.
	Accumulate(x Value)
	// Combine folds another op's local state into this one. The argument
	// is always an op produced by Clone of the same receiver kind.
	Combine(other ReduceScanOp)
	// Generate returns the final result value.
	Generate() Value
}

// SumOp is Chapel's `+ reduce`, the paper's Fig. 2 example. It sums
// numeric elements; the result is real if any accumulated element was real,
// mirroring `_sum_type(eltType)`.
type SumOp struct {
	real bool
	iv   int64
	rv   float64
}

// NewSumOp returns a sum reduction in its identity state.
func NewSumOp() *SumOp { return &SumOp{} }

// Clone implements ReduceScanOp.
func (o *SumOp) Clone() ReduceScanOp { return &SumOp{} }

// Accumulate implements ReduceScanOp: value = value + x.
func (o *SumOp) Accumulate(x Value) {
	switch v := x.(type) {
	case *Int:
		if o.real {
			o.rv += float64(v.Val)
		} else {
			o.iv += v.Val
		}
	case *Real:
		if !o.real {
			o.real = true
			o.rv = float64(o.iv)
			o.iv = 0
		}
		o.rv += v.Val
	default:
		panic("chapel: SumOp over non-numeric " + x.Type().String())
	}
}

// Combine implements ReduceScanOp: value = value + other.value.
func (o *SumOp) Combine(other ReduceScanOp) {
	x := other.(*SumOp)
	if x.real {
		o.Accumulate(&Real{Val: x.rv})
	} else {
		o.Accumulate(&Int{Val: x.iv})
	}
}

// Generate implements ReduceScanOp.
func (o *SumOp) Generate() Value {
	if o.real {
		return &Real{Val: o.rv}
	}
	return &Int{Val: o.iv}
}

// ProdOp is Chapel's `* reduce`.
type ProdOp struct {
	real bool
	iv   int64
	rv   float64
	init bool
}

// NewProdOp returns a product reduction in its identity state.
func NewProdOp() *ProdOp { return &ProdOp{iv: 1, rv: 1} }

// Clone implements ReduceScanOp.
func (o *ProdOp) Clone() ReduceScanOp { return NewProdOp() }

// Accumulate implements ReduceScanOp.
func (o *ProdOp) Accumulate(x Value) {
	o.init = true
	switch v := x.(type) {
	case *Int:
		if o.real {
			o.rv *= float64(v.Val)
		} else {
			o.iv *= v.Val
		}
	case *Real:
		if !o.real {
			o.real = true
			o.rv = float64(o.iv)
			o.iv = 1
		}
		o.rv *= v.Val
	default:
		panic("chapel: ProdOp over non-numeric " + x.Type().String())
	}
}

// Combine implements ReduceScanOp.
func (o *ProdOp) Combine(other ReduceScanOp) {
	x := other.(*ProdOp)
	if !x.init {
		return
	}
	if x.real {
		o.Accumulate(&Real{Val: x.rv})
	} else {
		o.Accumulate(&Int{Val: x.iv})
	}
}

// Generate implements ReduceScanOp.
func (o *ProdOp) Generate() Value {
	if o.real {
		return &Real{Val: o.rv}
	}
	return &Int{Val: o.iv}
}

// MinOp is Chapel's `min reduce` over numeric elements.
type MinOp struct{ extremum }

// NewMinOp returns a min reduction in its identity state.
func NewMinOp() *MinOp {
	return &MinOp{extremum{best: math.Inf(1), better: func(a, b float64) bool { return a < b }}}
}

// Clone implements ReduceScanOp.
func (o *MinOp) Clone() ReduceScanOp { return NewMinOp() }

// MaxOp is Chapel's `max reduce` over numeric elements.
type MaxOp struct{ extremum }

// NewMaxOp returns a max reduction in its identity state.
func NewMaxOp() *MaxOp {
	return &MaxOp{extremum{best: math.Inf(-1), better: func(a, b float64) bool { return a > b }}}
}

// Clone implements ReduceScanOp.
func (o *MaxOp) Clone() ReduceScanOp { return NewMaxOp() }

// extremum is the shared state of min/max reductions. It tracks whether any
// integer element was seen so Generate can return an Int when the input was
// all-integer.
type extremum struct {
	best    float64
	sawReal bool
	init    bool
	better  func(a, b float64) bool
}

// Accumulate folds one numeric element.
func (o *extremum) Accumulate(x Value) {
	var v float64
	switch t := x.(type) {
	case *Int:
		v = float64(t.Val)
	case *Real:
		v = t.Val
		o.sawReal = true
	default:
		panic("chapel: min/max over non-numeric " + x.Type().String())
	}
	o.init = true
	if o.better(v, o.best) {
		o.best = v
	}
}

// Combine merges another extremum of the same direction.
func (o *extremum) Combine(other ReduceScanOp) {
	var x *extremum
	switch t := other.(type) {
	case *MinOp:
		x = &t.extremum
	case *MaxOp:
		x = &t.extremum
	default:
		panic("chapel: extremum.Combine with foreign op")
	}
	if !x.init {
		return
	}
	o.sawReal = o.sawReal || x.sawReal
	o.init = true
	if o.better(x.best, o.best) {
		o.best = x.best
	}
}

// Generate returns the extremum, as Int when all elements were ints.
func (o *extremum) Generate() Value {
	if !o.sawReal && o.init {
		return &Int{Val: int64(o.best)}
	}
	return &Real{Val: o.best}
}

// MinLocOp is Chapel's `minloc reduce`, producing the (value, index) pair of
// the smallest element; ties resolve to the smallest index, matching
// Chapel's semantics.
type MinLocOp struct {
	best float64
	loc  int
	init bool
}

// NewMinLocOp returns a minloc reduction in its identity state.
func NewMinLocOp() *MinLocOp { return &MinLocOp{best: math.Inf(1), loc: -1} }

// Clone implements ReduceScanOp.
func (o *MinLocOp) Clone() ReduceScanOp { return NewMinLocOp() }

// AccumulateAt folds element x at iteration index idx. MinLocOp needs the
// index alongside the value, so drivers that know positions should call
// AccumulateAt; plain Accumulate panics.
func (o *MinLocOp) AccumulateAt(x Value, idx int) {
	v := AsReal(x)
	if !o.init || v < o.best || (v == o.best && idx < o.loc) {
		o.best, o.loc, o.init = v, idx, true
	}
}

// Accumulate implements ReduceScanOp; MinLocOp requires AccumulateAt.
func (o *MinLocOp) Accumulate(x Value) {
	panic("chapel: MinLocOp needs AccumulateAt (value with index)")
}

// Combine implements ReduceScanOp.
func (o *MinLocOp) Combine(other ReduceScanOp) {
	x := other.(*MinLocOp)
	if !x.init {
		return
	}
	if !o.init || x.best < o.best || (x.best == o.best && x.loc < o.loc) {
		o.best, o.loc, o.init = x.best, x.loc, true
	}
}

// Generate implements ReduceScanOp: a record {value: real, idx: int}.
func (o *MinLocOp) Generate() Value {
	ty := RecordType("minloc", Field{Name: "value", Type: RealType()}, Field{Name: "idx", Type: IntType()})
	r := NewRecord(ty)
	r.SetField("value", &Real{Val: o.best})
	r.SetField("idx", &Int{Val: int64(o.loc)})
	return r
}

// MaxLocOp is Chapel's `maxloc reduce`, producing the (value, index) pair
// of the largest element; ties resolve to the smallest index.
type MaxLocOp struct {
	best float64
	loc  int
	init bool
}

// NewMaxLocOp returns a maxloc reduction in its identity state.
func NewMaxLocOp() *MaxLocOp { return &MaxLocOp{best: math.Inf(-1), loc: -1} }

// Clone implements ReduceScanOp.
func (o *MaxLocOp) Clone() ReduceScanOp { return NewMaxLocOp() }

// AccumulateAt folds element x at iteration index idx.
func (o *MaxLocOp) AccumulateAt(x Value, idx int) {
	v := AsReal(x)
	if !o.init || v > o.best || (v == o.best && idx < o.loc) {
		o.best, o.loc, o.init = v, idx, true
	}
}

// Accumulate implements ReduceScanOp; MaxLocOp requires AccumulateAt.
func (o *MaxLocOp) Accumulate(x Value) {
	panic("chapel: MaxLocOp needs AccumulateAt (value with index)")
}

// Combine implements ReduceScanOp.
func (o *MaxLocOp) Combine(other ReduceScanOp) {
	x := other.(*MaxLocOp)
	if !x.init {
		return
	}
	if !o.init || x.best > o.best || (x.best == o.best && x.loc < o.loc) {
		o.best, o.loc, o.init = x.best, x.loc, true
	}
}

// Generate implements ReduceScanOp: a record {value: real, idx: int}.
func (o *MaxLocOp) Generate() Value {
	ty := RecordType("maxloc", Field{Name: "value", Type: RealType()}, Field{Name: "idx", Type: IntType()})
	r := NewRecord(ty)
	r.SetField("value", &Real{Val: o.best})
	r.SetField("idx", &Int{Val: int64(o.loc)})
	return r
}

// LogicalAndOp is Chapel's `&& reduce`.
type LogicalAndOp struct{ v bool }

// NewLogicalAndOp returns the reduction in its identity state (true).
func NewLogicalAndOp() *LogicalAndOp { return &LogicalAndOp{v: true} }

// Clone implements ReduceScanOp.
func (o *LogicalAndOp) Clone() ReduceScanOp { return NewLogicalAndOp() }

// Accumulate implements ReduceScanOp.
func (o *LogicalAndOp) Accumulate(x Value) { o.v = o.v && x.(*Bool).Val }

// Combine implements ReduceScanOp.
func (o *LogicalAndOp) Combine(other ReduceScanOp) { o.v = o.v && other.(*LogicalAndOp).v }

// Generate implements ReduceScanOp.
func (o *LogicalAndOp) Generate() Value { return &Bool{Val: o.v} }

// LogicalOrOp is Chapel's `|| reduce`.
type LogicalOrOp struct{ v bool }

// NewLogicalOrOp returns the reduction in its identity state (false).
func NewLogicalOrOp() *LogicalOrOp { return &LogicalOrOp{} }

// Clone implements ReduceScanOp.
func (o *LogicalOrOp) Clone() ReduceScanOp { return NewLogicalOrOp() }

// Accumulate implements ReduceScanOp.
func (o *LogicalOrOp) Accumulate(x Value) { o.v = o.v || x.(*Bool).Val }

// Combine implements ReduceScanOp.
func (o *LogicalOrOp) Combine(other ReduceScanOp) { o.v = o.v || other.(*LogicalOrOp).v }

// Generate implements ReduceScanOp.
func (o *LogicalOrOp) Generate() Value { return &Bool{Val: o.v} }

// BitOp is the family of Chapel's `&`, `|`, `^` integer reductions.
type BitOp struct {
	kind rune // '&', '|', '^'
	v    int64
}

// NewBitAndOp returns `& reduce` in its identity state (all ones).
func NewBitAndOp() *BitOp { return &BitOp{kind: '&', v: -1} }

// NewBitOrOp returns `| reduce` in its identity state (zero).
func NewBitOrOp() *BitOp { return &BitOp{kind: '|'} }

// NewBitXorOp returns `^ reduce` in its identity state (zero).
func NewBitXorOp() *BitOp { return &BitOp{kind: '^'} }

// Clone implements ReduceScanOp.
func (o *BitOp) Clone() ReduceScanOp {
	switch o.kind {
	case '&':
		return NewBitAndOp()
	case '|':
		return NewBitOrOp()
	default:
		return NewBitXorOp()
	}
}

// Accumulate implements ReduceScanOp.
func (o *BitOp) Accumulate(x Value) { o.apply(AsInt(x)) }

// Combine implements ReduceScanOp.
func (o *BitOp) Combine(other ReduceScanOp) { o.apply(other.(*BitOp).v) }

func (o *BitOp) apply(v int64) {
	switch o.kind {
	case '&':
		o.v &= v
	case '|':
		o.v |= v
	default:
		o.v ^= v
	}
}

// Generate implements ReduceScanOp.
func (o *BitOp) Generate() Value { return &Int{Val: o.v} }

// indexedAccumulator is implemented by ops (like MinLocOp) that need the
// iteration index alongside the value.
type indexedAccumulator interface {
	AccumulateAt(x Value, idx int)
}

// Reduce evaluates `op reduce expr` with the global-view abstraction: the
// input is split among tasks, each task accumulates its split into a clone
// of op, clones are combined in task order, and Generate produces the
// result. tasks < 1 selects GOMAXPROCS. The combine order is deterministic
// for a fixed task count.
func Reduce(op ReduceScanOp, expr Expr, tasks int) Value {
	if tasks < 1 {
		tasks = runtime.GOMAXPROCS(0)
	}
	n := expr.Len()
	if tasks > n {
		tasks = n
	}
	if tasks <= 1 {
		local := op.Clone()
		accumulateRange(local, expr, 0, n)
		op.Combine(local)
		return op.Generate()
	}
	locals := make([]ReduceScanOp, tasks)
	var wg sync.WaitGroup
	base, extra := n/tasks, n%tasks
	begin := 0
	for t := 0; t < tasks; t++ {
		size := base
		if t < extra {
			size++
		}
		lo, hi := begin, begin+size
		begin = hi
		locals[t] = op.Clone()
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			accumulateRange(locals[t], expr, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
	for _, l := range locals {
		op.Combine(l)
	}
	return op.Generate()
}

func accumulateRange(op ReduceScanOp, expr Expr, lo, hi int) {
	if ia, ok := op.(indexedAccumulator); ok {
		for i := lo; i < hi; i++ {
			ia.AccumulateAt(expr.Index(i), i)
		}
		return
	}
	for i := lo; i < hi; i++ {
		op.Accumulate(expr.Index(i))
	}
}

// Scan evaluates `op scan expr`, returning the length-n inclusive prefix
// reduction. It uses the standard two-pass parallel algorithm: per-block
// local reduction, exclusive combine across block summaries, then a second
// accumulation pass seeded with each block's prefix. tasks < 1 selects
// GOMAXPROCS. Scan requires ops whose Accumulate works without indices.
func Scan(op ReduceScanOp, expr Expr, tasks int) []Value {
	n := expr.Len()
	out := make([]Value, n)
	if n == 0 {
		return out
	}
	if tasks < 1 {
		tasks = runtime.GOMAXPROCS(0)
	}
	if tasks > n {
		tasks = n
	}
	// Block boundaries.
	bounds := make([][2]int, tasks)
	base, extra := n/tasks, n%tasks
	begin := 0
	for t := 0; t < tasks; t++ {
		size := base
		if t < extra {
			size++
		}
		bounds[t] = [2]int{begin, begin + size}
		begin += size
	}
	// Pass 1: local reductions per block.
	sums := make([]ReduceScanOp, tasks)
	var wg sync.WaitGroup
	for t := 0; t < tasks; t++ {
		sums[t] = op.Clone()
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			accumulateRange(sums[t], expr, bounds[t][0], bounds[t][1])
		}(t)
	}
	wg.Wait()
	// Exclusive prefix over block summaries (sequential; tasks is small).
	prefixes := make([]ReduceScanOp, tasks)
	running := op.Clone()
	for t := 0; t < tasks; t++ {
		p := op.Clone()
		p.Combine(running)
		prefixes[t] = p
		running.Combine(sums[t])
	}
	// Pass 2: rescan each block seeded with its prefix.
	for t := 0; t < tasks; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			acc := prefixes[t]
			for i := bounds[t][0]; i < bounds[t][1]; i++ {
				acc.Accumulate(expr.Index(i))
				out[i] = acc.Generate()
			}
		}(t)
	}
	wg.Wait()
	return out
}

// ReduceSeq is the sequential reference evaluation of `op reduce expr`,
// used by tests to pin down semantics.
func ReduceSeq(op ReduceScanOp, expr Expr) Value {
	accumulateRange(op, expr, 0, expr.Len())
	return op.Generate()
}

// mustNumeric panics unless the expression yields numeric elements; shared
// by drivers that need early type errors rather than mid-reduction panics.
func mustNumeric(e Expr) {
	k := e.ElemType().Kind
	if k != KindInt && k != KindReal {
		panic(fmt.Sprintf("chapel: numeric reduction over %s", e.ElemType()))
	}
}

// SumReduce is the convenience form of `+ reduce expr`.
func SumReduce(expr Expr, tasks int) Value {
	mustNumeric(expr)
	return Reduce(NewSumOp(), expr, tasks)
}

// MinReduce is the convenience form of `min reduce expr`.
func MinReduce(expr Expr, tasks int) Value {
	mustNumeric(expr)
	return Reduce(NewMinOp(), expr, tasks)
}

// MaxReduce is the convenience form of `max reduce expr`.
func MaxReduce(expr Expr, tasks int) Value {
	mustNumeric(expr)
	return Reduce(NewMaxOp(), expr, tasks)
}
