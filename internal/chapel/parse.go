package chapel

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseDecls parses a small subset of Chapel's declaration syntax — enough
// to write the paper's data structures exactly as its figures do:
//
//	record A { a1: [1..5] real; a2: int; }
//	record B { b1: [1..4] A;   b2: int; }
//	var data: [1..3] B;
//
// Supported: record declarations with typed fields; `var name: type;`
// declarations; the primitive types int, real, bool, string(N), and
// `enum name { a, b, c }`; array types `[lo..hi] elt` with integer literal
// bounds (negative allowed); references to previously declared records and
// enums. Line comments (//) and block comments (/* */) are stripped.
//
// This is the front-end fragment of the Chapel compiler this reproduction
// substitutes: parsed types feed MetaFor/Linearize directly, so the
// translator can start from Chapel source text.
func ParseDecls(src string) (*Decls, error) {
	p := &parser{toks: lex(src)}
	d := &Decls{
		Records: map[string]*Type{},
		Enums:   map[string]*Type{},
		Vars:    map[string]*Type{},
	}
	for !p.eof() {
		switch {
		case p.accept("record"):
			if err := p.parseRecord(d); err != nil {
				return nil, err
			}
		case p.accept("enum"):
			if err := p.parseEnum(d); err != nil {
				return nil, err
			}
		case p.accept("var"), p.accept("const"):
			if err := p.parseVar(d); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("chapel: parse: unexpected %q (want record, enum, var, or const)", p.peek())
		}
	}
	return d, nil
}

// Decls is the result of ParseDecls: the declared types and variables.
type Decls struct {
	// Records maps record name → type.
	Records map[string]*Type
	// Enums maps enum name → type.
	Enums map[string]*Type
	// Vars maps variable name → declared type.
	Vars map[string]*Type
	// VarOrder lists variable names in declaration order.
	VarOrder []string
}

// Var returns the named variable's type or an error.
func (d *Decls) Var(name string) (*Type, error) {
	ty, ok := d.Vars[name]
	if !ok {
		return nil, fmt.Errorf("chapel: no declared variable %q", name)
	}
	return ty, nil
}

// lexing -------------------------------------------------------------------

// lex splits the source into tokens: identifiers/keywords, integer
// literals (with optional leading -), and single-character punctuation.
// ".." is one token.
func lex(src string) []string {
	src = stripComments(src)
	var toks []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '.' && i+1 < len(src) && src[i+1] == '.':
			toks = append(toks, "..")
			i += 2
		case strings.ContainsRune("{}[]():;,", c):
			toks = append(toks, string(c))
			i++
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	return toks
}

// stripComments removes // line comments and /* */ block comments.
func stripComments(src string) string {
	var b strings.Builder
	i := 0
	for i < len(src) {
		if strings.HasPrefix(src[i:], "//") {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}
		if strings.HasPrefix(src[i:], "/*") {
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				i = len(src)
				continue
			}
			i += 2 + end + 2
			b.WriteByte(' ')
			continue
		}
		b.WriteByte(src[i])
		i++
	}
	return b.String()
}

// parsing ------------------------------------------------------------------

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(tok string) bool {
	if !p.eof() && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.accept(tok) {
		return fmt.Errorf("chapel: parse: expected %q, got %q", tok, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if p.eof() || !isIdent(t) {
		return "", fmt.Errorf("chapel: parse: expected identifier, got %q", t)
	}
	p.pos++
	return t, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := rune(s[0])
	return unicode.IsLetter(c) || c == '_'
}

func (p *parser) int() (int, error) {
	n, err := strconv.Atoi(p.peek())
	if err != nil {
		return 0, fmt.Errorf("chapel: parse: expected integer, got %q", p.peek())
	}
	p.pos++
	return n, nil
}

// parseRecord handles `record Name { field: type; ... }` after `record`.
func (p *parser) parseRecord(d *Decls) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := d.Records[name]; dup {
		return fmt.Errorf("chapel: parse: duplicate record %q", name)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	var fields []Field
	for !p.accept("}") {
		fname, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		fty, err := p.parseType(d)
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		fields = append(fields, Field{Name: fname, Type: fty})
	}
	if len(fields) == 0 {
		return fmt.Errorf("chapel: parse: record %q has no fields", name)
	}
	d.Records[name] = RecordType(name, fields...)
	return nil
}

// parseEnum handles `enum Name { a, b, c };` after `enum`. The trailing
// semicolon is optional, matching Chapel.
func (p *parser) parseEnum(d *Decls) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := d.Enums[name]; dup {
		return fmt.Errorf("chapel: parse: duplicate enum %q", name)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	var consts []string
	for {
		c, err := p.ident()
		if err != nil {
			return err
		}
		consts = append(consts, c)
		if p.accept(",") {
			continue
		}
		if err := p.expect("}"); err != nil {
			return err
		}
		break
	}
	p.accept(";")
	d.Enums[name] = EnumType(name, consts...)
	return nil
}

// parseVar handles `name: type;` after `var`/`const`.
func (p *parser) parseVar(d *Decls) error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, dup := d.Vars[name]; dup {
		return fmt.Errorf("chapel: parse: duplicate variable %q", name)
	}
	if err := p.expect(":"); err != nil {
		return err
	}
	ty, err := p.parseType(d)
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	d.Vars[name] = ty
	d.VarOrder = append(d.VarOrder, name)
	return nil
}

// parseType handles `[lo..hi] elt`, primitives, string(N), and references
// to declared records and enums.
func (p *parser) parseType(d *Decls) (*Type, error) {
	if p.accept("[") {
		lo, err := p.int()
		if err != nil {
			return nil, err
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		hi, err := p.int()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if hi < lo-1 {
			return nil, fmt.Errorf("chapel: parse: invalid array domain [%d..%d]", lo, hi)
		}
		elem, err := p.parseType(d)
		if err != nil {
			return nil, err
		}
		return ArrayType(elem, lo, hi), nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch name {
	case "int":
		return IntType(), nil
	case "real":
		return RealType(), nil
	case "bool":
		return BoolType(), nil
	case "string":
		if err := p.expect("("); err != nil {
			return nil, fmt.Errorf("chapel: parse: string needs a fixed width, e.g. string(16): %w", err)
		}
		n, err := p.int()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("chapel: parse: string width must be >= 1, got %d", n)
		}
		return StringType(n), nil
	default:
		if ty, ok := d.Records[name]; ok {
			return ty, nil
		}
		if ty, ok := d.Enums[name]; ok {
			return ty, nil
		}
		return nil, fmt.Errorf("chapel: parse: unknown type %q (records and enums must be declared first)", name)
	}
}
