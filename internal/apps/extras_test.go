package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

func histCfg(bins int) HistogramConfig {
	return HistogramConfig{Bins: bins, Lo: 0, Hi: 10, Engine: freeride.Config{Threads: 4, SplitRows: 32}}
}

func TestHistogramAllVersionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := dataset.NewMatrix(1000, 1)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 10
	}
	ref, err := HistogramSeq(m, histCfg(16))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, c := range ref.Counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("reference counts sum to %v", total)
	}
	for _, v := range []Version{ChapelNative, Generated, Opt1, Opt2, ManualFR, MapReduce} {
		got, err := Histogram(v, m, histCfg(16))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for b := range ref.Counts {
			if got.Counts[b] != ref.Counts[b] {
				t.Fatalf("%v: bin %d = %v, want %v", v, b, got.Counts[b], ref.Counts[b])
			}
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	m := dataset.NewMatrix(4, 1)
	copy(m.Data, []float64{-5, 0, 9.999, 50})
	res, err := HistogramSeq(m, histCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 2 || res.Counts[9] != 2 {
		t.Fatalf("counts = %v", res.Counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	m := dataset.NewMatrix(4, 1)
	if _, err := HistogramSeq(m, HistogramConfig{Bins: 0, Lo: 0, Hi: 1}); err == nil {
		t.Fatal("Bins=0: want error")
	}
	if _, err := HistogramSeq(m, HistogramConfig{Bins: 4, Lo: 1, Hi: 1}); err == nil {
		t.Fatal("Hi==Lo: want error")
	}
}

// trainSet builds clustered training data with the label in the last
// column: points near (0,0) labelled 0, near (10,10) labelled 1.
func trainSet(n int, seed int64) *dataset.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dataset.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		label := i % 2
		base := float64(label) * 10
		m.Set(i, 0, base+rng.NormFloat64())
		m.Set(i, 1, base+rng.NormFloat64())
		m.Set(i, 2, float64(label))
	}
	return m
}

func TestKNNSeqAndFRAgree(t *testing.T) {
	train := trainSet(400, 2)
	queries := dataset.NewMatrix(4, 2)
	copy(queries.Data, []float64{0, 0, 10, 10, 1, 1, 9, 9})
	cfg := KNNConfig{K: 7, Engine: freeride.Config{Threads: 4, SplitRows: 32}}
	seq, err := KNNSeq(train, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if seq.Labels[i] != want[i] {
			t.Fatalf("seq labels = %v", seq.Labels)
		}
	}
	fr, err := KNNManualFR(train, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Labels {
		if fr.Labels[i] != seq.Labels[i] {
			t.Fatalf("FR labels %v != seq %v", fr.Labels, seq.Labels)
		}
	}
}

func TestKNNTieBreaking(t *testing.T) {
	// Two training points equidistant from the query with different
	// labels; K=1 must pick the lower row index deterministically.
	train := dataset.NewMatrix(2, 2)
	copy(train.Data, []float64{1, 7, -1, 3}) // x=1 label 7, x=-1 label 3
	queries := dataset.NewMatrix(1, 1)
	cfg := KNNConfig{K: 1, Engine: freeride.Config{Threads: 2}}
	for _, threads := range []int{1, 2, 4} {
		cfg.Engine.Threads = threads
		res, err := KNNManualFR(train, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Labels[0] != 7 {
			t.Fatalf("threads=%d: tie broke to %d, want 7 (row 0)", threads, res.Labels[0])
		}
	}
}

func TestKNNValidation(t *testing.T) {
	train := trainSet(10, 1)
	queries := dataset.NewMatrix(1, 2)
	if _, err := KNNSeq(train, queries, KNNConfig{K: 0}); err == nil {
		t.Fatal("K=0: want error")
	}
	if _, err := KNNSeq(dataset.NewMatrix(0, 3), queries, KNNConfig{K: 1}); err == nil {
		t.Fatal("empty train: want error")
	}
	badQ := dataset.NewMatrix(1, 3)
	if _, err := KNNSeq(train, badQ, KNNConfig{K: 1}); err == nil {
		t.Fatal("dim mismatch: want error")
	}
	if _, err := KNN(MapReduce, train, queries, KNNConfig{K: 1}); err == nil {
		t.Fatal("unsupported version: want error")
	}
}

// Property: k-NN under FREERIDE matches sequential for random data,
// arbitrary K and thread counts (deterministic tie-breaking makes this
// exact).
func TestPropertyKNNMatchesSeq(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, thrRaw uint8) bool {
		n := int(nRaw%100) + 5
		k := int(kRaw)%n + 1
		threads := int(thrRaw%4) + 1
		train := trainSet(n, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		queries := dataset.NewMatrix(3, 2)
		for i := range queries.Data {
			queries.Data[i] = rng.Float64() * 10
		}
		cfg := KNNConfig{K: k, Engine: freeride.Config{Threads: threads, SplitRows: 8}}
		seq, err := KNNSeq(train, queries, cfg)
		if err != nil {
			return false
		}
		fr, err := KNNManualFR(train, queries, cfg)
		if err != nil {
			return false
		}
		for i := range seq.Labels {
			if seq.Labels[i] != fr.Labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionRecoversLine(t *testing.T) {
	// y = 3x - 2, exactly.
	m := dataset.NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		x := float64(i)
		m.Set(i, 0, x)
		m.Set(i, 1, 3*x-2)
	}
	for name, run := range map[string]func() (*RegressionResult, error){
		"seq": func() (*RegressionResult, error) { return RegressionSeq(m) },
		"fr": func() (*RegressionResult, error) {
			return RegressionManualFR(m, freeride.Config{Threads: 4, SplitRows: 16})
		},
		"chapel": func() (*RegressionResult, error) { return RegressionChapelNative(m, 4) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Slope-3) > 1e-9 || math.Abs(res.Intercept+2) > 1e-9 {
			t.Fatalf("%s: y = %vx + %v", name, res.Slope, res.Intercept)
		}
		if res.N != 100 {
			t.Fatalf("%s: N = %d", name, res.N)
		}
	}
}

func TestRegressionValidation(t *testing.T) {
	if _, err := RegressionSeq(dataset.NewMatrix(5, 3)); err == nil {
		t.Fatal("3 columns: want error")
	}
	if _, err := RegressionSeq(dataset.NewMatrix(1, 2)); err == nil {
		t.Fatal("1 row: want error")
	}
	// Degenerate: all x equal.
	m := dataset.NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		m.Set(i, 0, 5)
		m.Set(i, 1, float64(i))
	}
	if _, err := RegressionSeq(m); err == nil {
		t.Fatal("degenerate x: want error")
	}
	if _, err := RegressionManualFR(m, freeride.Config{Threads: 2}); err == nil {
		t.Fatal("degenerate x via FR: want error")
	}
}
