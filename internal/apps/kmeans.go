package apps

import (
	"context"
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/mapreduce"
	"chapelfreeride/internal/robj"
)

// KMeansConfig parameterizes a k-means run: k centroids, i iterations —
// the two "key factors that impact the computations" (§V-A).
type KMeansConfig struct {
	// K is the number of clusters.
	K int
	// Iterations is the number of scan-and-update passes.
	Iterations int
	// Engine configures the FREERIDE engine (threads, strategy, ...).
	Engine freeride.Config
	// Tasks is the task count for the ChapelNative version (defaults to
	// Engine.Threads).
	Tasks int
	// LinearizeWorkers > 1 enables the parallel-linearization extension
	// for the translated versions.
	LinearizeWorkers int
	// UseCombiner enables the Map-Reduce combiner for the MapReduce
	// version.
	UseCombiner bool
}

func (c KMeansConfig) validate() error {
	if c.K < 1 {
		return fmt.Errorf("apps: k-means needs K >= 1, got %d", c.K)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("apps: k-means needs Iterations >= 1, got %d", c.Iterations)
	}
	return nil
}

// KMeansResult is the output of one k-means run.
type KMeansResult struct {
	// Centroids is the final K×dim centroid matrix.
	Centroids *dataset.Matrix
	// Counts is the number of points assigned to each cluster in the last
	// iteration.
	Counts []float64
	// Timing is the phase breakdown.
	Timing Timing
}

// nearest returns the index of the centroid closest to point (squared
// Euclidean distance; ties resolve to the lowest index). cents is flat
// k×dim. Every version funnels its distance logic through the same
// tie-breaking rule so results are comparable bit for bit.
func nearest(point []float64, cents []float64, k, dim int) int {
	best, bestDist := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		var d float64
		cc := cents[c*dim : (c+1)*dim]
		for j := 0; j < dim; j++ {
			diff := point[j] - cc[j]
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// updateCentroids derives the next centroid matrix from per-cluster
// coordinate sums and counts (robj layout: k groups × dim+1 elems, the last
// element the count). Empty clusters keep their previous centroid, and the
// per-cluster counts are returned.
func updateCentroids(snapshot []float64, prev *dataset.Matrix, k, dim int) (*dataset.Matrix, []float64) {
	next := dataset.NewMatrix(k, dim)
	counts := make([]float64, k)
	for c := 0; c < k; c++ {
		cells := snapshot[c*(dim+1) : (c+1)*(dim+1)]
		counts[c] = cells[dim]
		if counts[c] == 0 {
			copy(next.Row(c), prev.Row(c))
			continue
		}
		for j := 0; j < dim; j++ {
			next.Set(c, j, cells[j]/counts[c])
		}
	}
	return next, counts
}

// KMeansSeq is the sequential reference implementation.
func KMeansSeq(points, init *dataset.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, points.Cols
	cents := init.Clone()
	var counts []float64
	var timing Timing
	for it := 0; it < cfg.Iterations; it++ {
		t0 := time.Now()
		sums := make([]float64, k*(dim+1))
		for i := 0; i < points.Rows; i++ {
			row := points.Row(i)
			c := nearest(row, cents.Data, k, dim)
			for j := 0; j < dim; j++ {
				sums[c*(dim+1)+j] += row[j]
			}
			sums[c*(dim+1)+dim]++
		}
		timing.Reduce += time.Since(t0)
		t0 = time.Now()
		cents, counts = updateCentroids(sums, cents, k, dim)
		timing.Update += time.Since(t0)
	}
	return &KMeansResult{Centroids: cents, Counts: counts, Timing: timing}, nil
}

// kmeansOp is the paper's Fig. 3 reduction class on the pure Chapel
// runtime: RO holds per-cluster sums and counts, accumulate assigns one
// point to its nearest centroid, combine merges two partial objects.
type kmeansOp struct {
	k, dim    int
	centroids *chapel.Array // boxed [1..k] Point — read-only during a pass
	ro        []float64     // k × (dim+1)
}

func newKMeansOp(k, dim int, centroids *chapel.Array) *kmeansOp {
	return &kmeansOp{k: k, dim: dim, centroids: centroids, ro: make([]float64, k*(dim+1))}
}

// Clone implements chapel.ReduceScanOp.
func (o *kmeansOp) Clone() chapel.ReduceScanOp { return newKMeansOp(o.k, o.dim, o.centroids) }

// Accumulate implements chapel.ReduceScanOp over one boxed Point.
func (o *kmeansOp) Accumulate(x chapel.Value) {
	coords := x.(*chapel.Record).Field("coords").(*chapel.Array)
	best, bestDist := 0, math.Inf(1)
	for c := 1; c <= o.k; c++ {
		cc := o.centroids.At(c).(*chapel.Record).Field("coords").(*chapel.Array)
		var d float64
		for j := 1; j <= o.dim; j++ {
			diff := coords.At(j).(*chapel.Real).Val - cc.At(j).(*chapel.Real).Val
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = c-1, d
		}
	}
	for j := 1; j <= o.dim; j++ {
		o.ro[best*(o.dim+1)+j-1] += coords.At(j).(*chapel.Real).Val
	}
	o.ro[best*(o.dim+1)+o.dim]++
}

// Combine implements chapel.ReduceScanOp.
func (o *kmeansOp) Combine(other chapel.ReduceScanOp) {
	x := other.(*kmeansOp)
	for i := range o.ro {
		o.ro[i] += x.ro[i]
	}
}

// Generate implements chapel.ReduceScanOp, returning the reduction object
// as a boxed [1..k*(dim+1)] real array.
func (o *kmeansOp) Generate() chapel.Value { return chapel.RealArray(o.ro...) }

// KMeansChapelNative runs k-means entirely on the Chapel runtime analog —
// boxed data, boxed centroids, global-view Reduce — demonstrating that
// Chapel's reduction support expresses the algorithm (the paper's question
// I) without any FREERIDE involvement.
func KMeansChapelNative(boxedPoints *chapel.Array, init *dataset.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, init.Cols
	tasks := cfg.Tasks
	if tasks < 1 {
		tasks = cfg.Engine.Threads
	}
	cents := init.Clone()
	boxedCents := BoxPoints(cents)
	var counts []float64
	var timing Timing
	expr := chapel.Over(boxedPoints)
	for it := 0; it < cfg.Iterations; it++ {
		t0 := time.Now()
		out := chapel.Reduce(newKMeansOp(k, dim, boxedCents), expr, tasks).(*chapel.Array)
		timing.Reduce += time.Since(t0)
		t0 = time.Now()
		sums := make([]float64, k*(dim+1))
		for i := range sums {
			sums[i] = out.At(i + 1).(*chapel.Real).Val
		}
		cents, counts = updateCentroids(sums, cents, k, dim)
		boxedCents = BoxPoints(cents)
		timing.Update += time.Since(t0)
	}
	return &KMeansResult{Centroids: cents, Counts: counts, Timing: timing}, nil
}

// KMeansClass builds the translator input for k-means — the declarative
// form of Fig. 3's reduction class, shared by the three translated
// versions. centroids is the boxed hot variable the kernel reads for every
// point (the structure opt-2 linearizes).
func KMeansClass(k, dim int, centroids *chapel.Array) *core.ReductionClass {
	return &core.ReductionClass{
		Name:   "kmeans",
		Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
		Path:   []string{"coords"},
		HotVars: []core.HotVar{
			{Value: centroids, Path: []string{"coords"}},
		},
		Kernel: func(elem *core.Vec, hot []*core.StateVec, args *freeride.ReductionArgs) {
			cents := hot[0]
			pt := elem.Row(args.Scratch(0, dim))
			best, bestDist := 0, math.Inf(1)
			for c := 1; c <= k; c++ {
				cc := cents.Row(c, args.Scratch(1, dim))
				var d float64
				for j := 0; j < dim; j++ {
					diff := pt[j] - cc[j]
					d += diff * diff
				}
				if d < bestDist {
					best, bestDist = c-1, d
				}
			}
			for j := 0; j < dim; j++ {
				args.Accumulate(best, j, pt[j])
			}
			args.Accumulate(best, dim, 1)
		},
		// The opt-3 fused body: one call per split, walking the linearized
		// words and the dense centroid block directly — no Vec branch, no
		// interface dispatch, no lock per point. Same distance logic and
		// tie-breaking as every other version (bit-identical on integer
		// data), with accumulation into the worker-local buffer.
		BlockKernel: func(args *freeride.BlockArgs, view core.BlockView, hot []*core.StateVec) error {
			cents, ok := hot[0].Dense()
			if !ok {
				// Non-dense hot layout: materialize a flat k×dim copy once
				// per split (never hit for kmeans' contiguous centroids).
				buf := args.Scratch(2, k*dim)
				for c := 1; c <= k; c++ {
					copy(buf[(c-1)*dim:(c-1)*dim+dim], hot[0].Row(c, args.Scratch(1, dim)))
				}
				cents = buf
			}
			acc := args.Acc()
			base := view.RowStride*args.Begin + view.RunOff
			for i := 0; i < args.NumRows; i++ {
				pt := view.Words[base : base+dim]
				best, bestDist := 0, math.Inf(1)
				for c := 0; c < k; c++ {
					cc := cents[c*dim : c*dim+dim]
					var d float64
					for j := 0; j < dim; j++ {
						diff := pt[j] - cc[j]
						d += diff * diff
					}
					if d < bestDist {
						best, bestDist = c, d
					}
				}
				out := acc[best*(dim+1) : best*(dim+1)+dim+1]
				for j := 0; j < dim; j++ {
					out[j] += pt[j]
				}
				out[dim]++
				base += view.RowStride
			}
			return nil
		},
	}
}

// KMeansTranslated runs k-means through the Chapel→FREERIDE translation at
// the given optimization level. boxedPoints is the Chapel-side dataset
// (BoxPoints); its linearization cost is reported in Timing.Linearize.
func KMeansTranslated(boxedPoints *chapel.Array, init *dataset.Matrix, opt core.OptLevel, cfg KMeansConfig) (*KMeansResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, init.Cols
	cents := init.Clone()
	boxedCents := BoxPoints(cents)

	tr, err := core.TranslateWith(KMeansClass(k, dim, boxedCents), boxedPoints, opt,
		core.TranslateOptions{LinearizeWorkers: cfg.LinearizeWorkers})
	if err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	src := tr.Source()

	var counts []float64
	var timing Timing
	timing.Threads = eng.Config().Threads
	timing.Linearize = tr.LinearizeTime
	err = runSessionLoop(context.Background(), eng, src, &timing, loopSpec{
		Iterations: cfg.Iterations,
		Spec:       func(int) freeride.Spec { return tr.Spec() },
		Fold: func(_ int, obj *robj.Object) error {
			cents, counts = updateCentroids(obj.Snapshot(), cents, k, dim)
			// Write the new centroids back into the boxed hot variable so
			// Post can re-linearize it for opt-2.
			for c := 0; c < k; c++ {
				coords := boxedCents.At(c + 1).(*chapel.Record).Field("coords").(*chapel.Array)
				for j := 0; j < dim; j++ {
					coords.SetAt(j+1, &chapel.Real{Val: cents.At(c, j)})
				}
			}
			return nil
		},
		Post: func(int) error {
			hotBefore := tr.HotLinearizeTime
			tr.RefreshHotVars()
			timing.HotVar += tr.HotLinearizeTime - hotBefore
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &KMeansResult{Centroids: cents, Counts: counts, Timing: timing}, nil
}

// KMeansManualFR is the paper's "manual FR" version: k-means written by
// hand against the FREERIDE API, with flat float data throughout — no
// Chapel structures and no translation layer.
func KMeansManualFR(points, init *dataset.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, points.Cols
	cents := init.Clone()
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	src := dataset.NewMemorySource(points)

	var counts []float64
	var timing Timing
	timing.Threads = eng.Config().Threads
	err := runSessionLoop(context.Background(), eng, src, &timing, loopSpec{
		Iterations: cfg.Iterations,
		Spec: func(int) freeride.Spec {
			flat := cents.Data
			return freeride.Spec{
				Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
				Reduction: func(args *freeride.ReductionArgs) error {
					for i := 0; i < args.NumRows; i++ {
						row := args.Row(i)
						c := nearest(row, flat, k, dim)
						for j := 0; j < dim; j++ {
							args.Accumulate(c, j, row[j])
						}
						args.Accumulate(c, dim, 1)
					}
					return nil
				},
			}
		},
		Fold: func(_ int, obj *robj.Object) error {
			cents, counts = updateCentroids(obj.Snapshot(), cents, k, dim)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &KMeansResult{Centroids: cents, Counts: counts, Timing: timing}, nil
}

// KMeansMapReduce is the Map-Reduce baseline (Fig. 4, right): map emits one
// (cluster, partial-vector) pair per point, pairs are sorted and grouped,
// and reduce folds each cluster's vectors. With cfg.UseCombiner the
// per-worker combiner pre-folds pairs, shrinking the intermediate state the
// FREERIDE design avoids entirely.
func KMeansMapReduce(points, init *dataset.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, points.Cols
	cents := init.Clone()
	eng := mapreduce.New[int, []float64](mapreduce.Config{
		Workers:   cfg.Engine.Threads,
		SplitRows: cfg.Engine.SplitRows,
	})
	sumVecs := func(_ int, vals [][]float64) []float64 {
		out := make([]float64, dim+1)
		for _, v := range vals {
			for j := range out {
				out[j] += v[j]
			}
		}
		return out
	}
	var counts []float64
	var timing Timing
	for it := 0; it < cfg.Iterations; it++ {
		flat := cents.Data
		spec := mapreduce.Spec[int, []float64]{
			Map: func(a *mapreduce.MapArgs, emit func(int, []float64)) error {
				for i := 0; i < a.NumRows; i++ {
					row := a.Row(i)
					c := nearest(row, flat, k, dim)
					v := make([]float64, dim+1)
					copy(v, row)
					v[dim] = 1
					emit(c, v)
				}
				return nil
			},
			Reduce: sumVecs,
		}
		if cfg.UseCombiner {
			spec.Combine = sumVecs
		}
		t0 := time.Now()
		out, _, err := eng.Run(spec, dataset.NewMemorySource(points))
		if err != nil {
			return nil, err
		}
		timing.Reduce += time.Since(t0)
		t0 = time.Now()
		sums := make([]float64, k*(dim+1))
		for c, v := range out {
			copy(sums[c*(dim+1):(c+1)*(dim+1)], v)
		}
		cents, counts = updateCentroids(sums, cents, k, dim)
		timing.Update += time.Since(t0)
	}
	return &KMeansResult{Centroids: cents, Counts: counts, Timing: timing}, nil
}

// KMeans dispatches to the named version. For the translated and
// Chapel-native versions the boxed dataset is built on demand from points.
func KMeans(v Version, points, init *dataset.Matrix, cfg KMeansConfig) (*KMeansResult, error) {
	switch v {
	case Seq:
		return KMeansSeq(points, init, cfg)
	case ChapelNative:
		return KMeansChapelNative(BoxPoints(points), init, cfg)
	case Generated:
		return KMeansTranslated(BoxPoints(points), init, core.OptNone, cfg)
	case Opt1:
		return KMeansTranslated(BoxPoints(points), init, core.Opt1, cfg)
	case Opt2:
		return KMeansTranslated(BoxPoints(points), init, core.Opt2, cfg)
	case Opt3:
		return KMeansTranslated(BoxPoints(points), init, core.Opt3, cfg)
	case ManualFR:
		return KMeansManualFR(points, init, cfg)
	case MapReduce:
		return KMeansMapReduce(points, init, cfg)
	default:
		return nil, fmt.Errorf("apps: unknown k-means version %v", v)
	}
}
