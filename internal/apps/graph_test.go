package apps

import (
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

func randomEdges(n, nodes int, seed int64) *dataset.Matrix {
	m := dataset.NewMatrix(n, 2)
	r := seed
	for i := 0; i < n; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[2*i] = float64(uint64(r) >> 33 % uint64(nodes))
		m.Data[2*i+1] = float64(uint64(r) >> 12 % uint64(nodes))
	}
	return m
}

// TestPropertyDegreeMatchesDensified: the gather-free sparse pipeline (nil
// hot vector) agrees bit-identically with the densified adjacency row-sum
// across schedulers, strategies, thread counts, and accumulator modes.
func TestPropertyDegreeMatchesDensified(t *testing.T) {
	policies := []sched.Policy{sched.Static, sched.Dynamic, sched.Guided, sched.WorkStealing}
	strategies := robj.Strategies()
	threadChoices := []int{1, 2, 4, 8}
	accModes := []int{1, -1}
	prop := func(seed int64, pick uint16, shape uint16) bool {
		nodes := 1 + int(shape)%50
		n := int(shape>>8)%80 + 1
		policy := policies[int(pick)%len(policies)]
		strategy := strategies[int(pick/4)%len(strategies)]
		threads := threadChoices[int(pick/32)%len(threadChoices)]
		sparseAcc := accModes[int(pick/256)%len(accModes)]

		edges := randomEdges(n, nodes, seed)
		cfg := DegreeConfig{
			Nodes: nodes,
			Engine: freeride.Config{
				Threads: threads, Scheduler: policy, Strategy: strategy,
				SplitRows: 1 + n/5, SparseAccCells: sparseAcc,
			},
		}
		want, err := DegreeSeq(edges, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, v := range sparseVersions {
			got, err := Degree(v, edges, cfg)
			if err != nil {
				t.Logf("%v: %v", v, err)
				return false
			}
			for i := range want.Degrees {
				if got.Degrees[i] != want.Degrees[i] {
					t.Logf("%v deg[%d] = %v, want %v (policy %v, strategy %v, threads %d, acc %d)",
						v, i, got.Degrees[i], want.Degrees[i], policy, strategy, threads, sparseAcc)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDegreeEmptyGraph: no edges yields all-zero degrees in every version.
func TestDegreeEmptyGraph(t *testing.T) {
	edges := dataset.NewMatrix(0, 2)
	cfg := DegreeConfig{Nodes: 3, Engine: freeride.Config{Threads: 2, SplitRows: 2}}
	for _, v := range append([]Version{Seq}, sparseVersions...) {
		res, err := Degree(v, edges, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for i, d := range res.Degrees {
			if d != 0 {
				t.Fatalf("%v: deg[%d] = %v, want 0", v, i, d)
			}
		}
	}
}

// TestDegreeSelfLoopsAndMultiEdges: duplicate edges and self-loops each
// count once per occurrence.
func TestDegreeSelfLoopsAndMultiEdges(t *testing.T) {
	edges := dataset.NewMatrix(4, 2)
	copy(edges.Data, []float64{
		0, 1,
		0, 1, // multi-edge
		1, 1, // self-loop
		2, 0,
	})
	cfg := DegreeConfig{Nodes: 3, Engine: freeride.Config{Threads: 2, SplitRows: 2}}
	want := []float64{2, 1, 1}
	for _, v := range append([]Version{Seq}, sparseVersions...) {
		res, err := Degree(v, edges, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for i := range want {
			if res.Degrees[i] != want[i] {
				t.Fatalf("%v: deg[%d] = %v, want %v", v, i, res.Degrees[i], want[i])
			}
		}
	}
}
