package apps

import (
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// randomTriples builds an nnz×3 COO triples matrix with integer values and
// in-range 0-based coordinates (duplicates allowed — the executors must fold
// them associatively).
func randomTriples(nnz, rows, cols int, seed int64) *dataset.Matrix {
	m := dataset.NewMatrix(nnz, 3)
	r := seed
	for i := 0; i < nnz; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[3*i] = float64(uint64(r) >> 33 % uint64(rows))
		m.Data[3*i+1] = float64(uint64(r) >> 12 % uint64(cols))
		m.Data[3*i+2] = float64(int64(uint64(r)>>45%17) - 8)
	}
	return m
}

func intVector(n int, seed int64) []float64 {
	x := make([]float64, n)
	r := seed
	for i := range x {
		r = r*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(uint64(r)>>40%9) - 4)
	}
	return x
}

var sparseVersions = []Version{Generated, Opt1, Opt2, Opt3, ManualFR}

// TestPropertySpMVMatchesDensified: across all schedulers, all five sharing
// strategies, 1/2/4/8 threads, and every version, the sparse SpMV executors
// produce results bit-identical to the densified sequential reference —
// integer-valued data makes float accumulation exact, so the comparison is
// ==, not within-epsilon. Both worker-local accumulator modes are exercised:
// SparseAccCells 1 forces the hashed map, -1 the dense mirror.
func TestPropertySpMVMatchesDensified(t *testing.T) {
	policies := []sched.Policy{sched.Static, sched.Dynamic, sched.Guided, sched.WorkStealing}
	strategies := robj.Strategies()
	threadChoices := []int{1, 2, 4, 8}
	accModes := []int{1, -1}
	prop := func(seed int64, pick uint16, shape uint16) bool {
		rows := 1 + int(shape)%40
		cols := 1 + int(shape>>6)%30
		nnz := int(shape>>11)%60 + 1
		policy := policies[int(pick)%len(policies)]
		strategy := strategies[int(pick/4)%len(strategies)]
		threads := threadChoices[int(pick/32)%len(threadChoices)]
		sparseAcc := accModes[int(pick/256)%len(accModes)]

		data := randomTriples(nnz, rows, cols, seed)
		cfg := SpMVConfig{
			Rows: rows, Cols: cols, X: intVector(cols, seed^0x5ca1ab1e),
			Engine: freeride.Config{
				Threads: threads, Scheduler: policy, Strategy: strategy,
				SplitRows: 1 + nnz/5, SparseAccCells: sparseAcc,
			},
		}
		want, err := SpMVSeq(data, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, v := range sparseVersions {
			got, err := SpMV(v, data, cfg)
			if err != nil {
				t.Logf("%v: %v", v, err)
				return false
			}
			for i := range want.Y {
				if got.Y[i] != want.Y[i] {
					t.Logf("%v y[%d] = %v, want %v (policy %v, strategy %v, threads %d, acc %d)",
						v, i, got.Y[i], want.Y[i], policy, strategy, threads, sparseAcc)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSpMVEmptyMatrix: a matrix with no nonzeros yields the zero vector
// (OpAdd's identity in every cell) in every version.
func TestSpMVEmptyMatrix(t *testing.T) {
	data := dataset.NewMatrix(0, 3)
	cfg := SpMVConfig{
		Rows: 4, Cols: 3, X: []float64{1, 2, 3},
		Engine: freeride.Config{Threads: 2, SplitRows: 2},
	}
	for _, v := range append([]Version{Seq}, sparseVersions...) {
		res, err := SpMV(v, data, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Y) != 4 {
			t.Fatalf("%v: len(Y) = %d, want 4", v, len(res.Y))
		}
		for i, y := range res.Y {
			if y != 0 {
				t.Fatalf("%v: y[%d] = %v, want 0", v, i, y)
			}
		}
	}
}

// TestSpMVSingleRow: a 1×n matrix reduces into a single cell across every
// version, including with more threads than nonzeros.
func TestSpMVSingleRow(t *testing.T) {
	data := dataset.NewMatrix(3, 3)
	copy(data.Data, []float64{
		0, 0, 2,
		0, 2, 3,
		0, 0, 5, // duplicate coordinate folds under addition
	})
	cfg := SpMVConfig{
		Rows: 1, Cols: 3, X: []float64{10, 100, 1000},
		Engine: freeride.Config{Threads: 8, SplitRows: 1},
	}
	const want = (2+5)*10 + 3*1000
	for _, v := range append([]Version{Seq}, sparseVersions...) {
		res, err := SpMV(v, data, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Y) != 1 || res.Y[0] != want {
			t.Fatalf("%v: Y = %v, want [%d]", v, res.Y, want)
		}
	}
}

// TestSpMVRejectsBadShapes covers the app-level validation and the
// translate-time table proofs surfacing through the app API.
func TestSpMVRejectsBadShapes(t *testing.T) {
	if _, err := SpMVSeq(dataset.NewMatrix(0, 3), SpMVConfig{Rows: 2, Cols: 2, X: []float64{1}}); err == nil {
		t.Fatal("short X not rejected")
	}
	// A triple whose row is out of range: the densified reference rejects it
	// directly, the translated versions through the verifier's FRV013.
	bad := dataset.NewMatrix(1, 3)
	copy(bad.Data, []float64{5, 0, 1})
	cfg := SpMVConfig{Rows: 2, Cols: 2, X: []float64{1, 1}, Engine: freeride.Config{Threads: 1}}
	if _, err := SpMVSeq(bad, cfg); err == nil {
		t.Fatal("densified reference accepted out-of-range row")
	}
	if _, err := SpMVTranslated(bad, 1, cfg); err == nil {
		t.Fatal("translated version accepted out-of-range row")
	}
}
