package apps

import (
	"context"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// loopSpec describes one iterative FREERIDE computation for runSessionLoop:
// the per-iteration reduction spec, the fold that consumes each iteration's
// merged reduction object, and an optional post-iteration step.
type loopSpec struct {
	// Iterations is the pass count.
	Iterations int
	// Spec builds iteration it's reduction spec. It is called at the start
	// of the iteration, after the previous iteration's Fold and Post, so it
	// may close over state they produced.
	Spec func(it int) freeride.Spec
	// Fold consumes iteration it's merged reduction object (update the
	// model, snapshot results). The object is released to the engine's pool
	// right after Fold returns, so any cells that must survive into the next
	// iteration have to be copied out here. Timed as Timing.Update.
	Fold func(it int, obj *robj.Object) error
	// Post, if set, runs after Fold and the release (e.g. re-linearizing
	// hot variables, or building the next phase's spec). It is not timed by
	// the driver; implementations that track Timing.HotVar account for it
	// themselves.
	Post func(it int) error
}

// runSessionLoop drives an iterative reduction on a persistent engine
// session: one RunContext per iteration, the result's reduction object handed
// back with Release so the next pass reuses it from the session pool. This is
// the outer loop k-means, EM, and PCA previously each carried a copy of, with
// manual RunInto object-reuse plumbing in place of the pool. ctx cancels the
// loop between (and, through the engine, inside) iterations.
func runSessionLoop(ctx context.Context, eng *freeride.Engine, src dataset.Source, timing *Timing, ls loopSpec) error {
	for it := 0; it < ls.Iterations; it++ {
		spec := ls.Spec(it)
		t0 := time.Now()
		res, err := eng.RunContext(ctx, spec, src)
		if err != nil {
			return err
		}
		timing.Reduce += time.Since(t0)
		timing.addReduceStats(res.Stats.CPUTotal(), res.Stats.CPUMax())
		t0 = time.Now()
		foldErr := ls.Fold(it, res.Object)
		timing.Update += time.Since(t0)
		if err := eng.Release(res); err != nil && foldErr == nil {
			foldErr = err
		}
		if foldErr != nil {
			return foldErr
		}
		if ls.Post != nil {
			if err := ls.Post(it); err != nil {
				return err
			}
		}
	}
	return nil
}
