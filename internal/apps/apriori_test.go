package apps

import (
	"reflect"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// fixedTransactions builds a tiny database with known supports:
//
//	{0,1,2} {0,1} {0,2} {0} {1,2}
//
// supports: 0→4, 1→3, 2→3, (0,1)→2, (0,2)→2, (1,2)→2.
func fixedTransactions() *dataset.Matrix {
	m := dataset.NewMatrix(5, 3)
	rows := [][]float64{
		{0, 1, 2},
		{0, 1, -1},
		{0, 2, -1},
		{0, -1, -1},
		{1, 2, -1},
	}
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

func TestAprioriKnownSupports(t *testing.T) {
	cfg := AprioriConfig{NumItems: 3, MinSupport: 2, Engine: freeride.Config{Threads: 2, SplitRows: 2}}
	res, err := AprioriSeq(fixedTransactions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Itemset{
		{Items: []int{0}, Support: 4},
		{Items: []int{1}, Support: 3},
		{Items: []int{2}, Support: 3},
		{Items: []int{0, 1}, Support: 2},
		{Items: []int{0, 2}, Support: 2},
		{Items: []int{1, 2}, Support: 2},
	}
	if !reflect.DeepEqual(res.Frequent, want) {
		t.Fatalf("frequent = %+v, want %+v", res.Frequent, want)
	}
	// Higher threshold prunes the pairs.
	cfg.MinSupport = 3
	res, err = AprioriSeq(fixedTransactions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 3 {
		t.Fatalf("minSupport=3: %+v", res.Frequent)
	}
}

func TestAprioriAllVersionsAgree(t *testing.T) {
	tx := GenerateTransactions(2000, 8, 40, 9)
	cfg := AprioriConfig{NumItems: 40, MinSupport: 120, Engine: freeride.Config{Threads: 4, SplitRows: 128}}
	ref, err := AprioriSeq(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Frequent) == 0 {
		t.Fatal("workload produced no frequent itemsets; adjust generator")
	}
	for _, v := range []Version{ManualFR, MapReduce} {
		got, err := Apriori(v, tx, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !reflect.DeepEqual(got.Frequent, ref.Frequent) {
			t.Fatalf("%v diverges:\n got %+v\nwant %+v", v, got.Frequent, ref.Frequent)
		}
	}
}

func TestAprioriDuplicateItemsCountOnce(t *testing.T) {
	// A transaction listing an item twice supports it once.
	m := dataset.NewMatrix(2, 3)
	copy(m.Row(0), []float64{1, 1, 1})
	copy(m.Row(1), []float64{1, 2, -1})
	cfg := AprioriConfig{NumItems: 3, MinSupport: 2, Engine: freeride.Config{Threads: 1}}
	res, err := AprioriManualFR(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 1 || res.Frequent[0].Support != 2 || res.Frequent[0].Items[0] != 1 {
		t.Fatalf("frequent = %+v", res.Frequent)
	}
}

func TestAprioriOutOfRangeIDsIgnored(t *testing.T) {
	m := dataset.NewMatrix(1, 3)
	copy(m.Row(0), []float64{0, 99, -5})
	cfg := AprioriConfig{NumItems: 3, MinSupport: 1, Engine: freeride.Config{Threads: 1}}
	res, err := AprioriSeq(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frequent) != 1 || res.Frequent[0].Items[0] != 0 {
		t.Fatalf("frequent = %+v", res.Frequent)
	}
}

func TestAprioriNoPairCandidates(t *testing.T) {
	// Only one frequent item → no pair pass.
	m := dataset.NewMatrix(3, 1)
	for i := range m.Data {
		m.Data[i] = 0
	}
	cfg := AprioriConfig{NumItems: 4, MinSupport: 2, Engine: freeride.Config{Threads: 2}}
	for _, v := range []Version{Seq, ManualFR, MapReduce} {
		res, err := Apriori(v, m, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Frequent) != 1 || len(res.Frequent[0].Items) != 1 {
			t.Fatalf("%v: frequent = %+v", v, res.Frequent)
		}
	}
}

func TestAprioriValidation(t *testing.T) {
	m := fixedTransactions()
	if _, err := AprioriSeq(m, AprioriConfig{NumItems: 0, MinSupport: 1}); err == nil {
		t.Fatal("NumItems=0: want error")
	}
	if _, err := AprioriSeq(m, AprioriConfig{NumItems: 3, MinSupport: 0}); err == nil {
		t.Fatal("MinSupport=0: want error")
	}
	if _, err := Apriori(Opt2, m, AprioriConfig{NumItems: 3, MinSupport: 1}); err == nil {
		t.Fatal("unsupported version: want error")
	}
}

func TestGenerateTransactionsShape(t *testing.T) {
	tx := GenerateTransactions(100, 6, 20, 3)
	if tx.Rows != 100 || tx.Cols != 6 {
		t.Fatal("shape")
	}
	if !tx.Equal(GenerateTransactions(100, 6, 20, 3)) {
		t.Fatal("not deterministic")
	}
	for i := 0; i < tx.Rows; i++ {
		row := tx.Row(i)
		if int(row[0]) < 0 {
			t.Fatalf("row %d has no items", i)
		}
		for _, v := range row {
			if int(v) >= 20 {
				t.Fatalf("item id %v out of range", v)
			}
		}
	}
}
