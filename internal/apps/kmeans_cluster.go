package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// KMeansClusterConfig parameterizes a distributed k-means run on the
// simulated FREERIDE cluster: every iteration each node reduces its block
// of the points, the per-node reduction objects are combined globally, and
// the centroid update happens once on the combined object — exactly the
// iterative structure the original cluster middleware executed.
type KMeansClusterConfig struct {
	// K is the number of clusters.
	K int
	// Iterations is the number of scan-and-update passes.
	Iterations int
	// Nodes is the simulated node count.
	Nodes int
	// PerNode configures each node's multicore engine.
	PerNode freeride.Config
	// Transport selects the global-combination exchange (default
	// in-process).
	Transport cluster.Transport
	// Combine selects the combination algorithm (default all-to-one).
	Combine cluster.CombineAlgo
}

// KMeansClusterResult is the distributed run's output.
type KMeansClusterResult struct {
	// Centroids is the final K×dim centroid matrix.
	Centroids *dataset.Matrix
	// Counts is the per-cluster point count from the last iteration.
	Counts []float64
	// BytesMoved is the total serialized reduction-object volume the
	// global combinations exchanged (0 for the in-process transport).
	BytesMoved int64
	// Timing is the phase breakdown (Reduce covers the per-node passes and
	// global combination).
	Timing Timing
}

// KMeansCluster runs k-means across the simulated cluster. Results are
// identical to KMeansManualFR on the same data: the reduction is
// order-independent and the global combination is deterministic.
func KMeansCluster(points, init *dataset.Matrix, cfg KMeansClusterConfig) (*KMeansClusterResult, error) {
	if cfg.K < 1 || cfg.Iterations < 1 {
		return nil, fmt.Errorf("apps: cluster k-means needs K >= 1 and Iterations >= 1")
	}
	k, dim := cfg.K, points.Cols
	cents := init.Clone()
	cl := cluster.New(cluster.Config{
		Nodes:     cfg.Nodes,
		PerNode:   cfg.PerNode,
		Transport: cfg.Transport,
		Combine:   cfg.Combine,
	})
	defer cl.Close()
	src := dataset.NewMemorySource(points)
	var (
		counts []float64
		moved  int64
		timing Timing
	)
	for it := 0; it < cfg.Iterations; it++ {
		flat := cents.Data
		spec := freeride.Spec{
			Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
			Reduction: func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					row := args.Row(i)
					c := nearest(row, flat, k, dim)
					for j := 0; j < dim; j++ {
						args.Accumulate(c, j, row[j])
					}
					args.Accumulate(c, dim, 1)
				}
				return nil
			},
		}
		t0 := time.Now()
		res, err := cl.RunContext(context.Background(), spec, src)
		if err != nil {
			return nil, err
		}
		timing.Reduce += time.Since(t0)
		moved += res.Stats.BytesMoved
		t0 = time.Now()
		cents, counts = updateCentroids(res.Object.Snapshot(), cents, k, dim)
		timing.Update += time.Since(t0)
		if err := cl.Release(res); err != nil {
			return nil, err
		}
	}
	return &KMeansClusterResult{
		Centroids:  cents,
		Counts:     counts,
		BytesMoved: moved,
		Timing:     timing,
	}, nil
}
