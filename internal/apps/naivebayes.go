package apps

import (
	"context"
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// NaiveBayes trains a discretized naive Bayes classifier. Training is a
// single generalized reduction over the labelled examples: the reduction
// object holds, per class, the example count and the per-(feature, bin)
// occurrence counts — a large, purely additive table, the shape FREERIDE's
// reduction object handles natively. Prediction applies the trained counts
// with Laplace smoothing.

// NaiveBayesConfig parameterizes training.
type NaiveBayesConfig struct {
	// Classes is the number of class labels (labels are 0..Classes-1 in
	// the last column of the training matrix).
	Classes int
	// Bins discretizes each feature into equal-width bins over [Lo, Hi).
	Bins   int
	Lo, Hi float64
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
}

func (c NaiveBayesConfig) validate() error {
	if c.Classes < 2 {
		return fmt.Errorf("apps: naive bayes needs Classes >= 2, got %d", c.Classes)
	}
	if c.Bins < 1 {
		return fmt.Errorf("apps: naive bayes needs Bins >= 1, got %d", c.Bins)
	}
	if !(c.Hi > c.Lo) {
		return fmt.Errorf("apps: naive bayes needs Hi > Lo")
	}
	return nil
}

// bin discretizes a value, clamping out-of-range to the edge bins.
func (c NaiveBayesConfig) bin(v float64) int {
	b := int(math.Floor((v - c.Lo) / (c.Hi - c.Lo) * float64(c.Bins)))
	if b < 0 {
		return 0
	}
	if b >= c.Bins {
		return c.Bins - 1
	}
	return b
}

// NaiveBayesModel is the trained classifier.
type NaiveBayesModel struct {
	cfg NaiveBayesConfig
	dim int
	// classCounts[c] = training examples with class c.
	classCounts []float64
	// featureCounts[c][f*Bins+b] = examples of class c with feature f in
	// bin b.
	featureCounts [][]float64
	// Timing is the training-phase breakdown.
	Timing Timing
}

// Predict returns the most probable class for the feature vector, using
// log-space scoring with Laplace smoothing; ties resolve to the lowest
// class id.
func (m *NaiveBayesModel) Predict(features []float64) int {
	best, bestScore := 0, math.Inf(-1)
	var total float64
	for _, n := range m.classCounts {
		total += n
	}
	for c := 0; c < m.cfg.Classes; c++ {
		nc := m.classCounts[c]
		score := math.Log((nc + 1) / (total + float64(m.cfg.Classes)))
		for f := 0; f < m.dim; f++ {
			b := m.cfg.bin(features[f])
			score += math.Log((m.featureCounts[c][f*m.cfg.Bins+b] + 1) / (nc + float64(m.cfg.Bins)))
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// buildModel assembles a model from the flat reduction-object layout:
// per class, cell 0 is the class count and cells 1..dim*Bins are the
// feature-bin counts.
func buildModel(cfg NaiveBayesConfig, dim int, cells []float64, timing Timing) *NaiveBayesModel {
	stride := 1 + dim*cfg.Bins
	m := &NaiveBayesModel{
		cfg: cfg, dim: dim,
		classCounts:   make([]float64, cfg.Classes),
		featureCounts: make([][]float64, cfg.Classes),
		Timing:        timing,
	}
	for c := 0; c < cfg.Classes; c++ {
		m.classCounts[c] = cells[c*stride]
		m.featureCounts[c] = append([]float64(nil), cells[c*stride+1:(c+1)*stride]...)
	}
	return m
}

// NaiveBayesTrainSeq is the sequential reference trainer. train has the
// label in the last column.
func NaiveBayesTrainSeq(train *dataset.Matrix, cfg NaiveBayesConfig) (*NaiveBayesModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dim := train.Cols - 1
	if dim < 1 {
		return nil, fmt.Errorf("apps: naive bayes needs at least one feature column")
	}
	t0 := time.Now()
	stride := 1 + dim*cfg.Bins
	cells := make([]float64, cfg.Classes*stride)
	for i := 0; i < train.Rows; i++ {
		row := train.Row(i)
		c := int(row[dim])
		if c < 0 || c >= cfg.Classes {
			return nil, fmt.Errorf("apps: label %v out of range at row %d", row[dim], i)
		}
		cells[c*stride]++
		for f := 0; f < dim; f++ {
			cells[c*stride+1+f*cfg.Bins+cfg.bin(row[f])]++
		}
	}
	return buildModel(cfg, dim, cells, Timing{Reduce: time.Since(t0)}), nil
}

// NaiveBayesTrainFR trains under FREERIDE: one reduction pass whose object
// is the count table.
func NaiveBayesTrainFR(train *dataset.Matrix, cfg NaiveBayesConfig) (*NaiveBayesModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dim := train.Cols - 1
	if dim < 1 {
		return nil, fmt.Errorf("apps: naive bayes needs at least one feature column")
	}
	stride := 1 + dim*cfg.Bins
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: cfg.Classes, Elems: stride, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				c := int(row[dim])
				if c < 0 || c >= cfg.Classes {
					return fmt.Errorf("apps: label %v out of range at row %d", row[dim], args.Begin+i)
				}
				args.Accumulate(c, 0, 1)
				for f := 0; f < dim; f++ {
					args.Accumulate(c, 1+f*cfg.Bins+cfg.bin(row[f]), 1)
				}
			}
			return nil
		},
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	var timing Timing
	timing.Threads = eng.Config().Threads
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(train))
	if err != nil {
		return nil, err
	}
	timing.Reduce = time.Since(t0)
	timing.addReduceStats(res.Stats.CPUTotal(), res.Stats.CPUMax())
	return buildModel(cfg, dim, res.Object.Snapshot(), timing), nil
}

// NaiveBayesAccuracy scores a model over a labelled test set, returning the
// fraction of correct predictions.
func NaiveBayesAccuracy(m *NaiveBayesModel, test *dataset.Matrix) float64 {
	if test.Rows == 0 {
		return 0
	}
	dim := test.Cols - 1
	correct := 0
	for i := 0; i < test.Rows; i++ {
		row := test.Row(i)
		if m.Predict(row[:dim]) == int(row[dim]) {
			correct++
		}
	}
	return float64(correct) / float64(test.Rows)
}
