package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// Regression fits y = intercept + slope·x by ordinary least squares over a
// two-column (x, y) dataset. The sufficient statistics (n, Σx, Σy, Σxy,
// Σx²) form a 5-cell reduction object — a minimal end-to-end generalized
// reduction used by the examples and tests.

// RegressionResult holds the fitted line and timing.
type RegressionResult struct {
	Slope     float64
	Intercept float64
	N         int
	Timing    Timing
}

// regressionFromSums solves the normal equations from the sufficient
// statistics.
func regressionFromSums(n, sx, sy, sxy, sxx float64) (*RegressionResult, error) {
	denom := n*sxx - sx*sx
	if denom == 0 {
		return nil, fmt.Errorf("apps: regression is degenerate (all x equal)")
	}
	slope := (n*sxy - sx*sy) / denom
	return &RegressionResult{
		Slope:     slope,
		Intercept: (sy - slope*sx) / n,
		N:         int(n),
	}, nil
}

// RegressionSeq is the sequential reference.
func RegressionSeq(data *dataset.Matrix) (*RegressionResult, error) {
	if err := validateRegression(data); err != nil {
		return nil, err
	}
	t0 := time.Now()
	var n, sx, sy, sxy, sxx float64
	for i := 0; i < data.Rows; i++ {
		x, y := data.At(i, 0), data.At(i, 1)
		n++
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
	}
	res, err := regressionFromSums(n, sx, sy, sxy, sxx)
	if err != nil {
		return nil, err
	}
	res.Timing.Reduce = time.Since(t0)
	return res, nil
}

// RegressionManualFR accumulates the sufficient statistics under FREERIDE.
func RegressionManualFR(data *dataset.Matrix, cfg freeride.Config) (*RegressionResult, error) {
	if err := validateRegression(data); err != nil {
		return nil, err
	}
	eng := freeride.New(cfg)
	defer eng.Close()
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 5, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			var n, sx, sy, sxy, sxx float64
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				x, y := row[0], row[1]
				n++
				sx += x
				sy += y
				sxy += x * y
				sxx += x * x
			}
			args.Accumulate(0, 0, n)
			args.Accumulate(0, 1, sx)
			args.Accumulate(0, 2, sy)
			args.Accumulate(0, 3, sxy)
			args.Accumulate(0, 4, sxx)
			return nil
		},
	}
	t0 := time.Now()
	out, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(data))
	if err != nil {
		return nil, err
	}
	s := out.Object.Snapshot()
	res, err := regressionFromSums(s[0], s[1], s[2], s[3], s[4])
	if err != nil {
		return nil, err
	}
	res.Timing.Reduce = time.Since(t0)
	return res, nil
}

// regressionOp is the Chapel-native reduction class: its reduction object
// is a record of the five sufficient statistics.
type regressionOp struct {
	n, sx, sy, sxy, sxx float64
}

// Clone implements chapel.ReduceScanOp.
func (o *regressionOp) Clone() chapel.ReduceScanOp { return &regressionOp{} }

// Accumulate implements chapel.ReduceScanOp over a boxed (x, y) record.
func (o *regressionOp) Accumulate(v chapel.Value) {
	r := v.(*chapel.Record)
	x := r.Field("x").(*chapel.Real).Val
	y := r.Field("y").(*chapel.Real).Val
	o.n++
	o.sx += x
	o.sy += y
	o.sxy += x * y
	o.sxx += x * x
}

// Combine implements chapel.ReduceScanOp.
func (o *regressionOp) Combine(other chapel.ReduceScanOp) {
	x := other.(*regressionOp)
	o.n += x.n
	o.sx += x.sx
	o.sy += x.sy
	o.sxy += x.sxy
	o.sxx += x.sxx
}

// Generate implements chapel.ReduceScanOp.
func (o *regressionOp) Generate() chapel.Value {
	return chapel.RealArray(o.n, o.sx, o.sy, o.sxy, o.sxx)
}

// RegressionChapelNative runs the fit as a user-defined Chapel reduction
// over boxed (x, y) records.
func RegressionChapelNative(data *dataset.Matrix, tasks int) (*RegressionResult, error) {
	if err := validateRegression(data); err != nil {
		return nil, err
	}
	ptTy := chapel.RecordType("xy",
		chapel.Field{Name: "x", Type: chapel.RealType()},
		chapel.Field{Name: "y", Type: chapel.RealType()})
	boxed := chapel.NewArray(chapel.ArrayType(ptTy, 1, data.Rows))
	for i := 0; i < data.Rows; i++ {
		r := boxed.At(i + 1).(*chapel.Record)
		r.SetField("x", &chapel.Real{Val: data.At(i, 0)})
		r.SetField("y", &chapel.Real{Val: data.At(i, 1)})
	}
	t0 := time.Now()
	out := chapel.Reduce(&regressionOp{}, chapel.Over(boxed), tasks).(*chapel.Array)
	res, err := regressionFromSums(
		out.At(1).(*chapel.Real).Val,
		out.At(2).(*chapel.Real).Val,
		out.At(3).(*chapel.Real).Val,
		out.At(4).(*chapel.Real).Val,
		out.At(5).(*chapel.Real).Val,
	)
	if err != nil {
		return nil, err
	}
	res.Timing.Reduce = time.Since(t0)
	return res, nil
}

func validateRegression(data *dataset.Matrix) error {
	if data.Cols != 2 {
		return fmt.Errorf("apps: regression needs a 2-column (x, y) matrix, got %d columns", data.Cols)
	}
	if data.Rows < 2 {
		return fmt.Errorf("apps: regression needs at least 2 rows, got %d", data.Rows)
	}
	return nil
}
