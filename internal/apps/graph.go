package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// DegreeHistogram counts each node's out-degree from an edge list — the
// gather-free sparse push reduction (PageRank's structural skeleton: one
// scatter per edge into a node-indexed vector, here with contribution 1
// instead of rank/degree). The dataset is an edges×2 matrix whose rows are
// (src, dst) with 0-based whole-number node ids; the adjacency matrix view
// is a Nodes×Nodes sparse matrix with a 1 at (src, dst), and the degree
// vector is its row-sum — SpMV's shape with no x to gather, which is why
// the translated versions reuse the sparse pipeline with a nil hot vector.

// DegreeConfig parameterizes a degree-histogram run.
type DegreeConfig struct {
	// Nodes is the node-id space; every edge endpoint must be in [0, Nodes).
	Nodes int
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
}

func (c DegreeConfig) validate() error {
	if c.Nodes < 0 {
		return fmt.Errorf("apps: degree histogram needs Nodes >= 0, got %d", c.Nodes)
	}
	return nil
}

// DegreeResult holds the per-node out-degrees and timing.
type DegreeResult struct {
	Degrees []float64
	Timing  Timing
}

// edgeTriples rewrites an edges×2 edge list as the nnz×3 triples matrix the
// sparse pipeline consumes: (src, dst, 1).
func edgeTriples(edges *dataset.Matrix) *dataset.Matrix {
	t := dataset.NewMatrix(edges.Rows, 3)
	for i := 0; i < edges.Rows; i++ {
		t.Data[3*i] = edges.At(i, 0)
		t.Data[3*i+1] = edges.At(i, 1)
		t.Data[3*i+2] = 1
	}
	return t
}

// DegreeSeq is the sequential densified reference: the edge list is
// expanded into a dense adjacency matrix and the degrees are its row-sums.
func DegreeSeq(edges *dataset.Matrix, cfg DegreeConfig) (*DegreeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	dense, err := densify(edgeTriples(edges), cfg.Nodes, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	deg := make([]float64, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		var s float64
		for _, a := range dense[n*cfg.Nodes : (n+1)*cfg.Nodes] {
			s += a
		}
		deg[n] = s
	}
	return &DegreeResult{Degrees: deg, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// DegreeManualFR is the hand-written FREERIDE version: one accumulate of 1
// into cell src per edge.
func DegreeManualFR(edges *dataset.Matrix, cfg DegreeConfig) (*DegreeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: cfg.Nodes, Elems: 1, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				args.Accumulate(int(args.Row(i)[0]), 0, 1)
			}
			return nil
		},
	}
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(edges))
	if err != nil {
		return nil, err
	}
	deg := make([]float64, cfg.Nodes)
	copy(deg, res.Object.Snapshot())
	return &DegreeResult{Degrees: deg, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// DegreeClass is the sparse translator input: a gather-free class (no hot
// vector), whose kernel passes the stored value (1 per edge) through.
func DegreeClass(cfg DegreeConfig) *core.SparseClass {
	return &core.SparseClass{
		Name:   "degree_histogram",
		Object: freeride.ObjectSpec{Groups: cfg.Nodes, Elems: 1, Op: robj.OpAdd},
		Kernel: func(v, _ float64) float64 { return v },
	}
}

// DegreeTranslated runs the degree histogram through the sparse translation
// at the given optimization level.
func DegreeTranslated(edges *dataset.Matrix, opt core.OptLevel, cfg DegreeConfig) (*DegreeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	coo, err := core.LinearizeCOO(BoxTriples(edgeTriples(edges)), cfg.Nodes, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	linearize := time.Since(t0)
	tr, err := core.TranslateSparse(DegreeClass(cfg), coo, opt)
	if err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	t0 = time.Now()
	res, err := eng.RunContext(context.Background(), tr.Spec(), tr.Source())
	if err != nil {
		return nil, err
	}
	deg := make([]float64, cfg.Nodes)
	copy(deg, res.Object.Snapshot())
	return &DegreeResult{
		Degrees: deg,
		Timing:  Timing{Linearize: linearize + tr.InspectTime, Reduce: time.Since(t0)},
	}, nil
}

// Degree dispatches to the named version.
func Degree(v Version, edges *dataset.Matrix, cfg DegreeConfig) (*DegreeResult, error) {
	switch v {
	case Seq:
		return DegreeSeq(edges, cfg)
	case Generated:
		return DegreeTranslated(edges, core.OptNone, cfg)
	case Opt1:
		return DegreeTranslated(edges, core.Opt1, cfg)
	case Opt2:
		return DegreeTranslated(edges, core.Opt2, cfg)
	case Opt3:
		return DegreeTranslated(edges, core.Opt3, cfg)
	case ManualFR:
		return DegreeManualFR(edges, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported degree-histogram version %v", v)
	}
}
