package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

func TestPCASeqKnownValues(t *testing.T) {
	// data: (1,2), (3,4), (5,6) → mean (3,4); cov entries all 4 (perfectly
	// correlated columns with variance 4).
	m := dataset.NewMatrix(3, 2)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	res, err := PCASeq(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean[0] != 3 || res.Mean[1] != 4 {
		t.Fatalf("mean = %v", res.Mean)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if res.Cov.At(i, j) != 4 {
				t.Fatalf("cov = %v", res.Cov.Data)
			}
		}
	}
}

func TestPCAAllVersionsAgree(t *testing.T) {
	m := intPoints(300, 6, 7)
	ref, err := PCASeq(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PCAConfig{Engine: freeride.Config{Threads: 4, SplitRows: 32}}
	for _, v := range []Version{Generated, Opt1, Opt2, Opt3, ManualFR} {
		got, err := PCA(v, m, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		for j := range ref.Mean {
			if math.Abs(got.Mean[j]-ref.Mean[j]) > 1e-9*math.Abs(ref.Mean[j]) {
				t.Fatalf("%v: mean[%d] = %v, want %v", v, j, got.Mean[j], ref.Mean[j])
			}
		}
		for i := range ref.Cov.Data {
			diff := math.Abs(got.Cov.Data[i] - ref.Cov.Data[i])
			scale := math.Abs(ref.Cov.Data[i]) + 1
			if diff > 1e-9*scale {
				t.Fatalf("%v: cov[%d] = %v, want %v", v, i, got.Cov.Data[i], ref.Cov.Data[i])
			}
		}
	}
}

func TestPCACovarianceIsSymmetric(t *testing.T) {
	m := intPoints(200, 5, 8)
	res, err := PCAManualFR(m, PCAConfig{Engine: freeride.Config{Threads: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(res.Cov.At(i, j)-res.Cov.At(j, i)) > 1e-9 {
				t.Fatalf("cov not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal is non-negative (variances).
	for i := 0; i < 5; i++ {
		if res.Cov.At(i, i) < 0 {
			t.Fatalf("negative variance at %d", i)
		}
	}
}

func TestPCAValidation(t *testing.T) {
	if _, err := PCASeq(dataset.NewMatrix(0, 3)); err == nil {
		t.Fatal("empty matrix: want error")
	}
	if _, err := PCAManualFR(dataset.NewMatrix(3, 0), PCAConfig{}); err == nil {
		t.Fatal("zero-dim matrix: want error")
	}
	if _, err := PCA(MapReduce, intPoints(5, 2, 1), PCAConfig{}); err == nil {
		t.Fatal("unsupported version: want error")
	}
	if _, err := PCATranslated(BoxMatrix(dataset.NewMatrix(0, 2)), 0, PCAConfig{}); err == nil {
		t.Fatal("empty boxed data: want error")
	}
}

func TestPCASingleRowCovariance(t *testing.T) {
	// n=1: covariance normalization degenerates; sums stay (all zero after
	// centering the single point on itself).
	m := dataset.NewMatrix(1, 2)
	m.Set(0, 0, 5)
	m.Set(0, 1, 7)
	res, err := PCAManualFR(m, PCAConfig{Engine: freeride.Config{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean[0] != 5 || res.Mean[1] != 7 {
		t.Fatalf("mean = %v", res.Mean)
	}
	for _, v := range res.Cov.Data {
		if v != 0 {
			t.Fatalf("cov = %v", res.Cov.Data)
		}
	}
}

func TestPCATimingPopulated(t *testing.T) {
	m := intPoints(100, 4, 9)
	res, err := PCATranslated(BoxMatrix(m), 2, PCAConfig{Engine: freeride.Config{Threads: 2}}) // Opt2
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Linearize <= 0 || res.Timing.Reduce <= 0 {
		t.Fatalf("timing = %+v", res.Timing)
	}
}

// Property: translated PCA at every level matches sequential on random
// integer matrices.
func TestPropertyPCAMatchesSeq(t *testing.T) {
	f := func(seed int64, nRaw, dRaw, thrRaw uint8) bool {
		n := int(nRaw%100) + 5
		dim := int(dRaw%6) + 1
		threads := int(thrRaw%4) + 1
		m := intPoints(n, dim, seed)
		ref, err := PCASeq(m)
		if err != nil {
			return false
		}
		cfg := PCAConfig{Engine: freeride.Config{Threads: threads, SplitRows: 16}}
		for _, v := range []Version{Opt2, Opt3, ManualFR} {
			got, err := PCA(v, m, cfg)
			if err != nil {
				return false
			}
			for i := range ref.Cov.Data {
				if math.Abs(got.Cov.Data[i]-ref.Cov.Data[i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}
