package apps

import (
	"context"
	"fmt"
	"sort"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/mapreduce"
	"chapelfreeride/internal/robj"
)

// Apriori mines frequent itemsets (sizes 1 and 2) from a transaction
// database — the application family the original FREERIDE middleware was
// built around (association-rule mining). Each pass over the transactions
// is a generalized reduction whose reduction object is the candidate
// support table: pass 1 counts item supports; candidates for pass 2 are
// all pairs of frequent items; pass 2 counts pair supports.
//
// Transactions are fixed-width rows of item ids in [0, NumItems), padded
// with -1 — FREERIDE's flat 2-D input view applied to market-basket data.

// AprioriConfig parameterizes a mining run.
type AprioriConfig struct {
	// NumItems is the item universe size.
	NumItems int
	// MinSupport is the absolute support threshold (transaction count).
	MinSupport int
	// Engine configures the FREERIDE engine (and sizes Map-Reduce).
	Engine freeride.Config
}

func (c AprioriConfig) validate() error {
	if c.NumItems < 1 {
		return fmt.Errorf("apps: apriori needs NumItems >= 1, got %d", c.NumItems)
	}
	if c.MinSupport < 1 {
		return fmt.Errorf("apps: apriori needs MinSupport >= 1, got %d", c.MinSupport)
	}
	return nil
}

// Itemset is a frequent itemset with its support count.
type Itemset struct {
	// Items holds 1 or 2 item ids, ascending.
	Items []int
	// Support is the number of transactions containing all the items.
	Support int
}

// AprioriResult lists the frequent itemsets, 1-itemsets first, each group
// sorted by items — a canonical order every version produces identically.
type AprioriResult struct {
	Frequent []Itemset
	Timing   Timing
}

// rowItems extracts the valid (non-padding) item ids of one transaction,
// deduplicated via the seen scratch (len NumItems).
func rowItems(row []float64, seen []bool, out []int) []int {
	out = out[:0]
	for _, v := range row {
		id := int(v)
		if id < 0 || id >= len(seen) || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	for _, id := range out {
		seen[id] = false
	}
	sort.Ints(out)
	return out
}

// assemble builds the canonical result from support tables.
func assemble(oneSupports []float64, frequentOnes []int, pairs [][2]int, pairSupports []float64, minSupport int) []Itemset {
	var out []Itemset
	for _, item := range frequentOnes {
		out = append(out, Itemset{Items: []int{item}, Support: int(oneSupports[item])})
	}
	for i, p := range pairs {
		if int(pairSupports[i]) >= minSupport {
			out = append(out, Itemset{Items: []int{p[0], p[1]}, Support: int(pairSupports[i])})
		}
	}
	return out
}

// frequentItems filters items by support, ascending.
func frequentItems(supports []float64, minSupport int) []int {
	var out []int
	for item, s := range supports {
		if int(s) >= minSupport {
			out = append(out, item)
		}
	}
	return out
}

// candidatePairs enumerates all ascending pairs of frequent items — the
// apriori candidate-generation step (every subset of a frequent set must
// be frequent).
func candidatePairs(frequent []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(frequent); i++ {
		for j := i + 1; j < len(frequent); j++ {
			out = append(out, [2]int{frequent[i], frequent[j]})
		}
	}
	return out
}

// AprioriSeq is the sequential reference implementation.
func AprioriSeq(tx *dataset.Matrix, cfg AprioriConfig) (*AprioriResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var timing Timing
	t0 := time.Now()
	seen := make([]bool, cfg.NumItems)
	items := make([]int, 0, tx.Cols)
	one := make([]float64, cfg.NumItems)
	for i := 0; i < tx.Rows; i++ {
		for _, id := range rowItems(tx.Row(i), seen, items) {
			one[id]++
		}
	}
	freq1 := frequentItems(one, cfg.MinSupport)
	pairs := candidatePairs(freq1)
	pairIdx := pairIndex(pairs)
	pairSupports := make([]float64, len(pairs))
	for i := 0; i < tx.Rows; i++ {
		ids := rowItems(tx.Row(i), seen, items)
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				if idx, ok := pairIdx[[2]int{ids[a], ids[b]}]; ok {
					pairSupports[idx]++
				}
			}
		}
	}
	timing.Reduce = time.Since(t0)
	return &AprioriResult{
		Frequent: assemble(one, freq1, pairs, pairSupports, cfg.MinSupport),
		Timing:   timing,
	}, nil
}

func pairIndex(pairs [][2]int) map[[2]int]int {
	idx := make(map[[2]int]int, len(pairs))
	for i, p := range pairs {
		idx[p] = i
	}
	return idx
}

// AprioriManualFR runs both counting passes under FREERIDE: the support
// tables are the reduction objects.
func AprioriManualFR(tx *dataset.Matrix, cfg AprioriConfig) (*AprioriResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	var timing Timing
	timing.Threads = eng.Config().Threads
	src := dataset.NewMemorySource(tx)

	// Pass 1: 1-itemset supports.
	spec1 := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: cfg.NumItems, Elems: 1, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			seen := make([]bool, cfg.NumItems)
			items := make([]int, 0, args.Cols)
			for i := 0; i < args.NumRows; i++ {
				for _, id := range rowItems(args.Row(i), seen, items) {
					args.Accumulate(id, 0, 1)
				}
			}
			return nil
		},
	}
	t0 := time.Now()
	res1, err := eng.RunContext(context.Background(), spec1, src)
	if err != nil {
		return nil, err
	}
	timing.Reduce += time.Since(t0)
	timing.addReduceStats(res1.Stats.CPUTotal(), res1.Stats.CPUMax())
	one := res1.Object.Snapshot()
	freq1 := frequentItems(one, cfg.MinSupport)
	pairs := candidatePairs(freq1)
	if len(pairs) == 0 {
		return &AprioriResult{
			Frequent: assemble(one, freq1, nil, nil, cfg.MinSupport),
			Timing:   timing,
		}, nil
	}
	pairIdx := pairIndex(pairs)

	// Pass 2: candidate pair supports.
	spec2 := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: len(pairs), Elems: 1, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			seen := make([]bool, cfg.NumItems)
			items := make([]int, 0, args.Cols)
			for i := 0; i < args.NumRows; i++ {
				ids := rowItems(args.Row(i), seen, items)
				for a := 0; a < len(ids); a++ {
					for b := a + 1; b < len(ids); b++ {
						if idx, ok := pairIdx[[2]int{ids[a], ids[b]}]; ok {
							args.Accumulate(idx, 0, 1)
						}
					}
				}
			}
			return nil
		},
	}
	t0 = time.Now()
	res2, err := eng.RunContext(context.Background(), spec2, src)
	if err != nil {
		return nil, err
	}
	timing.Reduce += time.Since(t0)
	timing.addReduceStats(res2.Stats.CPUTotal(), res2.Stats.CPUMax())
	return &AprioriResult{
		Frequent: assemble(one, freq1, pairs, res2.Object.Snapshot(), cfg.MinSupport),
		Timing:   timing,
	}, nil
}

// AprioriMapReduce is the Map-Reduce baseline: pass 1 emits (item, 1)
// pairs, pass 2 emits (pairKey, 1) pairs, both with combiners — the
// classic formulation whose intermediate state FREERIDE avoids.
func AprioriMapReduce(tx *dataset.Matrix, cfg AprioriConfig) (*AprioriResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := mapreduce.New[int, float64](mapreduce.Config{
		Workers:   cfg.Engine.Threads,
		SplitRows: cfg.Engine.SplitRows,
	})
	sum := func(_ int, vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	}
	var timing Timing
	t0 := time.Now()
	out1, _, err := eng.Run(mapreduce.Spec[int, float64]{
		Map: func(a *mapreduce.MapArgs, emit func(int, float64)) error {
			seen := make([]bool, cfg.NumItems)
			items := make([]int, 0, a.Cols)
			for i := 0; i < a.NumRows; i++ {
				for _, id := range rowItems(a.Row(i), seen, items) {
					emit(id, 1)
				}
			}
			return nil
		},
		Reduce:  sum,
		Combine: sum,
	}, dataset.NewMemorySource(tx))
	if err != nil {
		return nil, err
	}
	one := make([]float64, cfg.NumItems)
	for id, s := range out1 {
		one[id] = s
	}
	freq1 := frequentItems(one, cfg.MinSupport)
	pairs := candidatePairs(freq1)
	pairIdx := pairIndex(pairs)
	pairSupports := make([]float64, len(pairs))
	if len(pairs) > 0 {
		out2, _, err := eng.Run(mapreduce.Spec[int, float64]{
			Map: func(a *mapreduce.MapArgs, emit func(int, float64)) error {
				seen := make([]bool, cfg.NumItems)
				items := make([]int, 0, a.Cols)
				for i := 0; i < a.NumRows; i++ {
					ids := rowItems(a.Row(i), seen, items)
					for x := 0; x < len(ids); x++ {
						for y := x + 1; y < len(ids); y++ {
							if idx, ok := pairIdx[[2]int{ids[x], ids[y]}]; ok {
								emit(idx, 1)
							}
						}
					}
				}
				return nil
			},
			Reduce:  sum,
			Combine: sum,
		}, dataset.NewMemorySource(tx))
		if err != nil {
			return nil, err
		}
		for idx, s := range out2 {
			pairSupports[idx] = s
		}
	}
	timing.Reduce = time.Since(t0)
	return &AprioriResult{
		Frequent: assemble(one, freq1, pairs, pairSupports, cfg.MinSupport),
		Timing:   timing,
	}, nil
}

// Apriori dispatches to the named version.
func Apriori(v Version, tx *dataset.Matrix, cfg AprioriConfig) (*AprioriResult, error) {
	switch v {
	case Seq:
		return AprioriSeq(tx, cfg)
	case ManualFR:
		return AprioriManualFR(tx, cfg)
	case MapReduce:
		return AprioriMapReduce(tx, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported apriori version %v", v)
	}
}

// GenerateTransactions synthesizes a market-basket dataset: n transactions
// of up to width items drawn from a skewed (roughly Zipfian) distribution
// over numItems items, padded with -1. Deterministic per seed.
func GenerateTransactions(n, width, numItems int, seed int64) *dataset.Matrix {
	m := dataset.NewMatrix(n, width)
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < n; i++ {
		row := m.Row(i)
		cnt := 1 + int(next()%uint64(width))
		for j := 0; j < width; j++ {
			if j < cnt {
				// Skew toward low item ids: square the uniform draw.
				u := float64(next()%1024) / 1024
				row[j] = float64(int(u * u * float64(numItems)))
			} else {
				row[j] = -1
			}
		}
	}
	return m
}
