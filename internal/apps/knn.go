package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// KNN classifies query points by majority vote among their K nearest
// training points (squared Euclidean distance). k-nearest-neighbour search
// was one of the original FREERIDE applications; its reduction object — a
// bounded list of the best candidates so far — is not a grid of combinable
// floats, so the ManualFR version exercises the engine's user-managed
// reduction object (Spec.LocalInit/LocalCombine).
//
// The training matrix holds one point per row with the label in the last
// column; queries use all columns.

// KNNConfig parameterizes a classification run.
type KNNConfig struct {
	// K is the neighbour count.
	K int
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
}

// KNNResult holds the predicted label per query and timing.
type KNNResult struct {
	Labels []int
	Timing Timing
}

// neighbour is one training-point candidate.
type neighbour struct {
	dist  float64
	index int // global row, the deterministic tie-breaker
	label int
}

// better orders candidates by distance, then by training-row index so that
// results are independent of processing order.
func (a neighbour) better(b neighbour) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.index < b.index
}

// knnState is the per-query bounded candidate list (ascending order).
type knnState struct {
	best []neighbour // len <= k
}

// insert adds a candidate, keeping the k best in order.
func (s *knnState) insert(k int, n neighbour) {
	pos := len(s.best)
	for pos > 0 && n.better(s.best[pos-1]) {
		pos--
	}
	if pos == k {
		return
	}
	if len(s.best) < k {
		s.best = append(s.best, neighbour{})
	}
	copy(s.best[pos+1:], s.best[pos:])
	s.best[pos] = n
}

// vote returns the majority label among the candidates; ties resolve to
// the smallest label.
func (s *knnState) vote() int {
	votes := map[int]int{}
	for _, n := range s.best {
		votes[n.label]++
	}
	best, bestCount := 0, -1
	for label, count := range votes {
		if count > bestCount || (count == bestCount && label < best) {
			best, bestCount = label, count
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var d float64
	for j := range a {
		diff := a[j] - b[j]
		d += diff * diff
	}
	return d
}

// KNNSeq is the sequential reference.
func KNNSeq(train, queries *dataset.Matrix, cfg KNNConfig) (*KNNResult, error) {
	if err := validateKNN(train, queries, cfg); err != nil {
		return nil, err
	}
	t0 := time.Now()
	dim := queries.Cols
	labels := make([]int, queries.Rows)
	for q := 0; q < queries.Rows; q++ {
		var st knnState
		query := queries.Row(q)
		for i := 0; i < train.Rows; i++ {
			row := train.Row(i)
			st.insert(cfg.K, neighbour{
				dist:  sqDist(query, row[:dim]),
				index: i,
				label: int(row[dim]),
			})
		}
		labels[q] = st.vote()
	}
	return &KNNResult{Labels: labels, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// KNNManualFR scans the training set once under FREERIDE, maintaining one
// bounded candidate list per query in the user-managed reduction object.
func KNNManualFR(train, queries *dataset.Matrix, cfg KNNConfig) (*KNNResult, error) {
	if err := validateKNN(train, queries, cfg); err != nil {
		return nil, err
	}
	dim := queries.Cols
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	spec := freeride.Spec{
		LocalInit: func() any { return make([]knnState, queries.Rows) },
		Reduction: func(args *freeride.ReductionArgs) error {
			states := args.Local.([]knnState)
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				global := args.Begin + i
				label := int(row[dim])
				for q := 0; q < queries.Rows; q++ {
					states[q].insert(cfg.K, neighbour{
						dist:  sqDist(queries.Row(q), row[:dim]),
						index: global,
						label: label,
					})
				}
			}
			return nil
		},
		LocalCombine: func(dst, src any) any {
			d := dst.([]knnState)
			s := src.([]knnState)
			for q := range d {
				for _, n := range s[q].best {
					d[q].insert(cfg.K, n)
				}
			}
			return d
		},
	}
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(train))
	if err != nil {
		return nil, err
	}
	states := res.Local.([]knnState)
	labels := make([]int, queries.Rows)
	for q := range states {
		labels[q] = states[q].vote()
	}
	return &KNNResult{Labels: labels, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

func validateKNN(train, queries *dataset.Matrix, cfg KNNConfig) error {
	if cfg.K < 1 {
		return fmt.Errorf("apps: k-NN needs K >= 1, got %d", cfg.K)
	}
	if train.Rows == 0 || queries.Rows == 0 {
		return fmt.Errorf("apps: k-NN needs non-empty train and query sets")
	}
	if train.Cols != queries.Cols+1 {
		return fmt.Errorf("apps: train must have queries.Cols+1 columns (label last): %d vs %d",
			train.Cols, queries.Cols)
	}
	return nil
}

// KNN dispatches to the named version.
func KNN(v Version, train, queries *dataset.Matrix, cfg KNNConfig) (*KNNResult, error) {
	switch v {
	case Seq:
		return KNNSeq(train, queries, cfg)
	case ManualFR:
		return KNNManualFR(train, queries, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported k-NN version %v", v)
	}
}
