package apps

import (
	"context"
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// EM fits a k-component spherical Gaussian mixture with
// expectation-maximization. EM clustering was one of the applications the
// FREERIDE line of work parallelized; unlike k-means its E-step makes
// *soft* assignments, so every point updates every cluster's cells of the
// reduction object — a denser accumulate pattern that stresses the
// reduction object differently.
//
// The reduction object has k groups × (dim+2) elements: per cluster the
// responsibility-weighted coordinate sums, the responsibility total, and
// the weighted squared-distance sum (for the variance update). Components
// keep fixed uniform weights and a shared spherical variance per cluster —
// the textbook simplification that keeps every version's arithmetic
// identical and deterministic.

// EMConfig parameterizes an EM run.
type EMConfig struct {
	// K is the mixture component count.
	K int
	// Iterations is the number of EM rounds.
	Iterations int
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
	// LinearizeWorkers > 1 enables the parallel-linearization extension.
	LinearizeWorkers int
}

func (c EMConfig) validate() error {
	if c.K < 1 {
		return fmt.Errorf("apps: EM needs K >= 1, got %d", c.K)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("apps: EM needs Iterations >= 1, got %d", c.Iterations)
	}
	return nil
}

// EMResult is the fitted mixture.
type EMResult struct {
	// Means is the K×dim component mean matrix.
	Means *dataset.Matrix
	// Variances is the per-component spherical variance.
	Variances []float64
	// Weights is the per-component responsibility mass from the last
	// iteration, normalized to sum to 1.
	Weights []float64
	// Timing is the phase breakdown.
	Timing Timing
}

// emState bundles the model parameters one E-step reads.
type emState struct {
	means     []float64 // k×dim flat
	variances []float64 // k
}

// emResponsibilities computes the E-step responsibilities of one point
// under the current model into resp (length k). The computation is shared
// verbatim by every version so results agree bit for bit.
func emResponsibilities(point []float64, st *emState, k, dim int, resp []float64) {
	// Unnormalized log densities with a shared floor for stability.
	maxLog := math.Inf(-1)
	for c := 0; c < k; c++ {
		v := st.variances[c]
		if v < 1e-6 {
			v = 1e-6
		}
		var d float64
		mu := st.means[c*dim : (c+1)*dim]
		for j := 0; j < dim; j++ {
			diff := point[j] - mu[j]
			d += diff * diff
		}
		l := -0.5*d/v - 0.5*float64(dim)*math.Log(v)
		resp[c] = l
		if l > maxLog {
			maxLog = l
		}
	}
	var sum float64
	for c := 0; c < k; c++ {
		resp[c] = math.Exp(resp[c] - maxLog)
		sum += resp[c]
	}
	for c := 0; c < k; c++ {
		resp[c] /= sum
	}
}

// emAccumulate folds one point's E-step into the flat k×(dim+2) sums.
func emAccumulate(point []float64, resp []float64, k, dim int, sums []float64, st *emState) {
	stride := dim + 2
	for c := 0; c < k; c++ {
		r := resp[c]
		base := c * stride
		for j := 0; j < dim; j++ {
			sums[base+j] += r * point[j]
		}
		sums[base+dim] += r
		mu := st.means[c*dim : (c+1)*dim]
		var d float64
		for j := 0; j < dim; j++ {
			diff := point[j] - mu[j]
			d += diff * diff
		}
		sums[base+dim+1] += r * d
	}
}

// emUpdate performs the M-step from accumulated sums, returning the new
// state; empty components keep their previous parameters.
func emUpdate(sums []float64, prev *emState, k, dim int) (*emState, []float64) {
	stride := dim + 2
	next := &emState{means: make([]float64, k*dim), variances: make([]float64, k)}
	weights := make([]float64, k)
	var totalMass float64
	for c := 0; c < k; c++ {
		mass := sums[c*stride+dim]
		totalMass += mass
		if mass < 1e-12 {
			copy(next.means[c*dim:(c+1)*dim], prev.means[c*dim:(c+1)*dim])
			next.variances[c] = prev.variances[c]
			continue
		}
		for j := 0; j < dim; j++ {
			next.means[c*dim+j] = sums[c*stride+j] / mass
		}
		next.variances[c] = sums[c*stride+dim+1] / (mass * float64(dim))
	}
	for c := 0; c < k; c++ {
		if totalMass > 0 {
			weights[c] = sums[c*stride+dim] / totalMass
		}
	}
	return next, weights
}

func emInitState(init *dataset.Matrix, k, dim int) *emState {
	st := &emState{means: make([]float64, k*dim), variances: make([]float64, k)}
	copy(st.means, init.Data)
	for c := range st.variances {
		st.variances[c] = 1
	}
	return st
}

// EMSeq is the sequential reference implementation.
func EMSeq(points, init *dataset.Matrix, cfg EMConfig) (*EMResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, points.Cols
	st := emInitState(init, k, dim)
	var weights []float64
	var timing Timing
	resp := make([]float64, k)
	for it := 0; it < cfg.Iterations; it++ {
		t0 := time.Now()
		sums := make([]float64, k*(dim+2))
		for i := 0; i < points.Rows; i++ {
			row := points.Row(i)
			emResponsibilities(row, st, k, dim, resp)
			emAccumulate(row, resp, k, dim, sums, st)
		}
		timing.Reduce += time.Since(t0)
		t0 = time.Now()
		st, weights = emUpdate(sums, st, k, dim)
		timing.Update += time.Since(t0)
	}
	return emResult(st, weights, k, dim, timing), nil
}

func emResult(st *emState, weights []float64, k, dim int, timing Timing) *EMResult {
	means := dataset.NewMatrix(k, dim)
	copy(means.Data, st.means)
	return &EMResult{Means: means, Variances: st.variances, Weights: weights, Timing: timing}
}

// EMManualFR is the hand-written FREERIDE version.
func EMManualFR(points, init *dataset.Matrix, cfg EMConfig) (*EMResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, points.Cols
	st := emInitState(init, k, dim)
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	var timing Timing
	timing.Threads = eng.Config().Threads
	src := dataset.NewMemorySource(points)
	var weights []float64
	err := runSessionLoop(context.Background(), eng, src, &timing, loopSpec{
		Iterations: cfg.Iterations,
		Spec: func(int) freeride.Spec {
			cur := st
			return freeride.Spec{
				Object: freeride.ObjectSpec{Groups: k, Elems: dim + 2, Op: robj.OpAdd},
				Reduction: func(args *freeride.ReductionArgs) error {
					resp := args.Scratch(0, k)
					local := args.Scratch(1, k*(dim+2))
					for i := range local {
						local[i] = 0
					}
					for i := 0; i < args.NumRows; i++ {
						row := args.Row(i)
						emResponsibilities(row, cur, k, dim, resp)
						emAccumulate(row, resp, k, dim, local, cur)
					}
					for c := 0; c < k; c++ {
						for e := 0; e < dim+2; e++ {
							args.Accumulate(c, e, local[c*(dim+2)+e])
						}
					}
					return nil
				},
			}
		},
		Fold: func(_ int, obj *robj.Object) error {
			st, weights = emUpdate(obj.Snapshot(), st, k, dim)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return emResult(st, weights, k, dim, timing), nil
}

// EMClass builds the translator input for EM: the per-point E-step kernel
// reading the model parameters through two hot variables (means as a
// k×dim structure, variances as a vector).
func EMClass(k, dim int, means, variances *chapel.Array) *core.ReductionClass {
	return &core.ReductionClass{
		Name:   "em",
		Object: freeride.ObjectSpec{Groups: k, Elems: dim + 2, Op: robj.OpAdd},
		Path:   []string{"coords"},
		HotVars: []core.HotVar{
			{Value: means, Path: []string{"coords"}},
			{Value: variances},
		},
		Kernel: func(elem *core.Vec, hot []*core.StateVec, args *freeride.ReductionArgs) {
			point := elem.Row(args.Scratch(0, dim))
			resp := args.Scratch(1, k)
			mu := args.Scratch(2, k*dim)
			for c := 1; c <= k; c++ {
				copy(mu[(c-1)*dim:c*dim], hot[0].Row(c, args.Scratch(3, dim)))
			}
			vars := hot[1].Row(1, args.Scratch(4, k))
			st := emState{means: mu, variances: vars}
			emResponsibilities(point, &st, k, dim, resp)
			local := args.Scratch(5, k*(dim+2))
			for i := range local {
				local[i] = 0
			}
			emAccumulate(point, resp, k, dim, local, &st)
			for c := 0; c < k; c++ {
				for e := 0; e < dim+2; e++ {
					if v := local[c*(dim+2)+e]; v != 0 {
						args.Accumulate(c, e, v)
					}
				}
			}
		},
	}
}

// EMTranslated runs EM through the Chapel→FREERIDE translation at the
// given optimization level.
func EMTranslated(boxedPoints *chapel.Array, init *dataset.Matrix, opt core.OptLevel, cfg EMConfig) (*EMResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k, dim := cfg.K, init.Cols
	st := emInitState(init, k, dim)
	boxedMeans := BoxPoints(init)
	boxedVars := BoxVector(st.variances)

	tr, err := core.TranslateWith(EMClass(k, dim, boxedMeans, boxedVars), boxedPoints, opt,
		core.TranslateOptions{LinearizeWorkers: cfg.LinearizeWorkers})
	if err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	src := tr.Source()
	var timing Timing
	timing.Threads = eng.Config().Threads
	timing.Linearize = tr.LinearizeTime
	var weights []float64
	err = runSessionLoop(context.Background(), eng, src, &timing, loopSpec{
		Iterations: cfg.Iterations,
		Spec:       func(int) freeride.Spec { return tr.Spec() },
		Fold: func(_ int, obj *robj.Object) error {
			st, weights = emUpdate(obj.Snapshot(), st, k, dim)
			// Write the new model back into the boxed hot variables so Post
			// can re-linearize them.
			for c := 0; c < k; c++ {
				coords := boxedMeans.At(c + 1).(*chapel.Record).Field("coords").(*chapel.Array)
				for j := 0; j < dim; j++ {
					coords.SetAt(j+1, &chapel.Real{Val: st.means[c*dim+j]})
				}
				boxedVars.SetAt(c+1, &chapel.Real{Val: st.variances[c]})
			}
			return nil
		},
		Post: func(int) error {
			hotBefore := tr.HotLinearizeTime
			tr.RefreshHotVars()
			timing.HotVar += tr.HotLinearizeTime - hotBefore
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return emResult(st, weights, k, dim, timing), nil
}

// EM dispatches to the named version.
func EM(v Version, points, init *dataset.Matrix, cfg EMConfig) (*EMResult, error) {
	switch v {
	case Seq:
		return EMSeq(points, init, cfg)
	case Generated:
		return EMTranslated(BoxPoints(points), init, core.OptNone, cfg)
	case Opt1:
		return EMTranslated(BoxPoints(points), init, core.Opt1, cfg)
	case Opt2:
		return EMTranslated(BoxPoints(points), init, core.Opt2, cfg)
	case ManualFR:
		return EMManualFR(points, init, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported EM version %v", v)
	}
}
