package apps

import (
	"math"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// emTestData builds two well-separated blobs so EM has an easy optimum.
func emTestData(n int) (*dataset.Matrix, *dataset.Matrix) {
	points, _ := dataset.GaussianMixture(n, 2, 2, 5)
	init := dataset.NewMatrix(2, 2)
	copy(init.Data, points.Data[:4])
	return points, init
}

func emClose(t *testing.T, name string, got, want *EMResult, tol float64) {
	t.Helper()
	for i := range want.Means.Data {
		if math.Abs(got.Means.Data[i]-want.Means.Data[i]) > tol*(math.Abs(want.Means.Data[i])+1) {
			t.Fatalf("%s: mean[%d] = %v, want %v", name, i, got.Means.Data[i], want.Means.Data[i])
		}
	}
	for c := range want.Variances {
		if math.Abs(got.Variances[c]-want.Variances[c]) > tol*(want.Variances[c]+1) {
			t.Fatalf("%s: var[%d] = %v, want %v", name, c, got.Variances[c], want.Variances[c])
		}
		if math.Abs(got.Weights[c]-want.Weights[c]) > tol {
			t.Fatalf("%s: weight[%d] = %v, want %v", name, c, got.Weights[c], want.Weights[c])
		}
	}
}

func TestEMAllVersionsAgree(t *testing.T) {
	points, init := emTestData(600)
	cfg := EMConfig{K: 2, Iterations: 4, Engine: freeride.Config{Threads: 4, SplitRows: 64}}
	ref, err := EMSeq(points, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Version{Generated, Opt1, Opt2, ManualFR} {
		got, err := EM(v, points, init, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		// Soft assignments sum in different orders across versions; allow
		// tight relative tolerance.
		emClose(t, v.String(), got, ref, 1e-6)
	}
}

func TestEMFindsSeparatedClusters(t *testing.T) {
	// Two blobs at (0,0) and (20,20); EM must place one mean near each.
	n := 400
	m := dataset.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		base := float64(i%2) * 20
		m.Set(i, 0, base+float64(i%7)*0.1)
		m.Set(i, 1, base+float64(i%5)*0.1)
	}
	init := dataset.NewMatrix(2, 2)
	init.Set(0, 0, 1)
	init.Set(0, 1, 1)
	init.Set(1, 0, 19)
	init.Set(1, 1, 19)
	res, err := EMManualFR(m, init, EMConfig{K: 2, Iterations: 10, Engine: freeride.Config{Threads: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d0 := math.Hypot(res.Means.At(0, 0)-0.3, res.Means.At(0, 1)-0.2)
	d1 := math.Hypot(res.Means.At(1, 0)-20.3, res.Means.At(1, 1)-20.2)
	if d0 > 1 || d1 > 1 {
		t.Fatalf("means not at the blobs: %v", res.Means.Data)
	}
	if math.Abs(res.Weights[0]-0.5) > 0.05 || math.Abs(res.Weights[1]-0.5) > 0.05 {
		t.Fatalf("weights = %v, want ~0.5 each", res.Weights)
	}
}

func TestEMThreadInvariance(t *testing.T) {
	points, init := emTestData(500)
	var ref *EMResult
	for _, threads := range []int{1, 2, 4} {
		cfg := EMConfig{K: 2, Iterations: 3, Engine: freeride.Config{Threads: threads, SplitRows: 50}}
		res, err := EMManualFR(points, init, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		emClose(t, "threads", res, ref, 1e-9)
	}
}

func TestEMValidationAndVersions(t *testing.T) {
	points, init := emTestData(20)
	if _, err := EMSeq(points, init, EMConfig{K: 0, Iterations: 1}); err == nil {
		t.Fatal("K=0: want error")
	}
	if _, err := EMSeq(points, init, EMConfig{K: 2, Iterations: 0}); err == nil {
		t.Fatal("Iterations=0: want error")
	}
	if _, err := EM(MapReduce, points, init, EMConfig{K: 2, Iterations: 1}); err == nil {
		t.Fatal("unsupported version: want error")
	}
}

func TestEMEmptyComponentKeepsParameters(t *testing.T) {
	// One far-away initial mean attracts essentially zero responsibility
	// once variances tighten; parameters must not become NaN.
	m := dataset.NewMatrix(50, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % 3)
	}
	init := dataset.NewMatrix(2, 1)
	init.Set(0, 0, 1)
	init.Set(1, 0, 1e9)
	res, err := EMSeq(m, init, EMConfig{K: 2, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range append(append([]float64{}, res.Means.Data...), res.Variances...) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite parameter: means=%v vars=%v", res.Means.Data, res.Variances)
		}
	}
}
