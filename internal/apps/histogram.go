package apps

import (
	"context"
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/mapreduce"
	"chapelfreeride/internal/robj"
)

// Histogram bins the first column of the dataset into Bins equal-width
// buckets over [Lo, Hi); values outside the range clamp to the edge
// buckets. It is the simplest generalized reduction — the quickstart
// application — and exists in every version: Seq, ChapelNative, the three
// translated levels, ManualFR, and MapReduce.

// HistogramConfig parameterizes a histogram run.
type HistogramConfig struct {
	// Bins is the bucket count.
	Bins int
	// Lo, Hi bound the value range; width (Hi-Lo)/Bins.
	Lo, Hi float64
	// Engine configures the FREERIDE engine (and sizes the MapReduce and
	// Chapel runtimes).
	Engine freeride.Config
}

func (c HistogramConfig) validate() error {
	if c.Bins < 1 {
		return fmt.Errorf("apps: histogram needs Bins >= 1, got %d", c.Bins)
	}
	if !(c.Hi > c.Lo) {
		return fmt.Errorf("apps: histogram needs Hi > Lo, got [%v, %v)", c.Lo, c.Hi)
	}
	return nil
}

// bucket maps a value to its bin, clamping out-of-range values.
func (c HistogramConfig) bucket(v float64) int {
	b := int(math.Floor((v - c.Lo) / (c.Hi - c.Lo) * float64(c.Bins)))
	if b < 0 {
		return 0
	}
	if b >= c.Bins {
		return c.Bins - 1
	}
	return b
}

// HistogramResult holds the bin counts and timing.
type HistogramResult struct {
	Counts []float64
	Timing Timing
}

// HistogramSeq is the sequential reference.
func HistogramSeq(data *dataset.Matrix, cfg HistogramConfig) (*HistogramResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	counts := make([]float64, cfg.Bins)
	for i := 0; i < data.Rows; i++ {
		counts[cfg.bucket(data.At(i, 0))]++
	}
	return &HistogramResult{Counts: counts, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// HistogramManualFR is the hand-written FREERIDE version.
func HistogramManualFR(data *dataset.Matrix, cfg HistogramConfig) (*HistogramResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: cfg.Bins, Elems: 1, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				args.Accumulate(cfg.bucket(args.Row(i)[0]), 0, 1)
			}
			return nil
		},
	}
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(data))
	if err != nil {
		return nil, err
	}
	counts := make([]float64, cfg.Bins)
	copy(counts, res.Object.Snapshot())
	return &HistogramResult{Counts: counts, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// histogramOp is the Chapel-native reduction class for the histogram.
type histogramOp struct {
	cfg    HistogramConfig
	counts []float64
}

// Clone implements chapel.ReduceScanOp.
func (o *histogramOp) Clone() chapel.ReduceScanOp {
	return &histogramOp{cfg: o.cfg, counts: make([]float64, o.cfg.Bins)}
}

// Accumulate implements chapel.ReduceScanOp.
func (o *histogramOp) Accumulate(x chapel.Value) {
	o.counts[o.cfg.bucket(chapel.AsReal(x))]++
}

// Combine implements chapel.ReduceScanOp.
func (o *histogramOp) Combine(other chapel.ReduceScanOp) {
	for i, v := range other.(*histogramOp).counts {
		o.counts[i] += v
	}
}

// Generate implements chapel.ReduceScanOp.
func (o *histogramOp) Generate() chapel.Value { return chapel.RealArray(o.counts...) }

// HistogramChapelNative runs the histogram as a user-defined Chapel
// reduction over the boxed first column.
func HistogramChapelNative(data *dataset.Matrix, cfg HistogramConfig) (*HistogramResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	col := make([]float64, data.Rows)
	for i := range col {
		col[i] = data.At(i, 0)
	}
	boxed := chapel.RealArray(col...)
	tasks := cfg.Engine.Threads
	t0 := time.Now()
	op := &histogramOp{cfg: cfg, counts: make([]float64, cfg.Bins)}
	out := chapel.Reduce(op, chapel.Over(boxed), tasks).(*chapel.Array)
	counts := make([]float64, cfg.Bins)
	for i := range counts {
		counts[i] = out.At(i + 1).(*chapel.Real).Val
	}
	return &HistogramResult{Counts: counts, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// HistogramClass is the translator input for the histogram: a flat
// [1..n] real dataset (each value one element) and no hot variables.
func HistogramClass(cfg HistogramConfig) *core.ReductionClass {
	return &core.ReductionClass{
		Name:   "histogram",
		Object: freeride.ObjectSpec{Groups: cfg.Bins, Elems: 1, Op: robj.OpAdd},
		Kernel: func(elem *core.Vec, _ []*core.StateVec, args *freeride.ReductionArgs) {
			args.Accumulate(cfg.bucket(elem.At(0)), 0, 1)
		},
	}
}

// HistogramTranslated runs the histogram through the Chapel→FREERIDE
// translation at the given optimization level, boxing the first column as
// a Chapel [1..n] real array.
func HistogramTranslated(data *dataset.Matrix, opt core.OptLevel, cfg HistogramConfig) (*HistogramResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	col := make([]float64, data.Rows)
	for i := range col {
		col[i] = data.At(i, 0)
	}
	boxed := chapel.RealArray(col...)
	tr, err := core.Translate(HistogramClass(cfg), boxed, opt)
	if err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), tr.Spec(), tr.Source())
	if err != nil {
		return nil, err
	}
	counts := make([]float64, cfg.Bins)
	copy(counts, res.Object.Snapshot())
	return &HistogramResult{
		Counts: counts,
		Timing: Timing{Linearize: tr.LinearizeTime, Reduce: time.Since(t0)},
	}, nil
}

// HistogramMapReduce is the Map-Reduce baseline with a combiner.
func HistogramMapReduce(data *dataset.Matrix, cfg HistogramConfig) (*HistogramResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := mapreduce.New[int, float64](mapreduce.Config{
		Workers:   cfg.Engine.Threads,
		SplitRows: cfg.Engine.SplitRows,
	})
	sum := func(_ int, vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	}
	spec := mapreduce.Spec[int, float64]{
		Map: func(a *mapreduce.MapArgs, emit func(int, float64)) error {
			for i := 0; i < a.NumRows; i++ {
				emit(cfg.bucket(a.Row(i)[0]), 1)
			}
			return nil
		},
		Reduce:  sum,
		Combine: sum,
	}
	t0 := time.Now()
	out, _, err := eng.Run(spec, dataset.NewMemorySource(data))
	if err != nil {
		return nil, err
	}
	counts := make([]float64, cfg.Bins)
	for b, v := range out {
		counts[b] = v
	}
	return &HistogramResult{Counts: counts, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// Histogram dispatches to the named version.
func Histogram(v Version, data *dataset.Matrix, cfg HistogramConfig) (*HistogramResult, error) {
	switch v {
	case Seq:
		return HistogramSeq(data, cfg)
	case ChapelNative:
		return HistogramChapelNative(data, cfg)
	case Generated:
		return HistogramTranslated(data, core.OptNone, cfg)
	case Opt1:
		return HistogramTranslated(data, core.Opt1, cfg)
	case Opt2:
		return HistogramTranslated(data, core.Opt2, cfg)
	case ManualFR:
		return HistogramManualFR(data, cfg)
	case MapReduce:
		return HistogramMapReduce(data, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported histogram version %v", v)
	}
}
