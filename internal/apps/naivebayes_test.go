package apps

import (
	"math/rand"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// nbData builds a labelled dataset: class 0 clusters near 2, class 1 near 8
// (both features), labels in the last column.
func nbData(n int, seed int64) *dataset.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dataset.NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		class := i % 2
		base := 2.0 + float64(class)*6
		m.Set(i, 0, base+rng.NormFloat64())
		m.Set(i, 1, base+rng.NormFloat64())
		m.Set(i, 2, float64(class))
	}
	return m
}

func nbCfg() NaiveBayesConfig {
	return NaiveBayesConfig{
		Classes: 2, Bins: 10, Lo: 0, Hi: 10,
		Engine: freeride.Config{Threads: 4, SplitRows: 64},
	}
}

func TestNaiveBayesSeqAndFRAgree(t *testing.T) {
	train := nbData(2000, 1)
	seq, err := NaiveBayesTrainSeq(train, nbCfg())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NaiveBayesTrainFR(train, nbCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Count tables are integer sums — must match exactly.
	for c := 0; c < 2; c++ {
		if seq.classCounts[c] != fr.classCounts[c] {
			t.Fatalf("class %d count: %v vs %v", c, seq.classCounts[c], fr.classCounts[c])
		}
		for i := range seq.featureCounts[c] {
			if seq.featureCounts[c][i] != fr.featureCounts[c][i] {
				t.Fatalf("class %d cell %d differs", c, i)
			}
		}
	}
}

func TestNaiveBayesLearnsSeparableClasses(t *testing.T) {
	train := nbData(4000, 2)
	test := nbData(1000, 3)
	model, err := NaiveBayesTrainFR(train, nbCfg())
	if err != nil {
		t.Fatal(err)
	}
	if acc := NaiveBayesAccuracy(model, test); acc < 0.95 {
		t.Fatalf("accuracy %.3f on well-separated classes, want ≥ 0.95", acc)
	}
	// Obvious points classify correctly.
	if model.Predict([]float64{2, 2}) != 0 || model.Predict([]float64{8, 8}) != 1 {
		t.Fatal("predictions on cluster centers wrong")
	}
	if model.Timing.Reduce <= 0 {
		t.Fatal("training time missing")
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	train := nbData(10, 4)
	bad := nbCfg()
	bad.Classes = 1
	if _, err := NaiveBayesTrainSeq(train, bad); err == nil {
		t.Fatal("Classes=1: want error")
	}
	bad = nbCfg()
	bad.Bins = 0
	if _, err := NaiveBayesTrainSeq(train, bad); err == nil {
		t.Fatal("Bins=0: want error")
	}
	bad = nbCfg()
	bad.Hi = bad.Lo
	if _, err := NaiveBayesTrainFR(train, bad); err == nil {
		t.Fatal("Hi==Lo: want error")
	}
	// Label out of range is reported from both trainers.
	train.Set(3, 2, 9)
	if _, err := NaiveBayesTrainSeq(train, nbCfg()); err == nil {
		t.Fatal("bad label: want error (seq)")
	}
	if _, err := NaiveBayesTrainFR(train, nbCfg()); err == nil {
		t.Fatal("bad label: want error (FR)")
	}
	// Need at least one feature column.
	labelsOnly := dataset.NewMatrix(5, 1)
	if _, err := NaiveBayesTrainSeq(labelsOnly, nbCfg()); err == nil {
		t.Fatal("no features: want error")
	}
	if _, err := NaiveBayesTrainFR(labelsOnly, nbCfg()); err == nil {
		t.Fatal("no features: want error (FR)")
	}
}

func TestNaiveBayesSmoothingHandlesUnseenBins(t *testing.T) {
	// Tiny training set; a query in a bin never seen during training must
	// not produce -Inf scores or panic.
	train := dataset.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		train.Set(i, 0, 2+float64(i%2)*6)
		train.Set(i, 1, float64(i%2))
	}
	cfg := NaiveBayesConfig{Classes: 2, Bins: 10, Lo: 0, Hi: 10, Engine: freeride.Config{Threads: 1}}
	model, err := NaiveBayesTrainSeq(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := model.Predict([]float64{9.9})
	if got != 0 && got != 1 {
		t.Fatalf("prediction %d out of range", got)
	}
	if NaiveBayesAccuracy(model, dataset.NewMatrix(0, 2)) != 0 {
		t.Fatal("empty test set accuracy should be 0")
	}
}
