package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// intPoints builds an n×dim matrix of small integer-valued floats so that
// all-version comparisons are exact (float addition on small integers is
// associative in effect).
func intPoints(n, dim int, seed int64) *dataset.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := dataset.NewMatrix(n, dim)
	for i := range m.Data {
		m.Data[i] = float64(rng.Intn(1000))
	}
	return m
}

// initCentroids picks the first k points, the usual deterministic seeding.
func initCentroids(points *dataset.Matrix, k int) *dataset.Matrix {
	c := dataset.NewMatrix(k, points.Cols)
	copy(c.Data, points.Data[:k*points.Cols])
	return c
}

func allKMeansVersions() []Version {
	return []Version{Seq, ChapelNative, Generated, Opt1, Opt2, Opt3, ManualFR, MapReduce}
}

func TestKMeansAllVersionsAgree(t *testing.T) {
	const n, k, dim, iters = 400, 5, 3, 4
	points := intPoints(n, dim, 1)
	init := initCentroids(points, k)
	cfg := KMeansConfig{K: k, Iterations: iters, Engine: freeride.Config{Threads: 4, SplitRows: 64}}
	ref, err := KMeansSeq(points, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range allKMeansVersions() {
		got, err := KMeans(v, points, init, cfg)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !got.Centroids.Equal(ref.Centroids) {
			t.Fatalf("%v: centroids diverge from sequential", v)
		}
		for c := range ref.Counts {
			if got.Counts[c] != ref.Counts[c] {
				t.Fatalf("%v: counts diverge: %v vs %v", v, got.Counts, ref.Counts)
			}
		}
	}
}

func TestKMeansMapReduceCombinerEquivalent(t *testing.T) {
	points := intPoints(300, 2, 2)
	init := initCentroids(points, 3)
	base := KMeansConfig{K: 3, Iterations: 3, Engine: freeride.Config{Threads: 4, SplitRows: 32}}
	withoutC, err := KMeansMapReduce(points, init, base)
	if err != nil {
		t.Fatal(err)
	}
	withCfg := base
	withCfg.UseCombiner = true
	withC, err := KMeansMapReduce(points, init, withCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !withC.Centroids.Equal(withoutC.Centroids) {
		t.Fatal("combiner changed the k-means result")
	}
}

func TestKMeansThreadInvariance(t *testing.T) {
	points := intPoints(500, 4, 3)
	init := initCentroids(points, 4)
	var ref *dataset.Matrix
	for _, threads := range []int{1, 2, 4, 8} {
		cfg := KMeansConfig{K: 4, Iterations: 3, Engine: freeride.Config{Threads: threads, SplitRows: 50}}
		res, err := KMeansTranslated(BoxPoints(points), init, 2, cfg) // Opt2
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Centroids
			continue
		}
		if !res.Centroids.Equal(ref) {
			t.Fatalf("threads=%d: result depends on thread count", threads)
		}
	}
}

func TestKMeansEmptyClusterKeepsCentroid(t *testing.T) {
	// Two coincident far points and a centroid no point will choose.
	points := dataset.NewMatrix(2, 1)
	points.Set(0, 0, 100)
	points.Set(1, 0, 100)
	init := dataset.NewMatrix(2, 1)
	init.Set(0, 0, 100) // wins every point
	init.Set(1, 0, -100)
	cfg := KMeansConfig{K: 2, Iterations: 2, Engine: freeride.Config{Threads: 2}}
	res, err := KMeansSeq(points, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.At(1, 0) != -100 {
		t.Fatalf("empty cluster centroid moved: %v", res.Centroids.At(1, 0))
	}
	if res.Counts[0] != 2 || res.Counts[1] != 0 {
		t.Fatalf("counts = %v", res.Counts)
	}
	// Parallel versions preserve the same behaviour.
	fr, err := KMeansManualFR(points, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Centroids.Equal(res.Centroids) {
		t.Fatal("manual FR diverges on empty cluster")
	}
}

func TestKMeansValidation(t *testing.T) {
	points := intPoints(10, 2, 4)
	init := initCentroids(points, 2)
	if _, err := KMeansSeq(points, init, KMeansConfig{K: 0, Iterations: 1}); err == nil {
		t.Fatal("K=0: want error")
	}
	if _, err := KMeansSeq(points, init, KMeansConfig{K: 2, Iterations: 0}); err == nil {
		t.Fatal("Iterations=0: want error")
	}
	if _, err := KMeans(Version(99), points, init, KMeansConfig{K: 2, Iterations: 1}); err == nil {
		t.Fatal("unknown version: want error")
	}
}

func TestVersionStrings(t *testing.T) {
	want := map[Version]string{
		Seq: "sequential", ChapelNative: "chapel-native", Generated: "generated",
		Opt1: "opt-1", Opt2: "opt-2", Opt3: "opt-3", ManualFR: "manual FR", MapReduce: "map-reduce",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("version %d = %q, want %q", int(v), v.String(), s)
		}
	}
	if Version(42).String() != "version(42)" {
		t.Error("unknown version string")
	}
}

func TestTimingTotal(t *testing.T) {
	tm := Timing{Linearize: 1, HotVar: 2, Reduce: 3, Update: 4}
	if tm.Total() != 10 {
		t.Fatalf("Total = %v", tm.Total())
	}
}

func TestKMeansTimingPopulated(t *testing.T) {
	points := intPoints(200, 3, 5)
	init := initCentroids(points, 3)
	cfg := KMeansConfig{K: 3, Iterations: 2, Engine: freeride.Config{Threads: 2, SplitRows: 32}}
	res, err := KMeansTranslated(BoxPoints(points), init, 2, cfg) // Opt2
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Linearize <= 0 {
		t.Fatal("translated version must report linearization time")
	}
	if res.Timing.Reduce <= 0 {
		t.Fatal("reduce time missing")
	}
	if res.Timing.Total() < res.Timing.Reduce {
		t.Fatal("total must include all phases")
	}
}

func TestBoxUnboxRoundTrip(t *testing.T) {
	m := intPoints(7, 3, 6)
	if got, err := UnboxMatrix(BoxPoints(m), "coords"); err != nil || !got.Equal(m) {
		t.Fatalf("BoxPoints/UnboxMatrix round trip: %v", err)
	}
	if got, err := UnboxMatrix(BoxMatrix(m), ""); err != nil || !got.Equal(m) {
		t.Fatalf("BoxMatrix/UnboxMatrix round trip: %v", err)
	}
	empty, err := UnboxMatrix(BoxMatrix(dataset.NewMatrix(0, 3)), "")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rows != 0 {
		t.Fatal("empty unbox")
	}
	if _, err := UnboxMatrix(chapel.RealArray(1, 2, 3), ""); err == nil {
		t.Fatal("UnboxMatrix over a flat real array must error, not panic")
	}
	v := BoxVector([]float64{1, 2, 3})
	if v.Len() != 3 || v.At(2).(*chapel.Real).Val != 2 {
		t.Fatal("BoxVector")
	}
}

// Property: the fused opt-3 version is bit-identical to per-element opt-2
// and to manual FREERIDE across schedulers × sharing strategies ×
// 1/2/4/8 threads (integer inputs keep float addition exact). This is the
// invariant the fused path must defend: batching accumulation into
// worker-local buffers flushed once per split must not change a single bit
// of the result under any execution configuration.
func TestPropertyFusedKMeansMatchesOpt2AndManual(t *testing.T) {
	policies := []sched.Policy{sched.Static, sched.Dynamic, sched.Guided, sched.WorkStealing}
	strategies := []robj.Strategy{
		robj.FullReplication, robj.FullLocking, robj.OptimizedFullLocking,
		robj.FixedLocking, robj.AtomicCAS,
	}
	threadChoices := []int{1, 2, 4, 8}
	f := func(seed int64, pick uint8, nRaw, thrRaw uint8) bool {
		n := int(nRaw%150) + 20
		threads := threadChoices[int(thrRaw)%len(threadChoices)]
		policy := policies[int(pick)%len(policies)]
		strategy := strategies[int(pick/8)%len(strategies)]
		const k = 3
		points := intPoints(n, 2, seed)
		init := initCentroids(points, k)
		cfg := KMeansConfig{K: k, Iterations: 2, Engine: freeride.Config{
			Threads: threads, SplitRows: 16, Scheduler: policy, Strategy: strategy,
		}}
		fused, err := KMeans(Opt3, points, init, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, v := range []Version{Opt2, ManualFR} {
			ref, err := KMeans(v, points, init, cfg)
			if err != nil {
				t.Log(err)
				return false
			}
			if !fused.Centroids.Equal(ref.Centroids) {
				t.Logf("opt-3 diverges from %v (policy %v, strategy %v, threads %d, n %d)",
					v, policy, strategy, threads, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(52))}); err != nil {
		t.Fatal(err)
	}
}

// Property: every version matches the sequential reference for random
// integer inputs across random thread counts.
func TestPropertyKMeansVersionsMatchSeq(t *testing.T) {
	versions := []Version{ChapelNative, Generated, Opt1, Opt2, Opt3, ManualFR, MapReduce}
	f := func(seed int64, nRaw, kRaw, thrRaw uint8) bool {
		n := int(nRaw%150) + 20
		k := int(kRaw%4) + 1
		threads := int(thrRaw%4) + 1
		points := intPoints(n, 2, seed)
		init := initCentroids(points, k)
		cfg := KMeansConfig{K: k, Iterations: 2, Engine: freeride.Config{Threads: threads, SplitRows: 16}}
		ref, err := KMeansSeq(points, init, cfg)
		if err != nil {
			return false
		}
		v := versions[int(uint64(seed)%uint64(len(versions)))]
		got, err := KMeans(v, points, init, cfg)
		if err != nil {
			return false
		}
		return got.Centroids.Equal(ref.Centroids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(51))}); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansClusterMatchesSingleNode(t *testing.T) {
	points := intPoints(600, 3, 8)
	init := initCentroids(points, 4)
	ref, err := KMeansSeq(points, init, KMeansConfig{K: 4, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range []cluster.Transport{cluster.InProcess, cluster.TCP} {
		for _, nodes := range []int{1, 2, 5} {
			res, err := KMeansCluster(points, init, KMeansClusterConfig{
				K: 4, Iterations: 3, Nodes: nodes,
				PerNode:   freeride.Config{Threads: 2, SplitRows: 32},
				Transport: transport,
				Combine:   cluster.Tree,
			})
			if err != nil {
				t.Fatalf("%v/nodes=%d: %v", transport, nodes, err)
			}
			if !res.Centroids.Equal(ref.Centroids) {
				t.Fatalf("%v/nodes=%d: centroids diverge", transport, nodes)
			}
			if transport == cluster.TCP && nodes > 1 && res.BytesMoved == 0 {
				t.Fatal("TCP moved no bytes")
			}
		}
	}
	if _, err := KMeansCluster(points, init, KMeansClusterConfig{K: 0, Iterations: 1}); err == nil {
		t.Fatal("K=0: want error")
	}
}
