// Package apps implements the paper's evaluation applications — k-means
// clustering and Principal Component Analysis — in every version the paper
// compares (§V), plus three extension applications (histogram, k-nearest
// neighbours, linear regression) that exercise the same generalized
// reduction structure.
//
// Versions per application:
//
//	Seq          — sequential reference implementation (ground truth)
//	ChapelNative — the paper's Fig. 3 style: a chapel.ReduceScanOp over
//	               boxed Chapel data, run by the pure Chapel runtime
//	Generated    — Chapel translated to FREERIDE, no optimizations (OptNone)
//	Opt1         — + strength reduction of ComputeIndex
//	Opt2         — + hot-variable linearization
//	Opt3         — + split-granular kernel fusion (beyond the paper)
//	ManualFR     — hand-written against the FREERIDE API (the paper's
//	               "manual FR")
//	MapReduce    — the Phoenix-style Map-Reduce baseline (Fig. 4, right)
//
// All versions of an application make identical algorithmic decisions
// (nearest-centroid ties resolve to the lowest index, identical update
// rules), so on integer-valued inputs they produce bit-identical results —
// which the tests assert.
package apps

import (
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/dataset"
)

// Version identifies one implementation of an application.
type Version int

const (
	// Seq is the sequential reference.
	Seq Version = iota
	// ChapelNative runs the reduction on the pure Chapel runtime analog.
	ChapelNative
	// Generated is the unoptimized Chapel→FREERIDE translation.
	Generated
	// Opt1 adds strength reduction.
	Opt1
	// Opt2 adds hot-variable linearization.
	Opt2
	// Opt3 adds split-granular kernel fusion (beyond the paper: the engine
	// runs a devirtualized block kernel per split instead of the per-element
	// callback, flushing worker-local buffers into the reduction object once
	// per split).
	Opt3
	// ManualFR is hand-written FREERIDE code.
	ManualFR
	// MapReduce is the Map-Reduce baseline.
	MapReduce
)

// String returns the version's name as used in the paper's figures.
func (v Version) String() string {
	switch v {
	case Seq:
		return "sequential"
	case ChapelNative:
		return "chapel-native"
	case Generated:
		return "generated"
	case Opt1:
		return "opt-1"
	case Opt2:
		return "opt-2"
	case Opt3:
		return "opt-3"
	case ManualFR:
		return "manual FR"
	case MapReduce:
		return "map-reduce"
	default:
		return fmt.Sprintf("version(%d)", int(v))
	}
}

// Timing is the phase breakdown shared by the applications.
type Timing struct {
	// Linearize is the input linearization cost (translated versions only;
	// the paper's overhead source 1, performed sequentially).
	Linearize time.Duration
	// HotVar is the opt-2 hot-variable (re)linearization cost.
	HotVar time.Duration
	// Reduce is the total parallel reduction wall time across iterations.
	Reduce time.Duration
	// Update is the non-reduction algorithmic work (e.g. centroid update).
	Update time.Duration
	// ReduceCPU is the summed worker CPU time of the reduction passes,
	// when the platform supports per-thread accounting (Linux); 0 otherwise.
	ReduceCPU time.Duration
	// ReduceCPUMax sums each pass's critical path (largest per-worker CPU).
	// On a machine with one core per worker this bounds reduction wall
	// time; note that when the host has fewer cores than workers the value
	// is distorted by time-slicing (a worker that happens to run first
	// drains more splits), so the scaling estimates use the
	// perfect-balance model instead and report this only as a diagnostic.
	ReduceCPUMax time.Duration
	// Threads is the worker count of the engine runs behind ReduceCPU.
	Threads int
}

// Total returns the end-to-end wall time.
func (t Timing) Total() time.Duration { return t.Linearize + t.HotVar + t.Reduce + t.Update }

// Balance reports the measured reduce-phase balance, total worker CPU over
// the critical path (1 = fully serialized, Threads = perfectly balanced).
// Distorted on hosts with fewer cores than workers; diagnostic only.
func (t Timing) Balance() float64 {
	if t.ReduceCPUMax <= 0 {
		return 1
	}
	return float64(t.ReduceCPU) / float64(t.ReduceCPUMax)
}

// EstTotal estimates the end-to-end wall time on a machine with one core
// per worker: the serial phases (linearization, hot-var refresh, update)
// plus the reduction CPU work divided evenly across workers. The even split
// is justified by the dynamic scheduler handing out many splits per worker
// (the engine defaults and the harness both ensure ≥8); sched's property
// tests verify the split distribution. This is how the harness reproduces
// the paper's thread-scaling figures when the reproduction machine has
// fewer cores than the paper's 8-core testbed. Falls back to wall Total
// when per-thread CPU accounting is unavailable.
func (t Timing) EstTotal() time.Duration {
	if t.ReduceCPU <= 0 || t.Threads <= 0 {
		return t.Total()
	}
	return t.Linearize + t.HotVar + t.Update + t.ReduceCPU/time.Duration(t.Threads)
}

// addReduceStats folds one engine pass's CPU accounting into the timing.
func (t *Timing) addReduceStats(cpuTotal, cpuMax time.Duration) {
	t.ReduceCPU += cpuTotal
	t.ReduceCPUMax += cpuMax
}

// BoxPoints converts an n×dim matrix into the boxed Chapel dataset the
// paper's k-means operates on: [1..n] Point where Point is
// record { coords: [1..dim] real } — the nested structure whose
// linearization the translator performs.
func BoxPoints(m *dataset.Matrix) *chapel.Array {
	pt := chapel.RecordType("Point",
		chapel.Field{Name: "coords", Type: chapel.ArrayType(chapel.RealType(), 1, m.Cols)})
	data := chapel.NewArray(chapel.ArrayType(pt, 1, m.Rows))
	for i := 0; i < m.Rows; i++ {
		coords := data.At(i + 1).(*chapel.Record).Field("coords").(*chapel.Array)
		row := m.Row(i)
		for j := 0; j < m.Cols; j++ {
			coords.SetAt(j+1, &chapel.Real{Val: row[j]})
		}
	}
	return data
}

// BoxMatrix converts an n×dim matrix into a boxed Chapel array-of-arrays
// [1..n][1..dim] real — PCA's data shape, which "does not use complex or
// nested data structures" (no records).
func BoxMatrix(m *dataset.Matrix) *chapel.Array {
	rowTy := chapel.ArrayType(chapel.RealType(), 1, m.Cols)
	data := chapel.NewArray(chapel.ArrayType(rowTy, 1, m.Rows))
	for i := 0; i < m.Rows; i++ {
		boxedRow := data.At(i + 1).(*chapel.Array)
		row := m.Row(i)
		for j := 0; j < m.Cols; j++ {
			boxedRow.SetAt(j+1, &chapel.Real{Val: row[j]})
		}
	}
	return data
}

// BoxVector converts a vector into a boxed [1..n] real Chapel array.
func BoxVector(v []float64) *chapel.Array {
	return chapel.RealArray(v...)
}

// UnboxMatrix converts a boxed [1..n] record{field: [1..m] real} or
// [1..n][1..m] real structure back into a matrix. The element shape comes
// from the caller, so a mismatch is reported as an error rather than a
// panic.
func UnboxMatrix(a *chapel.Array, field string) (*dataset.Matrix, error) {
	n := a.Len()
	if n == 0 {
		return dataset.NewMatrix(0, 0), nil
	}
	first := a.At(a.Ty.Lo)
	var width int
	switch e := first.(type) {
	case *chapel.Record:
		width = e.Field(field).(*chapel.Array).Len()
	case *chapel.Array:
		width = e.Len()
	default:
		return nil, fmt.Errorf("apps: UnboxMatrix over %s: element is neither a record nor an array", a.Ty)
	}
	m := dataset.NewMatrix(n, width)
	for i := 0; i < n; i++ {
		var inner *chapel.Array
		switch e := a.At(a.Ty.Lo + i).(type) {
		case *chapel.Record:
			inner = e.Field(field).(*chapel.Array)
		case *chapel.Array:
			inner = e
		}
		for j := 0; j < width; j++ {
			m.Set(i, j, inner.At(inner.Ty.Lo+j).(*chapel.Real).Val)
		}
	}
	return m, nil
}
