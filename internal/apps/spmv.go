package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// SpMV computes y = A·x for a sparse matrix A given as COO triples — the
// canonical inspector–executor workload. The dataset is an nnz×3 matrix
// whose rows are (row, col, value) with 0-based whole-number coordinates;
// the translated versions box the triples as Chapel records, run the
// translate-time inspector to materialize the index tables, and execute the
// table-walking kernel. The reduction object is y (one group per matrix
// row); x is the hot gather vector, boxed below opt-2 and linearized from
// opt-2 on.

// SpMVConfig parameterizes an SpMV run.
type SpMVConfig struct {
	// Rows, Cols are the logical matrix dimensions.
	Rows, Cols int
	// X is the dense input vector, len == Cols.
	X []float64
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
}

func (c SpMVConfig) validate() error {
	if c.Rows < 0 || c.Cols < 0 {
		return fmt.Errorf("apps: spmv needs non-negative dimensions, got %dx%d", c.Rows, c.Cols)
	}
	if len(c.X) != c.Cols {
		return fmt.Errorf("apps: spmv input vector holds %d elements for %d columns", len(c.X), c.Cols)
	}
	return nil
}

// SpMVResult holds the output vector and timing.
type SpMVResult struct {
	Y      []float64
	Timing Timing
}

// densify expands COO triples into a dense row-major Rows×Cols matrix,
// folding duplicate coordinates under addition.
func densify(data *dataset.Matrix, rows, cols int) ([]float64, error) {
	dense := make([]float64, rows*cols)
	for i := 0; i < data.Rows; i++ {
		r, c := int(data.At(i, 0)), int(data.At(i, 1))
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return nil, fmt.Errorf("apps: triple %d targets (%d,%d), outside %dx%d", i, r, c, rows, cols)
		}
		dense[r*cols+c] += data.At(i, 2)
	}
	return dense, nil
}

// SpMVSeq is the sequential densified reference: the triples are expanded
// into a dense matrix and y = A·x is computed by the textbook two-loop
// mat-vec. This is deliberately NOT a sparse traversal — it is the ground
// truth the property tests pin the sparse executors against.
func SpMVSeq(data *dataset.Matrix, cfg SpMVConfig) (*SpMVResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	dense, err := densify(data, cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	y := make([]float64, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		row := dense[r*cfg.Cols : (r+1)*cfg.Cols]
		var s float64
		for c, a := range row {
			s += a * cfg.X[c]
		}
		y[r] = s
	}
	return &SpMVResult{Y: y, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// SpMVManualFR is the hand-written FREERIDE version: the triples stream
// through the engine as an nnz×3 source and the reduction scatters
// v·x[col] into y[row] per entry — no inspector, coordinates re-read and
// bounds-implied per element.
func SpMVManualFR(data *dataset.Matrix, cfg SpMVConfig) (*SpMVResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	x := cfg.X
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: cfg.Rows, Elems: 1, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				args.Accumulate(int(row[0]), 0, row[2]*x[int(row[1])])
			}
			return nil
		},
	}
	t0 := time.Now()
	res, err := eng.RunContext(context.Background(), spec, dataset.NewMemorySource(data))
	if err != nil {
		return nil, err
	}
	y := make([]float64, cfg.Rows)
	copy(y, res.Object.Snapshot())
	return &SpMVResult{Y: y, Timing: Timing{Reduce: time.Since(t0)}}, nil
}

// BoxTriples boxes an nnz×3 triples matrix (0-based coordinates) as the
// Chapel [1..nnz] array of nz{r, c, v} records the sparse translation
// pipeline linearizes — coordinates shift to Chapel's 1-based domain.
func BoxTriples(data *dataset.Matrix) *chapel.Array {
	nz := chapel.RecordType("nz",
		chapel.Field{Name: "r", Type: chapel.RealType()},
		chapel.Field{Name: "c", Type: chapel.RealType()},
		chapel.Field{Name: "v", Type: chapel.RealType()})
	arr := chapel.NewArray(chapel.ArrayType(nz, 1, data.Rows))
	for i := 0; i < data.Rows; i++ {
		rec := arr.At(i + 1).(*chapel.Record)
		rec.Fields[0] = &chapel.Real{Val: data.At(i, 0) + 1}
		rec.Fields[1] = &chapel.Real{Val: data.At(i, 1) + 1}
		rec.Fields[2] = &chapel.Real{Val: data.At(i, 2)}
	}
	return arr
}

// SpMVClass is the sparse translator input for SpMV: y has one group per
// matrix row, x is the gather vector, and the kernel is the pure arithmetic
// v·g — the executor owns the table walk.
func SpMVClass(cfg SpMVConfig) *core.SparseClass {
	return &core.SparseClass{
		Name:   "spmv",
		Object: freeride.ObjectSpec{Groups: cfg.Rows, Elems: 1, Op: robj.OpAdd},
		Hot:    chapel.RealArray(cfg.X...),
		Kernel: func(v, g float64) float64 { return v * g },
	}
}

// SpMVTranslated runs SpMV through the sparse Chapel→FREERIDE translation
// at the given optimization level: box the triples, linearize to COO, run
// the inspector (whose table proofs gate execution), then execute the
// table-walking kernel.
func SpMVTranslated(data *dataset.Matrix, opt core.OptLevel, cfg SpMVConfig) (*SpMVResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	coo, err := core.LinearizeCOO(BoxTriples(data), cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	linearize := time.Since(t0)
	tr, err := core.TranslateSparse(SpMVClass(cfg), coo, opt)
	if err != nil {
		return nil, err
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	t0 = time.Now()
	res, err := eng.RunContext(context.Background(), tr.Spec(), tr.Source())
	if err != nil {
		return nil, err
	}
	y := make([]float64, cfg.Rows)
	copy(y, res.Object.Snapshot())
	return &SpMVResult{
		Y: y,
		Timing: Timing{
			// The inspector's table construction is the sparse analog of
			// dense linearization: translate-time, sequential, and reported
			// so its cost is never invisible next to pass latency.
			Linearize: linearize + tr.InspectTime,
			HotVar:    tr.HotLinearizeTime,
			Reduce:    time.Since(t0),
		},
	}, nil
}

// SpMV dispatches to the named version.
func SpMV(v Version, data *dataset.Matrix, cfg SpMVConfig) (*SpMVResult, error) {
	switch v {
	case Seq:
		return SpMVSeq(data, cfg)
	case Generated:
		return SpMVTranslated(data, core.OptNone, cfg)
	case Opt1:
		return SpMVTranslated(data, core.Opt1, cfg)
	case Opt2:
		return SpMVTranslated(data, core.Opt2, cfg)
	case Opt3:
		return SpMVTranslated(data, core.Opt3, cfg)
	case ManualFR:
		return SpMVManualFR(data, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported spmv version %v", v)
	}
}
