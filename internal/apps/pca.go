package apps

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/chapel"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// PCA computes the two reduction phases of Principal Component Analysis as
// the paper describes (§V): "calculating the mean vector and computing the
// covariance matrix". The dataset is a matrix whose rows are data elements
// and whose columns are features; the paper stores it transposed ("the
// number of rows denotes the dimensionality, the number of columns the
// number of data elements"), which only renames the axes.
//
// PCA "is a compute-intensive application and does not use complex or
// nested data structures in Chapel" — the boxed form is a plain
// [1..n][1..dim] real array-of-arrays — so the paper compares only opt-2
// and manual FR; this package additionally provides the generated and
// opt-1 forms, which confirm the paper's claim that their benefit is small
// here.

// PCAConfig parameterizes a PCA run.
type PCAConfig struct {
	// Engine configures the FREERIDE engine.
	Engine freeride.Config
	// LinearizeWorkers > 1 enables the parallel-linearization extension.
	LinearizeWorkers int
}

// PCAResult holds the two reduction outputs.
type PCAResult struct {
	// Mean is the length-dim mean vector (phase 1).
	Mean []float64
	// Cov is the dim×dim covariance matrix (phase 2), normalized by n-1.
	Cov *dataset.Matrix
	// Timing is the phase breakdown.
	Timing Timing
}

// covNormalize converts accumulated outer-product sums into the sample
// covariance (divide by n-1; degenerate n<=1 leaves sums untouched).
func covNormalize(cov *dataset.Matrix, n int) {
	if n <= 1 {
		return
	}
	inv := 1 / float64(n-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
}

// PCASeq is the sequential reference implementation.
func PCASeq(data *dataset.Matrix) (*PCAResult, error) {
	n, dim := data.Rows, data.Cols
	if n == 0 || dim == 0 {
		return nil, fmt.Errorf("apps: PCA needs a non-empty matrix, got %dx%d", n, dim)
	}
	var timing Timing
	t0 := time.Now()
	mean := make([]float64, dim)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := 0; j < dim; j++ {
			mean[j] += row[j]
		}
	}
	for j := 0; j < dim; j++ {
		mean[j] /= float64(n)
	}
	cov := dataset.NewMatrix(dim, dim)
	centered := make([]float64, dim)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j := 0; j < dim; j++ {
			centered[j] = row[j] - mean[j]
		}
		for a := 0; a < dim; a++ {
			ca := centered[a]
			out := cov.Row(a)
			for b := 0; b < dim; b++ {
				out[b] += ca * centered[b]
			}
		}
	}
	covNormalize(cov, n)
	timing.Reduce = time.Since(t0)
	return &PCAResult{Mean: mean, Cov: cov, Timing: timing}, nil
}

// PCAMeanClass is the translator input for phase 1: sum every feature of
// every element into a 1×dim reduction object.
func PCAMeanClass(dim int) *core.ReductionClass {
	return &core.ReductionClass{
		Name:   "pca-mean",
		Object: freeride.ObjectSpec{Groups: 1, Elems: dim, Op: robj.OpAdd},
		Kernel: func(elem *core.Vec, _ []*core.StateVec, args *freeride.ReductionArgs) {
			row := elem.Row(args.Scratch(0, dim))
			for j := 0; j < dim; j++ {
				args.Accumulate(0, j, row[j])
			}
		},
		// Opt-3 fused body: sum the whole split's rows straight off the
		// linearized words into the worker-local buffer.
		BlockKernel: func(args *freeride.BlockArgs, view core.BlockView, _ []*core.StateVec) error {
			acc := args.Acc()
			base := view.RowStride*args.Begin + view.RunOff
			for i := 0; i < args.NumRows; i++ {
				row := view.Words[base : base+dim]
				for j := 0; j < dim; j++ {
					acc[j] += row[j]
				}
				base += view.RowStride
			}
			return nil
		},
	}
}

// PCACovClass is the translator input for phase 2: accumulate the centered
// outer product of every element into a dim×dim reduction object. The mean
// vector is the phase's frequently-accessed hot variable.
func PCACovClass(dim int, mean *chapel.Array) *core.ReductionClass {
	return &core.ReductionClass{
		Name:   "pca-cov",
		Object: freeride.ObjectSpec{Groups: dim, Elems: dim, Op: robj.OpAdd},
		HotVars: []core.HotVar{
			{Value: mean},
		},
		Kernel: func(elem *core.Vec, hot []*core.StateVec, args *freeride.ReductionArgs) {
			// The mean vector is a 1×dim hot variable; one Row call per
			// element materializes it (zero-copy in opt-2).
			row := elem.Row(args.Scratch(0, dim))
			mv := hot[0].Row(1, args.Scratch(1, dim))
			for a := 0; a < dim; a++ {
				ca := row[a] - mv[a]
				for b := 0; b < dim; b++ {
					args.Accumulate(a, b, ca*(row[b]-mv[b]))
				}
			}
		},
		// Opt-3 fused body: center each row once into scratch, then rank-one
		// update the worker-local dim×dim buffer with plain slice arithmetic.
		// ca*centered[b] computes the same float op as the per-element
		// kernel's ca*(row[b]-mv[b]), so results stay bit-identical.
		BlockKernel: func(args *freeride.BlockArgs, view core.BlockView, hot []*core.StateVec) error {
			mv, ok := hot[0].Dense()
			if !ok {
				mv = hot[0].Row(1, args.Scratch(1, dim))
			}
			acc := args.Acc()
			centered := args.Scratch(0, dim)
			base := view.RowStride*args.Begin + view.RunOff
			for i := 0; i < args.NumRows; i++ {
				row := view.Words[base : base+dim]
				for j := 0; j < dim; j++ {
					centered[j] = row[j] - mv[j]
				}
				for a := 0; a < dim; a++ {
					ca := centered[a]
					out := acc[a*dim : a*dim+dim]
					for b := 0; b < dim; b++ {
						out[b] += ca * centered[b]
					}
				}
				base += view.RowStride
			}
			return nil
		},
	}
}

// PCATranslated runs both PCA reduction phases through the
// Chapel→FREERIDE translation at the given optimization level. boxedData
// is the Chapel-side [1..n][1..dim] real dataset (BoxMatrix).
func PCATranslated(boxedData *chapel.Array, opt core.OptLevel, cfg PCAConfig) (*PCAResult, error) {
	n := boxedData.Len()
	if n == 0 {
		return nil, fmt.Errorf("apps: PCA needs a non-empty dataset")
	}
	dim := boxedData.At(boxedData.Ty.Lo).(*chapel.Array).Len()
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	var timing Timing
	timing.Threads = eng.Config().Threads

	// Phase 1 translates the dataset once; phase 2 reuses its linearized
	// words (same dataset), so no second input linearization is charged. The
	// two phases run as one two-iteration session loop: iteration 0 is the
	// mean, its Post builds the covariance spec with the mean vector as hot
	// variable, iteration 1 is the covariance.
	tr1, err := core.TranslateWith(PCAMeanClass(dim), boxedData, opt,
		core.TranslateOptions{LinearizeWorkers: cfg.LinearizeWorkers})
	if err != nil {
		return nil, err
	}
	timing.Linearize += tr1.LinearizeTime
	var (
		mean  []float64
		cov   *dataset.Matrix
		spec2 freeride.Spec
	)
	err = runSessionLoop(context.Background(), eng, tr1.Source(), &timing, loopSpec{
		Iterations: 2,
		Spec: func(it int) freeride.Spec {
			if it == 0 {
				return tr1.Spec()
			}
			return spec2
		},
		Fold: func(it int, obj *robj.Object) error {
			if it == 0 {
				mean = make([]float64, dim)
				for j := 0; j < dim; j++ {
					mean[j] = obj.Get(0, j) / float64(n)
				}
				return nil
			}
			cov = dataset.NewMatrix(dim, dim)
			copy(cov.Data, obj.Snapshot())
			covNormalize(cov, n)
			return nil
		},
		Post: func(it int) error {
			if it != 0 {
				return nil
			}
			boxedMean := BoxVector(mean)
			cls2 := PCACovClass(dim, boxedMean)
			var hot []*core.StateVec
			t0 := time.Now()
			switch opt {
			case core.Opt2, core.Opt3:
				sv, err := core.NewWordStateVec(boxedMean, nil)
				if err != nil {
					return err
				}
				hot = []*core.StateVec{sv}
			default:
				sv, err := core.NewBoxedStateVec(boxedMean, nil)
				if err != nil {
					return err
				}
				hot = []*core.StateVec{sv}
			}
			timing.HotVar += time.Since(t0)
			spec2 = core.SpecFromWords(cls2, tr1.Words(), tr1.Meta(), hot, opt)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &PCAResult{Mean: mean, Cov: cov, Timing: timing}, nil
}

// PCAManualFR is the hand-written FREERIDE version: both phases on flat
// float rows.
func PCAManualFR(data *dataset.Matrix, cfg PCAConfig) (*PCAResult, error) {
	n, dim := data.Rows, data.Cols
	if n == 0 || dim == 0 {
		return nil, fmt.Errorf("apps: PCA needs a non-empty matrix, got %dx%d", n, dim)
	}
	eng := freeride.New(cfg.Engine)
	defer eng.Close()
	src := dataset.NewMemorySource(data)
	var timing Timing
	timing.Threads = eng.Config().Threads

	// Both phases on one session: iteration 0 sums features for the mean,
	// iteration 1 accumulates the centered outer products.
	var (
		mean []float64
		cov  *dataset.Matrix
	)
	err := runSessionLoop(context.Background(), eng, src, &timing, loopSpec{
		Iterations: 2,
		Spec: func(it int) freeride.Spec {
			if it == 0 {
				return freeride.Spec{
					Object: freeride.ObjectSpec{Groups: 1, Elems: dim, Op: robj.OpAdd},
					Reduction: func(args *freeride.ReductionArgs) error {
						for i := 0; i < args.NumRows; i++ {
							row := args.Row(i)
							for j := 0; j < dim; j++ {
								args.Accumulate(0, j, row[j])
							}
						}
						return nil
					},
				}
			}
			return freeride.Spec{
				Object: freeride.ObjectSpec{Groups: dim, Elems: dim, Op: robj.OpAdd},
				Reduction: func(args *freeride.ReductionArgs) error {
					for i := 0; i < args.NumRows; i++ {
						row := args.Row(i)
						for a := 0; a < dim; a++ {
							ca := row[a] - mean[a]
							for b := 0; b < dim; b++ {
								args.Accumulate(a, b, ca*(row[b]-mean[b]))
							}
						}
					}
					return nil
				},
			}
		},
		Fold: func(it int, obj *robj.Object) error {
			if it == 0 {
				mean = make([]float64, dim)
				for j := 0; j < dim; j++ {
					mean[j] = obj.Get(0, j) / float64(n)
				}
				return nil
			}
			cov = dataset.NewMatrix(dim, dim)
			copy(cov.Data, obj.Snapshot())
			covNormalize(cov, n)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return &PCAResult{Mean: mean, Cov: cov, Timing: timing}, nil
}

// PCA dispatches to the named version. MapReduce and ChapelNative are not
// provided for PCA (the paper evaluates opt-2 and manual FR only; Seq,
// Generated, and Opt1 are included as references).
func PCA(v Version, data *dataset.Matrix, cfg PCAConfig) (*PCAResult, error) {
	switch v {
	case Seq:
		return PCASeq(data)
	case Generated:
		return PCATranslated(BoxMatrix(data), core.OptNone, cfg)
	case Opt1:
		return PCATranslated(BoxMatrix(data), core.Opt1, cfg)
	case Opt2:
		return PCATranslated(BoxMatrix(data), core.Opt2, cfg)
	case Opt3:
		return PCATranslated(BoxMatrix(data), core.Opt3, cfg)
	case ManualFR:
		return PCAManualFR(data, cfg)
	default:
		return nil, fmt.Errorf("apps: unsupported PCA version %v", v)
	}
}
