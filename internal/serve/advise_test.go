package serve

import (
	"net/http"
	"testing"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// TestAdvisedJobStatus: an unpinned job gets the plan advisor's execution
// configuration, and the status explains the pick.
func TestAdvisedJobStatus(t *testing.T) {
	_, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 128}})
	postJSON(t, ts.URL+"/v1/datasets", gaussianSpec("adv"), nil)

	var st Status
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "adv",
		Params: Params{K: 3, Iterations: 2}, Wait: true,
	}, &st)
	if resp.StatusCode != http.StatusOK || st.State != "done" {
		t.Fatalf("job = %d %q (%s)", resp.StatusCode, st.State, st.Error)
	}
	if !st.Advised {
		t.Fatalf("unpinned job not marked advised: %+v", st)
	}
	if st.Strategy == "" || st.Scheduler == "" {
		t.Fatalf("advised status missing execution config: %+v", st)
	}
	if len(st.AdviceTrace) == 0 {
		t.Fatalf("advised status carries no trace: %+v", st)
	}
}

// TestPinnedJobOverridesAdvisor: request pins take precedence per knob and
// fully pinned jobs are not marked advised.
func TestPinnedJobOverridesAdvisor(t *testing.T) {
	_, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 128}})
	postJSON(t, ts.URL+"/v1/datasets", gaussianSpec("pin"), nil)

	var st Status
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "pin",
		Params: Params{K: 3, Iterations: 2, Strategy: "atomic", Scheduler: "worksteal"},
		Wait:   true,
	}, &st)
	if resp.StatusCode != http.StatusOK || st.State != "done" {
		t.Fatalf("job = %d %q (%s)", resp.StatusCode, st.State, st.Error)
	}
	if st.Advised {
		t.Fatalf("fully pinned job marked advised: %+v", st)
	}
	if st.Strategy != "atomic" || st.Scheduler != "worksteal" {
		t.Fatalf("pins not honored: ran %s/%s", st.Strategy, st.Scheduler)
	}
}

// TestPinValidation: unknown strategy/scheduler names are rejected at
// submit with 400, before the job is queued.
func TestPinValidation(t *testing.T) {
	_, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128}})
	postJSON(t, ts.URL+"/v1/datasets", gaussianSpec("badpin"), nil)

	for _, p := range []Params{
		{K: 3, Iterations: 1, Strategy: "optimistic"},
		{K: 3, Iterations: 1, Scheduler: "round-robin"},
	} {
		var body struct {
			Error string `json:"error"`
		}
		resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
			Kernel: "kmeans", Dataset: "badpin", Params: p, Wait: true,
		}, &body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad pin %+v admitted: %d", p, resp.StatusCode)
		}
		if body.Error == "" {
			t.Fatalf("bad pin %+v rejected without an error message", p)
		}
	}
}

// TestBuiltinProfiles: admission-time profiles are shape-only (no rows
// read) and cover every built-in kernel; custom kernels profile as nil and
// fall back to the server defaults with a trace note.
func TestBuiltinProfiles(t *testing.T) {
	src := dataset.NewMemorySource(dataset.NewMatrix(128, 6))
	for _, kernel := range []string{"kmeans", "pca", "em"} {
		pr := builtinProfile(kernel, src, Params{K: 4})
		if pr == nil || pr.Domain != 128 {
			t.Fatalf("%s profile = %+v", kernel, pr)
		}
	}
	if pr := builtinProfile("kmeans", src, Params{}); pr != nil {
		t.Fatalf("kmeans without K must not profile, got %+v", pr)
	}
	if pr := builtinProfile("custom-thing", src, Params{}); pr != nil {
		t.Fatalf("custom kernel must not profile, got %+v", pr)
	}
}

// TestEngineForCachesByConfig: advised configurations that differ from the
// base pool get one cached engine per distinct configuration, and the base
// configuration routes back to the pool.
func TestEngineForCachesByConfig(t *testing.T) {
	s := New(Config{Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128}})
	s.Start()
	defer s.Close()

	base := s.engines[0].Config()
	if got := s.engineFor(base); got != s.engines[0] {
		t.Fatal("base config must reuse the pool, not spawn an alt engine")
	}

	alt := base
	for _, st := range robj.Strategies() {
		if st != base.Strategy {
			alt.Strategy = st
			break
		}
	}
	e1 := s.engineFor(alt)
	e2 := s.engineFor(alt)
	if e1 == s.engines[0] || e1 != e2 {
		t.Fatalf("alt config not cached: %p vs %p", e1, e2)
	}
	if len(s.altEngines) != 1 {
		t.Fatalf("alt cache holds %d engines, want 1", len(s.altEngines))
	}
}
