package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"chapelfreeride/internal/obs"
)

// JobRequest is the POST /v1/jobs wire shape.
type JobRequest struct {
	// Kernel names a registered kernel (kmeans, pca, em, or custom).
	Kernel string `json:"kernel"`
	// Dataset names a registered dataset recipe.
	Dataset string `json:"dataset"`
	// Tenant is the quota/fairness identity; empty maps to "default".
	Tenant string `json:"tenant,omitempty"`
	// Params are the kernel parameters.
	Params Params `json:"params,omitempty"`
	// Wait makes the submission synchronous: the response is the terminal
	// job status. Without it the server answers 202 with the queued status
	// for polling via GET /v1/jobs/{id}.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is every error response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the server's HTTP API mounted on top of the standard
// observability mux, so one listener exposes both the job API and
// /metrics, /report, /trace, and the pprof endpoints:
//
//	POST /v1/jobs          submit a job (sync with "wait", else 202 + poll)
//	GET  /v1/jobs/{id}     poll a job
//	GET  /v1/datasets      list registered dataset recipes
//	POST /v1/datasets      register a dataset recipe
//	GET  /v1/kernels       list registered kernel names
//	GET  /healthz          liveness (503 once draining)
func (s *Server) Handler() http.Handler {
	mux := obs.NewMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Kernels())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// handleSubmit admits one job. Admission failures map onto HTTP semantics:
// queue full → 429 with a Retry-After hint, draining → 503, unknown
// kernel/dataset or bad body → 400.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, err := s.Submit(req.Tenant, req.Kernel, req.Dataset, req.Params)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	select {
	case <-j.done:
		writeJSON(w, http.StatusOK, j.status())
	case <-r.Context().Done():
		// Client went away mid-wait; the job keeps running and stays
		// pollable by id.
		writeJSON(w, http.StatusRequestTimeout, j.status())
	}
}

// handleGetJob polls one job by id.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	st, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + strconv.Quote(id)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleListDatasets lists the registered recipes.
func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Datasets())
}

// handleRegisterDataset registers a recipe. Idempotent for identical
// recipes; conflicting re-registration of a name is 409.
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var spec DatasetSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	stored, err := s.RegisterDataset(spec)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "different recipe") {
			code = http.StatusConflict
		}
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, stored)
}
