package serve

import (
	"fmt"
	"sync"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/obs"
)

// Dataset-cache traffic counters: hit/miss tells whether the working set
// fits CacheBytes; evictions say how often jobs force re-materialization.
var (
	mCacheHits = obs.Default.Counter("serve_dataset_cache_hits_total",
		"jobs that found their dataset resident in the serve cache")
	mCacheMisses = obs.Default.Counter("serve_dataset_cache_misses_total",
		"jobs that had to materialize their dataset from its recipe")
	mCacheEvictions = obs.Default.Counter("serve_dataset_cache_evictions_total",
		"resident datasets evicted to stay under the cache byte bound")
)

// DatasetSpec is a registered dataset's recipe — also its JSON wire shape.
// The server stores recipes, not data: a dataset is materialized on first
// use, cached LRU under the server's byte bound, and re-materialized from
// the recipe (deterministically, via the seed) after an eviction. Recipes
// make registration O(1) regardless of dataset size and keep the cache an
// optimization rather than a correctness concern.
type DatasetSpec struct {
	Name string `json:"name"`
	// Kind selects the generator: "gaussian" (mixture of Groups gaussians,
	// the clustering kernels' natural input), "uniform", or "sparse" (a
	// Rows×Dim sparse matrix served as NNZ (row, col, value) triples with
	// 0-based whole-number coordinates and integer values — the input shape
	// the sparse kernels linearize through the inspector), or "file" (a
	// binary dataset file on the server's disk, memory-mapped on
	// materialization so row-major files feed jobs zero-copy).
	Kind string `json:"kind"`
	// Rows and Dim are the dataset shape. For the file kind they are read
	// from the file header at registration; callers may leave them zero or
	// supply them as a cross-check.
	Rows int `json:"rows"`
	Dim  int `json:"dim"`
	// Groups is the gaussian mixture's component count (gaussian kind only).
	Groups int `json:"groups,omitempty"`
	// NNZ is the nonzero count of a sparse recipe (sparse kind only).
	// Coordinates are drawn uniformly, so duplicates may occur; kernels fold
	// them under the reduction operator like any other aliased entry.
	NNZ  int   `json:"nnz,omitempty"`
	Seed int64 `json:"seed"`
	// Path is the dataset file (file kind only), in
	// dataset.WriteFileLayout's format.
	Path string `json:"path,omitempty"`
}

func (s DatasetSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("serve: dataset needs a name")
	}
	if s.Kind == "file" {
		if s.Path == "" {
			return fmt.Errorf("serve: file dataset %q needs a path", s.Name)
		}
		return nil // shape comes from the file header at registration
	}
	if s.Rows < 1 || s.Dim < 1 {
		return fmt.Errorf("serve: dataset %q needs rows >= 1 and dim >= 1", s.Name)
	}
	switch s.Kind {
	case "gaussian":
		if s.Groups < 1 {
			return fmt.Errorf("serve: gaussian dataset %q needs groups >= 1", s.Name)
		}
	case "uniform":
	case "sparse":
		if s.NNZ < 1 {
			return fmt.Errorf("serve: sparse dataset %q needs nnz >= 1", s.Name)
		}
	default:
		return fmt.Errorf("serve: dataset %q has unknown kind %q (want gaussian, uniform, sparse, or file)", s.Name, s.Kind)
	}
	return nil
}

// sizeBytes is the materialized footprint the cache accounts for. A sparse
// recipe materializes NNZ×3 triples, not the Rows×Dim logical matrix.
func (s DatasetSpec) sizeBytes() int64 {
	if s.Kind == "sparse" {
		return int64(s.NNZ) * 3 * 8
	}
	return int64(s.Rows) * int64(s.Dim) * 8
}

// materialize generates the matrix from the recipe.
func (s DatasetSpec) materialize() *dataset.Matrix {
	switch s.Kind {
	case "gaussian":
		points, _ := dataset.GaussianMixture(s.Rows, s.Dim, s.Groups, s.Seed)
		return points
	case "sparse":
		// NNZ×3 (row, col, value) triples: in-range whole-number coordinates,
		// small integer values so float accumulation stays exact and kernel
		// results are order-independent under any scheduler.
		m := dataset.NewMatrix(s.NNZ, 3)
		r := s.Seed
		for i := 0; i < s.NNZ; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			m.Data[3*i] = float64(uint64(r) >> 33 % uint64(s.Rows))
			m.Data[3*i+1] = float64(uint64(r) >> 12 % uint64(s.Dim))
			m.Data[3*i+2] = float64(int64(uint64(r)>>45%17) - 8)
		}
		return m
	default: // uniform; validate() rejects anything else at registration
		return dataset.UniformMatrix(s.Rows, s.Dim, s.Seed, 0, 1)
	}
}

// residentEntry is one cached dataset: its served source and the bytes the
// cache accounts for it. Matrix-backed entries account the materialized
// heap footprint; mapped file entries account MappedBytes — the live
// mapping length, which is page-cache-backed and shared, but is the bound
// the operator configured against.
type residentEntry struct {
	src   dataset.Source
	bytes int64
}

// datasetCache holds the registered recipes plus an LRU-by-bytes cache of
// materialized sources.
type datasetCache struct {
	mu       sync.Mutex
	max      int64
	used     int64
	specs    map[string]DatasetSpec
	resident map[string]residentEntry
	lru      []string // resident names, least recently used first
}

func newDatasetCache(maxBytes int64) *datasetCache {
	return &datasetCache{
		max:      maxBytes,
		specs:    map[string]DatasetSpec{},
		resident: map[string]residentEntry{},
	}
}

// register records a recipe. Re-registering an identical recipe is
// idempotent; changing an existing name is rejected so running jobs never
// observe a dataset swapped underneath them. File recipes are probed at
// registration: the header supplies (and cross-checks) the shape, so a bad
// path or corrupt file fails here rather than on a job's first run.
// register validates and stores a recipe, returning the stored form: file
// recipes come back with Rows/Dim filled from the file header, so callers
// (and the HTTP response) see the shape the dataset will actually serve.
func (c *datasetCache) register(s DatasetSpec) (DatasetSpec, error) {
	if err := s.validate(); err != nil {
		return s, err
	}
	if s.Kind == "file" {
		fs, err := dataset.OpenFileSource(s.Path)
		if err != nil {
			return s, fmt.Errorf("serve: file dataset %q: %w", s.Name, err)
		}
		rows, dim := fs.NumRows(), fs.Cols()
		if err := fs.Close(); err != nil {
			return s, err
		}
		if (s.Rows != 0 && s.Rows != rows) || (s.Dim != 0 && s.Dim != dim) {
			return s, fmt.Errorf("serve: file dataset %q: recipe says %dx%d, file header says %dx%d",
				s.Name, s.Rows, s.Dim, rows, dim)
		}
		s.Rows, s.Dim = rows, dim
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.specs[s.Name]; ok {
		if prev != s {
			return s, fmt.Errorf("serve: dataset %q already registered with a different recipe", s.Name)
		}
		return prev, nil
	}
	c.specs[s.Name] = s
	return s, nil
}

// list returns the registered recipes sorted by name.
func (c *datasetCache) list() []DatasetSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DatasetSpec, 0, len(c.specs))
	for _, s := range c.specs {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// known reports whether name is registered.
func (c *datasetCache) known(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.specs[name]
	return ok
}

// touch moves name to the most-recently-used end of the LRU order.
func (c *datasetCache) touch(name string) {
	for i, n := range c.lru {
		if n == name {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), name)
			return
		}
	}
	c.lru = append(c.lru, name)
}

// source returns a Source over the named dataset, materializing it on a
// cache miss and evicting least-recently-used residents to stay under the
// byte bound. A dataset larger than the whole bound is still served — it
// just never stays resident. Jobs already holding an evicted source keep it
// alive through their own reference; eviction only drops the cache's — a
// dropped mapped file unmaps itself once the last job's reference dies (the
// finalizer on dataset.MappedFile), so eviction never pulls pages out from
// under a running pass.
func (c *datasetCache) source(name string) (dataset.Source, error) {
	c.mu.Lock()
	spec, ok := c.specs[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown dataset %q", name)
	}
	if e, ok := c.resident[name]; ok {
		c.touch(name)
		c.mu.Unlock()
		mCacheHits.Inc()
		return e.src, nil
	}
	c.mu.Unlock()

	// Materialize outside the lock: generation (or mapping) is the expensive
	// part, and concurrent jobs for other datasets must not stall behind it.
	// Two jobs racing on the same cold dataset both materialize; the second
	// insert wins the cache slot and the loser's copy dies with its job.
	mCacheMisses.Inc()
	var entry residentEntry
	if spec.Kind == "file" {
		ms, err := dataset.OpenMappedSource(spec.Path)
		if err != nil {
			return nil, fmt.Errorf("serve: file dataset %q: %w", name, err)
		}
		entry = residentEntry{src: ms, bytes: ms.MappedBytes()}
		if !ms.Mapped() {
			// Fallback mode reads from disk per job; account the logical
			// footprint so the operator's bound still means something.
			entry.bytes = spec.sizeBytes()
		}
	} else {
		entry = residentEntry{src: dataset.NewMemorySource(spec.materialize()), bytes: spec.sizeBytes()}
	}

	c.mu.Lock()
	if _, ok := c.resident[name]; !ok {
		c.resident[name] = entry
		c.used += entry.bytes
		c.touch(name)
		for c.used > c.max && len(c.lru) > 1 {
			victim := c.lru[0]
			if victim == name {
				break // never evict the dataset just brought in for this job
			}
			c.lru = c.lru[1:]
			c.used -= c.resident[victim].bytes
			delete(c.resident, victim)
			mCacheEvictions.Inc()
		}
	}
	c.mu.Unlock()
	return entry.src, nil
}

// residentBytes reports the cache's current accounted footprint.
func (c *datasetCache) residentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
