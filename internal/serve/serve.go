// Package serve is the reduction-as-a-service frontend: an HTTP/JSON job
// server that accepts reduction jobs — a registered kernel applied to a
// registered dataset — and runs them on a small pool of persistent
// freeride.Engine sessions. The paper's middleware assumed one application
// linked against the library; serving inverts that: many tenants share the
// engine sessions, so the frontend adds what shared infrastructure needs —
// bounded admission with backpressure (429 + Retry-After), per-tenant
// concurrency quotas with fair round-robin dequeue, recipe-based dataset
// registration with an LRU byte-bounded cache, job polling, and graceful
// drain — while the reduction path underneath stays the untouched engine.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

// Serving counters and latency histograms, in the process-wide registry so
// /metrics and /report expose them next to the engine's own families.
var (
	mJobs = obs.Default.Counter("serve_jobs_total",
		"reduction jobs admitted into the serve queue")
	mJobsCompleted = obs.Default.Counter("serve_jobs_completed_total",
		"serve jobs that finished successfully")
	mJobsFailed = obs.Default.Counter("serve_jobs_failed_total",
		"serve jobs that finished with an error")
	mJobsRejected = obs.Default.Counter("serve_jobs_rejected_total",
		"job submissions rejected by admission control (queue full or draining)")
	hQueueWait = obs.Default.Histogram("serve_queue_wait_seconds",
		"admission-to-start wait of served jobs")
	hService = obs.Default.Histogram("serve_service_seconds",
		"start-to-finish service time of served jobs")
)

// Config describes a job server.
type Config struct {
	// Engines is the engine-session pool size; jobs are spread across the
	// sessions round-robin (each session's worker pool already multiplexes
	// concurrent jobs). Default 2.
	Engines int
	// Engine configures each pooled session.
	Engine freeride.Config
	// MaxConcurrency is the number of runner slots — jobs executing at once
	// across all tenants. Default 2×Engines.
	MaxConcurrency int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// rejected with ErrQueueFull (HTTP 429). Default 1024.
	QueueDepth int
	// TenantQuota caps one tenant's concurrently running jobs, keeping a
	// greedy tenant from occupying every runner slot. 0 picks the default
	// max(1, MaxConcurrency/2); negative disables the quota.
	TenantQuota int
	// CacheBytes bounds the resident dataset cache. Default 256 MiB.
	CacheBytes int64
	// RetainJobs bounds how many finished jobs stay pollable. Default 4096.
	RetainJobs int
}

func (c Config) withDefaults() Config {
	if c.Engines < 1 {
		c.Engines = 2
	}
	if c.MaxConcurrency < 1 {
		c.MaxConcurrency = 2 * c.Engines
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = c.MaxConcurrency / 2
		if c.TenantQuota < 1 {
			c.TenantQuota = 1
		}
	} else if c.TenantQuota < 0 {
		c.TenantQuota = 0 // unlimited
	}
	if c.CacheBytes < 1 {
		c.CacheBytes = 256 << 20
	}
	if c.RetainJobs < 1 {
		c.RetainJobs = 4096
	}
	return c
}

// Server is a running reduction-job server: engine pool, admission queue,
// dataset registry, kernel registry, and job table. Create with New, start
// the runners with Start, mount Handler on an HTTP server, and shut down
// with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	engines []*freeride.Engine
	nextEng atomic.Uint64

	// altEngines caches sessions for advisor- or pin-derived configurations
	// that differ from the base pool's (engine configs are session-fixed, so
	// a different strategy/scheduler needs its own session). Bounded key
	// space; see engineFor.
	altMu      sync.Mutex
	altEngines map[string]*freeride.Engine

	queue *admitQueue
	jobs  *jobTable
	data  *datasetCache

	kernelMu sync.Mutex
	kernels  map[string]KernelFunc

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64
}

// New builds a server (engines created, runners not yet started).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		altEngines: map[string]*freeride.Engine{},
		queue:      newAdmitQueue(cfg.QueueDepth, cfg.TenantQuota),
		jobs:       newJobTable(cfg.RetainJobs),
		data:       newDatasetCache(cfg.CacheBytes),
		kernels:    builtinKernels(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Engines; i++ {
		s.engines = append(s.engines, freeride.New(cfg.Engine))
	}
	// Gauges read live server state at exposition time; re-registering (a
	// test creating several servers) repoints them at the newest instance.
	obs.Default.GaugeFunc("serve_queue_depth",
		"jobs admitted but not yet claimed by a runner",
		func() float64 { return float64(s.queue.depth()) })
	obs.Default.GaugeFunc("serve_jobs_inflight",
		"jobs currently executing on the engine pool",
		func() float64 { return float64(s.inflight.Load()) })
	obs.Default.GaugeFunc("serve_dataset_cache_bytes",
		"resident bytes in the serve dataset cache",
		func() float64 { return float64(s.data.residentBytes()) })
	return s
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Start launches the runner pool. Idempotent.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.MaxConcurrency; i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// RegisterKernel adds (or replaces) a named kernel. The built-in kmeans,
// pca, and em kernels are pre-registered; custom reduction specs register
// here and become submittable by name immediately.
func (s *Server) RegisterKernel(name string, fn KernelFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("serve: kernel registration needs a name and a function")
	}
	s.kernelMu.Lock()
	s.kernels[name] = fn
	s.kernelMu.Unlock()
	return nil
}

// kernel resolves a kernel by name.
func (s *Server) kernel(name string) (KernelFunc, bool) {
	s.kernelMu.Lock()
	defer s.kernelMu.Unlock()
	fn, ok := s.kernels[name]
	return fn, ok
}

// Kernels returns the registered kernel names, sorted.
func (s *Server) Kernels() []string {
	s.kernelMu.Lock()
	defer s.kernelMu.Unlock()
	out := make([]string, 0, len(s.kernels))
	for name := range s.kernels {
		out = append(out, name)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RegisterDataset records a dataset recipe and returns the stored form
// (file recipes gain Rows/Dim from the file header).
func (s *Server) RegisterDataset(spec DatasetSpec) (DatasetSpec, error) {
	return s.data.register(spec)
}

// Datasets lists the registered dataset recipes.
func (s *Server) Datasets() []DatasetSpec { return s.data.list() }

// Submit validates and admits one job. The returned job is queued; callers
// either poll its id or wait on its done channel (the HTTP layer does both).
// Admission failures are synchronous: ErrQueueFull under backpressure,
// ErrDraining once shutdown has begun, and validation errors immediately.
func (s *Server) Submit(tenant, kernelName, datasetName string, p Params) (*job, error) {
	if s.draining.Load() {
		mJobsRejected.Inc()
		return nil, ErrDraining
	}
	fn, ok := s.kernel(kernelName)
	if !ok {
		return nil, fmt.Errorf("serve: unknown kernel %q", kernelName)
	}
	if !s.data.known(datasetName) {
		return nil, fmt.Errorf("serve: unknown dataset %q", datasetName)
	}
	if err := validatePins(p); err != nil {
		return nil, err
	}
	if tenant == "" {
		tenant = "default"
	}
	j := s.jobs.add(tenant, kernelName, datasetName, p.withDefaults(), fn)
	if err := s.queue.push(j); err != nil {
		mJobsRejected.Inc()
		return nil, err
	}
	mJobs.Inc()
	return j, nil
}

// Job returns a job's status by id.
func (s *Server) Job(id string) (Status, bool) {
	j := s.jobs.get(id)
	if j == nil {
		return Status{}, false
	}
	return j.status(), true
}

// QueueDepth reports the current admitted-but-unclaimed job count.
func (s *Server) QueueDepth() int { return s.queue.depth() }

// RetryAfter estimates how long a rejected client should back off before
// resubmitting: the queued backlog divided by the runner slots, floored at
// one second and capped at 30. A heuristic, not a promise — its job is to
// spread the retry storm of a burst, not to predict service time.
func (s *Server) RetryAfter() time.Duration {
	per := s.queue.depth() / s.cfg.MaxConcurrency
	secs := 1 + per/20
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// runner is one executor slot: claim the next quota-eligible job, run it,
// release the tenant slot, repeat until the queue closes and drains.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j := s.queue.pop()
		if j == nil {
			return
		}
		s.runJob(j)
		s.queue.done(j.Tenant)
	}
}

// runJob executes one claimed job on the engine pool.
func (s *Server) runJob(j *job) {
	hQueueWait.ObserveDuration(time.Since(j.submitted))
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setRunning()

	var out any
	src, err := s.data.source(j.Dataset)
	if err == nil {
		// Resolve the execution configuration before the first row is
		// read: request pins win, unpinned knobs come from the plan
		// advisor's static profile of this kernel/dataset pair.
		cfg, exec := s.planConfig(j, src)
		j.setExecution(exec)
		eng := s.engineFor(cfg)
		t0 := time.Now()
		out, err = j.kernel(s.ctx, eng, src, j.Params)
		hService.ObserveDuration(time.Since(t0))
	}
	j.finish(out, err)
	if err != nil {
		mJobsFailed.Inc()
	} else {
		mJobsCompleted.Inc()
	}
	s.jobs.markFinished(j)
}

// Drain performs a graceful shutdown: intake stops immediately (submissions
// fail with ErrDraining / HTTP 503), the admitted backlog and the running
// jobs execute to completion, and Drain returns once the runner pool has
// retired. If ctx expires first, in-flight engine passes are cancelled and
// Drain returns ctx.Err() after the runners exit — every job still reaches
// a terminal state, the cancelled ones as failed.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: intake stops, in-flight passes are
// cancelled, runners retire, and the engine sessions close. Idempotent, and
// safe after Drain.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.cancel()
	s.queue.close()
	s.wg.Wait()
	var first error
	for _, eng := range s.engines {
		if err := eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.altMu.Lock()
	for _, eng := range s.altEngines {
		if err := eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.altEngines = map[string]*freeride.Engine{}
	s.altMu.Unlock()
	return first
}
