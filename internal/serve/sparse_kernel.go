package serve

import (
	"context"
	"fmt"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// SpMVOutput is the spmv kernel's result payload.
type SpMVOutput struct {
	// Y is the output vector, one element per matrix row.
	Y []float64 `json:"y"`
	// Rows, Cols are the logical matrix dimensions the job resolved.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// NNZ is the nonzero (triple) count consumed.
	NNZ int `json:"nnz"`
	// InspectorNs is the translate-time inspector cost for this job — the
	// COO→CSR sort plus index-table materialization, reported so serving
	// latency never hides table construction inside pass time.
	InspectorNs int64 `json:"inspector_ns"`
	// IndexTableBytes is the size of the materialized out+in index tables.
	IndexTableBytes int `json:"index_table_bytes"`
	// Iterations echoes the pass count performed (each pass re-walks the
	// tables; the inspector runs once, at translate time).
	Iterations int `json:"iterations"`
}

// spmvKernel serves y = A·x over a sparse dataset (kind "sparse": nnz×3
// (row, col, value) triples). The triples are boxed, linearized to COO, and
// run through the sparse translation at opt-3 — the inspector executes once
// per job, its index tables proven in-bounds and total by the verifier, and
// every pass is the fused table-walking executor. The input vector is
// deterministic in the logical shape (x[j] = j%7 + 1, integer-valued so the
// result is a pure function of the recipe), matching the server's
// recipe-not-data contract for datasets.
func spmvKernel(ctx context.Context, eng *freeride.Engine, src dataset.Source, p Params) (any, error) {
	p = p.withDefaults()
	if src.Cols() != 3 {
		return nil, fmt.Errorf("serve: spmv needs an nnz x 3 triples dataset (kind sparse), got %d columns", src.Cols())
	}
	nnz := src.NumRows()
	if nnz < 1 {
		return nil, fmt.Errorf("serve: spmv over an empty triples dataset")
	}
	triples := dataset.NewMatrix(nnz, 3)
	if err := dataset.ReadRowsContext(ctx, src, 0, nnz, triples.Data); err != nil {
		return nil, err
	}

	// Logical shape: explicit params win; otherwise the tightest shape the
	// triples fit (max coordinate + 1), so a bare submission still runs.
	rows, cols := p.Rows, p.Cols
	if rows == 0 || cols == 0 {
		for i := 0; i < nnz; i++ {
			if r := int(triples.At(i, 0)) + 1; r > rows {
				rows = r
			}
			if c := int(triples.At(i, 1)) + 1; c > cols {
				cols = c
			}
		}
	}

	x := make([]float64, cols)
	for j := range x {
		x[j] = float64(j%7 + 1)
	}
	cfg := apps.SpMVConfig{Rows: rows, Cols: cols, X: x}

	coo, err := core.LinearizeCOO(apps.BoxTriples(triples), rows, cols)
	if err != nil {
		return nil, err
	}
	tr, err := core.TranslateSparse(apps.SpMVClass(cfg), coo, core.Opt3)
	if err != nil {
		return nil, err
	}

	y := make([]float64, rows)
	for it := 0; it < p.Iterations; it++ {
		res, err := eng.RunContext(ctx, tr.Spec(), tr.Source())
		if err != nil {
			return nil, err
		}
		copy(y, res.Object.Snapshot())
		if err := eng.Release(res); err != nil {
			return nil, err
		}
	}
	return &SpMVOutput{
		Y: y, Rows: rows, Cols: cols, NNZ: nnz,
		InspectorNs:     (tr.InspectTime + tr.HotLinearizeTime).Nanoseconds(),
		IndexTableBytes: tr.Plan().TableBytes(),
		Iterations:      p.Iterations,
	}, nil
}
