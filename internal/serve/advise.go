package serve

import (
	"fmt"

	"chapelfreeride/internal/analyze"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// Execution records how a job's engine configuration was chosen — echoed in
// Status so clients can see which strategy/scheduler ran and why.
type Execution struct {
	// Strategy and Scheduler are the display names of the knobs the job
	// ran with.
	Strategy  string
	Scheduler string
	// Advised reports the plan advisor picked the configuration (at least
	// one knob was not pinned by the request).
	Advised bool
	// Trace is the advisor's rule trace (empty for fully pinned jobs).
	Trace []string
}

// validatePins rejects unknown strategy/scheduler names at submission time,
// so clients get a synchronous 4xx instead of a failed job.
func validatePins(p Params) error {
	if p.Strategy != "" {
		if _, err := robj.ParseStrategy(p.Strategy); err != nil {
			return fmt.Errorf("serve: params.strategy: %w", err)
		}
	}
	if p.Scheduler != "" {
		if _, err := sched.ParsePolicy(p.Scheduler); err != nil {
			return fmt.Errorf("serve: params.scheduler: %w", err)
		}
	}
	return nil
}

// planConfig picks the engine configuration for one claimed job: request
// pins win; everything unpinned is filled by analyze.Advise over the
// kernel's static plan profile (object shape from the params, domain from
// the dataset recipe — nothing reads a data row). Kernels with no
// registered plan shape run on the server's base configuration.
func (s *Server) planConfig(j *job, src dataset.Source) (freeride.Config, Execution) {
	base := s.engines[0].Config()
	pr := builtinProfile(j.Kernel, src, j.Params)

	var cfg freeride.Config
	exec := Execution{}
	if pr == nil {
		cfg = base
		if j.Params.Strategy == "" || j.Params.Scheduler == "" {
			exec.Trace = append(exec.Trace,
				fmt.Sprintf("kernel %q has no registered plan shape; unpinned knobs use the server defaults", j.Kernel))
		}
	} else {
		adv := analyze.Advise(pr, base.Threads)
		cfg = adv.Apply(base)
		exec.Advised = true
		exec.Trace = adv.Trace
	}
	// Pins override whatever the advisor (or the defaults) chose. Parse
	// errors cannot happen here: Submit validated the names.
	if j.Params.Strategy != "" {
		st, _ := robj.ParseStrategy(j.Params.Strategy)
		cfg.Strategy = st
		exec.Trace = append(exec.Trace, fmt.Sprintf("strategy pinned to %s by the request", st))
	}
	if j.Params.Scheduler != "" {
		pol, _ := sched.ParsePolicy(j.Params.Scheduler)
		cfg.Scheduler = pol
		exec.Trace = append(exec.Trace, fmt.Sprintf("scheduler pinned to %s by the request", pol))
	}
	if j.Params.Strategy != "" && j.Params.Scheduler != "" {
		exec.Advised = false
	}
	exec.Strategy = cfg.Strategy.String()
	exec.Scheduler = cfg.Scheduler.String()
	return cfg, exec
}

// builtinProfile builds the static plan profile for a built-in kernel, or
// nil when the kernel's plan shape is unknown (custom registrations).
func builtinProfile(kernel string, src dataset.Source, p Params) *analyze.PlanProfile {
	rows, cols := src.NumRows(), src.Cols()
	switch kernel {
	case "kmeans", "em":
		if p.K < 1 {
			return nil
		}
		return analyze.DenseProfile(kernel, rows, cols, p.K, cols+1, analyze.Options{})
	case "pca":
		// The dim×dim covariance pass dominates the two-pass pipeline; the
		// advice for it serves the 1×dim mean pass too.
		return analyze.DenseProfile(kernel, rows, cols, cols, cols, analyze.Options{})
	case "spmv":
		// The dataset rows are COO triples, so the scatter domain is the
		// nonzero count. Without pinned matrix dims the object size is
		// unknown; assume nnz cells — the conservative large-object case.
		cells := p.Rows
		if cells < 1 {
			cells = rows
		}
		return analyze.SparseShapeProfile(kernel, rows, cells, analyze.Options{})
	default:
		return nil
	}
}

// engineFor returns an engine running the given configuration: the
// round-robin base pool when it matches the server's base config, else a
// lazily created cached session. The cache key space is bounded — 5
// strategies × 4 schedulers × the advisor's clamped power-of-two chunk
// ladder — so a long-lived server holds a bounded set of sessions.
func (s *Server) engineFor(cfg freeride.Config) *freeride.Engine {
	if cfg == s.engines[0].Config() {
		return s.engines[s.nextEng.Add(1)%uint64(len(s.engines))]
	}
	key := fmt.Sprintf("%d/%d/%d/%d", cfg.Strategy, cfg.Scheduler, cfg.SplitRows, cfg.SparseAccCells)
	s.altMu.Lock()
	defer s.altMu.Unlock()
	if eng, ok := s.altEngines[key]; ok {
		return eng
	}
	eng := freeride.New(cfg)
	s.altEngines[key] = eng
	return eng
}
