package serve

import (
	"fmt"
	"sync"
	"time"

	"chapelfreeride/internal/obs"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobQueued: admitted, waiting for a runner slot.
	JobQueued JobState = "queued"
	// JobRunning: claimed by a runner, kernel executing.
	JobRunning JobState = "running"
	// JobDone: kernel finished successfully; Result is populated.
	JobDone JobState = "done"
	// JobFailed: kernel (or admission-to-run plumbing) errored.
	JobFailed JobState = "failed"
)

// job is one admitted reduction job. Identity fields are immutable after
// submit; the lifecycle fields are guarded by mu and the done channel closes
// exactly once, on the queued→finished transition.
type job struct {
	ID      string
	Tenant  string
	Kernel  string
	Dataset string
	Params  Params

	kernel    KernelFunc
	submitted time.Time
	done      chan struct{}

	mu        sync.Mutex
	state     JobState
	started   time.Time
	finished  time.Time
	engineJob obs.JobID
	exec      Execution
	result    any
	errMsg    string
}

// setExecution records the resolved engine configuration (and whether the
// advisor picked it) before the kernel starts.
func (j *job) setExecution(e Execution) {
	j.mu.Lock()
	j.exec = e
	j.mu.Unlock()
}

// setRunning marks the queued→running transition.
func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the terminal state and result, closing done.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = result
	}
	j.mu.Unlock()
	close(j.done)
}

// Status is the externally visible view of a job, also its JSON wire shape.
type Status struct {
	ID      string   `json:"id"`
	Tenant  string   `json:"tenant"`
	Kernel  string   `json:"kernel"`
	Dataset string   `json:"dataset"`
	State   JobState `json:"state"`
	// QueueMillis is submit→start wall time (or submit→now while queued).
	QueueMillis float64 `json:"queue_ms"`
	// ServiceMillis is start→finish wall time (0 while queued).
	ServiceMillis float64 `json:"service_ms,omitempty"`
	// EngineJob is the obs.JobID of the last engine pass the kernel ran, the
	// key into /trace for this job's span timeline.
	EngineJob uint64 `json:"engine_job,omitempty"`
	// Strategy and Scheduler echo the execution configuration the job ran
	// with; Advised marks them as the plan advisor's pick (vs request pins)
	// and AdviceTrace carries the advisor's explanation.
	Strategy    string   `json:"strategy,omitempty"`
	Scheduler   string   `json:"scheduler,omitempty"`
	Advised     bool     `json:"advised,omitempty"`
	AdviceTrace []string `json:"advice_trace,omitempty"`
	Result      any      `json:"result,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// status snapshots the job's current view.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Kernel:      j.Kernel,
		Dataset:     j.Dataset,
		State:       j.state,
		Strategy:    j.exec.Strategy,
		Scheduler:   j.exec.Scheduler,
		Advised:     j.exec.Advised,
		AdviceTrace: j.exec.Trace,
		Error:       j.errMsg,
		Result:      j.result,
	}
	s.EngineJob = uint64(j.engineJob)
	switch j.state {
	case JobQueued:
		s.QueueMillis = float64(time.Since(j.submitted)) / float64(time.Millisecond)
	default:
		s.QueueMillis = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	if j.state == JobDone || j.state == JobFailed {
		s.ServiceMillis = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return s
}

// jobTable indexes jobs by id with bounded retention of finished jobs: the
// table remembers the last retain finished jobs for polling clients and
// forgets older ones, so a long-lived server's memory is bounded by the
// backlog plus the retention window, not its lifetime job count.
type jobTable struct {
	mu       sync.Mutex
	nextID   int64
	jobs     map[string]*job
	finished []string // finished ids, oldest first
	retain   int
}

func newJobTable(retain int) *jobTable {
	return &jobTable{jobs: map[string]*job{}, retain: retain}
}

// add mints an id and indexes a new queued job.
func (t *jobTable) add(tenant, kernelName, datasetName string, p Params, fn KernelFunc) *job {
	t.mu.Lock()
	t.nextID++
	j := &job{
		ID:        fmt.Sprintf("j-%d", t.nextID),
		Tenant:    tenant,
		Kernel:    kernelName,
		Dataset:   datasetName,
		Params:    p,
		kernel:    fn,
		submitted: time.Now(),
		done:      make(chan struct{}),
		state:     JobQueued,
	}
	t.jobs[j.ID] = j
	t.mu.Unlock()
	return j
}

// get returns the job by id, or nil.
func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

// markFinished enters the job into the retention window, evicting the oldest
// finished job beyond the bound.
func (t *jobTable) markFinished(j *job) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished = append(t.finished, j.ID)
	for len(t.finished) > t.retain {
		delete(t.jobs, t.finished[0])
		t.finished[0] = ""
		t.finished = t.finished[1:]
	}
}
