package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// testServer builds a started server plus an httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts v and decodes the response body into out (if non-nil).
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp
}

// sleepKernel returns a kernel that sleeps (cancellably) and records the
// tenant-tagged completion into order.
func sleepKernel(d time.Duration, mu *sync.Mutex, order *[]string, tag string) KernelFunc {
	return func(ctx context.Context, _ *freeride.Engine, _ dataset.Source, _ Params) (any, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if mu != nil {
			mu.Lock()
			*order = append(*order, tag)
			mu.Unlock()
		}
		return map[string]string{"tag": tag}, nil
	}
}

// gaussianSpec is the shared test dataset recipe.
func gaussianSpec(name string) DatasetSpec {
	return DatasetSpec{Name: name, Kind: "gaussian", Rows: 2048, Dim: 4, Groups: 3, Seed: 11}
}

// TestServeKMeansMatchesSequential: a synchronous kmeans job over the HTTP
// API produces the sequential reference implementation's centroids (same
// deterministic first-K-rows initialization, same dataset recipe).
func TestServeKMeansMatchesSequential(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 64}})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}

	var st Status
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "g1",
		Params: Params{K: 3, Iterations: 4}, Wait: true,
	}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q, error %q", st.State, st.Error)
	}

	// Reference: the same recipe materialized locally, run sequentially with
	// the identical first-K-rows initialization.
	points, _ := dataset.GaussianMixture(2048, 4, 3, 11)
	init := dataset.NewMatrix(3, 4)
	copy(init.Data, points.Data[:3*4])
	ref, err := apps.KMeansSeq(points, init, apps.KMeansConfig{K: 3, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var out KMeansOutput
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for j := 0; j < 4; j++ {
			got, want := out.Centroids[c][j], ref.Centroids.At(c, j)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("centroid[%d][%d] = %v, reference %v", c, j, got, want)
			}
		}
		if out.Counts[c] != ref.Counts[c] {
			t.Fatalf("cluster %d count %v, reference %v", c, out.Counts[c], ref.Counts[c])
		}
	}
}

// TestServePCAAndEM: the other built-in kernels complete over the API and
// return well-formed payloads (pca variance positive, em weights a
// distribution).
func TestServePCAAndEM(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 128}})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}

	var st Status
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "pca", Dataset: "g1", Wait: true}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("pca submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("pca job state %q, error %q", st.State, st.Error)
	}
	raw, _ := json.Marshal(st.Result)
	var pca PCAOutput
	if err := json.Unmarshal(raw, &pca); err != nil {
		t.Fatal(err)
	}
	if len(pca.Mean) != 4 || len(pca.Variance) != 4 || pca.TotalVariance <= 0 {
		t.Fatalf("malformed pca payload: %+v", pca)
	}

	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "em", Dataset: "g1", Params: Params{K: 3, Iterations: 3}, Wait: true,
	}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("em submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("em job state %q, error %q", st.State, st.Error)
	}
	raw, _ = json.Marshal(st.Result)
	var em EMOutput
	if err := json.Unmarshal(raw, &em); err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, w := range em.Weights {
		if w < 0 {
			t.Fatalf("negative em weight: %+v", em.Weights)
		}
		mass += w
	}
	if math.Abs(mass-1) > 1e-6 {
		t.Fatalf("em weights sum to %v, want 1", mass)
	}
}

// TestAsyncSubmitAndPoll: without wait the API answers 202 immediately and
// the job becomes pollable through its terminal state.
func TestAsyncSubmitAndPoll(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128}})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "g1", Params: Params{K: 2},
	}, &st); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit returned %d", resp.StatusCode)
	}
	if st.ID == "" || (st.State != JobQueued && st.State != JobRunning) {
		t.Fatalf("async submit status: %+v", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur Status
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == JobDone {
			break
		}
		if cur.State == JobFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/no-such-job"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job id returned %d, want 404", resp.StatusCode)
		}
	}
}

// TestBackpressure429: a full admission queue rejects synchronously with
// 429 and a positive Retry-After hint, and the rejected counter moves.
func TestBackpressure429(t *testing.T) {
	s, ts := testServer(t, Config{
		Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128},
		MaxConcurrency: 1, QueueDepth: 2, TenantQuota: -1,
	})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	if err := s.RegisterKernel("block", func(ctx context.Context, _ *freeride.Engine, _ dataset.Source, _ Params) (any, error) {
		select {
		case <-block:
			return "ok", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}); err != nil {
		t.Fatal(err)
	}
	defer close(block)

	rejectedBefore := obs.Default.Value("serve_jobs_rejected_total")
	req := JobRequest{Kernel: "block", Dataset: "g1"}
	var saw429 bool
	for i := 0; i < 8; i++ {
		resp := postJSON(t, ts.URL+"/v1/jobs", req, nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			ra := resp.Header.Get("Retry-After")
			if ra == "" || ra == "0" {
				t.Fatalf("429 without a positive Retry-After (got %q)", ra)
			}
		}
	}
	if !saw429 {
		t.Fatal("flooding a depth-2 queue with a wedged runner never produced a 429")
	}
	if got := obs.Default.Value("serve_jobs_rejected_total") - rejectedBefore; got == 0 {
		t.Fatal("serve_jobs_rejected_total never moved")
	}
}

// TestTenantQuotaFairness: with a per-tenant quota of 1 and two runner
// slots, a greedy tenant's pre-loaded backlog cannot hold both slots — the
// fair tenant's single job is dequeued round-robin and finishes long before
// the greedy backlog drains.
func TestTenantQuotaFairness(t *testing.T) {
	s, _ := testServer(t, Config{
		Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128},
		MaxConcurrency: 2, QueueDepth: 64, TenantQuota: 1,
	})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	if err := s.RegisterKernel("greedy", sleepKernel(30*time.Millisecond, &mu, &order, "greedy")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterKernel("fair", sleepKernel(30*time.Millisecond, &mu, &order, "fair")); err != nil {
		t.Fatal(err)
	}

	const greedyJobs = 8
	var jobs []*job
	for i := 0; i < greedyJobs; i++ {
		j, err := s.Submit("greedy", "greedy", "g1", Params{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	fairJob, err := s.Submit("fair", "fair", "g1", Params{})
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, fairJob)
	for _, j := range jobs {
		<-j.done
	}

	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, tag := range order {
		if tag == "fair" {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("fair tenant's job never completed")
	}
	// Quota 1 caps greedy at one running job, so the fair job occupies the
	// second slot as soon as it is submitted: it must finish among the first
	// three completions, not behind the greedy backlog.
	if pos > 2 {
		t.Fatalf("fair tenant's job finished %dth of %d — starved behind the greedy backlog (order %v)",
			pos+1, len(order), order)
	}
}

// TestAdmitQueueRoundRobin pins the dequeue order directly: with three
// tenants queued, claims rotate across tenants instead of draining the
// longest FIFO first.
func TestAdmitQueueRoundRobin(t *testing.T) {
	q := newAdmitQueue(64, 0)
	mk := func(tenant, id string) *job {
		return &job{ID: id, Tenant: tenant, done: make(chan struct{})}
	}
	for _, j := range []*job{
		mk("a", "a1"), mk("a", "a2"), mk("a", "a3"),
		mk("b", "b1"),
		mk("c", "c1"),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 5; i++ {
		j := q.takeLocked()
		if j == nil {
			t.Fatalf("takeLocked returned nil at claim %d", i)
		}
		got = append(got, j.ID)
	}
	want := []string{"a1", "b1", "c1", "a2", "a3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

// TestDatasetCacheLRU: a cache sized for one dataset evicts the older
// resident when a second is materialized, and re-serving a resident dataset
// is a hit.
func TestDatasetCacheLRU(t *testing.T) {
	spec1 := DatasetSpec{Name: "d1", Kind: "uniform", Rows: 1024, Dim: 4, Seed: 1}
	spec2 := DatasetSpec{Name: "d2", Kind: "uniform", Rows: 1024, Dim: 4, Seed: 2}
	c := newDatasetCache(spec1.sizeBytes() + spec2.sizeBytes()/2)
	for _, s := range []DatasetSpec{spec1, spec2} {
		if _, err := c.register(s); err != nil {
			t.Fatal(err)
		}
	}
	hits0 := obs.Default.Value("serve_dataset_cache_hits_total")
	miss0 := obs.Default.Value("serve_dataset_cache_misses_total")
	evict0 := obs.Default.Value("serve_dataset_cache_evictions_total")

	if _, err := c.source("d1"); err != nil { // miss, resident
		t.Fatal(err)
	}
	if _, err := c.source("d1"); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := c.source("d2"); err != nil { // miss, evicts d1
		t.Fatal(err)
	}
	if _, err := c.source("d1"); err != nil { // miss again (was evicted)
		t.Fatal(err)
	}
	if got := obs.Default.Value("serve_dataset_cache_hits_total") - hits0; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
	if got := obs.Default.Value("serve_dataset_cache_misses_total") - miss0; got != 3 {
		t.Fatalf("cache misses = %d, want 3", got)
	}
	if got := obs.Default.Value("serve_dataset_cache_evictions_total") - evict0; got < 1 {
		t.Fatal("no evictions under a byte bound smaller than the working set")
	}
	if used, bound := c.residentBytes(), spec1.sizeBytes()+spec2.sizeBytes()/2; used > bound {
		t.Fatalf("cache holds %d bytes, bound %d", used, bound)
	}

	// Conflicting re-registration is rejected; identical is idempotent.
	if _, err := c.register(spec1); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	changed := spec1
	changed.Seed = 99
	if _, err := c.register(changed); err == nil {
		t.Fatal("conflicting recipe re-registration succeeded")
	}
}

// TestServeFileDataset: a job over a registered binary dataset file (the
// "file" recipe kind, memory-mapped at materialization) produces the same
// centroids as the sequential reference over the identical matrix.
func TestServeFileDataset(t *testing.T) {
	points, _ := dataset.GaussianMixture(2048, 4, 3, 11)
	path := filepath.Join(t.TempDir(), "g.frds")
	if err := dataset.WriteFile(path, points); err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 64}})
	if _, err := s.RegisterDataset(DatasetSpec{Name: "f1", Kind: "file", Path: path}); err != nil {
		t.Fatal(err)
	}

	var st Status
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "f1",
		Params: Params{K: 3, Iterations: 4}, Wait: true,
	}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q, error %q", st.State, st.Error)
	}
	init := dataset.NewMatrix(3, 4)
	copy(init.Data, points.Data[:3*4])
	ref, err := apps.KMeansSeq(points, init, apps.KMeansConfig{K: 3, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var out KMeansOutput
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for j := 0; j < 4; j++ {
			got, want := out.Centroids[c][j], ref.Centroids.At(c, j)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("centroid[%d][%d] = %v, reference %v", c, j, got, want)
			}
		}
	}
}

// TestFileDatasetRegistration: header probing at registration fills the
// shape, cross-checks a caller-supplied one, and rejects bad paths.
func TestFileDatasetRegistration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.frds")
	m := dataset.UniformMatrix(256, 3, 7, 0, 1)
	if err := dataset.WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	c := newDatasetCache(1 << 20)
	if _, err := c.register(DatasetSpec{Name: "f", Kind: "file", Path: path}); err != nil {
		t.Fatal(err)
	}
	got := c.list()[0]
	if got.Rows != 256 || got.Dim != 3 {
		t.Fatalf("registered shape %dx%d, want 256x3 from header", got.Rows, got.Dim)
	}
	// Identical re-registration (with or without the filled shape) is fine.
	if _, err := c.register(DatasetSpec{Name: "f", Kind: "file", Path: path}); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	// Shape cross-check catches a recipe that disagrees with the file.
	if _, err := c.register(DatasetSpec{Name: "f2", Kind: "file", Path: path, Rows: 999}); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	if _, err := c.register(DatasetSpec{Name: "f3", Kind: "file", Path: filepath.Join(dir, "missing")}); err == nil {
		t.Fatal("missing file must be rejected at registration")
	}
	if _, err := c.register(DatasetSpec{Name: "f4", Kind: "file"}); err == nil {
		t.Fatal("file recipe without path must be rejected")
	}

	// Materialization serves the file's rows and accounts mapped bytes.
	src, err := c.source("f")
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 256*3)
	if err := src.ReadRows(0, 256, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != m.Data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if mf, ok := src.(dataset.MappedFile); ok && mf.Mapped() {
		if c.residentBytes() != mf.MappedBytes() {
			t.Fatalf("cache accounts %d bytes, mapping is %d", c.residentBytes(), mf.MappedBytes())
		}
	} else if c.residentBytes() != 256*3*8 {
		t.Fatalf("fallback accounting %d bytes, want logical footprint", c.residentBytes())
	}
}

// TestDrainGraceful: drain stops intake (503 for new submissions) while the
// admitted backlog runs to completion, and Drain returns nil.
func TestDrainGraceful(t *testing.T) {
	s := New(Config{
		Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128},
		MaxConcurrency: 1, QueueDepth: 16,
	})
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterKernel("slow", sleepKernel(50*time.Millisecond, nil, nil, "")); err != nil {
		t.Fatal(err)
	}

	var admitted []*job
	for i := 0; i < 3; i++ {
		j, err := s.Submit("t", "slow", "g1", Params{})
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, j)
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	// Intake must reject as soon as the drain begins.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "slow", Dataset: "g1"}, nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions kept being accepted after Drain started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	// Every admitted job reached done, not cancelled.
	for i, j := range admitted {
		st := j.status()
		if st.State != JobDone {
			t.Fatalf("admitted job %d drained into state %q (error %q), want done", i, st.State, st.Error)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz returned %d while draining, want 503", resp.StatusCode)
		}
	}
}

// TestDrainDeadlineCancelsInflight: a drain whose context expires cancels
// the running kernels; every job still reaches a terminal state.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	s := New(Config{
		Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128},
		MaxConcurrency: 1, QueueDepth: 16,
	})
	s.Start()
	defer s.Close()
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterKernel("wedge", func(ctx context.Context, _ *freeride.Engine, _ dataset.Source, _ Params) (any, error) {
		<-ctx.Done() // only a drain-forced cancel releases this kernel
		return nil, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit("t", "wedge", "g1", Params{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain returned %v, want context.DeadlineExceeded", err)
	}
	if st := j.status(); st.State != JobFailed {
		t.Fatalf("wedged job drained into state %q, want failed", st.State)
	}
}

// TestCustomKernelOverHTTP: a custom reduction spec registered by name is
// submittable like the built-ins — the tentpole's "custom reduction specs
// registered by name" path, exercised end to end with a real engine pass.
func TestCustomKernelOverHTTP(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 64}})
	if _, err := s.RegisterDataset(DatasetSpec{Name: "u1", Kind: "uniform", Rows: 512, Dim: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterKernel("rowcount", func(ctx context.Context, eng *freeride.Engine, src dataset.Source, _ Params) (any, error) {
		res, err := eng.RunContext(ctx, freeride.Spec{
			Object: freeride.ObjectSpec{Groups: 1, Elems: 1, Op: robj.OpAdd},
			Reduction: func(args *freeride.ReductionArgs) error {
				args.Accumulate(0, 0, float64(args.NumRows))
				return nil
			},
		}, src)
		if err != nil {
			return nil, err
		}
		defer eng.Release(res)
		return map[string]float64{"rows": res.Object.Get(0, 0)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "rowcount", Dataset: "u1", Wait: true}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("custom kernel submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("custom kernel job state %q, error %q", st.State, st.Error)
	}
	raw, _ := json.Marshal(st.Result)
	var out map[string]float64
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out["rows"] != 512 {
		t.Fatalf("custom kernel counted %v rows, want 512", out["rows"])
	}
}

// TestDatasetEndpoints: recipes round-trip through the HTTP API and
// validation failures surface as 400/409.
func TestDatasetEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1}})
	spec := gaussianSpec("api-ds")
	if resp := postJSON(t, ts.URL+"/v1/datasets", spec, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("dataset registration returned %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var specs []DatasetSpec
	if err := json.NewDecoder(resp.Body).Decode(&specs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(specs) != 1 || specs[0] != spec {
		t.Fatalf("dataset list %+v, want just %+v", specs, spec)
	}
	bad := spec
	bad.Rows = 0
	if resp := postJSON(t, ts.URL+"/v1/datasets", bad, nil); resp.StatusCode != http.StatusBadRequest &&
		resp.StatusCode != http.StatusConflict {
		t.Fatalf("invalid recipe returned %d, want 400/409", resp.StatusCode)
	}
	conflict := spec
	conflict.Seed = 999
	if resp := postJSON(t, ts.URL+"/v1/datasets", conflict, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting recipe returned %d, want 409", resp.StatusCode)
	}
	// Unknown dataset/kernel submissions are 400s.
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "kmeans", Dataset: "nope"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown dataset submit returned %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "nope", Dataset: "api-ds"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel submit returned %d, want 400", resp.StatusCode)
	}
}

// TestServeMetricsExposed: the serve_* families show up on the mounted
// /metrics endpoint after jobs flow through.
func TestServeMetricsExposed(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128}})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "kmeans", Dataset: "g1", Params: Params{K: 2}, Wait: true,
	}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"serve_jobs_total", "serve_jobs_completed_total", "serve_queue_depth",
		"serve_queue_wait_seconds_bucket", "serve_service_seconds_bucket",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Fatalf("/metrics missing family %s", family)
		}
	}
}

// TestJobRetention: the finished-job window is bounded — old finished jobs
// become unknown while recent ones stay pollable.
func TestJobRetention(t *testing.T) {
	s, _ := testServer(t, Config{
		Engines: 1, Engine: freeride.Config{Threads: 1, SplitRows: 128},
		MaxConcurrency: 1, RetainJobs: 2, QueueDepth: 32,
	})
	if _, err := s.RegisterDataset(gaussianSpec("g1")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterKernel("quick", sleepKernel(0, nil, nil, "")); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit("t", "quick", "g1", Params{})
		if err != nil {
			t.Fatal(err)
		}
		<-j.done
		ids = append(ids, j.ID)
	}
	// Give markFinished (which runs just after done closes) a beat.
	time.Sleep(20 * time.Millisecond)
	if _, ok := s.Job(ids[0]); ok {
		t.Fatalf("job %s still pollable past the retention window", ids[0])
	}
	if _, ok := s.Job(ids[len(ids)-1]); !ok {
		t.Fatalf("job %s fell out of retention immediately", ids[len(ids)-1])
	}
}

// TestConcurrentLoadSmoke drives a few hundred concurrent synchronous jobs
// through the full HTTP path — a scaled-down in-test version of the
// abl-serve load experiment, catching races under -race.
func TestConcurrentLoadSmoke(t *testing.T) {
	s, ts := testServer(t, Config{
		Engines: 2, Engine: freeride.Config{Threads: 2, SplitRows: 256},
		MaxConcurrency: 8, QueueDepth: 512, TenantQuota: 4,
	})
	if _, err := s.RegisterDataset(DatasetSpec{Name: "small", Kind: "gaussian", Rows: 512, Dim: 4, Groups: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 16, 8
	errs := make(chan error, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", c%4)
			for i := 0; i < perClient; i++ {
				body, _ := json.Marshal(JobRequest{
					Kernel: "kmeans", Dataset: "small", Tenant: tenant,
					Params: Params{K: 2, Iterations: 1}, Wait: true,
				})
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var st Status
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					continue // backpressure is a legal answer under load
				}
				if resp.StatusCode != http.StatusOK || st.State != JobDone {
					errs <- fmt.Errorf("job status %d/%s: %s", resp.StatusCode, st.State, st.Error)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
