package serve

import (
	"context"
	"fmt"
	"math"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// Params are the kernel parameters a job submission carries. Kernels read
// what they need and validate it; unknown-to-the-kernel fields are ignored.
type Params struct {
	// K is the group count (kmeans clusters, EM components).
	K int `json:"k,omitempty"`
	// Iterations is the scan-and-update pass count. Defaults to 1.
	Iterations int `json:"iterations,omitempty"`
	// Rows, Cols are the logical matrix dimensions of a sparse job (spmv).
	// When omitted the kernel infers the tightest shape fitting the triples.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Strategy pins the reduction-object sharing strategy ("replication",
	// "full-locking", "opt-locking", "fixed-locking", "atomic"). Empty lets
	// the plan advisor pick one from the job's static profile.
	Strategy string `json:"strategy,omitempty"`
	// Scheduler pins the split scheduling policy ("static", "dynamic",
	// "guided", "worksteal"). Empty lets the plan advisor pick.
	Scheduler string `json:"scheduler,omitempty"`
}

func (p Params) withDefaults() Params {
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	return p
}

// KernelFunc is a registered application kernel: it runs one job's
// reduction passes on the engine session it is handed and returns a
// JSON-serializable result. Kernels must thread ctx into every engine pass
// (RunContext/Submit) so a server drain or client disconnect cancels the
// pass's workers, and must Release every engine Result they are done with —
// the engine sessions are shared across the server's whole job stream.
type KernelFunc func(ctx context.Context, eng *freeride.Engine, src dataset.Source, p Params) (any, error)

// builtinKernels returns the server's stock kernel registry: the paper's
// evaluation applications in their serving form.
func builtinKernels() map[string]KernelFunc {
	return map[string]KernelFunc{
		"kmeans": kmeansKernel,
		"pca":    pcaKernel,
		"em":     emKernel,
		"spmv":   spmvKernel,
	}
}

// initialRows reads the first k rows of src — the deterministic centroid
// initialization every clustering kernel here uses, so a job's result is a
// pure function of (dataset recipe, params).
func initialRows(ctx context.Context, src dataset.Source, k int) ([]float64, error) {
	dim := src.Cols()
	if src.NumRows() < k {
		return nil, fmt.Errorf("serve: dataset has %d rows, need at least k=%d", src.NumRows(), k)
	}
	init := make([]float64, k*dim)
	if err := dataset.ReadRowsContext(ctx, src, 0, k, init); err != nil {
		return nil, err
	}
	return init, nil
}

// KMeansOutput is the kmeans kernel's result payload.
type KMeansOutput struct {
	// Centroids is the final K×dim centroid matrix, row per cluster.
	Centroids [][]float64 `json:"centroids"`
	// Counts is the last iteration's per-cluster assignment counts.
	Counts []float64 `json:"counts"`
	// Iterations echoes the pass count performed.
	Iterations int `json:"iterations"`
}

// kmeansKernel is Lloyd's k-means: per pass, one engine reduction
// accumulates per-cluster coordinate sums and counts (k groups × dim+1
// cells, count last — the same reduction-object layout as internal/apps),
// then the update step divides. Centroids start as the first K rows.
func kmeansKernel(ctx context.Context, eng *freeride.Engine, src dataset.Source, p Params) (any, error) {
	p = p.withDefaults()
	if p.K < 1 {
		return nil, fmt.Errorf("serve: kmeans needs params.k >= 1")
	}
	k, dim := p.K, src.Cols()
	cents, err := initialRows(ctx, src, k)
	if err != nil {
		return nil, err
	}
	counts := make([]float64, k)
	for it := 0; it < p.Iterations; it++ {
		flat := cents
		res, err := eng.RunContext(ctx, freeride.Spec{
			Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
			Reduction: func(args *freeride.ReductionArgs) error {
				for i := 0; i < args.NumRows; i++ {
					row := args.Row(i)
					best, bestDist := 0, math.Inf(1)
					for c := 0; c < k; c++ {
						cc := flat[c*dim : (c+1)*dim]
						var d float64
						for j := 0; j < dim; j++ {
							diff := row[j] - cc[j]
							d += diff * diff
						}
						if d < bestDist {
							best, bestDist = c, d
						}
					}
					for j := 0; j < dim; j++ {
						args.Accumulate(best, j, row[j])
					}
					args.Accumulate(best, dim, 1)
				}
				return nil
			},
		}, src)
		if err != nil {
			return nil, err
		}
		sums := res.Object.Snapshot()
		if err := eng.Release(res); err != nil {
			return nil, err
		}
		next := make([]float64, k*dim)
		for c := 0; c < k; c++ {
			cells := sums[c*(dim+1) : (c+1)*(dim+1)]
			counts[c] = cells[dim]
			if counts[c] == 0 {
				copy(next[c*dim:(c+1)*dim], cents[c*dim:(c+1)*dim])
				continue
			}
			for j := 0; j < dim; j++ {
				next[c*dim+j] = cells[j] / counts[c]
			}
		}
		cents = next
	}
	return &KMeansOutput{Centroids: unflatten(cents, k, dim), Counts: counts, Iterations: p.Iterations}, nil
}

// PCAOutput is the pca kernel's result payload.
type PCAOutput struct {
	// Mean is the per-dimension mean vector.
	Mean []float64 `json:"mean"`
	// Variance is the diagonal of the covariance matrix.
	Variance []float64 `json:"variance"`
	// TotalVariance is the covariance trace.
	TotalVariance float64 `json:"total_variance"`
}

// pcaKernel runs PCA's two reduction passes (the paper's structure): a
// 1×dim mean pass, then a dim×dim covariance pass over mean-centered rows.
// The serving payload is the mean and the covariance diagonal — the full
// matrix stays server-side, matching what a monitoring client needs.
func pcaKernel(ctx context.Context, eng *freeride.Engine, src dataset.Source, _ Params) (any, error) {
	dim := src.Cols()
	n := float64(src.NumRows())
	if n == 0 {
		return nil, fmt.Errorf("serve: pca over an empty dataset")
	}
	res, err := eng.RunContext(ctx, freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: dim, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				for j := 0; j < dim; j++ {
					args.Accumulate(0, j, row[j])
				}
			}
			return nil
		},
	}, src)
	if err != nil {
		return nil, err
	}
	mean := res.Object.Snapshot()
	if err := eng.Release(res); err != nil {
		return nil, err
	}
	for j := range mean {
		mean[j] /= n
	}

	res, err = eng.RunContext(ctx, freeride.Spec{
		Object: freeride.ObjectSpec{Groups: dim, Elems: dim, Op: robj.OpAdd},
		Reduction: func(args *freeride.ReductionArgs) error {
			centered := make([]float64, dim)
			for i := 0; i < args.NumRows; i++ {
				row := args.Row(i)
				for j := 0; j < dim; j++ {
					centered[j] = row[j] - mean[j]
				}
				for a := 0; a < dim; a++ {
					for b := 0; b < dim; b++ {
						args.Accumulate(a, b, centered[a]*centered[b])
					}
				}
			}
			return nil
		},
	}, src)
	if err != nil {
		return nil, err
	}
	cov := res.Object.Snapshot()
	if err := eng.Release(res); err != nil {
		return nil, err
	}
	out := &PCAOutput{Mean: mean, Variance: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		out.Variance[j] = cov[j*dim+j] / n
		out.TotalVariance += out.Variance[j]
	}
	return out, nil
}

// EMOutput is the em kernel's result payload.
type EMOutput struct {
	// Means is the final K×dim component mean matrix.
	Means [][]float64 `json:"means"`
	// Weights is each component's mixing weight (responsibility mass / n).
	Weights []float64 `json:"weights"`
	// Iterations echoes the pass count performed.
	Iterations int `json:"iterations"`
}

// emKernel is expectation-maximization over a spherical, equal-prior
// gaussian mixture: the E-step computes soft responsibilities from the
// current means (unit variance), the M-step re-estimates means from the
// responsibility-weighted sums. One engine reduction per iteration with a
// k × (dim+1) object — weighted coordinate sums plus responsibility mass.
func emKernel(ctx context.Context, eng *freeride.Engine, src dataset.Source, p Params) (any, error) {
	p = p.withDefaults()
	if p.K < 1 {
		return nil, fmt.Errorf("serve: em needs params.k >= 1")
	}
	k, dim := p.K, src.Cols()
	n := float64(src.NumRows())
	means, err := initialRows(ctx, src, k)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, k)
	for it := 0; it < p.Iterations; it++ {
		flat := means
		res, err := eng.RunContext(ctx, freeride.Spec{
			Object: freeride.ObjectSpec{Groups: k, Elems: dim + 1, Op: robj.OpAdd},
			Reduction: func(args *freeride.ReductionArgs) error {
				resp := make([]float64, k)
				for i := 0; i < args.NumRows; i++ {
					row := args.Row(i)
					// Soft assignment: softmax over -d²/2, computed against
					// the minimum distance for numerical stability.
					minD := math.Inf(1)
					for c := 0; c < k; c++ {
						cc := flat[c*dim : (c+1)*dim]
						var d float64
						for j := 0; j < dim; j++ {
							diff := row[j] - cc[j]
							d += diff * diff
						}
						resp[c] = d
						if d < minD {
							minD = d
						}
					}
					var total float64
					for c := 0; c < k; c++ {
						resp[c] = math.Exp(-(resp[c] - minD) / 2)
						total += resp[c]
					}
					for c := 0; c < k; c++ {
						r := resp[c] / total
						for j := 0; j < dim; j++ {
							args.Accumulate(c, j, r*row[j])
						}
						args.Accumulate(c, dim, r)
					}
				}
				return nil
			},
		}, src)
		if err != nil {
			return nil, err
		}
		sums := res.Object.Snapshot()
		if err := eng.Release(res); err != nil {
			return nil, err
		}
		next := make([]float64, k*dim)
		for c := 0; c < k; c++ {
			cells := sums[c*(dim+1) : (c+1)*(dim+1)]
			mass := cells[dim]
			weights[c] = mass / n
			if mass == 0 {
				copy(next[c*dim:(c+1)*dim], means[c*dim:(c+1)*dim])
				continue
			}
			for j := 0; j < dim; j++ {
				next[c*dim+j] = cells[j] / mass
			}
		}
		means = next
	}
	return &EMOutput{Means: unflatten(means, k, dim), Weights: weights, Iterations: p.Iterations}, nil
}

// unflatten reshapes a flat k×dim block into row slices for JSON.
func unflatten(flat []float64, k, dim int) [][]float64 {
	out := make([][]float64, k)
	for c := 0; c < k; c++ {
		out[c] = flat[c*dim : (c+1)*dim : (c+1)*dim]
	}
	return out
}
