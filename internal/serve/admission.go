package serve

import (
	"errors"
	"sync"
)

var (
	// ErrQueueFull reports a submission bounced off the admission queue's
	// depth bound; the HTTP layer maps it to 429 with a Retry-After hint.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining reports a submission against a server that has stopped
	// intake (SIGTERM drain); the HTTP layer maps it to 503.
	ErrDraining = errors.New("serve: server is draining")
)

// admitQueue is the server's bounded, tenant-fair admission queue. Each
// tenant gets its own FIFO; runners dequeue by scanning the tenant ring
// round-robin, skipping tenants at their in-flight quota. The combination
// gives two properties the load test pins down:
//
//   - backpressure: total queued work is bounded by max, and overflow is
//     rejected synchronously at submit time (ErrQueueFull) rather than
//     buffered without bound;
//   - fairness: a greedy tenant with thousands of queued jobs holds at most
//     quota runner slots, and the ring rotation interleaves the remaining
//     slots across the other tenants' FIFOs instead of serving the longest
//     queue first.
type admitQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	max    int // total queued-job bound
	quota  int // per-tenant in-flight cap (0 = unlimited)
	size   int
	closed bool

	tenants  map[string]*tenantQueue
	ring     []*tenantQueue // tenants with queued work, round-robin order
	next     int            // ring cursor
	inflight map[string]int // per-tenant dequeued-but-not-done counts
}

// tenantQueue is one tenant's FIFO of queued jobs.
type tenantQueue struct {
	name   string
	jobs   []*job
	inRing bool
}

func newAdmitQueue(max, quota int) *admitQueue {
	q := &admitQueue{
		max:      max,
		quota:    quota,
		tenants:  map[string]*tenantQueue{},
		inflight: map[string]int{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits one job into its tenant's FIFO, or rejects it synchronously
// when the queue is at its depth bound or the server is draining.
func (q *admitQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.max {
		return ErrQueueFull
	}
	tq := q.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{name: j.Tenant}
		q.tenants[j.Tenant] = tq
	}
	tq.jobs = append(tq.jobs, j)
	if !tq.inRing {
		tq.inRing = true
		q.ring = append(q.ring, tq)
	}
	q.size++
	q.cond.Broadcast()
	return nil
}

// pop blocks until a job whose tenant is under quota is available and claims
// it (the tenant's in-flight count stays raised until done). It returns nil
// only when the queue is closed AND empty: a drain stops intake but lets the
// already-admitted backlog run to completion.
func (q *admitQueue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.takeLocked(); j != nil {
			return j
		}
		if q.closed && q.size == 0 {
			return nil
		}
		q.cond.Wait()
	}
}

// takeLocked claims the next eligible job round-robin across tenant FIFOs,
// or returns nil when every queued tenant is at quota (or nothing is queued).
func (q *admitQueue) takeLocked() *job {
	n := len(q.ring)
	for i := 0; i < n; i++ {
		idx := (q.next + i) % n
		tq := q.ring[idx]
		if q.quota > 0 && q.inflight[tq.name] >= q.quota {
			continue
		}
		j := tq.jobs[0]
		tq.jobs[0] = nil // release the dequeued slot for GC
		tq.jobs = tq.jobs[1:]
		q.size--
		q.inflight[tq.name]++
		if len(tq.jobs) == 0 {
			q.ring = append(q.ring[:idx], q.ring[idx+1:]...)
			tq.inRing = false
			if len(q.ring) == 0 {
				q.next = 0
			} else {
				q.next = idx % len(q.ring)
			}
		} else {
			q.next = (idx + 1) % n
		}
		return j
	}
	return nil
}

// done releases one of tenant's in-flight slots, unblocking runners waiting
// on the quota.
func (q *admitQueue) done(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inflight[tenant] <= 1 {
		delete(q.inflight, tenant)
	} else {
		q.inflight[tenant]--
	}
	q.cond.Broadcast()
}

// depth reports the number of queued (not yet claimed) jobs.
func (q *admitQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close stops intake: pushes fail with ErrDraining, pops drain the backlog
// and then return nil.
func (q *admitQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
