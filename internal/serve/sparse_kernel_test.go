package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/freeride"
)

// sparseSpec is the shared sparse test recipe: a 64×48 matrix with 200
// integer-valued nonzeros.
func sparseSpec(name string) DatasetSpec {
	return DatasetSpec{Name: name, Kind: "sparse", Rows: 64, Dim: 48, NNZ: 200, Seed: 7}
}

// TestServeSpMVMatchesDensified: a synchronous spmv job over the HTTP API
// produces the densified sequential reference's vector bit-identically —
// the recipe's integer values and the kernel's deterministic integer x make
// float accumulation exact under any scheduler.
func TestServeSpMVMatchesDensified(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 2, SplitRows: 32}})
	spec := sparseSpec("sp1")
	if _, err := s.RegisterDataset(spec); err != nil {
		t.Fatal(err)
	}

	var st Status
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Kernel: "spmv", Dataset: "sp1",
		Params: Params{Rows: spec.Rows, Cols: spec.Dim, Iterations: 2}, Wait: true,
	}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync submit returned %d", resp.StatusCode)
	}
	if st.State != JobDone {
		t.Fatalf("job state %q, error %q", st.State, st.Error)
	}

	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var out SpMVOutput
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != spec.Rows || out.Cols != spec.Dim || out.NNZ != spec.NNZ {
		t.Fatalf("shape (%d, %d, nnz %d), want (%d, %d, nnz %d)",
			out.Rows, out.Cols, out.NNZ, spec.Rows, spec.Dim, spec.NNZ)
	}
	if out.IndexTableBytes <= 0 {
		t.Fatalf("index table bytes %d, want > 0", out.IndexTableBytes)
	}
	if out.Iterations != 2 {
		t.Fatalf("iterations %d, want 2", out.Iterations)
	}

	// Reference: the same recipe materialized locally, densified, and run
	// through the sequential mat-vec with the kernel's deterministic x.
	triples := spec.materialize()
	x := make([]float64, spec.Dim)
	for j := range x {
		x[j] = float64(j%7 + 1)
	}
	ref, err := apps.SpMVSeq(triples, apps.SpMVConfig{Rows: spec.Rows, Cols: spec.Dim, X: x})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Y) != len(ref.Y) {
		t.Fatalf("len(Y) = %d, want %d", len(out.Y), len(ref.Y))
	}
	for i := range ref.Y {
		if out.Y[i] != ref.Y[i] {
			t.Fatalf("y[%d] = %v, want %v", i, out.Y[i], ref.Y[i])
		}
	}
}

// TestServeSpMVInfersShape: with no Rows/Cols params the kernel runs over
// the tightest shape fitting the triples.
func TestServeSpMVInfersShape(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1}})
	if _, err := s.RegisterDataset(sparseSpec("sp2")); err != nil {
		t.Fatal(err)
	}
	var st Status
	postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "spmv", Dataset: "sp2", Wait: true}, &st)
	if st.State != JobDone {
		t.Fatalf("job state %q, error %q", st.State, st.Error)
	}
	raw, _ := json.Marshal(st.Result)
	var out SpMVOutput
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Rows < 1 || out.Rows > 64 || out.Cols < 1 || out.Cols > 48 {
		t.Fatalf("inferred shape %dx%d outside the recipe's 64x48", out.Rows, out.Cols)
	}
	if len(out.Y) != out.Rows {
		t.Fatalf("len(Y) = %d, want %d", len(out.Y), out.Rows)
	}
}

// TestSparseDatasetValidation: sparse recipes need nnz >= 1, and a sparse
// job against a dense dataset is rejected by the kernel, not crashed.
func TestSparseDatasetValidation(t *testing.T) {
	s, ts := testServer(t, Config{Engines: 1, Engine: freeride.Config{Threads: 1}})
	bad := sparseSpec("bad")
	bad.NNZ = 0
	if _, err := s.RegisterDataset(bad); err == nil {
		t.Fatal("sparse recipe with nnz=0 not rejected")
	}
	if _, err := s.RegisterDataset(gaussianSpec("dense")); err != nil {
		t.Fatal(err)
	}
	var st Status
	postJSON(t, ts.URL+"/v1/jobs", JobRequest{Kernel: "spmv", Dataset: "dense", Wait: true}, &st)
	if st.State != JobFailed {
		t.Fatalf("spmv over a dense dataset finished %q, want failed", st.State)
	}
}

// TestSparseDatasetCacheAccounting: a sparse recipe's cache footprint is
// its triples, not the logical matrix.
func TestSparseDatasetCacheAccounting(t *testing.T) {
	c := newDatasetCache(1 << 20)
	spec := sparseSpec("sp")
	if got, want := spec.sizeBytes(), int64(spec.NNZ)*3*8; got != want {
		t.Fatalf("sizeBytes = %d, want %d", got, want)
	}
	if _, err := c.register(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.source("sp"); err != nil {
		t.Fatal(err)
	}
	if got := c.residentBytes(); got != spec.sizeBytes() {
		t.Fatalf("residentBytes = %d, want %d", got, spec.sizeBytes())
	}
}
