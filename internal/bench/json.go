package bench

import (
	"encoding/json"
	"io"
	"time"
)

// Metric is one machine-readable measurement: which version ran, under what
// execution configuration, and the cost per op in nanoseconds. The op unit
// is experiment-defined but consistent within one experiment (abl-fuse uses
// one input row processed per reduction pass), so ratios between versions
// and threads are comparable across scales and machines.
type Metric struct {
	// Workload distinguishes applications within one experiment
	// ("kmeans", "pca"); empty for single-workload experiments.
	Workload string `json:"workload,omitempty"`
	// Version is the code version measured (e.g. "opt-2", "opt-3").
	Version string `json:"version"`
	// Threads is the engine worker count.
	Threads int `json:"threads"`
	// Scheduler and Strategy record the engine configuration when the
	// experiment sweeps them; empty means the engine default.
	Scheduler string `json:"scheduler,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	// NsPerOp is the measured cost per op in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// RowsPerSec is the ingestion throughput behind this measurement
	// (abl-ingest); 0 for experiments that report only per-op cost.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	// ReadaheadDepth is the prefetch pipeline depth the calibration pass
	// chose for this measurement (abl-ingest's bin-boxed rows); 0 when the
	// source has no prefetch layer.
	ReadaheadDepth int `json:"readahead_depth,omitempty"`
	// InspectorNs is the translate-time inspector cost (COO→CSR sort +
	// index-table materialization) behind this measurement, in nanoseconds;
	// 0 for dense workloads, which have no inspector. Reported separately
	// from NsPerOp so table construction is never hidden inside pass
	// latency.
	InspectorNs int64 `json:"inspector_ns,omitempty"`
	// IndexTableBytes is the size of the inspector-materialized index
	// tables behind this measurement; 0 for dense workloads.
	IndexTableBytes int64 `json:"index_table_bytes,omitempty"`
}

// ReportParams is the subset of Params a report records — enough to rerun
// the measurement.
type ReportParams struct {
	Threads []int   `json:"threads"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Reps    int     `json:"reps"`
}

// Report is the machine-readable form of one experiment run, written by
// freeride-bench -json as BENCH_<exp>.json. It carries the structured
// metrics where the experiment provides them plus the printed table, so
// plotting pipelines and regression trackers can consume either.
type Report struct {
	Exp       string       `json:"exp"`
	Title     string       `json:"title"`
	Params    ReportParams `json:"params"`
	Columns   []string     `json:"columns"`
	Rows      [][]string   `json:"rows"`
	Metrics   []Metric     `json:"metrics,omitempty"`
	Notes     []string     `json:"notes,omitempty"`
	// PassLatency is the engine pass-latency quantile summary for the
	// passes this experiment ran (attached by freeride-bench from the
	// histogram's before/after states); absent when no passes ran.
	PassLatency *LatencyQuantiles `json:"pass_latency,omitempty"`
	Timestamp   string            `json:"timestamp"`
}

// NewReport assembles the report for a finished experiment run. The caller
// supplies the wall-clock stamp so report generation stays deterministic
// under test.
func NewReport(tbl *Table, p Params, now time.Time) *Report {
	return &Report{
		Exp:   tbl.ID,
		Title: tbl.Title,
		Params: ReportParams{
			Threads: p.Threads, Scale: p.Scale, Seed: p.Seed, Reps: p.Reps,
		},
		Columns:   tbl.Columns,
		Rows:      tbl.Rows,
		Metrics:   tbl.Metrics,
		Notes:     tbl.Notes,
		Timestamp: now.UTC().Format(time.RFC3339),
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LatencyQuantiles summarizes an interval of the engine's pass-latency
// histogram (freeride_pass_duration_seconds): how many passes ran and the
// log-bucket p50/p90/p99 upper bounds in nanoseconds. Bucket bounds are
// powers of two, so each quantile is conservative within a factor of two —
// stable enough for regression tracking across machines.
type LatencyQuantiles struct {
	Count int64 `json:"count"`
	P50ns int64 `json:"p50_ns"`
	P90ns int64 `json:"p90_ns"`
	P99ns int64 `json:"p99_ns"`
}
