package bench

import (
	"fmt"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// kmeansDim is the feature dimensionality of the synthetic point datasets
// (12 MB at dim=10 gives the paper's ~157k points; 1.2 GB gives ~15.7M).
const kmeansDim = 10

// kmeansData generates the k-means input for a target (scaled) size. The
// result always has at least minRows points so tiny scales can still seed
// k centroids.
func kmeansData(targetBytes int64, scale float64, seed int64, minRows int) *dataset.Matrix {
	n := dataset.KMeansPointsForBytes(int64(float64(targetBytes)*scale), kmeansDim)
	if n < minRows {
		n = minRows
	}
	points, _ := dataset.GaussianMixture(n, kmeansDim, 20, seed)
	return points
}

// firstK picks the first k points as the deterministic initial centroids.
func firstK(points *dataset.Matrix, k int) *dataset.Matrix {
	init := dataset.NewMatrix(k, points.Cols)
	copy(init.Data, points.Data[:k*points.Cols])
	return init
}

// splitRowsFor picks a split size that yields ~8 splits per thread so the
// scheduler has work to balance even on scaled-down datasets.
func splitRowsFor(rows, threads int) int {
	s := rows / (threads * 8)
	if s < 64 {
		s = 64
	}
	return s
}

// kmeansFigure runs one of the paper's k-means figures: the four versions
// (generated, opt-1, opt-2, manual FR) across the thread sweep.
func kmeansFigure(id, title string, targetBytes int64, k, iters int) func(Params) (*Table, error) {
	return func(p Params) (*Table, error) {
		if p.Reps < 1 {
			p.Reps = 1
		}
		points := kmeansData(targetBytes, p.Scale, p.Seed, k+1)
		init := firstK(points, k)
		boxed := apps.BoxPoints(points)

		versions := []apps.Version{apps.Generated, apps.Opt1, apps.Opt2, apps.ManualFR}
		tbl := &Table{
			ID: id,
			Title: fmt.Sprintf("%s — %d points × %d dims (%.1f MB), k=%d, i=%d",
				title, points.Rows, kmeansDim, float64(points.SizeBytes())/(1<<20), k, iters),
			Columns: []string{"threads", "version", "total(s)", "linearize(s)", "reduce(s)", "est-total(s)", "balance", "vs manual"},
		}
		// Measure everything first so ratio columns can reference manual.
		totals := map[string]time.Duration{}
		results := map[string]*apps.KMeansResult{}
		for _, threads := range p.Threads {
			cfg := apps.KMeansConfig{
				K: k, Iterations: iters,
				Engine: freeride.Config{Threads: threads, SplitRows: splitRowsFor(points.Rows, threads)},
			}
			for _, v := range versions {
				var best *apps.KMeansResult
				for rep := 0; rep < p.Reps; rep++ {
					var res *apps.KMeansResult
					var err error
					switch v {
					case apps.ManualFR:
						res, err = apps.KMeansManualFR(points, init, cfg)
					default:
						res, err = apps.KMeansTranslated(boxed, init, optOf(v), cfg)
					}
					if err != nil {
						return nil, fmt.Errorf("%s %v threads=%d: %w", id, v, threads, err)
					}
					if best == nil || res.Timing.Total() < best.Timing.Total() {
						best = res
					}
				}
				totals[key(threads, v)] = best.Timing.Total()
				results[key(threads, v)] = best
			}
		}
		ests := map[string]time.Duration{}
		for _, threads := range p.Threads {
			for _, v := range versions {
				ests[key(threads, v)] = results[key(threads, v)].Timing.EstTotal()
			}
			man := ests[key(threads, apps.ManualFR)]
			for _, v := range versions {
				res := results[key(threads, v)]
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprint(threads), v.String(),
					secs(res.Timing.Total()), secs(res.Timing.Linearize), secs(res.Timing.Reduce),
					secs(res.Timing.EstTotal()), fmt.Sprintf("%.2f", res.Timing.Balance()),
					ratio(res.Timing.EstTotal(), man),
				})
			}
		}
		// Shape notes matching §V-A's observations. Single-thread ratios use
		// wall time (valid on any machine); the scaling notes use the
		// CPU-accounting estimate, which models one core per worker when the
		// reproduction machine has fewer cores than the paper's 8-core
		// testbed (see Timing.EstTotal).
		t1 := p.Threads[0]
		gen := totals[key(t1, apps.Generated)]
		o1 := totals[key(t1, apps.Opt1)]
		o2 := totals[key(t1, apps.Opt2)]
		man := totals[key(t1, apps.ManualFR)]
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("1-thread: opt-1 saves %s of generated (paper: ~10%%)",
				pct(gen-o1, gen)),
			fmt.Sprintf("1-thread: generated / opt-2 = %s (paper: ~8x on k=100)", ratio(gen, o2)),
			fmt.Sprintf("1-thread: opt-2 / manual = %s (paper: within ~1.2x)", ratio(o2, man)),
		)
		last := p.Threads[len(p.Threads)-1]
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("est @%d threads: opt-2 scales %sx, manual %sx (paper: both scale well)",
				last,
				ratio(ests[key(t1, apps.Opt2)], ests[key(last, apps.Opt2)]),
				ratio(ests[key(t1, apps.ManualFR)], ests[key(last, apps.ManualFR)])),
			fmt.Sprintf("est opt-2 / manual grows %s (1 thread) → %s (%d threads) (paper: gap widens — sequential linearization)",
				ratio(ests[key(t1, apps.Opt2)], ests[key(t1, apps.ManualFR)]),
				ratio(ests[key(last, apps.Opt2)], ests[key(last, apps.ManualFR)]),
				last))
		return tbl, nil
	}
}

// optOf maps an apps.Version to its core optimization level; only valid for
// the three translated versions.
func optOf(v apps.Version) core.OptLevel {
	switch v {
	case apps.Generated:
		return core.OptNone
	case apps.Opt1:
		return core.Opt1
	case apps.Opt3:
		return core.Opt3
	default:
		return core.Opt2
	}
}

func key(threads int, v apps.Version) string { return fmt.Sprintf("%d/%s", threads, v) }

// pct formats part/whole as a percentage.
func pct(part, whole time.Duration) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

func init() {
	register(Experiment{
		ID:           "fig9",
		Title:        "k-means, small dataset (12 MB), k=100, i=10 — four versions",
		Paper:        "Figure 9",
		DefaultScale: 0.1,
		Run:          kmeansFigure("fig9", "k-means small", 12<<20, 100, 10),
	})
	register(Experiment{
		ID:           "fig10",
		Title:        "k-means, large dataset (1.2 GB), k=10, i=10 — four versions",
		Paper:        "Figure 10",
		DefaultScale: 0.005,
		Run:          kmeansFigure("fig10", "k-means large", 1288490188, 10, 10),
	})
	register(Experiment{
		ID:           "fig11",
		Title:        "k-means, large dataset (1.2 GB), k=100, i=1 — linearization-dominated",
		Paper:        "Figure 11",
		DefaultScale: 0.005,
		Run:          kmeansFigure("fig11", "k-means large single-pass", 1288490188, 100, 1),
	})
}
