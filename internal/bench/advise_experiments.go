package bench

import (
	"fmt"
	"time"

	"chapelfreeride/internal/analyze"
	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// adviseWorkload is one app in the advisor ablation: its static plan
// profile (what the advisor sees at translate time) and a runner that
// executes it under an arbitrary engine configuration.
type adviseWorkload struct {
	name    string
	domain  int
	profile *analyze.PlanProfile
	run     func(cfg freeride.Config) (time.Duration, error)
}

// ablAdvise measures the plan advisor against the hand-picked sweep: for
// each of the five evaluation apps it runs every (strategy, scheduler)
// pair at the largest thread count, then the advisor's pick, and reports
// where the advised configuration lands between the best and worst
// hand-picked times. The claim under test: advised stays within a few
// percent of the best pick and never approaches the worst — i.e. the
// static profile carries enough signal to choose execution before the
// first row is read.
func ablAdvise(p Params) (*Table, error) {
	if p.Reps < 1 {
		p.Reps = 1
	}
	threads := p.Threads[len(p.Threads)-1]
	policies := []sched.Policy{sched.Dynamic, sched.WorkStealing}
	strategies := robj.Strategies()

	workloads, err := adviseWorkloads(p)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID: "abl-advise",
		Title: fmt.Sprintf("plan advisor vs hand-picked (strategy x scheduler) — %d apps @ %d threads",
			len(workloads), threads),
		Columns: []string{"workload", "pick", "strategy", "scheduler", "total(s)", "ns/op", "vs best"},
	}

	timeCfg := func(w adviseWorkload, cfg freeride.Config) (time.Duration, error) {
		var best time.Duration
		for rep := 0; rep < p.Reps; rep++ {
			d, err := w.run(cfg)
			if err != nil {
				return 0, err
			}
			if rep == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	for _, w := range workloads {
		type picked struct {
			st  robj.Strategy
			pol sched.Policy
			d   time.Duration
		}
		var swept []picked
		for _, pol := range policies {
			for _, st := range strategies {
				cfg := freeride.Config{
					Threads: threads, SplitRows: splitRowsFor(w.domain, threads),
					Strategy: st, Scheduler: pol,
				}
				d, err := timeCfg(w, cfg)
				if err != nil {
					return nil, fmt.Errorf("abl-advise %s %v/%v: %w", w.name, st, pol, err)
				}
				swept = append(swept, picked{st, pol, d})
			}
		}
		best, worst := swept[0], swept[0]
		for _, s := range swept[1:] {
			if s.d < best.d {
				best = s
			}
			if s.d > worst.d {
				worst = s
			}
		}

		adv := analyze.Advise(w.profile, threads)
		advised, err := timeCfg(w, adv.Apply(freeride.Config{Threads: threads}))
		if err != nil {
			return nil, fmt.Errorf("abl-advise %s advised: %w", w.name, err)
		}

		perOp := func(d time.Duration) int64 { return d.Nanoseconds() / int64(maxInt(1, w.domain)) }
		for _, s := range swept {
			tbl.Rows = append(tbl.Rows, []string{
				w.name, "hand-picked", s.st.String(), s.pol.String(),
				secs(s.d), fmt.Sprint(perOp(s.d)), ratio(s.d, best.d),
			})
			tbl.Metrics = append(tbl.Metrics, Metric{
				Workload: w.name, Version: "hand-picked", Threads: threads,
				Strategy: s.st.String(), Scheduler: s.pol.String(), NsPerOp: perOp(s.d),
			})
		}
		tbl.Rows = append(tbl.Rows, []string{
			w.name, "advised", adv.Strategy.String(), adv.Scheduler.String(),
			secs(advised), fmt.Sprint(perOp(advised)), ratio(advised, best.d),
		})
		tbl.Metrics = append(tbl.Metrics, Metric{
			Workload: w.name, Version: "advised", Threads: threads,
			Strategy: adv.Strategy.String(), Scheduler: adv.Scheduler.String(), NsPerOp: perOp(advised),
		})
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"%s: advised %s/%s = %sx best (%s/%s), %sx worst (%s/%s)",
			w.name, adv.Strategy, adv.Scheduler,
			ratio(advised, best.d), best.st, best.pol,
			ratio(advised, worst.d), worst.st, worst.pol))
	}
	tbl.Notes = append(tbl.Notes,
		"advised picks come from analyze.Advise over the static plan profile — no runtime feedback, no trial passes")
	return tbl, nil
}

// adviseWorkloads builds the five evaluation apps with their static
// profiles. The dense profiles mirror what serve's admission advisor sees
// (shape-only); the sparse profiles run the real inspector so the exact
// conflict histograms feed the advisor, as freeride-translate -analyze does.
func adviseWorkloads(p Params) ([]adviseWorkload, error) {
	points := kmeansData(24<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	rows, dim := points.Rows, points.Cols
	opts := analyze.Options{}

	n := maxInt(256, int(16384*p.Scale*4))
	nnz := maxInt(1, int(0.001*float64(n)*float64(n)))
	triples := randomTriplesBench(nnz, n, n, p.Seed)
	x := intVectorBench(n, p.Seed^0x7ead)
	spmvProfile, err := sparseProfileFor(apps.SpMVClass(apps.SpMVConfig{Rows: n, Cols: n, X: x}), triples, n, n, opts)
	if err != nil {
		return nil, fmt.Errorf("abl-advise spmv profile: %w", err)
	}
	edges := randomTriplesBench(nnz, n, n, p.Seed^0xde6)
	degreeProfile, err := sparseProfileFor(apps.DegreeClass(apps.DegreeConfig{Nodes: n}), edges, n, n, opts)
	if err != nil {
		return nil, fmt.Errorf("abl-advise degree profile: %w", err)
	}
	edgeMatrix := triplesToEdges(edges)

	return []adviseWorkload{
		{
			name: "kmeans", domain: rows,
			profile: analyze.DenseProfile("kmeans", rows, dim, ablK, dim+1, opts),
			run: func(cfg freeride.Config) (time.Duration, error) {
				res, err := apps.KMeansManualFR(points, init, apps.KMeansConfig{K: ablK, Iterations: ablIters, Engine: cfg})
				if err != nil {
					return 0, err
				}
				return res.Timing.Total(), nil
			},
		},
		{
			name: "pca", domain: rows,
			profile: analyze.DenseProfile("pca", rows, dim, dim, dim, opts),
			run: func(cfg freeride.Config) (time.Duration, error) {
				res, err := apps.PCAManualFR(points, apps.PCAConfig{Engine: cfg})
				if err != nil {
					return 0, err
				}
				return res.Timing.Total(), nil
			},
		},
		{
			name: "em", domain: rows,
			profile: analyze.DenseProfile("em", rows, dim, ablK, dim+2, opts),
			run: func(cfg freeride.Config) (time.Duration, error) {
				res, err := apps.EMManualFR(points, init, apps.EMConfig{K: ablK, Iterations: ablIters, Engine: cfg})
				if err != nil {
					return 0, err
				}
				return res.Timing.Total(), nil
			},
		},
		{
			name: "spmv", domain: nnz,
			profile: spmvProfile,
			run: func(cfg freeride.Config) (time.Duration, error) {
				res, err := apps.SpMV(apps.Opt3, triples, apps.SpMVConfig{Rows: n, Cols: n, X: x, Engine: cfg})
				if err != nil {
					return 0, err
				}
				return res.Timing.Total(), nil
			},
		},
		{
			name: "degree", domain: nnz,
			profile: degreeProfile,
			run: func(cfg freeride.Config) (time.Duration, error) {
				res, err := apps.Degree(apps.Opt3, edgeMatrix, apps.DegreeConfig{Nodes: n, Engine: cfg})
				if err != nil {
					return 0, err
				}
				return res.Timing.Total(), nil
			},
		},
	}, nil
}

// sparseProfileFor runs the inspector over the triples and profiles the
// resulting plan — the exact-histogram path.
func sparseProfileFor(cls *core.SparseClass, triples *dataset.Matrix, rows, cols int, opts analyze.Options) (*analyze.PlanProfile, error) {
	coo, err := core.LinearizeCOO(apps.BoxTriples(triples), rows, cols)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewInspectorPlan(coo)
	if err != nil {
		return nil, err
	}
	return analyze.Profile(core.SparsePlanFor(cls, plan, core.Opt3), opts), nil
}

// triplesToEdges reinterprets COO triples as an edge list (src, dst).
func triplesToEdges(triples *dataset.Matrix) *dataset.Matrix {
	edges := dataset.NewMatrix(triples.Rows, 2)
	for i := 0; i < triples.Rows; i++ {
		edges.Data[2*i] = triples.Data[3*i]
		edges.Data[2*i+1] = triples.Data[3*i+1]
	}
	return edges
}

func init() {
	register(Experiment{
		ID:           "abl-advise",
		Title:        "plan advisor vs hand-picked strategy/scheduler across the evaluation apps",
		DefaultScale: 0.05,
		Run:          ablAdvise,
	})
}
