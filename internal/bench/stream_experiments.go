package bench

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/freeride"
)

// ablStream compares the eager translation (sequential linearization, the
// paper's implementation) with TranslateStreaming (the paper's proposed
// pipelining) on the Fig. 11 shape — k-means, single iteration — where
// linearization is proportionally largest. The estimated columns model one
// core per worker: eager pays linearize + reduce-CPU/threads; pipelined
// pays max(linearize, reduce-CPU/threads) because the two overlap.
func ablStream(p Params) (*Table, error) {
	const k = 64
	points := kmeansData(128<<20, p.Scale, p.Seed, k+1)
	init := firstK(points, k)
	boxed := apps.BoxPoints(points)
	dim := points.Cols

	tbl := &Table{
		ID: "abl-stream",
		Title: fmt.Sprintf("eager vs pipelined linearization — k-means %d points, k=%d, single pass",
			points.Rows, k),
		Columns: []string{"threads", "mode", "wall(s)", "linearize(s)", "est-total(s)", "stalls"},
	}
	for _, threads := range p.Threads {
		engCfg := freeride.Config{Threads: threads, SplitRows: splitRowsFor(points.Rows, threads)}
		boxedCents := apps.BoxPoints(init)
		cls := apps.KMeansClass(k, dim, boxedCents)

		// Eager: linearize fully, then reduce.
		t0 := time.Now()
		tr, err := core.Translate(cls, boxed, core.Opt2)
		if err != nil {
			return nil, err
		}
		eng := freeride.New(engCfg)
		res, err := eng.RunContext(context.Background(), tr.Spec(), tr.Source())
		if err != nil {
			eng.Close()
			return nil, err
		}
		eagerWall := time.Since(t0)
		eagerEst := tr.LinearizeTime + res.Stats.CPUTotal()/time.Duration(threads)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(threads), "eager", secs(eagerWall), secs(tr.LinearizeTime), secs(eagerEst), "-",
		})

		// Pipelined: reduce while the background linearizer fills the
		// buffer.
		t0 = time.Now()
		str, st, err := core.TranslateStreaming(cls, boxed, core.Opt2, engCfg.SplitRows)
		if err != nil {
			return nil, err
		}
		resS, err := eng.RunContext(context.Background(), str.Spec(), str.Source())
		if err != nil {
			eng.Close()
			return nil, err
		}
		streamWall := time.Since(t0)
		linDur := st.Wait()
		reduceShare := resS.Stats.CPUTotal() / time.Duration(threads)
		streamEst := linDur
		if reduceShare > streamEst {
			streamEst = reduceShare
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(threads), "pipelined", secs(streamWall), secs(linDur), secs(streamEst),
			fmt.Sprint(st.Waits()),
		})
		eng.Close()
	}
	tbl.Notes = append(tbl.Notes,
		"pipelined est-total = max(linearize, reduce/threads): the overlap the paper proposes (§V) "+
			"hides whichever phase is shorter; wall times on a host with fewer cores than threads "+
			"cannot show the overlap (linearizer and workers share the cores)")
	return tbl, nil
}

func init() {
	register(Experiment{
		ID:           "abl-stream",
		Title:        "eager vs pipelined (overlapped) linearization",
		DefaultScale: 0.01,
		Run:          ablStream,
	})
}
