package bench

import (
	"context"
	"fmt"
	"time"

	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// ablCluster measures the simulated-cluster global combination phase
// (§III-A): node-count sweep across transports and combination algorithms,
// reporting the serialized volume the all-to-one exchange moves. The
// reduction object is deliberately large (the paper's trigger for the
// parallel-merge path).
func ablCluster(p Params) (*Table, error) {
	const groups, elems = 512, 64 // 32k cells ≈ 256 KB per node object
	rows := maxInt(1024, int(float64(1<<20)*p.Scale))
	m := dataset.NewMatrix(rows, 1)
	for i := range m.Data {
		m.Data[i] = float64(i % groups)
	}
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: groups, Elems: elems, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				a.Accumulate(int(a.Row(i)[0]), (a.Begin+i)%elems, 1)
			}
			return nil
		},
	}
	tbl := &Table{
		ID: "abl-cluster",
		Title: fmt.Sprintf("global combination across simulated nodes — %d rows, %dx%d reduction object",
			rows, groups, elems),
		Columns: []string{"nodes", "transport", "algo", "total(s)", "bytes moved", "rounds"},
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		for _, tr := range []cluster.Transport{cluster.InProcess, cluster.TCP} {
			for _, algo := range []cluster.CombineAlgo{cluster.AllToOne, cluster.Tree} {
				c := cluster.New(cluster.Config{
					Nodes:     nodes,
					PerNode:   freeride.Config{Threads: 1, SplitRows: 1024},
					Transport: tr,
					Combine:   algo,
				})
				t0 := time.Now()
				res, err := c.RunContext(context.Background(), spec, dataset.NewMemorySource(m))
				if err != nil {
					c.Close()
					return nil, err
				}
				elapsed := time.Since(t0)
				c.Close()
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprint(nodes), tr.String(), algo.String(),
					secs(elapsed), fmt.Sprint(res.Stats.BytesMoved), fmt.Sprint(res.Stats.Rounds),
				})
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"the TCP rows serialize (nodes-1) reduction objects over loopback — the communication "+
			"the paper's middleware handles 'internally and transparently'")
	return tbl, nil
}

func init() {
	register(Experiment{
		ID:           "abl-cluster",
		Title:        "global combination across simulated cluster nodes",
		DefaultScale: 0.25,
		Run:          ablCluster,
	})
}
