package bench

import (
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// ablFuse measures the tentpole of opt-3: batching the engine hot path from
// per-element accumulation into split-granular fused kernels. K-means runs
// opt-2 (per-element closures over the linearized words) against opt-3 (one
// devirtualized block kernel call per split, worker-local dense buffer,
// one bulk flush into the reduction object per split) across the thread
// sweep × two schedulers × two sharing strategies; PCA compares the same
// two levels on its two-phase pipeline under the default engine config.
//
// The fused path's win is per-element overhead removal (closure calls,
// per-update synchronization), so the speedup column is meaningful at any
// thread count; contended strategies (AtomicCAS here) benefit most because
// the flush touches the shared object once per split instead of once per
// value.
func ablFuse(p Params) (*Table, error) {
	if p.Reps < 1 {
		p.Reps = 1
	}
	points := kmeansData(64<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	boxed := apps.BoxPoints(points)

	f := math.Cbrt(p.Scale)
	pcaDims := maxInt(4, int(1000*f))
	pcaElems := maxInt(8, int(10000*f))
	pcaData := dataset.UniformMatrix(pcaElems, pcaDims, p.Seed, -5, 5)
	pcaBoxed := apps.BoxMatrix(pcaData)

	policies := []sched.Policy{sched.Dynamic, sched.WorkStealing}
	strategies := []robj.Strategy{robj.FullReplication, robj.AtomicCAS}

	tbl := &Table{
		ID: "abl-fuse",
		Title: fmt.Sprintf(
			"fused split kernels (opt-3) vs per-element (opt-2) — k-means %d points k=%d i=%d; PCA %d×%d",
			points.Rows, ablK, ablIters, pcaElems, pcaDims),
		Columns: []string{"workload", "threads", "scheduler", "strategy", "version", "total(s)", "fused speedup"},
	}

	kmeansOps := int64(points.Rows) * int64(ablIters)
	// Track the fused speedup at the largest thread count for the notes.
	var lastSpeedups []string

	for _, threads := range p.Threads {
		for _, pol := range policies {
			for _, st := range strategies {
				cfg := apps.KMeansConfig{
					K: ablK, Iterations: ablIters,
					Engine: freeride.Config{
						Threads: threads, SplitRows: splitRowsFor(points.Rows, threads),
						Scheduler: pol, Strategy: st,
					},
				}
				totals := map[apps.Version]time.Duration{}
				cents := map[apps.Version]*dataset.Matrix{}
				for _, v := range []apps.Version{apps.Opt2, apps.Opt3} {
					var best *apps.KMeansResult
					for rep := 0; rep < p.Reps; rep++ {
						res, err := apps.KMeansTranslated(boxed, init, optOf(v), cfg)
						if err != nil {
							return nil, fmt.Errorf("abl-fuse kmeans %v threads=%d: %w", v, threads, err)
						}
						if best == nil || res.Timing.Total() < best.Timing.Total() {
							best = res
						}
					}
					totals[v] = best.Timing.Total()
					cents[v] = best.Centroids
				}
				// Float inputs mean the two accumulation orders differ in
				// rounding, so this is a sanity check, not the bit-identity
				// invariant (the test suite defends that on integer data).
				if err := roughlyEqual(cents[apps.Opt2], cents[apps.Opt3]); err != nil {
					return nil, fmt.Errorf("abl-fuse: opt-3 diverges from opt-2 (threads=%d %v/%v): %w",
						threads, pol, st, err)
				}
				speedup := ratio(totals[apps.Opt2], totals[apps.Opt3])
				for _, v := range []apps.Version{apps.Opt2, apps.Opt3} {
					col := ""
					if v == apps.Opt3 {
						col = speedup
					}
					tbl.Rows = append(tbl.Rows, []string{
						"kmeans", fmt.Sprint(threads), pol.String(), st.String(),
						v.String(), secs(totals[v]), col,
					})
					tbl.Metrics = append(tbl.Metrics, Metric{
						Workload: "kmeans", Version: v.String(), Threads: threads,
						Scheduler: pol.String(), Strategy: st.String(),
						NsPerOp: totals[v].Nanoseconds() / kmeansOps,
					})
				}
				if threads == p.Threads[len(p.Threads)-1] {
					lastSpeedups = append(lastSpeedups,
						fmt.Sprintf("%s/%s %sx", pol, st, speedup))
				}
			}
		}
	}

	pcaOps := int64(pcaElems) * 2 // mean pass + covariance pass
	for _, threads := range p.Threads {
		cfg := apps.PCAConfig{Engine: freeride.Config{
			Threads: threads, SplitRows: splitRowsFor(pcaElems, threads),
		}}
		totals := map[core.OptLevel]time.Duration{}
		for _, opt := range []core.OptLevel{core.Opt2, core.Opt3} {
			var best *apps.PCAResult
			for rep := 0; rep < p.Reps; rep++ {
				res, err := apps.PCATranslated(pcaBoxed, opt, cfg)
				if err != nil {
					return nil, fmt.Errorf("abl-fuse pca %v threads=%d: %w", opt, threads, err)
				}
				if best == nil || res.Timing.Total() < best.Timing.Total() {
					best = res
				}
			}
			totals[opt] = best.Timing.Total()
		}
		speedup := ratio(totals[core.Opt2], totals[core.Opt3])
		for _, opt := range []core.OptLevel{core.Opt2, core.Opt3} {
			col := ""
			if opt == core.Opt3 {
				col = speedup
			}
			tbl.Rows = append(tbl.Rows, []string{
				"pca", fmt.Sprint(threads), "default", "default",
				opt.String(), secs(totals[opt]), col,
			})
			tbl.Metrics = append(tbl.Metrics, Metric{
				Workload: "pca", Version: opt.String(), Threads: threads,
				NsPerOp: totals[opt].Nanoseconds() / pcaOps,
			})
		}
	}

	last := p.Threads[len(p.Threads)-1]
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("fused kmeans speedup @%d threads: %v", last, lastSpeedups),
		"opt-3 fuses the per-element kernel into one call per split with a worker-local dense buffer; "+
			"the reduction object is touched once per split (bulk merge) instead of once per accumulated value")
	return tbl, nil
}

// roughlyEqual checks two matrices agree within floating-point reassociation
// noise (the fused path sums per split before flushing, so bit patterns can
// differ on non-integer inputs; magnitudes must not).
func roughlyEqual(a, b *dataset.Matrix) error {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return fmt.Errorf("shape %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		x, y := a.Data[i], b.Data[i]
		if diff := math.Abs(x - y); diff > 1e-6*(1+math.Abs(x)) {
			return fmt.Errorf("cell %d: %v vs %v", i, x, y)
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:           "abl-fuse",
		Title:        "fused split kernels (opt-3) vs per-element (opt-2)",
		DefaultScale: 0.01,
		Run:          ablFuse,
	})
}
