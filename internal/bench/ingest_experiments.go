package bench

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"chapelfreeride/internal/cluster"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// ingestDim mirrors the paper's 10-feature k-means input; scale 1 is the
// 1.2 GB dataset (15,728,640 rows × 10 float64 columns).
const (
	ingestDim      = 10
	ingestFullRows = 15728640
	// ingestBlockRows sizes the prefetch blocks for the boxed binary path:
	// 8192 rows × 10 cols × 8 B = 640 KB per block, large enough to
	// amortize the read syscall, small enough that a handful of in-flight
	// blocks stay cache-resident.
	ingestBlockRows = 8192
	ingestGroups    = 16
)

// ingestSpec is the measurement kernel: a grouped count+sum histogram over
// the first two columns, cheap enough that the pass time is dominated by
// ingestion (parse, copy, or page-fault) rather than arithmetic. Inputs are
// uniform in [0, 16), so the group index needs no clamping.
func ingestSpec() freeride.Spec {
	return freeride.Spec{
		Object: freeride.ObjectSpec{Groups: ingestGroups, Elems: 2, Op: robj.OpAdd},
		BlockReduction: func(a *freeride.BlockArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				g := int(row[0]) % ingestGroups
				a.Accumulate(g, 0, 1)
				a.Accumulate(g, 1, row[1])
			}
			return nil
		},
	}
}

// ensureIngestFiles materializes the binary (row-major v2) and CSV forms of
// the synthetic dataset under dir, reusing files from a previous run when
// their header already matches — at paper scale the CSV alone is ~3 GB, so
// regeneration is worth skipping.
func ensureIngestFiles(dir string, rows int, seed int64) (binPath, csvPath string, err error) {
	base := fmt.Sprintf("ingest-%dx%d-s%d", rows, ingestDim, seed)
	binPath = filepath.Join(dir, base+".frds")
	csvPath = filepath.Join(dir, base+".csv")

	haveBin := false
	if fs, err := dataset.OpenFileSource(binPath); err == nil {
		haveBin = fs.NumRows() == rows && fs.Cols() == ingestDim
		fs.Close()
	}
	haveCSV := false
	if st, err := os.Stat(csvPath); err == nil && st.Size() > 0 {
		haveCSV = true
	}
	if haveBin && haveCSV {
		return binPath, csvPath, nil
	}

	m := dataset.UniformMatrix(rows, ingestDim, seed, 0, ingestGroups)
	if !haveBin {
		if err := dataset.WriteFile(binPath, m); err != nil {
			return "", "", fmt.Errorf("abl-ingest: write binary: %w", err)
		}
	}
	if !haveCSV {
		f, err := os.Create(csvPath)
		if err != nil {
			return "", "", fmt.Errorf("abl-ingest: write csv: %w", err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		werr := dataset.WriteCSV(bw, m, nil)
		if werr == nil {
			werr = bw.Flush()
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return "", "", fmt.Errorf("abl-ingest: write csv: %w", werr)
		}
	}
	return binPath, csvPath, nil
}

// ablIngest measures the zero-copy ingestion tentpole: the same reduction
// pass over the same data through three ingestion paths —
//
//	csv-boxed     parse-every-pass text baseline (CSVFileSource)
//	bin-boxed     binary reads copied through a read-ahead pipeline whose
//	              depth the obs-counter calibration pass chooses
//	bin-zerocopy  mmap-backed source whose splits alias the page cache
//
// — on both the single-engine and the simulated-cluster (RunFile, each node
// mapping its shard) paths, against a measured memcpy baseline: the cost of
// just copying the payload once, which bounds what any copying ingestion
// path can reach. Throughput is rows/sec; the speedup column is vs the
// csv-boxed row at the same thread count.
func ablIngest(p Params) (*Table, error) {
	rows := maxInt(4096, int(float64(ingestFullRows)*p.Scale))

	dir := p.IngestDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "abl-ingest-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	binPath, csvPath, err := ensureIngestFiles(dir, rows, p.Seed)
	if err != nil {
		return nil, err
	}

	// Calibrate the read-ahead depth from the obs hit/miss counters once;
	// every bin-boxed measurement then runs at the chosen depth.
	calSrc, err := dataset.OpenFileSource(binPath)
	if err != nil {
		return nil, err
	}
	cal, err := dataset.CalibratePrefetch(context.Background(), calSrc, ingestBlockRows, 0, 0)
	calSrc.Close()
	if err != nil {
		return nil, fmt.Errorf("abl-ingest: calibrate: %w", err)
	}

	spec := ingestSpec()
	tbl := &Table{
		ID: "abl-ingest",
		Title: fmt.Sprintf("zero-copy columnar ingestion — %d×%d (%.1f MB binary), read-ahead depth %d (calibrated)",
			rows, ingestDim, float64(rows*ingestDim*8)/(1<<20), cal.Depth),
		Columns: []string{"path", "mode", "threads", "total(s)", "Mrows/s", "vs csv"},
	}

	// memcpy baseline: stream the mapped payload into one reusable buffer.
	// No parse, no engine — the copy cost every boxed path pays at minimum.
	mapped, err := dataset.OpenMappedSource(binPath)
	if err != nil {
		return nil, err
	}
	defer mapped.Close()
	var memcpyTotal time.Duration
	{
		buf := make([]float64, ingestBlockRows*ingestDim)
		// Untimed warm-up scan: fault the whole payload in first, so the
		// baseline (which runs before everything else) measures the copy,
		// not the one-time cold page-in every subsequent mode would then
		// inherit for free.
		for lo := 0; lo < rows; lo += ingestBlockRows {
			hi := minInt(lo+ingestBlockRows, rows)
			if err := mapped.ReadRows(lo, hi, buf[:(hi-lo)*ingestDim]); err != nil {
				return nil, err
			}
		}
		best := time.Duration(0)
		for rep := 0; rep < p.Reps; rep++ {
			t0 := time.Now()
			for lo := 0; lo < rows; lo += ingestBlockRows {
				hi := minInt(lo+ingestBlockRows, rows)
				if err := mapped.ReadRows(lo, hi, buf[:(hi-lo)*ingestDim]); err != nil {
					return nil, err
				}
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		memcpyTotal = best
		tbl.Rows = append(tbl.Rows, []string{
			"baseline", "memcpy", "1", secs(memcpyTotal), mrows(rows, memcpyTotal), "",
		})
		tbl.Metrics = append(tbl.Metrics, Metric{
			Workload: "baseline", Version: "memcpy", Threads: 1,
			NsPerOp:    nsPerRow(memcpyTotal, rows),
			RowsPerSec: rowsPerSec(rows, memcpyTotal),
		})
	}

	// openMode returns a fresh source for one measurement plus its cleanup;
	// the mapped source is session-long (page cache keeps reopens cheap,
	// but one mapping is the realistic serving shape).
	openMode := func(mode string) (dataset.Source, func(), error) {
		switch mode {
		case "csv-boxed":
			s, err := dataset.OpenCSVFileSource(csvPath, false)
			if err != nil {
				return nil, nil, err
			}
			return s, func() { s.Close() }, nil
		case "bin-boxed":
			fs, err := dataset.OpenFileSource(binPath)
			if err != nil {
				return nil, nil, err
			}
			pf := dataset.NewPrefetchSourceDepth(fs, ingestBlockRows, cal.Depth+2, cal.Depth)
			return pf, func() { fs.Close() }, nil
		case "bin-zerocopy":
			return mapped, func() {}, nil
		}
		return nil, nil, fmt.Errorf("abl-ingest: unknown mode %q", mode)
	}
	modes := []string{"csv-boxed", "bin-boxed", "bin-zerocopy"}

	// runEngine times one fastest-of-reps engine pass and returns the group
	// counts (exact integers, identical across modes by construction).
	runEngine := func(threads int, mode string) (time.Duration, []float64, error) {
		src, cleanup, err := openMode(mode)
		if err != nil {
			return 0, nil, err
		}
		defer cleanup()
		eng := freeride.New(freeride.Config{
			Threads: threads, SplitRows: splitRowsFor(rows, threads),
		})
		defer eng.Close()
		var best time.Duration
		var counts []float64
		for rep := 0; rep < p.Reps; rep++ {
			t0 := time.Now()
			res, err := eng.RunContext(context.Background(), spec, src)
			if err != nil {
				return 0, nil, fmt.Errorf("abl-ingest engine %s threads=%d: %w", mode, threads, err)
			}
			d := time.Since(t0)
			snap := res.Object.Snapshot()
			if rerr := eng.Release(res); rerr != nil {
				return 0, nil, rerr
			}
			if best == 0 || d < best {
				best = d
				counts = groupCounts(snap)
			}
		}
		return best, counts, nil
	}

	runCluster := func(threads int, mode string) (time.Duration, []float64, error) {
		c := cluster.New(cluster.Config{
			Nodes: 2,
			PerNode: freeride.Config{
				Threads: threads, SplitRows: splitRowsFor(rows/2, threads),
			},
		})
		defer c.Close()
		var best time.Duration
		var counts []float64
		for rep := 0; rep < p.Reps; rep++ {
			var res *cluster.Result
			var err error
			t0 := time.Now()
			if mode == "bin-zerocopy" {
				// The file path: every node maps its own shard locally.
				res, err = c.RunFileContext(context.Background(), spec, binPath)
			} else {
				var src dataset.Source
				var cleanup func()
				src, cleanup, err = openMode(mode)
				if err != nil {
					return 0, nil, err
				}
				res, err = c.RunContext(context.Background(), spec, src)
				cleanup()
			}
			if err != nil {
				return 0, nil, fmt.Errorf("abl-ingest cluster %s threads=%d: %w", mode, threads, err)
			}
			d := time.Since(t0)
			snap := res.Object.Snapshot()
			if rerr := c.Release(res); rerr != nil {
				return 0, nil, rerr
			}
			if best == 0 || d < best {
				best = d
				counts = groupCounts(snap)
			}
		}
		return best, counts, nil
	}

	paths := []struct {
		name string
		run  func(threads int, mode string) (time.Duration, []float64, error)
	}{{"engine", runEngine}, {"cluster", runCluster}}

	var lastEngineSpeedup string
	for _, threads := range p.Threads {
		for _, path := range paths {
			totals := map[string]time.Duration{}
			var refCounts []float64
			for _, mode := range modes {
				total, counts, err := path.run(threads, mode)
				if err != nil {
					return nil, err
				}
				totals[mode] = total
				// The per-group row counts are integer-exact, so every
				// ingestion path must agree bit-for-bit: a mismatch means a
				// path read wrong bytes, not a rounding difference.
				if refCounts == nil {
					refCounts = counts
				} else if err := sameCounts(refCounts, counts); err != nil {
					return nil, fmt.Errorf("abl-ingest: %s/%s threads=%d diverges: %w",
						path.name, mode, threads, err)
				}
			}
			for _, mode := range modes {
				speed := ratio(totals["csv-boxed"], totals[mode])
				col := ""
				if mode != "csv-boxed" {
					col = speed + "x"
				}
				tbl.Rows = append(tbl.Rows, []string{
					path.name, mode, fmt.Sprint(threads),
					secs(totals[mode]), mrows(rows, totals[mode]), col,
				})
				m := Metric{
					Workload: path.name, Version: mode, Threads: threads,
					NsPerOp:    nsPerRow(totals[mode], rows),
					RowsPerSec: rowsPerSec(rows, totals[mode]),
				}
				if mode == "bin-boxed" {
					m.ReadaheadDepth = cal.Depth
				}
				tbl.Metrics = append(tbl.Metrics, m)
				if path.name == "engine" && mode == "bin-zerocopy" &&
					threads == p.Threads[len(p.Threads)-1] {
					lastEngineSpeedup = speed
				}
			}
		}
	}

	probes := make([]string, 0, len(cal.Probes))
	for _, pr := range cal.Probes {
		probes = append(probes, fmt.Sprintf("d%d=%.2f", pr.Depth, pr.HitShare))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("read-ahead calibration chose depth %d from hit shares %v (block %d rows)",
			cal.Depth, probes, ingestBlockRows),
		fmt.Sprintf("engine zero-copy vs csv-boxed @%d threads: %sx (memcpy baseline %s Mrows/s bounds all copying paths)",
			p.Threads[len(p.Threads)-1], lastEngineSpeedup, mrows(rows, memcpyTotal)),
		"bin-zerocopy splits alias the mmap'd payload (RowSlicer), so a pass moves no bytes beyond "+
			"page faults; bin-boxed pays one copy per split; csv-boxed re-parses every pass")
	return tbl, nil
}

// groupCounts extracts the per-group row counts (elem 0 of each group) from
// a snapshot of the ingest object — the integer-exact cells used for the
// cross-mode equivalence check.
func groupCounts(snap []float64) []float64 {
	counts := make([]float64, ingestGroups)
	for g := 0; g < ingestGroups; g++ {
		counts[g] = snap[g*2]
	}
	return counts
}

func sameCounts(a, b []float64) error {
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("group %d count %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}

func mrows(rows int, d time.Duration) string {
	if d <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(rows)/d.Seconds()/1e6)
}

func rowsPerSec(rows int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(rows) / d.Seconds()
}

func nsPerRow(d time.Duration, rows int) int64 {
	if rows == 0 {
		return 0
	}
	return d.Nanoseconds() / int64(rows)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	register(Experiment{
		ID:           "abl-ingest",
		Title:        "zero-copy mmap ingestion vs boxed binary vs CSV parse",
		DefaultScale: 0.01,
		Run:          ablIngest,
	})
}
