package bench

import (
	"fmt"
	"math"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
)

// pcaFigure runs one of the paper's PCA figures. The paper's matrices are
// stated as rows×columns where rows is the dimensionality and columns the
// number of data elements; our generator produces elements×dims, the same
// workload transposed. Scale shrinks both axes by its cube root so the
// total work (elements × dims²) scales linearly with Scale.
func pcaFigure(id, title string, dims, elems int) func(Params) (*Table, error) {
	return func(p Params) (*Table, error) {
		if p.Reps < 1 {
			p.Reps = 1
		}
		f := math.Cbrt(p.Scale)
		d := maxInt(4, int(float64(dims)*f))
		n := maxInt(8, int(float64(elems)*f))
		data := dataset.UniformMatrix(n, d, p.Seed, -5, 5)
		boxed := apps.BoxMatrix(data)

		tbl := &Table{
			ID:      id,
			Title:   fmt.Sprintf("%s — %d elements × %d dims", title, n, d),
			Columns: []string{"threads", "version", "total(s)", "reduce(s)", "est-total(s)", "balance", "vs manual"},
		}
		totals := map[string]time.Duration{}
		results := map[string]*apps.PCAResult{}
		versions := []apps.Version{apps.Opt2, apps.ManualFR}
		for _, threads := range p.Threads {
			cfg := apps.PCAConfig{Engine: freeride.Config{
				Threads: threads, SplitRows: splitRowsFor(n, threads),
			}}
			for _, v := range versions {
				var best *apps.PCAResult
				for rep := 0; rep < p.Reps; rep++ {
					var res *apps.PCAResult
					var err error
					if v == apps.ManualFR {
						res, err = apps.PCAManualFR(data, cfg)
					} else {
						res, err = apps.PCATranslated(boxed, optOf(v), cfg)
					}
					if err != nil {
						return nil, fmt.Errorf("%s %v threads=%d: %w", id, v, threads, err)
					}
					if best == nil || res.Timing.Total() < best.Timing.Total() {
						best = res
					}
				}
				totals[key(threads, v)] = best.Timing.Total()
				results[key(threads, v)] = best
			}
		}
		ests := map[string]time.Duration{}
		for _, threads := range p.Threads {
			for _, v := range versions {
				ests[key(threads, v)] = results[key(threads, v)].Timing.EstTotal()
			}
			man := ests[key(threads, apps.ManualFR)]
			for _, v := range versions {
				res := results[key(threads, v)]
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprint(threads), v.String(),
					secs(res.Timing.Total()), secs(res.Timing.Reduce),
					secs(res.Timing.EstTotal()), fmt.Sprintf("%.2f", res.Timing.Balance()),
					ratio(res.Timing.EstTotal(), man),
				})
			}
		}
		t1 := p.Threads[0]
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("1-thread: opt-2 / manual = %s (paper: within ~1.2x)",
				ratio(totals[key(t1, apps.Opt2)], totals[key(t1, apps.ManualFR)])))
		if len(p.Threads) > 1 {
			last := p.Threads[len(p.Threads)-1]
			tbl.Notes = append(tbl.Notes,
				fmt.Sprintf("est scaling 1→%d threads (manual): %sx (paper: good scalability to 4 threads, limited at 8 by load balance)",
					last, ratio(ests[key(t1, apps.ManualFR)], ests[key(last, apps.ManualFR)])))
		}
		return tbl, nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func init() {
	register(Experiment{
		ID:           "fig12",
		Title:        "PCA, 1000 dims × 10,000 elements — opt-2 vs manual FR",
		Paper:        "Figure 12",
		DefaultScale: 0.001,
		Run:          pcaFigure("fig12", "PCA small", 1000, 10000),
	})
	register(Experiment{
		ID:           "fig13",
		Title:        "PCA, 1000 dims × 100,000 elements — opt-2 vs manual FR",
		Paper:        "Figure 13",
		DefaultScale: 0.001,
		Run:          pcaFigure("fig13", "PCA large", 1000, 100000),
	})
}
