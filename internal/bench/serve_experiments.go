package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/serve"
)

// ablServe is the reduction-as-a-service load experiment: it boots a real
// freeride-serve stack (serve.Server behind an HTTP listener) and drives the
// adversarial multi-tenant scenario the admission queue exists for — a
// greedy tenant floods the whole queue with its backlog first, then four
// fair tenants submit their (much smaller) workloads behind it. All jobs go
// in asynchronously over a small pool of keep-alive connections, and the
// whole burst is admitted before the runner pool starts: on a small host
// the runners' kernel compute would otherwise steal the CPU that request
// handling needs, gating arrival to the service rate so no backlog can ever
// form. Admitting first decouples the two, so the queue demonstrably holds
// the entire burst (a thousand-plus in-flight jobs at scale 1) and the
// drain order is decided by the admission queue's quota + round-robin
// arbitration alone.
//
// What the numbers pin down:
//
//   - capacity: the queue genuinely absorbs the burst — peak concurrent
//     in-flight (admitted, not yet finished) jobs is sampled and reported,
//     and at scale 1 exceeds 1000;
//   - fairness: per-tenant latency comes from each job's server-side
//     accounting (queue_ms + service_ms from the Status record). Even
//     though the greedy tenant's jobs occupy the queue first, quota +
//     round-robin dequeue hold it to at most quota runner slots, so the
//     fair tenants' queue waits stay far below the greedy tenant's —
//     FIFO admission would instead park every fair job behind the whole
//     greedy backlog;
//   - accounting: completions observed by the load generator match the
//     server's serve_jobs_completed_total delta exactly.
func ablServe(p Params) (*Table, error) {
	const (
		fairTenants = 4
		greedyShare = 0.6 // fraction of the fleet the greedy tenant submits
		submitters  = 64  // concurrent submission workers (keep-alive reuse)
	)
	totalJobs := int(1200 * p.Scale)
	if totalJobs < 60 {
		totalJobs = 60
	}
	concurrency := 16
	quota := 4

	srv := serve.New(serve.Config{
		Engines:        2,
		Engine:         freeride.Config{Threads: 2, SplitRows: 256},
		MaxConcurrency: concurrency,
		TenantQuota:    quota,
		// Depth must hold the whole burst: the experiment measures backlog
		// fairness, not rejection behavior (serve's own tests pin the 429
		// path).
		QueueDepth: 2 * totalJobs,
		RetainJobs: 2 * totalJobs,
	})
	defer srv.Close()
	// Each job is a real multi-pass kmeans with non-trivial compute: the
	// per-job work must be heavy enough that the burst outruns the runners
	// and a backlog forms — that is the regime where the admission queue's
	// quota and round-robin actually decide who runs next. With trivially
	// fast kernels the queue stays empty and the fairness comparison is
	// meaningless.
	if _, err := srv.RegisterDataset(serve.DatasetSpec{
		Name: "bench", Kind: "gaussian", Rows: 8192, Dim: 8, Groups: 8, Seed: p.Seed,
	}); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        submitters,
		MaxIdleConnsPerHost: submitters,
	}}

	jobsBefore := obs.Default.Value("serve_jobs_total")
	completedBefore := obs.Default.Value("serve_jobs_completed_total")
	failedBefore := obs.Default.Value("serve_jobs_failed_total")
	rejectedBefore := obs.Default.Value("serve_jobs_rejected_total")
	finishedDelta := func() int64 {
		return obs.Default.Value("serve_jobs_completed_total") - completedBefore +
			obs.Default.Value("serve_jobs_failed_total") - failedBefore
	}

	// submitBatch fires n async submissions for one tenant group across the
	// submitter pool and returns the accepted job ids (tenant per id).
	type accepted struct {
		id     string
		tenant string
	}
	var submitFailures int64
	var failMu sync.Mutex
	submitBatch := func(tenantOf func(i int) string, n int) []accepted {
		out := make([]accepted, n)
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					tenant := tenantOf(i)
					body, _ := json.Marshal(serve.JobRequest{
						Kernel: "kmeans", Dataset: "bench", Tenant: tenant,
						Params: serve.Params{K: 8, Iterations: 6}, Wait: false,
					})
					resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						failMu.Lock()
						submitFailures++
						failMu.Unlock()
						continue
					}
					var st serve.Status
					decErr := json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if decErr != nil || resp.StatusCode != http.StatusAccepted {
						failMu.Lock()
						submitFailures++
						failMu.Unlock()
						continue
					}
					out[i] = accepted{id: st.ID, tenant: tenant}
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		return out
	}

	// Sample the backlog while the burst drains: peak in-flight (admitted
	// but unfinished) jobs and peak queued (unclaimed) jobs. The fairness
	// numbers only mean something if a real queue formed.
	var peakInflight, peakDepth int64
	sampleStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				admitted := obs.Default.Value("serve_jobs_total") - jobsBefore
				if inflight := admitted - finishedDelta(); inflight > peakInflight {
					peakInflight = inflight
				}
				if d := int64(srv.QueueDepth()); d > peakDepth {
					peakDepth = d
				}
			case <-sampleStop:
				return
			}
		}
	}()

	// The adversarial ordering: the greedy tenant's whole backlog is
	// admitted before any fair-tenant job arrives.
	wallStart := time.Now()
	greedyJobs := int(float64(totalJobs) * greedyShare)
	ids := submitBatch(func(int) string { return "greedy" }, greedyJobs)
	ids = append(ids, submitBatch(func(i int) string {
		return fmt.Sprintf("fair-%d", i%fairTenants)
	}, totalJobs-greedyJobs)...)
	submitted := int64(len(ids)) - submitFailures
	submitWall := time.Since(wallStart)

	// The burst is fully admitted; release the runner pool on it.
	srv.Start()

	// Drain: wait until the server has finished every accepted job.
	for finishedDelta() < submitted {
		time.Sleep(25 * time.Millisecond)
	}
	wall := time.Since(wallStart)
	close(sampleStop)
	<-samplerDone

	completed := obs.Default.Value("serve_jobs_completed_total") - completedBefore
	rejected := obs.Default.Value("serve_jobs_rejected_total") - rejectedBefore

	// Collect each job's final server-side accounting. queue_ms is what the
	// quota shapes; queue_ms+service_ms is the job's admission→finish
	// latency as a tenant polling the API would observe it.
	waitByTenant := map[string][]float64{}
	latByTenant := map[string][]float64{}
	var pollFailures int
	for _, a := range ids {
		if a.id == "" {
			continue
		}
		resp, err := client.Get(base + "/v1/jobs/" + a.id)
		if err != nil {
			pollFailures++
			continue
		}
		var st serve.Status
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decErr != nil || st.State != serve.JobDone {
			pollFailures++
			continue
		}
		waitByTenant[a.tenant] = append(waitByTenant[a.tenant], st.QueueMillis)
		latByTenant[a.tenant] = append(latByTenant[a.tenant], st.QueueMillis+st.ServiceMillis)
	}
	tenants := make([]string, 0, len(waitByTenant))
	for tenant := range waitByTenant {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)

	tbl := &Table{
		ID:      "abl-serve",
		Title:   fmt.Sprintf("serving under load: %d-job burst, %d runners, tenant quota %d", totalJobs, concurrency, quota),
		Columns: []string{"tenant", "jobs", "queue-wait p50 ms", "queue-wait p99 ms", "latency p50 ms", "latency p99 ms"},
	}
	quantile := func(sorted []float64, q float64) float64 {
		return sorted[int(float64(len(sorted)-1)*q)]
	}
	var fairWorstWaitP99, greedyWaitP99 float64
	for _, tenant := range tenants {
		waits, lats := waitByTenant[tenant], latByTenant[tenant]
		sort.Float64s(waits)
		sort.Float64s(lats)
		waitP99 := quantile(waits, 0.99)
		if tenant == "greedy" {
			greedyWaitP99 = waitP99
		} else if waitP99 > fairWorstWaitP99 {
			fairWorstWaitP99 = waitP99
		}
		tbl.Rows = append(tbl.Rows, []string{
			tenant,
			fmt.Sprintf("%d", len(waits)),
			fmt.Sprintf("%.1f", quantile(waits, 0.5)),
			fmt.Sprintf("%.1f", waitP99),
			fmt.Sprintf("%.1f", quantile(lats, 0.5)),
			fmt.Sprintf("%.1f", quantile(lats, 0.99)),
		})
		tbl.Metrics = append(tbl.Metrics, Metric{
			Workload: "serve",
			Version:  tenant,
			Threads:  concurrency,
			NsPerOp:  int64(quantile(lats, 0.99) * 1e6), // latency p99 in ns
		})
	}

	throughput := float64(completed) / wall.Seconds()
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("peak concurrent in-flight jobs: %d (peak queued backlog %d) of %d submitted",
			peakInflight, peakDepth, totalJobs),
		fmt.Sprintf("submit wall %.2fs, total wall %.2fs, throughput %.0f jobs/s, completions %d, rejections %d, submit/poll failures %d/%d",
			submitWall.Seconds(), wall.Seconds(), throughput, completed, rejected, submitFailures, pollFailures))
	if completed != submitted {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("WARNING: server completions (%d) disagree with accepted submissions (%d)",
			completed, submitted))
	}
	switch {
	case peakDepth < int64(concurrency):
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"NOTE: backlog never exceeded the runner pool (%d < %d) — quota was not exercised; treat the fairness split as unmeasured",
			peakDepth, concurrency))
	case greedyWaitP99 > 0 && fairWorstWaitP99 > greedyWaitP99:
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"WARNING: fairness violated — worst fair-tenant queue-wait p99 %.1fms exceeds greedy %.1fms",
			fairWorstWaitP99, greedyWaitP99))
	default:
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"quota fairness holds: worst fair-tenant queue-wait p99 %.1fms <= greedy queue-wait p99 %.1fms despite the greedy tenant flooding the queue first (quota %d caps its runner share)",
			fairWorstWaitP99, greedyWaitP99, quota))
	}
	return tbl, nil
}

func init() {
	register(Experiment{
		ID:           "abl-serve",
		Title:        "reduction-as-a-service frontend under adversarial multi-tenant load",
		DefaultScale: 1,
		Run:          ablServe,
	})
}
