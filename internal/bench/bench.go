// Package bench is the experiment harness: it regenerates every evaluation
// figure of the paper (Figures 9-13) as printed time series, plus the
// ablation studies DESIGN.md lists (reduction-object strategies, schedulers,
// pipelined linearization, FREERIDE vs Map-Reduce, split size).
//
// Experiments are registered by ID; cmd/freeride-bench runs and prints
// them. Each experiment takes Params (thread sweep, dataset scale, seed)
// and returns a Table. Scale = 1 reproduces the paper's dataset sizes
// (12 MB / 1.2 GB k-means inputs, 1000×10,000 and 1000×100,000 PCA
// matrices); the default scales keep a full run in the order of a minute on
// a laptop while preserving the workload shape (points ≫ centroids, the
// same k and iteration counts).
package bench

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"chapelfreeride/internal/dataset"
)

// Params control an experiment run.
type Params struct {
	// Threads is the sweep of worker counts (the paper sweeps 1-8).
	Threads []int
	// Scale multiplies the paper's dataset size; 1.0 is full size.
	Scale float64
	// Seed makes the synthetic datasets reproducible.
	Seed int64
	// Reps repeats each (version, threads) measurement and keeps the
	// fastest, suppressing scheduling noise. Default 1.
	Reps int

	// FaultRate injects seeded transient read faults on this fraction of
	// split reads in experiments that wrap their source with WrapSource
	// (abl-faults). 0 leaves sources clean.
	FaultRate float64
	// FaultSeed fixes the fault pattern. Default 1.
	FaultSeed int64
	// Retries bounds the retry budget of the RetrySource layer WrapSource
	// adds. Default 3.
	Retries int
	// Timeout cancels fault-aware experiment passes via context when
	// positive (see RunContext).
	Timeout time.Duration

	// SessionPasses is how many reduction passes abl-session repeats per
	// lifecycle mode. Default 30.
	SessionPasses int
	// SessionJobs is abl-session's sweep of concurrent jobs submitted to
	// one session's worker pool. Default 2,4 (1 is the plain session row).
	SessionJobs []int

	// IngestDir is where abl-ingest materializes (and reuses across runs)
	// its on-disk CSV and binary dataset files. Empty means a temporary
	// directory deleted after the run — set it when iterating at paper
	// scale so the multi-gigabyte files are written once.
	IngestDir string
}

// WithDefaults fills unset fields: threads 1,2,4,8 (the paper's sweep —
// deliberately not capped at the machine's core count, because the harness
// reports CPU-accounting-based scaling estimates that remain meaningful
// beyond it), scale as given per experiment, seed 42.
func (p Params) WithDefaults(defaultScale float64) Params {
	if len(p.Threads) == 0 {
		p.Threads = []int{1, 2, 4, 8}
	}
	if p.Scale <= 0 {
		p.Scale = defaultScale
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Reps < 1 {
		p.Reps = 1
	}
	if p.FaultSeed == 0 {
		p.FaultSeed = 1
	}
	if p.Retries == 0 {
		p.Retries = 3
	}
	if p.SessionPasses < 1 {
		p.SessionPasses = 30
	}
	if len(p.SessionJobs) == 0 {
		p.SessionJobs = []int{2, 4}
	}
	return p
}

// WrapSource applies the fault/retry layers Params configure: a FaultSource
// injecting seeded transient faults under a RetrySource with the retry
// budget. With FaultRate 0 the source is returned unchanged.
func (p Params) WrapSource(src dataset.Source) dataset.Source {
	if p.FaultRate <= 0 {
		return src
	}
	src = dataset.NewFaultSource(src, dataset.FaultConfig{Rate: p.FaultRate, Seed: p.FaultSeed})
	if p.Retries > 0 {
		src = dataset.NewRetrySource(src, p.Retries, time.Millisecond)
	}
	return src
}

// RunContext returns the context fault-aware experiments run engine passes
// under, honoring Params.Timeout. Callers must invoke the cancel function.
func (p Params) RunContext() (context.Context, context.CancelFunc) {
	if p.Timeout > 0 {
		return context.WithTimeout(context.Background(), p.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Table is an experiment's printable result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig9").
	ID string
	// Title describes the workload, mirroring the paper's caption.
	Title string
	// Columns are the header cells; Rows the data cells.
	Columns []string
	Rows    [][]string
	// Notes carry derived observations (ratios, shape checks).
	Notes []string
	// Metrics are the machine-readable measurements behind the rows,
	// populated by experiments that support JSON reports (see Report).
	Metrics []Metric
}

// FprintCSV renders the table as CSV (id and title as a comment line, then
// header and rows) for plotting pipelines.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered benchmark.
type Experiment struct {
	// ID is the lookup key (e.g. "fig9", "abl-robj").
	ID string
	// Title is a one-line description.
	Title string
	// Paper cites what the experiment reproduces ("" for ablations).
	Paper string
	// DefaultScale is the Params.Scale used when none is given.
	DefaultScale float64
	// Run executes the experiment.
	Run func(p Params) (*Table, error)
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are programming errors.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Experiments lists all registered experiments sorted by ID, figures first.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := strings.HasPrefix(out[i].ID, "fig"), strings.HasPrefix(out[j].ID, "fig")
		if fi != fj {
			return fi
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Get looks up an experiment by ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// secs formats a duration in seconds with millisecond precision.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ratio formats a/b, guarding division by zero.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
