package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// ablSession quantifies what the persistent-session architecture amortizes
// away: the same reduction pass is repeated Params.SessionPasses times
// one-shot (a fresh engine per pass, Run, Close — the pre-session
// lifecycle) and on a single session (one engine, Run + Release per pass,
// pooled schedulers, split tables, and reduction objects), reporting
// per-pass wall time and heap allocations per pass. A final sweep submits
// Params.SessionJobs concurrent jobs to one session's worker pool and
// reports aggregate throughput — the multiplexing the one-shot engine
// could not express at all.
func ablSession(p Params) (*Table, error) {
	const groups, dim = 64, 16
	rows := maxInt(4096, int(float64(1<<18)*p.Scale))
	m, _ := dataset.GaussianMixture(rows, dim, groups, p.Seed)
	src := dataset.NewMemorySource(m)
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: groups, Elems: dim, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				row := a.Row(i)
				g := int(row[0]*float64(groups)) % groups
				if g < 0 {
					g += groups
				}
				for j := 0; j < dim; j++ {
					a.Accumulate(g, j, row[j])
				}
			}
			return nil
		},
	}
	passes := p.SessionPasses
	if passes < 1 {
		passes = 30
	}
	jobSweep := p.SessionJobs
	if len(jobSweep) == 0 {
		jobSweep = []int{2, 4}
	}

	// cells sums a pass's merged object — equal sums across modes witness
	// the deterministic-results invariant without allocating a copy.
	cells := func(o *robj.Object) float64 {
		var s float64
		for _, v := range o.Snapshot() {
			s += v
		}
		return s
	}

	tbl := &Table{
		ID: "abl-session",
		Title: fmt.Sprintf("one-shot vs session engine lifecycle — %d passes of %d rows × %d dims",
			passes, rows, dim),
		Columns: []string{"threads", "mode", "ms/pass", "allocs/pass", "passes/s"},
	}
	for _, threads := range p.Threads {
		cfg := freeride.Config{Threads: threads, SplitRows: splitRowsFor(rows, threads)}
		var ms runtime.MemStats

		// One-shot: the full pre-session lifecycle every pass.
		runtime.ReadMemStats(&ms)
		mallocs0 := ms.Mallocs
		t0 := time.Now()
		var oneShotSum float64
		for pass := 0; pass < passes; pass++ {
			eng := freeride.New(cfg)
			res, err := eng.RunContext(context.Background(), spec, src)
			if err != nil {
				eng.Close()
				return nil, err
			}
			oneShotSum = cells(res.Object)
			eng.Close()
		}
		oneShotWall := time.Since(t0)
		runtime.ReadMemStats(&ms)
		oneShotAllocs := (ms.Mallocs - mallocs0) / uint64(passes)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(threads), "one-shot",
			msPerPass(oneShotWall, passes), fmt.Sprint(oneShotAllocs),
			passesPerSec(passes, oneShotWall),
		})

		// Session: one engine, pooled everything, Run + Release per pass.
		eng := freeride.New(cfg)
		if err := eng.Start(); err != nil {
			return nil, err
		}
		// One warm-up pass populates the session pools so the measured
		// passes show the steady state.
		if res, err := eng.RunContext(context.Background(), spec, src); err != nil {
			eng.Close()
			return nil, err
		} else if err := eng.Release(res); err != nil {
			eng.Close()
			return nil, err
		}
		runtime.ReadMemStats(&ms)
		mallocs0 = ms.Mallocs
		t0 = time.Now()
		var sessionSum float64
		for pass := 0; pass < passes; pass++ {
			res, err := eng.RunContext(context.Background(), spec, src)
			if err != nil {
				eng.Close()
				return nil, err
			}
			sessionSum = cells(res.Object)
			if err := eng.Release(res); err != nil {
				eng.Close()
				return nil, err
			}
		}
		sessionWall := time.Since(t0)
		runtime.ReadMemStats(&ms)
		sessionAllocs := (ms.Mallocs - mallocs0) / uint64(passes)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(threads), "session",
			msPerPass(sessionWall, passes), fmt.Sprint(sessionAllocs),
			passesPerSec(passes, sessionWall),
		})
		if sessionSum != oneShotSum {
			tbl.Notes = append(tbl.Notes, fmt.Sprintf(
				"MISMATCH at %d threads: session sum %g != one-shot sum %g", threads, sessionSum, oneShotSum))
		}

		// Concurrent jobs: J submitters share the session's worker pool.
		for _, jobs := range jobSweep {
			if jobs < 2 {
				continue // jobs=1 is the session row above
			}
			per := passes / jobs
			if per < 1 {
				per = 1
			}
			total := per * jobs
			var wg sync.WaitGroup
			jobErrs := make([]error, jobs)
			sums := make([]float64, jobs)
			t0 = time.Now()
			for j := 0; j < jobs; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					for pass := 0; pass < per; pass++ {
						res, err := eng.RunContext(context.Background(), spec, src)
						if err != nil {
							jobErrs[j] = err
							return
						}
						sums[j] = cells(res.Object)
						if err := eng.Release(res); err != nil {
							jobErrs[j] = err
							return
						}
					}
				}(j)
			}
			wg.Wait()
			wall := time.Since(t0)
			for _, err := range jobErrs {
				if err != nil {
					eng.Close()
					return nil, err
				}
			}
			for _, s := range sums {
				if s != oneShotSum {
					tbl.Notes = append(tbl.Notes, fmt.Sprintf(
						"MISMATCH at %d threads, %d jobs: concurrent sum %g != one-shot sum %g",
						threads, jobs, s, oneShotSum))
					break
				}
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(threads), fmt.Sprintf("session ×%d jobs", jobs),
				msPerPass(wall, total), "-",
				passesPerSec(total, wall),
			})
		}
		eng.Close()
	}
	tbl.Notes = append(tbl.Notes,
		"one-shot pays worker spin-up, scheduler, split table, and reduction-object allocation every "+
			"pass; the session pools all four, so the gap is the per-pass setup cost the refactor removes")
	return tbl, nil
}

// msPerPass formats wall/passes in milliseconds.
func msPerPass(wall time.Duration, passes int) string {
	return fmt.Sprintf("%.3f", wall.Seconds()*1000/float64(passes))
}

// passesPerSec formats aggregate throughput.
func passesPerSec(passes int, wall time.Duration) string {
	if wall <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", float64(passes)/wall.Seconds())
}

func init() {
	register(Experiment{
		ID:           "abl-session",
		Title:        "persistent session vs one-shot engine lifecycle",
		DefaultScale: 0.25,
		Run:          ablSession,
	})
}
