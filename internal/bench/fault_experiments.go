package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
)

// ablFaults exercises the engine's failure paths end to end: a clean pass as
// the reference, a fault-injected pass without retry (the run fails), the
// same faults behind RetrySource (the run recovers bit-identically), a
// permanent fault surfacing through the retry layer, and a context-cancelled
// pass over a slow source measuring how fast RunContext returns. The
// -fault-rate/-fault-seed/-retries/-timeout flags parameterize it.
func ablFaults(p Params) (*Table, error) {
	p = p.WithDefaults(0.05)
	rate := p.FaultRate
	if rate <= 0 {
		rate = 0.05
	}
	const dim = 8
	rows := int(2_000_000 * p.Scale)
	if rows < 10_000 {
		rows = 10_000
	}
	points, _ := dataset.GaussianMixture(rows, dim, 8, p.Seed)
	threads := p.Threads[len(p.Threads)-1]
	cfg := freeride.Config{Threads: threads, SplitRows: 1024}

	// Column-sum spec: cheap, deterministic, order-independent.
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: dim, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			sums := a.Scratch(0, dim)
			for i := range sums {
				sums[i] = 0
			}
			for r := 0; r < a.NumRows; r++ {
				row := a.Row(r)
				for j, v := range row {
					sums[j] += v
				}
			}
			for j, v := range sums {
				a.Accumulate(0, j, v)
			}
			return nil
		},
	}

	tbl := &Table{
		ID: "abl-faults",
		Title: fmt.Sprintf("failure paths — column sums over %d×%d, %d threads, fault rate %g, %d retries",
			rows, dim, threads, rate, p.Retries),
		Columns: []string{"mode", "wall(s)", "retries", "gaveup", "outcome"},
	}
	retriesBefore := func() int64 { return obs.Default.Value("dataset_read_retries_total") }
	gaveupBefore := func() int64 { return obs.Default.Value("dataset_read_gaveup_total") }

	type mode struct {
		name string
		src  dataset.Source
		ctx  func() (context.Context, context.CancelFunc)
	}
	mem := dataset.NewMemorySource(points)
	faultCfg := dataset.FaultConfig{Rate: rate, Seed: p.FaultSeed}
	permCfg := dataset.FaultConfig{Rate: rate, PermanentRate: 1, Seed: p.FaultSeed}
	slowCfg := dataset.FaultConfig{Latency: 10 * time.Millisecond}
	cancelTimeout := p.Timeout
	if cancelTimeout <= 0 {
		cancelTimeout = 50 * time.Millisecond
	}
	bg := func() (context.Context, context.CancelFunc) {
		return context.WithCancel(context.Background())
	}
	modes := []mode{
		{"clean", mem, bg},
		{"fault,no-retry", dataset.NewFaultSource(mem, faultCfg), bg},
		{"fault,retry", dataset.NewRetrySource(dataset.NewFaultSource(mem, faultCfg), p.Retries, time.Millisecond), bg},
		{"fault,permanent", dataset.NewRetrySource(dataset.NewFaultSource(mem, permCfg), p.Retries, time.Millisecond), bg},
		{"cancel@" + cancelTimeout.String(), dataset.NewFaultSource(mem, slowCfg), func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(context.Background(), cancelTimeout)
		}},
	}

	var clean []float64
	for _, m := range modes {
		ctx, cancel := m.ctx()
		r0, g0 := retriesBefore(), gaveupBefore()
		eng := freeride.New(cfg)
		t0 := time.Now()
		res, err := eng.RunContext(ctx, spec, m.src)
		wall := time.Since(t0)
		cancel()
		eng.Close()
		outcome := "ok"
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			outcome = fmt.Sprintf("cancelled after %s", wall.Round(time.Millisecond))
		case err != nil:
			outcome = "error: " + truncate(err.Error(), 60)
		default:
			snap := res.Object.Snapshot()
			if m.name == "clean" {
				clean = snap
			} else if clean != nil {
				outcome = "ok, matches clean"
				for i, v := range snap {
					if v != clean[i] {
						outcome = "MISMATCH vs clean"
						break
					}
				}
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			m.name, secs(wall),
			fmt.Sprint(retriesBefore() - r0), fmt.Sprint(gaveupBefore() - g0),
			outcome,
		})
	}
	tbl.Notes = append(tbl.Notes,
		"failure semantics: first error wins, workers stop draining the scheduler, no partial result; "+
			"RetrySource absorbs transient faults (retries>0, gaveup=0) while permanent faults surface")
	return tbl, nil
}

// truncate shortens s to at most n runes for table cells.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func init() {
	register(Experiment{ID: "abl-faults", Title: "failure paths: fault injection, retry recovery, cancellation", DefaultScale: 0.05, Run: ablFaults})
}
