package bench

import (
	"strings"
	"testing"
	"time"

	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/robj"
)

// runPass executes one engine pass whose user Combine sleeps for the given
// duration, making the combination share controllable.
func runPass(t *testing.T, combineSleep time.Duration) {
	t.Helper()
	m := dataset.UniformMatrix(2000, 4, 3, 0, 1)
	spec := freeride.Spec{
		Object: freeride.ObjectSpec{Groups: 1, Elems: 4, Op: robj.OpAdd},
		Reduction: func(a *freeride.ReductionArgs) error {
			for i := 0; i < a.NumRows; i++ {
				for j, v := range a.Row(i) {
					a.Accumulate(0, j, v)
				}
			}
			return nil
		},
	}
	if combineSleep > 0 {
		spec.Combine = func(o *robj.Object) error { time.Sleep(combineSleep); return nil }
	}
	if _, err := freeride.New(freeride.Config{Threads: 2}).Run(spec, dataset.NewMemorySource(m)); err != nil {
		t.Fatal(err)
	}
}

func TestCombineShareGuardTriggers(t *testing.T) {
	before := SnapshotPhases()
	runPass(t, 50*time.Millisecond) // combine dwarfs the tiny reduction
	share, total := CombineShareSince(before)
	if total < 50*time.Millisecond {
		t.Fatalf("total engine time %v, want >= 50ms", total)
	}
	if share < 0.5 {
		t.Fatalf("combine share %.2f, want >= 0.5 with a sleeping Combine", share)
	}
	diag, ok := CheckCombineShare(before, 0.25)
	if ok {
		t.Fatal("guard should trip when combine share exceeds the budget")
	}
	if !strings.Contains(diag, "combine-share guard") {
		t.Fatalf("diagnostic missing context: %q", diag)
	}
}

func TestCombineShareGuardPassesOnHealthyRun(t *testing.T) {
	before := SnapshotPhases()
	runPass(t, 0)
	if diag, ok := CheckCombineShare(before, 0.9); !ok {
		t.Fatalf("guard tripped on a healthy run: %s", diag)
	}
}

func TestCombineShareGuardDisabled(t *testing.T) {
	before := SnapshotPhases()
	runPass(t, 20*time.Millisecond)
	if _, ok := CheckCombineShare(before, 0); !ok {
		t.Fatal("maxShare <= 0 must disable the guard")
	}
}
