package bench

import (
	"strings"
	"testing"
)

func tinyParams() Params {
	return Params{Threads: []int{1, 2}, Scale: 0.0005, Seed: 7}
}

func TestRegistryContents(t *testing.T) {
	exps := Experiments()
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" || e.DefaultScale <= 0 {
			t.Fatalf("experiment %q incompletely registered", e.ID)
		}
	}
	for _, want := range []string{"fig9", "fig10", "fig11", "fig12", "fig13",
		"abl-cluster", "abl-stream", "abl-session",
		"abl-robj", "abl-sched", "abl-pipe", "abl-mr", "abl-mr-stats", "abl-chunk"} {
		if !ids[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	// Figures sort before ablations.
	if !strings.HasPrefix(exps[0].ID, "fig") {
		t.Fatalf("figures should sort first, got %q", exps[0].ID)
	}
	if _, ok := Get("fig9"); !ok {
		t.Fatal("Get(fig9) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) should fail")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults(0.5)
	if len(p.Threads) == 0 || p.Threads[0] != 1 {
		t.Fatalf("threads = %v", p.Threads)
	}
	if p.Scale != 0.5 || p.Seed != 42 {
		t.Fatalf("params = %+v", p)
	}
	// Existing values are preserved.
	q := Params{Threads: []int{3}, Scale: 2, Seed: 9}.WithDefaults(0.5)
	if len(q.Threads) != 1 || q.Threads[0] != 3 || q.Scale != 2 || q.Seed != 9 {
		t.Fatalf("params overridden: %+v", q)
	}
}

// TestAllExperimentsRunTiny executes every registered experiment at a tiny
// scale — an integration test across apps, core, freeride, mapreduce.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(tinyParams())
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Fatalf("table id %q != experiment id %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Fatal("empty table")
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(r), len(tbl.Columns), r)
				}
			}
			var sb strings.Builder
			tbl.Fprint(&sb)
			out := sb.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tbl.Columns[0]) {
				t.Fatalf("printed table missing header:\n%s", out)
			}
		})
	}
}

func TestHelpers(t *testing.T) {
	if secs(1500000000) != "1.500" {
		t.Fatalf("secs = %q", secs(1500000000))
	}
	if ratio(2, 0) != "n/a" {
		t.Fatal("ratio division by zero")
	}
	if ratio(3, 2) != "1.50" {
		t.Fatalf("ratio = %q", ratio(3, 2))
	}
	if pct(1, 0) != "n/a" || pct(1, 4) != "25%" {
		t.Fatal("pct")
	}
	if maxInt(2, 3) != 3 || maxInt(5, 1) != 5 {
		t.Fatal("maxInt")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(Experiment{ID: "fig9"})
}

func TestTableFprintCSV(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	var sb strings.Builder
	if err := tbl.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# x: demo\na,b\n1,2\n3,4\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
