package bench

import (
	"fmt"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// ablSparse measures the inspector–executor pipeline on sparse workloads:
// SpMV at opt-3 (fused table-walking kernel, hashed worker-local
// accumulator) swept across all five sharing strategies × schedulers at
// varying matrix density, plus the gather-free degree-histogram push at one
// density. The interesting shape — which the dense apps never exhibit — is
// the strategy crossover in density: the reduction object is the output
// vector (one cell per matrix row, large), so FullReplication pays an
// O(cells × threads) merge every pass no matter how few cells the pass
// touched, while the locking/atomic strategies pay only per-touched-cell
// costs. At low density the touched set is tiny and replication's fixed
// sweep dominates; as density rises the per-update costs take over and the
// ranking flips back to the dense apps' usual order.
func ablSparse(p Params) (*Table, error) {
	if p.Reps < 1 {
		p.Reps = 1
	}
	// Square n×n matrix; n scales with the usual cube-root-ish damping so
	// the default run stays in laptop range while nnz spans three orders.
	n := maxInt(256, int(16384*p.Scale*4))
	densities := []float64{0.0001, 0.001, 0.01}
	policies := []sched.Policy{sched.Dynamic, sched.WorkStealing}
	strategies := robj.Strategies()

	tbl := &Table{
		ID: "abl-sparse",
		Title: fmt.Sprintf(
			"inspector-executor sparse workloads — SpMV %dx%d at density %v, degree push; strategies x schedulers",
			n, n, densities),
		Columns: []string{"workload", "density", "nnz", "threads", "scheduler", "strategy",
			"total(s)", "inspector(s)", "ns/nnz"},
	}

	x := intVectorBench(n, p.Seed^0x7ead)
	// Best strategy per (density, scheduler) at the largest thread count,
	// for the crossover note.
	type key struct {
		d   float64
		pol sched.Policy
	}
	bestBy := map[key]string{}
	bestNs := map[key]int64{}
	lastThreads := p.Threads[len(p.Threads)-1]

	for _, d := range densities {
		nnz := int(d * float64(n) * float64(n))
		if nnz < 1 {
			nnz = 1
		}
		triples := randomTriplesBench(nnz, n, n, p.Seed)
		for _, threads := range p.Threads {
			for _, pol := range policies {
				for _, st := range strategies {
					cfg := apps.SpMVConfig{
						Rows: n, Cols: n, X: x,
						Engine: freeride.Config{
							Threads: threads, SplitRows: splitRowsFor(nnz, threads),
							Scheduler: pol, Strategy: st,
						},
					}
					var best *apps.SpMVResult
					bytesBefore := obs.Default.Value("freeride_index_table_bytes")
					for rep := 0; rep < p.Reps; rep++ {
						res, err := apps.SpMV(apps.Opt3, triples, cfg)
						if err != nil {
							return nil, fmt.Errorf("abl-sparse spmv d=%g threads=%d %v/%v: %w",
								d, threads, pol, st, err)
						}
						if best == nil || res.Timing.Total() < best.Timing.Total() {
							best = res
						}
					}
					tableBytes := (obs.Default.Value("freeride_index_table_bytes") - bytesBefore) / int64(p.Reps)
					nsPerNnz := best.Timing.Total().Nanoseconds() / int64(nnz)
					tbl.Rows = append(tbl.Rows, []string{
						"spmv", fmt.Sprintf("%g", d), fmt.Sprint(nnz), fmt.Sprint(threads),
						pol.String(), st.String(),
						secs(best.Timing.Total()), secs(best.Timing.Linearize), fmt.Sprint(nsPerNnz),
					})
					tbl.Metrics = append(tbl.Metrics, Metric{
						Workload: fmt.Sprintf("spmv-d%g", d), Version: "opt-3",
						Threads: threads, Scheduler: pol.String(), Strategy: st.String(),
						NsPerOp:     nsPerNnz,
						InspectorNs: best.Timing.Linearize.Nanoseconds(),
						// The counter covers out+in tables; the boxed-array
						// linearization in front of the inspector is charged
						// to InspectorNs alongside the sort.
						IndexTableBytes: tableBytes,
					})
					if threads == lastThreads {
						k := key{d, pol}
						if cur, ok := bestNs[k]; !ok || nsPerNnz < cur {
							bestNs[k] = nsPerNnz
							bestBy[k] = st.String()
						}
					}
				}
			}
		}
	}

	// Degree push: the gather-free variant at the middle density, default
	// scheduler, all strategies — confirms the crossover is a property of
	// the scattered object, not of SpMV's gather.
	degD := densities[1]
	degEdges := int(degD * float64(n) * float64(n))
	if degEdges < 1 {
		degEdges = 1
	}
	edges := dataset.NewMatrix(degEdges, 2)
	r := p.Seed ^ 0xde6
	for i := 0; i < degEdges; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		edges.Data[2*i] = float64(uint64(r) >> 33 % uint64(n))
		edges.Data[2*i+1] = float64(uint64(r) >> 12 % uint64(n))
	}
	for _, threads := range p.Threads {
		for _, st := range strategies {
			cfg := apps.DegreeConfig{
				Nodes: n,
				Engine: freeride.Config{
					Threads: threads, SplitRows: splitRowsFor(degEdges, threads), Strategy: st,
				},
			}
			var best *apps.DegreeResult
			for rep := 0; rep < p.Reps; rep++ {
				res, err := apps.Degree(apps.Opt3, edges, cfg)
				if err != nil {
					return nil, fmt.Errorf("abl-sparse degree threads=%d %v: %w", threads, st, err)
				}
				if best == nil || res.Timing.Total() < best.Timing.Total() {
					best = res
				}
			}
			nsPerEdge := best.Timing.Total().Nanoseconds() / int64(degEdges)
			tbl.Rows = append(tbl.Rows, []string{
				"degree", fmt.Sprintf("%g", degD), fmt.Sprint(degEdges), fmt.Sprint(threads),
				"default", st.String(),
				secs(best.Timing.Total()), secs(best.Timing.Linearize), fmt.Sprint(nsPerEdge),
			})
			tbl.Metrics = append(tbl.Metrics, Metric{
				Workload: "degree", Version: "opt-3",
				Threads: threads, Strategy: st.String(),
				NsPerOp:     nsPerEdge,
				InspectorNs: best.Timing.Linearize.Nanoseconds(),
			})
		}
	}

	for _, pol := range policies {
		var parts []string
		flipped := false
		for _, d := range densities {
			b := bestBy[key{d, pol}]
			parts = append(parts, fmt.Sprintf("d=%g:%s", d, b))
			if b != bestBy[key{densities[0], pol}] {
				flipped = true
			}
		}
		note := fmt.Sprintf("best strategy @%d threads (%s): %v", lastThreads, pol, parts)
		if flipped {
			note += " — strategy ranking crosses over in density (dense apps never exhibit this)"
		}
		tbl.Notes = append(tbl.Notes, note)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("inspector totals this process: build %s, tables %d bytes (freeride_inspector_build_ns / freeride_index_table_bytes)",
			time.Duration(obs.Default.Value("freeride_inspector_build_ns")),
			obs.Default.Value("freeride_index_table_bytes")),
		"the reduction object is the output vector (one cell per matrix row): FullReplication's per-pass "+
			"O(cells x threads) merge is insensitive to density, the locking/atomic strategies pay per touched cell")
	return tbl, nil
}

// randomTriplesBench builds an nnz×3 COO triples matrix with integer values
// and in-range 0-based coordinates.
func randomTriplesBench(nnz, rows, cols int, seed int64) *dataset.Matrix {
	m := dataset.NewMatrix(nnz, 3)
	r := seed
	for i := 0; i < nnz; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		m.Data[3*i] = float64(uint64(r) >> 33 % uint64(rows))
		m.Data[3*i+1] = float64(uint64(r) >> 12 % uint64(cols))
		m.Data[3*i+2] = float64(int64(uint64(r)>>45%17) - 8)
	}
	return m
}

func intVectorBench(n int, seed int64) []float64 {
	x := make([]float64, n)
	r := seed
	for i := range x {
		r = r*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(uint64(r)>>40%9) - 4)
	}
	return x
}

func init() {
	register(Experiment{
		ID:           "abl-sparse",
		Title:        "inspector-executor sparse workloads: strategy x scheduler x density",
		DefaultScale: 0.05,
		Run:          ablSparse,
	})
}
