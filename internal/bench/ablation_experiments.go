package bench

import (
	"fmt"
	"time"

	"chapelfreeride/internal/apps"
	"chapelfreeride/internal/core"
	"chapelfreeride/internal/dataset"
	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/mapreduce"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// ablation workload: k-means at moderate size, where the reduction-object
// and scheduling behaviour is visible without long runs.
const (
	ablK     = 32
	ablIters = 5
)

func ablRObj(p Params) (*Table, error) {
	points := kmeansData(64<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	tbl := &Table{
		ID:      "abl-robj",
		Title:   fmt.Sprintf("reduction-object sharing strategies — k-means %d points, k=%d, i=%d", points.Rows, ablK, ablIters),
		Columns: []string{"threads", "strategy", "total(s)", "vs replication"},
	}
	base := map[int]time.Duration{}
	for _, threads := range p.Threads {
		for _, st := range robj.Strategies() {
			cfg := apps.KMeansConfig{
				K: ablK, Iterations: ablIters,
				Engine: freeride.Config{Threads: threads, Strategy: st},
			}
			res, err := apps.KMeansManualFR(points, init, cfg)
			if err != nil {
				return nil, err
			}
			if st == robj.FullReplication {
				base[threads] = res.Timing.Total()
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(threads), st.String(),
				secs(res.Timing.Total()), ratio(res.Timing.Total(), base[threads]),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"replication avoids per-update synchronization; locking variants pay per-element lock cost")
	return tbl, nil
}

func ablSched(p Params) (*Table, error) {
	points := kmeansData(64<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	tbl := &Table{
		ID:      "abl-sched",
		Title:   fmt.Sprintf("split scheduling policies — k-means %d points, k=%d, i=%d", points.Rows, ablK, ablIters),
		Columns: []string{"threads", "policy", "total(s)"},
	}
	for _, threads := range p.Threads {
		for _, pol := range sched.Policies() {
			cfg := apps.KMeansConfig{
				K: ablK, Iterations: ablIters,
				Engine: freeride.Config{Threads: threads, Scheduler: pol},
			}
			res, err := apps.KMeansManualFR(points, init, cfg)
			if err != nil {
				return nil, err
			}
			tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(threads), pol.String(), secs(res.Timing.Total())})
		}
	}
	return tbl, nil
}

func ablPipe(p Params) (*Table, error) {
	points := kmeansData(256<<20, p.Scale, p.Seed, ablK+1)
	boxed := apps.BoxPoints(points)
	tbl := &Table{
		ID:      "abl-pipe",
		Title:   fmt.Sprintf("sequential vs parallel linearization (paper's future work) — %d points", points.Rows),
		Columns: []string{"workers", "linearize(s)", "speedup"},
	}
	var seq time.Duration
	for _, workers := range p.Threads {
		// Time only the linearization, averaged over a few runs.
		const reps = 3
		var total time.Duration
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, err := core.LinearizeToWordsParallel(boxed, workers); err != nil {
				return nil, err
			}
			total += time.Since(t0)
		}
		avg := total / reps
		if workers == p.Threads[0] {
			seq = avg
		}
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(workers), secs(avg), ratio(seq, avg)})
	}
	tbl.Notes = append(tbl.Notes,
		"the paper linearizes sequentially, which makes opt-2's gap to manual grow with threads; "+
			"parallel linearization is the proposed remedy (§V)")
	return tbl, nil
}

func ablMR(p Params) (*Table, error) {
	points := kmeansData(64<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	tbl := &Table{
		ID:      "abl-mr",
		Title:   fmt.Sprintf("FREERIDE vs Map-Reduce (Fig. 4 structures) — k-means %d points, k=%d, i=%d", points.Rows, ablK, ablIters),
		Columns: []string{"threads", "runtime", "total(s)", "vs freeride"},
	}
	type variant struct {
		name     string
		combiner bool
		fr       bool
	}
	variants := []variant{
		{name: "freeride (manual)", fr: true},
		{name: "map-reduce", combiner: false},
		{name: "map-reduce+combiner", combiner: true},
	}
	base := map[int]time.Duration{}
	for _, threads := range p.Threads {
		for _, v := range variants {
			cfg := apps.KMeansConfig{
				K: ablK, Iterations: ablIters,
				Engine:      freeride.Config{Threads: threads},
				UseCombiner: v.combiner,
			}
			var res *apps.KMeansResult
			var err error
			if v.fr {
				res, err = apps.KMeansManualFR(points, init, cfg)
			} else {
				res, err = apps.KMeansMapReduce(points, init, cfg)
			}
			if err != nil {
				return nil, err
			}
			if v.fr {
				base[threads] = res.Timing.Total()
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(threads), v.name, secs(res.Timing.Total()),
				ratio(res.Timing.Total(), base[threads]),
			})
		}
	}
	tbl.Notes = append(tbl.Notes,
		"map-reduce materializes one (cluster, vector) pair per point and sorts them; "+
			"FREERIDE reduces each element in place (ref [14]'s comparison)")
	return tbl, nil
}

func ablChunk(p Params) (*Table, error) {
	points := kmeansData(64<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	threads := p.Threads[len(p.Threads)-1]
	tbl := &Table{
		ID:      "abl-chunk",
		Title:   fmt.Sprintf("split size sensitivity — k-means %d points, k=%d, i=%d, %d threads", points.Rows, ablK, ablIters, threads),
		Columns: []string{"splitRows", "splits", "total(s)"},
	}
	for _, splitRows := range []int{64, 256, 1024, 4096, 16384, 65536} {
		if splitRows > points.Rows {
			continue
		}
		cfg := apps.KMeansConfig{
			K: ablK, Iterations: ablIters,
			Engine: freeride.Config{Threads: threads, SplitRows: splitRows},
		}
		res, err := apps.KMeansManualFR(points, init, cfg)
		if err != nil {
			return nil, err
		}
		splits := (points.Rows + splitRows - 1) / splitRows
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(splitRows), fmt.Sprint(splits), secs(res.Timing.Total())})
	}
	return tbl, nil
}

// ablMRStats reports the intermediate-pair volume Map-Reduce materializes —
// the storage overhead FREERIDE's fused design avoids (§III-A).
func ablMRStats(p Params) (*Table, error) {
	points := kmeansData(16<<20, p.Scale, p.Seed, ablK+1)
	init := firstK(points, ablK)
	tbl := &Table{
		ID:      "abl-mr-stats",
		Title:   fmt.Sprintf("map-reduce intermediate state — k-means %d points, k=%d, 1 iteration", points.Rows, ablK),
		Columns: []string{"variant", "emitted pairs", "pairs after combine", "sort(s)"},
	}
	for _, combiner := range []bool{false, true} {
		eng := mapreduce.New[int, []float64](mapreduce.Config{Workers: p.Threads[len(p.Threads)-1]})
		dim := points.Cols
		flat := init.Data
		sum := func(_ int, vals [][]float64) []float64 {
			out := make([]float64, dim+1)
			for _, v := range vals {
				for j := range out {
					out[j] += v[j]
				}
			}
			return out
		}
		spec := mapreduce.Spec[int, []float64]{
			Map: func(a *mapreduce.MapArgs, emit func(int, []float64)) error {
				for i := 0; i < a.NumRows; i++ {
					row := a.Row(i)
					c := 0
					bestDist := -1.0
					for cand := 0; cand < ablK; cand++ {
						var d float64
						cc := flat[cand*dim : (cand+1)*dim]
						for j := 0; j < dim; j++ {
							diff := row[j] - cc[j]
							d += diff * diff
						}
						if bestDist < 0 || d < bestDist {
							c, bestDist = cand, d
						}
					}
					v := make([]float64, dim+1)
					copy(v, row)
					v[dim] = 1
					emit(c, v)
				}
				return nil
			},
			Reduce: sum,
		}
		name := "map-reduce"
		if combiner {
			spec.Combine = sum
			name += "+combiner"
		}
		_, stats, err := eng.Run(spec, dataset.NewMemorySource(points))
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			name, fmt.Sprint(stats.EmittedPairs), fmt.Sprint(stats.IntermediatePairs), secs(stats.SortTime),
		})
	}
	tbl.Notes = append(tbl.Notes, "freeride materializes zero intermediate pairs by construction")
	return tbl, nil
}

func init() {
	register(Experiment{ID: "abl-robj", Title: "reduction-object sharing strategies", DefaultScale: 0.01, Run: ablRObj})
	register(Experiment{ID: "abl-sched", Title: "split scheduling policies", DefaultScale: 0.01, Run: ablSched})
	register(Experiment{ID: "abl-pipe", Title: "sequential vs parallel linearization", DefaultScale: 0.01, Run: ablPipe})
	register(Experiment{ID: "abl-mr", Title: "FREERIDE vs Map-Reduce runtimes", DefaultScale: 0.01, Run: ablMR})
	register(Experiment{ID: "abl-mr-stats", Title: "Map-Reduce intermediate state volume", DefaultScale: 0.01, Run: ablMRStats})
	register(Experiment{ID: "abl-chunk", Title: "split size sensitivity", DefaultScale: 0.01, Run: ablChunk})
}
