package bench

import (
	"fmt"
	"time"

	"chapelfreeride/internal/freeride"
	"chapelfreeride/internal/obs"
)

// The obs-driven regression guard mirrors the paper's §V overhead-source
// analysis: FREERIDE's advantage over Map-Reduce rests on the combination
// phase staying cheap relative to the local reduction. The guard snapshots
// the engine's cumulative per-phase counters before a workload, and after it
// checks what share of the engine wall time the combination phases (local
// merge + user combine + global combine) consumed. A share above the
// configured fraction signals a regression in the reduction-object layer
// (too much merging, contention, or per-pass allocation).

// PhaseSnapshot is a reading of the engine's cumulative per-phase wall-time
// counters (freeride_phase_ns_total), in nanoseconds.
type PhaseSnapshot map[string]int64

// SnapshotPhases reads the current per-phase totals from the obs registry.
func SnapshotPhases() PhaseSnapshot {
	s := PhaseSnapshot{}
	for _, p := range freeride.Phases() {
		s[p] = obs.Default.Value("freeride_phase_ns_total", obs.Label{Key: "phase", Value: p})
	}
	return s
}

// combinePhases are the phases charged to "combination" by the guard.
var combinePhases = []string{freeride.PhaseLocalCombine, freeride.PhaseCombine, freeride.PhaseGlobalCombine}

// CombineShareSince returns the fraction of engine wall time spent in the
// combination phases since the snapshot, plus the total engine time elapsed.
// The share is 0 when no engine time elapsed.
func CombineShareSince(before PhaseSnapshot) (share float64, total time.Duration) {
	now := SnapshotPhases()
	var combine, all int64
	for _, p := range freeride.Phases() {
		d := now[p] - before[p]
		if d < 0 {
			d = 0
		}
		all += d
	}
	for _, p := range combinePhases {
		if d := now[p] - before[p]; d > 0 {
			combine += d
		}
	}
	if all == 0 {
		return 0, 0
	}
	return float64(combine) / float64(all), time.Duration(all)
}

// CheckCombineShare evaluates the guard: it returns ok=false plus a
// diagnostic when the combination share of engine wall time since the
// snapshot exceeds maxShare. A maxShare <= 0 disables the guard.
func CheckCombineShare(before PhaseSnapshot, maxShare float64) (diag string, ok bool) {
	if maxShare <= 0 {
		return "", true
	}
	share, total := CombineShareSince(before)
	if total == 0 || share <= maxShare {
		return "", true
	}
	return fmt.Sprintf("combine-share guard: combination phases took %.4g%% of %.3fs engine time, above the %.4g%% budget (see freeride_phase_ns_total and robj_* counters)",
		share*100, total.Seconds(), maxShare*100), false
}

// SnapshotPassHist reads the engine pass-latency histogram's current state
// (freeride_pass_duration_seconds), for interval quantiles via
// PassLatencySince — the histogram analogue of SnapshotPhases.
func SnapshotPassHist() obs.HistState {
	if h := obs.Default.FindHistogram("freeride_pass_duration_seconds"); h != nil {
		return h.State()
	}
	return obs.HistState{}
}

// PassLatencySince summarizes the engine passes observed since the snapshot
// as count plus p50/p90/p99 nanosecond upper bounds; nil when no pass
// completed in the interval.
func PassLatencySince(before obs.HistState) *LatencyQuantiles {
	h := obs.Default.FindHistogram("freeride_pass_duration_seconds")
	if h == nil {
		return nil
	}
	d := h.State().Sub(before)
	if d.Count == 0 {
		return nil
	}
	toNS := func(q float64) int64 { return int64(d.Quantile(q) * 1e9) }
	return &LatencyQuantiles{Count: d.Count, P50ns: toNS(0.50), P90ns: toNS(0.90), P99ns: toNS(0.99)}
}
