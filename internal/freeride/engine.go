package freeride

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"chapelfreeride/internal/cputime"
	"chapelfreeride/internal/obs"
	"chapelfreeride/internal/robj"
	"chapelfreeride/internal/sched"
)

// Session counters: pool workers spun up, jobs submitted to sessions, and
// per-pass reuse of pooled schedulers. Together with robj_pool_* and
// sched_resets_total they quantify how much per-pass setup the session
// architecture amortizes away.
var (
	mPoolWorkers = obs.Default.Counter("freeride_pool_workers_total",
		"persistent worker goroutines started by engine sessions")
	mJobs = obs.Default.Counter("freeride_jobs_total",
		"jobs submitted to engine worker pools")
	mSchedReused = obs.Default.Counter("freeride_sched_reuses_total",
		"pooled schedulers re-armed for a pass instead of allocated")
	jobsInflight atomic.Int64
)

func init() {
	obs.Default.GaugeFunc("freeride_jobs_inflight",
		"jobs currently executing on engine worker pools",
		func() float64 { return float64(jobsInflight.Load()) })
}

// ErrEngineClosed reports a Run or Start on an engine whose session has been
// closed.
var ErrEngineClosed = errors.New("freeride: engine is closed")

// ticket is one unit of pool work: worker slot `slot` of job `j`. A job
// enqueues exactly Threads tickets, so every scheduler slot is served even
// when one pool worker ends up processing several slots back to back.
type ticket struct {
	j    *job
	slot int
}

// workerState is one pool worker's persistent scratch, created when the
// session starts and reused by every job the worker participates in: the
// split read buffer and the kernel scratch slots that the one-shot engine
// used to reallocate every pass.
type workerState struct {
	buf     []float64
	scratch [][]float64
	// acc is the fused path's worker-local dense accumulation buffer
	// (BlockArgs.Acc), sized to the largest reduction object the worker has
	// served — session-pooled so steady-state fused passes allocate nothing.
	acc []float64
	// hash is the sparse fused path's worker-local touched-cell accumulator,
	// created on the worker's first sparse job and reused (capacity tracks
	// the high-water touched count) so steady-state sparse passes allocate
	// nothing either.
	hash *cellHash
}

// Engine executes reduction Specs over data Sources. It is a session: the
// first Run (or an explicit Start) spins up a persistent pool of
// Config.Threads workers, and every Run*, from any goroutine, submits a job
// to that pool — multiple independent jobs may be in flight concurrently.
// Schedulers, split tables, and reduction objects are pooled per engine and
// reused across passes, so steady-state iterative workloads pay no per-pass
// setup. Close drains in-flight jobs and releases the pool; a closed engine
// rejects further Runs.
type Engine struct {
	cfg Config

	mu      sync.Mutex // guards started/closed transitions
	started bool
	closed  bool

	// submitMu serializes job enqueueing against Close: submitters hold the
	// read side while sending tickets, Close takes the write side before
	// closing the ticket channel, so a send never races the close.
	submitMu sync.RWMutex
	tickets  chan ticket
	workers  sync.WaitGroup

	// objects pools finished reduction objects (Release) for reuse by later
	// Runs with the same shape.
	objects *robj.Pool

	// scheds and splitBufs pool per-pass scheduler and split-table
	// allocations. Entries are only returned after their job fully drained,
	// never from abandoned (cancelled-with-straggler) passes.
	schedMu   sync.Mutex
	scheds    []sched.Scheduler
	splitMu   sync.Mutex
	splitBufs [][]sched.Chunk
}

// New creates an engine session with the given configuration. The worker
// pool starts lazily on the first Run; call Start to front-load it.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), objects: robj.NewPool()}
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Start spins up the session's persistent worker pool. It is idempotent;
// Run calls it implicitly. Start after Close returns ErrEngineClosed.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.startLocked()
}

func (e *Engine) startLocked() error {
	if e.closed {
		return ErrEngineClosed
	}
	if e.started {
		return nil
	}
	depth := 4 * e.cfg.Threads
	if depth < 16 {
		depth = 16
	}
	e.tickets = make(chan ticket, depth)
	measure := cputime.Supported()
	for p := 0; p < e.cfg.Threads; p++ {
		e.workers.Add(1)
		go e.worker(p, measure)
	}
	e.started = true
	return nil
}

// Close ends the session: it stops accepting jobs, drains the ones already
// submitted, and waits for the pool workers to exit. Close is idempotent and
// safe to call on an engine that never started.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()
	if !started {
		return nil
	}
	// Exclude in-flight submitters, then close the ticket channel so the
	// workers drain what was accepted and exit.
	e.submitMu.Lock()
	close(e.tickets)
	e.submitMu.Unlock()
	e.workers.Wait()
	return nil
}

func (e *Engine) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// worker is one persistent pool goroutine: it pins pprof labels (and, when
// per-thread CPU accounting is available, its OS thread) once, then serves
// job tickets until the session closes. Read buffers and kernel scratch live
// here, reused across every pass the worker serves.
func (e *Engine) worker(p int, measureCPU bool) {
	defer e.workers.Done()
	mPoolWorkers.Inc()
	ws := &workerState{}
	// Label the worker goroutine so CPU/heap profiles taken from the
	// metrics endpoint attribute samples per worker.
	pprof.Do(context.Background(),
		pprof.Labels("subsystem", "freeride", "worker", strconv.Itoa(p)),
		func(context.Context) {
			if measureCPU {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			for t := range e.tickets {
				t.j.runSlot(t.slot, ws)
			}
		})
}

// Release returns a finished Result's reduction object to the engine's
// session pool so the next Run with the same object shape reuses it instead
// of allocating. After Release the caller must not touch the object or any
// slice obtained from its Snapshot; res.Object is nilled to make accidental
// reuse fail fast. Releasing a nil result (or one without an object) is a
// no-op, so callers can release unconditionally.
func (e *Engine) Release(res *Result) error {
	if res == nil || res.Object == nil {
		return nil
	}
	o := res.Object
	if o.Strategy() != e.cfg.Strategy || o.Workers() != e.cfg.Threads {
		return fmt.Errorf("freeride: Release of object built for %v/%d workers on a %v/%d engine: pooled objects are session-scoped — release each result to the engine that produced it",
			o.Strategy(), o.Workers(), e.cfg.Strategy, e.cfg.Threads)
	}
	res.Object = nil
	return e.objects.Put(o)
}

// acquireSched returns a scheduler armed over [0, n): a pooled one re-armed
// via Reset when available, a fresh one otherwise.
func (e *Engine) acquireSched(n int) sched.Scheduler {
	e.schedMu.Lock()
	if k := len(e.scheds); k > 0 {
		s := e.scheds[k-1]
		e.scheds[k-1] = nil
		e.scheds = e.scheds[:k-1]
		e.schedMu.Unlock()
		s.Reset(n)
		mSchedReused.Inc()
		return s
	}
	e.schedMu.Unlock()
	return sched.New(e.cfg.Scheduler, n, e.cfg.Threads, 1)
}

// schedPoolCap bounds pooled schedulers (and split buffers); concurrent jobs
// each hold one, so a few spares cover the common case.
const schedPoolCap = 8

func (e *Engine) releaseSched(s sched.Scheduler) {
	e.schedMu.Lock()
	if len(e.scheds) < schedPoolCap {
		e.scheds = append(e.scheds, s)
	}
	e.schedMu.Unlock()
}

func (e *Engine) takeSplitBuf() []sched.Chunk {
	e.splitMu.Lock()
	defer e.splitMu.Unlock()
	if k := len(e.splitBufs); k > 0 {
		buf := e.splitBufs[k-1]
		e.splitBufs[k-1] = nil
		e.splitBufs = e.splitBufs[:k-1]
		return buf
	}
	return nil
}

func (e *Engine) putSplitBuf(buf []sched.Chunk) {
	e.splitMu.Lock()
	if len(e.splitBufs) < schedPoolCap {
		e.splitBufs = append(e.splitBufs, buf)
	}
	e.splitMu.Unlock()
}
